package config

import (
	"fmt"
	"iter"
	"strconv"
	"sync"
	"sync/atomic"
)

// Space is a lazy parametric design space: the cross product of up to six
// axes over the reference architecture (pipeline width, ROB size, L2 and L3
// capacity, frequency/voltage operating point, prefetcher on/off). A Space
// is never materialized — Size() reports the cross-product cardinality and
// At(i) builds the i-th configuration on demand, so a 10⁵–10⁷-point space
// costs a few slices, not gigabytes of configs.
//
// An empty axis pins that dimension to the reference value. Enumeration is
// lexicographic with Widths outermost and Prefetcher innermost; with no
// prefetcher axis the order (and the generated names) match DesignSpace
// exactly, so TableSpace().At(i) reproduces DesignSpace()[i].
//
// A Space is treated as immutable once handed to At/Validate/All; it is
// safe for concurrent use. Clocks must carry distinct frequencies (at the
// two decimals the generated names encode; Validate enforces this) —
// names encode the frequency, not the voltage.
type Space struct {
	// Name labels the space in reports and logs.
	Name string `json:"name,omitempty"`
	// Widths enumerates dispatch widths; the issue-port map scales with
	// each width as in DesignSpace.
	Widths []int `json:"widths,omitempty"`
	// ROBs enumerates reorder-buffer sizes; IQ, LSQ and MSHRs scale with
	// the ROB, keeping the reference proportions.
	ROBs []int `json:"robs,omitempty"`
	// L2Bytes and L3Bytes enumerate cache capacities in bytes; set counts
	// must stay powers of two at the reference associativity.
	L2Bytes []int64 `json:"l2_bytes,omitempty"`
	L3Bytes []int64 `json:"l3_bytes,omitempty"`
	// Clocks enumerates frequency/voltage operating points.
	Clocks []DVFSPoint `json:"clocks,omitempty"`
	// Prefetcher enumerates stride-prefetcher settings (off/on).
	Prefetcher []bool `json:"prefetcher,omitempty"`

	// freqNames caches the fixed-two-decimal frequency strings the naming
	// scheme embeds: AppendFloat's fixed-precision path is the single most
	// expensive step of materializing a config, and a space has only a
	// handful of distinct clocks. Built lazily on first At; building twice
	// under a race is benign (the contents are deterministic).
	freqNames atomic.Pointer[[]string]
}

// NumSpaceAxes is the fixed axis count of a Space (coordinate vectors have
// this length).
const NumSpaceAxes = 6

// maxSpaceSize bounds Size() so index arithmetic stays well inside int64
// (typed: the untyped constant would overflow int on 32-bit platforms).
const maxSpaceSize int64 = 1 << 40

// spaceBase is the shared read-only template At copies: one Reference()
// built once, its Ports slices shared by every generated configuration.
var spaceBase = sync.OnceValue(func() *Config { return Reference() })

// sharedPorts caches the three port-map variants so At does not rebuild
// per-width port slices for every configuration. The returned slices are
// shared and must be treated as read-only — the model only ever reads them.
var sharedPorts = sync.OnceValue(func() map[int][]Port {
	return map[int][]Port{2: portsForWidth(2), 4: portsForWidth(4), 6: portsForWidth(6)}
})

func sharedPortsForWidth(w int) []Port {
	switch {
	case w <= 2:
		return sharedPorts()[2]
	case w <= 4:
		return sharedPorts()[4]
	default:
		return sharedPorts()[6]
	}
}

// dims returns the axis lengths, with empty (pinned) axes counted as one.
func (s *Space) dims() [NumSpaceAxes]int {
	d := [NumSpaceAxes]int{
		len(s.Widths), len(s.ROBs), len(s.L2Bytes),
		len(s.L3Bytes), len(s.Clocks), len(s.Prefetcher),
	}
	for i := range d {
		if d[i] == 0 {
			d[i] = 1
		}
	}
	return d
}

// Dims returns the per-axis cardinalities in enumeration order (pinned
// axes report 1) — the coordinate ranges strategies mutate within.
func (s *Space) Dims() [NumSpaceAxes]int { return s.dims() }

// Size returns the number of points in the space (the product of axis
// lengths; pinned axes contribute one).
func (s *Space) Size() int {
	n := 1
	for _, d := range s.dims() {
		n *= d
	}
	return n
}

// Coords decodes index i into per-axis coordinates, reusing dst when it
// has the capacity (pass the previous result back in to avoid allocation).
// The axis order is Widths, ROBs, L2Bytes, L3Bytes, Clocks, Prefetcher,
// innermost last.
//
//mipp:hotpath
func (s *Space) Coords(i int, dst []int) []int {
	d := s.dims()
	if cap(dst) < NumSpaceAxes {
		dst = make([]int, NumSpaceAxes)
	}
	dst = dst[:NumSpaceAxes]
	for ax := NumSpaceAxes - 1; ax >= 0; ax-- {
		dst[ax] = i % d[ax]
		i /= d[ax]
	}
	return dst
}

// Index is the inverse of Coords: the lexicographic index of a coordinate
// vector. Coordinates out of range are clamped into their axis.
//
//mipp:hotpath
func (s *Space) Index(coords []int) int {
	d := s.dims()
	i := 0
	for ax := 0; ax < NumSpaceAxes; ax++ {
		c := 0
		if ax < len(coords) {
			c = coords[ax]
		}
		if c < 0 {
			c = 0
		}
		if c >= d[ax] {
			c = d[ax] - 1
		}
		i = i*d[ax] + c
	}
	return i
}

// Neighbors appends the indices one axis step (±1) away from i to dst —
// the move set of hill-climbing and mutation. Pinned axes contribute no
// neighbors; every point has at most 2·NumSpaceAxes of them.
//
//mipp:hotpath
func (s *Space) Neighbors(i int, dst []int) []int {
	d := s.dims()
	var coords [NumSpaceAxes]int
	j := i
	for ax := NumSpaceAxes - 1; ax >= 0; ax-- {
		coords[ax] = j % d[ax]
		j /= d[ax]
	}
	// Stride of axis ax is the product of inner axis lengths.
	stride := 1
	for ax := NumSpaceAxes - 1; ax >= 0; ax-- {
		if coords[ax] > 0 {
			dst = append(dst, i-stride)
		}
		if coords[ax] < d[ax]-1 {
			dst = append(dst, i+stride)
		}
		stride *= d[ax]
	}
	return dst
}

// At builds the i-th configuration of the enumeration. The result shares
// the read-only port map with every other generated config but is otherwise
// an independent copy, safe to hand to the model. Panics if i is out of
// [0, Size()).
//
//mipp:hotpath
func (s *Space) At(i int) *Config {
	if i < 0 || i >= s.Size() {
		//mipp:allow hotpath cold out-of-range panic, unreachable per well-formed evaluation
		panic(fmt.Sprintf("config: Space.At(%d) out of range [0,%d)", i, s.Size()))
	}
	d := s.dims()
	var coords [NumSpaceAxes]int
	j := i
	for ax := NumSpaceAxes - 1; ax >= 0; ax-- {
		coords[ax] = j % d[ax]
		j /= d[ax]
	}
	return s.at(coords)
}

// at builds the configuration at a coordinate vector (coordinates already
// in range).
//
//mipp:hotpath
func (s *Space) at(coords [NumSpaceAxes]int) *Config {
	c := new(Config)
	*c = *spaceBase()
	if len(s.Widths) > 0 {
		c.DispatchWidth = s.Widths[coords[0]]
		c.Ports = sharedPortsForWidth(c.DispatchWidth)
	}
	if len(s.ROBs) > 0 {
		scaleWindow(c, s.ROBs[coords[1]])
	}
	if len(s.L2Bytes) > 0 {
		c.L2.SizeBytes = s.L2Bytes[coords[2]]
	}
	if len(s.L3Bytes) > 0 {
		c.L3.SizeBytes = s.L3Bytes[coords[3]]
	}
	if len(s.Clocks) > 0 {
		p := s.Clocks[coords[4]]
		c.FrequencyGHz = p.FrequencyGHz
		c.VoltageV = p.VoltageV
	}
	pf := c.Prefetcher.Enabled
	if len(s.Prefetcher) > 0 {
		pf = s.Prefetcher[coords[5]]
		c.Prefetcher.Enabled = pf
	}

	// DesignSpace's naming scheme ("w4-rob128-l2_256k-l3_8m-f2.66"), built
	// with strconv appends so the name costs one allocation, plus a "+pf"
	// suffix when a prefetcher axis switches it on.
	buf := make([]byte, 0, 48)
	buf = append(buf, 'w')
	buf = strconv.AppendInt(buf, int64(c.DispatchWidth), 10)
	buf = append(buf, "-rob"...)
	buf = strconv.AppendInt(buf, int64(c.ROB), 10)
	buf = append(buf, "-l2_"...)
	buf = strconv.AppendInt(buf, c.L2.SizeBytes>>10, 10)
	buf = append(buf, "k-l3_"...)
	buf = strconv.AppendInt(buf, c.L3.SizeBytes>>20, 10)
	buf = append(buf, "m-f"...)
	buf = append(buf, s.freqName(coords[4], c.FrequencyGHz)...)
	if pf && len(s.Prefetcher) > 0 {
		buf = append(buf, "+pf"...)
	}
	c.Name = string(buf)
	return c
}

// freqName returns the fixed-two-decimal string for the clock axis value at
// coordinate ci (the same bytes strconv.AppendFloat(f, 'f', 2, 64) would
// produce — FormatFloat builds the cache), serving every At call after the
// first from the per-Space table. freq is the already-resolved frequency of
// the configuration, used both to build the table and as the single cached
// value when the clock axis is pinned.
//
//mipp:hotpath
func (s *Space) freqName(ci int, freq float64) string {
	if p := s.freqNames.Load(); p != nil {
		return (*p)[ci]
	}
	var names []string
	if len(s.Clocks) == 0 {
		names = []string{strconv.FormatFloat(freq, 'f', 2, 64)}
	} else {
		names = make([]string, len(s.Clocks))
		for i, p := range s.Clocks {
			names[i] = strconv.FormatFloat(p.FrequencyGHz, 'f', 2, 64)
		}
	}
	s.freqNames.CompareAndSwap(nil, &names)
	return (*s.freqNames.Load())[ci]
}

// All iterates (index, configuration) pairs lazily in enumeration order;
// breaking out of the range loop stops the enumeration, so huge spaces can
// be scanned prefix-first without ever materializing.
func (s *Space) All() iter.Seq2[int, *Config] {
	return func(yield func(int, *Config) bool) {
		n := s.Size()
		for i := 0; i < n; i++ {
			if !yield(i, s.At(i)) {
				return
			}
		}
	}
}

// Validate checks the axes: positive structure sizes, power-of-two cache
// set counts, positive clocks, and a bounded cross-product size. It probes
// one configuration per axis value (varying a single axis from the origin),
// so a bad value is reported with the axis that introduced it.
func (s *Space) Validate() error {
	n := int64(1)
	for _, d := range s.dims() {
		if n > maxSpaceSize/int64(d) {
			return fmt.Errorf("config: space %q exceeds %d points", s.Name, maxSpaceSize)
		}
		n *= int64(d)
	}
	seen := make(map[string]bool, len(s.Clocks))
	for _, p := range s.Clocks {
		if p.FrequencyGHz <= 0 || p.VoltageV <= 0 {
			return fmt.Errorf("config: space %q: non-positive operating point %+v", s.Name, p)
		}
		// Names encode the frequency at two decimals; clocks that
		// collide there would silently conflate everything keyed by
		// config name.
		key := strconv.FormatFloat(p.FrequencyGHz, 'f', 2, 64)
		if seen[key] {
			return fmt.Errorf("config: space %q: duplicate clock frequency %sGHz (names would collide)", s.Name, key)
		}
		seen[key] = true
	}
	d := s.dims()
	for ax := 0; ax < NumSpaceAxes; ax++ {
		for vi := 0; vi < d[ax]; vi++ {
			var coords [NumSpaceAxes]int
			coords[ax] = vi
			if err := s.at(coords).Validate(); err != nil {
				return fmt.Errorf("config: space %q axis %d value %d: %w", s.Name, ax, vi, err)
			}
		}
	}
	return nil
}

// TableSpace is the 3^5 = 243-point space of Table 6.3 as a parametric
// Space: TableSpace().At(i) equals DesignSpace()[i], names included.
func TableSpace() *Space {
	return &Space{
		Name:    "table6.3",
		Widths:  []int{2, 4, 6},
		ROBs:    []int{64, 128, 256},
		L2Bytes: []int64{128 << 10, 256 << 10, 512 << 10},
		L3Bytes: []int64{2 << 20, 4 << 20, 8 << 20},
		Clocks:  []DVFSPoint{{2.0, 1.0}, {2.66, 1.1}, {3.33, 1.25}},
	}
}
