package lint_test

import (
	"testing"

	"mipp/internal/lint"
	"mipp/internal/lint/linttest"
)

func TestWraperr(t *testing.T) {
	linttest.Run(t, "testdata/wraperr", lint.Wraperr)
}
