package router

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"

	"mipp/obs"
)

// The consistent-hash ring. Workload names hash onto a circle of virtual
// nodes so each workload's requests land on one replica — keeping that
// replica's predictor cache hot — while adding or losing a replica only
// rehashes the 1/N of workloads that touched it. Placement is bounded-load
// (Mirrokni et al.): a pick walks clockwise past replicas already carrying
// more than loadFactor× their fair share of in-flight requests, so one
// slow sweep cannot serialize every workload that hashes near it.

// DefaultVnodes is the virtual nodes per member: enough that three
// members split workloads within a few percent of evenly.
const DefaultVnodes = 128

// DefaultLoadFactor is the bounded-load c: a member may carry at most
// ceil(c × (inflight+1) / healthy) open requests before picks spill past it.
const DefaultLoadFactor = 1.25

// member is one replica as tracked by the ring. All fields are updated
// lock-free: picks happen on every proxied request.
type member struct {
	url      string
	healthy  atomic.Bool
	inflight atomic.Int64
	fails    atomic.Int32 // consecutive failed health checks

	// forwards counts requests proxied to this member; transitions counts
	// healthy↔down flips. Both register on the router's metrics registry
	// with a member= label.
	forwards    obs.Counter
	transitions obs.Counter
}

// markDown records a connect failure observed by live traffic, taking the
// member out of rotation immediately instead of waiting for the next
// health-check tick. It reports whether this call was the transition (the
// member was healthy), so callers can log exactly once per flip.
func (m *member) markDown() bool {
	if m.healthy.Swap(false) {
		m.transitions.Inc()
		return true
	}
	return false
}

// markUp returns the member to rotation, reporting whether this call was
// the transition.
func (m *member) markUp() bool {
	if !m.healthy.Swap(true) {
		m.transitions.Inc()
		return true
	}
	return false
}

// ringPoint is one virtual node.
type ringPoint struct {
	hash uint64
	m    *member
}

// ring is the immutable placement structure; membership is fixed at
// construction, health and load are the members' atomics.
type ring struct {
	points  []ringPoint
	members []*member // sorted by URL
	load    float64
}

// newRing builds the ring for the given replica base URLs.
func newRing(urls []string, vnodes int, load float64) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	if load <= 1 {
		load = DefaultLoadFactor
	}
	sorted := append([]string(nil), urls...)
	sort.Strings(sorted)
	r := &ring{load: load}
	for _, u := range sorted {
		m := &member{url: u}
		m.healthy.Store(true)
		r.members = append(r.members, m)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(u + "#" + strconv.Itoa(i)), m: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hash64 is FNV-1a over s with a murmur-style finalizer, inlined (no
// hash.Hash allocation) because it runs on every routed request. Bare
// FNV-1a leaves keys differing only in trailing bytes correlated in the
// high bits — which is exactly what ring placement sorts on — so the
// finalizer's avalanche is what makes similar workload names land on
// different replicas.
//
//mipp:hotpath
func hash64(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pick places key on the ring: the first healthy member at or clockwise of
// the key's hash whose in-flight count is under the bounded-load cap. When
// every healthy member is at the cap (transiently possible between the cap
// read and the walk) the first healthy successor wins, so a pick never
// fails while any member is healthy. An idle ring is deterministic: same
// key, same member.
//
//mipp:hotpath
func (r *ring) pick(key string) *member {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	var total int64
	healthy := 0
	for _, m := range r.members {
		if m.healthy.Load() {
			healthy++
			total += m.inflight.Load()
		}
	}
	if healthy == 0 {
		return nil
	}
	limit := int64(math.Ceil(r.load * float64(total+1) / float64(healthy)))
	var fallback *member
	for k := 0; k < len(r.points); k++ {
		m := r.points[(start+k)%len(r.points)].m
		if !m.healthy.Load() {
			continue
		}
		if fallback == nil {
			fallback = m
		}
		if m.inflight.Load() < limit {
			return m
		}
	}
	return fallback
}

// spread measures how evenly the virtual nodes divide the hash circle's
// keyspace among members: the largest member's share of arc length over the
// ideal 1/N share. 1.0 is perfectly even; DefaultVnodes keeps it within a
// few percent. Fixed at construction, exposed as a gauge so an operator can
// see a badly-balanced ring without reading code.
func (r *ring) spread() float64 {
	if len(r.points) == 0 || len(r.members) == 0 {
		return 0
	}
	arcs := make(map[*member]uint64, len(r.members))
	prev := r.points[len(r.points)-1].hash // wraparound arc belongs to point 0
	for _, p := range r.points {
		arcs[p.m] += p.hash - prev // uint64 wraparound handles the seam
		prev = p.hash
	}
	var max uint64
	for _, a := range arcs {
		if a > max {
			max = a
		}
	}
	ideal := math.MaxUint64 / float64(len(r.members))
	return float64(max) / ideal
}

// healthyMembers returns the members currently in rotation, sorted by URL.
func (r *ring) healthyMembers() []*member {
	out := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		if m.healthy.Load() {
			out = append(out, m)
		}
	}
	return out
}
