package mipp

import (
	"fmt"

	"mipp/internal/profiler"
	"mipp/internal/trace"
	"mipp/internal/workload"
)

// Stream is a workload's dynamic micro-op stream, the input to profiling and
// to the cycle-level reference simulator.
type Stream = trace.Stream

// Workloads returns the names of the built-in synthetic SPEC-like benchmark
// suite.
func Workloads() []string { return workload.Names() }

// DescribeWorkloads returns one human-readable line per built-in workload.
func DescribeWorkloads() []string { return workload.Describe() }

// GenerateWorkload synthesizes the dynamic micro-op stream of a built-in
// workload: n micro-ops with the given generator seed (0 selects the
// workload's default seed).
func GenerateWorkload(name string, n int, seed int64) (*Stream, error) {
	return workload.Generate(name, n, seed)
}

// Profiler runs the Architecture Independent Profiler (AIP): one pass over a
// workload's micro-op stream collects every micro-architecture independent
// statistic the analytical model needs. Profiling is the only expensive step
// of the pipeline; the resulting Profile is reused across arbitrarily many
// configurations.
//
// The zero value is ready to use with the paper's default sampling
// parameters; use NewProfiler with options to tune them.
type Profiler struct {
	opts profiler.Options
	seed int64
}

// ProfilerOption customizes a Profiler.
type ProfilerOption func(*Profiler)

// WithSeed sets the workload-generator seed used by Profiler.Profile
// (0 selects each workload's default seed).
func WithSeed(seed int64) ProfilerOption {
	return func(p *Profiler) { p.seed = seed }
}

// WithMicroTrace sets the micro-trace sampling parameters (§5.1): a detailed
// micro-trace of micro uops is profiled at the start of every window of
// window uops. Zero values select the defaults (1000-uop micro-traces, a
// window auto-sized to profile ~1% of the stream).
func WithMicroTrace(micro, window int) ProfilerOption {
	return func(p *Profiler) {
		p.opts.MicroUops = micro
		p.opts.WindowUops = window
	}
}

// WithROBs sets the profiled ROB sizes for the dependence-chain and
// cold-miss statistics (default: powers of two from 16 to 512).
func WithROBs(robs ...int) ProfilerOption {
	return func(p *Profiler) { p.opts.ROBs = robs }
}

// WithBursts sets the number of reuse-distance bursts the stream is split
// into (§5.4.1, default 12).
func WithBursts(n int) ProfilerOption {
	return func(p *Profiler) { p.opts.Bursts = n }
}

// WithEntropyHistory sets the local-history length of the linear branch
// entropy metric in bits (default 12).
func WithEntropyHistory(bits uint) ProfilerOption {
	return func(p *Profiler) { p.opts.EntropyHistory = bits }
}

// NewProfiler returns a Profiler with the given options applied over the
// paper's defaults.
func NewProfiler(opts ...ProfilerOption) *Profiler {
	p := &Profiler{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Profile synthesizes workload name at n micro-ops and profiles it in one
// pass.
func (pr *Profiler) Profile(name string, n int) (*Profile, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mipp: profile %s: non-positive trace length %d", name, n)
	}
	stream, err := workload.Generate(name, n, pr.seed)
	if err != nil {
		return nil, fmt.Errorf("mipp: profile: %w", err)
	}
	return pr.ProfileStream(stream), nil
}

// ProfileStream profiles an already-synthesized micro-op stream.
func (pr *Profiler) ProfileStream(s *Stream) *Profile {
	return &Profile{raw: profiler.Run(s, pr.opts)}
}
