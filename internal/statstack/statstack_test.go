package statstack

import (
	"testing"
	"testing/quick"

	"mipp/internal/cache"
	"mipp/internal/config"
	"mipp/internal/profiler"
	"mipp/internal/stats"
	"mipp/internal/trace"
	"mipp/internal/workload"
)

func profileOf(t *testing.T, name string, n int) *profiler.Profile {
	t.Helper()
	s := workload.MustGenerate(name, n, 0)
	return profiler.Run(s, profiler.Options{})
}

func TestExpectedSDBounds(t *testing.T) {
	h := stats.NewHistogram()
	for _, r := range []int64{0, 1, 5, 10, 10, 50, 200, 1000} {
		h.Add(r)
	}
	c := New(h)
	// Property: 0 <= SD(R) <= R, and SD is non-decreasing.
	prev := 0.0
	for r := int64(0); r <= 2000; r += 7 {
		sd := c.ExpectedSD(r)
		if sd < 0 || sd > float64(r) {
			t.Fatalf("SD(%d) = %f out of [0, R]", r, sd)
		}
		if sd < prev {
			t.Fatalf("SD not monotonic at %d: %f < %f", r, sd, prev)
		}
		prev = sd
	}
}

func TestExpectedSDQuickProperty(t *testing.T) {
	// For any reuse histogram and any r, SD(r) stays within [0, r].
	f := func(keys []uint16, r uint16) bool {
		h := stats.NewHistogram()
		for _, k := range keys {
			h.Add(int64(k % 4096))
		}
		if h.Total() == 0 {
			return true
		}
		c := New(h)
		sd := c.ExpectedSD(int64(r))
		return sd >= 0 && sd <= float64(r)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRatioMonotonicInCacheSize(t *testing.T) {
	p := profileOf(t, "gcc", 200_000)
	c := New(p.ReuseAll)
	prev := 1.1
	for _, lines := range []float64{64, 256, 1024, 4096, 16384, 131072} {
		mr := c.MissRatio(p.ReuseLoad, float64(p.ColdLoads), lines)
		if mr < 0 || mr > 1 {
			t.Fatalf("miss ratio %f out of range at %f lines", mr, lines)
		}
		if mr > prev+1e-9 {
			t.Fatalf("miss ratio increased with cache size: %f -> %f at %f lines", prev, mr, lines)
		}
		prev = mr
	}
}

// TestAgainstExactStackSim validates the statistical conversion against the
// exact Fenwick-tree stack-distance simulator on a real access stream.
func TestAgainstExactStackSim(t *testing.T) {
	s := workload.MustGenerate("bzip2", 150_000, 0)
	sim := cache.NewStackSim()
	var distances []int
	for i := range s.Uops {
		u := &s.Uops[i]
		if u.Class.IsMem() {
			distances = append(distances, sim.Access(u.Addr>>6))
		}
	}
	p := profiler.Run(s, profiler.Options{})
	for _, lines := range []float64{512, 4096, 131072} {
		exactMisses := 0
		for _, d := range distances {
			if float64(d) >= lines {
				exactMisses++
			}
		}
		exact := float64(exactMisses) / float64(len(distances))
		// Per-burst conversion, as Predict does (§5.4.1).
		var missMass float64
		for _, b := range p.Bursts {
			c := New(b.All)
			com := stats.NewHistogram()
			com.Merge(b.Load)
			com.Merge(b.Store)
			missMass += c.MissRatio(com, float64(b.ColdAll), lines) * float64(b.Loads+b.Stores)
		}
		pred := missMass / float64(p.MemAccesses)
		if diff := pred - exact; diff > 0.08 || diff < -0.08 {
			t.Errorf("lines=%v: predicted miss ratio %.4f vs exact %.4f", lines, pred, exact)
		}
	}
}

// TestAgainstFunctionalCacheSim is the Figure 4.2 validation: StatStack MPKI
// versus simulated set-associative LRU MPKI for the 32 KB / 256 KB / 8 MB
// hierarchy.
func TestAgainstFunctionalCacheSim(t *testing.T) {
	cfg := config.Reference()
	for _, name := range []string{"libquantum", "mcf", "milc", "gamess", "gcc"} {
		s := workload.MustGenerate(name, 200_000, 0)
		h := cache.NewHierarchy(cfg.L1D, cfg.L2, cfg.L3)
		for i := range s.Uops {
			u := &s.Uops[i]
			if u.Class.IsMem() {
				h.Access(u.Addr, u.Class == trace.Store)
			}
		}
		p := profiler.Run(s, profiler.Options{})
		pred := Predict(p, cfg.CacheLevels(), cfg.L1I)
		instr := int64(s.Instructions())
		for lvl := 0; lvl < 3; lvl++ {
			simMPKI := h.Levels[lvl].Stats.MPKI(instr)
			predMPKI := pred.Levels[lvl].MPKI
			// The paper reports ~4-7% error for benchmarks above
			// 10 MPKI; we allow a wider band plus an absolute floor
			// for low-MPKI benchmarks.
			diff := predMPKI - simMPKI
			if diff < 0 {
				diff = -diff
			}
			if simMPKI > 10 {
				if diff/simMPKI > 0.35 {
					t.Errorf("%s L%d: predicted %.1f vs simulated %.1f MPKI", name, lvl+1, predMPKI, simMPKI)
				}
			} else if diff > 6 {
				t.Errorf("%s L%d: predicted %.1f vs simulated %.1f MPKI (low-MPKI band)", name, lvl+1, predMPKI, simMPKI)
			}
		}
	}
}

func TestStaticLoadMissRatioRange(t *testing.T) {
	p := profileOf(t, "soplex", 100_000)
	curve := New(p.ReuseAll)
	for static := range p.PerStaticReuse {
		mr := StaticLoadMissRatio(p, curve, static, 4096)
		if mr < 0 || mr > 1 {
			t.Fatalf("static %d: miss ratio %f out of range", static, mr)
		}
	}
}
