// Package search turns raw evaluation throughput into answers over
// combinatorially large design spaces: the paper's headline use case is
// asking one micro-architecture independent profile thousands of
// configuration questions (Chapter 7), and this package asks them on
// purpose instead of exhaustively.
//
// The layering is Space → Strategy → Runner → Report:
//
//   - an arch.Space describes axes (width, ROB, cache geometry,
//     frequency-voltage points, prefetcher) and enumerates configurations
//     lazily, so the space is never materialized;
//   - a Strategy (Exhaustive, Random, HillClimb, Genetic) decides which
//     indices to look at next, one seeded generation at a time;
//   - the Runner evaluates each generation as one batch through an
//     Evaluator — mipp.NewSearchEvaluator bridges to Predictor.PredictBatch
//     chunked over the shared worker pool — memoizing every point so
//     revisits are free;
//   - the Report carries the best point, the Pareto front over everything
//     evaluated, and a per-generation convergence trace.
//
// Every random decision flows from Options.Seed through one math/rand
// stream consumed on a single goroutine, and batch evaluation is
// deterministic for any worker count, so the same seed produces a
// byte-identical Report at 1 worker and at GOMAXPROCS — locally or through
// the /v1/search service.
package search

import (
	"cmp"
	"context"
	"fmt"
	"math/rand"
	"slices"

	"mipp/arch"
)

// Objective selects the scalar a strategy minimizes.
type Objective string

// Objectives: execution time, energy, and the energy-delay products that
// trade them off (EDP, and the DVFS-invariant ED²P of §7.3).
const (
	ObjectiveTime   Objective = "time"
	ObjectiveEnergy Objective = "energy"
	ObjectiveEDP    Objective = "edp"
	ObjectiveED2P   Objective = "ed2p"
)

// Validate rejects unknown objective names ("" means ObjectiveTime).
func (o Objective) Validate() error {
	switch o {
	case "", ObjectiveTime, ObjectiveEnergy, ObjectiveEDP, ObjectiveED2P:
		return nil
	}
	return fmt.Errorf("search: unknown objective %q (want time, energy, edp or ed2p)", o)
}

func (o Objective) value(m Metrics) float64 {
	switch o {
	case ObjectiveEnergy:
		return m.EnergyJoules
	case ObjectiveEDP:
		return m.EDP
	case ObjectiveED2P:
		return m.ED2P
	}
	return m.TimeSeconds
}

// Metrics is what an Evaluator reports per configuration: the scalars every
// objective and constraint is computed from.
type Metrics struct {
	TimeSeconds  float64
	Watts        float64
	EnergyJoules float64
	EDP          float64
	ED2P         float64
}

// Evaluator answers one batch of configurations. mipp.NewSearchEvaluator
// adapts a compiled Predictor (batched kernel, shared worker pool); tests
// substitute synthetic ones. Results must be deterministic and positional:
// out[i] corresponds to configs[i].
//
// Reuse contract: an Evaluator may reuse its returned slice — the metrics
// are valid only until the next call, and callers that retain them (the
// Runner's memo does) must copy first. An Evaluator is driven serially by
// its Runner and need not be safe for concurrent calls.
type Evaluator func(ctx context.Context, configs []*arch.Config) ([]Metrics, error)

// Constraints restricts the feasible region (Table 7.1's power-capped
// optimization, plus a relative area budget). Zero values mean
// unconstrained.
type Constraints struct {
	// MaxWatts caps total predicted power.
	MaxWatts float64 `json:"max_watts,omitempty"`
	// MaxArea caps the AreaProxy score (reference core ≈ 1).
	MaxArea float64 `json:"max_area,omitempty"`
}

// AreaProxy scores the relative silicon cost of a configuration: a weighted
// sum of the width, window and cache capacities, normalized so the
// reference architecture scores 1.0. It is a pruning proxy for constrained
// search, not a floorplan model.
func AreaProxy(c *arch.Config) float64 {
	return 0.22*float64(c.DispatchWidth)/4 +
		0.28*float64(c.ROB)/128 +
		0.08*float64(c.L1D.SizeBytes)/(32<<10) +
		0.18*float64(c.L2.SizeBytes)/(256<<10) +
		0.24*float64(c.L3.SizeBytes)/(8<<20)
}

// Options parameterizes a search run.
type Options struct {
	// Objective is the scalar to minimize (default ObjectiveTime).
	Objective Objective
	// Constraints restricts the feasible region.
	Constraints Constraints
	// Seed drives every random decision; the same seed reproduces the
	// same Report exactly.
	Seed int64
	// Budget caps unique evaluations (0 = unlimited). Strategies stop
	// when the next generation would not fit.
	Budget int
	// OnProgress, when set, is called after every generation with
	// cumulative progress. It must not block.
	OnProgress func(Progress)
	// OnUpdate, when set, is called after every generation with the trace
	// step just recorded, the incumbent, and — only on generations where
	// it changed — the Pareto front over everything evaluated so far. It
	// is the streaming sink behind SSE search events; like OnProgress it
	// must not block. Leaving it nil costs nothing: the incremental front
	// is only computed while a sink is attached, and the final Report is
	// assembled the same way either way.
	OnUpdate func(Update)
	// EscalateTopK, with OnEscalate set, hands the report's top-K
	// evaluations (the incumbent plus the best Pareto-front points, in
	// deterministic order) to OnEscalate after the search completes — the
	// ground-truth escalation seam: the configs a search is about to
	// recommend are exactly the ones worth a reference simulation.
	EscalateTopK int
	// OnEscalate receives the top-K evaluations once, after the report is
	// assembled. It may block (the search is already over) but runs under
	// the search's ctx discipline: callers that need cancellation should
	// capture a context.
	OnEscalate func(evals []Eval)
}

// Progress is a per-generation progress snapshot.
type Progress struct {
	Generation  int
	Evaluations int
	// Best is the incumbent (zero Eval with Index -1 until a feasible
	// point exists).
	Best Eval
}

// Update is one generation's streaming snapshot, delivered to
// Options.OnUpdate.
type Update struct {
	// Step is the convergence-trace entry this generation appended.
	Step TraceStep
	// Best is the incumbent (Index -1 until a feasible point exists).
	Best Eval
	// Front is the Pareto front over every feasible point evaluated so
	// far, set only on generations where it changed (nil otherwise). The
	// slice is freshly built per emission; consumers may retain it.
	Front []Eval
}

// Eval is one evaluated design point.
type Eval struct {
	// Index is the point's position in the space enumeration.
	Index int `json:"index"`
	// Config is the generated configuration name.
	Config       string  `json:"config"`
	TimeSeconds  float64 `json:"time_seconds"`
	Watts        float64 `json:"watts"`
	EnergyJoules float64 `json:"energy_joules"`
	EDP          float64 `json:"edp"`
	ED2P         float64 `json:"ed2p"`
	// Area is the AreaProxy score.
	Area float64 `json:"area"`
	// Fitness is the objective value (lower is better).
	Fitness float64 `json:"fitness"`
	// Feasible reports whether the point satisfies the constraints;
	// Violation is the constraint excess guiding infeasible comparisons.
	Feasible  bool    `json:"feasible"`
	Violation float64 `json:"violation,omitempty"`
}

// Better reports whether a beats b: feasible beats infeasible, smaller
// violation breaks infeasible ties, then lower fitness, then lower index —
// a total, deterministic order.
func Better(a, b Eval) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	if !a.Feasible && a.Violation != b.Violation {
		return a.Violation < b.Violation
	}
	if a.Fitness != b.Fitness {
		return a.Fitness < b.Fitness
	}
	return a.Index < b.Index
}

// TraceStep is one convergence-trace entry, recorded per generation.
type TraceStep struct {
	Generation  int `json:"generation"`
	Evaluations int `json:"evaluations"`
	// BestIndex/BestFitness track the incumbent (-1/0 before any
	// feasible point is found).
	BestIndex   int     `json:"best_index"`
	BestFitness float64 `json:"best_fitness"`
}

// Report is the outcome of one search run. Its JSON form is the wire shape
// served by /v1/search — api.SearchReport aliases it — which is what makes
// local and remote runs byte-identical for the same seed.
type Report struct {
	// Workload names the profile searched against (filled by the caller;
	// search itself never sees it).
	Workload string `json:"workload,omitempty"`
	// Strategy and Objective echo the run parameters.
	Strategy  string `json:"strategy"`
	Objective string `json:"objective"`
	Seed      int64  `json:"seed"`
	// SpaceSize is the full space cardinality; Evaluations is how many
	// unique points the strategy actually looked at.
	SpaceSize   int `json:"space_size"`
	Evaluations int `json:"evaluations"`
	Generations int `json:"generations"`
	// Feasible counts evaluated points satisfying the constraints.
	Feasible int `json:"feasible"`
	// Best is the incumbent (nil when no feasible point was found).
	Best *Eval `json:"best,omitempty"`
	// Front is the Pareto front over every feasible evaluated point on
	// the (time, power) plane, sorted by time.
	Front []Eval `json:"front"`
	// Trace is the per-generation convergence trace.
	Trace []TraceStep `json:"trace"`
}

// TopK returns up to k distinct evaluations worth escalating to a
// ground-truth run: the incumbent first, then Pareto-front points by
// ascending (Fitness, Index). The order is a pure function of the report,
// so escalation stays as reproducible as the search itself.
func (r *Report) TopK(k int) []Eval {
	if k <= 0 {
		return nil
	}
	out := make([]Eval, 0, k)
	seen := make(map[int]bool, k)
	if r.Best != nil {
		out = append(out, *r.Best)
		seen[r.Best.Index] = true
	}
	front := append([]Eval(nil), r.Front...)
	slices.SortFunc(front, func(a, b Eval) int {
		if c := cmp.Compare(a.Fitness, b.Fitness); c != 0 {
			return c
		}
		return cmp.Compare(a.Index, b.Index)
	})
	for _, e := range front {
		if len(out) >= k {
			break
		}
		if seen[e.Index] {
			continue
		}
		seen[e.Index] = true
		out = append(out, e)
	}
	return out
}

// Strategy decides which points of the space to evaluate, generation by
// generation, through the Runner it is handed. Implementations must draw
// randomness only from the Runner's seeded stream and must respect
// Remaining() — that is what makes runs reproducible and budgeted.
type Strategy interface {
	// Name is the strategy's wire name.
	Name() string
	// Search drives the runner until converged, out of budget, or ctx is
	// cancelled.
	Search(ctx context.Context, r *Runner) error
}

// Runner is the evaluation driver strategies program against: it
// materializes requested indices from the space, evaluates each generation
// as one batch, memoizes every point, and records the convergence trace.
type Runner struct {
	space *arch.Space
	eval  Evaluator
	opts  Options
	rng   *rand.Rand

	// The memo (space index → position in evals) lives in a direct-indexed
	// slab when the space is small enough to afford one, and in a map
	// otherwise: the slab turns the three memo touches per evaluation
	// (dedup probe, reservation, out-mapping) into array indexing. Slab
	// entries store position+1 so the zero value means "unseen".
	seenSlab []int32
	seen     map[int]int32
	evals    []Eval
	best     int // position of incumbent in evals, -1 until feasible
	gens     int
	trace    []TraceStep

	cfgScratch []*arch.Config
	idxScratch []int
	// outScratch backs Evaluate's returned slice, reused across
	// generations (see Evaluate's reuse contract).
	outScratch []Eval

	// lastFront is the most recently emitted incremental front, used to
	// suppress no-change emissions; only maintained while Options.OnUpdate
	// is set.
	lastFront []Eval
}

// seenSlabMax bounds the memo slab at 16 MiB of int32; spaces larger than
// this fall back to the map so runner memory scales with the sample, not
// the space.
const seenSlabMax = 1 << 22

func newRunner(space *arch.Space, ev Evaluator, opts Options) *Runner {
	hint := opts.Budget
	if hint <= 0 || hint > 1<<20 {
		hint = 1 << 12
	}
	r := &Runner{
		space: space,
		eval:  ev,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		evals: make([]Eval, 0, hint),
		best:  -1,
	}
	if n := space.Size(); n <= seenSlabMax {
		r.seenSlab = make([]int32, n)
	} else {
		r.seen = make(map[int]int32, hint)
	}
	return r
}

// lookup returns the memo position of space index i, if evaluated.
//
//mipp:hotpath
func (r *Runner) lookup(i int) (int32, bool) {
	if r.seenSlab != nil {
		p := r.seenSlab[i]
		return p - 1, p != 0
	}
	p, ok := r.seen[i]
	return p, ok
}

//mipp:hotpath
func (r *Runner) record(i int, pos int32) {
	if r.seenSlab != nil {
		r.seenSlab[i] = pos + 1
		return
	}
	r.seen[i] = pos
}

func (r *Runner) forget(i int) {
	if r.seenSlab != nil {
		r.seenSlab[i] = 0
		return
	}
	delete(r.seen, i)
}

// Space returns the space under search.
func (r *Runner) Space() *arch.Space { return r.space }

// SpaceSize returns the space cardinality.
func (r *Runner) SpaceSize() int { return r.space.Size() }

// RNG returns the run's seeded random stream. It must be consumed from one
// goroutine only (strategies are single-threaded; the batch evaluation
// underneath is where parallelism lives).
func (r *Runner) RNG() *rand.Rand { return r.rng }

// Evaluations returns the number of unique points evaluated so far.
func (r *Runner) Evaluations() int { return len(r.evals) }

// Remaining returns how many unique evaluations the budget still allows
// (a large number when unbudgeted).
func (r *Runner) Remaining() int {
	if r.opts.Budget <= 0 {
		return int(^uint(0) >> 1)
	}
	return r.opts.Budget - len(r.evals)
}

// Seen reports whether index i has already been evaluated.
func (r *Runner) Seen(i int) bool {
	_, ok := r.lookup(i)
	return ok
}

// Best returns the incumbent; ok is false while no feasible point exists.
func (r *Runner) Best() (Eval, bool) {
	if r.best < 0 {
		return Eval{Index: -1}, false
	}
	return r.evals[r.best], true
}

// Evaluate runs one generation: every not-yet-seen index in the request is
// materialized and evaluated as a single batch (deduplicated — revisits are
// served from the memo), and out[i] is the Eval for indices[i]. It errors
// if the new unique points would exceed the remaining budget; strategies
// trim their generations first. A generation is recorded in the trace even
// when fully memoized, so the trace mirrors the strategy's control flow.
//
// The returned slice is backed by scratch reused across generations: it is
// valid until the next Evaluate call, and strategies that keep Evals across
// generations must copy the elements (they are plain values).
//
//mipp:hotpath
func (r *Runner) Evaluate(ctx context.Context, indices []int) ([]Eval, error) {
	fresh := r.idxScratch[:0]
	for _, idx := range indices {
		if _, ok := r.lookup(idx); ok {
			continue
		}
		// Reserve the slot now so duplicates within this generation
		// dedupe too; the position is filled below.
		r.record(idx, int32(len(r.evals)))
		r.evals = append(r.evals, Eval{Index: idx})
		fresh = append(fresh, idx)
	}
	r.idxScratch = fresh
	// Evaluate the generation in enumeration order regardless of how the
	// strategy drew it: ascending indices vary the space's inner axes
	// fastest, so consecutive configs share their back-end and geometry and
	// the batch kernel's caches hit instead of thrashing. Results are
	// per-config pure, so order only affects throughput (and which of two
	// exactly-tied points is recorded as best — still deterministic).
	slices.Sort(fresh)
	if r.opts.Budget > 0 && len(r.evals) > r.opts.Budget {
		// Roll the reservations back so the memo never holds phantom
		// never-evaluated points and Evaluations() stays truthful for
		// strategies that treat the budget error as a soft stop.
		for _, idx := range fresh {
			r.forget(idx)
		}
		r.evals = r.evals[:len(r.evals)-len(fresh)]
		//mipp:allow hotpath cold terminal error path, at most once per search
		return nil, fmt.Errorf("search: budget exhausted (%d evaluations done, %d more requested, budget %d)",
			len(r.evals), len(fresh), r.opts.Budget)
	}

	if len(fresh) > 0 {
		cfgs := r.cfgScratch[:0]
		for _, idx := range fresh {
			cfgs = append(cfgs, r.space.At(idx))
		}
		r.cfgScratch = cfgs
		metrics, err := r.eval(ctx, cfgs)
		if err != nil {
			return nil, err
		}
		if len(metrics) != len(cfgs) {
			//mipp:allow hotpath cold evaluator-contract violation path
			return nil, fmt.Errorf("search: evaluator returned %d metrics for %d configs", len(metrics), len(cfgs))
		}
		for i, idx := range fresh {
			e := r.score(idx, cfgs[i], metrics[i])
			p, _ := r.lookup(idx)
			pos := int(p)
			r.evals[pos] = e
			if e.Feasible && (r.best < 0 || Better(e, r.evals[r.best])) {
				r.best = pos
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	r.gens++
	step := TraceStep{Generation: r.gens, Evaluations: len(r.evals), BestIndex: -1}
	if r.best >= 0 {
		step.BestIndex = r.evals[r.best].Index
		step.BestFitness = r.evals[r.best].Fitness
	}
	r.trace = append(r.trace, step)
	if r.opts.OnProgress != nil {
		p := Progress{Generation: r.gens, Evaluations: len(r.evals), Best: Eval{Index: -1}}
		if r.best >= 0 {
			p.Best = r.evals[r.best]
		}
		r.opts.OnProgress(p)
	}
	if r.opts.OnUpdate != nil {
		u := Update{Step: step, Best: Eval{Index: -1}}
		if r.best >= 0 {
			u.Best = r.evals[r.best]
		}
		front := paretoFront(r.evals)
		if !equalFronts(front, r.lastFront) {
			r.lastFront = front
			u.Front = front
		}
		r.opts.OnUpdate(u)
	}

	if cap(r.outScratch) < len(indices) {
		r.outScratch = make([]Eval, len(indices))
	}
	out := r.outScratch[:len(indices)]
	for i, idx := range indices {
		p, _ := r.lookup(idx)
		out[i] = r.evals[p]
	}
	return out, nil
}

// score derives the Eval for one evaluated configuration.
//
//mipp:hotpath
func (r *Runner) score(idx int, c *arch.Config, m Metrics) Eval {
	e := Eval{
		Index:        idx,
		Config:       c.Name,
		TimeSeconds:  m.TimeSeconds,
		Watts:        m.Watts,
		EnergyJoules: m.EnergyJoules,
		EDP:          m.EDP,
		ED2P:         m.ED2P,
		Area:         AreaProxy(c),
		Fitness:      r.opts.Objective.value(m),
		Feasible:     true,
	}
	if lim := r.opts.Constraints.MaxWatts; lim > 0 && e.Watts > lim {
		e.Feasible = false
		e.Violation += e.Watts - lim
	}
	if lim := r.opts.Constraints.MaxArea; lim > 0 && e.Area > lim {
		e.Feasible = false
		e.Violation += e.Area - lim
	}
	return e
}

// report assembles the final Report.
func (r *Runner) report(strategy string) *Report {
	obj := r.opts.Objective
	if obj == "" {
		obj = ObjectiveTime
	}
	rep := &Report{
		Strategy:    strategy,
		Objective:   string(obj),
		Seed:        r.opts.Seed,
		SpaceSize:   r.space.Size(),
		Evaluations: len(r.evals),
		Generations: r.gens,
		Front:       []Eval{},
		Trace:       r.trace,
	}
	if rep.Trace == nil {
		rep.Trace = []TraceStep{}
	}
	for i := range r.evals {
		if r.evals[i].Feasible {
			rep.Feasible++
		}
	}
	if r.best >= 0 {
		best := r.evals[r.best]
		rep.Best = &best
	}
	rep.Front = paretoFront(r.evals)
	return rep
}

// paretoFront returns the non-dominated feasible subset on (time, power),
// sorted by time, with deterministic index tie-breaking (on exact
// time/power ties the smallest space index wins) — the same front
// internal/dse computes, kept index-aware so entries retain their space
// position. Infeasible evals are skipped here rather than copied out by
// the caller, so assembling a report never duplicates the memo.
//
// The front is built as an incremental staircase rather than by sorting
// the whole memo: it stays ordered by time ascending with power strictly
// descending along it, and each candidate either falls to one
// binary-search dominance probe or splices in, evicting the members it
// now dominates. Fronts are small (tens of points for thousands of
// evals), so this is O(n log k) against the sort's O(n log n) — on the
// search hot path the full sort was the driver's single largest overhead
// over the raw kernel. frontKey keeps the staircase compact: three words
// per member instead of a wide Eval.
type frontKey struct {
	t, w float64
	i    int32
}

func frontKeyByTime(a, b frontKey) int { return cmp.Compare(a.t, b.t) }

//mipp:hotpath
func paretoFront(evals []Eval) []Eval {
	var keys []frontKey
	for i := range evals {
		e := &evals[i]
		if !e.Feasible {
			continue
		}
		p := frontKey{t: e.TimeSeconds, w: e.Watts, i: int32(i)}
		lo, _ := slices.BinarySearchFunc(keys, p, frontKeyByTime)
		if lo < len(keys) && keys[lo].t == p.t {
			m := &keys[lo]
			if m.w < p.w {
				continue // dominated: same time, less power already held
			}
			if m.w == p.w {
				if evals[p.i].Index < evals[m.i].Index {
					m.i = p.i // exact tie: canonical member is the lowest index
				}
				continue
			}
			// p dominates m (same time, less power): replace it, then fall
			// through to evict any later members p also dominates.
			*m = p
		} else {
			if lo > 0 && keys[lo-1].w <= p.w {
				continue // dominated by the staircase member just left of it
			}
			keys = slices.Insert(keys, lo, p)
		}
		hi := lo + 1
		for hi < len(keys) && keys[hi].w >= p.w {
			hi++
		}
		keys = slices.Delete(keys, lo+1, hi)
	}
	front := make([]Eval, len(keys))
	for i, k := range keys {
		front[i] = evals[k.i]
	}
	return front
}

// equalFronts reports whether two fronts hold the same points (Eval is
// comparable, and paretoFront output is canonically ordered).
func equalFronts(a, b []Eval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run executes one search: validate, build the runner, let the strategy
// drive, and assemble the report. The caller owns Report.Workload.
func Run(ctx context.Context, ev Evaluator, space *arch.Space, st Strategy, opts Options) (*Report, error) {
	if ev == nil {
		return nil, fmt.Errorf("search: nil evaluator")
	}
	if st == nil {
		return nil, fmt.Errorf("search: nil strategy")
	}
	if space == nil {
		return nil, fmt.Errorf("search: nil space")
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Objective.Validate(); err != nil {
		return nil, err
	}
	if opts.Budget < 0 {
		return nil, fmt.Errorf("search: negative budget %d", opts.Budget)
	}
	r := newRunner(space, ev, opts)
	if err := st.Search(ctx, r); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := r.report(st.Name())
	if opts.OnEscalate != nil && opts.EscalateTopK > 0 {
		if top := rep.TopK(opts.EscalateTopK); len(top) > 0 {
			opts.OnEscalate(top)
		}
	}
	return rep, nil
}
