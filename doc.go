// Package mipp reproduces "Micro-architecture independent analytical
// processor performance and power modeling" (Van den Steen et al.,
// ISPASS 2015) and its thesis extensions: a one-pass micro-architecture
// independent profiler (internal/profiler), an extended interval model for
// performance and power prediction (internal/core, internal/mlp,
// internal/power), the statistical cache and branch models it builds on
// (internal/statstack, internal/branch), a cycle-level out-of-order
// reference simulator used as ground truth (internal/ooo), and the
// design-space exploration machinery (internal/dse, internal/empirical).
//
// The top-level benchmark suite (bench_test.go) regenerates every table and
// figure of the paper's evaluation; cmd/experiments prints the same rows
// interactively. See README.md, DESIGN.md and EXPERIMENTS.md.
package mipp
