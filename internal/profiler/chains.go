package profiler

import (
	"mipp/internal/stats"
	"mipp/internal/trace"
)

// StandardROBs is the default set of profiled ROB sizes (§5.2): every
// multiple of 16 from 16 to 256. Dependence-chain lengths for other sizes
// are interpolated with the logarithmic fit of Equation 5.2.
func StandardROBs() []int {
	robs := make([]int, 0, 16)
	for r := 16; r <= 256; r += 16 {
		robs = append(robs, r)
	}
	return robs
}

// ChainSet holds the three dependence-chain statistics of §3.3 — average
// path (AP), average branch path (ABP) and critical path (CP) — for a set of
// profiled ROB sizes.
type ChainSet struct {
	ROBs []int     `json:"robs"`
	AP   []float64 `json:"ap"`
	ABP  []float64 `json:"abp"`
	CP   []float64 `json:"cp"`
}

// newChainSet allocates a zeroed ChainSet over robs.
func newChainSet(robs []int) *ChainSet {
	return &ChainSet{
		ROBs: robs,
		AP:   make([]float64, len(robs)),
		ABP:  make([]float64, len(robs)),
		CP:   make([]float64, len(robs)),
	}
}

// At returns (AP, ABP, CP) for an arbitrary ROB size. Sizes between two
// profiled points are interpolated with a per-segment logarithmic fit
// (Equations 5.2-5.4); sizes outside the profiled range extrapolate the
// nearest segment's fit.
func (c *ChainSet) At(rob int) (ap, abp, cp float64) {
	if len(c.ROBs) == 0 {
		return 0, 0, 0
	}
	if len(c.ROBs) == 1 {
		return c.AP[0], c.ABP[0], c.CP[0]
	}
	// Find the segment [i, i+1] bracketing rob.
	i := 0
	for i < len(c.ROBs)-2 && rob > c.ROBs[i+1] {
		i++
	}
	xs := []float64{float64(c.ROBs[i]), float64(c.ROBs[i+1])}
	interp := func(ys []float64) float64 {
		fit := stats.FitLog(xs, []float64{ys[i], ys[i+1]})
		v := fit.Eval(float64(rob))
		// Chain lengths include the instruction itself, so 1 is the
		// floor; extrapolating the log fit to tiny windows can
		// otherwise go negative (§5.2).
		if v < 1 {
			v = 1
		}
		return v
	}
	return interp(c.AP), interp(c.ABP), interp(c.CP)
}

// scale divides all values by n (used to average across buffers).
func (c *ChainSet) scale(n float64) {
	if n == 0 {
		return
	}
	for i := range c.ROBs {
		c.AP[i] /= n
		c.ABP[i] /= n
		c.CP[i] /= n
	}
}

// addWeighted accumulates other × w into c (same ROB grid required).
func (c *ChainSet) addWeighted(other *ChainSet, w float64) {
	for i := range c.ROBs {
		c.AP[i] += other.AP[i] * w
		c.ABP[i] += other.ABP[i] * w
		c.CP[i] += other.CP[i] * w
	}
}

// chainBuffers computes AP/ABP/CP for every requested ROB size over the uops
// window following Algorithm 3.1: a buffer of B uops slides over the window;
// at each position the per-uop producing-chain depths are recomputed and
// averaged.
//
// The depth of a uop is 1 + the maximum depth among its in-buffer producers
// (so an independent uop has depth 1), matching the worked example of
// Figure 3.3. Complexity is O(N·B) per ROB size.
func chainBuffers(uops []trace.Uop, robs []int) *ChainSet {
	out := newChainSet(robs)
	for ri, rob := range robs {
		ap, abp, cp := chainsForROB(uops, rob)
		out.AP[ri] = ap
		out.ABP[ri] = abp
		out.CP[ri] = cp
	}
	return out
}

func chainsForROB(uops []trace.Uop, rob int) (ap, abp, cp float64) {
	n := len(uops)
	if n == 0 {
		return 0, 0, 0
	}
	b := rob
	if b > n {
		b = n
	}
	depth := make([]float64, b)
	var apSum, abpSum, cpSum float64
	var buffers, branchBuffers float64
	// Slide the buffer over [start, start+b).
	for start := 0; start+b <= n; start++ {
		var sum, maxDepth, brSum float64
		branches := 0.0
		for j := 0; j < b; j++ {
			i := start + j
			u := &uops[i]
			d := 0.0
			if p := int(u.SrcDist1); p > 0 && p <= j {
				if dp := depth[j-p]; dp > d {
					d = dp
				}
			}
			if p := int(u.SrcDist2); p > 0 && p <= j {
				if dp := depth[j-p]; dp > d {
					d = dp
				}
			}
			d++
			depth[j] = d
			sum += d
			if d > maxDepth {
				maxDepth = d
			}
			if u.Class == trace.Branch {
				branches++
				brSum += d
			}
		}
		apSum += sum / float64(b)
		cpSum += maxDepth
		if branches > 0 {
			abpSum += brSum / branches
			branchBuffers++
		}
		buffers++
	}
	if buffers == 0 {
		return 0, 0, 0
	}
	ap = apSum / buffers
	cp = cpSum / buffers
	if branchBuffers > 0 {
		abp = abpSum / branchBuffers
	}
	return ap, abp, cp
}

// loadDependenceHistogram computes the inter-load dependence distribution
// f(ℓ) of §4.4 for a given ROB size: for every load, the number of loads on
// its longest producing dependence path within the last rob uops (including
// itself). ℓ=1 means the load depends on no earlier in-window load.
func loadDependenceHistogram(uops []trace.Uop, rob int) *stats.Histogram {
	h := stats.NewHistogram()
	n := len(uops)
	ldep := make([]int64, n)
	for i := range uops {
		u := &uops[i]
		var d int64
		if p := int(u.SrcDist1); p > 0 && p <= rob && i-p >= 0 {
			if dp := ldep[i-p]; dp > d {
				d = dp
			}
		}
		if p := int(u.SrcDist2); p > 0 && p <= rob && i-p >= 0 {
			if dp := ldep[i-p]; dp > d {
				d = dp
			}
		}
		if u.Class == trace.Load {
			d++
			h.Add(d)
		}
		ldep[i] = d
	}
	return h
}
