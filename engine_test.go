package mipp_test

// Engine tests: the profile registry, predictor-cache hits/invalidations,
// and the batched evaluation semantics (per-item errors, row-major order).

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"mipp"
	"mipp/api"
	"mipp/arch"
)

// enginePayload memoizes one profile per workload for the engine and
// client/server tests, which would otherwise re-profile per test.
var engineProfiles sync.Map

func engineProfile(t *testing.T, workload string) *mipp.Profile {
	t.Helper()
	if p, ok := engineProfiles.Load(workload); ok {
		return p.(*mipp.Profile)
	}
	p := testProfile(t, workload)
	engineProfiles.Store(workload, p)
	return p
}

func newTestEngine(t *testing.T, workloads ...string) *mipp.Engine {
	t.Helper()
	e := mipp.NewEngine()
	for _, w := range workloads {
		if err := e.Register(w, engineProfile(t, w)); err != nil {
			t.Fatalf("Register(%s): %v", w, err)
		}
	}
	return e
}

func TestEngineRegistry(t *testing.T) {
	e := newTestEngine(t, "gcc", "mcf")
	if got := e.WorkloadNames(); len(got) != 2 || got[0] != "gcc" || got[1] != "mcf" {
		t.Errorf("WorkloadNames() = %v, want [gcc mcf]", got)
	}
	if _, ok := e.Profile("gcc"); !ok {
		t.Error("Profile(gcc) not found")
	}
	if _, ok := e.Profile("nope"); ok {
		t.Error("Profile(nope) found")
	}

	// Empty name defaults to the profile's workload.
	e2 := mipp.NewEngine()
	if err := e2.Register("", engineProfile(t, "gcc")); err != nil {
		t.Fatalf("Register(\"\"): %v", err)
	}
	if _, ok := e2.Profile("gcc"); !ok {
		t.Error("defaulted name not registered")
	}
	if err := e2.Register("x", nil); err == nil {
		t.Error("Register(nil profile) did not error")
	}

	if !e.Remove("mcf") {
		t.Error("Remove(mcf) = false")
	}
	if e.Remove("mcf") {
		t.Error("second Remove(mcf) = true")
	}
	if _, err := e.Predictor("mcf", api.PredictorSpec{}); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("Predictor(removed) error = %v, want ErrUnknownWorkload", err)
	}
}

func TestEnginePredictorCache(t *testing.T) {
	e := newTestEngine(t, "gcc")

	pd1, err := e.Predictor("gcc", api.PredictorSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CacheMisses != 1 || st.CacheHits != 0 || st.CachedPredictors != 1 {
		t.Errorf("after first compile: %+v", st)
	}

	// Same options spelled explicitly must hit the same cache entry.
	pd2, err := e.Predictor("gcc", api.PredictorSpec{MLPMode: "stride", DispatchModel: "full"})
	if err != nil {
		t.Fatal(err)
	}
	if pd1 != pd2 {
		t.Error("canonically-equal specs compiled different predictors")
	}
	if st := e.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("after spelled-out hit: %+v", st)
	}

	// A different option set compiles (and caches) separately.
	pd3, err := e.Predictor("gcc", api.PredictorSpec{MLPMode: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if pd3 == pd1 {
		t.Error("different specs shared a predictor")
	}
	if st := e.Stats(); st.CacheMisses != 2 || st.CachedPredictors != 2 {
		t.Errorf("after second compile: %+v", st)
	}

	// Re-registering the workload invalidates its predictors.
	if err := e.Register("gcc", engineProfile(t, "gcc")); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CachedPredictors != 0 {
		t.Errorf("cache not invalidated on re-register: %+v", st)
	}
	pd4, err := e.Predictor("gcc", api.PredictorSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if pd4 == pd1 {
		t.Error("invalidated predictor served from cache")
	}
	if st := e.Stats(); st.CacheMisses != 3 {
		t.Errorf("recompile not counted as miss: %+v", st)
	}

	// Unknown option names are rejected as bad requests.
	if _, err := e.Predictor("gcc", api.PredictorSpec{MLPMode: "psychic"}); !errors.Is(err, mipp.ErrBadRequest) {
		t.Errorf("bad mlp_mode error = %v, want ErrBadRequest", err)
	}
}

// Concurrent first requests for one key must share a single compile and
// all observe the compiled predictor — never a half-initialized entry
// (regression test for the once.Do(empty-func) slot-stealing bug).
func TestEngineConcurrentFirstCompile(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		e := newTestEngine(t, "gcc")
		const goroutines = 8
		pds := make([]*mipp.Predictor, goroutines)
		errs := make([]error, goroutines)
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				pds[i], errs[i] = e.Predictor("gcc", api.PredictorSpec{})
			}(i)
		}
		wg.Wait()
		for i := 0; i < goroutines; i++ {
			if errs[i] != nil {
				t.Fatalf("iter %d goroutine %d: %v", iter, i, errs[i])
			}
			if pds[i] == nil {
				t.Fatalf("iter %d goroutine %d: nil predictor from cache", iter, i)
			}
			if pds[i] != pds[0] {
				t.Fatalf("iter %d: goroutines got different predictors", iter)
			}
		}
		if st := e.Stats(); st.CacheMisses != 1 {
			t.Fatalf("iter %d: %d compiles for one key, want 1", iter, st.CacheMisses)
		}
	}
}

func TestEnginePredictMatchesDirectPredictor(t *testing.T) {
	e := newTestEngine(t, "gcc")
	direct, err := mipp.NewPredictor(engineProfile(t, "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Predict(arch.Reference())
	if err != nil {
		t.Fatal(err)
	}

	resp, err := e.Predict(context.Background(), &api.PredictRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "gcc",
		Config:        api.ConfigSpec{Name: "reference"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := resp.Result
	if r.Cycles != want.Cycles || r.Watts != want.Watts() || r.CPI != want.CPI() || r.MLP != want.MLP {
		t.Errorf("engine predict (%v cyc, %v W) != direct (%v cyc, %v W)",
			r.Cycles, r.Watts, want.Cycles, want.Watts())
	}
	if r.CPIStack.Base != want.Stack.Cycles[mipp.CPIBase] || r.CPIStack.DRAM != want.Stack.Cycles[mipp.CPIDRAM] {
		t.Error("CPI stack mismatch between engine DTO and direct result")
	}
	if len(r.MicroCPI) != 0 {
		t.Error("MicroCPI populated without being requested")
	}

	withMicro, err := e.Predict(context.Background(), &api.PredictRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "gcc",
		Config:        api.ConfigSpec{Name: "reference"},
		MicroCPI:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(withMicro.Result.MicroCPI) == 0 {
		t.Error("MicroCPI empty despite micro_cpi request")
	}

	// Version and workload errors.
	if _, err := e.Predict(context.Background(), &api.PredictRequest{SchemaVersion: 99, Workload: "gcc",
		Config: api.ConfigSpec{Name: "reference"}}); !errors.Is(err, mipp.ErrBadRequest) {
		t.Errorf("bad version error = %v, want ErrBadRequest", err)
	}
	if _, err := e.Predict(context.Background(), &api.PredictRequest{SchemaVersion: api.SchemaVersion,
		Workload: "nope", Config: api.ConfigSpec{Name: "reference"}}); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("unknown workload error = %v, want ErrUnknownWorkload", err)
	}
}

func TestEngineSweepPerItemErrors(t *testing.T) {
	e := newTestEngine(t, "mcf")
	bad := arch.Reference()
	bad.Name = "broken"
	bad.ROB = 0
	resp, err := e.Sweep(context.Background(), &api.SweepRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Configs: []api.ConfigSpec{
			{Name: "reference"},
			{Config: bad},
			{Name: "lowpower"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3 (aligned with configs)", len(resp.Results))
	}
	if resp.Results[0] == nil || resp.Results[2] == nil {
		t.Error("good configs missing results")
	}
	if resp.Results[1] != nil {
		t.Error("bad config produced a result")
	}
	if len(resp.Errors) != 1 || resp.Errors[0].Index != 1 || resp.Errors[0].Config != "broken" {
		t.Errorf("Errors = %+v, want one entry at index 1 for broken", resp.Errors)
	}
}

func TestEngineEvaluateBatch(t *testing.T) {
	e := newTestEngine(t, "gcc", "mcf")
	req := &api.BatchRequest{
		SchemaVersion: api.SchemaVersion,
		Workloads:     []string{"gcc", "mcf", "unknown"},
		Configs:       []api.ConfigSpec{{Name: "reference"}, {Name: "lowpower"}},
	}
	resp, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 6 {
		t.Fatalf("got %d items, want 3 workloads × 2 configs = 6", len(resp.Items))
	}
	// Row-major: all configs of workloads[0] first.
	wantOrder := []struct{ w, c string }{
		{"gcc", "nehalem-ref"}, {"gcc", "low-power"},
		{"mcf", "nehalem-ref"}, {"mcf", "low-power"},
		{"unknown", "nehalem-ref"}, {"unknown", "low-power"},
	}
	for i, want := range wantOrder {
		item := resp.Items[i]
		if item.Workload != want.w || item.Config != want.c {
			t.Errorf("item %d = (%s, %s), want (%s, %s)", i, item.Workload, item.Config, want.w, want.c)
		}
		if want.w == "unknown" {
			if item.Error == "" || item.Result != nil {
				t.Errorf("item %d for unknown workload: error %q, result %v", i, item.Error, item.Result)
			}
		} else if item.Error != "" || item.Result == nil {
			t.Errorf("item %d failed: %s", i, item.Error)
		}
	}

	// Worker count must not change the answer.
	for _, workers := range []int{1, 7} {
		req2 := *req
		req2.Workers = workers
		resp2, err := e.Evaluate(context.Background(), &req2)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(resp)
		b, _ := json.Marshal(resp2)
		if string(a) != string(b) {
			t.Errorf("batch with %d workers differs from default", workers)
		}
	}
}

func TestEngineParetoDecisions(t *testing.T) {
	e := newTestEngine(t, "mcf")
	capW := 1e-9 // nothing fits
	resp, err := e.Pareto(context.Background(), &api.ParetoRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Space:         &api.SpaceSpec{Kind: "design", Stride: 13},
		CapWatts:      &capW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) == 0 || len(resp.Front) == 0 {
		t.Fatalf("empty pareto response: %d points, %d front", len(resp.Points), len(resp.Front))
	}
	if len(resp.Front) > len(resp.Points) {
		t.Error("front larger than point set")
	}
	if resp.BestUnderCap != nil {
		t.Errorf("BestUnderCap = %+v under an impossible cap", resp.BestUnderCap)
	}
	if resp.BestByED2P == nil {
		t.Error("BestByED2P missing")
	}
	// The front must be non-dominated and time-sorted.
	for i := 1; i < len(resp.Front); i++ {
		if resp.Front[i].TimeSeconds < resp.Front[i-1].TimeSeconds {
			t.Error("front not sorted by time")
		}
	}
}

func TestEngineRegisterProfileRequest(t *testing.T) {
	e := mipp.NewEngine()

	// Server-side profiling of a built-in workload.
	resp, err := e.RegisterProfile(context.Background(), &api.RegisterProfileRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "libquantum",
		Uops:          20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "libquantum" || resp.Uops < 20_000 {
		t.Errorf("register response = %+v", resp)
	}

	// Inline profile envelope under a custom name.
	data, err := json.Marshal(engineProfile(t, "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := e.RegisterProfile(context.Background(), &api.RegisterProfileRequest{
		SchemaVersion: api.SchemaVersion,
		Name:          "gcc-O2",
		Profile:       data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Name != "gcc-O2" || resp2.Workload != "gcc" {
		t.Errorf("inline register response = %+v", resp2)
	}
	if got := e.WorkloadNames(); strings.Join(got, ",") != "gcc-O2,libquantum" {
		t.Errorf("WorkloadNames() = %v", got)
	}

	// Invalid requests.
	for _, req := range []*api.RegisterProfileRequest{
		{SchemaVersion: 99, Workload: "gcc", Uops: 1000},
		{SchemaVersion: api.SchemaVersion},
		{SchemaVersion: api.SchemaVersion, Workload: "gcc"},
		{SchemaVersion: api.SchemaVersion, Workload: "no-such-workload", Uops: 1000},
		{SchemaVersion: api.SchemaVersion, Profile: []byte(`{"schema_version":42}`)},
	} {
		if _, err := e.RegisterProfile(context.Background(), req); !errors.Is(err, mipp.ErrBadRequest) {
			t.Errorf("RegisterProfile(%+v) error = %v, want ErrBadRequest", req, err)
		}
	}
}

func TestEngineSweepCancellation(t *testing.T) {
	e := newTestEngine(t, "gcc")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Sweep(ctx, &api.SweepRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "gcc",
		Space:         &api.SpaceSpec{Kind: "design"},
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep error = %v, want context.Canceled", err)
	}
}
