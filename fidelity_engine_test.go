package mipp_test

// Fidelity sampler tests: seeded determinism of the background-sampled
// report at any worker count, the disabled-by-default surface, and the
// search-side top-K escalation.

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"mipp"
	"mipp/api"
	"mipp/arch"
	"mipp/fidelity"
)

// fakeGroundTruth is a fast deterministic simulator stand-in: the
// measurement is a pure function of (workload, config), so reports depend
// only on which pairs were sampled — exactly what the determinism test
// needs to vary worker counts without paying real simulations.
type fakeGroundTruth struct{}

func (fakeGroundTruth) GroundTruth(ctx context.Context, workload string, cfg *arch.Config) (fidelity.Measurement, error) {
	if err := ctx.Err(); err != nil {
		return fidelity.Measurement{}, err
	}
	f := float64(cfg.ROB%7) / 100
	return fidelity.Measurement{
		CPI:      1 + f,
		CPIStack: fidelity.CPIStack{Base: 0.5, Branch: 0.1, ICache: 0.05, LLCHit: 0.1, DRAM: 0.25 + f},
		Watts:    10 + f,
		Power:    fidelity.PowerStack{Static: 3, Core: 4 + f, FU: 1, Cache: 1, DRAM: 0.5, BPred: 0.5},
	}, nil
}

func fidelityEngine(t *testing.T, workers int) *mipp.Engine {
	t.Helper()
	e := mipp.NewEngine(
		mipp.WithEngineWorkers(workers),
		mipp.WithFidelitySampling(mipp.FidelityOptions{
			Seed:        7,
			SampleEvery: 4,
			Budget:      128,
			Queue:       256,
			WorstN:      3,
			GroundTruth: fakeGroundTruth{},
		}),
	)
	if err := e.Register("mcf", engineProfile(t, "mcf")); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFidelitySamplerDeterministic: same seed + same served-config history
// ⇒ byte-identical fidelity report, whatever the worker count.
func TestFidelitySamplerDeterministic(t *testing.T) {
	ctx := context.Background()
	configs := arch.DesignSpaceSample(40)
	specs := make([]api.ConfigSpec, len(configs))
	for i, c := range configs {
		specs[i] = api.ConfigSpec{Config: c}
	}

	var reports [][]byte
	for _, workers := range []int{1, 4} {
		e := fidelityEngine(t, workers)
		if _, err := e.Sweep(ctx, &api.SweepRequest{
			SchemaVersion: api.SchemaVersion,
			Workload:      "mcf",
			Configs:       specs,
			Workers:       workers,
		}); err != nil {
			t.Fatal(err)
		}
		rep, err := e.FidelityReport(ctx, true)
		if err != nil {
			t.Fatal(err)
		}
		if rep == nil || rep.Samples == 0 {
			t.Fatalf("workers=%d: empty fidelity report %+v", workers, rep)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
		e.Close()
	}
	if string(reports[0]) != string(reports[1]) {
		t.Fatalf("fidelity report depends on worker count:\n%s\nvs\n%s", reports[0], reports[1])
	}

	// Re-serving the same history must not change the report: set
	// semantics, not counting semantics.
	e := fidelityEngine(t, 2)
	defer e.Close()
	for i := 0; i < 2; i++ {
		if _, err := e.Sweep(ctx, &api.SweepRequest{
			SchemaVersion: api.SchemaVersion,
			Workload:      "mcf",
			Configs:       specs,
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := e.FidelityReport(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := json.Marshal(rep)
	if string(data) != string(reports[0]) {
		t.Fatalf("re-served history changed the report:\n%s\nvs\n%s", reports[0], data)
	}
}

func TestFidelityDisabled(t *testing.T) {
	e := newTestEngine(t, "mcf")
	if e.FidelityEnabled() {
		t.Fatal("fidelity enabled without WithFidelitySampling")
	}
	if st := e.FidelityStats(); st != nil {
		t.Fatalf("FidelityStats = %+v, want nil", st)
	}
	rep, err := e.FidelityReport(context.Background(), true)
	if err != nil || rep != nil {
		t.Fatalf("FidelityReport = %v, %v; want nil, nil", rep, err)
	}
	e.Close() // must be a safe no-op
}

// TestFidelityPredictOffers: the single-prediction path feeds the sampler
// too, and the recorded sample carries the model-vs-truth residual.
func TestFidelityPredictOffers(t *testing.T) {
	e := mipp.NewEngine(mipp.WithFidelitySampling(mipp.FidelityOptions{
		SampleEvery: 1, // sample everything: this test serves one config
		Budget:      8,
		GroundTruth: fakeGroundTruth{},
	}))
	defer e.Close()
	if err := e.Register("mcf", engineProfile(t, "mcf")); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := e.Predict(ctx, &api.PredictRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Config:        api.ConfigSpec{Name: "reference"},
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.FidelityReport(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 1 {
		t.Fatalf("Samples = %d, want 1", rep.Samples)
	}
	if st := e.FidelityStats(); st == nil || st.Samples != 1 {
		t.Fatalf("FidelityStats = %+v, want 1 sample", st)
	}
	s := rep.Worst[0]
	if s.Workload != "mcf" || s.Config == "" || s.Digest == "" {
		t.Fatalf("sample identity = %+v", s)
	}
	if s.Model.CPI <= 0 || s.Sim.CPI <= 0 {
		t.Fatalf("sample measurements empty: %+v", s)
	}
	if got, want := s.CPIErrorPct, 100*(s.Model.CPI-s.Sim.CPI)/s.Sim.CPI; got != want {
		t.Fatalf("CPIErrorPct = %v, want %v", got, want)
	}
}

// TestFidelitySearchEscalation: a finished search escalates its top-K
// recommended configs past the sampling predicate (§7.4: validate what you
// are about to recommend).
func TestFidelitySearchEscalation(t *testing.T) {
	e := mipp.NewEngine(mipp.WithFidelitySampling(mipp.FidelityOptions{
		SampleEvery: 1 << 30, // sampling effectively off: only escalation records
		Budget:      16,
		TopK:        3,
		GroundTruth: fakeGroundTruth{},
	}))
	defer e.Close()
	if err := e.Register("mcf", engineProfile(t, "mcf")); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cap := 18.0
	sub, err := e.SubmitSearch(ctx, &api.SearchRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Space:         api.SpaceSpec{Kind: "design"},
		Strategy:      api.StrategySpec{Kind: "random", Seed: 3, Samples: 32},
		Objective:     "ed2p",
		CapWatts:      &cap,
		Budget:        64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mipp.WaitSearch(ctx, e, sub.Job.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rep, err := e.FidelityReport(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples == 0 || rep.Samples > 3 {
		t.Fatalf("escalated samples = %d, want 1..3", rep.Samples)
	}
}
