package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"mipp/internal/config"
	"mipp/internal/mlp"
)

// TestEvaluateBatchIntoGolden is the byte-identity guarantee of the
// struct-of-arrays kernel: over the full 243-point reference design space
// and the option variants, EvaluateBatchInto, EvaluateBatch and N
// one-at-a-time Evaluate calls marshal to exactly the same JSON. The
// BatchResult is reused across option variants (distinct compiled kernels),
// exercising the grown-once-reused-forever buffer contract.
func TestEvaluateBatchIntoGolden(t *testing.T) {
	m := modelFor(t, "mcf", 60_000)
	configs := config.DesignSpace()
	if len(configs) != 243 {
		t.Fatalf("design space has %d configs, want 243", len(configs))
	}
	var br BatchResult
	for _, opts := range []Options{
		DefaultOptions(),
		{MLPMode: mlp.ColdMiss, BranchMissRate: -1},
		{MLPMode: mlp.StrideMLP, Combined: true, BranchMissRate: -1},
		{MLPMode: mlp.StrideMLP, NoLLCChain: true, NoBusQueue: true, BranchMissRate: -1},
	} {
		c := m.Compile(opts)
		if err := c.EvaluateBatchInto(context.Background(), configs, &br); err != nil {
			t.Fatal(err)
		}
		batch, err := c.EvaluateBatch(context.Background(), configs)
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range configs {
			if !br.Valid(i) {
				t.Fatalf("opts %+v: slot %d (%s) invalid", opts, i, cfg.Name)
			}
			want, err := json.Marshal(c.Evaluate(cfg))
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(br.Result(i))
			if err != nil {
				t.Fatal(err)
			}
			if string(want) != string(got) {
				t.Fatalf("opts %+v: EvaluateBatchInto slot %d (%s) differs from Evaluate:\ninto:   %s\nsingle: %s",
					opts, i, cfg.Name, got, want)
			}
			adapter, err := json.Marshal(batch[i])
			if err != nil {
				t.Fatal(err)
			}
			if string(want) != string(adapter) {
				t.Fatalf("opts %+v: EvaluateBatch slot %d (%s) differs from Evaluate", opts, i, cfg.Name)
			}
		}
	}
}

// TestDVFSFastPathGolden pins the DVFS fast path: over a clock-only sweep a
// warm Batch must (a) never touch the geometry or miss-ratio memos again —
// the invariant stages are skipped entirely — and (b) stay deeply equal to
// the general path, including across a mid-sweep key change (which must
// invalidate the cached per-clock columns) and back.
func TestDVFSFastPathGolden(t *testing.T) {
	m := modelFor(t, "soplex", 60_000)
	c := m.Compile(DefaultOptions())

	base := config.Reference()
	var clockOnly []*config.Config
	for rep := 0; rep < 4; rep++ {
		for _, p := range config.DVFSPoints() {
			clockOnly = append(clockOnly, config.WithDVFS(base, p))
		}
	}

	b := c.NewBatch()
	b.Evaluate(clockOnly[0]) // prime the invariants for the sweep's key
	before := c.Stats()
	fast := make([]*Result, len(clockOnly))
	for i, cfg := range clockOnly {
		fast[i] = b.Evaluate(cfg)
	}
	after := c.Stats()
	if after.GeometryLookups != before.GeometryLookups {
		t.Errorf("clock-only sweep did %d geometry lookups on the fast path, want 0",
			after.GeometryLookups-before.GeometryLookups)
	}
	if after.MissRatioLookups != before.MissRatioLookups {
		t.Errorf("clock-only sweep did %d miss-ratio lookups on the fast path, want 0",
			after.MissRatioLookups-before.MissRatioLookups)
	}
	for i, cfg := range clockOnly {
		if general := c.Evaluate(cfg); !reflect.DeepEqual(general, fast[i]) {
			t.Fatalf("fast path result %d (%s) differs from general path", i, cfg.Name)
		}
	}

	// A key change mid-stream (different width → different ports and
	// dispatch) must leave the kernel correct when the sweep returns to the
	// original key: the cached clock columns belong to the old invariants.
	wide := config.DesignSpace()[81] // a width-4 point vs whatever ran before
	mixed := []*config.Config{clockOnly[0], wide, clockOnly[1], clockOnly[2]}
	for i, cfg := range mixed {
		got := b.Evaluate(cfg)
		if want := c.Evaluate(cfg); !reflect.DeepEqual(want, got) {
			t.Fatalf("mixed sweep result %d (%s) differs from general path", i, cfg.Name)
		}
	}
}

// TestEvaluateRangeIntoNilAndOffset pins EvaluateRangeInto's contract: rows
// land at their offset, nil configurations leave their slot invalid, and
// valid slots match Evaluate.
func TestEvaluateRangeIntoNilAndOffset(t *testing.T) {
	m := modelFor(t, "gamess", 60_000)
	c := m.Compile(DefaultOptions())
	configs := config.DesignSpace()[:9]
	configs[4] = nil

	var br BatchResult
	c.PrepareBatch(&br, len(configs))
	if err := c.EvaluateRangeInto(context.Background(), configs[:5], &br, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.EvaluateRangeInto(context.Background(), configs[5:], &br, 5); err != nil {
		t.Fatal(err)
	}
	for i, cfg := range configs {
		if cfg == nil {
			if br.Valid(i) {
				t.Fatalf("nil config slot %d marked valid", i)
			}
			continue
		}
		if !br.Valid(i) {
			t.Fatalf("slot %d (%s) invalid", i, cfg.Name)
		}
		if want := c.Evaluate(cfg); !reflect.DeepEqual(want, br.Result(i)) {
			t.Fatalf("slot %d (%s) differs from Evaluate", i, cfg.Name)
		}
	}
}
