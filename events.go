package mipp

import (
	"fmt"
	"sync"

	"mipp/api"
	"mipp/obs"
)

// Event-stream bounds: a job retains up to maxRetainedSearchEvents for
// late or resuming subscribers (a long genetic run emits two events per
// generation — trace step and front change — so this covers thousands of
// generations), and each subscriber channel buffers searchEventBuffer
// events so the publishing search goroutine never blocks on a slow reader.
const (
	maxRetainedSearchEvents = 4096
	searchEventBuffer       = 256
)

// searchEventLog is one job's event history plus its live subscribers. The
// search goroutine is the only publisher; any number of SSE handlers
// subscribe. Publishing never blocks: a subscriber that cannot keep up has
// events dropped from its channel feed (it can detect the gap by Seq and
// re-subscribe from its last seen event, served from the retained log).
type searchEventLog struct {
	mu     sync.Mutex
	seq    int
	events []api.SearchEvent
	subs   map[int]chan api.SearchEvent
	nextID int
	closed bool

	// subscribers and dropped, when wired (the engine points them at its
	// stream instruments when it creates the job), track the live
	// subscriber count and the events dropped on slow subscriber channels.
	// Both are shared across every job of one engine.
	subscribers *obs.Gauge
	dropped     *obs.Counter
}

// publish appends one event (stamping its Seq) and fans it out.
func (l *searchEventLog) publish(ev api.SearchEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.seq++
	ev.Seq = l.seq
	l.events = append(l.events, ev)
	if len(l.events) > maxRetainedSearchEvents {
		// Drop the oldest half in one copy instead of sliding per event.
		keep := maxRetainedSearchEvents / 2
		copy(l.events, l.events[len(l.events)-keep:])
		l.events = l.events[:keep]
	}
	// Fan-out order across independent subscriber channels is
	// unobservable: every subscriber receives the same events in the same
	// Seq order regardless of which channel is fed first.
	for _, ch := range l.subs {
		select {
		//mipp:allow determinism per-subscriber fan-out order does not affect any subscriber's observed event order
		case ch <- ev:
		default: // slow subscriber: drop, it resumes by Seq
			if l.dropped != nil {
				l.dropped.Inc()
			}
		}
	}
}

// close ends the stream after the terminal event: every subscriber channel
// is closed, and future subscribers get a replay that terminates
// immediately.
func (l *searchEventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	for _, ch := range l.subs {
		close(ch)
	}
	if l.subscribers != nil && len(l.subs) > 0 {
		l.subscribers.Add(-float64(len(l.subs)))
	}
	l.subs = nil
}

// subscribe returns a channel replaying every retained event with
// Seq > after, then delivering live events until the log closes. The
// returned cancel must be called when the consumer stops reading.
func (l *searchEventLog) subscribe(after int) (<-chan api.SearchEvent, func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var replay []api.SearchEvent
	for _, ev := range l.events {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	ch := make(chan api.SearchEvent, len(replay)+searchEventBuffer)
	for _, ev := range replay {
		ch <- ev
	}
	if l.closed {
		close(ch)
		return ch, func() {}
	}
	if l.subs == nil {
		l.subs = make(map[int]chan api.SearchEvent)
	}
	id := l.nextID
	l.nextID++
	l.subs[id] = ch
	if l.subscribers != nil {
		l.subscribers.Add(1)
	}
	cancel := func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		// close() may have raced us and closed the channel already; then
		// subs is nil and there is nothing to remove (close already
		// released the subscriber count).
		if _, ok := l.subs[id]; ok {
			delete(l.subs, id)
			if l.subscribers != nil {
				l.subscribers.Add(-1)
			}
		}
	}
	return ch, cancel
}

// SearchEvents subscribes to a job's event stream, replaying retained
// events with Seq > after (0 = from the beginning) and then delivering
// live events until the job reaches a terminal state, at which point the
// channel is closed. Subscribing to a finished job replays and closes
// immediately. The returned cancel must be called when the consumer stops
// reading before the channel closes.
func (e *Engine) SearchEvents(id string, after int) (<-chan api.SearchEvent, func(), error) {
	job, ok := e.search.get(id)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	ch, cancel := job.events.subscribe(after)
	return ch, cancel, nil
}
