// Command benchjson converts `go test -bench` output on stdin into a JSON
// perf record and enforces metric budgets, so CI can both archive the perf
// trajectory (BENCH_pr4.json) and fail when a hot path regresses.
//
// Usage:
//
//	go test -run=NONE -bench=... -benchmem . ./search | \
//	    go run ./internal/tools/benchjson -out BENCH_pr4.json \
//	        -limit 'PredictBatch:allocs/config:10' \
//	        -limit 'SearchRandom:allocs/eval:6.2'
//
// Every benchmark line becomes an entry keyed by its name (the -<procs>
// suffix stripped), holding iterations plus each reported metric verbatim
// ("ns/op", "configs/s", "allocs/config", ...). A -limit NAME:METRIC:MAX
// flag (repeatable) makes the run fail if the named benchmark is missing,
// the metric is absent, or its value exceeds MAX.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches "BenchmarkName[-procs]  iterations  v unit  v unit ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+(.*)$`)

type entry struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type record struct {
	SchemaVersion int    `json:"schema_version"`
	PR            int    `json:"pr"`
	Note          string `json:"note,omitempty"`
	// Seed records the prior PR's achieved numbers (BENCH_pr3.json: the
	// batched kernel and the 1-worker engine batch) so the trajectory is
	// readable from this file alone. The search drivers are budgeted
	// against the kernel's allocs/config floor.
	Seed     map[string]float64 `json:"seed_baseline"`
	Benches  map[string]entry   `json:"benchmarks"`
	Failures []string           `json:"budget_failures,omitempty"`
}

type limits []string

func (l *limits) String() string     { return strings.Join(*l, ",") }
func (l *limits) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	var (
		out  = flag.String("out", "BENCH_pr4.json", "output JSON path (- for stdout)")
		lims limits
	)
	flag.Var(&lims, "limit", "budget NAME:METRIC:MAX (repeatable); fail if exceeded or missing")
	flag.Parse()

	rec := record{
		SchemaVersion: 1,
		PR:            4,
		Note:          "search subsystem: strategy drivers (random/hill/genetic) over a ~61k-point lazy parametric space, vs the raw batched kernel",
		Seed: map[string]float64{
			"pr3_predict_batch_configs_per_s":     171099,
			"pr3_predict_batch_allocs_per_config": 3.148,
			"pr3_engine_evaluate_configs_per_s":   93525,
		},
		Benches: make(map[string]entry),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Iterations: iters, Metrics: make(map[string]float64)}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			e.Metrics[fields[i+1]] = v
		}
		rec.Benches[strings.TrimPrefix(m[1], "Benchmark")] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	for _, lim := range lims {
		parts := strings.Split(lim, ":")
		if len(parts) != 3 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -limit %q (want NAME:METRIC:MAX)\n", lim)
			os.Exit(2)
		}
		maxV, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -limit max %q: %v\n", parts[2], err)
			os.Exit(2)
		}
		e, ok := rec.Benches[parts[0]]
		if !ok {
			rec.Failures = append(rec.Failures, fmt.Sprintf("benchmark %q missing", parts[0]))
			continue
		}
		v, ok := e.Metrics[parts[1]]
		if !ok {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: metric %q missing", parts[0], parts[1]))
			continue
		}
		if v > maxV {
			rec.Failures = append(rec.Failures,
				fmt.Sprintf("%s: %s = %g exceeds budget %g", parts[0], parts[1], v, maxV))
		}
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	for _, f := range rec.Failures {
		fmt.Fprintf(os.Stderr, "benchjson: BUDGET FAILURE: %s\n", f)
	}
	if len(rec.Failures) > 0 {
		os.Exit(1)
	}
}
