// Command mippd serves the analytical model over HTTP: an Engine holding
// named workload profiles behind the versioned /v1 JSON protocol of
// mipp/api. Profile once — here at boot, via cmd/aip files, or through
// POST /v1/profiles — then answer (workload, config) queries in
// microseconds from any number of clients.
//
// Usage:
//
//	mippd -addr :8091 -preload mcf,gcc -n 200000
//	mippd -profiles ./profiles            # load every cmd/aip *.json in a dir
//	mippd -store ./profile-store          # durable content-addressed store:
//	                                      # uploads persist, restarts serve the
//	                                      # whole catalog without re-profiling
//	mippd -remote-store http://peer:8091  # diskless replica: serve the peer's
//	                                      # catalog over its /v1/store endpoints
//	                                      # (generation-validated, LRU-cached)
//
// Then, from any HTTP client (see mipp/client for the Go one):
//
//	curl localhost:8091/healthz
//	curl localhost:8091/v1/workloads
//	curl -d '{"schema_version":1,"workload":"mcf","config":{"name":"reference"}}' \
//	     localhost:8091/v1/predict
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mipp"
	"mipp/obs"
	"mipp/server"
	"mipp/store"
	"mipp/store/remote"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mippd: ")
	var (
		addr      = flag.String("addr", ":8091", "listen address")
		preload   = flag.String("preload", "", "comma-separated built-in workloads to profile at boot")
		n         = flag.Int("n", 200_000, "trace length in micro-ops for -preload profiling")
		profiles  = flag.String("profiles", "", "directory of profile JSON files (cmd/aip output) to load at boot")
		storeDir  = flag.String("store", "", "durable profile store directory (content-addressed; registrations persist across restarts)")
		remoteURL = flag.String("remote-store", "", "base URL of a peer mippd to use as the profile store (diskless replica; mutually exclusive with -store)")
		storeMax  = flag.Int64("store-resident-bytes", 0, "LRU bound on decoded profile bytes the store keeps in memory (0 = unbounded)")
		workers   = flag.Int("workers", 0, "default evaluation worker-pool size (0 = GOMAXPROCS)")
		debugAddr = flag.String("debug-addr", "", "separate listener for /metrics and /debug/pprof/* (empty = disabled; /metrics is always on -addr too)")

		fidBudget = flag.Int("fidelity-budget", 0, "ground-truth simulations the fidelity sampler may run (0 = sampling off, -1 = unlimited); report on GET /v1/fidelity")
		fidEvery  = flag.Int("fidelity-every", 16, "sample roughly 1 in this many served configs for ground-truth comparison")
		fidUops   = flag.Int("fidelity-uops", 40_000, "regenerated stream length per workload for ground-truth simulations")
		fidSeed   = flag.Int64("fidelity-seed", 0, "seed for the deterministic fidelity sample and its regenerated streams")
		fidRate   = flag.Float64("fidelity-max-per-second", 2, "rate limit on ground-truth simulations (0 = unlimited)")
	)
	flag.Parse()

	var engineOpts []mipp.EngineOption
	if *workers > 0 {
		engineOpts = append(engineOpts, mipp.WithEngineWorkers(*workers))
	}
	if *fidBudget != 0 {
		engineOpts = append(engineOpts, mipp.WithFidelitySampling(mipp.FidelityOptions{
			Seed:         *fidSeed,
			SampleEvery:  *fidEvery,
			Budget:       *fidBudget,
			SimUops:      *fidUops,
			MaxPerSecond: *fidRate,
		}))
		log.Printf("fidelity sampling on: budget=%d every=%d uops=%d seed=%d", *fidBudget, *fidEvery, *fidUops, *fidSeed)
	}
	switch {
	case *storeDir != "" && *remoteURL != "":
		log.Fatal("-store and -remote-store are mutually exclusive")
	case *storeDir != "":
		st, err := store.Open(*storeDir, store.WithMaxResidentBytes(*storeMax))
		if err != nil {
			log.Fatal(err)
		}
		engineOpts = append(engineOpts, mipp.WithEngineStore(st))
		log.Printf("profile store %s: %d stored profile(s)", *storeDir, st.Stats().Objects)
	case *remoteURL != "":
		st := remote.New(*remoteURL, remote.WithMaxCachedBytes(*storeMax))
		engineOpts = append(engineOpts, mipp.WithEngineStore(st))
		log.Printf("remote profile store %s (diskless replica)", *remoteURL)
	}
	// The engine logger enables trace spans (store.load, engine.compile,
	// search.generation) in the same log stream as the request lines.
	engineOpts = append(engineOpts, mipp.WithEngineLogger(log.Default()))
	engine := mipp.NewEngine(engineOpts...)
	if err := boot(engine, *preload, *n, *profiles); err != nil {
		log.Fatal(err)
	}

	handler := server.New(engine, server.WithLogger(log.Default()))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *debugAddr != "" {
		// pprof stays off the service port: profiling endpoints never share
		// a listener with untrusted traffic.
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugHandler(handler.MetricsRegistry()),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("debug listener (metrics, pprof) on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %d workload(s) on %s", len(engine.WorkloadNames()), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("shutting down (draining in-flight requests)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	// Stop the engine's background workers (the fidelity sampler) after the
	// listener drains: an in-flight /v1/fidelity?wait=1 finishes first.
	engine.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Print("bye")
}

// boot fills the engine's registry from the -preload and -profiles flags.
func boot(engine *mipp.Engine, preload string, n int, dir string) error {
	if preload != "" {
		profiler := mipp.NewProfiler()
		for _, name := range strings.Split(preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			// With -store, a previous run's profile is already durable:
			// serve it instead of re-paying the profiling step.
			if _, ok := engine.Profile(name); ok {
				log.Printf("preload %s: already in store, skipping re-profile", name)
				continue
			}
			t0 := time.Now()
			p, err := profiler.Profile(name, n)
			if err != nil {
				return fmt.Errorf("preload %s: %w", name, err)
			}
			if err := engine.Register(name, p); err != nil {
				return fmt.Errorf("preload %s: %w", name, err)
			}
			log.Printf("profiled %s (%d uops) in %v", name, p.TotalUops(), time.Since(t0).Round(time.Millisecond))
		}
	}
	if dir != "" {
		files, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			return err
		}
		for _, f := range files {
			p, err := mipp.LoadProfile(f)
			if err != nil {
				return fmt.Errorf("load %s: %w", f, err)
			}
			// Register under the file's base name: two profiles of the
			// same workload (e.g. different trace lengths) stay distinct
			// instead of silently overwriting each other.
			name := strings.TrimSuffix(filepath.Base(f), ".json")
			if err := engine.Register(name, p); err != nil {
				return fmt.Errorf("load %s: %w", f, err)
			}
			log.Printf("loaded %s as %q (workload %s, %d uops)", f, name, p.Workload(), p.TotalUops())
		}
	}
	return nil
}
