// Package cache implements the memory-hierarchy substrate: set-associative
// LRU caches, a multi-level inclusive hierarchy with functional simulation,
// and an exact LRU stack-distance simulator used to validate the StatStack
// statistical model (§4.2).
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int64
	Assoc     int
	LineBytes int64
	// LatencyCycles is the load-to-use latency of a hit in this level.
	LatencyCycles int
}

// Lines returns the capacity in cache lines.
func (c Config) Lines() int64 { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int64 { return c.Lines() / int64(c.Assoc) }

// String formats the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("%s %dKB %d-way %dB/line %dcyc",
		c.Name, c.SizeBytes>>10, c.Assoc, c.LineBytes, c.LatencyCycles)
}

// Stats accumulates per-level access statistics, the activity factors the
// power model consumes (§4.10).
type Stats struct {
	Accesses    int64
	Misses      int64
	LoadAcc     int64
	LoadMisses  int64
	StoreAcc    int64
	StoreMisses int64
	Writebacks  int64
}

// MPKI returns misses per kilo-instruction given an instruction count.
func (s Stats) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instructions) * 1000
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Cache is a set-associative LRU cache. Ways of a set are kept in recency
// order (way 0 = most recently used), which makes LRU update a small rotate.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	Stats    Stats
}

// New builds a cache from cfg. Size, associativity and line size must yield
// a power-of-two set count.
func New(cfg Config) *Cache {
	nsets := cfg.Sets()
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a positive power of two", cfg.Name, nsets))
	}
	lineBits := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		lineBits++
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*int64(cfg.Assoc))
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nsets - 1), lineBits: lineBits}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-granular address of addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits }

// Access performs a load or store to addr, updating LRU state. It returns
// hit and, when the installed victim was dirty, writeback=true. Misses
// allocate the line (write-allocate for stores).
func (c *Cache) Access(addr uint64, store bool) (hit, writeback bool) {
	la := addr >> c.lineBits
	set := c.sets[la&c.setMask]
	tag := la // the full line address doubles as the tag
	c.Stats.Accesses++
	if store {
		c.Stats.StoreAcc++
	} else {
		c.Stats.LoadAcc++
	}
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			// Move to MRU position.
			l := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = l
			if store {
				set[0].dirty = true
			}
			return true, false
		}
	}
	// Miss: evict LRU (last way), install at MRU.
	c.Stats.Misses++
	if store {
		c.Stats.StoreMisses++
	} else {
		c.Stats.LoadMisses++
	}
	victim := set[len(set)-1]
	writeback = victim.valid && victim.dirty
	if writeback {
		c.Stats.Writebacks++
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line{tag: tag, valid: true, dirty: store}
	return false, writeback
}

// Probe reports whether addr is present without updating LRU state or stats.
func (c *Cache) Probe(addr uint64) bool {
	la := addr >> c.lineBits
	set := c.sets[la&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return true
		}
	}
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.Stats = Stats{}
}

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hierarchy levels; Mem means the access went to main memory.
const (
	L1 Level = iota
	L2
	L3
	Mem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	default:
		return "Mem"
	}
}

// Hierarchy is an inclusive multi-level cache hierarchy. Access walks the
// levels in order until a hit, allocating the line in every level above the
// hit (inclusive fill), matching the modeling assumption of §4.2.
type Hierarchy struct {
	Levels []*Cache
	// ColdTracker, when non-nil, records first-touch lines so cold misses
	// can be separated from capacity/conflict misses (Figure 4.4).
	cold     map[uint64]struct{}
	ColdMiss int64
}

// NewHierarchy builds a hierarchy from level configs (ordered L1 first).
func NewHierarchy(cfgs ...Config) *Hierarchy {
	h := &Hierarchy{cold: make(map[uint64]struct{})}
	for _, cfg := range cfgs {
		h.Levels = append(h.Levels, New(cfg))
	}
	return h
}

// Access performs a load/store; it returns the level that satisfied the
// access (Mem if no level hit).
func (h *Hierarchy) Access(addr uint64, store bool) Level {
	hitLevel := Mem
	for i, c := range h.Levels {
		hit, _ := c.Access(addr, store && i == 0)
		if hit {
			hitLevel = Level(i)
			break
		}
	}
	if hitLevel == Mem {
		la := h.Levels[0].LineAddr(addr)
		if _, seen := h.cold[la]; !seen {
			h.cold[la] = struct{}{}
			h.ColdMiss++
		}
	}
	return hitLevel
}

// Probe reports the level that currently holds addr without side effects.
func (h *Hierarchy) Probe(addr uint64) Level {
	for i, c := range h.Levels {
		if c.Probe(addr) {
			return Level(i)
		}
	}
	return Mem
}

// Latency returns the load-to-use latency of a hit at level l, or memLatency
// (the caller-supplied DRAM latency) for Mem.
func (h *Hierarchy) Latency(l Level, memLatency int) int {
	if int(l) < len(h.Levels) {
		return h.Levels[l].cfg.LatencyCycles
	}
	return memLatency
}

// Reset clears all levels and the cold-miss tracker.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
	h.cold = make(map[uint64]struct{})
	h.ColdMiss = 0
}
