package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestSignedHistogramBounds(t *testing.T) {
	h := NewSignedHistogram(0.01, 0.1)
	want := []float64{-0.1, -0.01, 0, 0.01, 0.1}
	if len(h.bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
	for i := range want {
		if h.bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", h.bounds, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive magnitude")
		}
	}()
	NewSignedHistogram(0.1, -0.5)
}

func TestSignedHistogramObserve(t *testing.T) {
	h := NewSignedHistogram(0.01, 0.1)
	if got := h.Min(); !math.IsInf(got, 1) {
		t.Fatalf("virgin Min = %v, want +Inf", got)
	}
	if got := h.Max(); !math.IsInf(got, -1) {
		t.Fatalf("virgin Max = %v, want -Inf", got)
	}
	for _, v := range []float64{-0.5, -0.05, 0, 0.005, 0.2} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got, want := h.Sum(), -0.5-0.05+0+0.005+0.2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	if got := h.Min(); got != -0.5 {
		t.Fatalf("Min = %v, want -0.5", got)
	}
	if got := h.Max(); got != 0.2 {
		t.Fatalf("Max = %v, want 0.2", got)
	}
	// Bucket placement: -0.5 beyond -0.1 bound lands in bucket 0; 0 on the
	// zero bound; 0.2 in the +Inf overflow.
	wantCounts := []uint64{1, 1, 1, 1, 0, 1}
	for i, w := range wantCounts {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got, w, wantCounts)
		}
	}
}

func TestSignedHistogramConcurrent(t *testing.T) {
	h := NewSignedHistogram(ResidualBuckets...)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := float64(i%21-10) / 100 // -0.10 .. +0.10
				h.Observe(v)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	if got := h.Min(); got != -0.1 {
		t.Fatalf("Min = %v, want -0.1", got)
	}
	if got := h.Max(); got != 0.1 {
		t.Fatalf("Max = %v, want 0.1", got)
	}
}

// TestSignedHistogramRenderGolden pins the exposition format of the signed
// extension: signed le= bounds, cumulative counts, and the _min/_max sample
// lines after _sum/_count.
func TestSignedHistogramRenderGolden(t *testing.T) {
	r := NewRegistry()
	h := NewSignedHistogram(0.01, 0.1)
	r.RegisterSignedHistogram("mipp_fidelity_demo_residual", "Signed residual.", h,
		Label{"component", "base"})
	empty := NewSignedHistogram(0.01, 0.1)
	r.RegisterSignedHistogram("mipp_fidelity_demo_residual", "Signed residual.", empty,
		Label{"component", "dram"})
	h.Observe(-0.05)
	h.Observe(0.002)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mipp_fidelity_demo_residual Signed residual.
# TYPE mipp_fidelity_demo_residual histogram
mipp_fidelity_demo_residual_bucket{component="base",le="-0.1"} 0
mipp_fidelity_demo_residual_bucket{component="base",le="-0.01"} 1
mipp_fidelity_demo_residual_bucket{component="base",le="0"} 1
mipp_fidelity_demo_residual_bucket{component="base",le="0.01"} 2
mipp_fidelity_demo_residual_bucket{component="base",le="0.1"} 2
mipp_fidelity_demo_residual_bucket{component="base",le="+Inf"} 3
mipp_fidelity_demo_residual_sum{component="base"} 0.452
mipp_fidelity_demo_residual_count{component="base"} 3
mipp_fidelity_demo_residual_min{component="base"} -0.05
mipp_fidelity_demo_residual_max{component="base"} 0.5
mipp_fidelity_demo_residual_bucket{component="dram",le="-0.1"} 0
mipp_fidelity_demo_residual_bucket{component="dram",le="-0.01"} 0
mipp_fidelity_demo_residual_bucket{component="dram",le="0"} 0
mipp_fidelity_demo_residual_bucket{component="dram",le="0.01"} 0
mipp_fidelity_demo_residual_bucket{component="dram",le="0.1"} 0
mipp_fidelity_demo_residual_bucket{component="dram",le="+Inf"} 0
mipp_fidelity_demo_residual_sum{component="dram"} 0
mipp_fidelity_demo_residual_count{component="dram"} 0
`
	if got := buf.String(); got != want {
		t.Errorf("Render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The empty series must not expose ±Inf envelope lines.
	if strings.Contains(buf.String(), `_min{component="dram"}`) {
		t.Error("empty signed histogram rendered a _min line")
	}
}

func TestVecs(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("mipp_demo_by_workload_total", "Per-workload demo.", "workload")
	cv.With("mcf").Add(2)
	cv.With("gcc").Inc()
	if cv.With("mcf") != cv.With("mcf") {
		t.Fatal("With not cached")
	}
	cv.With("mcf").Inc()
	gv := r.GaugeVec("mipp_demo_err", "Per-workload error.", "workload")
	gv.With("mcf").Set(1.5)

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mipp_demo_by_workload_total Per-workload demo.
# TYPE mipp_demo_by_workload_total counter
mipp_demo_by_workload_total{workload="gcc"} 1
mipp_demo_by_workload_total{workload="mcf"} 3
# HELP mipp_demo_err Per-workload error.
# TYPE mipp_demo_err gauge
mipp_demo_err{workload="mcf"} 1.5
`
	if got := buf.String(); got != want {
		t.Errorf("Render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label arity mismatch")
		}
	}()
	cv.With("a", "b")
}
