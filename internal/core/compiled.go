package core

import (
	"math"
	"sync"
	"sync/atomic"

	"mipp/internal/cache"
	"mipp/internal/config"
	"mipp/internal/mlp"
	"mipp/internal/perf"
	"mipp/internal/profiler"
	"mipp/internal/stats"
	"mipp/internal/statstack"
	"mipp/internal/trace"
)

// Compiled is phase 1 of the model's compile → evaluate split: everything
// derivable from the (profile, option-set) pair alone, computed once and
// queried by any number of configuration evaluations. Eagerly it holds the
// StatStack curve set, the per-micro-trace mixes and compiled MLP models,
// and the config-invariant MLP parameter template; lazily it memoizes the
// quantities that depend on only a slice of the configuration — the
// per-cache-geometry StatStack prediction (so sweeps that vary only
// frequency, width or ROB never touch StatStack again), per-micro
// miss-ratio lookups, dependence-chain interpolations, branch-resolution
// fixpoints and merged load-dependence histograms.
//
// A Compiled is safe for concurrent use. Evaluation results are
// byte-identical regardless of which configurations were evaluated before:
// every memoized function is deterministic in its key, so a cache hit
// returns exactly what a fresh computation would — and for the same reason
// every memo table is bounded (maxGeomEntries, maxMemoEntries): past the
// cap new keys are computed without being stored, trading speed for memory
// but never changing a result. A long-lived service fed adversarial
// client-chosen geometries therefore holds bounded state per
// (workload, option-set) kernel.
type Compiled struct {
	model *Model
	opts  Options

	// micros is the evaluation unit list (the profile's micro-traces, or
	// one combined pseudo-trace under Options.Combined), with their mixes
	// and compiled MLP models aligned by index.
	micros     []*profiler.Micro
	microMixes [][trace.NumClasses]float64
	mcs        []*mlp.Compiled

	curves *statstack.CurveSet
	// prm is the config-invariant part of the MLP parameter set; evaluate
	// fills in the per-config fields.
	prm mlp.Params
	// mix is the profile-level uop-class mix consumed by the activity
	// factors.
	mix [trace.NumClasses]float64

	mu       sync.RWMutex
	geoms    map[geomKey]*geomEntry
	microMR  map[microLinesKey]float64
	chains   map[microROBKey][3]float64
	branches map[branchKey][2]float64
	loadDeps map[int]*stats.Histogram

	geomLookups  atomic.Uint64
	geomComputes atomic.Uint64
	mrLookups    atomic.Uint64
	mrComputes   atomic.Uint64

	// batches pools warm evaluation kernels — scratch buffers plus the
	// DVFS fast-path state — for the batched *Into entry points, so
	// repeated generations reuse invariants instead of rebuilding them.
	batches sync.Pool
}

// Memo-table bounds: real sweeps stay far below these (the stock 243-point
// space needs 9 geometries); they exist so a daemon serving arbitrary
// client-supplied configurations cannot be grown without limit. Overflowing
// keys are recomputed per evaluation instead of cached.
const (
	// maxGeomEntries bounds the per-geometry StatStack predictions — the
	// heaviest entries (three LevelStats plus derived rates each).
	maxGeomEntries = 256
	// maxMemoEntries bounds each of the scalar memo tables (miss ratios,
	// chain interpolations, branch-resolution fixpoints).
	maxMemoEntries = 1 << 16
)

// geomKey identifies a cache geometry — the only part of a configuration
// the StatStack prediction depends on.
type geomKey struct {
	l1d, l2, l3, l1i cache.Config
}

// geomEntry is the memoized per-geometry state: the StatStack prediction
// and the store-miss-per-uop rate the bus-contention term consumes.
type geomEntry struct {
	pred            *statstack.Prediction
	storeMissPerUop float64
}

type microLinesKey struct {
	micro int
	lines float64
}

type microROBKey struct {
	micro, rob int
}

// branchKey carries every input the branch-resolution fixpoint reads: the
// micro-trace (its length and chain profile), the window and width, the
// average latency and the misprediction count.
type branchKey struct {
	micro      int
	rob, width int
	lat        float64
	mispred    float64
}

// newCompiled runs phase 1 for one (profile, option-set) pair.
func newCompiled(m *Model, opts Options) *Compiled {
	p := m.Profile
	micros := p.Micros
	if opts.Combined {
		micros = []*profiler.Micro{combineMicros(p)}
	}
	curves := statstack.Compile(p)
	c := &Compiled{
		model:      m,
		opts:       opts,
		micros:     micros,
		microMixes: make([][trace.NumClasses]float64, len(micros)),
		mcs:        make([]*mlp.Compiled, len(micros)),
		curves:     curves,
		prm:        mlp.Params{LoadFrac: p.LoadFrac(), Mode: opts.MLPMode},
		mix:        p.Mix(),
		geoms:      make(map[geomKey]*geomEntry),
		microMR:    make(map[microLinesKey]float64),
		chains:     make(map[microROBKey][3]float64),
		branches:   make(map[branchKey][2]float64),
		loadDeps:   make(map[int]*stats.Histogram),
	}
	for i, micro := range micros {
		c.microMixes[i] = micro.Mix()
		c.mcs[i] = mlp.Compile(p, micro, curves.Curve)
	}
	c.batches.New = func() any { return &Batch{c: c} }
	return c
}

// CompiledStats counts the work the compile-phase memo tables absorbed.
// Lookups minus computes is the number of cache hits. Under concurrent
// evaluation two goroutines may race to fill the same entry, so computes is
// an upper bound on distinct keys; single-goroutine use counts exactly.
// Batch kernels consult their own lock-free caches first and reach these
// tables only on a batch-cache miss, so lookup counters under-count batched
// sweeps (computes stay exact).
type CompiledStats struct {
	// GeometryLookups and StatStackPredicts count per-config geometry
	// resolutions and the StatStack predictions actually computed.
	GeometryLookups   uint64
	StatStackPredicts uint64
	// MissRatioLookups and MissRatioComputes count per-micro miss-ratio
	// queries against the reuse curve.
	MissRatioLookups  uint64
	MissRatioComputes uint64
	// StreamBuilds and MLPComputes aggregate the per-micro MLP caches:
	// virtual-stream constructions and full MLP-model evaluations.
	StreamBuilds uint64
	MLPComputes  uint64
}

// Stats snapshots the memo-table counters.
func (c *Compiled) Stats() CompiledStats {
	s := CompiledStats{
		GeometryLookups:   c.geomLookups.Load(),
		StatStackPredicts: c.geomComputes.Load(),
		MissRatioLookups:  c.mrLookups.Load(),
		MissRatioComputes: c.mrComputes.Load(),
	}
	for _, mc := range c.mcs {
		b, e := mc.Stats()
		s.StreamBuilds += b
		s.MLPComputes += e
	}
	return s
}

// geometry returns the memoized StatStack prediction for the
// configuration's cache geometry, computing it on first use.
//
//mipp:hotpath
func (c *Compiled) geometry(cfg *config.Config) *geomEntry {
	c.geomLookups.Add(1)
	key := geomKey{cfg.L1D, cfg.L2, cfg.L3, cfg.L1I}
	c.mu.RLock()
	e, ok := c.geoms[key]
	c.mu.RUnlock()
	if ok {
		return e
	}
	c.geomComputes.Add(1)
	e = &geomEntry{pred: c.curves.Predict(cfg.CacheLevels(), cfg.L1I)}
	// Global store miss ratio for bus contention (Eq 4.6).
	llcStats := e.pred.Levels[len(e.pred.Levels)-1]
	if p := c.model.Profile; p.TotalUops > 0 {
		e.storeMissPerUop = llcStats.StoreMisses / float64(p.TotalUops)
	}
	c.mu.Lock()
	if len(c.geoms) < maxGeomEntries {
		c.geoms[key] = e
	}
	c.mu.Unlock()
	return e
}

// missRatio returns the memoized load miss ratio of one micro-trace at a
// cache size.
//
//mipp:hotpath
func (c *Compiled) missRatio(mi int, lines float64) float64 {
	c.mrLookups.Add(1)
	key := microLinesKey{mi, lines}
	c.mu.RLock()
	v, ok := c.microMR[key]
	c.mu.RUnlock()
	if ok {
		return v
	}
	c.mrComputes.Add(1)
	v = statstack.MissRatioForMicro(c.curves.Curve, c.micros[mi], lines)
	c.mu.Lock()
	if len(c.microMR) < maxMemoEntries {
		c.microMR[key] = v
	}
	c.mu.Unlock()
	return v
}

// chainAt memoizes the logarithmic chain-profile interpolation (AP, ABP,
// CP) of one micro-trace at one window size. It is on the hot path twice:
// once per (micro, config) for the dependence limit, and once per iteration
// of the branch-resolution fixpoint.
//
//mipp:hotpath
func (c *Compiled) chainAt(mi, rob int) (ap, abp, cp float64) {
	key := microROBKey{mi, rob}
	c.mu.RLock()
	v, ok := c.chains[key]
	c.mu.RUnlock()
	if ok {
		return v[0], v[1], v[2]
	}
	ap, abp, cp = c.micros[mi].Chains.At(rob)
	c.mu.Lock()
	if len(c.chains) < maxMemoEntries {
		c.chains[key] = [3]float64{ap, abp, cp}
	}
	c.mu.Unlock()
	return ap, abp, cp
}

// loadDepHist memoizes the profile-level merged inter-load dependence
// histogram, keyed by the profiled ROB size the window quantizes to.
func (c *Compiled) loadDepHist(rob int) *stats.Histogram {
	idx := c.model.Profile.Opts.ROBIndexFor(rob)
	if idx < 0 {
		idx = 0
	}
	c.mu.RLock()
	h, ok := c.loadDeps[idx]
	c.mu.RUnlock()
	if ok {
		return h
	}
	h = c.model.Profile.LoadDepHistFor(rob)
	c.mu.Lock()
	c.loadDeps[idx] = h
	c.mu.Unlock()
	return h
}

// scratch holds the reusable buffers of one evaluation kernel, so a batched
// sweep does not re-allocate the port-scheduling state for every
// (micro, config) pair. A scratch is owned by a single goroutine.
type scratch struct {
	activity []float64
	serving  []int
	tied     []int
	multi    []trace.Class
	invs     []microInv
	mems     []mlp.MicroMem
}

// ensureMicros sizes the per-micro-trace stage buffers for one evaluation.
func (s *scratch) ensureMicros(n int) {
	if cap(s.invs) < n {
		s.invs = make([]microInv, n)
	} else {
		s.invs = s.invs[:n]
	}
	if cap(s.mems) < n {
		s.mems = make([]mlp.MicroMem, n)
	} else {
		s.mems = s.mems[:n]
	}
}

// pooledCapLimit bounds the slice capacity a scratch may carry back into
// scratchPool: one evaluation of a pathologically wide configuration (or a
// profile with an enormous micro-trace count) must not pin its buffers for
// the life of the pool. Oversized slices are dropped on Put and reallocated
// by the next evaluation that needs them; real configurations stay far
// below the limit, so the trim is free on the steady path.
const pooledCapLimit = 1 << 12

// trim drops oversized buffers before the scratch returns to the pool.
func (s *scratch) trim() {
	if cap(s.activity) > pooledCapLimit {
		s.activity = nil
	}
	if cap(s.serving) > pooledCapLimit {
		s.serving = nil
	}
	if cap(s.tied) > pooledCapLimit {
		s.tied = nil
	}
	if cap(s.multi) > pooledCapLimit {
		s.multi = nil
	}
	if cap(s.invs) > pooledCapLimit {
		s.invs = nil
	}
	if cap(s.mems) > pooledCapLimit {
		s.mems = nil
	}
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Evaluate predicts performance for one configuration. It is phase 2 of
// the split and nearly free: every config-invariant quantity comes from the
// compile phase or a memo table. Safe for concurrent use.
//
//mipp:hotpath
func (c *Compiled) Evaluate(cfg *config.Config) *Result {
	scr := scratchPool.Get().(*scratch)
	res := c.evaluate(cfg, scr)
	scr.trim()
	scratchPool.Put(scr)
	return res
}

// evaluate applies Equation 3.1 across the micro-traces for one
// configuration and combines the predictions. It is the one-shot
// composition of the three kernel stages the batched DVFS fast path reuses
// separately: invariants (everything independent of the clock), computeMems
// (the frequency-dependent MLP model queries) and finish (the combine).
//
//mipp:hotpath
func (c *Compiled) evaluate(cfg *config.Config, scr *scratch) *Result {
	res := &Result{MicroCPI: make([]float64, 0, len(c.micros))}
	ge, missRate := c.invariants(cfg, scr)
	c.computeMems(cfg, scr.invs, scr.mems)
	c.finish(cfg, ge, missRate, scr.invs, scr.mems, res)
	return res
}

// microInv is the clock-invariant share of one micro-trace's evaluation:
// every CPI component except DRAM, the effective dispatch rate, the
// predicted LLC load misses, and the MLP parameter set minus its two
// frequency-derived fields (MemLatency, BusPerLine — patched in by
// computeMems). The DVFS fast path computes these once per distinct
// non-clock configuration and re-runs only computeMems + finish per clock.
type microInv struct {
	stack   perf.CPIStack
	deff    float64
	misses  float64
	limiter int
	skip    bool // zero-length micro-trace: contributes nothing
	prm     mlp.Params
}

// invariants computes the clock-invariant evaluation state for one
// configuration: the geometry entry, the branch miss rate, and one microInv
// per micro-trace in scr.invs.
//
//mipp:hotpath
func (c *Compiled) invariants(cfg *config.Config, scr *scratch) (*geomEntry, float64) {
	ge := c.geometry(cfg)
	missRate := c.opts.BranchMissRate
	if missRate < 0 {
		missRate = c.model.missRateFor(cfg.Predictor)
	}
	prm := c.prm
	prm.ROB = cfg.ROB
	prm.MSHRs = cfg.MSHRs
	prm.L1Lines = float64(cfg.L1D.Lines())
	prm.L2Lines = float64(cfg.L2.Lines())
	prm.LLCLines = float64(cfg.L3.Lines())
	prm.Prefetch = cfg.Prefetcher
	scr.ensureMicros(len(c.micros))
	full := c.opts.DispatchModel == DispatchFull
	for mi := range c.micros {
		if c.micros[mi].Len == 0 {
			scr.invs[mi] = microInv{skip: true}
			continue
		}
		mrL1 := c.missRatio(mi, prm.L1Lines)
		mrL2 := c.missRatio(mi, prm.L2Lines)
		mrLLC := c.missRatio(mi, prm.LLCLines)
		_, abp, cp := c.chainAt(mi, cfg.ROB)
		var portD, unitD float64
		if full {
			portD, unitD = effectiveDispatchLimits(c.microMixes[mi], cfg, scr)
		}
		c.microInvariant(mi, cfg, ge, &prm, missRate, mrL1, mrL2, mrLLC, abp, cp, portD, unitD, &scr.invs[mi])
	}
	return ge, missRate
}

// computeMems runs the frequency-dependent MLP model query for every
// micro-trace: the invariant parameter set patched with the DRAM latency
// and bus occupancy the configuration's clock implies, plus the prefetcher
// setting. Prefetch is patched here, not baked into the invariants, because
// no clock-invariant stage reads it — which lets the batch kernel's fast
// path treat the prefetcher like a second clock axis and reuse invariants
// across a prefetcher toggle.
//
//mipp:hotpath
func (c *Compiled) computeMems(cfg *config.Config, invs []microInv, mems []mlp.MicroMem) {
	mem := cfg.MemConfig()
	for mi := range invs {
		if invs[mi].skip {
			mems[mi] = mlp.MicroMem{}
			continue
		}
		prm := invs[mi].prm
		prm.MemLatency = mem.LatencyCycles
		prm.BusPerLine = mem.BusCyclesPerLine
		prm.Prefetch = cfg.Prefetcher
		mems[mi] = c.mcs[mi].Evaluate(prm)
	}
}

// finish combines the per-micro invariants with their per-clock MicroMem
// column into res — the only stage that runs on every configuration of a
// warm DVFS sweep. res may be a reused row: every output field is
// (re)assigned, and MicroCPI is appended into its existing capacity.
//
//mipp:hotpath
func (c *Compiled) finish(cfg *config.Config, ge *geomEntry, missRate float64, invs []microInv, mems []mlp.MicroMem, res *Result) {
	p := c.model.Profile
	mem := cfg.MemConfig()
	res.Config = cfg.Name
	res.Workload = p.Workload
	res.Cycles = 0
	res.Uops = float64(p.TotalUops)
	res.Instructions = float64(p.TotalInstrs)
	res.Stack = perf.CPIStack{}
	res.Activity = perf.Activity{}
	res.Deff = 0
	res.MLP = 0
	res.BranchMissRate = missRate
	res.LLCLoadMisses = 0
	res.DRAMStallPerMiss = 0
	res.MicroCPI = res.MicroCPI[:0]
	res.Limiter = [4]float64{}

	var totalUops float64
	var deffSum, mlpSum, mlpW float64
	var missSum, dramStall float64
	for mi := range invs {
		ev := c.microFinish(mi, cfg, ge, &invs[mi], mems[mi], mem.LatencyCycles, mem.BusCyclesPerLine)
		res.Stack.Add(&ev.stack)
		n := float64(c.micros[mi].Len)
		totalUops += n
		deffSum += ev.deff * n
		if ev.misses > 0 {
			mlpSum += ev.mlp * ev.misses
			mlpW += ev.misses
			missSum += ev.misses
			dramStall += ev.stack.Cycles[perf.DRAM]
		}
		res.MicroCPI = append(res.MicroCPI, ev.stack.Total()/n)
		res.Limiter[ev.limiter]++
	}
	if totalUops == 0 {
		return
	}
	// Scale the sampled prediction to the full stream.
	scale := float64(p.TotalUops) / totalUops
	res.Stack.Scale(scale)
	res.Cycles = res.Stack.Total()
	res.Deff = deffSum / totalUops
	if mlpW > 0 {
		res.MLP = mlpSum / mlpW
	} else {
		res.MLP = 1
	}
	res.LLCLoadMisses = missSum * scale
	if missSum > 0 {
		res.DRAMStallPerMiss = dramStall / missSum
	}
	c.fillActivity(res, ge.pred)
}

// microInvariant applies the clock-invariant part of Equation 3.1 to one
// micro-trace: miss ratios, dispatch rate, base, branch, I-cache and
// chained-LLC-hit components, and the MLP parameter set short of the
// frequency-derived fields. The memoized or mix-derived per-micro inputs —
// the raw L1/L2/LLC load miss ratios, the chain interpolation (ABP, CP) at
// cfg.ROB, and the port/unit dispatch bounds — are computed by the caller,
// so batch kernels can serve them from their lock-free local caches. The
// result is written into out (a reused scr.invs slot), and prm's per-micro
// fields (MispredictEvery, DispatchRate) are unconditionally reassigned, so
// one caller-owned Params template serves every micro.
//
//mipp:hotpath
func (c *Compiled) microInvariant(mi int, cfg *config.Config, ge *geomEntry, prm *mlp.Params, missRate float64, mrL1, mrL2, mrLLC, abp, cp, portD, unitD float64, out *microInv) {
	micro := c.micros[mi]
	n := float64(micro.Len)
	*out = microInv{}
	if n == 0 {
		out.skip = true
		return
	}
	inv := out
	mix := c.microMixes[mi]

	// Per-micro cache behaviour: L1/L2/LLC load miss ratios.
	if mrL2 > mrL1 {
		mrL2 = mrL1
	}
	if mrLLC > mrL2 {
		mrLLC = mrL2
	}

	// Average instruction latency including short (L1/L2-hit) loads.
	lat := averageLatency(mix, cfg, mrL1)

	// Effective dispatch rate (Eq 3.10) with the per-ROB critical path.
	deff, limiter := effectiveDispatchFrom(cfg, lat, cp, c.opts.DispatchModel, portD, unitD)
	inv.deff = deff
	inv.limiter = limiter

	// Base component.
	if c.opts.DispatchModel == DispatchInstructions {
		inv.stack.Cycles[perf.Base] = float64(micro.Instrs) / float64(cfg.DispatchWidth)
	} else {
		inv.stack.Cycles[perf.Base] = n / deff
	}

	// Branch misprediction component: m_bpred × (c_res + c_fe). When the
	// backend, not the front-end, is the bottleneck (Deff < D), the ROB
	// backlog keeps the core busy while the front-end recovers; only the
	// part of the recovery that outlasts the backlog drain costs cycles.
	branches := float64(micro.Branches)
	mispred := branches * missRate
	if mispred > 0 {
		cres, occ := c.branchResolution(mi, cfg, lat, abp, mispred, n)
		// The resolution overlaps with the backend draining the ROB
		// backlog (occ uops at Deff); the front-end refill does not.
		drain := occ / deff
		resolution := cres - drain
		if resolution < 0 {
			resolution = 0
		}
		inv.stack.Cycles[perf.BranchComp] = mispred * (resolution + float64(cfg.FrontEndDepth))
		prm.MispredictEvery = n / mispred
	} else {
		prm.MispredictEvery = 0
	}

	// I-cache component: misses resolved from L2.
	if ge.pred.ICacheMPKI > 0 {
		icMisses := ge.pred.ICacheMPKI / 1000 * float64(micro.Instrs)
		inv.stack.Cycles[perf.ICache] = icMisses * float64(cfg.L2.LatencyCycles)
	}

	// The memory component itself is frequency-dependent (computeMems /
	// microFinish); what is invariant is the fully-specified parameter
	// set short of MemLatency/BusPerLine, and the predicted miss count.
	prm.DispatchRate = deff
	inv.misses = mrLLC * float64(micro.LoadCount)

	// Chained LLC hits (§4.8, Eq 4.7-4.12).
	if !c.opts.NoLLCChain {
		inv.stack.Cycles[perf.LLCHit] = c.llcChainPenalty(mi, cfg, deff, mrL2, mrLLC)
	}
	inv.prm = *prm
}

// microFinish completes Equation 3.1 for one micro-trace: the DRAM
// component — m_LLC × (c_mem + c_bus)/MLP with prefetch, MSHR and bus
// corrections — on top of the invariant components.
//
//mipp:hotpath
func (c *Compiled) microFinish(mi int, cfg *config.Config, ge *geomEntry, inv *microInv, mem mlp.MicroMem, latCycles, busPerLine int) microEval {
	if inv.skip {
		return microEval{}
	}
	ev := microEval{stack: inv.stack, deff: inv.deff, mlp: mem.MLP, misses: inv.misses, limiter: inv.limiter}
	if inv.misses > 0 {
		n := float64(c.micros[mi].Len)
		deff := inv.deff
		misses := inv.misses
		cmem := float64(latCycles) + float64(cfg.L3.LatencyCycles)
		cbus := 0.0
		if !c.opts.NoBusQueue {
			mlpPrime := mlp.RescaleForStores(mem.MLP, misses, ge.storeMissPerUop*n)
			cbus = mlp.BusLatency(mlpPrime, busPerLine)
		}
		// Prefetch coverage (Eq 4.13): timely misses cost nothing;
		// partial ones cost the residual latency.
		demand := misses * (1 - mem.PrefetchTimely - mem.PrefetchPartial)
		partial := misses * mem.PrefetchPartial
		penalty := demand * (cmem + cbus)
		if partial > 0 {
			residual := cmem - mem.PartialSpacing/deff
			if residual < 0 {
				residual = 0
			}
			penalty += partial * residual
		}
		penalty /= mem.MLP
		// The stall starts only when the load reaches the ROB head and
		// the ROB has filled behind it (§2.5.3); dispatch proceeds at D
		// during the fill, so ROB/D cycles per stalling window overlap
		// with the base component and are subtracted, mirroring the
		// ROB-fill subtraction Equation 4.11 applies to chained LLC
		// hits.
		windows := n / float64(cfg.ROB)
		missWindows := math.Min(windows, misses)
		if missWindows > 0 {
			perWindow := penalty / missWindows
			hidden := math.Min(float64(cfg.ROB)/float64(cfg.DispatchWidth), perWindow)
			penalty -= hidden * missWindows
		}
		if penalty < 0 {
			penalty = 0
		}
		ev.stack.Cycles[perf.DRAM] = penalty
	}
	return ev
}

// branchResolution memoizes the leaky-bucket fixpoint (Algorithm 3.2): it
// tracks how full the ROB is when the mispredicted branch finally executes
// and prices the resolution as lat × ABP at that occupancy. It also returns
// the ROB occupancy, which bounds how much of the recovery the backlog can
// hide.
//
//mipp:hotpath
func (c *Compiled) branchResolution(mi int, cfg *config.Config, lat, abp, mispred, n float64) (float64, float64) {
	if mispred <= 0 {
		return lat * abp, 0
	}
	key := branchKey{micro: mi, rob: cfg.ROB, width: cfg.DispatchWidth, lat: lat, mispred: mispred}
	c.mu.RLock()
	v, ok := c.branches[key]
	c.mu.RUnlock()
	if ok {
		return v[0], v[1]
	}
	ni := n / mispred // uops between mispredictions
	d := float64(cfg.DispatchWidth)
	rob := float64(cfg.ROB)
	robi := 0.0
	for iter := 0; ni > d && iter < 4096; iter++ {
		if robi+d <= rob {
			ni -= d
			robi += d
		} else {
			ni -= rob - robi
			robi = rob
		}
		// Independent instructions at the current occupancy.
		_, _, cpi := c.chainAt(mi, int(robi+0.5))
		iRob := robi
		if cpi > 0 {
			iRob = robi / (lat * cpi)
		}
		leave := math.Min(iRob, d)
		robi -= leave
		if robi < 0 {
			robi = 0
		}
	}
	occ := int(robi + 0.5)
	if occ < 1 {
		occ = 1
	}
	_, abpOcc, _ := c.chainAt(mi, occ)
	if abpOcc < 1 {
		abpOcc = 1
	}
	c.mu.Lock()
	if len(c.branches) < maxMemoEntries {
		c.branches[key] = [2]float64{lat * abpOcc, robi}
	}
	c.mu.Unlock()
	return lat * abpOcc, robi
}

// llcChainPenalty implements Equations 4.7-4.12.
//
//mipp:hotpath
func (c *Compiled) llcChainPenalty(mi int, cfg *config.Config, deff, mrL2, mrLLC float64) float64 {
	micro := c.micros[mi]
	n := float64(micro.Len)
	loadFrac := 0.0
	if micro.Len > 0 {
		loadFrac = float64(micro.LoadCount) / n
	}
	loadsPerROB := loadFrac * float64(cfg.ROB)
	if loadsPerROB <= 0 {
		return 0
	}
	// LLC hits: loads missing L2 but hitting L3.
	hitRate := mrL2 - mrLLC
	if hitRate <= 0 {
		return 0
	}
	hLLC := hitRate * loadsPerROB
	f := c.loadDepHist(cfg.ROB)
	f1 := f.Fraction(1)
	if f1 <= 0 {
		f1 = 1
	}
	pload := f1 * loadsPerROB
	if pload < 1 {
		pload = 1
	}
	lop := loadsPerROB / pload
	lhcAvg := hLLC / pload                   // Eq 4.7
	lhcMax := math.Min(hLLC, lop)            // Eq 4.8
	lhcExp := lhcAvg + (lhcMax-lhcAvg)/pload // Eq 4.9
	if lhcExp < 0 {
		lhcExp = 0
	}
	pPrime := float64(cfg.L3.LatencyCycles) * lhcExp // Eq 4.10
	perWindow := pPrime - float64(cfg.ROB)/deff      // Eq 4.11
	if perWindow <= 0 {
		return 0
	}
	return perWindow * n / float64(cfg.ROB) // Eq 4.12
}

// fillActivity derives the predicted activity factors (Eq 3.16).
func (c *Compiled) fillActivity(res *Result, pred *statstack.Prediction) {
	p := c.model.Profile
	a := &res.Activity
	a.Cycles = res.Cycles
	a.UopsDispatched = float64(p.TotalUops)
	a.UopsCommitted = float64(p.TotalUops)
	for cl := trace.Class(0); cl < trace.NumClasses; cl++ {
		a.PerClass[cl] = c.mix[cl] * float64(p.TotalUops)
	}
	a.BranchLookups = float64(p.Branches)
	a.L1IAccesses = float64(p.InstrFetch)
	a.L1IMisses = pred.ICacheMPKI / 1000 * float64(p.TotalInstrs)
	a.L1DAccesses = float64(p.MemAccesses)
	l1 := pred.Levels[0]
	l2 := pred.Levels[1]
	l3 := pred.Levels[2]
	a.L1DMisses = l1.Misses
	a.L2Accesses = l1.Misses
	a.L2Misses = l2.Misses
	a.L3Accesses = l2.Misses
	a.L3Misses = l3.Misses
	a.DRAMAccesses = l3.Misses
}
