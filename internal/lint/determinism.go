package lint

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages is the default scope of the determinism analyzer:
// the packages whose output the test suite pins byte-identical across
// seams (local vs remote, batch vs sequential, 1 vs N workers, pre vs post
// restart). Server and client are excluded on purpose — their logging and
// polling legitimately read the clock; anything they return flows through
// these packages anyway.
var DeterministicPackages = []string{
	"mipp",
	"mipp/api",
	"mipp/arch",
	"mipp/fidelity",
	"mipp/search",
	"mipp/store",
	"mipp/internal/core",
	"mipp/internal/config",
	"mipp/internal/dse",
	"mipp/internal/statstack",
}

// Determinism is the analyzer with the repository's default scope.
var Determinism = NewDeterminism(DeterministicPackages)

// NewDeterminism builds the determinism analyzer over a package scope (nil
// scope = every package, used by the golden tests).
//
// Diagnostic kinds:
//
//   - map-range: a `range` over a map whose body lets the iteration order
//     escape — appending to a slice (unless that slice is sorted later in
//     the same function), encoding/printing through encoding/json or fmt,
//     writing to an io.Writer, sending on a channel, or spawning a
//     goroutine. Map iteration order is randomized per run, so any of
//     these turns it into nondeterministic output.
//   - time-now: time.Now / time.Since / time.Until — wall-clock reads have
//     no place in packages that promise identical bytes for identical
//     requests.
//   - global-rand: package-level math/rand functions (Intn, Shuffle, ...)
//     draw from the process-global, racily shared source; randomness must
//     flow from an explicit seeded *rand.Rand (rand.New(rand.NewSource(seed))).
func NewDeterminism(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc: "flags nondeterminism sources (unsorted map iteration feeding output, " +
			"wall-clock reads, the global math/rand source) in packages that promise " +
			"seeded, byte-identical results",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(scope, pass.Path) {
			return nil
		}
		funcDecls(pass, func(fd *ast.FuncDecl) {
			checkDeterminism(pass, fd)
		})
		return nil
	}
	return a
}

// seededRandConstructors are the math/rand functions that build an explicit
// source — the sanctioned path to randomness.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func checkDeterminism(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					checkMapRange(pass, fd, n)
				}
			}
		case *ast.CallExpr:
			pkg, name := pkgFuncCall(pass, n)
			switch {
			case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
				pass.Reportf(n.Pos(), "time-now",
					"time.%s in deterministic package %s: identical requests must produce identical bytes",
					name, pass.Path)
			case (pkg == "math/rand" || pkg == "math/rand/v2") && !seededRandConstructors[name]:
				pass.Reportf(n.Pos(), "global-rand",
					"%s.%s draws from the unseeded process-global source; thread a seeded *rand.Rand instead",
					pkg, name)
			}
		}
		return true
	})
}

// checkMapRange flags a map range whose body lets iteration order escape.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	mapExpr := render(pass.Fset, rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "map-range",
				"goroutine launched per iteration of map %s: map order decides the fan-out order; iterate sorted keys",
				mapExpr)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "map-range",
				"channel send inside iteration of map %s: map order becomes message order; iterate sorted keys",
				mapExpr)
		case *ast.CallExpr:
			if pkg, name := pkgFuncCall(pass, n); pkg == "encoding/json" || pkg == "fmt" {
				pass.Reportf(n.Pos(), "map-range",
					"%s.%s inside iteration of map %s emits in map order, which is randomized per run; iterate sorted keys",
					pkg, name, mapExpr)
				return true
			}
			if recv, m := methodCallRecv(n); recv != nil && m == "Write" {
				if t := pass.TypeOf(recv); t != nil && implementsWriter(t) {
					pass.Reportf(n.Pos(), "map-range",
						"Write inside iteration of map %s emits in map order, which is randomized per run; iterate sorted keys",
						mapExpr)
				}
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				dst := render(pass.Fset, n.Args[0])
				if !sortedAfter(pass, fd, rng, dst) {
					pass.Reportf(n.Pos(), "map-range",
						"append to %s inside iteration of map %s builds an order-dependent slice and it is never sorted afterwards; sort it (or iterate sorted keys)",
						dst, mapExpr)
				}
			}
		}
		return true
	})
}

// implementsWriter reports whether t has a Write([]byte) (int, error)
// method — the io.Writer shape, matched structurally so the check does not
// need io's type in the import graph.
func implementsWriter(t types.Type) bool {
	ms := types.NewMethodSet(t)
	if ptr, ok := t.(*types.Pointer); !ok && ptr == nil {
		// Also consider the pointer method set for addressable values.
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	for i := 0; i < ms.Len(); i++ {
		fn := ms.At(i).Obj()
		if fn.Name() != "Write" {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Params().Len() == 1 && sig.Results().Len() == 2 {
			return true
		}
	}
	return false
}

// sortedAfter reports whether, somewhere after the range statement in the
// same function, dst is passed as the first argument of a sort.* /
// slices.Sort* call — the idiom that launders map-order accumulation back
// into deterministic output (WorkloadNames, store.Names, ...).
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, dst string) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return !sorted
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if pkg, _ := pkgFuncCall(pass, call); pkg == "sort" || pkg == "slices" {
			if render(pass.Fset, call.Args[0]) == dst {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
