package mipp_test

// Async search-job tests: submit/poll/cancel lifecycle, progress counters,
// the error taxonomy (unknown job, unknown workload, bad strategy), and
// repeat-submission determinism through the job API.

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"mipp"
	"mipp/api"
	"mipp/arch"
)

// searchEngine returns an engine with one registered workload.
func searchEngine(t *testing.T) *mipp.Engine {
	t.Helper()
	p, err := mipp.NewProfiler().Profile("mcf", 30_000)
	if err != nil {
		t.Fatal(err)
	}
	e := mipp.NewEngine()
	if err := e.Register("mcf", p); err != nil {
		t.Fatal(err)
	}
	return e
}

func searchRequest(strategy api.StrategySpec) *api.SearchRequest {
	cap := 18.0
	return &api.SearchRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Space:         api.SpaceSpec{Kind: "design"},
		Strategy:      strategy,
		Objective:     "ed2p",
		CapWatts:      &cap,
		Budget:        243,
	}
}

func TestSearchJobLifecycle(t *testing.T) {
	e := searchEngine(t)
	ctx := context.Background()

	sub, err := e.SubmitSearch(ctx, searchRequest(api.StrategySpec{Kind: "genetic", Seed: 11, Population: 16, Generations: 6}))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Job.ID == "" || sub.Job.Workload != "mcf" || sub.Job.Strategy != "genetic" || sub.Job.SpaceSize != 243 {
		t.Fatalf("submit snapshot = %+v", sub.Job)
	}

	final, err := mipp.WaitSearch(ctx, e, sub.Job.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Job.State != api.JobDone || final.Job.Report == nil {
		t.Fatalf("final job = %+v", final.Job)
	}
	rep := final.Job.Report
	if rep.Workload != "mcf" || rep.Strategy != "genetic" || rep.Seed != 11 || rep.Best == nil {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Evaluations == 0 || rep.Evaluations != final.Job.Evaluations {
		t.Errorf("progress counter %d != report evaluations %d", final.Job.Evaluations, rep.Evaluations)
	}
	if rep.Best.Watts > 18.0 {
		t.Errorf("best %+v violates the power cap", rep.Best)
	}

	st := e.Stats()
	if st.SearchJobsInFlight != 0 || st.SearchJobsCompleted != 1 {
		t.Errorf("stats after one job: in-flight %d completed %d", st.SearchJobsInFlight, st.SearchJobsCompleted)
	}
}

// TestSearchJobDeterministicRepeat submits the same seeded request twice
// and demands byte-identical reports — the in-process half of the
// local-vs-remote acceptance criterion.
func TestSearchJobDeterministicRepeat(t *testing.T) {
	e := searchEngine(t)
	ctx := context.Background()
	var blobs []string
	for i := 0; i < 2; i++ {
		sub, err := e.SubmitSearch(ctx, searchRequest(api.StrategySpec{Kind: "hill", Seed: 5, Restarts: 3}))
		if err != nil {
			t.Fatal(err)
		}
		final, err := mipp.WaitSearch(ctx, e, sub.Job.ID, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(final.Job.Report)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, string(data))
	}
	if blobs[0] != blobs[1] {
		t.Errorf("repeated seeded jobs differ:\n%.400s\n%.400s", blobs[0], blobs[1])
	}
}

func TestSearchJobCancel(t *testing.T) {
	e := searchEngine(t)
	ctx := context.Background()

	// A large parametric space keeps the job busy long enough to cancel.
	req := searchRequest(api.StrategySpec{Kind: "exhaustive"})
	req.Budget = 0
	req.Workers = 1
	req.Space = api.SpaceSpec{Kind: "parametric", Space: &arch.Space{
		Widths:  []int{1, 2, 3, 4, 5, 6},
		ROBs:    []int{32, 48, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512},
		L2Bytes: []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20},
		L3Bytes: []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20},
		Clocks: []arch.DVFSPoint{
			{FrequencyGHz: 1.6, VoltageV: 0.95}, {FrequencyGHz: 2.0, VoltageV: 1.0},
			{FrequencyGHz: 2.66, VoltageV: 1.1}, {FrequencyGHz: 3.2, VoltageV: 1.2},
		},
		Prefetcher: []bool{false, true},
	}}
	sub, err := e.SubmitSearch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := e.CancelSearch(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Job.State != api.JobCancelled && fin.Job.State != api.JobDone {
		t.Fatalf("cancelled job state = %q", fin.Job.State)
	}
	if fin.Job.State == api.JobDone {
		t.Log("job finished before the cancel landed (fast machine); lifecycle still consistent")
	}
	// Cancelling again is a no-op on a terminal job.
	again, err := e.CancelSearch(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Job.State != fin.Job.State {
		t.Errorf("second cancel changed state %q -> %q", fin.Job.State, again.Job.State)
	}
	if st := e.Stats(); st.SearchJobsInFlight != 0 || st.SearchJobsCompleted != 1 {
		t.Errorf("stats after cancel: %+v", st)
	}
}

// TestSearchJobRetention: finished jobs stay pollable up to the retention
// bound, then the oldest are evicted so a long-lived engine's registry
// stays flat.
func TestSearchJobRetention(t *testing.T) {
	e := searchEngine(t)
	ctx := context.Background()
	const submits = 140 // > maxRetainedSearchJobs (128)
	var first, last string
	for i := 0; i < submits; i++ {
		sub, err := e.SubmitSearch(ctx, searchRequest(api.StrategySpec{Kind: "random", Seed: int64(i), Samples: 3}))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sub.Job.ID
		}
		last = sub.Job.ID
		if _, err := mipp.WaitSearch(ctx, e, sub.Job.ID, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.SearchJob(ctx, first); !errors.Is(err, mipp.ErrUnknownJob) {
		t.Errorf("oldest job still pollable after %d submits: %v", submits, err)
	}
	if resp, err := e.SearchJob(ctx, last); err != nil || resp.Job.State != api.JobDone {
		t.Errorf("newest job not retained: %v", err)
	}
	if st := e.Stats(); st.SearchJobsCompleted != submits {
		t.Errorf("completed counter = %d, want %d", st.SearchJobsCompleted, submits)
	}
}

func TestSearchJobErrors(t *testing.T) {
	e := searchEngine(t)
	ctx := context.Background()

	if _, err := e.SearchJob(ctx, "job-999"); !errors.Is(err, mipp.ErrUnknownJob) {
		t.Errorf("unknown job poll = %v, want ErrUnknownJob", err)
	}
	if _, err := e.CancelSearch(ctx, "job-999"); !errors.Is(err, mipp.ErrUnknownJob) {
		t.Errorf("unknown job cancel = %v, want ErrUnknownJob", err)
	}

	req := searchRequest(api.StrategySpec{Kind: "random"})
	req.Workload = "nope"
	if _, err := e.SubmitSearch(ctx, req); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("unknown workload submit = %v, want ErrUnknownWorkload", err)
	}

	req = searchRequest(api.StrategySpec{Kind: "annealing"})
	if _, err := e.SubmitSearch(ctx, req); !errors.Is(err, mipp.ErrBadRequest) {
		t.Errorf("bad strategy submit = %v, want ErrBadRequest", err)
	}

	req = searchRequest(api.StrategySpec{Kind: "random"})
	req.Space = api.SpaceSpec{Kind: "parametric"}
	//mipp:allow wraperr the diagnostic text itself is under test here, alongside the errors.Is contract
	if _, err := e.SubmitSearch(ctx, req); !errors.Is(err, mipp.ErrBadRequest) || !strings.Contains(err.Error(), "no axes") {
		t.Errorf("axis-less parametric submit = %v, want ErrBadRequest about axes", err)
	}

	// An unbudgeted search over a multi-million-point space must be
	// refused at admission — the runner memoizes every evaluated point.
	huge := &arch.Space{ // 6·63·8·8·24·2 ≈ 1.16M points, past the 2^20 cap
		Widths:     []int{1, 2, 3, 4, 5, 6},
		L2Bytes:    []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20},
		L3Bytes:    []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20},
		Prefetcher: []bool{false, true},
	}
	for rob := 16; rob <= 512; rob += 8 {
		huge.ROBs = append(huge.ROBs, rob)
	}
	for f := 1.0; f < 3.4; f += 0.1 {
		huge.Clocks = append(huge.Clocks, arch.DVFSPoint{FrequencyGHz: f, VoltageV: 1.0})
	}
	req = searchRequest(api.StrategySpec{Kind: "random"})
	req.Budget = 0
	req.Space = api.SpaceSpec{Kind: "parametric", Space: huge}
	//mipp:allow wraperr the diagnostic text itself is under test here, alongside the errors.Is contract
	if _, err := e.SubmitSearch(ctx, req); !errors.Is(err, mipp.ErrBadRequest) || !strings.Contains(err.Error(), "budget") {
		t.Errorf("unbudgeted huge-space submit = %v, want ErrBadRequest about budget", err)
	}
	req.Budget = 2_000_000
	//mipp:allow wraperr the diagnostic text itself is under test here, alongside the errors.Is contract
	if _, err := e.SubmitSearch(ctx, req); !errors.Is(err, mipp.ErrBadRequest) || !strings.Contains(err.Error(), "cap") {
		t.Errorf("over-cap budget submit = %v, want ErrBadRequest about the cap", err)
	}

	// A job that fails inside the run (exhaustive over budget) lands in
	// the failed state with the error preserved.
	req = searchRequest(api.StrategySpec{Kind: "exhaustive"})
	req.Budget = 10
	sub, err := e.SubmitSearch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := mipp.WaitSearch(ctx, e, sub.Job.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Job.State != api.JobFailed || !strings.Contains(final.Job.Error, "budget") {
		t.Errorf("over-budget exhaustive job = %+v", final.Job)
	}
}
