package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader is the request-correlation header of the HTTP surface:
// the server assigns an ID when the caller sent none, always echoes it on
// the response, and stamps it on every request log line. mipp/client and
// mipp-router forward it, so one prediction can be traced caller → router →
// replica by a single token.
const RequestIDHeader = "X-Request-Id"

// SpanIDHeader carries the caller's current trace-span ID hop-to-hop: the
// client stamps its span, the router adopts it as the remote parent of its
// own spans and stamps its span on the forwarded request, and the replica's
// spans hang off the router's in turn. Combined with the request ID as the
// trace token, the span lines of all three processes assemble into one tree
// (see mipp/obs).
const SpanIDHeader = "X-Span-Id"

// NewRequestID returns a fresh 16-hex-character request ID. It draws from
// crypto/rand so IDs are unique across processes without coordination; on
// the (never-observed) failure of the system entropy source it degrades to
// a fixed ID rather than failing the request it is meant to trace.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ridKey keys the request ID in a context.
type ridKey struct{}

// ContextWithRequestID returns ctx carrying the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFromContext returns the request ID carried by ctx ("" if none).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}
