package cache

import (
	"testing"
	"testing/quick"
)

func testConfig(size int64, assoc int) Config {
	return Config{Name: "t", SizeBytes: size, Assoc: assoc, LineBytes: 64, LatencyCycles: 1}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := New(testConfig(4096, 4))
	if hit, _ := c.Access(0x1000, false); hit {
		t.Fatal("first access should miss")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access should hit")
	}
	if hit, _ := c.Access(0x1038, false); !hit {
		t.Fatal("same-line access should hit")
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache with 2 sets: lines mapping to set 0 differ by 128B.
	c := New(testConfig(256, 2))
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a should still be cached")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be cached")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(testConfig(128, 1)) // 2 sets, direct-mapped
	c.Access(0, true)            // dirty
	_, wb := c.Access(128, false)
	if !wb {
		t.Error("evicting a dirty line should report a writeback")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestHierarchyInclusiveFill(t *testing.T) {
	h := NewHierarchy(testConfig(1024, 2), testConfig(4096, 4), testConfig(16384, 8))
	if lvl := h.Access(0x100000, false); lvl != Mem {
		t.Fatalf("first access level = %v", lvl)
	}
	if lvl := h.Access(0x100000, false); lvl != L1 {
		t.Fatalf("second access level = %v", lvl)
	}
	if h.ColdMiss != 1 {
		t.Errorf("cold misses = %d", h.ColdMiss)
	}
}

func TestStackSimMatchesBruteForce(t *testing.T) {
	// Deterministic pseudo-random line stream.
	var lines []uint64
	state := uint64(12345)
	for i := 0; i < 3000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		lines = append(lines, state%64)
	}
	sim := NewStackSim()
	lastSeen := map[uint64]int{}
	for i, ln := range lines {
		got := sim.Access(ln)
		prev, ok := lastSeen[ln]
		if !ok {
			if got != ColdDistance {
				t.Fatalf("access %d: want cold, got %d", i, got)
			}
		} else {
			// Brute force: unique lines between prev and i.
			uniq := map[uint64]struct{}{}
			for j := prev + 1; j < i; j++ {
				if lines[j] != ln {
					uniq[lines[j]] = struct{}{}
				}
			}
			if got != len(uniq) {
				t.Fatalf("access %d: stack distance %d, brute force %d", i, got, len(uniq))
			}
		}
		lastSeen[ln] = i
	}
}

func TestStackSimQuickProperty(t *testing.T) {
	// Stack distance is always <= reuse distance (accesses in between).
	f := func(raw []uint8) bool {
		sim := NewStackSim()
		last := map[uint64]int{}
		for i, b := range raw {
			ln := uint64(b % 32)
			d := sim.Access(ln)
			if prev, ok := last[ln]; ok {
				if d > i-prev-1 {
					return false
				}
			} else if d != ColdDistance {
				return false
			}
			last[ln] = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
