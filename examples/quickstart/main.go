// Quickstart: profile a workload once, then predict performance and power
// for a processor configuration with the micro-architecture independent
// interval model — and check the prediction against the cycle-level
// simulator. Everything goes through the public mipp façade.
package main

import (
	"fmt"
	"log"

	"mipp"
	"mipp/arch"
)

func main() {
	// 1. Synthesize the workload's dynamic micro-op stream.
	stream, err := mipp.GenerateWorkload("gcc", 300_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload gcc: %d uops, %d instructions (%.2f uops/instr)\n",
		stream.Len(), stream.Instructions(), stream.UopsPerInstruction())

	// 2. Profile it once — this is the only expensive step, and the
	//    profile is micro-architecture independent.
	profile := mipp.NewProfiler().ProfileStream(stream)
	fmt.Printf("profile: %d micro-traces, branch entropy %.3f\n",
		profile.MicroTraces(), profile.Entropy())

	// 3. Predict performance and power for the reference architecture.
	cfg := arch.Reference()
	predictor, err := mipp.NewPredictor(profile)
	if err != nil {
		log.Fatal(err)
	}
	res, err := predictor.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stack := res.Stack.PerInstruction(int64(res.Instructions))
	fmt.Printf("model:   CPI %.3f  stack %s\n", res.CPI(), stack.String())
	fmt.Printf("model:   power %s\n", res.Power.String())

	// 4. Validate against the cycle-level simulator.
	sim, err := mipp.Simulate(cfg, stream, mipp.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	simStack := sim.Stack.PerInstruction(sim.Instructions)
	fmt.Printf("sim:     CPI %.3f  stack %s\n", sim.CPI(), simStack.String())
	fmt.Printf("sim:     power %s\n", mipp.EstimatePower(cfg, &sim.Activity).String())
	fmt.Printf("CPI error: %.1f%%\n", 100*abs(res.CPI()-sim.CPI())/sim.CPI())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
