package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-checking failures; analyzers still run
	// (with partial type information), but main treats them as fatal so a
	// mis-loaded tree cannot silently produce a clean report.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Name       string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go command and type-checks every matched
// (non-dependency) package from source, importing dependencies — standard
// library included — from compiler export data. That keeps the loader
// offline, fast, and incapable of version skew: the same toolchain that
// builds the module produces the export data mipplint reads.
//
// Test files are not loaded here; `go vet -vettool` mode covers them with
// the package variants the go command assembles.
func Load(patterns []string) ([]*Package, error) {
	cmd := exec.Command("go", append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Name,Incomplete,Error",
		"-deps", "--",
	}, patterns...)...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && lp.Name != "" && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := check(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFiles parses and type-checks loose Go files (golden-test fixtures in
// testdata, which no go build ever sees) as a single package, resolving
// whatever they import — standard library or this module's packages alike —
// from compiler export data via the go command.
func LoadFiles(filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	pkg := &Package{Fset: fset}
	imports := make(map[string]bool)
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", fn, err)
		}
		pkg.Files = append(pkg.Files, f)
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		cmd := exec.Command("go", append([]string{
			"list", "-e", "-export", "-json=ImportPath,Export", "-deps", "--",
		}, paths...)...)
		cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: go list %v: %w\n%s", paths, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			lp := new(listedPackage)
			if err := dec.Decode(lp); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				return nil, fmt.Errorf("lint: decode go list output: %w", err)
			}
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	pkg.Info = newInfo()
	conf := types.Config{
		Importer: exportImporter(fset, exports),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check("fixture", fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// exportImporter wraps the standard library's gc export-data importer with
// a lookup over the files `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// check parses and type-checks one package from its source files.
func check(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	pkg := &Package{Path: path, Fset: fset}
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", fn, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = newInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Errors are collected softly; Check's returned package is usable even
	// when incomplete.
	pkg.Types, _ = conf.Check(path, fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// newInfo allocates the types.Info maps every analyzer reads.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
