//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory lock (flock) on path, creating it if
// needed, and returns the unlock func. It serializes index
// read-modify-write cycles across Store instances and processes sharing one
// directory; readers never take it — they rely on atomic renames and the
// mtime staleness check.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: lock %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: lock %s: %w", path, err)
	}
	return func() {
		// Close releases the flock with the open file description.
		f.Close()
	}, nil
}
