package mipp

import (
	"context"
	"fmt"
	"sync"

	"mipp/fidelity"
	"mipp/internal/power"
)

// ModelMeasurement lowers an analytical prediction into the fidelity
// package's comparison form: total CPI with its per-instruction component
// stack, total watts with its component stack. Both sides of a fidelity
// pair normalize the same way, so components subtract unit-for-unit.
func ModelMeasurement(r *Result) fidelity.Measurement {
	m := fidelity.Measurement{CPI: r.CPI(), Watts: r.Watts()}
	if r.Instructions > 0 {
		m.CPIStack = fidelity.CPIStack{
			Base:   r.Stack.Cycles[CPIBase] / r.Instructions,
			Branch: r.Stack.Cycles[CPIBranch] / r.Instructions,
			ICache: r.Stack.Cycles[CPIICache] / r.Instructions,
			LLCHit: r.Stack.Cycles[CPILLCHit] / r.Instructions,
			DRAM:   r.Stack.Cycles[CPIDRAM] / r.Instructions,
		}
	}
	m.Power = powerMeasurement(r.Power)
	return m
}

// SimMeasurement lowers a reference-simulation result into the same form.
// The power side runs the same power model the predictor uses, fed with
// the simulator's measured activity factors — so the power residual
// isolates the activity-prediction error, exactly the quantity the model
// owns (the power model itself is shared and cancels out).
func SimMeasurement(cfg *Config, r *SimResult) fidelity.Measurement {
	m := fidelity.Measurement{}
	if r.Instructions > 0 {
		m.CPI = float64(r.Cycles) / float64(r.Instructions)
		st := r.Stack.PerInstruction(r.Instructions)
		m.CPIStack = fidelity.CPIStack{
			Base:   st.Cycles[CPIBase],
			Branch: st.Cycles[CPIBranch],
			ICache: st.Cycles[CPIICache],
			LLCHit: st.Cycles[CPILLCHit],
			DRAM:   st.Cycles[CPIDRAM],
		}
	}
	p := EstimatePower(cfg, &r.Activity)
	m.Power = powerMeasurement(p)
	m.Watts = p.Total()
	return m
}

func powerMeasurement(p PowerStack) fidelity.PowerStack {
	return fidelity.PowerStack{
		Static: p.Watts[power.Static],
		Core:   p.Watts[power.CoreDyn],
		FU:     p.Watts[power.FUDyn],
		Cache:  p.Watts[power.CacheDyn],
		DRAM:   p.Watts[power.DRAMDyn],
		BPred:  p.Watts[power.BPredDyn],
	}
}

// SimGroundTruth is the fidelity.GroundTruth backed by the cycle-level
// reference simulator: it resolves the workload's profile from the engine,
// regenerates the profiled instruction stream from the profile's built-in
// generator name, and runs SimulateContext on the requested configuration.
//
// Streams are cached per generator name — regeneration is deterministic
// (same name, uop count and seed), so one synthesis serves every
// configuration sampled for that workload.
type SimGroundTruth struct {
	resolve func(ctx context.Context, name string) (*Profile, error)
	uops    int
	seed    int64

	mu      sync.Mutex
	streams map[string]*Stream
}

// NewSimGroundTruth builds a simulator ground truth over the engine's
// registered profiles. uops is the regenerated stream length per workload
// (<= 0 selects a default sized for sub-second reference runs); seed feeds
// the workload generator, making every ground-truth stream reproducible.
func NewSimGroundTruth(e *Engine, uops int, seed int64) *SimGroundTruth {
	if uops <= 0 {
		uops = defaultSimUops
	}
	return &SimGroundTruth{
		resolve: e.resolveProfileCtx,
		uops:    uops,
		seed:    seed,
		streams: make(map[string]*Stream),
	}
}

// defaultSimUops keeps one reference simulation well under a second on the
// built-in generators while leaving enough committed instructions for
// stable per-component stacks.
const defaultSimUops = 40000

// GroundTruth implements fidelity.GroundTruth.
func (g *SimGroundTruth) GroundTruth(ctx context.Context, workload string, cfg *Config) (fidelity.Measurement, error) {
	p, err := g.resolve(ctx, workload)
	if err != nil {
		return fidelity.Measurement{}, err
	}
	gen := p.Workload()
	g.mu.Lock()
	stream := g.streams[gen]
	g.mu.Unlock()
	if stream == nil {
		stream, err = GenerateWorkload(gen, g.uops, g.seed)
		if err != nil {
			return fidelity.Measurement{}, fmt.Errorf("mipp: fidelity ground truth for %q: %w", workload, err)
		}
		g.mu.Lock()
		g.streams[gen] = stream
		g.mu.Unlock()
	}
	res, err := SimulateContext(ctx, cfg, stream, SimOptions{})
	if err != nil {
		return fidelity.Measurement{}, err
	}
	return SimMeasurement(cfg, res), nil
}

var _ fidelity.GroundTruth = (*SimGroundTruth)(nil)
