package core

import (
	"context"

	"mipp/internal/cache"
	"mipp/internal/config"
	"mipp/internal/mlp"
	"mipp/internal/perf"
	"mipp/internal/prefetch"
	"mipp/internal/trace"
)

// CtxCheckStride is how many configurations EvaluateRangeInto evaluates
// between consecutive ctx.Err() polls. ctx.Err() is a synchronized load
// (an atomic at best, a mutex on some Context implementations), which at
// ~1µs/config is measurable on every iteration of the hot loop; polling
// every 64 configs bounds cancellation latency to a few tens of
// microseconds while making the check's cost invisible. The poll at k == 0
// still catches an already-cancelled context before any work happens.
const CtxCheckStride = 64

// BatchResult is a struct-of-arrays result block: one flat, reusable slice
// per quantity, grown once by PrepareBatch and reused across generations so
// the steady-state batched path allocates nothing. Per-config MicroCPI rows
// live config-major in one backing array (row i is
// microCPI[i*nmicros:(i+1)*nmicros]), so a row is sliceable without copying
// and a whole generation is one allocation no matter how many configs it
// holds.
//
// A BatchResult owns its memory: rows written by EvaluateRangeInto are
// plain columns, and Result/CopyResult materialize independent copies, so
// callers that publish results (NDJSON streams, search updates) copy before
// the buffers are reused. A BatchResult is not safe for concurrent writers
// on overlapping row ranges; disjoint ranges (one per sweep worker) are
// race-free.
type BatchResult struct {
	n       int
	nmicros int

	// Header quantities constant across the batch (profile-level).
	workload     string
	uops         float64
	instructions float64

	// Per-config columns, all length n.
	names     []string
	valid     []bool
	cycles    []float64
	deff      []float64
	mlpAvg    []float64
	bmr       []float64
	llcMisses []float64
	dramStall []float64
	stack     [perf.NumComponents][]float64
	limiter   [][4]float64
	activity  []perf.Activity

	// microCPI is the config-major len(micros)×n backing array.
	microCPI []float64
}

// grow returns s resized to n, reusing its backing array when it is large
// enough and zeroing the returned prefix either way.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// PrepareBatch sizes br for n configurations evaluated by this kernel,
// growing each column only when the previous capacity is too small.
func (c *Compiled) PrepareBatch(br *BatchResult, n int) {
	p := c.model.Profile
	br.n = n
	br.nmicros = len(c.micros)
	br.workload = p.Workload
	br.uops = float64(p.TotalUops)
	br.instructions = float64(p.TotalInstrs)
	br.names = grow(br.names, n)
	br.valid = grow(br.valid, n)
	br.cycles = grow(br.cycles, n)
	br.deff = grow(br.deff, n)
	br.mlpAvg = grow(br.mlpAvg, n)
	br.bmr = grow(br.bmr, n)
	br.llcMisses = grow(br.llcMisses, n)
	br.dramStall = grow(br.dramStall, n)
	for ci := range br.stack {
		br.stack[ci] = grow(br.stack[ci], n)
	}
	br.limiter = grow(br.limiter, n)
	br.activity = grow(br.activity, n)
	br.microCPI = grow(br.microCPI, n*br.nmicros)
}

// Len returns the number of configuration slots in the batch.
func (br *BatchResult) Len() int { return br.n }

// NumMicros returns the per-config MicroCPI row width.
func (br *BatchResult) NumMicros() int { return br.nmicros }

// Valid reports whether slot i holds an evaluated result (false for nil
// configurations and slots past a cancellation point).
func (br *BatchResult) Valid(i int) bool { return br.valid[i] }

// CyclesAt returns the predicted cycle count of slot i.
func (br *BatchResult) CyclesAt(i int) float64 { return br.cycles[i] }

// ActivityAt returns the activity factors of slot i, pointing into the
// batch's column (valid until the next PrepareBatch on br).
func (br *BatchResult) ActivityAt(i int) *perf.Activity { return &br.activity[i] }

// MicroCPIRow returns slot i's per-micro CPI row, aliasing the batch's
// backing array (valid until the next PrepareBatch on br).
func (br *BatchResult) MicroCPIRow(i int) []float64 {
	return br.microCPI[i*br.nmicros : (i+1)*br.nmicros]
}

// CopyResult gathers slot i into res, reusing res.MicroCPI's capacity when
// it is large enough. Every field of res is (re)assigned.
func (br *BatchResult) CopyResult(i int, res *Result) {
	res.Config = br.names[i]
	res.Workload = br.workload
	res.Cycles = br.cycles[i]
	res.Uops = br.uops
	res.Instructions = br.instructions
	for ci := range res.Stack.Cycles {
		res.Stack.Cycles[ci] = br.stack[ci][i]
	}
	res.Activity = br.activity[i]
	res.Deff = br.deff[i]
	res.MLP = br.mlpAvg[i]
	res.BranchMissRate = br.bmr[i]
	res.LLCLoadMisses = br.llcMisses[i]
	res.DRAMStallPerMiss = br.dramStall[i]
	if res.MicroCPI == nil || cap(res.MicroCPI) < br.nmicros {
		res.MicroCPI = make([]float64, br.nmicros)
	} else {
		res.MicroCPI = res.MicroCPI[:br.nmicros]
	}
	copy(res.MicroCPI, br.MicroCPIRow(i))
	res.Limiter = br.limiter[i]
}

// Result materializes slot i as a standalone *Result, byte-identical to
// what Compiled.Evaluate would have returned for the same configuration.
func (br *BatchResult) Result(i int) *Result {
	res := &Result{MicroCPI: make([]float64, 0, br.nmicros)}
	br.CopyResult(i, res)
	return res
}

// setRow scatters one evaluated result into slot i's columns.
//
//mipp:hotpath
func (br *BatchResult) setRow(i int, res *Result) {
	br.names[i] = res.Config
	br.valid[i] = true
	br.cycles[i] = res.Cycles
	br.deff[i] = res.Deff
	br.mlpAvg[i] = res.MLP
	br.bmr[i] = res.BranchMissRate
	br.llcMisses[i] = res.LLCLoadMisses
	br.dramStall[i] = res.DRAMStallPerMiss
	for ci := range res.Stack.Cycles {
		br.stack[ci][i] = res.Stack.Cycles[ci]
	}
	br.limiter[i] = res.Limiter
	br.activity[i] = res.Activity
	copy(br.MicroCPIRow(i), res.MicroCPI)
}

// Release drops the references a reused BatchResult pins (configuration
// name strings) without freeing the numeric columns, so a pooled batch
// keeps its capacity but no foreign memory.
func (br *BatchResult) Release() {
	clear(br.names[:cap(br.names)])
	br.n = 0
}

// nonClockKey is the comparable projection of a configuration onto the
// fields the clock-invariant kernel stages read. Two configurations with
// equal keys (and equal port maps — compared separately because Ports is a
// slice) produce identical invariants; only MemConfig and the MLP memory
// query differ, which is exactly what the DVFS fast path re-runs.
// FrequencyGHz, VoltageV, Name and Prefetcher are deliberately absent:
// voltage and the label never reach the core model, and frequency and the
// prefetcher only enter at the memory-query stage (computeMems patches
// both into the parameter set), so they are the axes the fast path
// re-runs cheaply.
type nonClockKey struct {
	dispatchWidth int
	rob           int
	iq            int
	lsq           int
	frontEndDepth int
	mshrs         int
	fu            [trace.NumClasses]config.FUSpec
	l1i           cache.Config
	l1d           cache.Config
	l2            cache.Config
	l3            cache.Config
	memLatencyNS  float64
	busNSPerLine  float64
	memChannels   int
	predictor     string
	numPorts      int
}

func makeKey(cfg *config.Config) nonClockKey {
	return nonClockKey{
		dispatchWidth: cfg.DispatchWidth,
		rob:           cfg.ROB,
		iq:            cfg.IQ,
		lsq:           cfg.LSQ,
		frontEndDepth: cfg.FrontEndDepth,
		mshrs:         cfg.MSHRs,
		fu:            cfg.FU,
		l1i:           cfg.L1I,
		l1d:           cfg.L1D,
		l2:            cfg.L2,
		l3:            cfg.L3,
		memLatencyNS:  cfg.MemLatencyNS,
		busNSPerLine:  cfg.BusNSPerLine,
		memChannels:   cfg.MemChannels,
		predictor:     cfg.Predictor,
		numPorts:      len(cfg.Ports),
	}
}

// memColKey identifies one MicroMem column across a whole sweep. The
// normalized mlp.Params sequence a column is computed from is fully
// determined by these fields plus per-Compiled state (mode, load fractions,
// the micro set): mlp.Compiled.Evaluate zeroes DispatchRate, BusPerLine and
// the L1/L2 line counts out of its memo key because no memory model reads
// them, and MispredictEvery is a pure function of the micro and missRate.
// Keying columns this way makes them valid across nonClockKey changes — a
// grid sweep that revisits a (ROB, L3, clock) combination under a different
// width or L2 reuses the column with no invalidation.
type memColKey struct {
	rob        int
	mshrs      int
	lat        int
	bus        int
	l3         cache.Config
	prefetcher prefetch.Config
	missRate   float64
}

// maxMemCacheEntries bounds the MicroMem columns a warm Batch retains;
// realistic grid sweeps touch well under this many (ROB, L3, clock,
// prefetch) combinations. At the bound the cache is flushed whole onto the
// free list — amortized O(1), never different results.
const maxMemCacheEntries = 256

// Batch is a single-goroutine evaluation kernel with persistent scratch
// buffers and the DVFS fast-path state; use one per worker when fanning a
// sweep out. When consecutive configurations share their nonClockKey and
// port map, the kernel skips the geometry/miss-ratio/chain stages entirely
// and re-runs only the frequency-dependent memory query and the final
// combine — and caches the memory query per distinct clock, so a sweep
// cycling through a DVFS axis does pure arithmetic per point.
type Batch struct {
	c   *Compiled
	scr scratch

	keyValid bool
	key      nonClockKey
	// portBuf/portLens is the flattened port-map snapshot backing the
	// content comparison (Ports is a slice and not part of nonClockKey).
	portBuf  []trace.Class
	portLens []int

	ge       *geomEntry
	missRate float64

	// memCache holds one MicroMem column per (ROB, MSHRs, L3, clock,
	// prefetch, missRate) combination seen by this kernel — see memColKey
	// for why that key makes columns sweep-lifetime valid; memFree recycles
	// columns retired by a full-cache flush.
	memCache map[memColKey][]mlp.MicroMem
	memFree  [][]mlp.MicroMem

	// Clock-invariant lookup caches local to this single-goroutine kernel.
	// They serve the values the Compiled memo tables would — geometry per
	// cache-geometry key, raw per-micro miss-ratio triples per geometry,
	// per-micro chain interpolations per ROB — without the tables' RWMutex
	// and map hashing, which together dominate the mixed-axis hot loop.
	// Values are bit-identical (they come from the same tables on a miss),
	// so batched results stay byte-for-byte equal to Compiled.Evaluate.
	geomKeyCached geomKey
	geomCached    *geomEntry
	mrCache       map[geomKey][]float64 // 3 per micro: L1, L2, LLC miss ratio
	mrFree        [][]float64
	chainCache    map[int][]float64 // 2 per micro: ABP, CP at that ROB
	chainFree     [][]float64

	// Port/unit dispatch-bound cache: the bounds depend only on the port
	// map and FU table, so the handful of distinct back-ends a sweep visits
	// (one per dispatch width, typically) each compute once. Keyed by the
	// FU table plus the width that selected the port map, with the actual
	// flattened port snapshot verified on every hit so two different port
	// maps behind one key can never alias.
	puCache map[puKey]*puEntry
	puFree  []*puEntry

	// res is the reused gather row for the *Into entry points.
	res Result
}

// NewBatch returns a kernel for one goroutine's share of a sweep.
func (c *Compiled) NewBatch() *Batch { return &Batch{c: c} }

// Evaluate predicts one configuration on the kernel's scratch.
//
//mipp:hotpath
func (b *Batch) Evaluate(cfg *config.Config) *Result {
	res := &Result{MicroCPI: make([]float64, 0, len(b.c.micros))}
	b.evaluateInto(cfg, res)
	return res
}

// evaluateInto evaluates cfg into res, taking the DVFS fast path when cfg
// differs from the previous configuration only in clock (and name).
//
//mipp:hotpath
func (b *Batch) evaluateInto(cfg *config.Config, res *Result) {
	key := makeKey(cfg)
	if !b.keyValid || key != b.key || !b.samePorts(cfg) {
		b.ge, b.missRate = b.invariants(cfg)
		b.key = key
		b.snapshotPorts(cfg)
		b.keyValid = true
	}
	b.c.finish(cfg, b.ge, b.missRate, b.scr.invs, b.memsFor(cfg), res)
}

// invariants is the batch kernel's clock-invariant stage: the same math as
// Compiled.invariants, with the memoized inputs served from the kernel's
// local caches (geometry entry, miss-ratio triples, chain interpolations)
// instead of the shared locked tables.
//
//mipp:hotpath
func (b *Batch) invariants(cfg *config.Config) (*geomEntry, float64) {
	c := b.c
	gk := geomKey{cfg.L1D, cfg.L2, cfg.L3, cfg.L1I}
	if b.geomCached == nil || gk != b.geomKeyCached {
		b.geomCached = c.geometry(cfg)
		b.geomKeyCached = gk
	}
	ge := b.geomCached
	missRate := c.opts.BranchMissRate
	if missRate < 0 {
		missRate = c.model.missRateFor(cfg.Predictor)
	}
	prm := c.prm
	prm.ROB = cfg.ROB
	prm.MSHRs = cfg.MSHRs
	prm.L1Lines = float64(cfg.L1D.Lines())
	prm.L2Lines = float64(cfg.L2.Lines())
	prm.LLCLines = float64(cfg.L3.Lines())
	prm.Prefetch = cfg.Prefetcher
	scr := &b.scr
	scr.ensureMicros(len(c.micros))
	mr := b.missRatios(gk, prm)
	ch := b.chains(cfg.ROB)
	full := c.opts.DispatchModel == DispatchFull
	var pu []float64
	if full {
		pu = b.portUnits(cfg)
	}
	for mi := range c.micros {
		if c.micros[mi].Len == 0 {
			scr.invs[mi] = microInv{skip: true}
			continue
		}
		var portD, unitD float64
		if full {
			portD, unitD = pu[2*mi], pu[2*mi+1]
		}
		c.microInvariant(mi, cfg, ge, &prm, missRate,
			mr[3*mi], mr[3*mi+1], mr[3*mi+2], ch[2*mi], ch[2*mi+1], portD, unitD, &scr.invs[mi])
	}
	return ge, missRate
}

// puKey selects a port/unit cache entry: the FU table (comparable) plus the
// dispatch width and port count standing in for the port map itself (a
// slice, not hashable). Distinct port maps that collide on a key are told
// apart by the snapshot comparison in portUnits, so the key is a locator,
// never the correctness boundary.
type puKey struct {
	fu       [trace.NumClasses]config.FUSpec
	width    int
	numPorts int
}

// puEntry is one cached back-end: the flattened port snapshot that
// validates a hit and the per-micro [portD, unitD] column.
type puEntry struct {
	lens []int
	buf  []trace.Class
	col  []float64
}

// maxPuCacheEntries bounds the distinct back-ends a warm Batch retains —
// sweeps touch one per dispatch width, far below this. Flushed whole onto
// the free list at the bound, like the other batch caches.
const maxPuCacheEntries = 64

// portUnits returns the per-micro [portD, unitD] dispatch bounds for cfg's
// execution back-end, computing each distinct (FU table, port map) once per
// kernel lifetime. A multi-entry cache matters for randomized drivers
// (search samplers), whose consecutive configs alternate dispatch widths; a
// single-entry cache would recompute the §3.4 greedy port schedule on
// nearly every config.
//
//mipp:hotpath
func (b *Batch) portUnits(cfg *config.Config) []float64 {
	k := puKey{fu: cfg.FU, width: cfg.DispatchWidth, numPorts: len(cfg.Ports)}
	if e, ok := b.puCache[k]; ok && portsEqual(cfg, e.lens, e.buf) {
		return e.col
	}
	c := b.c
	n := len(c.micros)
	if b.puCache == nil {
		b.puCache = make(map[puKey]*puEntry, 8)
	} else if len(b.puCache) >= maxPuCacheEntries {
		for k2, e := range b.puCache {
			// The free list holds interchangeable spare entries: the refill
			// below fully overwrites a recycled entry before it is read, so
			// the map-iteration order never reaches a result.
			//mipp:allow determinism free-list of fungible buffers, contents overwritten before use
			b.puFree = append(b.puFree, e)
			delete(b.puCache, k2)
		}
	}
	e := b.puCache[k] // key collision with a different port map: overwrite in place
	if e == nil {
		if fl := len(b.puFree); fl > 0 {
			e = b.puFree[fl-1]
			b.puFree = b.puFree[:fl-1]
		} else {
			e = new(puEntry)
		}
		b.puCache[k] = e
	}
	if cap(e.col) < 2*n {
		e.col = make([]float64, 2*n)
	}
	col := e.col[:2*n]
	for mi := range c.micros {
		if c.micros[mi].Len == 0 {
			col[2*mi], col[2*mi+1] = 0, 0
			continue
		}
		col[2*mi], col[2*mi+1] = effectiveDispatchLimits(c.microMixes[mi], cfg, &b.scr)
	}
	e.col = col
	e.lens, e.buf = snapshotPortsInto(cfg, e.lens, e.buf)
	return col
}

// missRatios returns the per-micro [L1, L2, LLC] raw load miss ratios for
// one cache geometry, cached locally. The cache is bounded like memCache:
// past maxMemCacheEntries geometries it is flushed whole (the columns are
// recycled), which keeps a long mixed sweep amortized-O(1) per config.
//
//mipp:hotpath
func (b *Batch) missRatios(gk geomKey, prm mlp.Params) []float64 {
	if col, ok := b.mrCache[gk]; ok {
		return col
	}
	if b.mrCache == nil {
		b.mrCache = make(map[geomKey][]float64, maxMemCacheEntries)
	} else if len(b.mrCache) >= maxMemCacheEntries {
		flushFloatCache(b.mrCache, &b.mrFree)
	}
	col := takeFloats(&b.mrFree, 3*len(b.c.micros))
	for mi := range b.c.micros {
		if b.c.micros[mi].Len == 0 {
			col[3*mi], col[3*mi+1], col[3*mi+2] = 0, 0, 0
			continue
		}
		col[3*mi] = b.c.missRatio(mi, prm.L1Lines)
		col[3*mi+1] = b.c.missRatio(mi, prm.L2Lines)
		col[3*mi+2] = b.c.missRatio(mi, prm.LLCLines)
	}
	b.mrCache[gk] = col
	return col
}

// chains returns the per-micro [ABP, CP] chain interpolations at one ROB
// size, cached locally with the same bound-and-flush policy as missRatios.
//
//mipp:hotpath
func (b *Batch) chains(rob int) []float64 {
	if col, ok := b.chainCache[rob]; ok {
		return col
	}
	if b.chainCache == nil {
		b.chainCache = make(map[int][]float64, maxMemCacheEntries)
	} else if len(b.chainCache) >= maxMemCacheEntries {
		flushFloatCache(b.chainCache, &b.chainFree)
	}
	col := takeFloats(&b.chainFree, 2*len(b.c.micros))
	for mi := range b.c.micros {
		if b.c.micros[mi].Len == 0 {
			col[2*mi], col[2*mi+1] = 0, 0
			continue
		}
		_, abp, cp := b.c.chainAt(mi, rob)
		col[2*mi] = abp
		col[2*mi+1] = cp
	}
	b.chainCache[rob] = col
	return col
}

// flushFloatCache retires every column of a full lookup cache onto its free
// list so the next fills recycle them.
func flushFloatCache[K comparable](cache map[K][]float64, free *[][]float64) {
	for k, col := range cache {
		// The free list holds interchangeable spare capacity: takeFloats'
		// caller fully overwrites a recycled column before it is read, so
		// the map-iteration order never reaches a result.
		//mipp:allow determinism free-list of fungible buffers, contents overwritten before use
		*free = append(*free, col)
		delete(cache, k)
	}
}

// takeFloats recycles a retired float column or allocates one of length n.
func takeFloats(free *[][]float64, n int) []float64 {
	if f := len(*free); f > 0 {
		col := (*free)[f-1]
		*free = (*free)[:f-1]
		if cap(col) >= n {
			return col[:n]
		}
	}
	return make([]float64, n)
}

// samePorts reports whether cfg's port map matches the snapshot taken at
// the last invariant computation. Design-space enumerators build fresh
// Port slices per configuration, so this is a content comparison, not a
// pointer one.
//
//mipp:hotpath
func (b *Batch) samePorts(cfg *config.Config) bool {
	return portsEqual(cfg, b.portLens, b.portBuf)
}

// snapshotPorts flattens cfg's port map into the kernel's reusable
// buffers.
func (b *Batch) snapshotPorts(cfg *config.Config) {
	b.portLens, b.portBuf = snapshotPortsInto(cfg, b.portLens, b.portBuf)
}

// portsEqual compares cfg's port map against a flattened snapshot by
// content.
//
//mipp:hotpath
func portsEqual(cfg *config.Config, lens []int, buf []trace.Class) bool {
	if len(cfg.Ports) != len(lens) {
		return false
	}
	k := 0
	for pi, p := range cfg.Ports {
		if len(p) != lens[pi] {
			return false
		}
		for _, cl := range p {
			if buf[k] != cl {
				return false
			}
			k++
		}
	}
	return true
}

// snapshotPortsInto flattens cfg's port map into the given reusable
// buffers, returning them resized.
func snapshotPortsInto(cfg *config.Config, lens []int, buf []trace.Class) ([]int, []trace.Class) {
	lens = lens[:0]
	buf = buf[:0]
	for _, p := range cfg.Ports {
		lens = append(lens, len(p))
		buf = append(buf, p...)
	}
	return lens, buf
}

// memsFor returns the MicroMem column for cfg's memory-relevant state,
// computing it at most once per distinct memColKey while cached.
//
//mipp:hotpath
func (b *Batch) memsFor(cfg *config.Config) []mlp.MicroMem {
	mc := cfg.MemConfig()
	k := memColKey{
		rob:        cfg.ROB,
		mshrs:      cfg.MSHRs,
		lat:        mc.LatencyCycles,
		bus:        mc.BusCyclesPerLine,
		l3:         cfg.L3,
		prefetcher: cfg.Prefetcher,
		missRate:   b.missRate,
	}
	if col, ok := b.memCache[k]; ok {
		return col
	}
	if b.memCache == nil {
		b.memCache = make(map[memColKey][]mlp.MicroMem, 16)
	} else if len(b.memCache) >= maxMemCacheEntries {
		for kk, col := range b.memCache {
			// The free list holds interchangeable spare capacity:
			// takeColumn's caller fully overwrites a recycled column before
			// it is read, so the map-iteration order never reaches a result.
			//mipp:allow determinism free-list of fungible buffers, contents overwritten before use
			b.memFree = append(b.memFree, col)
			delete(b.memCache, kk)
		}
	}
	col := b.takeColumn()
	b.c.computeMems(cfg, b.scr.invs, col)
	b.memCache[k] = col
	return col
}

// takeColumn recycles a retired MicroMem column or allocates one sized for
// the current micro-trace count.
func (b *Batch) takeColumn() []mlp.MicroMem {
	n := len(b.scr.invs)
	if f := len(b.memFree); f > 0 {
		col := b.memFree[f-1]
		b.memFree = b.memFree[:f-1]
		if cap(col) >= n {
			return col[:n]
		}
	}
	return make([]mlp.MicroMem, n)
}

// EvaluateRangeInto evaluates cfgs into br's slots [off, off+len(cfgs)),
// which must lie within a PrepareBatch'd br. Nil configurations leave their
// slot invalid. ctx is polled every CtxCheckStride configurations (see its
// doc); on cancellation the rows evaluated so far keep their values, the
// rest stay invalid, and ctx.Err() is returned. A nil ctx disables the
// checks. Concurrent calls on disjoint ranges of the same br are
// race-free.
//
//mipp:hotpath
func (c *Compiled) EvaluateRangeInto(ctx context.Context, cfgs []*config.Config, br *BatchResult, off int) error {
	b := c.batches.Get().(*Batch)
	if cap(b.res.MicroCPI) < len(c.micros) {
		b.res.MicroCPI = make([]float64, 0, len(c.micros))
	}
	var err error
	for k, cfg := range cfgs {
		if ctx != nil && k%CtxCheckStride == 0 {
			if err = ctx.Err(); err != nil {
				break
			}
		}
		if cfg == nil {
			continue
		}
		b.evaluateInto(cfg, &b.res)
		br.setRow(off+k, &b.res)
	}
	c.batches.Put(b)
	return err
}

// EvaluateBatchInto is the allocation-free batched entry point: it sizes br
// for cfgs (reusing its buffers) and evaluates every configuration in input
// order on one pooled kernel. Results land at their input index; see
// EvaluateRangeInto for nil-config, cancellation and aliasing semantics.
func (c *Compiled) EvaluateBatchInto(ctx context.Context, cfgs []*config.Config, br *BatchResult) error {
	c.PrepareBatch(br, len(cfgs))
	return c.EvaluateRangeInto(ctx, cfgs, br, 0)
}

// EvaluateBatch evaluates every configuration in input order, returning one
// freshly materialized *Result per slot. It is a thin adapter over
// EvaluateBatchInto kept for compatibility; batched callers that care about
// allocation should hold a BatchResult instead. On cancellation the slots
// evaluated so far are returned alongside ctx.Err(); the rest are nil.
func (c *Compiled) EvaluateBatch(ctx context.Context, cfgs []*config.Config) ([]*Result, error) {
	out := make([]*Result, len(cfgs))
	var br BatchResult
	err := c.EvaluateBatchInto(ctx, cfgs, &br)
	for i := range out {
		if br.valid[i] {
			out[i] = br.Result(i)
		}
	}
	return out, err
}
