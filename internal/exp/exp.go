// Package exp is the experiment harness: one function per table and figure
// of the paper's evaluation (Chapters 3-7), each regenerating the same rows
// or series the paper reports. The functions are shared by cmd/experiments
// and the top-level benchmark suite (bench_test.go).
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"mipp"
	"mipp/api"
	"mipp/arch"
	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/ooo"
	"mipp/internal/profiler"
	"mipp/internal/trace"
	"mipp/internal/workload"
)

// Suite memoizes workload streams, profiles and simulation results so the
// individual experiments can share them. Profiles and default-option
// predictors live in a mipp.Engine — the same registry + predictor cache
// the mippd service runs on — so the paper's tables exercise the serving
// path.
type Suite struct {
	// N is the trace length in uops for reference-architecture
	// experiments; design-space sweeps use N/3.
	N int
	// Workloads is the benchmark subset to run (default: all 29).
	Workloads []string

	engine *mipp.Engine

	mu       sync.Mutex
	streams  map[string]*trace.Stream
	profiles map[string]*profiler.Profile
	sims     map[string]*ooo.Result
	models   map[string]*core.Model
}

// NewSuite returns a Suite with the given trace length (0 = 300000).
func NewSuite(n int) *Suite {
	if n <= 0 {
		n = 300_000
	}
	return &Suite{
		N:         n,
		Workloads: workload.Names(),
		engine:    mipp.NewEngine(),
		streams:   make(map[string]*trace.Stream),
		profiles:  make(map[string]*profiler.Profile),
		sims:      make(map[string]*ooo.Result),
		models:    make(map[string]*core.Model),
	}
}

// Engine exposes the suite's evaluation engine, with every workload touched
// so far registered under "name/n" keys.
func (s *Suite) Engine() *mipp.Engine { return s.engine }

// Stream returns the memoized trace of a workload at length n.
func (s *Suite) Stream(name string, n int) *trace.Stream {
	key := fmt.Sprintf("%s/%d", name, n)
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[key]; ok {
		return st
	}
	st := workload.MustGenerate(name, n, 0)
	s.streams[key] = st
	return st
}

// Profile returns the memoized profile of a workload at length n.
func (s *Suite) Profile(name string, n int) *profiler.Profile {
	key := fmt.Sprintf("%s/%d", name, n)
	s.mu.Lock()
	if p, ok := s.profiles[key]; ok {
		s.mu.Unlock()
		return p
	}
	s.mu.Unlock()
	st := s.Stream(name, n)
	p := profiler.Run(st, profiler.Options{})
	s.mu.Lock()
	s.profiles[key] = p
	s.mu.Unlock()
	return p
}

// Model returns a memoized analytical model for a workload at length n.
func (s *Suite) Model(name string, n int) *core.Model {
	key := fmt.Sprintf("%s/%d", name, n)
	s.mu.Lock()
	if m, ok := s.models[key]; ok {
		s.mu.Unlock()
		return m
	}
	s.mu.Unlock()
	m := core.New(s.Profile(name, n), nil)
	s.mu.Lock()
	s.models[key] = m
	s.mu.Unlock()
	return m
}

// Predictor returns the engine-cached public-façade predictor (default
// options) for a workload at length n, registering the memoized profile
// with the engine on first use. Evaluations through it exercise the exact
// code path external mipp users — and the mippd service — call.
func (s *Suite) Predictor(name string, n int) *mipp.Predictor {
	key := fmt.Sprintf("%s/%d", name, n)
	// Check-then-register under the suite lock so concurrent callers
	// cannot double-register (a re-register would invalidate the
	// just-compiled predictor). Profile() takes s.mu itself, so the
	// profile is materialized before the critical section.
	p := s.Profile(name, n)
	s.mu.Lock()
	if _, ok := s.engine.Profile(key); !ok {
		if err := s.engine.Register(key, mipp.WrapProfile(p)); err != nil {
			s.mu.Unlock()
			panic(fmt.Sprintf("exp: register %s: %v", key, err))
		}
	}
	s.mu.Unlock()
	pd, err := s.engine.Predictor(key, api.PredictorSpec{})
	if err != nil {
		panic(fmt.Sprintf("exp: predictor %s: %v", key, err))
	}
	return pd
}

// PredictorWith builds an unmemoized façade predictor with custom options,
// for experiments that ablate model components.
func (s *Suite) PredictorWith(name string, n int, opts ...mipp.PredictorOption) *mipp.Predictor {
	pd, err := mipp.NewPredictor(mipp.WrapProfile(s.Profile(name, n)), opts...)
	if err != nil {
		panic(fmt.Sprintf("exp: predictor %s: %v", name, err))
	}
	return pd
}

// Predict evaluates one configuration through the façade, panicking on the
// errors the harness treats as programming mistakes.
func (s *Suite) Predict(name string, cfg *config.Config, n int) *mipp.Result {
	res, err := s.Predictor(name, n).Predict(cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: predict %s on %s: %v", name, cfg.Name, err))
	}
	return res
}

// Sweep evaluates a workload's predictor over many configurations through
// the public concurrent Sweep, so the paper's tables exercise the same
// batch-evaluation path external users call. results[i] matches configs[i].
func (s *Suite) Sweep(name string, configs []*config.Config, n int) []*mipp.Result {
	results, err := mipp.Sweep(context.Background(), s.Predictor(name, n), configs)
	if err != nil {
		panic(fmt.Sprintf("exp: sweep %s: %v", name, err))
	}
	return results
}

// Sim returns the memoized simulation of workload name on cfg at length n.
func (s *Suite) Sim(name string, cfg *config.Config, n int) *ooo.Result {
	key := fmt.Sprintf("%s/%s/%d", name, cfg.Name, n)
	s.mu.Lock()
	if r, ok := s.sims[key]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()
	st := s.Stream(name, n)
	r, err := ooo.Simulate(cfg, st, ooo.Options{})
	if err != nil {
		panic(fmt.Sprintf("exp: simulate %s on %s: %v", name, cfg.Name, err))
	}
	s.mu.Lock()
	s.sims[key] = r
	s.mu.Unlock()
	return r
}

// Experiment is a registered table/figure generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Suite, w io.Writer)
}

var registry []Experiment

func register(id, title string, run func(*Suite, io.Writer)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// SpaceSample returns a stratified sample of the 243-point design space:
// every k-th configuration, which cycles through all parameter values
// because the enumeration is lexicographic.
func SpaceSample(k int) []*config.Config { return arch.DesignSpaceSample(k) }

// header prints a section header for experiment output.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "== %s ==\n", title)
}
