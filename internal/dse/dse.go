// Package dse implements the design-space exploration machinery of
// Chapter 7: Pareto frontiers over (execution time, power), the pruning
// quality metrics — sensitivity, specificity, accuracy and the hypervolume
// ratio (HVR, Figure 7.8) — and helpers for power-constrained optimization
// (Table 7.1) and ED²P-based DVFS selection (§7.3).
package dse

import (
	"math"
	"sort"
)

// Point is one design evaluated for one workload: lower Time and lower
// Power are better.
type Point struct {
	Config string
	Time   float64 // seconds (or any monotone performance cost)
	Power  float64 // watts
}

// Dominates reports whether a dominates b (no worse in both, better in one).
func (a Point) Dominates(b Point) bool {
	if a.Time <= b.Time && a.Power <= b.Power {
		return a.Time < b.Time || a.Power < b.Power
	}
	return false
}

// ParetoFront returns the non-dominated subset of points, sorted by Time.
func ParetoFront(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].Power < sorted[j].Power
	})
	var front []Point
	bestPower := math.Inf(1)
	for _, p := range sorted {
		if p.Power < bestPower {
			front = append(front, p)
			bestPower = p.Power
		}
	}
	return front
}

// Metrics summarizes how well a predicted Pareto front matches the true one
// (§7.4): the predicted-optimal configs are a classifier over the design
// space, scored against the actually-optimal set.
type Metrics struct {
	Sensitivity float64 // true positives / actual positives
	Specificity float64 // true negatives / actual negatives
	Accuracy    float64 // correct classifications / all
	HVR         float64 // hypervolume(predicted picks) / hypervolume(true front)
}

// Evaluate compares a predicted design-space evaluation against the true
// one. `predicted` and `actual` must cover the same configs (matched by
// Config name); the predicted front's configs are looked up in the actual
// space for the HVR computation, exactly as the thesis evaluates pruning: a
// designer simulates the predicted picks and obtains their *actual*
// time/power.
func Evaluate(predicted, actual []Point) Metrics {
	actualByName := make(map[string]Point, len(actual))
	for _, p := range actual {
		actualByName[p.Config] = p
	}
	trueFront := ParetoFront(actual)
	predFront := ParetoFront(predicted)

	inTrue := make(map[string]bool, len(trueFront))
	for _, p := range trueFront {
		inTrue[p.Config] = true
	}
	inPred := make(map[string]bool, len(predFront))
	for _, p := range predFront {
		inPred[p.Config] = true
	}

	var tp, fp, tn, fn float64
	for _, p := range actual {
		switch {
		case inTrue[p.Config] && inPred[p.Config]:
			tp++
		case inTrue[p.Config] && !inPred[p.Config]:
			fn++
		case !inTrue[p.Config] && inPred[p.Config]:
			fp++
		default:
			tn++
		}
	}
	var m Metrics
	if tp+fn > 0 {
		m.Sensitivity = tp / (tp + fn)
	}
	if tn+fp > 0 {
		m.Specificity = tn / (tn + fp)
	}
	if n := tp + fp + tn + fn; n > 0 {
		m.Accuracy = (tp + tn) / n
	}

	// HVR: hypervolume of the *actual* points of the predicted picks,
	// relative to the true front's hypervolume (Figure 7.8). The
	// reference point is the worst corner of the actual space.
	ref := worstCorner(actual)
	var picks []Point
	for _, p := range predFront {
		if ap, ok := actualByName[p.Config]; ok {
			picks = append(picks, ap)
		}
	}
	hvTrue := Hypervolume(trueFront, ref)
	if hvTrue > 0 {
		m.HVR = Hypervolume(ParetoFront(picks), ref) / hvTrue
	}
	return m
}

func worstCorner(points []Point) Point {
	ref := Point{Time: 0, Power: 0}
	for _, p := range points {
		if p.Time > ref.Time {
			ref.Time = p.Time
		}
		if p.Power > ref.Power {
			ref.Power = p.Power
		}
	}
	// Nudge outwards so boundary points contribute volume.
	ref.Time *= 1.01
	ref.Power *= 1.01
	return ref
}

// Hypervolume computes the 2D dominated hypervolume of a front with respect
// to a reference (worst) point. Points beyond the reference contribute
// nothing.
func Hypervolume(front []Point, ref Point) float64 {
	f := ParetoFront(front)
	hv := 0.0
	prevPower := ref.Power
	for _, p := range f {
		if p.Time >= ref.Time || p.Power >= prevPower {
			continue
		}
		hv += (ref.Time - p.Time) * (prevPower - p.Power)
		prevPower = p.Power
	}
	return hv
}

// BestUnderPowerCap returns the fastest point whose power does not exceed
// cap (Table 7.1's optimization); ok is false when nothing fits.
func BestUnderPowerCap(points []Point, cap float64) (Point, bool) {
	best := Point{Time: math.Inf(1)}
	ok := false
	for _, p := range points {
		if p.Power <= cap && p.Time < best.Time {
			best = p
			ok = true
		}
	}
	return best, ok
}

// BestByED2P returns the point minimizing energy-delay-squared
// (power × time³, since E = P·t), the DVFS selection metric of §7.3.
func BestByED2P(points []Point) (Point, bool) {
	best := Point{}
	bestV := math.Inf(1)
	ok := false
	for _, p := range points {
		v := p.Power * p.Time * p.Time * p.Time
		if v < bestV {
			best, bestV, ok = p, v, true
		}
	}
	return best, ok
}
