// Command simulate runs the cycle-level reference simulator (the ground
// truth the analytical model is validated against) and prints measured CPI
// and power stacks.
//
// Usage:
//
//	simulate -workload gcc -n 1000000
//	simulate -workload libquantum -config reference+pf
package main

import (
	"flag"
	"fmt"
	"log"

	"mipp"
	"mipp/arch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		name    = flag.String("workload", "", "benchmark name")
		n       = flag.Int("n", 1_000_000, "trace length in micro-ops")
		cfgName = flag.String("config", "reference", "reference | reference+pf | lowpower")
	)
	flag.Parse()
	if *name == "" {
		log.Fatal("missing -workload")
	}
	cfg, ok := arch.ByName(*cfgName)
	if !ok {
		log.Fatalf("unknown config %q", *cfgName)
	}
	stream, err := mipp.GenerateWorkload(*name, *n, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mipp.Simulate(cfg, stream, mipp.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pw := mipp.EstimatePower(cfg, &res.Activity)
	stack := res.Stack.PerInstruction(res.Instructions)
	fmt.Println(res.String())
	fmt.Printf("CPI stack: %s\n", stack.String())
	fmt.Printf("power:     %s\n", pw.String())
	fmt.Printf("branches:  %d (%.2f%% mispredicted)\n", res.Branches,
		100*float64(res.BranchMispredicts)/float64(max64(res.Branches, 1)))
	fmt.Printf("loads:     L1=%d L2=%d L3=%d Mem=%d coalesced=%d\n",
		res.LoadsAtLevel[0], res.LoadsAtLevel[1], res.LoadsAtLevel[2], res.LoadsAtLevel[3], res.CoalescedLoads)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
