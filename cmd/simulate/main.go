// Command simulate runs the cycle-level reference simulator (the ground
// truth the analytical model is validated against) and prints measured CPI
// and power stacks — and, when a profile is available, the model-vs-sim
// residual table the fidelity observatory aggregates in service.
//
// Usage:
//
//	simulate -workload gcc -n 1000000
//	simulate -workload libquantum -config reference+pf
//	simulate -store ./profile-store -name mcf    # profile from a mippd store:
//	                                             # also prints the analytical
//	                                             # model's per-component residuals
package main

import (
	"flag"
	"fmt"
	"log"

	"mipp"
	"mipp/arch"
	"mipp/fidelity"
	"mipp/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		name     = flag.String("workload", "", "benchmark name")
		n        = flag.Int("n", 1_000_000, "trace length in micro-ops")
		cfgName  = flag.String("config", "reference", "reference | reference+pf | lowpower")
		storeDir = flag.String("store", "", "content-addressed profile store to read from (see mippd -store)")
		regName  = flag.String("name", "", "store registry name to load with -store (default: -workload)")
	)
	flag.Parse()

	cfg, ok := arch.ByName(*cfgName)
	if !ok {
		log.Fatalf("unknown config %q", *cfgName)
	}

	// With -store, the profile supplies the workload identity (so the
	// stream regenerates from the same generator the profile measured) and
	// the analytical side of the residual table.
	var profile *mipp.Profile
	workload := *name
	if *storeDir != "" {
		lookup := *regName
		if lookup == "" {
			lookup = *name
		}
		if lookup == "" {
			log.Fatal("missing -name (or -workload) with -store")
		}
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		p, ok, err := st.Get(lookup)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			log.Fatalf("profile %q not in store %s (stored: %v)", lookup, *storeDir, st.Names())
		}
		profile = p
		workload = p.Workload()
		fmt.Printf("profile %q from %s (workload %s, %d uops profiled)\n",
			lookup, *storeDir, workload, p.TotalUops())
	}
	if workload == "" {
		log.Fatal("missing -workload")
	}

	stream, err := mipp.GenerateWorkload(workload, *n, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mipp.Simulate(cfg, stream, mipp.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pw := mipp.EstimatePower(cfg, &res.Activity)
	stack := res.Stack.PerInstruction(res.Instructions)
	fmt.Println(res.String())
	fmt.Printf("CPI stack: %s\n", stack.String())
	fmt.Printf("power:     %s\n", pw.String())
	fmt.Printf("branches:  %d (%.2f%% mispredicted)\n", res.Branches,
		100*float64(res.BranchMispredicts)/float64(max64(res.Branches, 1)))
	fmt.Printf("loads:     L1=%d L2=%d L3=%d Mem=%d coalesced=%d\n",
		res.LoadsAtLevel[0], res.LoadsAtLevel[1], res.LoadsAtLevel[2], res.LoadsAtLevel[3], res.CoalescedLoads)

	if profile == nil {
		return
	}

	// The residual table: the analytical model's prediction against what
	// the simulator just measured, decomposed the same way the serving
	// tier's /v1/fidelity reports it.
	pd, err := mipp.NewPredictor(profile)
	if err != nil {
		log.Fatal(err)
	}
	model, err := pd.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sample := fidelity.Pair{
		Workload: workload,
		Config:   cfg.Name,
		Model:    mipp.ModelMeasurement(model),
		Sim:      mipp.SimMeasurement(cfg, res),
	}.Sample()

	fmt.Printf("\nmodel vs simulator (model − sim; positive = model over-predicts)\n")
	fmt.Printf("  CPI:   model %.4f  sim %.4f  error %+.2f%%\n",
		sample.Model.CPI, sample.Sim.CPI, sample.CPIErrorPct)
	mc, sc, rc := sample.Model.CPIStack.Components(), sample.Sim.CPIStack.Components(), sample.CPIResidual.Components()
	for i, comp := range fidelity.CPIComponents {
		fmt.Printf("    %-7s model %.4f  sim %.4f  residual %+.4f\n", comp, mc[i], sc[i], rc[i])
	}
	fmt.Printf("  power: model %.3fW  sim %.3fW  error %+.2f%%\n",
		sample.Model.Watts, sample.Sim.Watts, sample.WattsErrorPct)
	mp, sp, rp := sample.Model.Power.Components(), sample.Sim.Power.Components(), sample.PowerResidual.Components()
	for i, comp := range fidelity.PowerComponents {
		fmt.Printf("    %-7s model %.3fW  sim %.3fW  residual %+.3fW\n", comp, mp[i], sp[i], rp[i])
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
