// Package ooo is the cycle-level reference simulator: a superscalar
// out-of-order core with a branch-predicting front-end, dispatch into an
// ROB + issue queue, per-port issue with pipelined and non-pipelined
// functional units, a load/store queue, an MSHR-limited non-blocking
// three-level cache hierarchy, a stride prefetcher and a bandwidth-limited
// DRAM backend.
//
// It plays the role Sniper plays in the paper: the ground truth the
// analytical model's performance and power predictions are validated
// against. It implements exactly the first-order mechanisms the interval
// model abstracts — miss-event serialization at dispatch, memory-level
// parallelism bounded by the ROB and MSHRs, issue-port contention and
// front-end redirect penalties — so model-versus-simulator errors are
// meaningful in the same way as the paper's.
package ooo

import (
	"context"
	"fmt"
	"math"

	"mipp/internal/branch"
	"mipp/internal/cache"
	"mipp/internal/config"
	"mipp/internal/memory"
	"mipp/internal/perf"
	"mipp/internal/prefetch"
	"mipp/internal/trace"
)

const farFuture = int64(math.MaxInt64 / 4)

// Options modify a simulation run.
type Options struct {
	// PerfectBP disables branch misprediction penalties (used to isolate
	// the base component, Figure 3.7).
	PerfectBP bool
	// PerfectICache makes every instruction fetch hit the L1I.
	PerfectICache bool
	// PerfectDCache makes every load and store hit the L1D (the "perfect
	// processor" of §3.4's validation).
	PerfectDCache bool
	// WindowUops, when positive, records the cycle count after every
	// window of that many committed uops, for phase analysis (§6.5).
	WindowUops int
}

// Result reports a completed simulation.
type Result struct {
	Config       string
	Workload     string
	Cycles       int64
	Uops         int64
	Instructions int64
	// Stack attributes every cycle to a CPI-stack component.
	Stack perf.CPIStack
	// Activity holds power-model activity factors.
	Activity perf.Activity
	// MLP is the measured memory-level parallelism: the average number of
	// outstanding DRAM loads over cycles with at least one outstanding.
	MLP float64
	// DRAMStallPerMiss is the average number of stall cycles attributed
	// to DRAM per long-latency load miss (the "time waiting on DRAM"
	// metric of Figure 6.15).
	DRAMStallPerMiss float64
	// Branches and BranchMispredicts count dynamic conditional branches.
	Branches          int64
	BranchMispredicts int64
	// LoadsAtLevel counts demand loads satisfied at each level
	// (L1, L2, L3, Mem). Loads that coalesce onto an in-flight fill are
	// counted in CoalescedLoads instead.
	LoadsAtLevel [4]int64
	// CoalescedLoads counts loads that merged with an outstanding fill of
	// the same line (they share the MSHR entry and cause no new transfer).
	CoalescedLoads int64
	// ColdMisses counts first-touch LLC misses.
	ColdMisses int64
	// BusWaitCycles is the accumulated memory-bus queuing delay.
	BusWaitCycles int64
	// WindowCycles[i] is the cycle count when window i completed
	// (present when Options.WindowUops > 0).
	WindowCycles []int64
}

// CPI returns cycles per macro-instruction.
func (r *Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// UPC returns micro-ops per cycle.
func (r *Result) UPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Uops) / float64(r.Cycles)
}

// TimeSeconds returns wall-clock execution time at the config frequency.
func (r *Result) TimeSeconds(freqGHz float64) float64 {
	return float64(r.Cycles) / (freqGHz * 1e9)
}

// WindowCPI converts WindowCycles into per-window CPI values (cycles per
// committed uop in the window, scaled by uops/instruction).
func (r *Result) WindowCPI(windowUops int) []float64 {
	if len(r.WindowCycles) == 0 || windowUops == 0 {
		return nil
	}
	upi := float64(r.Uops) / float64(r.Instructions)
	out := make([]float64, len(r.WindowCycles))
	prev := int64(0)
	for i, c := range r.WindowCycles {
		out[i] = float64(c-prev) / float64(windowUops) * upi
		prev = c
	}
	return out
}

type fetchReason int

const (
	fetchOK fetchReason = iota
	fetchBranch
	fetchICache
)

type robEntry struct {
	idx     int32
	done    int64
	cls     trace.Class
	issued  bool
	mispred bool
	level   int8 // cache.Level for loads; -1 otherwise
}

type sim struct {
	cfg    *config.Config
	stream *trace.Stream
	opt    Options

	pred  branch.Predictor
	l1i   *cache.Cache
	dhier *cache.Hierarchy
	dram  *memory.DRAM
	pf    *prefetch.Stride

	// Pipeline state.
	cycle     int64
	rob       []robEntry
	head      int
	robCount  int
	iq        []int // rob slots of un-issued uops, oldest first
	lsqCount  int
	doneAt    []int64
	nextUop   int
	committed int64
	instrs    int64

	fetchAvail   int64
	fetchWhy     fetchReason
	lastFetchPC  uint64
	haveFetchPC  bool
	pendingRedir int // rob slot of the unresolved mispredicted branch; -1 none

	// Issue resources.
	portUsed []bool
	npBusy   [][trace.NumClasses]int64

	// Memory state.
	inflight    map[uint64]int64 // line -> data-ready cycle
	mshrReady   []int64          // outstanding L1D miss completion times
	dramPending []int64          // outstanding DRAM demand-load completion times

	// Accounting.
	res       Result
	mlpSum    float64
	mlpCycles int64
	memLat    memory.Config
	winNext   int64
}

// Simulate runs stream on cfg and returns the measured result.
func Simulate(cfg *config.Config, stream *trace.Stream, opt Options) (*Result, error) {
	return SimulateContext(context.Background(), cfg, stream, opt)
}

// ctxCheckCycles is how many simulated cycles pass between ctx.Err() polls
// in the commit loop: coarse enough to stay invisible in profiles (one
// atomic-free branch per ~8k cycles), fine enough that cancellation lands
// within microseconds of wall time.
const ctxCheckCycles = 8192

// SimulateContext is Simulate with cancellation: the cycle loop polls ctx
// periodically, and a canceled or expired context abandons the run with
// ctx.Err() wrapped in the returned error. Fidelity sampling runs the
// simulator from a serving process, where an evaluator that cannot be
// canceled would hold a shutdown hostage for the length of a ground-truth
// run.
func SimulateContext(ctx context.Context, cfg *config.Config, stream *trace.Stream, opt Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pred, err := branch.NewByName(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg:          cfg,
		stream:       stream,
		opt:          opt,
		pred:         pred,
		l1i:          cache.New(cfg.L1I),
		dhier:        cache.NewHierarchy(cfg.L1D, cfg.L2, cfg.L3),
		dram:         memory.New(cfg.MemConfig()),
		pf:           prefetch.NewStride(cfg.Prefetcher),
		rob:          make([]robEntry, cfg.ROB),
		iq:           make([]int, 0, cfg.IQ),
		doneAt:       make([]int64, len(stream.Uops)),
		portUsed:     make([]bool, len(cfg.Ports)),
		npBusy:       make([][trace.NumClasses]int64, len(cfg.Ports)),
		inflight:     make(map[uint64]int64),
		pendingRedir: -1,
		memLat:       cfg.MemConfig(),
	}
	for i := range s.doneAt {
		s.doneAt[i] = farFuture
	}
	if opt.WindowUops > 0 {
		s.winNext = int64(opt.WindowUops)
	}
	if err := s.run(ctx); err != nil {
		return nil, err
	}
	r := s.res
	r.Config = cfg.Name
	r.Workload = stream.Name
	r.Cycles = s.cycle
	r.Uops = s.committed
	r.Instructions = s.instrs
	if s.mlpCycles > 0 {
		r.MLP = s.mlpSum / float64(s.mlpCycles)
	} else {
		r.MLP = 1
	}
	if r.LoadsAtLevel[3] > 0 {
		r.DRAMStallPerMiss = r.Stack.Cycles[perf.DRAM] / float64(r.LoadsAtLevel[3])
	}
	r.ColdMisses = s.dhier.ColdMiss
	r.BusWaitCycles = s.dram.TotalWait
	s.fillActivity(&r)
	return &r, nil
}

func (s *sim) fillActivity(r *Result) {
	a := &r.Activity
	a.Cycles = float64(s.cycle)
	a.UopsDispatched = float64(s.committed)
	a.UopsCommitted = float64(s.committed)
	l1d := s.dhier.Levels[0].Stats
	l2 := s.dhier.Levels[1].Stats
	l3 := s.dhier.Levels[2].Stats
	a.L1IAccesses = float64(s.l1i.Stats.Accesses)
	a.L1IMisses = float64(s.l1i.Stats.Misses)
	a.L1DAccesses = float64(l1d.Accesses)
	a.L1DMisses = float64(l1d.Misses)
	a.L2Accesses = float64(l2.Accesses)
	a.L2Misses = float64(l2.Misses)
	a.L3Accesses = float64(l3.Accesses)
	a.L3Misses = float64(l3.Misses)
	a.DRAMAccesses = float64(s.dram.Accesses)
	a.BranchLookups = float64(r.Branches)
	a.PrefetchIssued = float64(s.pf.Issued)
}

func (s *sim) run(ctx context.Context) error {
	n := len(s.stream.Uops)
	nextCheck := s.cycle + ctxCheckCycles
	for s.committed < int64(n) {
		if s.cycle >= nextCheck {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("ooo: simulation of %q on %q canceled at cycle %d: %w",
					s.stream.Name, s.cfg.Name, s.cycle, err)
			}
			nextCheck = s.cycle + ctxCheckCycles
		}
		committed := s.commit()
		if committed == 0 {
			s.attributeStall(1)
		} else {
			s.res.Stack.Cycles[perf.Base]++
		}
		issued := s.issue()
		dispatched := s.dispatch()
		s.accountMLP(1)
		// Idle fast-forward: when nothing moved this cycle, jump to the
		// next event instead of spinning cycle by cycle.
		if committed == 0 && issued == 0 && dispatched == 0 {
			if next := s.nextEvent(); next > s.cycle+1 {
				delta := next - s.cycle - 1
				s.attributeStall(delta)
				s.accountMLP(delta)
				s.cycle = next - 1
			}
		}
		s.cycle++
	}
	return nil
}

// nextEvent returns the earliest future cycle at which pipeline state can
// change: an in-flight uop completing, the front-end redirect resolving, or
// a non-pipelined unit freeing up.
func (s *sim) nextEvent() int64 {
	next := farFuture
	for i := 0; i < s.robCount; i++ {
		e := &s.rob[(s.head+i)%len(s.rob)]
		if e.issued && e.done > s.cycle && e.done < next {
			next = e.done
		}
	}
	if s.fetchAvail > s.cycle && s.fetchAvail < next {
		next = s.fetchAvail
	}
	for p := range s.npBusy {
		for c := range s.npBusy[p] {
			if t := s.npBusy[p][c]; t > s.cycle && t < next {
				next = t
			}
		}
	}
	if next == farFuture {
		return s.cycle + 1
	}
	return next
}

// attributeStall charges delta stall cycles to the component responsible
// for the current lack of commit progress.
func (s *sim) attributeStall(delta int64) {
	comp := perf.Base
	if s.robCount > 0 {
		e := &s.rob[s.head]
		if e.done > s.cycle {
			if e.cls == trace.Load {
				switch cache.Level(e.level) {
				case cache.Mem:
					comp = perf.DRAM
				case cache.L3:
					comp = perf.LLCHit
				}
			}
		}
	} else {
		switch s.fetchWhy {
		case fetchBranch:
			comp = perf.BranchComp
		case fetchICache:
			comp = perf.ICache
		}
	}
	s.res.Stack.Cycles[comp] += float64(delta)
}

func (s *sim) accountMLP(delta int64) {
	// Purge completed DRAM loads.
	keep := s.dramPending[:0]
	for _, t := range s.dramPending {
		if t > s.cycle {
			keep = append(keep, t)
		}
	}
	s.dramPending = keep
	if n := len(s.dramPending); n > 0 {
		s.mlpSum += float64(n) * float64(delta)
		s.mlpCycles += delta
	}
}

func (s *sim) commit() int {
	committed := 0
	for s.robCount > 0 && committed < s.cfg.DispatchWidth {
		e := &s.rob[s.head]
		if !e.issued || e.done > s.cycle {
			break
		}
		if e.cls == trace.Load || e.cls == trace.Store {
			s.lsqCount--
		}
		s.head = (s.head + 1) % len(s.rob)
		s.robCount--
		s.committed++
		committed++
		if s.opt.WindowUops > 0 && s.committed >= s.winNext {
			s.res.WindowCycles = append(s.res.WindowCycles, s.cycle)
			s.winNext += int64(s.opt.WindowUops)
		}
	}
	return committed
}

// ready reports whether the uop at stream index idx has all operands
// available at the current cycle.
func (s *sim) ready(idx int) bool {
	u := &s.stream.Uops[idx]
	if d := u.SrcDist1; d > 0 {
		if p := idx - int(d); p >= 0 && s.doneAt[p] > s.cycle {
			return false
		}
	}
	if d := u.SrcDist2; d > 0 {
		if p := idx - int(d); p >= 0 && s.doneAt[p] > s.cycle {
			return false
		}
	}
	return true
}

// takePort finds a free issue port for class cls, honoring non-pipelined
// unit occupancy. It returns the port index or -1.
func (s *sim) takePort(cls trace.Class) int {
	spec := s.cfg.FU[cls]
	for p, port := range s.cfg.Ports {
		if s.portUsed[p] || !port.Serves(cls) {
			continue
		}
		if !spec.Pipelined && s.npBusy[p][cls] > s.cycle {
			continue
		}
		return p
	}
	return -1
}

func (s *sim) issue() int {
	for p := range s.portUsed {
		s.portUsed[p] = false
	}
	issued := 0
	for i := 0; i < len(s.iq); {
		slot := s.iq[i]
		e := &s.rob[slot]
		idx := int(e.idx)
		if !s.ready(idx) {
			i++
			continue
		}
		p := s.takePort(e.cls)
		if p < 0 {
			i++
			continue
		}
		ok := true
		switch e.cls {
		case trace.Load:
			ok = s.issueLoad(e, idx)
		case trace.Store:
			s.issueStore(e, idx)
		case trace.Branch:
			e.done = s.cycle + int64(s.cfg.FU[trace.Branch].Latency)
			if e.mispred {
				// The branch resolves at e.done; correct-path
				// fetch resumes after the front-end refills.
				s.fetchAvail = e.done + int64(s.cfg.FrontEndDepth)
				s.fetchWhy = fetchBranch
				s.pendingRedir = -1
			}
		default:
			e.done = s.cycle + int64(s.cfg.FU[e.cls].Latency)
		}
		if !ok {
			// Structural stall (MSHRs exhausted): retry next cycle.
			i++
			continue
		}
		spec := s.cfg.FU[e.cls]
		s.portUsed[p] = true
		if !spec.Pipelined {
			s.npBusy[p][e.cls] = e.done
		}
		e.issued = true
		s.doneAt[idx] = e.done
		s.iq = append(s.iq[:i], s.iq[i+1:]...)
		issued++
	}
	return issued
}

// issueLoad performs the memory access of a load; it returns false if the
// load cannot issue because the MSHR file is exhausted.
func (s *sim) issueLoad(e *robEntry, idx int) bool {
	u := &s.stream.Uops[idx]
	l1lat := int64(s.cfg.L1D.LatencyCycles)
	if s.opt.PerfectDCache {
		e.level = int8(cache.L1)
		e.done = s.cycle + l1lat
		s.res.LoadsAtLevel[0]++
		return true
	}
	line := u.Addr >> 6
	// Coalesce with an already in-flight fill of the same line: the load
	// shares the outstanding MSHR entry and completes with the fill.
	if ready, ok := s.inflight[line]; ok {
		if ready <= s.cycle {
			delete(s.inflight, line)
		} else {
			e.level = int8(cache.Mem)
			if ready-s.cycle < int64(s.memLat.LatencyCycles)/2 {
				e.level = int8(cache.L3)
			}
			e.done = ready
			s.res.CoalescedLoads++
			return true
		}
	}
	// An L1 miss needs a free MSHR entry.
	if !s.dhier.Levels[0].Probe(u.Addr) {
		if s.activeMSHRs() >= s.cfg.MSHRs {
			return false
		}
	}
	level := s.dhier.Access(u.Addr, false)
	var done int64
	switch level {
	case cache.L1:
		done = s.cycle + l1lat
	case cache.L2:
		done = s.cycle + int64(s.cfg.L2.LatencyCycles)
	case cache.L3:
		done = s.cycle + int64(s.cfg.L3.LatencyCycles)
	default:
		done = s.dram.Access(s.cycle + int64(s.cfg.L3.LatencyCycles))
		s.dramPending = append(s.dramPending, done)
	}
	e.level = int8(level)
	e.done = done
	s.res.LoadsAtLevel[level]++
	if level != cache.L1 {
		s.mshrReady = append(s.mshrReady, done)
		s.inflight[line] = done
	}
	s.trainPrefetcher(u.PC, u.Addr)
	return true
}

func (s *sim) issueStore(e *robEntry, idx int) {
	u := &s.stream.Uops[idx]
	e.level = -1
	e.done = s.cycle + int64(s.cfg.FU[trace.Store].Latency)
	if s.opt.PerfectDCache {
		return
	}
	level := s.dhier.Access(u.Addr, true)
	if level == cache.Mem {
		// Write-allocate fetch consumes memory bandwidth but does not
		// stall the core (§4.7's store-bandwidth rescaling).
		s.dram.Access(s.cycle + int64(s.cfg.L3.LatencyCycles))
	}
}

func (s *sim) trainPrefetcher(pc, addr uint64) {
	for _, pa := range s.pf.Train(pc, addr) {
		pline := pa >> 6
		if _, busy := s.inflight[pline]; busy {
			continue
		}
		if s.dhier.Levels[0].Probe(pa) {
			continue
		}
		level := s.dhier.Access(pa, false)
		var done int64
		if level == cache.Mem {
			done = s.dram.Access(s.cycle + int64(s.cfg.L3.LatencyCycles))
		} else {
			done = s.cycle + int64(s.dhier.Latency(level, s.memLat.LatencyCycles))
		}
		s.inflight[pline] = done
	}
}

func (s *sim) activeMSHRs() int {
	n := 0
	keep := s.mshrReady[:0]
	for _, t := range s.mshrReady {
		if t > s.cycle {
			keep = append(keep, t)
			n++
		}
	}
	s.mshrReady = keep
	return n
}

func (s *sim) dispatch() int {
	if s.cycle < s.fetchAvail || s.pendingRedir >= 0 {
		return 0
	}
	s.fetchWhy = fetchOK
	dispatched := 0
	n := len(s.stream.Uops)
	for dispatched < s.cfg.DispatchWidth && s.nextUop < n {
		if s.robCount >= len(s.rob) || len(s.iq) >= s.cfg.IQ {
			break
		}
		u := &s.stream.Uops[s.nextUop]
		if u.Class.IsMem() && s.lsqCount >= s.cfg.LSQ {
			break
		}
		// Instruction fetch: a new cache line may miss in the L1I.
		if pcLine := u.PC >> 6; !s.haveFetchPC || pcLine != s.lastFetchPC {
			s.lastFetchPC = pcLine
			s.haveFetchPC = true
			if !s.opt.PerfectICache {
				if hit, _ := s.l1i.Access(u.PC, false); !hit {
					lat := s.ifetchMissLatency(u.PC)
					s.fetchAvail = s.cycle + lat
					s.fetchWhy = fetchICache
					break
				}
			}
		}
		slot := (s.head + s.robCount) % len(s.rob)
		e := &s.rob[slot]
		*e = robEntry{idx: int32(s.nextUop), done: farFuture, cls: u.Class, level: -1}
		if u.Class == trace.Branch {
			s.res.Branches++
			predTaken := s.pred.Lookup(u.PC)
			s.pred.Update(u.PC, u.Taken)
			if !s.opt.PerfectBP && predTaken != u.Taken {
				s.res.BranchMispredicts++
				e.mispred = true
			}
		}
		if u.Class.IsMem() {
			s.lsqCount++
		}
		s.res.Activity.PerClass[u.Class]++
		if u.First {
			s.instrs++
		}
		s.robCount++
		s.iq = append(s.iq, slot)
		s.nextUop++
		dispatched++
		if e.mispred {
			// Subsequent uops are wrong-path until the branch
			// resolves; block dispatch.
			s.pendingRedir = slot
			s.fetchAvail = farFuture
			s.fetchWhy = fetchBranch
			break
		}
	}
	return dispatched
}

// ifetchMissLatency resolves an L1I miss through the shared L2/L3.
func (s *sim) ifetchMissLatency(pc uint64) int64 {
	if hit, _ := s.dhier.Levels[1].Access(pc, false); hit {
		return int64(s.cfg.L2.LatencyCycles)
	}
	if hit, _ := s.dhier.Levels[2].Access(pc, false); hit {
		return int64(s.cfg.L3.LatencyCycles)
	}
	return s.dram.Access(s.cycle+int64(s.cfg.L3.LatencyCycles)) - s.cycle
}

// String summarizes a result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("%s on %s: %d cycles, %d uops (%d instr), CPI %.3f, MLP %.2f",
		r.Workload, r.Config, r.Cycles, r.Uops, r.Instructions, r.CPI(), r.MLP)
}
