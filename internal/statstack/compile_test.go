package statstack

import (
	"reflect"
	"testing"

	"mipp/internal/config"
)

// TestCurveSetPredictGolden pins the compile → evaluate split at the
// StatStack layer: one compiled CurveSet queried for many geometries must
// return exactly what the one-shot Predict returns for each, and repeated
// queries for the same geometry must be identical.
func TestCurveSetPredictGolden(t *testing.T) {
	for _, name := range []string{"gcc", "mcf"} {
		p := profileOf(t, name, 100_000)
		cs := Compile(p)
		geometries := []*config.Config{
			config.Reference(),
			config.LowPower(),
		}
		for _, k := range []int{1, 81, 121} {
			geometries = append(geometries, config.DesignSpace()[k])
		}
		for _, cfg := range geometries {
			oneShot := Predict(p, cfg.CacheLevels(), cfg.L1I)
			compiled := cs.Predict(cfg.CacheLevels(), cfg.L1I)
			again := cs.Predict(cfg.CacheLevels(), cfg.L1I)
			// The Curve pointers differ by construction (Predict compiles
			// its own); every predicted quantity must not.
			oneShot.Curve, compiled.Curve, again.Curve = nil, nil, nil
			if !reflect.DeepEqual(oneShot, compiled) {
				t.Errorf("%s/%s: CurveSet.Predict diverges from Predict:\none-shot %+v\ncompiled %+v",
					name, cfg.Name, oneShot, compiled)
			}
			if !reflect.DeepEqual(compiled, again) {
				t.Errorf("%s/%s: repeated CurveSet.Predict not identical", name, cfg.Name)
			}
		}
	}
}

// TestCurveSetSharesCurve asserts the combined curve is compiled once and
// shared with every prediction (the MLP models key their memo tables on it).
func TestCurveSetSharesCurve(t *testing.T) {
	p := profileOf(t, "libquantum", 60_000)
	cs := Compile(p)
	a := cs.Predict(config.Reference().CacheLevels(), config.Reference().L1I)
	b := cs.Predict(config.LowPower().CacheLevels(), config.LowPower().L1I)
	if a.Curve != cs.Curve || b.Curve != cs.Curve {
		t.Fatal("predictions do not share the compiled curve")
	}
}
