package mipp

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"mipp/api"
	"mipp/arch"
	"mipp/obs"
	"mipp/search"
)

// searchJob is one asynchronous design-space search run by an Engine. The
// goroutine driving search.Run is the only writer of the result fields;
// progress counters are atomics so polling never contends with evaluation.
type searchJob struct {
	id       string
	workload string
	strategy string
	size     int

	// rid is the X-Request-Id of the submitting request: job lifecycle log
	// lines carry it, and it is the trace token of the job's spans, so a
	// slow search decomposes in the logs by the same ID the client holds.
	rid string

	cancel context.CancelFunc
	done   chan struct{}

	evals atomic.Int64
	gens  atomic.Int64

	mu     sync.Mutex
	state  string
	errMsg string
	report *api.SearchReport

	// events is the job's streaming surface: per-generation progress and
	// front events published by the search goroutine, consumed by any
	// number of GET /v1/search/{id}/events subscribers.
	events searchEventLog
}

// publishUpdate turns one runner update into its stream events: a progress
// event per generation, plus a front event whenever the Pareto front
// changed. It runs on the search goroutine between generations; publish
// never blocks, so it cannot stall evaluation.
func (j *searchJob) publishUpdate(u search.Update) {
	ev := api.SearchEvent{
		SchemaVersion: api.SchemaVersion,
		JobID:         j.id,
		Type:          api.SearchEventProgress,
		Generation:    u.Step.Generation,
		Evaluations:   u.Step.Evaluations,
	}
	if u.Best.Index >= 0 {
		best := u.Best
		ev.Best = &best
	}
	j.events.publish(ev)
	if u.Front != nil {
		j.events.publish(api.SearchEvent{
			SchemaVersion: api.SchemaVersion,
			JobID:         j.id,
			Type:          api.SearchEventFront,
			Generation:    u.Step.Generation,
			Evaluations:   u.Step.Evaluations,
			Front:         u.Front,
		})
	}
}

// terminal reports whether the job has finished.
func (j *searchJob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state != api.JobRunning
}

// snapshot renders the job as its wire DTO.
func (j *searchJob) snapshot() api.SearchJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.SearchJob{
		ID:          j.id,
		State:       j.state,
		Workload:    j.workload,
		Strategy:    j.strategy,
		SpaceSize:   j.size,
		Evaluations: int(j.evals.Load()),
		Generations: int(j.gens.Load()),
		Error:       j.errMsg,
		Report:      j.report,
	}
}

// Job-registry bounds: admission refuses work past maxInFlightSearchJobs
// (each job owns a full-throughput worker pool, so stacking more is pure
// contention), and finished jobs are retained — pollable — only until the
// registry exceeds maxRetainedSearchJobs, then evicted oldest-first. Both
// keep a long-lived daemon's memory flat.
const (
	maxInFlightSearchJobs = 32
	maxRetainedSearchJobs = 128
)

// maxSearchEvaluations bounds one job's unique evaluations — the runner
// memoizes every evaluated point (~150 bytes each), so this caps a job at
// tens-to-hundreds of MB and minutes of work. It is the async counterpart
// of api.MaxMaterializedSpace: requests over larger spaces must say how
// much of them to look at.
const maxSearchEvaluations = 1 << 20

// searchJobs is the Engine's job registry.
type searchJobs struct {
	mu   sync.Mutex
	jobs map[string]*searchJob
	// order is submission order, the eviction queue for finished jobs.
	order []*searchJob
	seq   atomic.Uint64

	// inFlight and completed are obs instruments (registered on /metrics by
	// MetricsInto, read back by Stats for /healthz). inFlight doubles as
	// the admission counter: Gauge.Add is a CAS returning the new value, so
	// the claim-then-check pattern stays race-free.
	inFlight  obs.Gauge
	completed obs.Counter

	// token makes job IDs unique per engine instance, so a router fronting
	// N replicas never sees two replicas mint the same ID ("job-1" each).
	tokenOnce sync.Once
	token     string
}

// nextID mints a cluster-unique job ID: a per-engine random token plus the
// engine-local sequence number.
func (s *searchJobs) nextID() string {
	s.tokenOnce.Do(func() {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			s.token = "00000000"
		} else {
			s.token = hex.EncodeToString(b[:])
		}
	})
	return fmt.Sprintf("job-%s-%d", s.token, s.seq.Add(1))
}

func (s *searchJobs) get(id string) (*searchJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// add registers a job and evicts the oldest finished jobs beyond the
// retention bound (running jobs are never evicted).
func (s *searchJobs) add(job *searchJob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jobs == nil {
		s.jobs = make(map[string]*searchJob)
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job)
	if len(s.jobs) <= maxRetainedSearchJobs {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if len(s.jobs) > maxRetainedSearchJobs && j.terminal() {
			delete(s.jobs, j.id)
			continue
		}
		kept = append(kept, j)
	}
	// Release the evicted tail for the garbage collector.
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
}

// StrategyFor lowers a wire StrategySpec to its search.Strategy — the one
// place the strategy vocabulary maps onto constructors, shared by the
// engine's job admission and the CLI.
func StrategyFor(spec api.StrategySpec) (search.Strategy, error) {
	switch spec.Kind {
	case "exhaustive":
		return search.Exhaustive{}, nil
	case "random":
		return search.Random{Samples: spec.Samples}, nil
	case "hill":
		return search.HillClimb{Restarts: spec.Restarts}, nil
	case "genetic":
		return search.Genetic{
			Population:   spec.Population,
			Generations:  spec.Generations,
			MutationRate: spec.MutationRate,
			Elite:        spec.Elite,
		}, nil
	}
	return nil, fmt.Errorf("%w: unknown strategy %q", ErrBadRequest, spec.Kind)
}

// SubmitSearch implements Searcher: validate and admit the job, then run it
// on its own goroutine against the engine's cached predictors. The request
// context only covers admission — the job itself is detached and lives
// until it finishes or is cancelled.
func (e *Engine) SubmitSearch(ctx context.Context, req *api.SearchRequest) (*api.SearchJobResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	space, err := req.Space.Lazy()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	strategy, err := StrategyFor(req.Strategy)
	if err != nil {
		return nil, err
	}
	// Bound per-job work: the runner memoizes every evaluated point, so
	// an uncapped run over a huge space would grow without limit.
	if req.Budget > maxSearchEvaluations {
		return nil, fmt.Errorf("%w: budget %d exceeds the per-job evaluation cap %d",
			ErrBadRequest, req.Budget, maxSearchEvaluations)
	}
	if req.Budget == 0 && space.Size() > maxSearchEvaluations {
		return nil, fmt.Errorf("%w: unbudgeted search over %d points (cap %d); set a budget",
			ErrBadRequest, space.Size(), maxSearchEvaluations)
	}
	if err := e.profileExists(req.Workload); err != nil {
		return nil, err
	}
	// Atomic admission: claim the slot first, release it if that pushed
	// past the cap — concurrent submits cannot overshoot. (Gauge.Add is a
	// CAS returning the new value, so this works exactly like the atomic
	// counter it replaced.)
	if n := e.search.inFlight.Add(1); n > maxInFlightSearchJobs {
		e.search.inFlight.Add(-1)
		return nil, fmt.Errorf("%w: %d search jobs already running (max %d)",
			ErrBusy, int(n)-1, maxInFlightSearchJobs)
	}
	if err := ctx.Err(); err != nil {
		e.search.inFlight.Add(-1)
		return nil, err
	}

	jctx, cancel := context.WithCancel(context.Background())
	job := &searchJob{
		id:       e.search.nextID(),
		workload: req.Workload,
		strategy: strategy.Name(),
		size:     space.Size(),
		rid:      api.RequestIDFromContext(ctx),
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    api.JobRunning,
	}
	// The job's event log feeds the engine-wide stream instruments.
	job.events.subscribers = &e.metrics.streamSubscribers
	job.events.dropped = &e.metrics.streamDropped
	e.search.add(job)

	go e.runSearchJob(jctx, job, req, space, strategy)

	snap := job.snapshot()
	return &api.SearchJobResponse{SchemaVersion: api.SchemaVersion, Job: snap}, nil
}

// runSearchJob drives one job to completion: compile (or fetch) the
// predictor, run the strategy, land the report. It owns the job's terminal
// state transition.
func (e *Engine) runSearchJob(ctx context.Context, job *searchJob, req *api.SearchRequest, space *arch.Space, strategy search.Strategy) {
	// The job's root span: every compile, store-load and generation span
	// below hangs off it, all sharing the submitting request's ID as the
	// trace token. The context also carries the request ID so nested spans
	// resolve the same trace.
	ctx = api.ContextWithRequestID(ctx, job.rid)
	ctx, span := obs.StartSpan(ctx, e.logger, job.rid, "search.job")
	e.logf("search job %s started workload=%s strategy=%s space=%d rid=%s",
		job.id, job.workload, job.strategy, job.size, job.rid)

	// finish is called exactly once, on this goroutine. The registry
	// counters move before the job's state becomes terminal, so a poller
	// that sees "done" can never catch /healthz still counting the job as
	// in flight.
	finished := false
	finish := func(state, errMsg string, rep *api.SearchReport) {
		finished = true
		e.search.inFlight.Add(-1)
		e.search.completed.Inc()
		e.logf("search job %s %s evals=%d gens=%d rid=%s",
			job.id, state, job.evals.Load(), job.gens.Load(), job.rid)
		span.Finish()
		job.mu.Lock()
		job.state = state
		job.errMsg = errMsg
		job.report = rep
		job.mu.Unlock()
		// Terminal event last, then close: a subscriber that read the
		// whole stream has seen the report, and one that polls after the
		// stream closed finds the job already terminal.
		job.events.publish(api.SearchEvent{
			SchemaVersion: api.SchemaVersion,
			JobID:         job.id,
			Type:          state,
			Error:         errMsg,
			Report:        rep,
		})
		job.events.close()
	}
	defer func() {
		// A panic anywhere in the strategy or evaluator fails this job
		// — it must never take down the daemon and every other job.
		if p := recover(); p != nil && !finished {
			finish(api.JobFailed, fmt.Sprintf("search panicked: %v", p), nil)
		}
		job.cancel()
		close(job.done)
	}()

	pd, err := e.predictor(ctx, req.Workload, req.Options)
	if err != nil {
		finish(api.JobFailed, err.Error(), nil)
		return
	}
	opts := search.Options{
		Objective: search.Objective(req.Objective),
		Seed:      req.Strategy.Seed,
		Budget:    req.Budget,
		OnUpdate: func(u search.Update) {
			job.evals.Store(int64(u.Step.Evaluations))
			job.gens.Store(int64(u.Step.Generation))
			if u.Front != nil {
				e.metrics.searchFrontSize.Set(float64(len(u.Front)))
			}
			job.publishUpdate(u)
		},
	}
	if req.CapWatts != nil {
		opts.Constraints.MaxWatts = *req.CapWatts
	}
	if req.MaxArea != nil {
		opts.Constraints.MaxArea = *req.MaxArea
	}
	if e.fid != nil {
		// Fidelity escalation (the thesis's §7.4 workflow): the configs a
		// finished search recommends are exactly the ones worth a
		// reference simulation, so they bypass the sampling predicate.
		opts.EscalateTopK = e.fid.opts.TopK
		opts.OnEscalate = func(evals []search.Eval) {
			for _, ev := range evals {
				e.forceFidelity(req.Workload, req.Options, space.At(ev.Index))
			}
		}
	}

	ev := e.instrumentSearchEvaluator(ctx, job, NewSearchEvaluator(pd, req.Workers))
	rep, err := search.Run(ctx, ev, space, strategy, opts)
	switch {
	case err == nil:
		// Success wins even when a cancel raced the final evaluation:
		// the report is complete, so serve it.
		rep.Workload = req.Workload
		job.evals.Store(int64(rep.Evaluations))
		job.gens.Store(int64(rep.Generations))
		finish(api.JobDone, "", rep)
	case ctx.Err() != nil:
		finish(api.JobCancelled, "", nil)
	default:
		finish(api.JobFailed, err.Error(), nil)
	}
}

// instrumentSearchEvaluator wraps a job's evaluator so every strategy
// generation is timed into the generation histogram, reflected in the
// evals-per-second gauge, and emitted as a "search.generation" span
// parented on the job's root span — the decomposition that lets a slow
// /v1/search be read out of the logs alone.
func (e *Engine) instrumentSearchEvaluator(ctx context.Context, job *searchJob, ev search.Evaluator) search.Evaluator {
	return func(c context.Context, configs []*Config) ([]search.Metrics, error) {
		_, span := obs.StartSpan(ctx, e.logger, job.rid, "search.generation")
		t := obs.StartTimer()
		out, err := ev(c, configs)
		secs := t.ObserveInto(e.metrics.searchGenSeconds)
		span.Finish()
		if secs > 0 {
			e.metrics.searchEvalsPerSec.Set(float64(len(configs)) / secs)
		}
		return out, err
	}
}

// SearchJob implements Searcher: a point-in-time snapshot of the job.
func (e *Engine) SearchJob(ctx context.Context, id string) (*api.SearchJobResponse, error) {
	job, ok := e.search.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &api.SearchJobResponse{SchemaVersion: api.SchemaVersion, Job: job.snapshot()}, nil
}

// CancelSearch implements Searcher: signal the job and wait for its
// goroutine to drain (cancellation is observed between configurations, so
// this is prompt), then return the final snapshot. Cancelling a finished
// job is a no-op returning its terminal state.
func (e *Engine) CancelSearch(ctx context.Context, id string) (*api.SearchJobResponse, error) {
	job, ok := e.search.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	job.cancel()
	select {
	case <-job.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &api.SearchJobResponse{SchemaVersion: api.SchemaVersion, Job: job.snapshot()}, nil
}

// Compile-time check: the in-process engine serves the async search surface
// the remote client mirrors.
var _ Searcher = (*Engine)(nil)
