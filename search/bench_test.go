package search_test

// Search-driver benchmarks: throughput (evals/s) and allocation discipline
// (allocs/eval) of the strategies driving the batched kernel through the
// Runner. CI parses these into BENCH_pr8.json (internal/tools/benchjson)
// and fails if the random-sampling driver's evals/s falls below 1/1.2 of
// the raw evaluator kernel's, or if its allocs/eval exceeds 2× the legacy
// adapter's ~3.1 allocs/config floor (it pays one config materialization
// and one name per lazily-generated point).

import (
	"context"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"testing"

	"mipp"
	"mipp/arch"
	"mipp/search"
)

var benchPredictor = struct {
	sync.Once
	pd  *mipp.Predictor
	err error
}{}

func benchPd(b *testing.B) *mipp.Predictor {
	b.Helper()
	benchPredictor.Do(func() {
		p, err := mipp.NewProfiler().Profile("mcf", 60_000)
		if err != nil {
			benchPredictor.err = err
			return
		}
		benchPredictor.pd, benchPredictor.err = mipp.NewPredictor(p)
	})
	if benchPredictor.err != nil {
		b.Fatal(benchPredictor.err)
	}
	return benchPredictor.pd
}

// benchSpace is a ~61k-point space, large enough that random sampling and
// the genetic strategy behave as they do in production (sparse coverage,
// lazy materialization).
func benchSpace() *arch.Space {
	return &arch.Space{
		Name:   "bench-61k",
		Widths: []int{1, 2, 3, 4, 5, 6},
		ROBs:   []int{32, 48, 64, 96, 128, 160, 192, 256},
		L2Bytes: []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20,
			2 << 20, 4 << 20, 8 << 20, 16 << 20},
		L3Bytes: []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20},
		Clocks: []arch.DVFSPoint{
			{FrequencyGHz: 1.6, VoltageV: 0.95}, {FrequencyGHz: 2.0, VoltageV: 1.0},
			{FrequencyGHz: 2.66, VoltageV: 1.1}, {FrequencyGHz: 3.2, VoltageV: 1.2},
		},
		Prefetcher: []bool{false, true},
	}
}

// benchSearch runs one strategy per iteration and reports per-evaluation
// throughput and allocations (Mallocs across all goroutines, so the worker
// pool's cost is included, not hidden).
func benchSearch(b *testing.B, st search.Strategy, budget int) {
	pd := benchPd(b)
	space := benchSpace()
	ev := mipp.NewSearchEvaluator(pd, 0)
	ctx := context.Background()
	opts := search.Options{Seed: 1, Budget: budget, Objective: search.ObjectiveED2P}

	// Warm the predictor memos so the benchmark measures the driver, not
	// first-touch compilation.
	if _, err := search.Run(ctx, ev, space, search.Random{Samples: 64}, opts); err != nil {
		b.Fatal(err)
	}

	evals := 0
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := search.Run(ctx, ev, space, st, opts)
		if err != nil {
			b.Fatal(err)
		}
		evals += rep.Evaluations
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	if evals == 0 || b.Elapsed() <= 0 {
		return
	}
	b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "evals/s")
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(evals), "allocs/eval")
}

// BenchmarkSearchEvaluatorKernel is the raw kernel baseline for the driver
// benches: the same evaluator the Runner drives, fed one 2048-config
// generation per iteration — materialized from the space each time, since
// any consumer of a lazy space pays that step — with no strategy or Runner
// bookkeeping on top. The generation is a seeded random distinct sample in
// ascending order, the exact workload shape the random driver hands the
// kernel, so the two benches differ only in the search layer itself. CI
// holds BenchmarkSearchRandom's evals/s against this number (target
// within 1.2×; the CI floor carries noise margin — see ci.yml), so that
// layer cannot quietly grow overhead on the hot path.
func BenchmarkSearchEvaluatorKernel(b *testing.B) {
	pd := benchPd(b)
	space := benchSpace()
	ev := mipp.NewSearchEvaluator(pd, 0)
	ctx := context.Background()

	n := space.Size()
	const gen = 2048
	rng := rand.New(rand.NewSource(1))
	drawn := make(map[int]struct{}, gen)
	indices := make([]int, 0, gen)
	for len(indices) < gen {
		i := rng.Intn(n)
		if _, ok := drawn[i]; !ok {
			drawn[i] = struct{}{}
			indices = append(indices, i)
		}
	}
	slices.Sort(indices)
	configs := make([]*arch.Config, gen)
	fill := func() {
		for i, idx := range indices {
			configs[i] = space.At(idx)
		}
	}
	fill()
	if _, err := ev(ctx, configs); err != nil {
		b.Fatal(err)
	}

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		if _, err := ev(ctx, configs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	if b.Elapsed() <= 0 {
		return
	}
	evals := float64(b.N) * gen
	b.ReportMetric(evals/b.Elapsed().Seconds(), "evals/s")
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/evals, "allocs/eval")
}

// BenchmarkSearchRandom is the budgeted driver: pure sampling overhead on
// top of the batched kernel.
func BenchmarkSearchRandom(b *testing.B) {
	benchSearch(b, search.Random{Samples: 2048}, 2048)
}

// BenchmarkSearchGenetic adds the evolutionary bookkeeping (selection,
// crossover, memoized revisits).
func BenchmarkSearchGenetic(b *testing.B) {
	benchSearch(b, search.Genetic{Population: 64, Generations: 24}, 2048)
}

// BenchmarkSearchHill adds the neighborhood walks.
func BenchmarkSearchHill(b *testing.B) {
	benchSearch(b, search.HillClimb{Restarts: 8}, 2048)
}
