package profiler

import (
	"testing"

	"mipp/internal/stats"
	"mipp/internal/trace"
	"mipp/internal/workload"
)

func TestRunBasics(t *testing.T) {
	s := workload.MustGenerate("gcc", 60_000, 0)
	p := Run(s, Options{})
	if p.TotalUops != int64(s.Len()) {
		t.Errorf("TotalUops = %d, want %d", p.TotalUops, s.Len())
	}
	if len(p.Micros) < 3 {
		t.Fatalf("only %d micro-traces", len(p.Micros))
	}
	if p.Entropy <= 0 || p.Entropy >= 1 {
		t.Errorf("entropy %v out of (0,1)", p.Entropy)
	}
	if p.LoadCount == 0 || p.StoreCount == 0 {
		t.Error("no memory accesses profiled")
	}
	// Mix fractions sum to 1.
	sum := 0.0
	for _, f := range p.Mix() {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("mix sums to %v", sum)
	}
	if upi := p.UopsPerInstruction(); upi < 1 || upi > 1.6 {
		t.Errorf("uops/instr %v", upi)
	}
}

func TestChainsOrderingAPLeCP(t *testing.T) {
	for _, name := range []string{"gamess", "mcf", "bwaves"} {
		p := Run(workload.MustGenerate(name, 40_000, 0), Options{})
		for _, rob := range []int{16, 64, 128, 256} {
			ap, _, cp := p.Chains.At(rob)
			if ap > cp+1e-9 {
				t.Errorf("%s ROB %d: AP %.2f > CP %.2f", name, rob, ap, cp)
			}
			if ap < 1 || cp < 1 {
				t.Errorf("%s ROB %d: chains below 1 (ap=%v cp=%v)", name, rob, ap, cp)
			}
		}
		// CP grows with ROB.
		_, _, cpSmall := p.Chains.At(32)
		_, _, cpBig := p.Chains.At(256)
		if cpBig < cpSmall {
			t.Errorf("%s: CP decreased with ROB: %.2f -> %.2f", name, cpSmall, cpBig)
		}
	}
}

func TestChainWorkedExample(t *testing.T) {
	// Figure 3.3's style: a-b-c independent, d<-c, e<-d, f<-c, g<-f.
	uops := []trace.Uop{
		{Class: trace.IntALU, First: true},              // a
		{Class: trace.IntALU, First: true},              // b
		{Class: trace.IntALU, First: true},              // c
		{Class: trace.Load, First: true, SrcDist1: 1},   // d <- c
		{Class: trace.IntALU, First: true, SrcDist1: 1}, // e <- d
		{Class: trace.IntALU, First: true, SrcDist1: 3}, // f <- c
		{Class: trace.Branch, First: true, SrcDist1: 1}, // g <- f
		{Class: trace.IntALU, First: true, SrcDist1: 2}, // h <- f
	}
	cs := chainBuffers(uops, []int{8})
	// Depths: 1,1,1,2,3,2,3,3 -> AP=2, CP=3, ABP=3 (g).
	if cs.AP[0] != 2 {
		t.Errorf("AP = %v, want 2", cs.AP[0])
	}
	if cs.CP[0] != 3 {
		t.Errorf("CP = %v, want 3", cs.CP[0])
	}
	if cs.ABP[0] != 3 {
		t.Errorf("ABP = %v, want 3", cs.ABP[0])
	}
}

func TestLoadDependenceHistogram(t *testing.T) {
	// load1 (l=1); alu <- load1; load2 <- alu (l=2); load3 indep (l=1).
	uops := []trace.Uop{
		{Class: trace.Load, First: true},
		{Class: trace.IntALU, First: true, SrcDist1: 1},
		{Class: trace.Load, First: true, SrcDist1: 1},
		{Class: trace.Load, First: true},
	}
	h := loadDependenceHistogram(uops, 64)
	if h.Count(1) != 2 || h.Count(2) != 1 {
		t.Errorf("f(l): l1=%v l2=%v", h.Count(1), h.Count(2))
	}
}

func TestColdTracking(t *testing.T) {
	s := workload.MustGenerate("libquantum", 40_000, 0)
	p := Run(s, Options{})
	if p.ColdLoads == 0 {
		t.Error("streaming workload must have cold loads")
	}
	if p.ColdMissAvgPerROB(128) <= 0 {
		t.Error("cold-per-ROB average should be positive")
	}
}

func TestStrideClassification(t *testing.T) {
	p := Run(workload.MustGenerate("libquantum", 40_000, 0), Options{})
	r := p.CategoryRatios()
	strided := r[CatStride] + r[CatFilter1] + r[CatFilter2] + r[CatFilter3] + r[CatFilter4]
	if strided < 0.5 {
		t.Errorf("libquantum strided ratio %.2f, want > 0.5", strided)
	}
	pr := Run(workload.MustGenerate("milc", 40_000, 0), Options{})
	rr := pr.CategoryRatios()
	if rr[CatRandom]+rr[CatUnique] < 0.3 {
		t.Errorf("milc random+unique ratio %.2f, want > 0.3", rr[CatRandom]+rr[CatUnique])
	}
}

func TestClassifyCutoffs(t *testing.T) {
	sl := &StaticLoad{Count: 10}
	sl.Strides = histFrom(map[int64]float64{8: 10})
	if c := Classify(sl); c.Category != CatStride {
		t.Errorf("single stride -> %v", c.Category)
	}
	sl.Strides = histFrom(map[int64]float64{8: 5, 16: 5})
	if c := Classify(sl); c.Category != CatFilter2 || len(c.Strides) != 2 {
		t.Errorf("two equal strides -> %v %v", c.Category, c.Strides)
	}
	sl.Strides = histFrom(map[int64]float64{1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1})
	if c := Classify(sl); c.Category != CatRandom {
		t.Errorf("uniform strides -> %v", c.Category)
	}
	unique := &StaticLoad{Count: 1, Strides: histFrom(nil)}
	if c := Classify(unique); c.Category != CatUnique {
		t.Errorf("unique -> %v", c.Category)
	}
}

func histFrom(m map[int64]float64) *stats.Histogram {
	h := stats.NewHistogram()
	for k, v := range m {
		h.AddWeighted(k, v)
	}
	return h
}
