// Command mipplint runs the repository's invariant analyzers — determinism,
// hotpath, lockorder, wraperr, obshygiene — over Go packages.
//
// Two entry points share one analysis core:
//
// Standalone (module-wide sweep, what CI runs):
//
//	go run ./cmd/mipplint ./...
//
// As a vet tool (covers _test.go files too, via the package variants the
// go command assembles):
//
//	go build -o /tmp/mipplint ./cmd/mipplint
//	go vet -vettool=/tmp/mipplint ./...
//
// The vet-tool mode speaks the go command's unitchecker protocol: it
// answers -V=full with a content-hashed version line, -flags with the
// (empty) set of tool flags, and otherwise expects a single *.cfg argument
// describing one package — files, import map, export data — prepared by
// the go command. Diagnostics go to stderr as file:line:col: message and
// any finding exits 2, which go vet reports as failure.
//
// Exit codes, both modes: 0 clean, 1 usage or load failure, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mipp/internal/lint"
)

// analyzers is the full suite, each with its repository-default scope.
var analyzers = []*lint.Analyzer{
	lint.Determinism,
	lint.Hotpath,
	lint.LockOrder,
	lint.Wraperr,
	lint.ObsHygiene,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Unitchecker protocol, probed by the go command before any real work.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0])
		}
	}
	if len(args) > 0 && args[0] == "help" {
		printHelp(args[1:])
		return 0
	}
	return runStandalone(args)
}

// printVersion emits the -V=full line the go command uses to fingerprint
// the tool for vet result caching: name, version, and a hash of the
// executable so a rebuilt mipplint invalidates stale caches.
func printVersion() {
	name := filepath.Base(os.Args[0])
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(self); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
}

func printHelp(args []string) {
	if len(args) == 0 {
		fmt.Println("mipplint enforces mipp's cross-cutting invariants. Analyzers:")
		fmt.Println()
		for _, a := range analyzers {
			fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Println()
		fmt.Println("Suppress a diagnostic on its line (or the line above) with a reasoned")
		fmt.Println("escape hatch: //mipp:allow <analyzer> <why>")
		return
	}
	for _, a := range analyzers {
		if a.Name == args[0] {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
			return
		}
	}
	fmt.Printf("unknown analyzer %q\n", args[0])
}

// runStandalone loads packages through the go command and prints findings.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		// A package that does not type-check cannot be trusted to lint
		// clean; surface the errors instead of a silent pass.
		if len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.Path, e)
			}
			return 1
		}
		findings, err := lint.RunAnalyzers(pkg, analyzers...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, f := range findings {
			fmt.Println(f)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "mipplint: %d finding(s)\n", found)
		return 2
	}
	return 0
}

// unitConfig mirrors the fields of the go command's vet config file
// (x/tools unitchecker.Config) that mipplint consumes.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package described by a vet .cfg file.
func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mipplint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command requires the facts file to exist even though mipplint
	// exports no facts; write it first so every exit path below is valid.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("mipplint: no export data for %q", path)
		}
		return os.Open(file)
	})

	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files}
	var typeErrs []error
	tconf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg.Info = info
	pkg.Types, _ = tconf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range typeErrs {
			fmt.Fprintln(os.Stderr, e)
		}
		return 1
	}

	findings, err := lint.RunAnalyzers(pkg, analyzers...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s/%s)\n", f.Position, f.Message, f.Analyzer, f.Category)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
