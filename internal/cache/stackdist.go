package cache

// StackSim computes exact LRU stack distances (the number of unique cache
// lines touched between two accesses to the same line, Figure 4.1) using the
// classic timestamp + Fenwick-tree algorithm in O(log n) per access.
//
// It provides the ground truth against which the StatStack statistical
// conversion from reuse distances is validated, and directly yields miss
// counts for fully-associative LRU caches of arbitrary size: an access
// misses in a cache of C lines iff its stack distance is >= C (cold accesses
// have an infinite stack distance).
type StackSim struct {
	lastTime map[uint64]int // line -> timestamp of most recent access
	bit      []int          // Fenwick tree over timestamps
	mark     []bool         // mark[t] = access at t is the most recent of its line
	time     int
}

// ColdDistance is the stack distance reported for a first-touch access.
const ColdDistance = int(^uint(0) >> 1) // max int

// NewStackSim returns an empty exact stack-distance simulator.
func NewStackSim() *StackSim {
	return &StackSim{
		lastTime: make(map[uint64]int),
		bit:      make([]int, 16),
		mark:     make([]bool, 16),
	}
}

func (s *StackSim) bitAdd(i, v int) {
	for ; i < len(s.bit); i += i & (-i) {
		s.bit[i] += v
	}
}

func (s *StackSim) bitSum(i int) int {
	sum := 0
	for ; i > 0; i -= i & (-i) {
		sum += s.bit[i]
	}
	return sum
}

// grow doubles the tree and rebuilds it from the mark array. A Fenwick tree
// cannot be grown by zero-extension (new internal nodes cover old ranges),
// so we rebuild; the cost amortizes to O(log n) per access.
func (s *StackSim) grow() {
	newMark := make([]bool, len(s.mark)*2)
	copy(newMark, s.mark)
	s.mark = newMark
	s.bit = make([]int, len(s.mark))
	for t := 1; t < len(s.mark); t++ {
		if s.mark[t] {
			s.bitAdd(t, 1)
		}
	}
}

// Access records a touch of line (a line-granular address) and returns its
// stack distance: the number of distinct other lines accessed since the
// previous touch of line, or ColdDistance for a first touch.
func (s *StackSim) Access(line uint64) int {
	s.time++
	if s.time >= len(s.bit) {
		s.grow()
	}
	dist := ColdDistance
	if prev, ok := s.lastTime[line]; ok {
		// Unique lines touched in (prev, now) = count of "most recent"
		// marks strictly after prev.
		dist = s.bitSum(s.time-1) - s.bitSum(prev)
		s.bitAdd(prev, -1)
		s.mark[prev] = false
	}
	s.lastTime[line] = s.time
	s.bitAdd(s.time, 1)
	s.mark[s.time] = true
	return dist
}

// Unique returns the number of distinct lines seen so far.
func (s *StackSim) Unique() int { return len(s.lastTime) }
