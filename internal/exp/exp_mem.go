package exp

import (
	"fmt"
	"io"

	"mipp/internal/cache"
	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/mlp"
	"mipp/internal/ooo"
	"mipp/internal/perf"
	"mipp/internal/profiler"
	"mipp/internal/stats"
	"mipp/internal/statstack"
	"mipp/internal/trace"
)

func init() {
	register("fig4.2", "StatStack vs simulated MPKI, 3-level hierarchy (Figure 4.2)", fig4x2)
	register("fig4.3", "Execution time with and without MLP modeling (Figure 4.3)", fig4x3)
	register("fig4.4", "Cold vs capacity LLC misses (Figure 4.4)", fig4x4)
	register("fig4.7", "Stride-category ratios (Figure 4.7)", fig4x7)
	register("fig4.9", "gcc CPI over time with/without LLC chaining (Figure 4.9)", fig4x9)
	register("fig6.15", "MLP model error, no prefetching (Figure 6.15)", fig6x15)
	register("fig6.16", "Performance error: stride vs cold-miss MLP (Figure 6.16)", fig6x16)
	register("fig6.17", "Error CDF: stride vs cold-miss MLP (Figure 6.17)", fig6x17)
	register("fig6.18", "MLP model error with stride prefetching (Figure 6.18)", fig6x18)
}

func fig4x2(s *Suite, w io.Writer) {
	header(w, "MPKI: StatStack prediction vs functional LRU simulation")
	cfg := config.Reference()
	for _, name := range s.Workloads {
		st := s.Stream(name, s.N)
		h := cache.NewHierarchy(cfg.L1D, cfg.L2, cfg.L3)
		for i := range st.Uops {
			u := &st.Uops[i]
			if u.Class.IsMem() {
				h.Access(u.Addr, u.Class == trace.Store)
			}
		}
		pred := statstack.Predict(s.Profile(name, s.N), cfg.CacheLevels(), cfg.L1I)
		instr := int64(st.Instructions())
		fmt.Fprintf(w, "%-12s L1 sim=%6.1f pred=%6.1f | L2 sim=%6.1f pred=%6.1f | L3 sim=%6.1f pred=%6.1f\n",
			name,
			h.Levels[0].Stats.MPKI(instr), pred.Levels[0].MPKI,
			h.Levels[1].Stats.MPKI(instr), pred.Levels[1].MPKI,
			h.Levels[2].Stats.MPKI(instr), pred.Levels[2].MPKI)
	}
}

func fig4x3(s *Suite, w io.Writer) {
	header(w, "normalized execution time: simulator / model / model without MLP")
	cfg := config.Reference()
	var noMLPErrs []float64
	for _, name := range s.Workloads {
		sim := s.Sim(name, cfg, s.N)
		m := s.Model(name, s.N)
		with := m.Evaluate(cfg, core.DefaultOptions())
		opts := core.DefaultOptions()
		opts.MLPMode = mlp.None
		without := m.Evaluate(cfg, opts)
		simC := float64(sim.Cycles)
		fmt.Fprintf(w, "%-12s sim=1.000 model=%.3f noMLP=%.3f\n",
			name, with.Cycles/simC, without.Cycles/simC)
		noMLPErrs = append(noMLPErrs, stats.AbsErr(without.Cycles, simC))
	}
	fmt.Fprintf(w, "no-MLP average error %.1f%% (max %.1f%%)\n",
		stats.Mean(noMLPErrs)*100, stats.Max(noMLPErrs)*100)
}

func fig4x4(s *Suite, w io.Writer) {
	header(w, "cold vs capacity/conflict LLC load misses: full trace vs warmed half")
	cfg := config.Reference()
	for _, name := range s.Workloads {
		st := s.Stream(name, s.N)
		full := missBreakdown(st, cfg, 0)
		warm := missBreakdown(st, cfg, st.Len()/2)
		fmt.Fprintf(w, "%-12s full: cold=%6d cap=%6d | warmed: cold=%6d cap=%6d\n",
			name, full[0], full[1], warm[0], warm[1])
	}
}

// missBreakdown replays the memory stream, counting (cold, capacity) LLC
// load misses after skipping `warm` uops of cache warm-up.
func missBreakdown(st *trace.Stream, cfg *config.Config, warm int) [2]int64 {
	h := cache.NewHierarchy(cfg.L1D, cfg.L2, cfg.L3)
	seen := make(map[uint64]struct{})
	var out [2]int64
	for i := range st.Uops {
		u := &st.Uops[i]
		if !u.Class.IsMem() {
			continue
		}
		line := u.Addr >> 6
		level := h.Access(u.Addr, u.Class == trace.Store)
		_, touched := seen[line]
		seen[line] = struct{}{}
		if i < warm || u.Class != trace.Load {
			continue
		}
		if level == cache.Mem {
			if touched {
				out[1]++
			} else {
				out[0]++
			}
		}
	}
	return out
}

func fig4x7(s *Suite, w io.Writer) {
	header(w, "stride category ratios per benchmark")
	for _, name := range s.Workloads {
		r := s.Profile(name, s.N).CategoryRatios()
		fmt.Fprintf(w, "%-12s", name)
		for c := profiler.StrideCategory(0); c < profiler.NumCategories; c++ {
			fmt.Fprintf(w, " %s=%.2f", c, r[c])
		}
		fmt.Fprintln(w)
	}
}

func fig4x9(s *Suite, w io.Writer) {
	header(w, "gcc CPI over time: simulator vs model vs model without LLC chaining")
	cfg := config.Reference()
	st := s.Stream("gcc", s.N)
	win := s.N / 30
	sim, err := simWithWindows(cfg, st, win)
	if err != nil {
		panic(err)
	}
	m := s.Model("gcc", s.N)
	with := m.Evaluate(cfg, core.DefaultOptions())
	opts := core.DefaultOptions()
	opts.NoLLCChain = true
	without := m.Evaluate(cfg, opts)
	simCPI := sim.WindowCPI(win)
	for i := range simCPI {
		mw, mo := "-", "-"
		// Micro-traces map onto windows proportionally.
		if k := i * len(with.MicroCPI) / len(simCPI); k < len(with.MicroCPI) {
			upi := with.Uops / with.Instructions
			mw = fmt.Sprintf("%.3f", with.MicroCPI[k]*upi)
			mo = fmt.Sprintf("%.3f", without.MicroCPI[k]*upi)
		}
		fmt.Fprintf(w, "window %2d sim=%.3f model=%s model-noLLCchain=%s\n", i, simCPI[i], mw, mo)
	}
	fmt.Fprintf(w, "totals: sim=%.3f model=%.3f noChain=%.3f CPI\n", sim.CPI(), with.CPI(), without.CPI())
}

func simWithWindows(cfg *config.Config, st *trace.Stream, win int) (*ooo.Result, error) {
	return ooo.Simulate(cfg, st, ooo.Options{WindowUops: win})
}

// mlpModelError reports the per-benchmark DRAM-wait error of an MLP model
// against the simulator (Figures 6.15-6.18 use the "time waiting on DRAM"
// view; we compare the DRAM stall per miss).
func mlpModelError(s *Suite, w io.Writer, mode mlp.Mode, withPrefetch bool) []float64 {
	cfg := config.Reference()
	if withPrefetch {
		cfg = config.ReferenceWithPrefetcher()
	}
	var errs []float64
	for _, name := range s.Workloads {
		sim := s.Sim(name, cfg, s.N)
		opts := core.DefaultOptions()
		opts.MLPMode = mode
		res := s.Model(name, s.N).Evaluate(cfg, opts)
		simDram := sim.Stack.Cycles[perf.DRAM]
		modDram := res.Stack.Cycles[perf.DRAM]
		e := 0.0
		if simDram > float64(sim.Cycles)*0.01 {
			e = stats.AbsErr(modDram, simDram)
		} else {
			// Negligible DRAM time: compare against total cycles to
			// avoid dividing by ~0.
			e = (modDram - simDram) / float64(sim.Cycles)
			if e < 0 {
				e = -e
			}
		}
		errs = append(errs, e)
		fmt.Fprintf(w, "%-12s sim-dram=%10.0f model-dram=%10.0f err=%5.1f%%\n", name, simDram, modDram, e*100)
	}
	fmt.Fprintf(w, "average %.1f%%\n", stats.Mean(errs)*100)
	return errs
}

func fig6x15(s *Suite, w io.Writer) {
	header(w, "DRAM-wait error, cold-miss MLP model (no prefetch)")
	mlpModelError(s, w, mlp.ColdMiss, false)
	header(w, "DRAM-wait error, stride MLP model (no prefetch)")
	mlpModelError(s, w, mlp.StrideMLP, false)
}

func fig6x16(s *Suite, w io.Writer) {
	header(w, "total performance error: stride vs cold-miss MLP")
	cfg := config.Reference()
	var coldErrs, strideErrs []float64
	for _, name := range s.Workloads {
		sim := s.Sim(name, cfg, s.N)
		m := s.Model(name, s.N)
		oc := core.DefaultOptions()
		oc.MLPMode = mlp.ColdMiss
		os := core.DefaultOptions()
		cold := m.Evaluate(cfg, oc)
		stride := m.Evaluate(cfg, os)
		ce := stats.AbsErr(cold.Cycles, float64(sim.Cycles))
		se := stats.AbsErr(stride.Cycles, float64(sim.Cycles))
		coldErrs = append(coldErrs, ce)
		strideErrs = append(strideErrs, se)
		fmt.Fprintf(w, "%-12s cold=%5.1f%% stride=%5.1f%%\n", name, ce*100, se*100)
	}
	fmt.Fprintf(w, "averages: cold=%.1f%% stride=%.1f%%\n", stats.Mean(coldErrs)*100, stats.Mean(strideErrs)*100)
}

func fig6x17(s *Suite, w io.Writer) {
	header(w, "cumulative error distribution: stride vs cold-miss MLP")
	cfg := config.Reference()
	var coldErrs, strideErrs []float64
	for _, name := range s.Workloads {
		sim := s.Sim(name, cfg, s.N)
		m := s.Model(name, s.N)
		oc := core.DefaultOptions()
		oc.MLPMode = mlp.ColdMiss
		coldErrs = append(coldErrs, stats.AbsErr(m.Evaluate(cfg, oc).Cycles, float64(sim.Cycles)))
		strideErrs = append(strideErrs, stats.AbsErr(m.Evaluate(cfg, core.DefaultOptions()).Cycles, float64(sim.Cycles)))
	}
	for _, lim := range []float64{0.05, 0.10, 0.20, 0.30, 0.50} {
		fmt.Fprintf(w, "<=%3.0f%%: cold %.0f%%  stride %.0f%% of benchmarks\n",
			lim*100, stats.FractionBelow(coldErrs, lim)*100, stats.FractionBelow(strideErrs, lim)*100)
	}
}

func fig6x18(s *Suite, w io.Writer) {
	header(w, "DRAM-wait error with stride prefetching enabled")
	header(w, "cold-miss MLP model")
	mlpModelError(s, w, mlp.ColdMiss, true)
	header(w, "stride MLP model (models the prefetcher)")
	mlpModelError(s, w, mlp.StrideMLP, true)
}
