package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 40 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	// Every id resolvable; titles non-empty.
	for _, e := range all {
		if e.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("%s not resolvable", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestSpaceSampleCoversParameters(t *testing.T) {
	sample := SpaceSample(13)
	if len(sample) < 15 {
		t.Fatalf("sample too small: %d", len(sample))
	}
	widths := map[int]bool{}
	for _, c := range sample {
		widths[c.DispatchWidth] = true
	}
	if len(widths) < 3 {
		t.Errorf("sample misses widths: %v", widths)
	}
}

func TestQuickExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments")
	}
	s := NewSuite(20_000)
	s.Workloads = []string{"gamess", "mcf"}
	for _, id := range []string{"fig3.1", "fig3.4", "fig4.7", "tab6.1", "tab6.3", "tab7.2"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		e.Run(s, &buf)
		if !strings.Contains(buf.String(), "==") {
			t.Errorf("%s produced no output", id)
		}
	}
}
