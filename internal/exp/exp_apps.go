package exp

import (
	"fmt"
	"io"

	"mipp"
	"mipp/internal/config"
	"mipp/internal/dse"
	"mipp/internal/empirical"
	"mipp/internal/power"
	"mipp/internal/stats"
)

func init() {
	register("fig7.1", "Improving libquantum performance (Figure 7.1)", fig7x1)
	register("fig7.2", "General-purpose vs application-specific core (Figure 7.2)", fig7x2)
	register("tab7.1", "Optimal configs under power constraints (Table 7.1)", tab7x1)
	register("tab7.2", "DVFS settings (Table 7.2)", tab7x2)
	register("fig7.3", "ED2P vs frequency: model vs simulator (Figure 7.3)", fig7x3)
	register("fig7.4", "Pareto frontiers: bzip2, calculix, gromacs, xalancbmk (Figures 7.4-7.5)", fig7x4)
	register("fig7.6", "Design-space perf/power error (Figure 7.6)", fig7x6)
	register("fig7.7", "Pareto filter: sensitivity/specificity/accuracy (Figure 7.7)", fig7x7)
	register("fig7.9", "Pareto filter: hypervolume ratio (Figure 7.9)", fig7x9)
	register("fig7.10", "Pareto fronts: mechanistic vs empirical model (Figure 7.10)", fig7x10)
	register("fig7.11", "Pruning metrics: mechanistic vs empirical (Figures 7.11-7.13)", fig7x11)
}

// fig7x1 plays the §7.1 what-if game on libquantum: widen the structures
// that the CPI stack says matter.
func fig7x1(s *Suite, w io.Writer) {
	header(w, "libquantum what-if: model-predicted CPI per modification")
	base := config.Reference()
	steps := []struct {
		name string
		mod  func(*config.Config)
	}{
		{"reference", func(*config.Config) {}},
		{"2x ROB (256)", func(c *config.Config) { c.ROB = 256; c.IQ = 72; c.LSQ = 128 }},
		{"+ 2x MSHRs (20)", func(c *config.Config) { c.ROB = 256; c.IQ = 72; c.LSQ = 128; c.MSHRs = 20 }},
		{"+ 2x memory bus", func(c *config.Config) {
			c.ROB = 256
			c.IQ = 72
			c.LSQ = 128
			c.MSHRs = 20
			c.BusNSPerLine /= 2
		}},
		{"+ stride prefetcher", func(c *config.Config) {
			c.ROB = 256
			c.IQ = 72
			c.LSQ = 128
			c.MSHRs = 20
			c.BusNSPerLine /= 2
			c.Prefetcher.Enabled = true
		}},
	}
	for _, step := range steps {
		cfg := *base
		step.mod(&cfg)
		cfg.Name = step.name
		res := s.Predict("libquantum", &cfg, s.N)
		fmt.Fprintf(w, "%-22s CPI=%.3f (MLP=%.2f)\n", step.name, res.CPI(), res.MLP)
	}
}

func fig7x2(s *Suite, w io.Writer) {
	header(w, "general-purpose core vs per-application core (model-selected)")
	configs := SpaceSample(spaceStride)
	n := s.N / 3
	// Model-predicted CPI for every (workload, config), via the public
	// concurrent sweep.
	cpi := make(map[string][]float64)
	for _, name := range s.Workloads {
		for _, res := range s.Sweep(name, configs, n) {
			cpi[name] = append(cpi[name], res.CPI())
		}
	}
	// General-purpose pick: best average CPI across workloads.
	bestAvg, bestIdx := 1e18, 0
	for i := range configs {
		sum := 0.0
		for _, name := range s.Workloads {
			sum += cpi[name][i]
		}
		if sum < bestAvg {
			bestAvg, bestIdx = sum, i
		}
	}
	var genSum, appSum float64
	for _, name := range s.Workloads {
		app := stats.Min(cpi[name])
		gen := cpi[name][bestIdx]
		genSum += gen
		appSum += app
		fmt.Fprintf(w, "%-12s general=%.3f app-specific=%.3f (gain %.0f%%)\n",
			name, gen, app, (1-app/gen)*100)
	}
	k := float64(len(s.Workloads))
	fmt.Fprintf(w, "general-purpose pick: %s, avg CPI %.3f vs app-specific %.3f\n",
		configs[bestIdx].Name, genSum/k, appSum/k)
}

func tab7x1(s *Suite, w io.Writer) {
	header(w, "fastest configuration under a power cap (model-predicted)")
	configs := SpaceSample(spaceStride)
	n := s.N / 3
	names := s.Workloads[:6]
	points := make(map[string][]mipp.Point, len(names))
	for _, name := range names {
		points[name] = mipp.Points(s.Sweep(name, configs, n))
	}
	for _, capW := range []float64{12, 18, 25} {
		fmt.Fprintf(w, "power cap %.0f W:\n", capW)
		for _, name := range names {
			if best, ok := mipp.BestUnderPowerCap(points[name], capW); ok {
				fmt.Fprintf(w, "  %-12s %-32s time=%.4fs power=%.1fW\n", name, best.Config, best.Time, best.Power)
			} else {
				fmt.Fprintf(w, "  %-12s no configuration fits\n", name)
			}
		}
	}
}

func tab7x2(s *Suite, w io.Writer) {
	header(w, "Nehalem-based DVFS settings")
	for _, p := range config.DVFSPoints() {
		fmt.Fprintf(w, "%.2f GHz @ %.2f V\n", p.FrequencyGHz, p.VoltageV)
	}
}

func fig7x3(s *Suite, w io.Writer) {
	header(w, "ED2P vs DVFS point: simulator vs model (subset of workloads)")
	base := config.Reference()
	for _, name := range []string{"gamess", "mcf", "libquantum", "gcc"} {
		fmt.Fprintf(w, "%s:\n", name)
		var bestSim, bestMod float64
		var bestSimF, bestModF float64
		bestSim, bestMod = 1e18, 1e18
		for _, pt := range config.DVFSPoints() {
			cfg := config.WithDVFS(base, pt)
			sim := s.Sim(name, cfg, s.N)
			res := s.Predict(name, cfg, s.N)
			simT := sim.TimeSeconds(cfg.FrequencyGHz)
			simE := power.ED2P(power.Estimate(cfg, &sim.Activity), simT)
			modE := res.ED2P()
			fmt.Fprintf(w, "  %.2f GHz: sim ED2P=%.3e, model ED2P=%.3e\n", pt.FrequencyGHz, simE, modE)
			if simE < bestSim {
				bestSim, bestSimF = simE, pt.FrequencyGHz
			}
			if modE < bestMod {
				bestMod, bestModF = modE, pt.FrequencyGHz
			}
		}
		fmt.Fprintf(w, "  optimum: sim %.2f GHz, model %.2f GHz\n", bestSimF, bestModF)
	}
}

// spacePoints evaluates (time, power) for the design-space sample with the
// simulator (actual) and the analytical model (predicted, via the public
// concurrent Sweep).
func (s *Suite) spacePoints(name string, configs []*config.Config, n int) (pred, act []dse.Point) {
	pred = mipp.Points(s.Sweep(name, configs, n))
	for _, cfg := range configs {
		sim := s.Sim(name, cfg, n)
		act = append(act, dse.Point{
			Config: cfg.Name,
			Time:   sim.TimeSeconds(cfg.FrequencyGHz),
			Power:  power.Estimate(cfg, &sim.Activity).Total(),
		})
	}
	return pred, act
}

func fig7x4(s *Suite, w io.Writer) {
	header(w, "Pareto frontiers: predicted picks vs actual front")
	configs := SpaceSample(spaceStride)
	n := s.N / 3
	for _, name := range []string{"bzip2", "calculix", "gromacs", "xalancbmk"} {
		pred, act := s.spacePoints(name, configs, n)
		fmt.Fprintf(w, "%s actual front:\n", name)
		for _, p := range dse.ParetoFront(act) {
			fmt.Fprintf(w, "  %-34s time=%.5fs power=%.1fW\n", p.Config, p.Time, p.Power)
		}
		fmt.Fprintf(w, "%s predicted front:\n", name)
		for _, p := range dse.ParetoFront(pred) {
			fmt.Fprintf(w, "  %-34s time=%.5fs power=%.1fW\n", p.Config, p.Time, p.Power)
		}
	}
}

func fig7x6(s *Suite, w io.Writer) {
	header(w, "design-space average errors per benchmark (perf / power)")
	configs := SpaceSample(spaceStride)
	n := s.N / 3
	var allP, allW []float64
	for _, name := range s.Workloads {
		pred, act := s.spacePoints(name, configs, n)
		var pe, we []float64
		for i := range pred {
			pe = append(pe, stats.AbsErr(pred[i].Time, act[i].Time))
			we = append(we, stats.AbsErr(pred[i].Power, act[i].Power))
		}
		allP = append(allP, pe...)
		allW = append(allW, we...)
		fmt.Fprintf(w, "%-12s perf=%5.1f%% power=%5.1f%%\n", name, stats.Mean(pe)*100, stats.Mean(we)*100)
	}
	fmt.Fprintf(w, "overall: perf=%.1f%% power=%.1f%%\n", stats.Mean(allP)*100, stats.Mean(allW)*100)
}

func paretoMetrics(s *Suite, w io.Writer, emitHVROnly bool) {
	configs := SpaceSample(spaceStride)
	n := s.N / 3
	var sens, spec, acc, hvr []float64
	for _, name := range s.Workloads {
		pred, act := s.spacePoints(name, configs, n)
		m := dse.Evaluate(pred, act)
		sens = append(sens, m.Sensitivity)
		spec = append(spec, m.Specificity)
		acc = append(acc, m.Accuracy)
		hvr = append(hvr, m.HVR)
		if emitHVROnly {
			fmt.Fprintf(w, "%-12s HVR=%.3f\n", name, m.HVR)
		} else {
			fmt.Fprintf(w, "%-12s sens=%.2f spec=%.2f acc=%.2f\n", name, m.Sensitivity, m.Specificity, m.Accuracy)
		}
	}
	if emitHVROnly {
		fmt.Fprintf(w, "average HVR %.3f\n", stats.Mean(hvr))
	} else {
		fmt.Fprintf(w, "averages: sensitivity=%.3f specificity=%.3f accuracy=%.3f\n",
			stats.Mean(sens), stats.Mean(spec), stats.Mean(acc))
	}
}

func fig7x7(s *Suite, w io.Writer) {
	header(w, "Pareto filter quality")
	paretoMetrics(s, w, false)
}

func fig7x9(s *Suite, w io.Writer) {
	header(w, "Pareto filter hypervolume ratio")
	paretoMetrics(s, w, true)
}

// empiricalPoints trains the §7.5 regression on a subset of simulated
// configurations and predicts the rest.
func (s *Suite) empiricalPoints(name string, configs []*config.Config, n int, act []dse.Point) ([]dse.Point, error) {
	var xs [][]float64
	var yt, yp []float64
	// Train on every second configuration (the paper trains on a sampled
	// subset of simulation results).
	for i := 0; i < len(configs); i += 2 {
		xs = append(xs, empirical.Features(configs[i]))
		yt = append(yt, act[i].Time)
		yp = append(yp, act[i].Power)
	}
	mt, err := empirical.Train(xs, yt, 1e-3)
	if err != nil {
		return nil, err
	}
	mp, err := empirical.Train(xs, yp, 1e-3)
	if err != nil {
		return nil, err
	}
	var out []dse.Point
	for i, cfg := range configs {
		t := mt.Predict(empirical.Features(cfg))
		p := mp.Predict(empirical.Features(cfg))
		if i%2 == 0 {
			// Training points are known exactly.
			t, p = act[i].Time, act[i].Power
		}
		out = append(out, dse.Point{Config: cfg.Name, Time: t, Power: p})
	}
	return out, nil
}

func fig7x10(s *Suite, w io.Writer) {
	header(w, "Pareto fronts: mechanistic vs empirical model")
	configs := SpaceSample(spaceStride)
	n := s.N / 3
	for _, name := range []string{"bzip2", "gromacs", "mcf", "libquantum"} {
		pred, act := s.spacePoints(name, configs, n)
		emp, err := s.empiricalPoints(name, configs, n, act)
		if err != nil {
			fmt.Fprintf(w, "%s: empirical model failed: %v\n", name, err)
			continue
		}
		mm := dse.Evaluate(pred, act)
		me := dse.Evaluate(emp, act)
		fmt.Fprintf(w, "%-12s mechanistic: sens=%.2f spec=%.2f hvr=%.3f | empirical: sens=%.2f spec=%.2f hvr=%.3f\n",
			name, mm.Sensitivity, mm.Specificity, mm.HVR, me.Sensitivity, me.Specificity, me.HVR)
	}
}

func fig7x11(s *Suite, w io.Writer) {
	header(w, "pruning metrics, all benchmarks: mechanistic vs empirical")
	configs := SpaceSample(spaceStride)
	n := s.N / 3
	var ms, es, mh, eh, msp, esp []float64
	for _, name := range s.Workloads {
		pred, act := s.spacePoints(name, configs, n)
		emp, err := s.empiricalPoints(name, configs, n, act)
		if err != nil {
			continue
		}
		mm := dse.Evaluate(pred, act)
		me := dse.Evaluate(emp, act)
		ms = append(ms, mm.Sensitivity)
		es = append(es, me.Sensitivity)
		msp = append(msp, mm.Specificity)
		esp = append(esp, me.Specificity)
		mh = append(mh, mm.HVR)
		eh = append(eh, me.HVR)
	}
	fmt.Fprintf(w, "sensitivity: mechanistic=%.3f empirical=%.3f\n", stats.Mean(ms), stats.Mean(es))
	fmt.Fprintf(w, "specificity: mechanistic=%.3f empirical=%.3f\n", stats.Mean(msp), stats.Mean(esp))
	fmt.Fprintf(w, "HVR:         mechanistic=%.3f empirical=%.3f\n", stats.Mean(mh), stats.Mean(eh))
}
