package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mipp/internal/config"
	"mipp/internal/mlp"
)

// TestGeometryMemoOnePredictPerGeometry pins the miss-ratio memo table:
// evaluating two configurations with the same cache geometry must run
// StatStack once, and the second evaluation must return ratios identical to
// the first (a memo hit returns exactly what a fresh prediction would).
func TestGeometryMemoOnePredictPerGeometry(t *testing.T) {
	m := modelFor(t, "mcf", 60_000)
	c := m.Compile(DefaultOptions())

	// Same geometry, different frequency and ROB — a DVFS/window sweep.
	a := config.Reference()
	b := config.Reference()
	b.Name = "ref-dvfs"
	b.FrequencyGHz = 1.6
	b.VoltageV = 0.95
	b.ROB = 256
	ra := c.Evaluate(a)
	rb := c.Evaluate(b)

	st := c.Stats()
	if st.StatStackPredicts != 1 {
		t.Errorf("two same-geometry configs ran StatStack %d times, want 1", st.StatStackPredicts)
	}
	if st.GeometryLookups != 2 {
		t.Errorf("geometry lookups = %d, want 2", st.GeometryLookups)
	}
	// The activity factors are pure cache-geometry quantities; the memoized
	// prediction must reproduce them exactly.
	if ra.Activity.L3Misses != rb.Activity.L3Misses || ra.Activity.L1DMisses != rb.Activity.L1DMisses {
		t.Errorf("same geometry, different miss counts: %+v vs %+v", ra.Activity, rb.Activity)
	}

	// A different LLC size is a new geometry.
	d := config.Reference()
	d.Name = "llc2m"
	d.L3.SizeBytes = 2 << 20
	c.Evaluate(d)
	if st := c.Stats(); st.StatStackPredicts != 2 {
		t.Errorf("new geometry ran StatStack %d times total, want 2", st.StatStackPredicts)
	}
}

// TestMissRatioMemoIdentical asserts the per-micro miss-ratio memo returns
// identical values on hit and that lookups collapse across a same-geometry
// re-evaluation.
func TestMissRatioMemoIdentical(t *testing.T) {
	m := modelFor(t, "soplex", 60_000)
	c := m.Compile(DefaultOptions())
	cfg := config.Reference()

	first := c.Evaluate(cfg)
	afterFirst := c.Stats()
	second := c.Evaluate(cfg)
	afterSecond := c.Stats()

	if afterSecond.MissRatioComputes != afterFirst.MissRatioComputes {
		t.Errorf("re-evaluating the same config recomputed miss ratios: %d -> %d",
			afterFirst.MissRatioComputes, afterSecond.MissRatioComputes)
	}
	if afterSecond.MissRatioLookups <= afterFirst.MissRatioLookups {
		t.Errorf("second evaluation did no miss-ratio lookups")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("memo-hit evaluation differs from the evaluation that filled the memo")
	}
}

// TestEvaluateBatchMatchesSequential is the kernel-level equivalence
// guarantee: a batched evaluation with reused scratch buffers must produce
// results deeply equal to one-at-a-time Evaluate calls, in input order.
func TestEvaluateBatchMatchesSequential(t *testing.T) {
	m := modelFor(t, "gcc", 60_000)
	for _, opts := range []Options{
		DefaultOptions(),
		{MLPMode: mlp.ColdMiss, BranchMissRate: -1},
		{MLPMode: mlp.StrideMLP, Combined: true, BranchMissRate: -1},
	} {
		c := m.Compile(opts)
		configs := config.DesignSpace()[:30]
		batch, err := c.EvaluateBatch(context.Background(), configs)
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range configs {
			single := c.Evaluate(cfg)
			if !reflect.DeepEqual(single, batch[i]) {
				t.Fatalf("opts %+v: batch[%d] (%s) differs from single evaluation", opts, i, cfg.Name)
			}
		}
	}
}

// TestEvaluateBatchCancellation asserts the kernel checks the context
// between configurations, not only at batch boundaries.
func TestEvaluateBatchCancellation(t *testing.T) {
	m := modelFor(t, "gamess", 60_000)
	c := m.Compile(DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := c.EvaluateBatch(ctx, config.DesignSpace()[:10])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range out {
		if r != nil {
			t.Fatalf("out[%d] evaluated despite pre-cancelled context", i)
		}
	}
}

// TestMemoOverflowIdentical floods the mlp stream cache past its bound
// (maxStreamEntries distinct LLC geometries) and asserts overflow changes
// nothing but speed: an evaluation whose memo entry was never stored still
// returns exactly what the cached evaluation returned.
func TestMemoOverflowIdentical(t *testing.T) {
	m := modelFor(t, "mcf", 60_000)
	c := m.Compile(DefaultOptions())
	base := config.Reference()
	first := c.Evaluate(base)
	// 70 distinct L3 line counts (> maxStreamEntries = 64); line-multiple
	// sizes keep the geometry meaningful without needing Validate.
	for i := 0; i < 70; i++ {
		cfg := config.Reference()
		cfg.Name = "flood"
		cfg.L3.SizeBytes = int64(1<<20 + (i+1)*64*1024)
		c.Evaluate(cfg)
	}
	again := c.Evaluate(base)
	if !reflect.DeepEqual(first, again) {
		t.Fatal("evaluation after memo overflow differs from the original")
	}
}

// TestModelEvaluateSharesCompiledKernel asserts the legacy single-config
// path reuses the compiled kernel — the hoisted config-invariant state —
// rather than recompiling per call.
func TestModelEvaluateSharesCompiledKernel(t *testing.T) {
	m := modelFor(t, "gobmk", 60_000)
	if m.Compile(DefaultOptions()) != m.Compile(DefaultOptions()) {
		t.Fatal("Compile(opts) not cached per option set")
	}
	cfg := config.Reference()
	m.Evaluate(cfg, DefaultOptions())
	m.Evaluate(cfg, DefaultOptions())
	st := m.Compile(DefaultOptions()).Stats()
	if st.StatStackPredicts != 1 {
		t.Errorf("legacy Evaluate ran StatStack %d times for one geometry, want 1", st.StatStackPredicts)
	}
	// A different option set compiles its own kernel.
	other := DefaultOptions()
	other.NoLLCChain = true
	if m.Compile(other) == m.Compile(DefaultOptions()) {
		t.Fatal("distinct option sets share a kernel")
	}
}
