// Fixture for the lockorder analyzer: store access and blocking I/O must
// not happen while a mutex is held. Imports the real mipp/store so the
// store-under-lock kind is exercised against the actual API.
package fixture

import (
	"os"
	"sync"

	"mipp/store"
)

type cache struct {
	mu sync.RWMutex
	st *store.Store
	m  map[string][]byte
}

// badStore resolves a profile while holding the lock.
func (c *cache) badStore(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok, _ := c.st.Get(name) // want `\[lockorder/store-under-lock\]`
	return ok
}

// badIO reads a file between Lock and Unlock.
func (c *cache) badIO(path string) ([]byte, error) {
	c.mu.Lock()
	b, err := os.ReadFile(path) // want `\[lockorder/io-under-lock\] os call`
	c.mu.Unlock()
	return b, err
}

// goodReleaseFirst is the blessed shape: check the map under RLock,
// release, then hit the store.
func (c *cache) goodReleaseFirst(name string) ([]byte, error) {
	c.mu.RLock()
	b, ok := c.m[name]
	c.mu.RUnlock()
	if ok {
		return b, nil
	}
	if _, ok, err := c.st.Get(name); err == nil && ok {
		return nil, nil
	}
	return os.ReadFile(name)
}

// goodLazy builds a closure under the lock but the body runs later, under
// whatever locks the eventual caller holds — the Engine.Predictor
// lazy-compile pattern. Silent by design.
func (c *cache) goodLazy(name string) func() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn := func() ([]byte, error) { return os.ReadFile(name) }
	return fn
}

// allowedIO demonstrates the escape hatch.
func (c *cache) allowedIO(path string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//mipp:allow lockorder fixture demonstrates the escape hatch
	return os.ReadFile(path)
}
