package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"time"
)

// Log-based trace spans. A span is one timed stage of a request — the HTTP
// middleware opens a root span per request, and the engine opens child
// spans around store loads, predictor compiles, and search generations.
// Finish emits one greppable log line:
//
//	span <id> parent=<id|-> trace=<rid> name=<stage> dur=<duration>
//
// The trace ID is the existing X-Request-Id, so `grep trace=<rid>` over the
// client, router, and replica logs reconstructs the whole request tree —
// across processes, because the span ID travels on the X-Span-Id header
// (api.SpanIDHeader): the client stamps its current span, the router's
// middleware adopts it as the remote parent, and the replica's spans hang
// off the router's in turn.
//
// Tracing is logger-gated: with a nil logger StartSpan returns a nil span
// (every method of which is a no-op) and an unchanged context, so untraced
// paths cost two nil checks and zero allocations.

// Span is one in-flight stage. Fields are fixed at StartSpan; Finish emits
// the log line.
type Span struct {
	// Trace is the correlation token shared by every span of one request —
	// the X-Request-Id.
	Trace string
	// ID identifies this span; children reference it as parent=.
	ID string
	// Parent is the enclosing span's ID ("" for a root span), possibly
	// adopted from the X-Span-Id header of the incoming hop.
	Parent string
	// Name is the stage ("http GET /v1/search", "engine.compile", ...).
	Name string

	t0     time.Time
	logger *log.Logger
}

// NewSpanID returns a fresh 16-hex-character span ID (same shape as a
// request ID; degrades to a fixed ID if the entropy source fails).
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

type spanKey struct{}

type remoteParentKey struct{}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span (nil if none). Clients use it to
// stamp the X-Span-Id header on outgoing hops.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithRemoteParent records the span ID an incoming request carried
// on its X-Span-Id header; the next StartSpan without a local parent adopts
// it, linking this process's spans under the caller's.
func ContextWithRemoteParent(ctx context.Context, spanID string) context.Context {
	if spanID == "" {
		return ctx
	}
	return context.WithValue(ctx, remoteParentKey{}, spanID)
}

// RemoteParentFromContext returns the adopted remote parent span ID ("" if
// none).
func RemoteParentFromContext(ctx context.Context) string {
	id, _ := ctx.Value(remoteParentKey{}).(string)
	return id
}

// StartSpan opens a span named name under the current span in ctx (or the
// remote parent adopted from the incoming header, for root spans). The
// trace token is usually the request ID; when empty it is inherited from
// the parent span. A nil logger disables tracing: the returned span is nil
// (Finish on it is a no-op) and ctx is returned unchanged.
func StartSpan(ctx context.Context, logger *log.Logger, trace, name string) (context.Context, *Span) {
	if logger == nil {
		return ctx, nil
	}
	parent := ""
	if p := SpanFromContext(ctx); p != nil {
		parent = p.ID
		if trace == "" {
			trace = p.Trace
		}
	} else {
		parent = RemoteParentFromContext(ctx)
	}
	s := &Span{
		Trace:  trace,
		ID:     NewSpanID(),
		Parent: parent,
		Name:   name,
		t0:     time.Now(),
		logger: logger,
	}
	return ContextWithSpan(ctx, s), s
}

// Finish emits the span's log line. Nil-safe.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	parent := s.Parent
	if parent == "" {
		parent = "-"
	}
	s.logger.Printf("span %s parent=%s trace=%s name=%s dur=%s",
		s.ID, parent, s.Trace, s.Name, time.Since(s.t0).Round(time.Microsecond))
}
