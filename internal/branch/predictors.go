// Package branch implements the branch-prediction substrate: the five
// history-based predictors the paper trains its linear-branch-entropy model
// against (GAg, GAp, PAp, gshare and a tournament predictor, §3.5), the
// linear branch entropy metric itself (Equations 3.13-3.15), and the
// training flow of Figure 3.8 that turns entropy into per-predictor
// misprediction-rate estimates.
package branch

import "fmt"

// Predictor is a functional branch predictor simulator: Lookup returns the
// predicted direction for the branch at pc; Update trains with the actual
// outcome. Callers invoke Lookup then Update for every dynamic branch.
type Predictor interface {
	Name() string
	Lookup(pc uint64) bool
	Update(pc uint64, taken bool)
}

// counter is a 2-bit saturating counter; values 0-1 predict not-taken,
// 2-3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// maskBits returns a mask of n low bits.
func maskBits(n uint) uint64 { return (1 << n) - 1 }

// GAg is a global-history predictor: a single global history register
// indexes one shared pattern history table.
type GAg struct {
	hist     uint64
	histBits uint
	pht      []counter
}

// NewGAg builds a GAg with histBits of global history; the PHT has
// 2^histBits 2-bit counters (histBits=14 ≈ 4 KB).
func NewGAg(histBits uint) *GAg {
	return &GAg{histBits: histBits, pht: make([]counter, 1<<histBits)}
}

// Name implements Predictor.
func (p *GAg) Name() string { return "GAg" }

// Lookup implements Predictor.
func (p *GAg) Lookup(pc uint64) bool {
	return p.pht[p.hist&maskBits(p.histBits)].taken()
}

// Update implements Predictor.
func (p *GAg) Update(pc uint64, taken bool) {
	i := p.hist & maskBits(p.histBits)
	p.pht[i] = p.pht[i].update(taken)
	p.hist = p.hist<<1 | bit(taken)
}

// GAp uses global history but per-address pattern tables: the index
// concatenates PC bits with global history bits.
type GAp struct {
	hist     uint64
	histBits uint
	pcBits   uint
	pht      []counter
}

// NewGAp builds a GAp with histBits of global history and pcBits of PC
// index (total table 2^(histBits+pcBits) counters).
func NewGAp(histBits, pcBits uint) *GAp {
	return &GAp{histBits: histBits, pcBits: pcBits, pht: make([]counter, 1<<(histBits+pcBits))}
}

// Name implements Predictor.
func (p *GAp) Name() string { return "GAp" }

func (p *GAp) index(pc uint64) uint64 {
	return (pc>>2)&maskBits(p.pcBits)<<p.histBits | p.hist&maskBits(p.histBits)
}

// Lookup implements Predictor.
func (p *GAp) Lookup(pc uint64) bool { return p.pht[p.index(pc)].taken() }

// Update implements Predictor.
func (p *GAp) Update(pc uint64, taken bool) {
	i := p.index(pc)
	p.pht[i] = p.pht[i].update(taken)
	p.hist = p.hist<<1 | bit(taken)
}

// PAp keeps a per-address (local) history table; each branch's local history
// indexes a per-address pattern table.
type PAp struct {
	histBits uint
	pcBits   uint
	bht      []uint64 // local histories, indexed by PC
	pht      []counter
}

// NewPAp builds a PAp with histBits of local history per branch and pcBits
// of PC index into both tables.
func NewPAp(histBits, pcBits uint) *PAp {
	return &PAp{
		histBits: histBits, pcBits: pcBits,
		bht: make([]uint64, 1<<pcBits),
		pht: make([]counter, 1<<(histBits+pcBits)),
	}
}

// Name implements Predictor.
func (p *PAp) Name() string { return "PAp" }

func (p *PAp) index(pc uint64) uint64 {
	pci := (pc >> 2) & maskBits(p.pcBits)
	return pci<<p.histBits | p.bht[pci]&maskBits(p.histBits)
}

// Lookup implements Predictor.
func (p *PAp) Lookup(pc uint64) bool { return p.pht[p.index(pc)].taken() }

// Update implements Predictor.
func (p *PAp) Update(pc uint64, taken bool) {
	i := p.index(pc)
	p.pht[i] = p.pht[i].update(taken)
	pci := (pc >> 2) & maskBits(p.pcBits)
	p.bht[pci] = p.bht[pci]<<1 | bit(taken)
}

// Gshare XORs the global history with the PC to index a shared PHT.
type Gshare struct {
	hist     uint64
	histBits uint
	pht      []counter
}

// NewGshare builds a gshare with histBits of history (PHT of 2^histBits).
func NewGshare(histBits uint) *Gshare {
	return &Gshare{histBits: histBits, pht: make([]counter, 1<<histBits)}
}

// Name implements Predictor.
func (p *Gshare) Name() string { return "gshare" }

func (p *Gshare) index(pc uint64) uint64 {
	return (p.hist ^ (pc >> 2)) & maskBits(p.histBits)
}

// Lookup implements Predictor.
func (p *Gshare) Lookup(pc uint64) bool { return p.pht[p.index(pc)].taken() }

// Update implements Predictor.
func (p *Gshare) Update(pc uint64, taken bool) {
	i := p.index(pc)
	p.pht[i] = p.pht[i].update(taken)
	p.hist = p.hist<<1 | bit(taken)
}

// Tournament combines a GAp and a PAp with a per-PC chooser, matching the
// paper's fifth evaluated predictor.
type Tournament struct {
	global  *GAp
	local   *PAp
	chooser []counter // 2-bit: >=2 selects the global component
	pcBits  uint
}

// NewTournament builds a tournament of a GAp and PAp with a 2^pcBits chooser.
func NewTournament(histBits, pcBits uint) *Tournament {
	return &Tournament{
		global:  NewGAp(histBits, pcBits),
		local:   NewPAp(histBits, pcBits),
		chooser: make([]counter, 1<<pcBits),
		pcBits:  pcBits,
	}
}

// Name implements Predictor.
func (p *Tournament) Name() string { return "tournament" }

// Lookup implements Predictor.
func (p *Tournament) Lookup(pc uint64) bool {
	if p.chooser[(pc>>2)&maskBits(p.pcBits)].taken() {
		return p.global.Lookup(pc)
	}
	return p.local.Lookup(pc)
}

// Update implements Predictor.
func (p *Tournament) Update(pc uint64, taken bool) {
	g := p.global.Lookup(pc)
	l := p.local.Lookup(pc)
	ci := (pc >> 2) & maskBits(p.pcBits)
	// Train the chooser towards the component that was right.
	if g != l {
		p.chooser[ci] = p.chooser[ci].update(g == taken)
	}
	p.global.Update(pc, taken)
	p.local.Update(pc, taken)
}

// Bimodal is a simple per-PC 2-bit counter predictor (no history), used as a
// baseline and for the simulator's cheapest configurations.
type Bimodal struct {
	pcBits uint
	pht    []counter
}

// NewBimodal builds a bimodal predictor with 2^pcBits counters.
func NewBimodal(pcBits uint) *Bimodal {
	return &Bimodal{pcBits: pcBits, pht: make([]counter, 1<<pcBits)}
}

// Name implements Predictor.
func (p *Bimodal) Name() string { return "bimodal" }

// Lookup implements Predictor.
func (p *Bimodal) Lookup(pc uint64) bool { return p.pht[(pc>>2)&maskBits(p.pcBits)].taken() }

// Update implements Predictor.
func (p *Bimodal) Update(pc uint64, taken bool) {
	i := (pc >> 2) & maskBits(p.pcBits)
	p.pht[i] = p.pht[i].update(taken)
}

func bit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// NewByName constructs one of the standard ~4 KB predictors by name:
// "GAg", "GAp", "PAp", "gshare", "tournament" or "bimodal".
func NewByName(name string) (Predictor, error) {
	switch name {
	case "GAg":
		return NewGAg(14), nil
	case "GAp":
		return NewGAp(8, 6), nil
	case "PAp":
		return NewPAp(8, 6), nil
	case "gshare":
		return NewGshare(14), nil
	case "tournament":
		return NewTournament(7, 6), nil
	case "bimodal":
		return NewBimodal(14), nil
	}
	return nil, fmt.Errorf("branch: unknown predictor %q", name)
}

// StandardNames lists the five predictors of Figure 3.10.
func StandardNames() []string {
	return []string{"GAg", "GAp", "PAp", "gshare", "tournament"}
}
