package mipp_test

// Tests for the concurrent Sweep: deterministic output under any worker
// count, prompt context cancellation, error propagation and the Pareto
// helpers.

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"mipp"
	"mipp/arch"
)

func sweepPredictor(t *testing.T) *mipp.Predictor {
	t.Helper()
	pred, err := mipp.NewPredictor(testProfile(t, "soplex"))
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	pred := sweepPredictor(t)
	configs := arch.DesignSpaceSample(3) // 81 configs
	if len(configs) < 64 {
		t.Fatalf("sample too small: %d configs, want >= 64", len(configs))
	}

	encode := func(results []*mipp.Result) []byte {
		data, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	serial, err := mipp.Sweep(context.Background(), pred, configs, mipp.WithWorkers(1))
	if err != nil {
		t.Fatalf("Sweep(1 worker): %v", err)
	}
	if len(serial) != len(configs) {
		t.Fatalf("Sweep returned %d results, want %d", len(serial), len(configs))
	}
	for i, res := range serial {
		if res.Config != configs[i].Name {
			t.Fatalf("results[%d] = %q, want %q (ordering broken)", i, res.Config, configs[i].Name)
		}
	}
	want := encode(serial)

	for _, workers := range []int{2, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)} {
		parallel, err := mipp.Sweep(context.Background(), pred, configs, mipp.WithWorkers(workers))
		if err != nil {
			t.Fatalf("Sweep(%d workers): %v", workers, err)
		}
		if got := encode(parallel); string(got) != string(want) {
			t.Errorf("Sweep with %d workers is not byte-identical to 1 worker", workers)
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	pred := sweepPredictor(t)
	configs := arch.DesignSpace() // all 243

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the sweep starts
	t0 := time.Now()
	results, err := mipp.Sweep(ctx, pred, configs, mipp.WithWorkers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Error("cancelled Sweep returned results")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("cancelled Sweep took %v, want prompt return", elapsed)
	}

	// Mid-flight cancellation must also come back promptly.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := mipp.Sweep(ctx2, pred, configs, mipp.WithWorkers(1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-flight cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Sweep did not return after mid-flight cancellation")
	}
}

// TestSweepCancellationBatchGranularity asserts Sweep observes cancellation
// between configs inside a batch — not only at work-item boundaries: a
// context that cancels mid-chunk (well before the single worker's first
// ~60-config chunk ends) must still abort the sweep with ctx.Err(). The
// poll-counting context lives in batch_test.go; the batch kernel polls it
// once per configuration.
func TestSweepCancellationBatchGranularity(t *testing.T) {
	pred := sweepPredictor(t)
	configs := arch.DesignSpace() // 243 configs; 1 worker → ~61-config chunks
	ctx := &pollCountCtx{Context: context.Background(), after: 5}
	results, err := mipp.Sweep(ctx, pred, configs, mipp.WithWorkers(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch cancel: err = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Error("cancelled Sweep returned results")
	}
	if polls := ctx.polls.Load(); polls > 30 {
		t.Errorf("cancellation observed only after %d polls; batch kernel should poll per config and stop promptly", polls)
	}
}

func TestSweepErrorPropagation(t *testing.T) {
	pred := sweepPredictor(t)
	configs := arch.DesignSpaceSample(30)
	bad := arch.Reference()
	bad.Name = "broken"
	bad.IQ = 0
	configs = append(configs, bad)
	if _, err := mipp.Sweep(context.Background(), pred, configs); err == nil {
		t.Error("Sweep with an invalid config did not error")
	}

	withNil := []*arch.Config{arch.Reference(), nil, arch.Reference()}
	if _, err := mipp.Sweep(context.Background(), pred, withNil); err == nil {
		t.Error("Sweep with a nil config did not error")
	}

	empty, err := mipp.Sweep(context.Background(), pred, nil)
	if err != nil || empty != nil {
		t.Errorf("Sweep over no configs = (%v, %v), want (nil, nil)", empty, err)
	}
}

// Sweep must report every failed config, not just the first, with index and
// name context on each.
func TestSweepAggregatesAllErrors(t *testing.T) {
	pred := sweepPredictor(t)
	badROB := arch.Reference()
	badROB.Name = "bad-rob"
	badROB.ROB = 0
	badIQ := arch.Reference()
	badIQ.Name = "bad-iq"
	badIQ.IQ = 0
	configs := []*arch.Config{arch.Reference(), badROB, arch.Reference(), badIQ}

	_, err := mipp.Sweep(context.Background(), pred, configs)
	if err == nil {
		t.Fatal("Sweep with two invalid configs did not error")
	}
	msg := err.Error()
	for _, want := range []string{"config 1 (bad-rob)", "config 3 (bad-iq)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated error %q missing %q", msg, want)
		}
	}
}

func TestSweepParetoHelpers(t *testing.T) {
	pred := sweepPredictor(t)
	configs := arch.DesignSpaceSample(13)
	results, err := mipp.Sweep(context.Background(), pred, configs)
	if err != nil {
		t.Fatal(err)
	}
	points := mipp.Points(results)
	if len(points) != len(configs) {
		t.Fatalf("Points: %d, want %d", len(points), len(configs))
	}

	front := mipp.ParetoFront(points)
	if len(front) == 0 || len(front) > len(points) {
		t.Fatalf("ParetoFront size %d out of range", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].Time < front[i-1].Time || front[i].Power > front[i-1].Power {
			t.Errorf("front not monotone at %d: %+v -> %+v", i, front[i-1], front[i])
		}
	}

	if best, ok := mipp.BestUnderPowerCap(points, 1e9); !ok {
		t.Error("BestUnderPowerCap found nothing under an unlimited cap")
	} else {
		for _, p := range points {
			if p.Time < best.Time {
				t.Errorf("BestUnderPowerCap missed faster point %+v", p)
				break
			}
		}
	}
	if _, ok := mipp.BestUnderPowerCap(points, 0); ok {
		t.Error("BestUnderPowerCap found a point under a 0 W cap")
	}
	if _, ok := mipp.BestByED2P(points); !ok {
		t.Error("BestByED2P found nothing")
	}

	// Perfect prediction scores perfectly against itself.
	m := mipp.CompareFronts(points, points)
	if m.Sensitivity != 1 || m.Accuracy != 1 || m.HVR != 1 {
		t.Errorf("self-comparison metrics = %+v, want all 1", m)
	}
}
