// Fixture for the wraperr analyzer: sentinel errors travel by %w and
// errors.Is, never by identity or text.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

var errNotFound = errors.New("fixture: not found")

func compareEq(err error) bool {
	return err == errNotFound // want `\[wraperr/sentinel-compare\] errNotFound`
}

func compareNeq(err error) bool {
	return err != errNotFound // want `\[wraperr/sentinel-compare\] errNotFound`
}

// compareIs is the blessed form: silent.
func compareIs(err error) bool {
	return errors.Is(err, errNotFound)
}

// nilChecks are identity against nil, which is fine: silent.
func nilChecks(err error) bool {
	return err == nil || err != nil
}

func flatten(err error) error {
	return fmt.Errorf("lookup failed: %v", err) // want `\[wraperr/no-wrap\]`
}

// wrap keeps the chain intact: silent.
func wrap(err error) error {
	return fmt.Errorf("lookup failed: %w", err)
}

// plainErrorf carries no error argument at all: silent.
func plainErrorf(name string) error {
	return fmt.Errorf("unknown workload %q", name)
}

func textContains(err error) bool {
	return strings.Contains(err.Error(), "not found") // want `\[wraperr/string-match\] strings\.Contains`
}

func textCompare(err error) bool {
	return err.Error() == "fixture: not found" // want `\[wraperr/string-match\] comparing err\.Error`
}

// legacyCompare demonstrates the escape hatch.
func legacyCompare(err error) bool {
	//mipp:allow wraperr fixture demonstrates the escape hatch
	return err == errNotFound
}
