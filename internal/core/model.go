// Package core implements the micro-architecture independent interval model
// — the paper's primary contribution. From a one-time application profile
// and a processor description it predicts cycles, CPI stacks and the
// activity factors the power model consumes, with no simulation in the loop:
//
//	C = N/Deff + m_bpred·(c_res + c_fe) + Σ m_ILi·c_Li+1
//	    + m_LLC·(c_mem + c_bus)/MLP + P_hLLC            (Equation 3.1)
//
// The effective dispatch rate Deff (§3.3-3.4) captures dependence and
// issue-stage contention; branch mispredictions come from linear branch
// entropy (§3.5); cache misses from StatStack (§4.2); MLP from the cold-miss
// or stride model (§4.4-4.5) with MSHR and bus corrections (§4.6-4.7); and
// chained LLC hits add the penalty of §4.8.
//
// The model is evaluated per micro-trace and the predictions combined
// (the sampled-model-evaluation contribution of the TC'16 paper), which
// captures bursty contention that an averaged profile would smear out.
package core

import (
	"math"

	"mipp/internal/config"
	"mipp/internal/mlp"
	"mipp/internal/perf"
	"mipp/internal/profiler"
	"mipp/internal/statstack"
	"mipp/internal/trace"
)

// Options modify a model evaluation.
type Options struct {
	// MLPMode selects the MLP model (default StrideMLP).
	MLPMode mlp.Mode
	// Combined evaluates one averaged profile instead of evaluating each
	// micro-trace separately and combining predictions (the ISPASS-2015
	// baseline the TC'16 paper improves on, Figure 6.4).
	Combined bool
	// NoLLCChain disables the chained-LLC-hit penalty (§4.8 ablation).
	NoLLCChain bool
	// NoBusQueue disables the memory-bus queuing delay (§4.7 ablation).
	NoBusQueue bool
	// BranchMissRate overrides the entropy-model misprediction rate when
	// >= 0 (used to isolate input errors, Table 6.2). Set to -1 to use
	// the entropy model.
	BranchMissRate float64
	// DispatchModel restricts the effective-dispatch-rate terms for the
	// ablation of Figure 3.7 (default DispatchFull).
	DispatchModel DispatchModel
}

// DispatchModel enumerates the progressive base-component refinements of
// Figure 3.7.
type DispatchModel int

// Dispatch model levels.
const (
	// DispatchFull applies all terms of Equation 3.10.
	DispatchFull DispatchModel = iota
	// DispatchInstructions divides macro-instructions by the width.
	DispatchInstructions
	// DispatchUops divides uops by the physical width.
	DispatchUops
	// DispatchCritical adds the critical-path limit.
	DispatchCritical
)

// DefaultOptions returns the standard configuration (stride MLP, separate
// micro-trace evaluation, every component enabled).
func DefaultOptions() Options {
	return Options{MLPMode: mlp.StrideMLP, BranchMissRate: -1}
}

// Result is a complete model prediction.
type Result struct {
	Config       string
	Workload     string
	Cycles       float64
	Uops         float64
	Instructions float64
	// Stack attributes predicted cycles to CPI components.
	Stack perf.CPIStack
	// Activity holds the predicted activity factors for the power model.
	Activity perf.Activity
	// Deff is the (uop-weighted) average effective dispatch rate.
	Deff float64
	// MLP is the (miss-weighted) average predicted memory parallelism.
	MLP float64
	// BranchMissRate is the predicted per-branch misprediction rate.
	BranchMissRate float64
	// LLCLoadMisses is the predicted number of long-latency load misses.
	LLCLoadMisses float64
	// DRAMStallPerMiss is the predicted average DRAM stall per miss.
	DRAMStallPerMiss float64
	// MicroCPI is the per-micro-trace predicted CPI (per uop), for phase
	// analysis.
	MicroCPI []float64
	// Limiter counts micro-traces by their dispatch-rate limiter
	// (Figure 3.6): [width, dependences, port, unit].
	Limiter [4]float64
}

// CPI returns predicted cycles per macro-instruction.
func (r *Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.Cycles / r.Instructions
}

// TimeSeconds returns predicted execution time at freqGHz.
func (r *Result) TimeSeconds(freqGHz float64) float64 {
	return r.Cycles / (freqGHz * 1e9)
}

// Model carries everything needed to evaluate one profile against many
// configurations: the profile, its StatStack curve, and the branch entropy
// model. Building it is cheap; Evaluate is nearly instantaneous per
// configuration — the property that makes design-space exploration fast.
type Model struct {
	Profile *profiler.Profile
	// EntropyFit maps linear branch entropy to a misprediction rate for
	// the configured predictor (Figure 3.9); slope/intercept per
	// predictor name.
	EntropyFits map[string]func(entropy float64) float64
}

// New builds a Model for a profile. entropyFits may be nil, in which case a
// default linear fit (missrate ≈ entropy/2, the asymptotic relation of the
// linear branch entropy metric) is used for every predictor.
func New(p *profiler.Profile, entropyFits map[string]func(float64) float64) *Model {
	return &Model{Profile: p, EntropyFits: entropyFits}
}

// missRateFor returns the predicted branch misprediction rate for a
// predictor from the profile's linear branch entropy.
func (m *Model) missRateFor(predictor string) float64 {
	if m.EntropyFits != nil {
		if f, ok := m.EntropyFits[predictor]; ok {
			return clamp01(f(m.Profile.Entropy))
		}
	}
	// Asymptotic fallback: E(p)=2·min(p,1-p) ⇒ missrate ≈ E/2 for a
	// predictor that has learned the pattern.
	return clamp01(m.Profile.Entropy / 2)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Evaluate predicts performance for one configuration.
func (m *Model) Evaluate(cfg *config.Config, opts Options) *Result {
	p := m.Profile
	pred := statstack.Predict(p, cfg.CacheLevels(), cfg.L1I)
	res := &Result{
		Config:       cfg.Name,
		Workload:     p.Workload,
		Uops:         float64(p.TotalUops),
		Instructions: float64(p.TotalInstrs),
	}
	res.BranchMissRate = opts.BranchMissRate
	if res.BranchMissRate < 0 {
		res.BranchMissRate = m.missRateFor(cfg.Predictor)
	}

	micros := p.Micros
	if opts.Combined {
		micros = []*profiler.Micro{combineMicros(p)}
	}

	prm := mlp.Params{
		ROB:        cfg.ROB,
		MSHRs:      cfg.MSHRs,
		MemLatency: cfg.MemConfig().LatencyCycles,
		BusPerLine: cfg.MemConfig().BusCyclesPerLine,
		L1Lines:    float64(cfg.L1D.Lines()),
		L2Lines:    float64(cfg.L2.Lines()),
		LLCLines:   float64(cfg.L3.Lines()),
		LoadFrac:   p.LoadFrac(),
		Prefetch:   cfg.Prefetcher,
		Mode:       opts.MLPMode,
	}

	// Global store miss ratio for bus contention (Eq 4.6).
	llcStats := pred.Levels[len(pred.Levels)-1]
	storeMissPerUop := 0.0
	if p.TotalUops > 0 {
		storeMissPerUop = llcStats.StoreMisses / float64(p.TotalUops)
	}

	var totalCycles, totalUops float64
	var deffSum, mlpSum, mlpW float64
	var missSum, dramStall float64
	for _, micro := range micros {
		ev := m.evaluateMicro(micro, cfg, opts, pred, prm, storeMissPerUop)
		res.Stack.Add(&ev.stack)
		totalCycles += ev.stack.Total()
		totalUops += float64(micro.Len)
		deffSum += ev.deff * float64(micro.Len)
		if ev.misses > 0 {
			mlpSum += ev.mlp * ev.misses
			mlpW += ev.misses
			missSum += ev.misses
			dramStall += ev.stack.Cycles[perf.DRAM]
		}
		res.MicroCPI = append(res.MicroCPI, ev.stack.Total()/float64(micro.Len))
		res.Limiter[ev.limiter]++
	}
	if totalUops == 0 {
		return res
	}
	// Scale the sampled prediction to the full stream.
	scale := float64(p.TotalUops) / totalUops
	res.Stack.Scale(scale)
	res.Cycles = res.Stack.Total()
	res.Deff = deffSum / totalUops
	if mlpW > 0 {
		res.MLP = mlpSum / mlpW
	} else {
		res.MLP = 1
	}
	res.LLCLoadMisses = missSum * scale
	if missSum > 0 {
		res.DRAMStallPerMiss = dramStall / missSum
	}
	m.fillActivity(res, cfg, pred)
	return res
}

type microEval struct {
	stack   perf.CPIStack
	deff    float64
	mlp     float64
	misses  float64 // LLC load misses in the micro-trace
	limiter int
}

// evaluateMicro applies Equation 3.1 to one micro-trace.
func (m *Model) evaluateMicro(micro *profiler.Micro, cfg *config.Config, opts Options,
	pred *statstack.Prediction, prm mlp.Params, storeMissPerUop float64) microEval {

	p := m.Profile
	var ev microEval
	n := float64(micro.Len)
	if n == 0 {
		return ev
	}
	mix := micro.Mix()

	// Per-micro cache behaviour: L1/L2/LLC load miss ratios.
	mrL1 := statstack.MissRatioForMicro(pred.Curve, micro, prm.L1Lines)
	mrL2 := statstack.MissRatioForMicro(pred.Curve, micro, prm.L2Lines)
	mrLLC := statstack.MissRatioForMicro(pred.Curve, micro, prm.LLCLines)
	if mrL2 > mrL1 {
		mrL2 = mrL1
	}
	if mrLLC > mrL2 {
		mrLLC = mrL2
	}

	// Average instruction latency including short (L1/L2-hit) loads.
	lat := m.averageLatency(mix, cfg, mrL1)

	// Effective dispatch rate (Eq 3.10) with the per-ROB critical path.
	_, abp, cp := micro.Chains.At(cfg.ROB)
	deff, limiter := effectiveDispatch(mix, cfg, lat, cp, opts.DispatchModel)
	ev.deff = deff
	ev.limiter = limiter

	// Base component.
	var instrs float64
	if opts.DispatchModel == DispatchInstructions {
		instrs = float64(micro.Instrs)
		ev.stack.Cycles[perf.Base] = instrs / float64(cfg.DispatchWidth)
	} else {
		ev.stack.Cycles[perf.Base] = n / deff
	}

	// Branch misprediction component: m_bpred × (c_res + c_fe). When the
	// backend, not the front-end, is the bottleneck (Deff < D), the ROB
	// backlog keeps the core busy while the front-end recovers; only the
	// part of the recovery that outlasts the backlog drain costs cycles.
	missRate := opts.BranchMissRate
	if missRate < 0 {
		missRate = m.missRateFor(cfg.Predictor)
	}
	branches := float64(micro.Branches)
	mispred := branches * missRate
	if mispred > 0 {
		cres, occ := branchResolution(cfg, micro, lat, abp, cp, mispred, n)
		// The resolution overlaps with the backend draining the ROB
		// backlog (occ uops at Deff); the front-end refill does not.
		drain := occ / deff
		resolution := cres - drain
		if resolution < 0 {
			resolution = 0
		}
		ev.stack.Cycles[perf.BranchComp] = mispred * (resolution + float64(cfg.FrontEndDepth))
		prm.MispredictEvery = n / mispred
	} else {
		prm.MispredictEvery = 0
	}

	// I-cache component: misses resolved from L2.
	if pred.ICacheMPKI > 0 {
		icMisses := pred.ICacheMPKI / 1000 * float64(micro.Instrs)
		ev.stack.Cycles[perf.ICache] = icMisses * float64(cfg.L2.LatencyCycles)
	}

	// Memory component: m_LLC × (c_mem + c_bus)/MLP with prefetch,
	// MSHR and bus corrections.
	prm.DispatchRate = deff
	mem := mlp.Evaluate(p, micro, pred.Curve, prm)
	misses := mrLLC * float64(micro.LoadCount)
	ev.misses = misses
	ev.mlp = mem.MLP
	if misses > 0 {
		cmem := float64(prm.MemLatency) + float64(cfg.L3.LatencyCycles)
		cbus := 0.0
		if !opts.NoBusQueue {
			mlpPrime := mlp.RescaleForStores(mem.MLP, misses, storeMissPerUop*n)
			cbus = mlp.BusLatency(mlpPrime, prm.BusPerLine)
		}
		// Prefetch coverage (Eq 4.13): timely misses cost nothing;
		// partial ones cost the residual latency.
		demand := misses * (1 - mem.PrefetchTimely - mem.PrefetchPartial)
		partial := misses * mem.PrefetchPartial
		penalty := demand * (cmem + cbus)
		if partial > 0 {
			residual := cmem - mem.PartialSpacing/deff
			if residual < 0 {
				residual = 0
			}
			penalty += partial * residual
		}
		penalty /= mem.MLP
		// The stall starts only when the load reaches the ROB head and
		// the ROB has filled behind it (§2.5.3); dispatch proceeds at D
		// during the fill, so ROB/D cycles per stalling window overlap
		// with the base component and are subtracted, mirroring the
		// ROB-fill subtraction Equation 4.11 applies to chained LLC
		// hits.
		windows := n / float64(cfg.ROB)
		missWindows := math.Min(windows, misses)
		if missWindows > 0 {
			perWindow := penalty / missWindows
			hidden := math.Min(float64(cfg.ROB)/float64(cfg.DispatchWidth), perWindow)
			penalty -= hidden * missWindows
		}
		if penalty < 0 {
			penalty = 0
		}
		ev.stack.Cycles[perf.DRAM] = penalty
	}

	// Chained LLC hits (§4.8, Eq 4.7-4.12).
	if !opts.NoLLCChain {
		ev.stack.Cycles[perf.LLCHit] = m.llcChainPenalty(micro, cfg, deff, mrL2, mrLLC)
	}
	return ev
}

// averageLatency returns the mix-weighted uop execution latency, counting
// loads at their L1/L2-hit cost (long misses are separate penalty terms).
func (m *Model) averageLatency(mix [trace.NumClasses]float64, cfg *config.Config, mrL1 float64) float64 {
	lat := 0.0
	for c := trace.Class(0); c < trace.NumClasses; c++ {
		f := mix[c]
		if f == 0 {
			continue
		}
		switch c {
		case trace.Load:
			l := float64(cfg.L1D.LatencyCycles)*(1-mrL1) + float64(cfg.L2.LatencyCycles)*mrL1
			lat += f * l
		default:
			lat += f * float64(cfg.FU[c].Latency)
		}
	}
	if lat < 1 {
		lat = 1
	}
	return lat
}

// effectiveDispatch computes Deff (Equation 3.10) and reports which factor
// limits it: 0 = dispatch width, 1 = dependences, 2 = functional port,
// 3 = functional unit.
func effectiveDispatch(mix [trace.NumClasses]float64, cfg *config.Config, lat, cp float64, dm DispatchModel) (float64, int) {
	deff := float64(cfg.DispatchWidth)
	limiter := 0
	if dm == DispatchUops || dm == DispatchInstructions {
		return deff, limiter
	}
	// Dependence limit: ROB / (lat · CP).
	if cp > 0 {
		if dep := float64(cfg.ROB) / (lat * cp); dep < deff {
			deff = dep
			limiter = 1
		}
	}
	if dm == DispatchCritical {
		return deff, limiter
	}
	// Port contention: schedule the mix onto ports (§3.4's greedy
	// algorithm) and bound by the busiest port's activity.
	if portD := portLimit(mix, cfg); portD < deff {
		deff = portD
		limiter = 2
	}
	// Functional-unit contention: pipelined units bound by unit count,
	// non-pipelined by count/latency.
	if unitD := unitLimit(mix, cfg); unitD < deff {
		deff = unitD
		limiter = 3
	}
	if deff < 0.05 {
		deff = 0.05
	}
	return deff, limiter
}

// portLimit builds the greedy issue schedule of §3.4: classes served by a
// single port are pinned first; classes with a choice are balanced over
// their ports given the already-scheduled activity. The dispatch bound is
// 1 / (busiest port's activity per uop).
func portLimit(mix [trace.NumClasses]float64, cfg *config.Config) float64 {
	activity := make([]float64, len(cfg.Ports))
	var multi []trace.Class
	for c := trace.Class(0); c < trace.NumClasses; c++ {
		if mix[c] == 0 {
			continue
		}
		var serving []int
		for pi, port := range cfg.Ports {
			if port.Serves(c) {
				serving = append(serving, pi)
			}
		}
		if len(serving) == 1 {
			activity[serving[0]] += mix[c]
		} else if len(serving) > 1 {
			multi = append(multi, c)
		}
	}
	for _, c := range multi {
		// Spread this class over its ports as evenly as possible,
		// water-filling against existing activity.
		var serving []int
		for pi, port := range cfg.Ports {
			if port.Serves(c) {
				serving = append(serving, pi)
			}
		}
		remaining := mix[c]
		// Water-fill: repeatedly raise the least-loaded serving ports
		// (all ports tied at the minimum level) towards the next level.
		for iter := 0; iter < 16 && remaining > 1e-12; iter++ {
			minVal := activity[serving[0]]
			for _, pi := range serving[1:] {
				if activity[pi] < minVal {
					minVal = activity[pi]
				}
			}
			var tied []int
			next := math.Inf(1)
			for _, pi := range serving {
				if activity[pi] == minVal {
					tied = append(tied, pi)
				} else if activity[pi] < next {
					next = activity[pi]
				}
			}
			give := remaining / float64(len(tied))
			if !math.IsInf(next, 1) && next-minVal < give {
				give = next - minVal
			}
			for _, pi := range tied {
				activity[pi] += give
				remaining -= give
			}
		}
	}
	busiest := 0.0
	for _, a := range activity {
		if a > busiest {
			busiest = a
		}
	}
	if busiest <= 0 {
		return math.Inf(1)
	}
	return 1 / busiest
}

// unitLimit bounds dispatch by functional-unit counts: N·U_i/N_i for
// pipelined units and N·U_j/(N_j·lat_j) for non-pipelined ones (Eq 3.10).
func unitLimit(mix [trace.NumClasses]float64, cfg *config.Config) float64 {
	limit := math.Inf(1)
	for c := trace.Class(0); c < trace.NumClasses; c++ {
		if mix[c] == 0 {
			continue
		}
		units := float64(cfg.UnitCount(c))
		if units == 0 {
			continue
		}
		var d float64
		if cfg.FU[c].Pipelined {
			d = units / mix[c]
		} else {
			d = units / (mix[c] * float64(cfg.FU[c].Latency))
		}
		if d < limit {
			limit = d
		}
	}
	return limit
}

// branchResolution implements the leaky-bucket algorithm (Algorithm 3.2):
// it tracks how full the ROB is when the mispredicted branch finally
// executes and prices the resolution as lat × ABP at that occupancy. It
// also returns the ROB occupancy, which bounds how much of the recovery the
// backlog can hide.
func branchResolution(cfg *config.Config, micro *profiler.Micro, lat, abp, cp float64, mispred, n float64) (float64, float64) {
	if mispred <= 0 {
		return lat * abp, 0
	}
	ni := n / mispred // uops between mispredictions
	d := float64(cfg.DispatchWidth)
	rob := float64(cfg.ROB)
	robi := 0.0
	for iter := 0; ni > d && iter < 4096; iter++ {
		if robi+d <= rob {
			ni -= d
			robi += d
		} else {
			ni -= rob - robi
			robi = rob
		}
		// Independent instructions at the current occupancy.
		_, _, cpi := micro.Chains.At(int(robi + 0.5))
		iRob := robi
		if cpi > 0 {
			iRob = robi / (lat * cpi)
		}
		leave := math.Min(iRob, d)
		robi -= leave
		if robi < 0 {
			robi = 0
		}
	}
	occ := int(robi + 0.5)
	if occ < 1 {
		occ = 1
	}
	_, abpOcc, _ := micro.Chains.At(occ)
	if abpOcc < 1 {
		abpOcc = 1
	}
	return lat * abpOcc, robi
}

// llcChainPenalty implements Equations 4.7-4.12.
func (m *Model) llcChainPenalty(micro *profiler.Micro, cfg *config.Config, deff, mrL2, mrLLC float64) float64 {
	n := float64(micro.Len)
	loadFrac := 0.0
	if micro.Len > 0 {
		loadFrac = float64(micro.LoadCount) / n
	}
	loadsPerROB := loadFrac * float64(cfg.ROB)
	if loadsPerROB <= 0 {
		return 0
	}
	// LLC hits: loads missing L2 but hitting L3.
	hitRate := mrL2 - mrLLC
	if hitRate <= 0 {
		return 0
	}
	hLLC := hitRate * loadsPerROB
	f := m.Profile.LoadDepHistFor(cfg.ROB)
	f1 := f.Fraction(1)
	if f1 <= 0 {
		f1 = 1
	}
	pload := f1 * loadsPerROB
	if pload < 1 {
		pload = 1
	}
	lop := loadsPerROB / pload
	lhcAvg := hLLC / pload                   // Eq 4.7
	lhcMax := math.Min(hLLC, lop)            // Eq 4.8
	lhcExp := lhcAvg + (lhcMax-lhcAvg)/pload // Eq 4.9
	if lhcExp < 0 {
		lhcExp = 0
	}
	pPrime := float64(cfg.L3.LatencyCycles) * lhcExp // Eq 4.10
	perWindow := pPrime - float64(cfg.ROB)/deff      // Eq 4.11
	if perWindow <= 0 {
		return 0
	}
	return perWindow * n / float64(cfg.ROB) // Eq 4.12
}

// combineMicros collapses all micro-traces into one averaged pseudo-trace
// (the pre-TC'16 "combined" evaluation of Figure 6.4).
func combineMicros(p *profiler.Profile) *profiler.Micro {
	out := &profiler.Micro{
		Reuse:      p.ReuseAll,
		ReuseLoads: p.ReuseLoad,
		Chains:     p.Chains,
	}
	for _, m := range p.Micros {
		out.Len += m.Len
		out.Instrs += m.Instrs
		out.Branches += m.Branches
		out.ColdLoads += m.ColdLoads
		out.LoadCount += m.LoadCount
		out.StoreCount += m.StoreCount
		out.ColdLoadReuse += m.ColdLoadReuse
		out.ColdReuse += m.ColdReuse
		for c, cnt := range m.MixCounts {
			out.MixCounts[c] += cnt
		}
		out.Loads = append(out.Loads, m.Loads...)
	}
	// Merge the load-dependence histograms index-wise.
	if len(p.Micros) > 0 {
		for i := range p.Micros[0].LoadDeps {
			out.LoadDeps = append(out.LoadDeps, p.LoadDepHistFor(p.Opts.ROBs[i]))
		}
	}
	return out
}

// fillActivity derives the predicted activity factors (Eq 3.16).
func (m *Model) fillActivity(res *Result, cfg *config.Config, pred *statstack.Prediction) {
	p := m.Profile
	a := &res.Activity
	a.Cycles = res.Cycles
	a.UopsDispatched = float64(p.TotalUops)
	a.UopsCommitted = float64(p.TotalUops)
	mix := p.Mix()
	for c := trace.Class(0); c < trace.NumClasses; c++ {
		a.PerClass[c] = mix[c] * float64(p.TotalUops)
	}
	a.BranchLookups = float64(p.Branches)
	a.L1IAccesses = float64(p.InstrFetch)
	a.L1IMisses = pred.ICacheMPKI / 1000 * float64(p.TotalInstrs)
	a.L1DAccesses = float64(p.MemAccesses)
	l1 := pred.Levels[0]
	l2 := pred.Levels[1]
	l3 := pred.Levels[2]
	a.L1DMisses = l1.Misses
	a.L2Accesses = l1.Misses
	a.L2Misses = l2.Misses
	a.L3Accesses = l2.Misses
	a.L3Misses = l3.Misses
	a.DRAMAccesses = l3.Misses
}
