package mipp

import (
	"context"
	"fmt"

	"mipp/api"
	"mipp/obs"
)

// SweepSink receives a streamed sweep: Start once with the workload and the
// item count, then Item once per configuration in input order. Either
// callback returning an error aborts the sweep (the server uses this when
// the client disconnects mid-stream). A nil Start is skipped.
type SweepSink struct {
	Start func(workload string, count int) error
	Item  func(item api.SweepItem) error
}

// SweepStream evaluates the same request Sweep does, but delivers each
// configuration's result through sink as soon as its window is computed
// instead of accumulating one response envelope. Items arrive in input
// order; each window of configurations is fanned out over the worker pool
// exactly like Sweep's batches, so streaming costs ordering latency only at
// window granularity, not throughput. Request-level failures (bad request,
// unknown workload) are returned before Start is called; per-configuration
// failures travel in their item's Error field; a context cancellation
// mid-run surfaces as the returned error after the items already emitted.
//
// The Result DTOs passed to sink are the same values a Sweep response would
// carry, so a streamed sweep and an envelope sweep marshal each result
// byte-identically.
func (e *Engine) SweepStream(ctx context.Context, req *api.SweepRequest, sink SweepSink) error {
	if sink.Item == nil {
		return fmt.Errorf("mipp: SweepStream: sink has no Item callback")
	}
	if err := req.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	configs, err := api.ExpandConfigs(req.Configs, req.Space)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	pd, err := e.predictor(ctx, req.Workload, req.Options)
	if err != nil {
		return err
	}
	workers := req.Workers
	if workers <= 0 {
		workers = e.workers
	}
	if sink.Start != nil {
		if err := sink.Start(req.Workload, len(configs)); err != nil {
			return err
		}
	}

	// One window = one batch chunk per worker: every window saturates the
	// pool the way a full Sweep would, and items stream at window
	// boundaries. The pooled BatchResult is reused across windows; each
	// emitted item is an independent DTO copy, so reusing the buffers for
	// the next window never mutates an already-published item.
	br := getBatchResult()
	defer putBatchResult(br)
	window := batchChunk(len(configs), workers) * workers
	for lo := 0; lo < len(configs); lo += window {
		hi := min(lo+window, len(configs))
		t := obs.StartTimer()
		sweepInto(ctx, pd, configs[lo:hi], workers, br)
		t.ObserveInto(e.metrics.evaluateSeconds)
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			item := api.SweepItem{Index: i}
			if configs[i] != nil {
				item.Config = configs[i].Name
			}
			switch {
			case br.Err(i-lo) != nil:
				item.Error = br.Err(i - lo).Error()
			case br.Ok(i - lo):
				item.Result = br.apiResult(i-lo, false)
			}
			if err := sink.Item(item); err != nil {
				return err
			}
		}
	}
	return nil
}
