// Package mlp implements the memory-level parallelism models of Chapter 4:
// the cold-miss MLP model (§4.4, Equations 4.1-4.3), the stride-MLP model
// built on a virtual instruction stream (§4.5), the MSHR soft cap (§4.6,
// Equation 4.4), the memory-bus queuing model (§4.7, Equations 4.5-4.6) and
// the stride-prefetcher interaction (§4.9, Equation 4.13).
package mlp

import (
	"math"

	"mipp/internal/prefetch"
	"mipp/internal/profiler"
	"mipp/internal/stats"
	"mipp/internal/statstack"
)

// Mode selects the MLP modeling technique.
type Mode int

// MLP model variants.
const (
	// ColdMiss is the ISPASS-2015 model leveraging cold-miss burstiness.
	ColdMiss Mode = iota
	// StrideMLP is the CAL-2018 model built on per-static-load stride
	// behaviour and a virtual instruction stream.
	StrideMLP
	// None disables MLP modeling (MLP = 1), the "no MLP" baseline of
	// Figure 4.3.
	None
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ColdMiss:
		return "cold-miss"
	case StrideMLP:
		return "stride"
	default:
		return "none"
	}
}

// Params carries the micro-architectural inputs of the MLP models.
type Params struct {
	ROB        int
	MSHRs      int
	MemLatency int // DRAM access latency in cycles (device, §4.6's T_DRAM)
	BusPerLine int // c_transfer of Equation 4.5
	L1Lines    float64
	L2Lines    float64
	LLCLines   float64
	// LoadFrac is the fraction of uops that are loads (for L̄(ROB)).
	LoadFrac float64
	// Prefetch describes the hardware prefetcher to model (§4.9).
	Prefetch prefetch.Config
	// Mode selects the model.
	Mode Mode
	// MispredictEvery is the expected number of uops between branch
	// mispredictions; a misprediction drains the window, so the effective
	// MLP window is min(ROB, MispredictEvery). Zero means no limit.
	MispredictEvery float64
	// DispatchRate is the effective dispatch rate Deff (informational;
	// carried for diagnostics and future stagger corrections).
	DispatchRate float64
}

// window returns the effective ROB window after branch-misprediction
// truncation.
func (p Params) window() int {
	w := p.ROB
	if p.MispredictEvery > 0 && p.MispredictEvery < float64(w) {
		w = int(p.MispredictEvery)
		if w < 8 {
			w = 8
		}
	}
	return w
}

// MicroMem is the memory behaviour predicted for one micro-trace.
type MicroMem struct {
	// Loads is the number of loads in the micro-trace.
	Loads float64
	// MissPerLoad is the predicted LLC load miss ratio.
	MissPerLoad float64
	// MLP is the memory-level parallelism after the MSHR cap.
	MLP float64
	// RawMLP is the model's MLP before the MSHR cap.
	RawMLP float64
	// PrefetchTimely is the fraction of LLC misses fully covered by the
	// prefetcher (latency completely hidden).
	PrefetchTimely float64
	// PrefetchPartial is the fraction of LLC misses covered but not
	// timely; their residual latency is MemLatency − Spacing/Deff
	// (Equation 4.13, resolved by the core model which knows Deff).
	PrefetchPartial float64
	// PartialSpacing is the average uop distance between the prefetch
	// trigger and the target access, for the partial fraction.
	PartialSpacing float64
}

// Evaluate predicts the memory behaviour of one micro-trace. It is the
// one-shot entry point: callers evaluating the same micro-trace against
// many configurations should Compile once and reuse the Compiled's memo
// tables instead.
func Evaluate(p *profiler.Profile, m *profiler.Micro, curve *statstack.Curve, prm Params) MicroMem {
	return Compile(p, m, curve).evaluate(prm)
}

// mshrCap applies the soft MSHR cap of Equation 4.4. The DRAM_MSHR parallel
// accesses occupy all entries; the DRAM_wait overflowing accesses wait
// T_MSHRfree for a slot and hide only the remainder of the DRAM latency.
// Misses arrive in bursts, so an overflowing access typically waits most of
// an access time for its slot: T_MSHRfree = T_DRAM·MSHRs/(MSHRs+1), leaving
// the waiting accesses a parallelism contribution of 1/(MSHRs+1) each.
func mshrCap(raw float64, prm Params) float64 {
	if prm.MSHRs <= 0 || raw <= float64(prm.MSHRs) {
		return raw
	}
	tdram := float64(prm.MemLatency)
	if tdram <= 0 {
		return float64(prm.MSHRs)
	}
	wait := raw - float64(prm.MSHRs)
	tfree := tdram * float64(prm.MSHRs) / float64(prm.MSHRs+1)
	return float64(prm.MSHRs) + wait*(tdram-tfree)/tdram
}

// BusLatency returns the average per-miss bus cycles under MLP′ concurrent
// accesses (Equation 4.5): the i-th concurrent miss waits i transfer slots,
// so the average is (MLP′+1)/2 × c_transfer.
func BusLatency(mlpPrime float64, busPerLine int) float64 {
	if mlpPrime < 1 {
		mlpPrime = 1
	}
	return (mlpPrime + 1) / 2 * float64(busPerLine)
}

// RescaleForStores widens the load MLP to account for store misses on the
// memory bus (Equation 4.6).
func RescaleForStores(mlp, loadMisses, storeMisses float64) float64 {
	if loadMisses <= 0 {
		return mlp
	}
	return mlp * (loadMisses + storeMisses) / loadMisses
}

// coldMissMLP implements Equations 4.1-4.3. Cold misses locate the bursts;
// capacity/conflict misses are assumed uniformly spread over the loads.
// microLoadDeps returns the micro-trace's own f(ℓ) histogram for the
// profiled ROB size nearest rob, falling back to the profile aggregate.
func microLoadDeps(p *profiler.Profile, m *profiler.Micro, rob int) *stats.Histogram {
	best := p.Opts.ROBIndexFor(rob)
	if best >= 0 && best < len(m.LoadDeps) && m.LoadDeps[best] != nil && m.LoadDeps[best].Total() > 0 {
		return m.LoadDeps[best]
	}
	return p.LoadDepHistFor(rob)
}

func coldMissMLP(p *profiler.Profile, m *profiler.Micro, curve *statstack.Curve, prm Params) float64 {
	mllc := statstack.MissRatioForMicro(curve, m, prm.LLCLines)
	if mllc <= 0 || m.LoadCount == 0 {
		return 1
	}
	// Split the micro-trace's misses into cold and capacity/conflict.
	totalMisses := mllc * float64(m.LoadCount)
	coldMisses := float64(m.ColdLoads)
	if coldMisses > totalMisses {
		coldMisses = totalMisses
	}
	cfMisses := totalMisses - coldMisses
	cfRate := cfMisses / float64(m.LoadCount)

	f := microLoadDeps(p, m, prm.ROB)
	if f.Total() == 0 {
		return 1
	}
	mColdROB := p.ColdMissAvgPerROB(prm.ROB)
	loadsPerROB := prm.LoadFrac * float64(prm.ROB)

	// Σ_ℓ (1-M)^(ℓ-1) f(ℓ) — the probability that a load at depth ℓ is
	// an independent miss.
	indep := 0.0
	for _, l := range f.Keys() {
		indep += math.Pow(1-mllc, float64(l-1)) * f.Fraction(l)
	}
	mlpCold := indep * mColdROB           // Eq 4.1
	mlpCf := indep * cfRate * loadsPerROB // Eq 4.2
	if totalMisses <= 0 {
		return 1
	}
	mlp := (cfMisses/totalMisses)*mlpCf + (coldMisses/totalMisses)*mlpCold // Eq 4.3
	if mlp < 1 {
		mlp = 1
	}
	return mlp
}
