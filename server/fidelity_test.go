package server

// GET /v1/fidelity and the /healthz fidelity section: disabled engines
// answer enabled=false (not 404), enabled engines return the seeded report
// after ?wait=1, and the mipp_fidelity_* series reach /metrics.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mipp"
	"mipp/api"
	"mipp/arch"
	"mipp/fidelity"
)

// flatGroundTruth is a trivially fast simulator stand-in so the handler
// tests never pay a real cycle-level run.
type flatGroundTruth struct{}

func (flatGroundTruth) GroundTruth(ctx context.Context, workload string, cfg *arch.Config) (fidelity.Measurement, error) {
	return fidelity.Measurement{
		CPI:      1,
		CPIStack: fidelity.CPIStack{Base: 0.6, Branch: 0.1, ICache: 0.05, LLCHit: 0.1, DRAM: 0.15},
		Watts:    12,
		Power:    fidelity.PowerStack{Static: 4, Core: 4, FU: 1, Cache: 1.5, DRAM: 1, BPred: 0.5},
	}, nil
}

func fidelityServer(t *testing.T) (*Server, *mipp.Engine) {
	t.Helper()
	e := mipp.NewEngine(mipp.WithFidelitySampling(mipp.FidelityOptions{
		SampleEvery: 1,
		Budget:      32,
		GroundTruth: flatGroundTruth{},
	}))
	t.Cleanup(e.Close)
	p, err := mipp.NewProfiler().Profile("mcf", testUops)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register("mcf", p); err != nil {
		t.Fatal(err)
	}
	return New(e), e
}

func get(t *testing.T, srv http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestFidelityEndpointDisabled(t *testing.T) {
	rec := serve(t, "GET", "/v1/fidelity", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", rec.Code, rec.Body)
	}
	var resp api.FidelityResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || resp.Report != nil {
		t.Fatalf("disabled engine answered %+v", resp)
	}
	if resp.SchemaVersion != api.SchemaVersion {
		t.Fatalf("schema_version = %d", resp.SchemaVersion)
	}
}

func TestFidelityEndpoint(t *testing.T) {
	srv, _ := fidelityServer(t)

	// Serve one prediction through the handler so the sampler has history.
	body := `{"schema_version":1,"workload":"mcf","config":{"name":"reference"}}`
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/predict", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status = %d: %s", rec.Code, rec.Body)
	}

	rec = get(t, srv, "/v1/fidelity?wait=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("fidelity status = %d: %s", rec.Code, rec.Body)
	}
	var resp api.FidelityResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || resp.Report == nil {
		t.Fatalf("fidelity response = %+v", resp)
	}
	if resp.Report.Samples < 1 {
		t.Fatalf("Samples = %d, want >= 1", resp.Report.Samples)
	}
	if len(resp.Report.CPIComponents) != 5 {
		t.Fatalf("CPIComponents = %d, want 5", len(resp.Report.CPIComponents))
	}

	// The report is a pure function of the recorded set: a second GET is
	// byte-identical.
	again := get(t, srv, "/v1/fidelity?wait=1")
	if again.Body.String() != rec.Body.String() {
		t.Fatalf("fidelity report unstable:\n%s\nvs\n%s", rec.Body, again.Body)
	}

	// The healthz payload carries the same sample count.
	h := get(t, srv, "/healthz")
	var health struct {
		Fidelity *api.FidelityStats `json:"fidelity"`
	}
	if err := json.Unmarshal(h.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Fidelity == nil || health.Fidelity.Samples != resp.Report.Samples {
		t.Fatalf("healthz fidelity = %+v, report samples = %d", health.Fidelity, resp.Report.Samples)
	}

	// And the series are on /metrics.
	m := get(t, srv, "/metrics").Body.String()
	for _, series := range []string{
		"mipp_fidelity_samples_total",
		"mipp_fidelity_cpi_residual_bucket",
		"mipp_fidelity_budget_remaining",
	} {
		if !strings.Contains(m, series) {
			t.Errorf("missing %s in /metrics:\n%s", series, m)
		}
	}
}

func TestHealthzNoFidelitySection(t *testing.T) {
	rec := serve(t, "GET", "/healthz", "")
	if strings.Contains(rec.Body.String(), `"fidelity"`) {
		t.Fatalf("disabled engine leaked a fidelity section: %s", rec.Body)
	}
}
