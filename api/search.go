package api

import (
	"fmt"

	"mipp/search"
)

// The search wire vocabulary: /v1/search submits an asynchronous
// design-space search job against the engine's cached predictors,
// GET /v1/search/{id} polls it and DELETE /v1/search/{id} cancels it. The
// report DTOs alias mipp/search's types directly, so a search answered
// in-process and the same search answered over the wire marshal to
// byte-identical JSON for the same seed.

// SearchReport is the wire form of a finished search: best point, Pareto
// front over everything evaluated, evaluation count and convergence trace.
type SearchReport = search.Report

// SearchEval is one evaluated design point on the wire.
type SearchEval = search.Eval

// SearchTraceStep is one convergence-trace entry on the wire.
type SearchTraceStep = search.TraceStep

// StrategySpec selects and parameterizes a search strategy. Seed pins every
// random decision, which is what makes remote and local runs byte-identical.
// Zero-valued knobs take the strategy's defaults.
type StrategySpec struct {
	// Kind selects the optimizer: "exhaustive", "random", "hill" or
	// "genetic".
	Kind string `json:"kind"`
	// Seed drives every random decision of the run.
	Seed int64 `json:"seed,omitempty"`
	// Samples is the draw count for "random" (0 = the request budget).
	Samples int `json:"samples,omitempty"`
	// Restarts is the restart count for "hill".
	Restarts int `json:"restarts,omitempty"`
	// Population, Generations, MutationRate and Elite parameterize
	// "genetic".
	Population   int     `json:"population,omitempty"`
	Generations  int     `json:"generations,omitempty"`
	MutationRate float64 `json:"mutation_rate,omitempty"`
	Elite        int     `json:"elite,omitempty"`
}

// strategyKinds is the accepted strategy vocabulary.
var strategyKinds = map[string]bool{"exhaustive": true, "random": true, "hill": true, "genetic": true}

// Validate rejects unknown strategies and malformed knobs early.
func (s StrategySpec) Validate() error {
	if !strategyKinds[s.Kind] {
		return fmt.Errorf("api: unknown strategy %q (want %s)", s.Kind, nameList(strategyKinds))
	}
	if s.Samples < 0 || s.Restarts < 0 || s.Population < 0 || s.Generations < 0 || s.Elite < 0 {
		return fmt.Errorf("api: strategy %q has a negative parameter", s.Kind)
	}
	if s.MutationRate < 0 || s.MutationRate > 1 {
		return fmt.Errorf("api: strategy %q mutation_rate %g outside [0,1]", s.Kind, s.MutationRate)
	}
	return nil
}

// SearchRequest submits an asynchronous design-space search: one workload,
// one (usually parametric) space, one strategy, an objective and optional
// constraints. The response is a job handle to poll.
type SearchRequest struct {
	SchemaVersion int           `json:"schema_version"`
	Workload      string        `json:"workload"`
	Space         SpaceSpec     `json:"space"`
	Options       PredictorSpec `json:"options"`
	Strategy      StrategySpec  `json:"strategy"`
	// Objective is the scalar to minimize: "time" (default), "energy",
	// "edp" or "ed2p".
	Objective string `json:"objective,omitempty"`
	// CapWatts and MaxArea restrict the feasible region (0/absent = no
	// constraint).
	CapWatts *float64 `json:"cap_watts,omitempty"`
	MaxArea  *float64 `json:"max_area,omitempty"`
	// Budget caps unique evaluations (0 = strategy default behavior).
	Budget int `json:"budget,omitempty"`
	// Workers caps the evaluation worker pool (0 = engine default).
	Workers int `json:"workers,omitempty"`
}

// Validate checks version and shape; the space itself is validated when the
// job is admitted.
func (r *SearchRequest) Validate() error {
	if err := CheckVersion(r.SchemaVersion); err != nil {
		return err
	}
	if r.Workload == "" {
		return fmt.Errorf("api: search request has no workload")
	}
	if r.Space.Kind == "" {
		return fmt.Errorf("api: search request has no space")
	}
	if err := r.Strategy.Validate(); err != nil {
		return err
	}
	if err := search.Objective(r.Objective).Validate(); err != nil {
		return err
	}
	if r.Budget < 0 {
		return fmt.Errorf("api: search request has negative budget %d", r.Budget)
	}
	if r.CapWatts != nil && *r.CapWatts <= 0 {
		return fmt.Errorf("api: search request cap_watts must be positive")
	}
	if r.MaxArea != nil && *r.MaxArea <= 0 {
		return fmt.Errorf("api: search request max_area must be positive")
	}
	return r.Options.Validate()
}

// Search job states.
const (
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// SearchJob is a job snapshot: identity, state, live progress counters and
// — once done — the report.
type SearchJob struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	// SpaceSize is the cardinality of the space under search.
	SpaceSize int `json:"space_size"`
	// Evaluations and Generations are live progress counters.
	Evaluations int `json:"evaluations"`
	Generations int `json:"generations"`
	// Error is set when State is "failed".
	Error string `json:"error,omitempty"`
	// Report is set when State is "done".
	Report *SearchReport `json:"report,omitempty"`
}

// Terminal reports whether the job has finished (done, failed or
// cancelled).
func (j *SearchJob) Terminal() bool {
	return j.State == JobDone || j.State == JobFailed || j.State == JobCancelled
}

// SearchJobResponse is the envelope of every /v1/search interaction:
// submission, polling and cancellation all answer with a job snapshot.
type SearchJobResponse struct {
	SchemaVersion int       `json:"schema_version"`
	Job           SearchJob `json:"job"`
}
