package obs

import (
	"fmt"
	"strings"
	"sync"
)

// A vec is a family of series sharing one metric name whose label VALUES
// are only known at run time — one fidelity error gauge per registered
// workload, one sample counter per workload. The metric name and label KEYS
// are still fixed at construction (obshygiene's grep-able-namespace rule),
// so cardinality is bounded by the live value set, and With is the only
// run-time registration path: it takes the vec's own lock, registers the
// series on first use, and returns the cached instrument forever after.
//
// With locks and allocates on first use of a value set — it is registry
// registration, not a hot-path operation. Callers on measured paths must
// hold the returned instrument rather than calling With per observation.

// vecCore is the shared (registry, name, keys, series-cache) state of
// CounterVec and GaugeVec.
type vecCore struct {
	reg  *Registry
	name string
	help string
	keys []string

	mu     sync.Mutex
	series map[string]int // joined values -> index into the typed store
}

func newVecCore(reg *Registry, name, help string, keys []string) vecCore {
	if len(keys) == 0 {
		panic(fmt.Sprintf("obs: vec %q needs at least one label key", name))
	}
	return vecCore{
		reg:    reg,
		name:   name,
		help:   help,
		keys:   append([]string(nil), keys...),
		series: make(map[string]int),
	}
}

// lookup returns the cached series index for values, or -1 with the labels
// to register. The caller holds v.mu.
func (v *vecCore) lookup(values []string) (int, []Label) {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: vec %q got %d label values for %d keys", v.name, len(values), len(v.keys)))
	}
	key := strings.Join(values, "\xff")
	if i, ok := v.series[key]; ok {
		return i, nil
	}
	labels := make([]Label, len(v.keys))
	for i, k := range v.keys {
		labels[i] = Label{Key: k, Value: values[i]}
	}
	v.series[key] = len(v.series)
	return -1, labels
}

// CounterVec is a counter family with run-time label values.
type CounterVec struct {
	core     vecCore
	counters []*Counter
}

// CounterVec creates a counter family on the registry. The name and label
// keys are fixed now; each distinct value set registers its series on first
// With.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	return &CounterVec{core: newVecCore(r, name, help, keys)}
}

// With returns the counter for the given label values, registering it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	v.core.mu.Lock()
	defer v.core.mu.Unlock()
	i, labels := v.core.lookup(values)
	if i >= 0 {
		return v.counters[i]
	}
	c := v.core.reg.Counter(v.core.name, v.core.help, labels...)
	v.counters = append(v.counters, c)
	return c
}

// GaugeVec is a gauge family with run-time label values.
type GaugeVec struct {
	core   vecCore
	gauges []*Gauge
}

// GaugeVec creates a gauge family on the registry. The name and label keys
// are fixed now; each distinct value set registers its series on first With.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	return &GaugeVec{core: newVecCore(r, name, help, keys)}
}

// With returns the gauge for the given label values, registering it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	v.core.mu.Lock()
	defer v.core.mu.Unlock()
	i, labels := v.core.lookup(values)
	if i >= 0 {
		return v.gauges[i]
	}
	g := v.core.reg.Gauge(v.core.name, v.core.help, labels...)
	v.gauges = append(v.gauges, g)
	return g
}
