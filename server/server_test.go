package server

// Handler table tests: golden JSON for the error envelopes, malformed-body
// and version-mismatch rejection, and engine-equivalence for the success
// paths (the handler must return exactly the bytes the engine's response
// marshals to).

import (
	"context"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mipp"
	"mipp/api"
	"mipp/store"
)

const testUops = 30_000

var testEngineOnce struct {
	sync.Once
	engine *mipp.Engine
	err    error
}

// testEngine shares one profiled engine across handler tests.
func testEngine(t *testing.T) *mipp.Engine {
	t.Helper()
	testEngineOnce.Do(func() {
		e := mipp.NewEngine()
		for _, w := range []string{"mcf", "gcc"} {
			p, err := mipp.NewProfiler().Profile(w, testUops)
			if err != nil {
				testEngineOnce.err = err
				return
			}
			if err := e.Register(w, p); err != nil {
				testEngineOnce.err = err
				return
			}
		}
		testEngineOnce.engine = e
	})
	if testEngineOnce.err != nil {
		t.Fatal(testEngineOnce.err)
	}
	return testEngineOnce.engine
}

func serve(t *testing.T, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	srv := New(testEngine(t))
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestHandlerErrorTable(t *testing.T) {
	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		// wantGolden, when set, must equal the whole response body
		// (trailing newline aside).
		wantGolden string
		// wantContains, when set, must appear in the error message.
		wantContains string
	}{
		{
			name:   "version mismatch",
			method: "POST", path: "/v1/predict",
			body:       `{"schema_version":99,"workload":"mcf","config":{"name":"reference"}}`,
			wantStatus: http.StatusBadRequest,
			wantGolden: `{"schema_version":1,"error":"mipp: bad request: api: unsupported schema version 99 (this build speaks 1)"}`,
		},
		{
			name:   "malformed body",
			method: "POST", path: "/v1/predict",
			body:         `{"schema_version":1,`,
			wantStatus:   http.StatusBadRequest,
			wantContains: "decode request",
		},
		{
			name:   "trailing garbage",
			method: "POST", path: "/v1/predict",
			body:         `{"schema_version":1,"workload":"mcf","config":{"name":"reference"}} extra`,
			wantStatus:   http.StatusBadRequest,
			wantContains: "trailing data",
		},
		{
			name:   "unknown field",
			method: "POST", path: "/v1/predict",
			body:         `{"schema_version":1,"workload":"mcf","config":{"name":"reference"},"turbo":true}`,
			wantStatus:   http.StatusBadRequest,
			wantContains: "unknown field",
		},
		{
			name:   "unknown workload",
			method: "POST", path: "/v1/predict",
			body:       `{"schema_version":1,"workload":"nope","config":{"name":"reference"}}`,
			wantStatus: http.StatusNotFound,
			wantGolden: `{"schema_version":1,"error":"mipp: unknown workload: \"nope\" (registered: [gcc mcf])"}`,
		},
		{
			name:   "unknown stock config",
			method: "POST", path: "/v1/predict",
			body:         `{"schema_version":1,"workload":"mcf","config":{"name":"cray-1"}}`,
			wantStatus:   http.StatusBadRequest,
			wantContains: "unknown stock config",
		},
		{
			name:   "sweep without configs",
			method: "POST", path: "/v1/sweep",
			body:         `{"schema_version":1,"workload":"mcf"}`,
			wantStatus:   http.StatusBadRequest,
			wantContains: "no configurations",
		},
		{
			name:   "batch without workloads",
			method: "POST", path: "/v1/evaluate",
			body:         `{"schema_version":1,"configs":[{"name":"reference"}]}`,
			wantStatus:   http.StatusBadRequest,
			wantContains: "no workloads",
		},
		{
			name:   "bad option name",
			method: "POST", path: "/v1/sweep",
			body:         `{"schema_version":1,"workload":"mcf","space":{"kind":"design"},"options":{"mlp_mode":"warp"}}`,
			wantStatus:   http.StatusBadRequest,
			wantContains: "unknown mlp_mode",
		},
		{
			name:   "method not allowed",
			method: "GET", path: "/v1/predict",
			wantStatus: http.StatusMethodNotAllowed,
		},
		{
			name:   "unknown route",
			method: "GET", path: "/v2/predict",
			wantStatus: http.StatusNotFound,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rec := serve(t, tc.method, tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			body := strings.TrimSpace(rec.Body.String())
			if tc.wantGolden != "" && body != tc.wantGolden {
				t.Errorf("body = %s\nwant  %s", body, tc.wantGolden)
			}
			if tc.wantContains != "" && !strings.Contains(body, tc.wantContains) {
				t.Errorf("body %s does not contain %q", body, tc.wantContains)
			}
		})
	}
}

// Oversized bodies get 413, not 400 — clients must be able to tell "shrink
// the upload" from "fix the JSON".
func TestBodyTooLarge(t *testing.T) {
	srv := New(testEngine(t), WithMaxBodyBytes(64))
	body := `{"schema_version":1,"workload":"mcf","config":{"name":"reference"},"options":{}}`
	req := httptest.NewRequest("POST", "/v1/predict", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %s)", rec.Code, rec.Body.String())
	}
}

func TestHealthzGolden(t *testing.T) {
	rec := serve(t, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.SchemaVersion != api.SchemaVersion || h.Status != "ok" || h.Workloads != 2 {
		t.Errorf("healthz = %+v", h)
	}
}

// The success path must return exactly the engine's marshaled response.
func TestHandlersMatchEngine(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()

	predictReq := &api.PredictRequest{SchemaVersion: api.SchemaVersion, Workload: "mcf",
		Config: api.ConfigSpec{Name: "reference"}}
	sweepReq := &api.SweepRequest{SchemaVersion: api.SchemaVersion, Workload: "gcc",
		Space: &api.SpaceSpec{Kind: "dvfs"}}
	batchReq := &api.BatchRequest{SchemaVersion: api.SchemaVersion, Workloads: []string{"mcf", "gcc"},
		Configs: []api.ConfigSpec{{Name: "reference"}, {Name: "lowpower"}}}

	cases := []struct {
		path string
		req  any
		call func() (any, error)
	}{
		{"/v1/predict", predictReq, func() (any, error) { return e.Predict(ctx, predictReq) }},
		{"/v1/sweep", sweepReq, func() (any, error) { return e.Sweep(ctx, sweepReq) }},
		{"/v1/evaluate", batchReq, func() (any, error) { return e.Evaluate(ctx, batchReq) }},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			want, err := tc.call()
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			body, err := json.Marshal(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			rec := serve(t, "POST", tc.path, string(body))
			if rec.Code != http.StatusOK {
				t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
			}
			if got := strings.TrimSpace(rec.Body.String()); got != string(wantJSON) {
				t.Errorf("handler response differs from engine response\nhandler: %.200s\nengine:  %.200s", got, wantJSON)
			}
		})
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	rec := serve(t, "GET", "/v1/workloads", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp api.WorkloadsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Workloads) != 2 || resp.Workloads[0].Name != "gcc" || resp.Workloads[1].Name != "mcf" {
		t.Errorf("workloads = %+v, want sorted [gcc mcf]", resp.Workloads)
	}
	for _, w := range resp.Workloads {
		if w.Uops < testUops || w.MicroTraces == 0 {
			t.Errorf("workload info incomplete: %+v", w)
		}
	}
}

// TestSearchRoutes drives the async search surface over HTTP: submit, poll
// to completion, cancel taxonomy, healthz job counters and the job-ID
// request log lines.
func TestSearchRoutes(t *testing.T) {
	var logBuf strings.Builder
	logMu := &sync.Mutex{}
	engine := testEngine(t)
	srv := New(engine, WithLogger(log.New(lockedWriter{&logBuf, logMu}, "", 0)))

	do := func(method, path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}

	rec := do("POST", "/v1/search",
		`{"schema_version":1,"workload":"mcf","space":{"kind":"design"},"strategy":{"kind":"random","seed":4,"samples":25}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("submit status = %d (%s)", rec.Code, rec.Body.String())
	}
	var sub api.SearchJobResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job.ID == "" || sub.Job.SpaceSize != 243 {
		t.Fatalf("submit job = %+v", sub.Job)
	}

	var fin api.SearchJobResponse
	for i := 0; i < 1000; i++ {
		rec = do("GET", "/v1/search/"+sub.Job.ID, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("poll status = %d (%s)", rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &fin); err != nil {
			t.Fatal(err)
		}
		if fin.Job.Terminal() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if fin.Job.State != api.JobDone || fin.Job.Report == nil || fin.Job.Report.Evaluations != 25 {
		t.Fatalf("final job = %+v", fin.Job)
	}

	if rec = do("GET", "/v1/search/job-unknown", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job poll status = %d", rec.Code)
	}
	if rec = do("DELETE", "/v1/search/"+sub.Job.ID, ""); rec.Code != http.StatusOK {
		t.Errorf("cancel of finished job status = %d (%s)", rec.Code, rec.Body.String())
	}

	rec = do("GET", "/healthz", "")
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.SearchJobsInFlight != 0 || h.SearchJobsCompleted == 0 {
		t.Errorf("healthz search counters = in-flight %d completed %d", h.SearchJobsInFlight, h.SearchJobsCompleted)
	}

	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logs, "search job "+sub.Job.ID+": submitted") {
		t.Errorf("request log lacks submit line with job ID:\n%s", logs)
	}
	if !strings.Contains(logs, "/v1/search/"+sub.Job.ID) {
		t.Errorf("request log lacks poll path with job ID:\n%s", logs)
	}
	if !strings.Contains(logs, "search job "+sub.Job.ID+": cancel requested") {
		t.Errorf("request log lacks cancel line with job ID:\n%s", logs)
	}
}

// lockedWriter serializes handler-goroutine log writes during the test.
type lockedWriter struct {
	w  *strings.Builder
	mu *sync.Mutex
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestProfileRoutes drives GET/DELETE /v1/profiles/{name} against both a
// plain in-memory engine and a store-backed one, including the /healthz
// store section and the 404 taxonomy.
func TestProfileRoutes(t *testing.T) {
	// Storeless engine: metadata is computed from the resident profile.
	rec := serve(t, "GET", "/v1/profiles/mcf", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET profile status = %d (%s)", rec.Code, rec.Body.String())
	}
	var info api.ProfileInfoResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	p := info.Profile
	if p.Name != "mcf" || !strings.HasPrefix(p.Digest, "sha256:") || p.SizeBytes <= 0 || !p.Resident {
		t.Fatalf("profile info = %+v", p)
	}
	if rec := serve(t, "GET", "/v1/profiles/nope", ""); rec.Code != http.StatusNotFound {
		t.Errorf("GET unknown profile status = %d", rec.Code)
	}

	// Store-backed engine: same surface plus durable delete and store
	// counters on /healthz.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	engine := mipp.NewEngine(mipp.WithEngineStore(st))
	prof, _ := testEngine(t).Profile("mcf")
	if err := engine.Register("mcf", prof); err != nil {
		t.Fatal(err)
	}
	srv := New(engine)
	do := func(method, path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}

	rec = do("GET", "/v1/profiles/mcf")
	var stored api.ProfileInfoResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stored); err != nil {
		t.Fatal(err)
	}
	// Content addressing: the store-backed daemon reports the same digest
	// as the in-memory one for the same profile.
	if stored.Profile.Digest != p.Digest || stored.Profile.SizeBytes != p.SizeBytes {
		t.Errorf("store digest %s/%d != in-memory digest %s/%d",
			stored.Profile.Digest, stored.Profile.SizeBytes, p.Digest, p.SizeBytes)
	}

	rec = do("GET", "/healthz")
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Store == nil || h.Store.Objects != 1 || h.Workloads != 1 {
		t.Fatalf("healthz store section = %+v (workloads %d)", h.Store, h.Workloads)
	}

	rec = do("DELETE", "/v1/profiles/mcf")
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE status = %d (%s)", rec.Code, rec.Body.String())
	}
	var del api.DeleteProfileResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &del); err != nil {
		t.Fatal(err)
	}
	if !del.Deleted || del.Name != "mcf" {
		t.Errorf("delete response = %+v", del)
	}
	if rec := do("DELETE", "/v1/profiles/mcf"); rec.Code != http.StatusNotFound {
		t.Errorf("second DELETE status = %d", rec.Code)
	}
	if rec := do("GET", "/v1/profiles/mcf"); rec.Code != http.StatusNotFound {
		t.Errorf("GET after DELETE status = %d", rec.Code)
	}
	rec = do("GET", "/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Store == nil || h.Store.Objects != 0 {
		t.Errorf("healthz store section after delete = %+v", h.Store)
	}

	// The storeless /healthz must omit the store section entirely.
	rec = serve(t, "GET", "/healthz", "")
	if strings.Contains(rec.Body.String(), `"store"`) {
		t.Errorf("storeless healthz has a store section: %s", rec.Body.String())
	}
}
