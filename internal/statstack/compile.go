package statstack

import (
	"mipp/internal/cache"
	"mipp/internal/profiler"
)

// CurveSet is the config-invariant compilation of one profile's reuse
// behaviour: the combined reuse→stack curve, the per-burst curves (§5.4.1)
// and the instruction-side curve. Every curve depends only on the profile,
// so a CurveSet is built once and then queried for any number of cache
// geometries — the curve construction that used to dominate Predict moves
// out of the per-configuration loop entirely.
//
// A CurveSet is immutable after Compile and safe for concurrent use.
type CurveSet struct {
	profile *profiler.Profile
	// Curve is the combined (loads+stores) reuse→stack curve, shared with
	// the MLP models.
	Curve *Curve

	bursts []burstCurve
	icurve *Curve // nil when the profile has no instruction-side reuse
}

// burstCurve pairs one reuse burst with its own reuse→stack curve, so phase
// changes in locality do not smear the prediction (§5.4.1).
type burstCurve struct {
	curve *Curve
	b     *profiler.ReuseBurst
}

// Compile builds every reuse→stack curve a profile needs: the combined
// curve, one per non-empty burst, and the instruction-side curve.
func Compile(p *profiler.Profile) *CurveSet {
	cs := &CurveSet{profile: p, Curve: New(p.ReuseAll)}
	for _, b := range p.Bursts {
		if b.Loads+b.Stores == 0 {
			continue
		}
		cs.bursts = append(cs.bursts, burstCurve{New(b.All), b})
	}
	if p.ReuseInstr.Total() > 0 || p.ColdInstr > 0 {
		cs.icurve = New(p.ReuseInstr)
	}
	return cs
}

// Predict estimates miss ratios for every level of a data-cache hierarchy
// plus the L1I, reusing the precompiled curves. It returns exactly what the
// package-level Predict returns for the same profile and geometry.
func (cs *CurveSet) Predict(levels []cache.Config, l1i cache.Config) *Prediction {
	p := cs.profile
	out := &Prediction{Curve: cs.Curve}
	for _, cfg := range levels {
		lines := float64(cfg.Lines())
		ls := LevelStats{Config: cfg}
		if len(cs.bursts) > 0 {
			var loadMiss, storeMiss float64
			for _, bc := range cs.bursts {
				loadMiss += bc.curve.MissRatio(bc.b.Load, float64(bc.b.ColdLoad), lines) * float64(bc.b.Loads)
				storeMiss += bc.curve.MissRatio(bc.b.Store, float64(bc.b.ColdStore), lines) * float64(bc.b.Stores)
			}
			ls.LoadMisses = loadMiss
			ls.StoreMisses = storeMiss
			if p.LoadCount > 0 {
				ls.LoadMissRatio = loadMiss / float64(p.LoadCount)
			}
			if p.StoreCount > 0 {
				ls.StoreMissRatio = storeMiss / float64(p.StoreCount)
			}
		} else {
			ls.LoadMissRatio = cs.Curve.MissRatio(p.ReuseLoad, float64(p.ColdLoads), lines)
			ls.StoreMissRatio = cs.Curve.MissRatio(p.ReuseStore, float64(p.ColdStores), lines)
			ls.LoadMisses = ls.LoadMissRatio * float64(p.LoadCount)
			ls.StoreMisses = ls.StoreMissRatio * float64(p.StoreCount)
		}
		ls.Misses = ls.LoadMisses + ls.StoreMisses
		if p.MemAccesses > 0 {
			ls.MissRatio = ls.Misses / float64(p.MemAccesses)
		}
		if p.TotalInstrs > 0 {
			ls.MPKI = ls.Misses / float64(p.TotalInstrs) * 1000
		}
		out.Levels = append(out.Levels, ls)
	}
	// Instruction side: its own curve over the fetch-line stream.
	if cs.icurve != nil {
		ratio := cs.icurve.MissRatio(p.ReuseInstr, float64(p.ColdInstr), float64(l1i.Lines()))
		if p.TotalInstrs > 0 {
			out.ICacheMPKI = ratio * float64(p.InstrFetch) / float64(p.TotalInstrs) * 1000
		}
	}
	if n := len(out.Levels); n > 0 {
		llc := out.Levels[n-1]
		if llc.LoadMisses > 0 {
			cold := float64(p.ColdLoads)
			if cold > llc.LoadMisses {
				cold = llc.LoadMisses
			}
			out.ColdFraction = cold / llc.LoadMisses
		}
	}
	return out
}
