package prefetch

import "testing"

func TestStrideDetection(t *testing.T) {
	p := NewStride(DefaultConfig())
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.Train(0x400, uint64(0x1000+64*i))
	}
	if len(got) == 0 {
		t.Fatal("confirmed stride issued no prefetches")
	}
	// Next addresses continue the +64 stride.
	if got[0] != 0x1000+64*6 {
		t.Errorf("prefetch addr %#x, want %#x", got[0], 0x1000+64*6)
	}
}

func TestNoPrefetchAcrossPage(t *testing.T) {
	cfg := DefaultConfig()
	p := NewStride(cfg)
	// Stride of 3000 bytes: second prefetch would cross the 4KB page.
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.Train(0x400, uint64(0x10000+3000*i))
	}
	for _, a := range got {
		base := uint64(0x10000 + 3000*5)
		if a/cfg.PageBytes != base/cfg.PageBytes {
			t.Errorf("prefetch %#x crosses the page of %#x", a, base)
		}
	}
}

func TestRandomPatternNoPrefetch(t *testing.T) {
	p := NewStride(DefaultConfig())
	addrs := []uint64{0x1000, 0x9000, 0x2000, 0xF000, 0x3000, 0x30000}
	for _, a := range addrs {
		if got := p.Train(0x400, a); len(got) != 0 {
			t.Errorf("random pattern prefetched %v", got)
		}
	}
}

func TestTableEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TableSize = 4
	p := NewStride(cfg)
	// Train 5 PCs round-robin: with table 4, a PC is evicted before it
	// recurs, so no stride is ever confirmed.
	for i := 0; i < 40; i++ {
		pc := uint64(0x400 + 8*(i%5))
		if got := p.Train(pc, uint64(0x1000+64*i)); len(got) != 0 {
			t.Errorf("evicted PC still prefetched: %v", got)
		}
	}
}

func TestDisabled(t *testing.T) {
	p := NewStride(Config{Enabled: false})
	for i := 0; i < 6; i++ {
		if got := p.Train(0x400, uint64(64*i)); got != nil {
			t.Error("disabled prefetcher issued prefetches")
		}
	}
}
