package lint_test

import (
	"testing"

	"mipp/internal/lint"
	"mipp/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata/hotpath", lint.Hotpath)
}

func TestHotpathFidelity(t *testing.T) {
	linttest.Run(t, "testdata/hotpathfidelity", lint.Hotpath)
}
