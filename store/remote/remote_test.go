package remote_test

// Remote store tests against a real mippd handler stack: catalog sync with
// conditional GETs (304 while unchanged), object round-trips with cache
// hits, change propagation both ways (origin mutations appear here,
// write-through Put/Delete appear there), LRU eviction, and the
// ObjectStore chaining surface.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"mipp"
	"mipp/server"
	"mipp/store"
	"mipp/store/remote"
)

const testUops = 20_000

var profileCache sync.Map

func testProfile(t *testing.T, workload string) *mipp.Profile {
	t.Helper()
	if p, ok := profileCache.Load(workload); ok {
		return p.(*mipp.Profile)
	}
	p, err := mipp.NewProfiler().Profile(workload, testUops)
	if err != nil {
		t.Fatalf("profile %s: %v", workload, err)
	}
	profileCache.Store(workload, p)
	return p
}

// origin is a mippd with a durable store, plus counters on its /v1/store
// traffic.
type origin struct {
	engine   *mipp.Engine
	ts       *httptest.Server
	index200 atomic.Int64
	index304 atomic.Int64
	objects  atomic.Int64
}

func newOrigin(t *testing.T) *origin {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := &origin{engine: mipp.NewEngine(mipp.WithEngineStore(st))}
	srv := server.New(o.engine)
	o.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/store/index":
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, r)
			if rec.Code == http.StatusNotModified {
				o.index304.Add(1)
			} else {
				o.index200.Add(1)
			}
			for k, v := range rec.Header() {
				w.Header()[k] = v
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(rec.Body.Bytes())
		default:
			if r.Method == http.MethodGet && len(r.URL.Path) > len("/v1/store/objects/") &&
				r.URL.Path[:len("/v1/store/objects/")] == "/v1/store/objects/" {
				o.objects.Add(1)
			}
			srv.ServeHTTP(w, r)
		}
	}))
	t.Cleanup(o.ts.Close)
	return o
}

func canonical(t *testing.T, p *mipp.Profile) string {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRemoteRoundTripAndCache(t *testing.T) {
	o := newOrigin(t)
	p := testProfile(t, "mcf")
	if err := o.engine.Register("mcf", p); err != nil {
		t.Fatal(err)
	}
	wantInfo, _ := o.engine.ProfileStore().Info("mcf")

	rs := remote.New(o.ts.URL, remote.WithRevalidateEvery(0))
	got, ok, err := rs.Get("mcf")
	if err != nil || !ok {
		t.Fatalf("Get(mcf) = ok=%v err=%v", ok, err)
	}
	if canonical(t, got) != canonical(t, p) {
		t.Error("remote profile differs from the origin's")
	}
	info, ok := rs.Info("mcf")
	if !ok || info.Digest != wantInfo.Digest || info.SizeBytes != wantInfo.SizeBytes {
		t.Fatalf("Info = %+v ok=%v, want digest %s", info, ok, wantInfo.Digest)
	}
	if !info.Resident {
		t.Error("fetched profile not reported resident in the local cache")
	}

	// A second Get must come from the cache: no extra object fetch.
	fetches := o.objects.Load()
	if _, ok, err := rs.Get("mcf"); !ok || err != nil {
		t.Fatalf("second Get failed: ok=%v err=%v", ok, err)
	}
	if o.objects.Load() != fetches {
		t.Errorf("cache hit still fetched the object (%d -> %d fetches)", fetches, o.objects.Load())
	}
	st := rs.Stats()
	if st.Loads != 1 || st.Hits < 1 || st.Objects != 1 {
		t.Errorf("stats = %+v, want 1 load, ≥1 hit, 1 object", st)
	}
}

func TestRemoteChangeNotification(t *testing.T) {
	o := newOrigin(t)
	if err := o.engine.Register("mcf", testProfile(t, "mcf")); err != nil {
		t.Fatal(err)
	}
	rs := remote.New(o.ts.URL, remote.WithRevalidateEvery(0))
	if names := rs.Names(); len(names) != 1 || names[0] != "mcf" {
		t.Fatalf("Names = %v", names)
	}
	gen1 := rs.Generation()

	// An unchanged catalog revalidates with a 304, not a re-listing.
	full := o.index200.Load()
	rs.Names()
	rs.Names()
	if o.index200.Load() != full {
		t.Errorf("unchanged catalog was re-listed (%d -> %d full responses)", full, o.index200.Load())
	}
	if o.index304.Load() == 0 {
		t.Error("no conditional 304s observed")
	}

	// A new registration on the origin bumps the generation and appears on
	// the next revalidation.
	if err := o.engine.Register("gcc", testProfile(t, "gcc")); err != nil {
		t.Fatal(err)
	}
	if names := rs.Names(); len(names) != 2 {
		t.Fatalf("Names after origin register = %v", names)
	}
	if gen2 := rs.Generation(); gen2 <= gen1 {
		t.Errorf("generation %d after change, want > %d", gen2, gen1)
	}

	// A deletion disappears the same way.
	if _, err := o.engine.DeleteProfile(t.Context(), "mcf"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rs.Get("mcf"); ok || err != nil {
		t.Errorf("Get(deleted) = ok=%v err=%v, want false,nil", ok, err)
	}
}

func TestRemoteWriteThrough(t *testing.T) {
	o := newOrigin(t)
	rs := remote.New(o.ts.URL, remote.WithRevalidateEvery(0))
	p := testProfile(t, "mcf")

	info, err := rs.Put("uploaded", p)
	if err != nil {
		t.Fatal(err)
	}
	oinfo, ok := o.engine.ProfileStore().Info("uploaded")
	if !ok || oinfo.Digest != info.Digest {
		t.Fatalf("origin info = %+v ok=%v, want digest %s", oinfo, ok, info.Digest)
	}
	if _, ok := o.engine.Profile("uploaded"); !ok {
		t.Error("origin engine cannot serve the uploaded profile")
	}

	deleted, err := rs.Delete("uploaded")
	if err != nil || !deleted {
		t.Fatalf("Delete = %v, %v", deleted, err)
	}
	if _, ok := o.engine.Profile("uploaded"); ok {
		t.Error("origin still serves the deleted profile")
	}
	if again, err := rs.Delete("uploaded"); err != nil || again {
		t.Errorf("double Delete = %v, %v, want false,nil", again, err)
	}
}

func TestRemoteEviction(t *testing.T) {
	o := newOrigin(t)
	mcf, gcc := testProfile(t, "mcf"), testProfile(t, "gcc")
	if err := o.engine.Register("mcf", mcf); err != nil {
		t.Fatal(err)
	}
	if err := o.engine.Register("gcc", gcc); err != nil {
		t.Fatal(err)
	}
	// Budget for one profile only: loading the second evicts the first.
	bound := int64(len(canonical(t, mcf))) + 1
	rs := remote.New(o.ts.URL, remote.WithRevalidateEvery(0), remote.WithMaxCachedBytes(bound))
	if _, ok, err := rs.Get("mcf"); !ok || err != nil {
		t.Fatal(ok, err)
	}
	if _, ok, err := rs.Get("gcc"); !ok || err != nil {
		t.Fatal(ok, err)
	}
	st := rs.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions under a one-profile budget: %+v", st)
	}
	if st.ResidentBytes > bound {
		t.Errorf("resident %d bytes exceeds the %d bound", st.ResidentBytes, bound)
	}
	// The evicted profile reloads transparently.
	if _, ok, err := rs.Get("mcf"); !ok || err != nil {
		t.Errorf("reload after eviction: ok=%v err=%v", ok, err)
	}
}

// TestRemoteChaining checks that a remote store itself satisfies the
// replication surface, so a remote-backed daemon can serve /v1/store to
// further peers.
func TestRemoteChaining(t *testing.T) {
	o := newOrigin(t)
	if err := o.engine.Register("mcf", testProfile(t, "mcf")); err != nil {
		t.Fatal(err)
	}
	var rs mipp.ObjectStore = remote.New(o.ts.URL, remote.WithRevalidateEvery(0))
	if rs.Generation() == 0 {
		t.Fatal("remote generation is zero after sync")
	}
	info, ok := rs.Info("mcf")
	if !ok {
		t.Fatal("no info for mcf")
	}
	data, ok, err := rs.GetObject(info.Digest)
	if err != nil || !ok {
		t.Fatalf("GetObject = ok=%v err=%v", ok, err)
	}
	if string(data) != canonical(t, testProfile(t, "mcf")) {
		t.Error("chained object bytes differ from the canonical envelope")
	}
	if _, ok, _ := rs.GetObject("sha256:0000"); ok {
		t.Error("unknown digest served")
	}
}

func TestRemoteOriginDown(t *testing.T) {
	o := newOrigin(t)
	if err := o.engine.Register("mcf", testProfile(t, "mcf")); err != nil {
		t.Fatal(err)
	}
	rs := remote.New(o.ts.URL, remote.WithRevalidateEvery(0))
	if _, ok, err := rs.Get("mcf"); !ok || err != nil {
		t.Fatal(ok, err)
	}
	o.ts.Close()
	// A cached profile keeps serving through the outage (stale catalog).
	if _, ok, err := rs.Get("mcf"); !ok || err != nil {
		t.Errorf("cached Get during outage: ok=%v err=%v", ok, err)
	}
	// A never-synced store reports the connection error instead.
	cold := remote.New(o.ts.URL, remote.WithRevalidateEvery(0))
	if _, _, err := cold.Get("mcf"); err == nil {
		t.Error("cold store against a dead origin returned no error")
	}
}
