package mipp

// ProfileStore is the persistence seam of an Engine: a durable,
// shared registry of named workload profiles. mipp/store implements it as a
// content-addressed on-disk store; an Engine built with WithEngineStore
// writes every registration through and resolves unknown workload names by
// lazy-loading, so a restarted daemon serves its whole catalog without
// re-profiling.
//
// Implementations must be safe for concurrent use; Get of an evicted or
// not-yet-resident entry is expected to block only callers of that entry.
type ProfileStore interface {
	// Put durably stores p under name and makes it resident, returning
	// the stored entry's metadata.
	Put(name string, p *Profile) (ProfileStoreInfo, error)
	// Get returns the profile stored under name, loading it from durable
	// storage when it is not resident. The bool reports whether the name
	// exists; the error reports load failures (unreadable or corrupt
	// objects) for names that do exist.
	Get(name string) (*Profile, bool, error)
	// Delete removes name and, when unreferenced, its underlying object,
	// reporting whether the name existed.
	Delete(name string) (bool, error)
	// Info returns the stored entry's metadata without loading its body.
	Info(name string) (ProfileStoreInfo, bool)
	// Names lists the stored profile names, sorted.
	Names() []string
	// Stats snapshots store counters for /healthz and operators.
	Stats() StoreStats
}

// ObjectStore is the optional replication extension of a ProfileStore:
// content-addressed access to the raw canonical envelopes plus a monotonic
// change token. A daemon whose store implements it serves the /v1/store
// endpoints peers replicate from (mipp/store/remote is the consumer);
// mipp/store implements it.
type ObjectStore interface {
	ProfileStore
	// Generation is the catalog's monotonic change token: it increases on
	// every registration or deletion, across every process sharing the
	// store. Equal generations mean an unchanged catalog.
	Generation() uint64
	// GetObject returns the canonical schema-v1 JSON envelope stored
	// under digest ("sha256:" + hex). The bool reports whether the digest
	// is referenced by any stored name; the error reports read failures
	// or corruption for referenced objects.
	GetObject(digest string) ([]byte, bool, error)
}

// ProfileStoreInfo is the metadata of one stored profile, kept in the
// store's index so listing and GET /v1/profiles/{name} never load bodies.
type ProfileStoreInfo struct {
	// Name is the registry name the profile is stored under.
	Name string
	// Digest is the content address: "sha256:" + hex of the SHA-256 of
	// the profile's canonical schema-v1 JSON envelope.
	Digest string
	// SizeBytes is the canonical envelope's size.
	SizeBytes int64
	// Workload, Uops, Instructions, Entropy and MicroTraces mirror the
	// profile's own summary accessors, captured at Put time.
	Workload     string
	Uops         int64
	Instructions int64
	Entropy      float64
	MicroTraces  int
	// Resident reports whether the decoded profile is currently held in
	// memory (false after LRU eviction; the next Get reloads it).
	Resident bool
}

// StoreStats snapshots a ProfileStore's counters.
type StoreStats struct {
	// Objects is the number of stored profiles (index entries).
	Objects int
	// ResidentEntries and ResidentBytes describe the decoded profiles
	// currently held in memory; MaxResidentBytes is the configured LRU
	// bound (0 = unbounded).
	ResidentEntries  int
	ResidentBytes    int64
	MaxResidentBytes int64
	// Hits and Misses count Get lookups answered from resident memory
	// vs. those that had to load from durable storage.
	Hits, Misses uint64
	// Loads counts completed disk loads (a miss whose load another
	// concurrent caller performed does not re-count).
	Loads uint64
	// Evictions and EvictedBytes count entries pushed out of resident
	// memory by the LRU bound since the store was opened.
	Evictions    uint64
	EvictedBytes uint64
	// Revalidations304 and RevalidationsFull count index revalidations a
	// remote store performed against its peer: conditional GETs answered
	// 304 Not Modified vs. full index fetches. Local on-disk stores report
	// zero for both.
	Revalidations304  uint64
	RevalidationsFull uint64
}
