package mlp

import (
	"testing"

	"mipp/internal/config"
	"mipp/internal/prefetch"
	"mipp/internal/profiler"
	"mipp/internal/statstack"
	"mipp/internal/workload"
)

func paramsFor(cfg *config.Config, mode Mode) Params {
	return Params{
		ROB:        cfg.ROB,
		MSHRs:      cfg.MSHRs,
		MemLatency: cfg.MemConfig().LatencyCycles,
		BusPerLine: cfg.MemConfig().BusCyclesPerLine,
		L1Lines:    float64(cfg.L1D.Lines()),
		L2Lines:    float64(cfg.L2.Lines()),
		LLCLines:   float64(cfg.L3.Lines()),
		LoadFrac:   0.3,
		Prefetch:   cfg.Prefetcher,
		Mode:       mode,
	}
}

func evalWorkload(t *testing.T, name string, mode Mode) []MicroMem {
	t.Helper()
	s := workload.MustGenerate(name, 60_000, 0)
	p := profiler.Run(s, profiler.Options{})
	cfg := config.Reference()
	pred := statstack.Predict(p, cfg.CacheLevels(), cfg.L1I)
	prm := paramsFor(cfg, mode)
	prm.LoadFrac = p.LoadFrac()
	var out []MicroMem
	for _, m := range p.Micros {
		out = append(out, Evaluate(p, m, pred.Curve, prm))
	}
	return out
}

func TestMLPAlwaysAtLeastOne(t *testing.T) {
	for _, mode := range []Mode{ColdMiss, StrideMLP, None} {
		for _, mm := range evalWorkload(t, "gcc", mode) {
			if mm.MLP < 1 {
				t.Fatalf("%v: MLP %.3f < 1", mode, mm.MLP)
			}
		}
	}
}

func TestStreamingMLPExceedsChasing(t *testing.T) {
	stream := evalWorkload(t, "libquantum", StrideMLP)
	chase := evalWorkload(t, "mcf", StrideMLP)
	avg := func(ms []MicroMem) float64 {
		s, w := 0.0, 0.0
		for _, m := range ms {
			miss := m.MissPerLoad * m.Loads
			s += m.MLP * miss
			w += miss
		}
		if w == 0 {
			return 1
		}
		return s / w
	}
	if avg(stream) <= avg(chase)+0.5 {
		t.Errorf("libquantum MLP %.2f should clearly exceed mcf %.2f", avg(stream), avg(chase))
	}
	if avg(chase) > 2.0 {
		t.Errorf("single-chain mcf MLP %.2f should stay near 1", avg(chase))
	}
}

func TestMSHRCapBounds(t *testing.T) {
	prm := Params{MSHRs: 10, MemLatency: 200}
	if got := mshrCap(5, prm); got != 5 {
		t.Errorf("below cap changed: %v", got)
	}
	capped := mshrCap(40, prm)
	if capped < 10 || capped > 15 {
		t.Errorf("soft cap of raw 40 = %v, want within [10, 15]", capped)
	}
	// Monotone in raw.
	if mshrCap(20, prm) > capped {
		t.Error("cap not monotone")
	}
}

func TestBusLatencyEquation(t *testing.T) {
	// Eq 4.5: (MLP'+1)/2 * transfer.
	if got := BusLatency(1, 8); got != 8 {
		t.Errorf("single access bus latency %v, want 8", got)
	}
	if got := BusLatency(3, 8); got != 16 {
		t.Errorf("MLP'=3 bus latency %v, want 16", got)
	}
	if got := BusLatency(0.5, 8); got != 8 {
		t.Errorf("sub-1 MLP' clamps to one transfer: %v", got)
	}
}

func TestRescaleForStores(t *testing.T) {
	if got := RescaleForStores(2, 100, 50); got != 3 {
		t.Errorf("Eq 4.6 rescale = %v, want 3", got)
	}
	if got := RescaleForStores(2, 0, 50); got != 2 {
		t.Errorf("no load misses should leave MLP: %v", got)
	}
}

func TestPrefetcherCoversStreaming(t *testing.T) {
	cfg := config.ReferenceWithPrefetcher()
	s := workload.MustGenerate("libquantum", 60_000, 0)
	p := profiler.Run(s, profiler.Options{})
	pred := statstack.Predict(p, cfg.CacheLevels(), cfg.L1I)
	prm := paramsFor(cfg, StrideMLP)
	prm.LoadFrac = p.LoadFrac()
	prm.Prefetch = prefetch.DefaultConfig()
	var covered, misses float64
	for _, m := range p.Micros {
		mm := Evaluate(p, m, pred.Curve, prm)
		miss := mm.MissPerLoad * mm.Loads
		covered += (mm.PrefetchTimely + mm.PrefetchPartial) * miss
		misses += miss
	}
	if misses == 0 {
		t.Fatal("no misses predicted")
	}
	if covered/misses < 0.5 {
		t.Errorf("prefetch coverage %.2f for pure streaming, want > 0.5", covered/misses)
	}
}

func TestPrefetcherIgnoresPointerChasing(t *testing.T) {
	cfg := config.ReferenceWithPrefetcher()
	s := workload.MustGenerate("mcf", 60_000, 0)
	p := profiler.Run(s, profiler.Options{})
	pred := statstack.Predict(p, cfg.CacheLevels(), cfg.L1I)
	prm := paramsFor(cfg, StrideMLP)
	prm.LoadFrac = p.LoadFrac()
	prm.Prefetch = prefetch.DefaultConfig()
	var covered, misses float64
	for _, m := range p.Micros {
		mm := Evaluate(p, m, pred.Curve, prm)
		miss := mm.MissPerLoad * mm.Loads
		covered += (mm.PrefetchTimely + mm.PrefetchPartial) * miss
		misses += miss
	}
	if misses > 0 && covered/misses > 0.3 {
		t.Errorf("prefetch coverage %.2f for random pointer chase, want < 0.3", covered/misses)
	}
}

func TestMispredictWindowTruncation(t *testing.T) {
	prm := Params{ROB: 128, MispredictEvery: 30}
	if w := prm.window(); w != 30 {
		t.Errorf("window = %d, want 30", w)
	}
	prm.MispredictEvery = 500
	if w := prm.window(); w != 128 {
		t.Errorf("window = %d, want ROB 128", w)
	}
	prm.MispredictEvery = 2
	if w := prm.window(); w != 8 {
		t.Errorf("window floor = %d, want 8", w)
	}
}
