package router

// Ring unit tests: deterministic placement, reasonable spread, the
// consistent-hashing stability property (losing a member only moves that
// member's keys), and bounded-load spill.

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("workload-%d", i)
	}
	return keys
}

func testRing() *ring {
	return newRing([]string{"http://a:8091", "http://b:8091", "http://c:8091"}, 0, 0)
}

func TestRingDeterministicPlacement(t *testing.T) {
	r1, r2 := testRing(), testRing()
	for _, key := range testKeys(64) {
		m1, m2 := r1.pick(key), r2.pick(key)
		if m1 == nil || m2 == nil || m1.url != m2.url {
			t.Fatalf("key %q placed differently: %v vs %v", key, m1, m2)
		}
		if again := r1.pick(key); again.url != m1.url {
			t.Fatalf("key %q moved between idle picks: %s -> %s", key, m1.url, again.url)
		}
	}
}

func TestRingSpread(t *testing.T) {
	r := testRing()
	counts := make(map[string]int)
	for _, key := range testKeys(300) {
		counts[r.pick(key).url] = counts[r.pick(key).url] + 1
	}
	if len(counts) != 3 {
		t.Fatalf("only %d members received keys: %v", len(counts), counts)
	}
	for url, n := range counts {
		if n < 30 {
			t.Errorf("member %s got %d/300 keys: spread too skewed (%v)", url, n, counts)
		}
	}
}

// TestRingStabilityOnLoss is the consistent-hashing property: when one
// member goes down, its keys rehash onto survivors and every other key
// stays where it was.
func TestRingStabilityOnLoss(t *testing.T) {
	r := testRing()
	keys := testKeys(200)
	before := make(map[string]string, len(keys))
	for _, key := range keys {
		before[key] = r.pick(key).url
	}
	down := r.members[1]
	down.markDown()
	moved := 0
	for _, key := range keys {
		m := r.pick(key)
		if m.url == down.url {
			t.Fatalf("key %q placed on the down member", key)
		}
		if before[key] != down.url {
			if m.url != before[key] {
				t.Errorf("key %q moved from healthy %s to %s on an unrelated failure", key, before[key], m.url)
			}
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Error("the down member owned no keys; test is vacuous")
	}

	// Recovery restores the original placement exactly.
	down.healthy.Store(true)
	for _, key := range keys {
		if m := r.pick(key); m.url != before[key] {
			t.Errorf("key %q did not return to %s after recovery (got %s)", key, before[key], m.url)
		}
	}
}

func TestRingBoundedLoadSpill(t *testing.T) {
	r := testRing()
	key := "workload-hot"
	home := r.pick(key)
	// Pile inflight onto the home member far past any fair share: the next
	// pick must spill to another healthy member instead of queueing behind
	// it.
	home.inflight.Add(100)
	spilled := r.pick(key)
	if spilled == nil || spilled.url == home.url {
		t.Fatalf("pick stayed on the overloaded member %s", home.url)
	}
	home.inflight.Add(-100)
	if back := r.pick(key); back.url != home.url {
		t.Errorf("pick did not return home after the load drained: %s", back.url)
	}
}

func TestRingAllDown(t *testing.T) {
	r := testRing()
	for _, m := range r.members {
		m.markDown()
	}
	if m := r.pick("anything"); m != nil {
		t.Fatalf("pick on a dead ring returned %s", m.url)
	}
}
