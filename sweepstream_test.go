package mipp_test

// SweepStream tests: the streamed items must be the envelope response cut
// into frames — same results, same per-item errors, same order — with
// admission failures surfacing before the sink's Start and sink errors
// aborting the run.

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"mipp"
	"mipp/api"
	"mipp/arch"
)

func TestSweepStreamMatchesEnvelope(t *testing.T) {
	e := newTestEngine(t, "mcf")
	bad := arch.Reference()
	bad.Name = "broken"
	bad.ROB = 0
	req := &api.SweepRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Configs: []api.ConfigSpec{
			{Name: "reference"},
			{Config: bad},
			{Name: "lowpower"},
			{Name: "reference+pf"},
		},
	}

	envelope, err := e.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	var (
		startWorkload string
		startCount    int
		items         []api.SweepItem
	)
	err = e.SweepStream(context.Background(), req, mipp.SweepSink{
		Start: func(workload string, count int) error {
			startWorkload, startCount = workload, count
			return nil
		},
		Item: func(item api.SweepItem) error {
			items = append(items, item)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if startWorkload != "mcf" || startCount != len(req.Configs) {
		t.Errorf("Start(%q, %d), want (mcf, %d)", startWorkload, startCount, len(req.Configs))
	}
	if len(items) != len(envelope.Results) {
		t.Fatalf("%d items for %d envelope results", len(items), len(envelope.Results))
	}
	for i, item := range items {
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
		got, _ := json.Marshal(item.Result)
		want, _ := json.Marshal(envelope.Results[i])
		if string(got) != string(want) {
			t.Errorf("item %d result differs from the envelope's:\n%s\n%s", i, got, want)
		}
	}
	for _, ie := range envelope.Errors {
		if items[ie.Index].Error != ie.Error {
			t.Errorf("item %d error %q, envelope says %q", ie.Index, items[ie.Index].Error, ie.Error)
		}
	}
}

func TestSweepStreamAdmissionBeforeStart(t *testing.T) {
	e := newTestEngine(t, "mcf")
	started := false
	err := e.SweepStream(context.Background(), &api.SweepRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "nope",
		Configs:       []api.ConfigSpec{{Name: "reference"}},
	}, mipp.SweepSink{
		Start: func(string, int) error { started = true; return nil },
		Item:  func(api.SweepItem) error { return nil },
	})
	if !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Fatalf("err = %v, want ErrUnknownWorkload", err)
	}
	if started {
		t.Error("Start was called for a request that failed admission")
	}
}

func TestSweepStreamSinkErrorAborts(t *testing.T) {
	e := newTestEngine(t, "mcf")
	boom := errors.New("client went away")
	seen := 0
	err := e.SweepStream(context.Background(), &api.SweepRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Space:         &api.SpaceSpec{Kind: "design"},
	}, mipp.SweepSink{
		Item: func(api.SweepItem) error {
			seen++
			if seen == 2 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
	if seen != 2 {
		t.Errorf("sink saw %d items after aborting at 2", seen)
	}
}
