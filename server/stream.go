package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"mipp"
	"mipp/api"
)

// The streaming handlers. Both run under the instrumented middleware, whose
// statusWriter forwards Flush, so every frame reaches the client as it is
// written.

// handleSweep dispatches POST /v1/sweep: the classic one-envelope response
// by default, NDJSON frames with ?stream=1.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	switch v := r.URL.Query().Get("stream"); v {
	case "":
		handleJSON(s, s.engine.Sweep)(w, r)
		return
	case "1", "true":
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad stream value %q (want 1)", v))
		return
	}
	req, ok := decodeRequest[api.SweepRequest](s, w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	started := false
	results, errCount := 0, 0
	sink := mipp.SweepSink{
		// The header is written by the engine's Start callback — after
		// admission succeeded — so a bad request or unknown workload
		// still gets the ordinary JSON error envelope below.
		Start: func(workload string, count int) error {
			started = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			if err := enc.Encode(api.SweepStreamHeader{
				SchemaVersion: api.SchemaVersion,
				Workload:      workload,
				Count:         count,
			}); err != nil {
				return err
			}
			flush()
			return nil
		},
		Item: func(item api.SweepItem) error {
			if item.Error != "" {
				errCount++
			} else {
				results++
			}
			if err := enc.Encode(item); err != nil {
				return err
			}
			flush()
			return nil
		},
	}
	err := s.engine.SweepStream(r.Context(), req, sink)
	switch {
	case err != nil && !started:
		s.writeError(w, statusFor(err), err)
		return
	case err != nil:
		// The stream is already open: report the run-level failure in the
		// trailer, the only channel left.
		_ = enc.Encode(api.SweepStreamTrailer{Done: true, Results: results, Errors: errCount, Error: err.Error()})
	default:
		_ = enc.Encode(api.SweepStreamTrailer{Done: true, Results: results, Errors: errCount})
	}
	flush()
}

// handleSearchEvents serves GET /v1/search/{id}/events as Server-Sent
// Events: each message's id is the event Seq, its event field the type,
// its data one api.SearchEvent. The stream replays retained events (from
// Last-Event-ID or ?after=), follows the job live, and ends after the
// terminal event — a finished job replays and closes immediately.
func (s *Server) handleSearchEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			after = n
		}
	}
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad after value %q", v))
			return
		}
		after = n
	}
	ch, cancel, err := s.engine.SearchEvents(id, after)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	defer cancel()
	s.logf("search job %s: event stream subscribed after=%d rid=%s",
		id, after, api.RequestIDFromContext(r.Context()))

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return // terminal event delivered, stream complete
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
