// Package power is the McPAT-substitute: an activity-factor power model
// (§2.4, §3.6, §4.10). Each processor structure gets an area-dependent
// static (leakage) power and a per-access dynamic energy; activity factors —
// from the cycle-level simulator ("measured") or the analytical model
// (predicted) — turn them into watts. Dynamic power scales with V²·f and
// static power with V (Equations 2.1-2.2), which makes the model usable for
// DVFS studies (§7.3).
//
// Like McPAT, absolute accuracy is within tens of percent of silicon; what
// the evaluation validates is the predicted-versus-simulated *activity*
// through the same backend (§6.3).
package power

import (
	"fmt"
	"math"
	"strings"

	"mipp/internal/config"
	"mipp/internal/perf"
	"mipp/internal/trace"
)

// Component enumerates power-stack components (Figure 6.7's breakdown).
type Component int

// Power stack components.
const (
	Static   Component = iota
	CoreDyn            // fetch/decode/rename/ROB/IQ/regfile/bypass
	FUDyn              // functional units
	CacheDyn           // L1I + L1D + L2 + L3
	DRAMDyn            // memory interface + DRAM access energy
	BPredDyn           // branch predictor
	NumComponents
)

var componentNames = [NumComponents]string{"static", "core", "fu", "cache", "dram", "bpred"}

// String names the component.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// Stack is a power breakdown in watts.
type Stack struct {
	Watts [NumComponents]float64
}

// Total returns total power in watts.
func (s Stack) Total() float64 {
	t := 0.0
	for _, w := range s.Watts {
		t += w
	}
	return t
}

// String formats the stack.
func (s Stack) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.2fW (", s.Total())
	for i := Component(0); i < NumComponents; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%.2f", i, s.Watts[i])
	}
	b.WriteString(")")
	return b.String()
}

// Technology constants for the 45 nm reference node. Energies are in
// nanojoules at the nominal voltage; static power densities in watts. The
// constants are calibrated so a Nehalem-class core lands in the 10-30 W
// range with ~40% static share, matching §2.4's characterization.
const (
	nominalV = 1.1

	// Per-access dynamic energies (nJ) at nominal voltage, calibrated so
	// a compute-bound workload on the 4-wide reference core draws
	// ~12-15 W of dynamic power (a ~60/40 dynamic/static split at full
	// throughput, the 45 nm characterization of §2.4).
	eFetchDecode = 0.60 // per uop through the front end (nJ)
	eRename      = 0.40
	eROB         = 0.25 // per uop inserted+removed
	eIQ          = 0.40 // per uop inserted+issued
	eRegfile     = 0.50 // per uop (reads+write)
	eBypass      = 0.20
	eALU         = 0.40 // per simple int op
	eMul         = 1.40
	eDiv         = 4.80
	eFPAdd       = 1.60
	eFPMul       = 2.40
	eFPDiv       = 7.00
	eAGU         = 0.40
	eBPred       = 0.30 // per lookup
	eCacheAccess = 0.20 // per sqrt(KB) per access scaling base
	eDRAMAccess  = 20.0 // per line transfer (interface + DRAM)

	// Static power (W) per structure at nominal voltage: proportional to
	// a rough area estimate.
	pStaticCoreBase   = 1.2  // fixed core overhead
	pStaticPerWide    = 0.45 // per dispatch-width lane
	pStaticROBPerE    = 0.004
	pStaticIQPerE     = 0.012
	pStaticPerPort    = 0.30
	pStaticCachePerMB = 0.35
	pStaticBPred      = 0.12
)

// uopEnergy returns the functional-unit energy (nJ) per uop of a class.
func uopEnergy(c trace.Class) float64 {
	switch c {
	case trace.IntALU, trace.Move:
		return eALU
	case trace.IntMul:
		return eMul
	case trace.IntDiv:
		return eDiv
	case trace.FPAdd:
		return eFPAdd
	case trace.FPMul:
		return eFPMul
	case trace.FPDiv:
		return eFPDiv
	case trace.Load, trace.Store:
		return eAGU
	case trace.Branch:
		return eALU
	default:
		return eALU
	}
}

// cacheAccessEnergy returns per-access energy (nJ) for a cache of the given
// size: energy grows with the square root of capacity (bitline/wordline
// scaling, the CACTI first-order trend).
func cacheAccessEnergy(sizeBytes int64) float64 {
	kb := float64(sizeBytes) / 1024
	return eCacheAccess * math.Sqrt(kb)
}

// Estimate computes the power stack for a configuration and its activity
// factors over a run of activity.Cycles cycles.
func Estimate(cfg *config.Config, a *perf.Activity) Stack {
	var s Stack
	if a.Cycles <= 0 {
		return s
	}
	f := cfg.FrequencyGHz * 1e9 // Hz
	v := cfg.VoltageV
	vScaleDyn := (v / nominalV) * (v / nominalV) // dynamic ∝ V²
	vScaleSta := v / nominalV                    // leakage ∝ V (first order)

	seconds := a.Cycles / f
	perSecond := func(count, energyNJ float64) float64 {
		if seconds <= 0 {
			return 0
		}
		return count * energyNJ * 1e-9 / seconds * vScaleDyn
	}

	// Static power: structure areas.
	static := pStaticCoreBase +
		pStaticPerWide*float64(cfg.DispatchWidth) +
		pStaticROBPerE*float64(cfg.ROB) +
		pStaticIQPerE*float64(cfg.IQ) +
		pStaticPerPort*float64(len(cfg.Ports)) +
		pStaticBPred
	cacheMB := float64(cfg.L1I.SizeBytes+cfg.L1D.SizeBytes+cfg.L2.SizeBytes+cfg.L3.SizeBytes) / (1 << 20)
	static += pStaticCachePerMB * cacheMB
	s.Watts[Static] = static * vScaleSta

	// Core pipeline dynamic power: every dispatched uop exercises fetch,
	// decode, rename, ROB, IQ, register file and bypass network.
	perUop := eFetchDecode + eRename + eROB + eIQ + eRegfile + eBypass
	s.Watts[CoreDyn] = perSecond(a.UopsDispatched, perUop)

	// Functional units: per-class issue counts × per-class energies
	// (Equation 3.16's activity factors).
	fu := 0.0
	for c := trace.Class(0); c < trace.NumClasses; c++ {
		fu += a.PerClass[c] * uopEnergy(c)
	}
	s.Watts[FUDyn] = fu * 1e-9 / seconds * vScaleDyn

	// Caches: accesses per level at level-sized energies; misses charge
	// the next level via its access count (already included in the
	// activity factors).
	cache := a.L1IAccesses*cacheAccessEnergy(cfg.L1I.SizeBytes) +
		a.L1DAccesses*cacheAccessEnergy(cfg.L1D.SizeBytes) +
		a.L2Accesses*cacheAccessEnergy(cfg.L2.SizeBytes) +
		a.L3Accesses*cacheAccessEnergy(cfg.L3.SizeBytes) +
		a.PrefetchIssued*cacheAccessEnergy(cfg.L2.SizeBytes)
	s.Watts[CacheDyn] = cache * 1e-9 / seconds * vScaleDyn

	// DRAM interface + device energy per line transfer. DRAM energy does
	// not scale with core voltage; keep it V-independent.
	s.Watts[DRAMDyn] = a.DRAMAccesses * eDRAMAccess * 1e-9 / seconds

	// Branch predictor lookups.
	s.Watts[BPredDyn] = perSecond(a.BranchLookups, eBPred)
	return s
}

// Energy returns the energy in joules for a run at the stack's power.
func Energy(s Stack, seconds float64) float64 { return s.Total() * seconds }

// EDP returns the energy-delay product (J·s).
func EDP(s Stack, seconds float64) float64 { return Energy(s, seconds) * seconds }

// ED2P returns the energy-delay-squared product (J·s²), the DVFS-invariant
// metric of §7.3.
func ED2P(s Stack, seconds float64) float64 { return Energy(s, seconds) * seconds * seconds }
