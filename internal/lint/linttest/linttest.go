// Package linttest runs analyzers over golden fixture packages and checks
// their diagnostics against expectations written in the fixtures
// themselves, in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { // want `map-range`
//
// A `// want "regex"` (or backquoted) comment expects exactly one
// diagnostic on its line whose rendered form — "[analyzer/category]
// message" — matches the regexp. Several expectations may sit in one
// comment for lines that trip several analyzers. Lines without a want
// comment must stay silent, so every fixture is simultaneously a positive
// and a negative test.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"mipp/internal/lint"
)

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run analyzes the fixture package in dir (every .go file) with the given
// analyzers and diffs findings against the // want comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures in %s (%v)", dir, err)
	}
	sort.Strings(files)
	pkg, err := lint.LoadFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture does not type-check: %v", terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	wants := collectWants(t, pkg)
	findings, err := lint.RunAnalyzers(pkg, analyzers...)
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range findings {
		got := fmt.Sprintf("[%s/%s] %s", f.Analyzer, f.Category, f.Message)
		key := lineKey{filepath.Base(f.Position.Filename), f.Position.Line}
		ws := wants[key]
		matched := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(got) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, got)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants extracts // want expectations from every comment in pkg.
func collectWants(t *testing.T, pkg *lint.Package) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Accept both trailing line comments ("// want ...") and
				// block comments ("/* want ... */", for lines whose line
				// comment is itself under test, e.g. a malformed
				// //mipp:allow).
				content := strings.TrimPrefix(c.Text, "//")
				if strings.HasPrefix(c.Text, "/*") {
					content = strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
				}
				content = strings.TrimSpace(content)
				if !strings.HasPrefix(content, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{filepath.Base(pos.Filename), pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(content[len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", key.file, key.line, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
