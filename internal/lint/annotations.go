package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar. Both forms are line comments:
//
//	//mipp:hotpath
//	    in (or immediately above) a function's doc comment: the function
//	    promises not to allocate per call, and the hotpath analyzer
//	    enforces the allocation-prone construct list inside it.
//
//	//mipp:allow <analyzer> <reason...>
//	    on the flagged line or the line directly above it: suppresses that
//	    analyzer's diagnostics there. The reason is mandatory — an allow
//	    without one is itself a finding.
const (
	hotpathDirective = "//mipp:hotpath"
	allowDirective   = "//mipp:allow"
)

// allowSet maps file → line → analyzer names allowed there.
type allowSet map[string]map[int]map[string]bool

// suppressed reports whether analyzer's diagnostic at pos is covered by an
// allow on the same line or the line above.
func (s allowSet) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line][allowAll]
}

// allowAll is the wildcard analyzer name in //mipp:allow comments.
const allowAll = "all"

// collectAllows scans every comment for //mipp:allow directives, recording
// the lines they cover (their own line and the next line, so both trailing
// and preceding placement work). Malformed directives become findings.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Finding) {
	set := make(allowSet)
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "mipplint",
						Position: pos,
						Category: "bad-allow",
						Message:  "//mipp:allow needs an analyzer name and a reason: //mipp:allow <analyzer> <why>",
					})
					continue
				}
				name := fields[0]
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = make(map[string]bool)
					}
					lines[line][name] = true
				}
			}
		}
	}
	return set, bad
}

// hotpathFuncs returns the function declarations carrying //mipp:hotpath in
// their doc comment group.
func hotpathFuncs(file *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(c.Text)
			if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
				out = append(out, fd)
				break
			}
		}
	}
	return out
}
