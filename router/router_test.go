package router_test

// Router integration tests against real replica stacks: three mippd
// handler chains over one shared profile store behind a router must be
// byte-indistinguishable from a single local daemon — for predict, sweep,
// pareto, cross-workload evaluate, catalog listing, and a seeded search's
// report — must survive losing a replica by rehashing, must relay SSE and
// NDJSON streams live, and must carry one X-Request-Id across both hops.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mipp"
	"mipp/api"
	"mipp/client"
	"mipp/router"
	"mipp/server"
	"mipp/store"
)

const testUops = 20_000

var profileCache sync.Map

func testProfile(t *testing.T, workload string) *mipp.Profile {
	t.Helper()
	if p, ok := profileCache.Load(workload); ok {
		return p.(*mipp.Profile)
	}
	p, err := mipp.NewProfiler().Profile(workload, testUops)
	if err != nil {
		t.Fatalf("profile %s: %v", workload, err)
	}
	profileCache.Store(workload, p)
	return p
}

// lockedBuf is a race-safe log sink.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// cluster is three replica daemons over one shared store, one reference
// daemon over the same store, and a router fronting the replicas.
type cluster struct {
	replicas  []*httptest.Server
	replogs   []*lockedBuf
	reference *httptest.Server
	rt        *router.Router
	routerTS  *httptest.Server
	routerLog *lockedBuf
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	dir := t.TempDir()
	seed, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"mcf", "gcc"} {
		if _, err := seed.Put(w, testProfile(t, w)); err != nil {
			t.Fatal(err)
		}
	}

	c := &cluster{}
	engine := func(l *log.Logger) *mipp.Engine {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		opts := []mipp.EngineOption{mipp.WithEngineStore(st)}
		if l != nil {
			// An engine logger turns on the engine-level trace spans
			// (store.load, engine.compile), which the trace-propagation
			// test asserts nest under the replica's HTTP span.
			opts = append(opts, mipp.WithEngineLogger(l))
		}
		return mipp.NewEngine(opts...)
	}
	for i := 0; i < 3; i++ {
		buf := &lockedBuf{}
		l := log.New(buf, "", 0)
		ts := httptest.NewServer(server.New(engine(l), server.WithLogger(l)))
		t.Cleanup(ts.Close)
		c.replicas = append(c.replicas, ts)
		c.replogs = append(c.replogs, buf)
	}
	c.reference = httptest.NewServer(server.New(engine(nil)))
	t.Cleanup(c.reference.Close)

	urls := make([]string, len(c.replicas))
	for i, ts := range c.replicas {
		urls[i] = ts.URL
	}
	c.routerLog = &lockedBuf{}
	rt, err := router.New(router.Options{
		Replicas: urls,
		Logger:   log.New(c.routerLog, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.rt = rt
	c.routerTS = httptest.NewServer(rt)
	t.Cleanup(c.routerTS.Close)
	return c
}

// post returns status and body of a JSON POST.
func post(t *testing.T, base, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func TestRouterByteIdentity(t *testing.T) {
	c := newCluster(t)
	requests := []struct {
		name, method, path, body string
	}{
		{"predict", "POST", "/v1/predict",
			`{"schema_version":1,"workload":"mcf","config":{"name":"reference"}}`},
		{"predict-other-workload", "POST", "/v1/predict",
			`{"schema_version":1,"workload":"gcc","config":{"name":"lowpower"}}`},
		{"sweep", "POST", "/v1/sweep",
			`{"schema_version":1,"workload":"mcf","space":{"kind":"design","stride":9}}`},
		{"pareto", "POST", "/v1/pareto",
			`{"schema_version":1,"workload":"gcc","space":{"kind":"design","stride":9},"cap_watts":25}`},
		{"evaluate-cross-workload", "POST", "/v1/evaluate",
			`{"schema_version":1,"workloads":["mcf","gcc"],"configs":[{"name":"reference"},{"name":"lowpower"}],"options":{}}`},
		{"workloads", "GET", "/v1/workloads", ""},
		{"predict-unknown", "POST", "/v1/predict",
			`{"schema_version":1,"workload":"nope","config":{"name":"reference"}}`},
	}
	for _, req := range requests {
		t.Run(req.name, func(t *testing.T) {
			var viaRouter, direct string
			var routerStatus, directStatus int
			if req.method == "GET" {
				routerStatus, viaRouter = get(t, c.routerTS.URL, req.path)
				directStatus, direct = get(t, c.reference.URL, req.path)
			} else {
				routerStatus, viaRouter = post(t, c.routerTS.URL, req.path, req.body)
				directStatus, direct = post(t, c.reference.URL, req.path, req.body)
			}
			if routerStatus != directStatus {
				t.Fatalf("status %d via router, %d direct", routerStatus, directStatus)
			}
			if viaRouter != direct {
				t.Errorf("responses differ:\nrouter: %.400s\ndirect: %.400s", viaRouter, direct)
			}
		})
	}
}

const searchBody = `{"schema_version":1,"workload":"mcf","space":{"kind":"design"},` +
	`"strategy":{"kind":"genetic","seed":11,"population":16,"generations":6},` +
	`"objective":"ed2p","cap_watts":25,"budget":243}`

func searchRequest(t *testing.T) *api.SearchRequest {
	t.Helper()
	req := &api.SearchRequest{}
	if err := json.Unmarshal([]byte(searchBody), req); err != nil {
		t.Fatal(err)
	}
	return req
}

func TestRouterSearchByteIdentity(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()

	reports := make([]string, 2)
	for i, base := range []string{c.routerTS.URL, c.reference.URL} {
		cl := client.New(base)
		final, err := cl.Search(ctx, searchRequest(t), time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if final.Job.State != api.JobDone || final.Job.Report == nil {
			t.Fatalf("job via %s = %+v", base, final.Job)
		}
		data, err := json.Marshal(final.Job.Report)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = string(data)
	}
	if reports[0] != reports[1] {
		t.Errorf("routed report differs from the local one:\n%.400s\n%.400s", reports[0], reports[1])
	}
}

func TestRouterReplicaLoss(t *testing.T) {
	c := newCluster(t)
	body := `{"schema_version":1,"workload":"mcf","config":{"name":"reference"}}`
	status, want := post(t, c.reference.URL, "/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("reference predict: %d %s", status, want)
	}

	// Kill replicas one by one: every predict must keep answering the
	// reference bytes through rehash-and-retry, down to the last replica.
	for kill := 0; kill < 2; kill++ {
		c.replicas[kill].Close()
		for _, wl := range []string{"mcf", "gcc"} {
			b := strings.Replace(body, "mcf", wl, 1)
			_, wantWL := post(t, c.reference.URL, "/v1/predict", b)
			status, got := post(t, c.routerTS.URL, "/v1/predict", b)
			if status != http.StatusOK {
				t.Fatalf("predict %s with %d replicas down: %d %s", wl, kill+1, status, got)
			}
			if got != wantWL {
				t.Errorf("predict %s with %d replicas down differs from reference", wl, kill+1)
			}
		}
	}

	// With every replica gone the router answers 502, not a hang.
	c.replicas[2].Close()
	status, got := post(t, c.routerTS.URL, "/v1/predict", body)
	if status != http.StatusBadGateway {
		t.Fatalf("predict with all replicas down: %d %s", status, got)
	}
}

func TestRouterSearchEventsSSE(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	cl := client.New(c.routerTS.URL)

	sub, err := cl.SubmitSearch(ctx, searchRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	es, err := cl.SearchEvents(ctx, sub.Job.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	var events []*api.SearchEvent
	for {
		ev, err := es.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	progress, fronts := 0, 0
	var terminal *api.SearchEvent
	for _, ev := range events {
		switch {
		case ev.Type == api.SearchEventProgress:
			progress++
		case ev.Type == api.SearchEventFront:
			fronts++
		case ev.Terminal():
			terminal = ev
		}
	}
	if progress < 2 || fronts < 1 {
		t.Errorf("%d progress and %d front events through the router, want >=2 and >=1", progress, fronts)
	}
	if terminal == nil || terminal.Type != api.JobDone || terminal.Report == nil {
		t.Fatalf("no terminal done event with a report (terminal=%+v)", terminal)
	}

	// The SSE terminal report and the polled report are the same bytes.
	final, err := cl.SearchJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(terminal.Report)
	want, _ := json.Marshal(final.Job.Report)
	if string(got) != string(want) {
		t.Errorf("SSE terminal report differs from the polled report:\n%.300s\n%.300s", got, want)
	}

	// Resuming mid-stream delivers exactly the remainder.
	if len(events) >= 2 {
		resumed, err := cl.SearchEvents(ctx, sub.Job.ID, events[0].Seq)
		if err != nil {
			t.Fatal(err)
		}
		defer resumed.Close()
		first, err := resumed.Next()
		if err != nil {
			t.Fatal(err)
		}
		if first.Seq != events[0].Seq+1 {
			t.Errorf("resume after seq %d starts at %d", events[0].Seq, first.Seq)
		}
	}
}

func TestRouterSweepStream(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	cl := client.New(c.routerTS.URL)
	req := &api.SweepRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "gcc",
		Space:         &api.SpaceSpec{Kind: "design", Stride: 5},
	}
	envelope, err := cl.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := cl.SweepStream(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.Header().Workload != "gcc" || ss.Header().Count != len(envelope.Results) {
		t.Fatalf("stream header = %+v, want gcc with %d items", ss.Header(), len(envelope.Results))
	}
	n := 0
	for {
		item, err := ss.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if item.Index != n {
			t.Fatalf("item %d carries index %d", n, item.Index)
		}
		got, _ := json.Marshal(item.Result)
		want, _ := json.Marshal(envelope.Results[item.Index])
		if string(got) != string(want) {
			t.Errorf("streamed item %d differs from the envelope result", item.Index)
		}
		n++
	}
	if n != len(envelope.Results) {
		t.Fatalf("stream delivered %d items, envelope has %d", n, len(envelope.Results))
	}
	tr := ss.Trailer()
	if tr == nil || !tr.Done || tr.Results != len(envelope.Results)-len(envelope.Errors) {
		t.Errorf("trailer = %+v", tr)
	}
}

func TestRouterRequestIDPropagation(t *testing.T) {
	c := newCluster(t)
	const rid = "rid-propagation-test-1"
	req, err := http.NewRequest(http.MethodPost, c.routerTS.URL+"/v1/predict",
		strings.NewReader(`{"schema_version":1,"workload":"mcf","config":{"name":"reference"}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.RequestIDHeader, rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(api.RequestIDHeader); got != rid {
		t.Errorf("router echoed rid %q, want %q", got, rid)
	}
	if !strings.Contains(c.routerLog.String(), "rid="+rid) {
		t.Error("router log has no line with the request id")
	}
	found := false
	for _, buf := range c.replogs {
		if strings.Contains(buf.String(), "rid="+rid) {
			found = true
		}
	}
	if !found {
		t.Error("no replica log line carries the forwarded request id")
	}
}

func TestRouterRegisterThroughRouter(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	cl := client.New(c.routerTS.URL)
	if _, err := cl.UploadProfile(ctx, "uploaded-mcf", testProfile(t, "mcf")); err != nil {
		t.Fatal(err)
	}
	// The upload landed in the shared store: every placement of the new
	// name answers, and the reference daemon sees it too.
	status, got := post(t, c.routerTS.URL, "/v1/predict",
		`{"schema_version":1,"workload":"uploaded-mcf","config":{"name":"reference"}}`)
	if status != http.StatusOK {
		t.Fatalf("predict uploaded profile via router: %d %s", status, got)
	}
	status, want := post(t, c.reference.URL, "/v1/predict",
		`{"schema_version":1,"workload":"uploaded-mcf","config":{"name":"reference"}}`)
	if status != http.StatusOK {
		t.Fatalf("predict uploaded profile direct: %d %s", status, want)
	}
	if got != want {
		t.Error("uploaded profile predicts differently via router")
	}
}

func TestRouterHealthz(t *testing.T) {
	c := newCluster(t)
	c.rt.CheckHealth(context.Background())
	status, body := get(t, c.routerTS.URL, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d %s", status, body)
	}
	var health api.RouterHealthResponse
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Members) != 3 {
		t.Fatalf("health = %+v", health)
	}
	for i, m := range health.Members {
		if !m.Healthy {
			t.Errorf("member %d (%s) unhealthy", i, m.URL)
		}
		if i > 0 && health.Members[i-1].URL > m.URL {
			t.Error("members not sorted by URL")
		}
	}
}

func TestRouterUnknownJob(t *testing.T) {
	c := newCluster(t)
	status, body := get(t, c.routerTS.URL, "/v1/search/job-missing-1")
	if status != http.StatusNotFound {
		t.Fatalf("unknown job: %d %s", status, body)
	}
	var env api.ErrorResponse
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error == "" {
		t.Fatalf("unknown-job body is not an error envelope: %s", body)
	}
}

// TestRouterJobFollowsReplicaAcrossRestart exercises the probe path: a
// router that forgot its job routes (fresh instance) still finds the job
// by asking the replicas.
func TestRouterJobFollowsReplicaAcrossRestart(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	cl := client.New(c.routerTS.URL)
	final, err := cl.Search(ctx, searchRequest(t), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	// A second router over the same replicas has never seen the job.
	urls := make([]string, len(c.replicas))
	for i, ts := range c.replicas {
		urls[i] = ts.URL
	}
	rt2, err := router.New(router.Options{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(rt2)
	defer ts2.Close()
	found, err := client.New(ts2.URL).SearchJob(ctx, final.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(found.Job)
	b, _ := json.Marshal(final.Job)
	if string(a) != string(b) {
		t.Errorf("re-found job differs:\n%.300s\n%.300s", a, b)
	}
}
