// Package stats provides the small statistical toolkit the modeling framework
// relies on: histograms and empirical distributions, least-squares linear and
// logarithmic fits (dependence-chain interpolation, branch-entropy model),
// box-and-whiskers summaries, cumulative error distributions and the error
// metrics used throughout the evaluation chapters.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// AbsErr returns |predicted-actual| / |actual|, the relative error metric the
// paper reports everywhere. A zero actual with nonzero predicted yields +Inf.
func AbsErr(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// SignedErr returns (predicted-actual)/actual, preserving under/over
// prediction sign (used, e.g., for Figure 3.10's MPKI deltas).
func SignedErr(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (predicted - actual) / actual
}

// MeanAbsErr returns the mean of AbsErr over paired slices.
func MeanAbsErr(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) || len(predicted) == 0 {
		return 0
	}
	s := 0.0
	for i := range predicted {
		s += AbsErr(predicted[i], actual[i])
	}
	return s / float64(len(predicted))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// BoxStats is a five-number summary plus mean, matching the box-and-whiskers
// plots of Figures 3.7, 3.10, 6.5 and 6.9.
type BoxStats struct {
	Mean   float64
	Median float64
	Q1     float64 // first quartile
	Q3     float64 // third quartile
	P99    float64 // 99th percentile (whisker in Fig 3.7 style plots)
	Lo     float64 // minimum
	Hi     float64 // maximum
	N      int
}

// Box computes a BoxStats summary of xs.
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return BoxStats{
		Mean:   Mean(s),
		Median: percentileSorted(s, 50),
		Q1:     percentileSorted(s, 25),
		Q3:     percentileSorted(s, 75),
		P99:    percentileSorted(s, 99),
		Lo:     s[0],
		Hi:     s[len(s)-1],
		N:      len(s),
	}
}

// String formats a BoxStats as a compact single-line summary.
func (b BoxStats) String() string {
	return fmt.Sprintf("mean=%.4f med=%.4f q1=%.4f q3=%.4f p99=%.4f min=%.4f max=%.4f n=%d",
		b.Mean, b.Median, b.Q1, b.Q3, b.P99, b.Lo, b.Hi, b.N)
}

// CDF returns the empirical cumulative distribution of xs evaluated at the
// sorted sample points: pairs (x_i, (i+1)/n). Used for the cumulative error
// distributions of Figures 6.4, 6.8 and 6.17.
func CDF(xs []float64) (points []float64, probs []float64) {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	probs = make([]float64, len(s))
	for i := range s {
		probs[i] = float64(i+1) / float64(len(s))
	}
	return s, probs
}

// FractionBelow returns the fraction of xs that are <= limit.
func FractionBelow(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It is the phase-accuracy coefficient (PAC) used in the phase analysis of
// §6.5. Returns 0 if either series is constant or lengths mismatch.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit is a y = A + B*x least-squares fit.
type LinearFit struct {
	A, B float64
	R2   float64 // coefficient of determination
}

// FitLinear computes the ordinary least-squares line through (xs, ys).
// It is used to build the branch-entropy → misprediction-rate model of
// Figure 3.9. Returns a flat fit when fewer than two distinct points exist.
func FitLinear(xs, ys []float64) LinearFit {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{A: Mean(ys)}
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{A: Mean(ys)}
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	// R^2 against the mean model.
	my := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		e := ys[i] - (a + b*xs[i])
		ssRes += e * e
		d := ys[i] - my
		ssTot += d * d
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{A: a, B: b, R2: r2}
}

// Eval evaluates the fitted line at x.
func (f LinearFit) Eval(x float64) float64 { return f.A + f.B*x }

// LogFit is a y = a*log(x) + b least-squares fit, the functional form the
// paper uses to interpolate dependence-chain lengths between profiled ROB
// sizes (Equation 5.2).
type LogFit struct {
	A, B float64
}

// FitLog computes the least-squares fit of y = A*log(x) + B following the
// closed forms of Equations 5.3 and 5.4. xs must be positive.
func FitLog(xs, ys []float64) LogFit {
	if len(xs) != len(ys) || len(xs) == 0 {
		return LogFit{}
	}
	if len(xs) == 1 {
		return LogFit{A: 0, B: ys[0]}
	}
	n := float64(len(xs))
	var slx, sy, slx2, slxy float64
	for i := range xs {
		lx := math.Log(xs[i])
		slx += lx
		sy += ys[i]
		slx2 += lx * lx
		slxy += lx * ys[i]
	}
	den := n*slx2 - slx*slx
	if den == 0 {
		return LogFit{A: 0, B: sy / n}
	}
	a := (n*slxy - slx*sy) / den
	b := (sy - a*slx) / n
	return LogFit{A: a, B: b}
}

// Eval evaluates the fitted curve at x (x must be positive).
func (f LogFit) Eval(x float64) float64 { return f.A*math.Log(x) + f.B }

// Histogram is a sparse integer-keyed frequency count with float weights,
// the common shape of the profiler's distributions (reuse distances, strides,
// dependence-path lengths, load spacings).
type Histogram struct {
	counts map[int64]float64
	total  float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]float64)}
}

// Add increments the count of key by one.
func (h *Histogram) Add(key int64) { h.AddWeighted(key, 1) }

// AddWeighted increments the count of key by w.
func (h *Histogram) AddWeighted(key int64, w float64) {
	h.counts[key] += w
	h.total += w
}

// Total returns the sum of all weights.
func (h *Histogram) Total() float64 { return h.total }

// Count returns the weight recorded for key.
func (h *Histogram) Count(key int64) float64 { return h.counts[key] }

// Keys returns the distinct keys in ascending order.
func (h *Histogram) Keys() []int64 {
	ks := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Fraction returns the weight of key as a fraction of the total.
func (h *Histogram) Fraction(key int64) float64 {
	if h.total == 0 {
		return 0
	}
	return h.counts[key] / h.total
}

// Mean returns the weighted mean of the keys.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	s := 0.0
	for k, w := range h.counts {
		s += float64(k) * w
	}
	return s / h.total
}

// Merge adds all entries of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for k, w := range other.counts {
		h.AddWeighted(k, w)
	}
}

// Scale multiplies every weight by f.
func (h *Histogram) Scale(f float64) {
	for k := range h.counts {
		h.counts[k] *= f
	}
	h.total *= f
}

// Len returns the number of distinct keys.
func (h *Histogram) Len() int { return len(h.counts) }

// TopK returns the k keys with the largest weights, in descending weight
// order (ties broken by ascending key). Used by the stride classifier.
func (h *Histogram) TopK(k int) []int64 {
	type kv struct {
		key int64
		w   float64
	}
	all := make([]kv, 0, len(h.counts))
	for key, w := range h.counts {
		all = append(all, kv{key, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].key < all[j].key
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].key
	}
	return out
}

// CCDF returns, for the sorted keys, the fraction of total weight with key
// strictly greater than each key. This is the complementary CDF StatStack
// needs over reuse distances.
func (h *Histogram) CCDF() (keys []int64, frac []float64) {
	keys = h.Keys()
	frac = make([]float64, len(keys))
	if h.total == 0 {
		return keys, frac
	}
	// Walk from the largest key down, accumulating weight.
	acc := 0.0
	for i := len(keys) - 1; i >= 0; i-- {
		frac[i] = acc / h.total
		acc += h.counts[keys[i]]
	}
	return keys, frac
}
