package api

import (
	"encoding/json"
	"strings"
	"testing"

	"mipp/arch"
)

func TestCheckVersion(t *testing.T) {
	if err := CheckVersion(SchemaVersion); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
	for _, v := range []int{0, -1, SchemaVersion + 1, 99} {
		if err := CheckVersion(v); err == nil {
			t.Errorf("version %d accepted", v)
		}
	}
}

func TestPredictorSpecKeyCanonical(t *testing.T) {
	// Spelled-out defaults and the zero value share a cache key.
	zero := PredictorSpec{}
	spelled := PredictorSpec{MLPMode: "stride", DispatchModel: "full"}
	if zero.Key() != spelled.Key() {
		t.Errorf("zero key %q != spelled key %q", zero.Key(), spelled.Key())
	}
	// Every option perturbs the key.
	br := 0.01
	pf := true
	variants := []PredictorSpec{
		{MLPMode: "cold-miss"},
		{MLPMode: "none"},
		{Combined: true},
		{BranchMissRate: &br},
		{NoLLCChain: true},
		{NoBusQueue: true},
		{DispatchModel: "uops"},
		{DispatchModel: "critical"},
		{Prefetcher: &pf},
	}
	seen := map[string]int{zero.Key(): -1}
	for i, s := range variants {
		k := s.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("variants %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
}

func TestPredictorSpecValidate(t *testing.T) {
	good := []PredictorSpec{
		{},
		{MLPMode: "stride"},
		{MLPMode: "cold-miss", DispatchModel: "instructions"},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", s, err)
		}
	}
	if err := (PredictorSpec{MLPMode: "warp"}).Validate(); err == nil {
		t.Error("unknown mlp_mode accepted")
	} else if !strings.Contains(err.Error(), "cold-miss") {
		t.Errorf("error %q does not list accepted modes", err)
	}
	if err := (PredictorSpec{DispatchModel: "sideways"}).Validate(); err == nil {
		t.Error("unknown dispatch_model accepted")
	}
}

func TestConfigSpecResolve(t *testing.T) {
	if c, err := (ConfigSpec{Name: "reference"}).Resolve(); err != nil || c.Name != "nehalem-ref" {
		t.Errorf("Resolve(reference) = %v, %v", c, err)
	}
	inline := arch.LowPower()
	if c, err := (ConfigSpec{Config: inline}).Resolve(); err != nil || c != inline {
		t.Errorf("inline Resolve = %v, %v", c, err)
	}
	for _, cs := range []ConfigSpec{
		{},
		{Name: "no-such-machine"},
		{Name: "reference", Config: inline},
	} {
		if _, err := cs.Resolve(); err == nil {
			t.Errorf("Resolve(%+v) accepted", cs)
		}
	}
}

func TestSpaceSpecExpand(t *testing.T) {
	full, err := SpaceSpec{Kind: "design"}.Expand()
	if err != nil || len(full) != 243 {
		t.Errorf("design space = %d configs, %v; want 243", len(full), err)
	}
	sampled, err := SpaceSpec{Kind: "design", Stride: 13}.Expand()
	if err != nil || len(sampled) != 19 {
		t.Errorf("sampled space = %d configs, %v; want 19", len(sampled), err)
	}
	dvfs, err := SpaceSpec{Kind: "dvfs"}.Expand()
	if err != nil || len(dvfs) == 0 {
		t.Errorf("dvfs space = %d configs, %v", len(dvfs), err)
	}
	if _, err := (SpaceSpec{Kind: "hypercube"}).Expand(); err == nil {
		t.Error("unknown space kind accepted")
	}
	if _, err := (SpaceSpec{Kind: "dvfs", Stride: 5}).Expand(); err == nil {
		t.Error("dvfs with stride accepted (stride is design-space only)")
	}
}

func TestExpandConfigsCombines(t *testing.T) {
	out, err := ExpandConfigs([]ConfigSpec{{Name: "lowpower"}}, &SpaceSpec{Kind: "design", Stride: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Errorf("got %d configs, want 1 + 19", len(out))
	}
	if out[0].Name != "low-power" {
		t.Errorf("explicit config not first: %s", out[0].Name)
	}
	if _, err := ExpandConfigs(nil, nil); err == nil {
		t.Error("empty expansion accepted")
	}
	if _, err := ExpandConfigs([]ConfigSpec{{Name: "nope"}}, nil); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestRequestValidation(t *testing.T) {
	valid := []interface{ Validate() error }{
		&PredictRequest{SchemaVersion: SchemaVersion, Workload: "w", Config: ConfigSpec{Name: "reference"}},
		&SweepRequest{SchemaVersion: SchemaVersion, Workload: "w", Space: &SpaceSpec{Kind: "design"}},
		&BatchRequest{SchemaVersion: SchemaVersion, Workloads: []string{"w"}, Configs: []ConfigSpec{{Name: "reference"}}},
		&ParetoRequest{SchemaVersion: SchemaVersion, Workload: "w", Configs: []ConfigSpec{{Name: "reference"}}},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion, Workload: "w", Uops: 1000},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion, Profile: json.RawMessage(`{}`)},
	}
	for i, r := range valid {
		if err := r.Validate(); err != nil {
			t.Errorf("valid request %d rejected: %v", i, err)
		}
	}
	invalid := []interface{ Validate() error }{
		&PredictRequest{SchemaVersion: 99, Workload: "w"},
		&PredictRequest{SchemaVersion: SchemaVersion},
		&SweepRequest{SchemaVersion: SchemaVersion, Workload: "w"},
		&SweepRequest{SchemaVersion: SchemaVersion, Configs: []ConfigSpec{{Name: "reference"}}},
		&BatchRequest{SchemaVersion: SchemaVersion, Configs: []ConfigSpec{{Name: "reference"}}},
		&BatchRequest{SchemaVersion: SchemaVersion, Workloads: []string{""}, Configs: []ConfigSpec{{Name: "reference"}}},
		&BatchRequest{SchemaVersion: SchemaVersion, Workloads: []string{"w"}},
		&ParetoRequest{SchemaVersion: SchemaVersion, Workload: "w"},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion, Workload: "w"},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion, Workload: "w", Uops: 100, Profile: json.RawMessage(`{}`)},
		&PredictRequest{SchemaVersion: SchemaVersion, Workload: "w", Options: PredictorSpec{MLPMode: "warp"}},
	}
	for i, r := range invalid {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid request %d accepted", i)
		}
	}
}

// The wire format of a result must stay snake_case and complete — clients
// in other languages key on these names.
func TestResultWireFormat(t *testing.T) {
	data, err := json.Marshal(&Result{Workload: "w", Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"workload"`, `"config"`, `"frequency_ghz"`, `"cycles"`, `"cpi"`,
		`"time_seconds"`, `"cpi_stack"`, `"power"`, `"watts"`,
		`"energy_joules"`, `"edp"`, `"ed2p"`, `"deff"`, `"mlp"`,
		`"branch_miss_rate"`, `"base"`, `"branch"`, `"icache"`, `"llc"`,
		`"dram"`, `"static"`, `"core"`, `"fu"`, `"cache"`, `"bpred"`,
	} {
		if !strings.Contains(string(data), field) {
			t.Errorf("result JSON missing %s: %s", field, data)
		}
	}
	if strings.Contains(string(data), "micro_cpi") {
		t.Error("empty micro_cpi not omitted")
	}
}
