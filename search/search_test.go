package search_test

// Search subsystem tests: seeded determinism (the same seed must produce a
// byte-identical report at 1 worker and at GOMAXPROCS), the non-domination
// property (no strategy may report a best point the exhaustive Pareto front
// dominates), budget discipline, cancellation, and the PR acceptance
// criterion — on a >100k-point parametric space with a power cap, hill
// climbing and the genetic strategy must each land within 2% of the
// exhaustive optimum of the 243-point reference subspace while evaluating
// no more than 5% of the large space.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mipp"
	"mipp/arch"
	"mipp/search"
)

const testUops = 40_000

var testPredictor = struct {
	sync.Once
	pd  *mipp.Predictor
	err error
}{}

// predictor returns a process-wide mcf predictor shared by every test.
func predictor(t *testing.T) *mipp.Predictor {
	t.Helper()
	testPredictor.Do(func() {
		p, err := mipp.NewProfiler().Profile("mcf", testUops)
		if err != nil {
			testPredictor.err = err
			return
		}
		testPredictor.pd, testPredictor.err = mipp.NewPredictor(p)
	})
	if testPredictor.err != nil {
		t.Fatal(testPredictor.err)
	}
	return testPredictor.pd
}

// bigSpace is the acceptance-criterion space: 6·16·8·8·10·2 = 122880
// points, a strict superset of the Table 6.3 axis values so the 243-point
// reference optimum is reachable inside it.
func bigSpace() *arch.Space {
	return &arch.Space{
		Name:   "acceptance-122k",
		Widths: []int{1, 2, 3, 4, 5, 6},
		ROBs:   []int{16, 24, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 512},
		L2Bytes: []int64{
			64 << 10, 128 << 10, 256 << 10, 512 << 10,
			1 << 20, 2 << 20, 4 << 20, 8 << 20,
		},
		L3Bytes: []int64{
			1 << 20, 2 << 20, 4 << 20, 8 << 20,
			16 << 20, 32 << 20, 64 << 20, 128 << 20,
		},
		Clocks: []arch.DVFSPoint{
			{FrequencyGHz: 1.2, VoltageV: 0.85},
			{FrequencyGHz: 1.6, VoltageV: 0.95},
			{FrequencyGHz: 2.0, VoltageV: 1.0},
			{FrequencyGHz: 2.2, VoltageV: 1.03},
			{FrequencyGHz: 2.4, VoltageV: 1.05},
			{FrequencyGHz: 2.66, VoltageV: 1.1},
			{FrequencyGHz: 2.8, VoltageV: 1.13},
			{FrequencyGHz: 3.0, VoltageV: 1.16},
			{FrequencyGHz: 3.2, VoltageV: 1.2},
			{FrequencyGHz: 3.33, VoltageV: 1.25},
		},
		Prefetcher: []bool{false, true},
	}
}

func strategies() map[string]search.Strategy {
	return map[string]search.Strategy{
		"exhaustive": search.Exhaustive{},
		"random":     search.Random{Samples: 120},
		"hill":       search.HillClimb{Restarts: 4},
		"genetic":    search.Genetic{Population: 24, Generations: 8},
	}
}

// TestSeededDeterminism is the satellite requirement: same seed, one worker
// vs GOMAXPROCS workers, byte-identical reports — for every strategy.
func TestSeededDeterminism(t *testing.T) {
	pd := predictor(t)
	space := arch.TableSpace()
	for name, st := range strategies() {
		t.Run(name, func(t *testing.T) {
			var blobs []string
			for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
				rep, err := search.Run(context.Background(), mipp.NewSearchEvaluator(pd, workers), space, st, search.Options{
					Seed:        42,
					Budget:      250,
					Objective:   search.ObjectiveED2P,
					Constraints: search.Constraints{MaxWatts: 40},
				})
				if err != nil {
					t.Fatal(err)
				}
				data, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				blobs = append(blobs, string(data))
			}
			if blobs[0] != blobs[1] {
				t.Errorf("1-worker and N-worker reports differ:\n%.400s\n%.400s", blobs[0], blobs[1])
			}
		})
	}
}

// TestBestNeverDominated is the property test: on a small space, no
// strategy may return a best point that a point of the exhaustive Pareto
// front strictly dominates — the ED²P optimum is always on the front, and
// a search that reports a dominated incumbent is a search that failed.
func TestBestNeverDominated(t *testing.T) {
	pd := predictor(t)
	space := arch.TableSpace()
	ev := mipp.NewSearchEvaluator(pd, 0)

	exh, err := search.Run(context.Background(), ev, space, search.Exhaustive{}, search.Options{Objective: search.ObjectiveED2P})
	if err != nil {
		t.Fatal(err)
	}
	if exh.Evaluations != space.Size() || exh.Best == nil {
		t.Fatalf("exhaustive: %d evaluations, best %v", exh.Evaluations, exh.Best)
	}

	for name, st := range strategies() {
		for seed := int64(1); seed <= 3; seed++ {
			rep, err := search.Run(context.Background(), ev, space, st, search.Options{
				Seed:      seed,
				Objective: search.ObjectiveED2P,
				Budget:    243,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if rep.Best == nil {
				t.Fatalf("%s seed %d: no best point", name, seed)
			}
			b := rep.Best
			for _, f := range exh.Front {
				dominates := f.TimeSeconds <= b.TimeSeconds && f.Watts <= b.Watts &&
					(f.TimeSeconds < b.TimeSeconds || f.Watts < b.Watts)
				if dominates {
					t.Errorf("%s seed %d: best %s (t=%g W=%g) dominated by front point %s (t=%g W=%g)",
						name, seed, b.Config, b.TimeSeconds, b.Watts, f.Config, f.TimeSeconds, f.Watts)
				}
			}
		}
	}
}

// TestAcceptanceLargeSpacePowerCap is the PR acceptance criterion.
func TestAcceptanceLargeSpacePowerCap(t *testing.T) {
	pd := predictor(t)
	big := bigSpace()
	if big.Size() < 100_000 {
		t.Fatalf("acceptance space has %d points, want >= 100k", big.Size())
	}
	ev := mipp.NewSearchEvaluator(pd, 0)
	const capWatts = 18.0
	opts := func(seed int64, budget int) search.Options {
		return search.Options{
			Objective:   search.ObjectiveTime,
			Constraints: search.Constraints{MaxWatts: capWatts},
			Seed:        seed,
			Budget:      budget,
		}
	}

	// Ground truth: the exhaustive optimum of the 243-point reference
	// subspace under the same cap.
	ref, err := search.Run(context.Background(), ev, arch.TableSpace(), search.Exhaustive{}, opts(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Best == nil {
		t.Fatalf("no feasible reference point under %gW", capWatts)
	}
	limit := ref.Best.Fitness * 1.02
	maxEvals := big.Size() / 20 // 5%

	for name, st := range map[string]search.Strategy{
		"hill":    search.HillClimb{Restarts: 12},
		"genetic": search.Genetic{Population: 64, Generations: 40},
	} {
		t.Run(name, func(t *testing.T) {
			rep, err := search.Run(context.Background(), ev, big, st, opts(7, maxEvals))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Evaluations > maxEvals {
				t.Errorf("%s evaluated %d points, budget %d (5%% of %d)", name, rep.Evaluations, maxEvals, big.Size())
			}
			if rep.Best == nil {
				t.Fatalf("%s found no feasible point under %gW", name, capWatts)
			}
			if rep.Best.Watts > capWatts {
				t.Errorf("%s best violates the cap: %gW > %gW", name, rep.Best.Watts, capWatts)
			}
			if rep.Best.Fitness > limit {
				t.Errorf("%s best time %g not within 2%% of reference optimum %g (evaluated %d/%d)",
					name, rep.Best.Fitness, ref.Best.Fitness, rep.Evaluations, big.Size())
			}
			t.Logf("%s: best %s t=%.6gs W=%.4g after %d/%d evaluations (ref %s t=%.6gs)",
				name, rep.Best.Config, rep.Best.Fitness, rep.Best.Watts,
				rep.Evaluations, big.Size(), ref.Best.Config, ref.Best.Fitness)
		})
	}
}

// TestBudgetAndTrace checks budget discipline and trace consistency.
func TestBudgetAndTrace(t *testing.T) {
	pd := predictor(t)
	space := arch.TableSpace()
	ev := mipp.NewSearchEvaluator(pd, 0)

	rep, err := search.Run(context.Background(), ev, space, search.Random{Samples: 500}, search.Options{Seed: 1, Budget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluations != 50 {
		t.Errorf("random with budget 50 evaluated %d", rep.Evaluations)
	}
	if len(rep.Trace) == 0 || rep.Trace[len(rep.Trace)-1].Evaluations != rep.Evaluations {
		t.Errorf("trace tail %+v inconsistent with %d evaluations", rep.Trace, rep.Evaluations)
	}
	for i := 1; i < len(rep.Trace); i++ {
		if rep.Trace[i].Evaluations < rep.Trace[i-1].Evaluations {
			t.Errorf("trace not monotone: %+v", rep.Trace)
		}
	}

	// Exhaustive must refuse a space larger than its budget instead of
	// silently truncating.
	if _, err := search.Run(context.Background(), ev, space, search.Exhaustive{}, search.Options{Budget: 10}); err == nil {
		t.Error("exhaustive with budget < space size did not error")
		//mipp:allow wraperr this error has no sentinel; its message is the documented contract
	} else if !strings.Contains(err.Error(), "budget") {
		t.Errorf("unexpected exhaustive budget error: %v", err)
	}
}

// TestGeneticTinySpaceLargeElite: elitism clamps against the population
// after it shrinks to a tiny space's cardinality (regression: this used to
// panic with index out of range).
func TestGeneticTinySpaceLargeElite(t *testing.T) {
	pd := predictor(t)
	tiny := arch.DVFSSpace() // 5 points
	rep, err := search.Run(context.Background(), mipp.NewSearchEvaluator(pd, 0),
		tiny, search.Genetic{Elite: 20, Generations: 3}, search.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil || rep.Evaluations > tiny.Size() {
		t.Errorf("tiny-space genetic report = %+v", rep)
	}
}

// TestBudgetRollback: a budget-exceeding Evaluate must not leave phantom
// never-evaluated points behind — a strategy treating the error as a soft
// stop still reports truthful evaluation counts.
func TestBudgetRollback(t *testing.T) {
	pd := predictor(t)
	// Random pre-trims to the budget, so drive the overrun through
	// exhaustive's refusal path plus a follow-up sampling run sharing
	// the numbers: 30 then budget error leaves exactly 30 evaluated.
	rep, err := search.Run(context.Background(), mipp.NewSearchEvaluator(pd, 0),
		arch.TableSpace(), overBudgetStrategy{}, search.Options{Seed: 1, Budget: 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluations != 30 || len(rep.Trace) != 1 || rep.Trace[0].Evaluations != 30 {
		t.Errorf("rollback report = %+v", rep)
	}
}

// overBudgetStrategy evaluates exactly the budget, then deliberately asks
// for more and swallows the budget error — the soft-stop pattern a custom
// Strategy may use.
type overBudgetStrategy struct{}

func (overBudgetStrategy) Name() string { return "over-budget" }

func (overBudgetStrategy) Search(ctx context.Context, r *search.Runner) error {
	first := make([]int, 0, r.Remaining())
	for i := 0; i < r.Remaining(); i++ {
		first = append(first, i)
	}
	if _, err := r.Evaluate(ctx, first); err != nil {
		return err
	}
	over := []int{100, 101, 102}
	if _, err := r.Evaluate(ctx, over); err == nil {
		return fmt.Errorf("over-budget Evaluate did not error")
	}
	if r.Evaluations() != len(first) {
		return fmt.Errorf("Evaluations() = %d after rollback, want %d", r.Evaluations(), len(first))
	}
	if r.Seen(100) {
		return fmt.Errorf("phantom point 100 left in the memo")
	}
	return nil
}

// TestCancellation: a cancelled context aborts the run with ctx.Err().
func TestCancellation(t *testing.T) {
	pd := predictor(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := search.Run(ctx, mipp.NewSearchEvaluator(pd, 1), arch.TableSpace(), search.Exhaustive{}, search.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestConstraintsInfeasible: an impossible cap yields no best point but
// still reports evaluations and an empty front.
func TestConstraintsInfeasible(t *testing.T) {
	pd := predictor(t)
	rep, err := search.Run(context.Background(), mipp.NewSearchEvaluator(pd, 0),
		arch.TableSpace(), search.Random{Samples: 20}, search.Options{
			Seed:        3,
			Constraints: search.Constraints{MaxWatts: 0.001},
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best != nil || rep.Feasible != 0 || len(rep.Front) != 0 {
		t.Errorf("impossible cap produced best=%v feasible=%d front=%d", rep.Best, rep.Feasible, len(rep.Front))
	}
	if rep.Evaluations != 20 {
		t.Errorf("evaluated %d, want 20", rep.Evaluations)
	}
}

// TestAreaConstraint: an area cap excludes big cores from the feasible set.
func TestAreaConstraint(t *testing.T) {
	pd := predictor(t)
	rep, err := search.Run(context.Background(), mipp.NewSearchEvaluator(pd, 0),
		arch.TableSpace(), search.Exhaustive{}, search.Options{
			Constraints: search.Constraints{MaxArea: 1.0},
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil {
		t.Fatal("no feasible point under area cap 1.0")
	}
	if rep.Best.Area > 1.0 {
		t.Errorf("best area %g exceeds cap", rep.Best.Area)
	}
	if rep.Feasible == rep.Evaluations {
		t.Errorf("area cap 1.0 excluded nothing (%d/%d feasible)", rep.Feasible, rep.Evaluations)
	}
}
