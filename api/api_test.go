package api

import (
	"encoding/json"
	"strings"
	"testing"

	"mipp/arch"
)

func TestCheckVersion(t *testing.T) {
	if err := CheckVersion(SchemaVersion); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
	for _, v := range []int{0, -1, SchemaVersion + 1, 99} {
		if err := CheckVersion(v); err == nil {
			t.Errorf("version %d accepted", v)
		}
	}
}

func TestPredictorSpecKeyCanonical(t *testing.T) {
	// Spelled-out defaults and the zero value share a cache key.
	zero := PredictorSpec{}
	spelled := PredictorSpec{MLPMode: "stride", DispatchModel: "full"}
	if zero.Key() != spelled.Key() {
		t.Errorf("zero key %q != spelled key %q", zero.Key(), spelled.Key())
	}
	// Every option perturbs the key.
	br := 0.01
	pf := true
	variants := []PredictorSpec{
		{MLPMode: "cold-miss"},
		{MLPMode: "none"},
		{Combined: true},
		{BranchMissRate: &br},
		{NoLLCChain: true},
		{NoBusQueue: true},
		{DispatchModel: "uops"},
		{DispatchModel: "critical"},
		{Prefetcher: &pf},
	}
	seen := map[string]int{zero.Key(): -1}
	for i, s := range variants {
		k := s.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("variants %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
}

func TestPredictorSpecValidate(t *testing.T) {
	good := []PredictorSpec{
		{},
		{MLPMode: "stride"},
		{MLPMode: "cold-miss", DispatchModel: "instructions"},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", s, err)
		}
	}
	if err := (PredictorSpec{MLPMode: "warp"}).Validate(); err == nil {
		t.Error("unknown mlp_mode accepted")
		//mipp:allow wraperr this error has no sentinel; its message is the documented contract
	} else if !strings.Contains(err.Error(), "cold-miss") {
		t.Errorf("error %q does not list accepted modes", err)
	}
	if err := (PredictorSpec{DispatchModel: "sideways"}).Validate(); err == nil {
		t.Error("unknown dispatch_model accepted")
	}
}

func TestConfigSpecResolve(t *testing.T) {
	if c, err := (ConfigSpec{Name: "reference"}).Resolve(); err != nil || c.Name != "nehalem-ref" {
		t.Errorf("Resolve(reference) = %v, %v", c, err)
	}
	inline := arch.LowPower()
	if c, err := (ConfigSpec{Config: inline}).Resolve(); err != nil || c != inline {
		t.Errorf("inline Resolve = %v, %v", c, err)
	}
	for _, cs := range []ConfigSpec{
		{},
		{Name: "no-such-machine"},
		{Name: "reference", Config: inline},
	} {
		if _, err := cs.Resolve(); err == nil {
			t.Errorf("Resolve(%+v) accepted", cs)
		}
	}
}

func TestSpaceSpecExpand(t *testing.T) {
	full, err := SpaceSpec{Kind: "design"}.Expand()
	if err != nil || len(full) != 243 {
		t.Errorf("design space = %d configs, %v; want 243", len(full), err)
	}
	sampled, err := SpaceSpec{Kind: "design", Stride: 13}.Expand()
	if err != nil || len(sampled) != 19 {
		t.Errorf("sampled space = %d configs, %v; want 19", len(sampled), err)
	}
	dvfs, err := SpaceSpec{Kind: "dvfs"}.Expand()
	if err != nil || len(dvfs) == 0 {
		t.Errorf("dvfs space = %d configs, %v", len(dvfs), err)
	}
	if _, err := (SpaceSpec{Kind: "hypercube"}).Expand(); err == nil {
		t.Error("unknown space kind accepted")
	}
	if _, err := (SpaceSpec{Kind: "dvfs", Stride: 5}).Expand(); err == nil {
		t.Error("dvfs with stride accepted (stride is design-space only)")
	}
}

func TestExpandConfigsCombines(t *testing.T) {
	out, err := ExpandConfigs([]ConfigSpec{{Name: "lowpower"}}, &SpaceSpec{Kind: "design", Stride: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Errorf("got %d configs, want 1 + 19", len(out))
	}
	if out[0].Name != "low-power" {
		t.Errorf("explicit config not first: %s", out[0].Name)
	}
	if _, err := ExpandConfigs(nil, nil); err == nil {
		t.Error("empty expansion accepted")
	}
	if _, err := ExpandConfigs([]ConfigSpec{{Name: "nope"}}, nil); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestRequestValidation(t *testing.T) {
	valid := []interface{ Validate() error }{
		&PredictRequest{SchemaVersion: SchemaVersion, Workload: "w", Config: ConfigSpec{Name: "reference"}},
		&SweepRequest{SchemaVersion: SchemaVersion, Workload: "w", Space: &SpaceSpec{Kind: "design"}},
		&BatchRequest{SchemaVersion: SchemaVersion, Workloads: []string{"w"}, Configs: []ConfigSpec{{Name: "reference"}}},
		&ParetoRequest{SchemaVersion: SchemaVersion, Workload: "w", Configs: []ConfigSpec{{Name: "reference"}}},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion, Workload: "w", Uops: 1000},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion, Profile: json.RawMessage(`{}`)},
	}
	for i, r := range valid {
		if err := r.Validate(); err != nil {
			t.Errorf("valid request %d rejected: %v", i, err)
		}
	}
	invalid := []interface{ Validate() error }{
		&PredictRequest{SchemaVersion: 99, Workload: "w"},
		&PredictRequest{SchemaVersion: SchemaVersion},
		&SweepRequest{SchemaVersion: SchemaVersion, Workload: "w"},
		&SweepRequest{SchemaVersion: SchemaVersion, Configs: []ConfigSpec{{Name: "reference"}}},
		&BatchRequest{SchemaVersion: SchemaVersion, Configs: []ConfigSpec{{Name: "reference"}}},
		&BatchRequest{SchemaVersion: SchemaVersion, Workloads: []string{""}, Configs: []ConfigSpec{{Name: "reference"}}},
		&BatchRequest{SchemaVersion: SchemaVersion, Workloads: []string{"w"}},
		&ParetoRequest{SchemaVersion: SchemaVersion, Workload: "w"},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion, Workload: "w"},
		&RegisterProfileRequest{SchemaVersion: SchemaVersion, Workload: "w", Uops: 100, Profile: json.RawMessage(`{}`)},
		&PredictRequest{SchemaVersion: SchemaVersion, Workload: "w", Options: PredictorSpec{MLPMode: "warp"}},
	}
	for i, r := range invalid {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid request %d accepted", i)
		}
	}
}

// The wire format of a result must stay snake_case and complete — clients
// in other languages key on these names.
func TestResultWireFormat(t *testing.T) {
	data, err := json.Marshal(&Result{Workload: "w", Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"workload"`, `"config"`, `"frequency_ghz"`, `"cycles"`, `"cpi"`,
		`"time_seconds"`, `"cpi_stack"`, `"power"`, `"watts"`,
		`"energy_joules"`, `"edp"`, `"ed2p"`, `"deff"`, `"mlp"`,
		`"branch_miss_rate"`, `"base"`, `"branch"`, `"icache"`, `"llc"`,
		`"dram"`, `"static"`, `"core"`, `"fu"`, `"cache"`, `"bpred"`,
	} {
		if !strings.Contains(string(data), field) {
			t.Errorf("result JSON missing %s: %s", field, data)
		}
	}
	if strings.Contains(string(data), "micro_cpi") {
		t.Error("empty micro_cpi not omitted")
	}
}

func TestSpaceSpecParametric(t *testing.T) {
	small := &arch.Space{Widths: []int{2, 4}, ROBs: []int{64, 128}}
	cfgs, err := SpaceSpec{Kind: "parametric", Space: small}.Expand()
	if err != nil || len(cfgs) != 4 {
		t.Fatalf("parametric expand = %d configs, err %v", len(cfgs), err)
	}
	if cfgs[0].Name == "" || cfgs[0].Name == cfgs[3].Name {
		t.Errorf("expanded names not distinct: %q %q", cfgs[0].Name, cfgs[3].Name)
	}

	// Stride samples the enumeration.
	cfgs, err = SpaceSpec{Kind: "parametric", Space: small, Stride: 2}.Expand()
	if err != nil || len(cfgs) != 2 {
		t.Fatalf("strided parametric expand = %d configs, err %v", len(cfgs), err)
	}

	// Oversized spaces must be refused on the materializing paths and
	// directed to /v1/search...
	big := &arch.Space{
		Widths:  []int{1, 2, 3, 4, 5, 6},
		ROBs:    []int{16, 24, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 512},
		L2Bytes: []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20},
		L3Bytes: []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20},
		Clocks: []arch.DVFSPoint{
			{FrequencyGHz: 1.2, VoltageV: 0.85}, {FrequencyGHz: 1.6, VoltageV: 0.95},
			{FrequencyGHz: 2.0, VoltageV: 1.0}, {FrequencyGHz: 2.4, VoltageV: 1.05},
			{FrequencyGHz: 2.66, VoltageV: 1.1}, {FrequencyGHz: 2.8, VoltageV: 1.13},
			{FrequencyGHz: 3.2, VoltageV: 1.2}, {FrequencyGHz: 3.33, VoltageV: 1.25},
		},
		Prefetcher: []bool{false, true},
	}
	if _, err := (SpaceSpec{Kind: "parametric", Space: big}).Expand(); err == nil ||
		//mipp:allow wraperr this error has no sentinel; its message is the documented contract
		!strings.Contains(err.Error(), "/v1/search") {
		t.Errorf("oversized parametric expand err = %v, want /v1/search hint", err)
	}
	// ...but walk lazily without complaint.
	sp, err := SpaceSpec{Kind: "parametric", Space: big}.Lazy()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 6*16*7*7*8*2 {
		t.Errorf("lazy size = %d", sp.Size())
	}

	// Lazy forms of the named kinds.
	if sp, err := (SpaceSpec{Kind: "design"}).Lazy(); err != nil || sp.Size() != 243 {
		t.Errorf("lazy design = %v size %d", err, sp.Size())
	}
	if sp, err := (SpaceSpec{Kind: "dvfs"}).Lazy(); err != nil || sp.Size() != 5 {
		t.Errorf("lazy dvfs = %v", err)
	}
	// The materialized and lazy dvfs paths must agree on names, so sweep
	// and search results join across endpoints.
	dvfsCfgs, err := SpaceSpec{Kind: "dvfs"}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	dvfsSpace, _ := SpaceSpec{Kind: "dvfs"}.Lazy()
	for i, c := range dvfsCfgs {
		if lazy := dvfsSpace.At(i); lazy.Name != c.Name {
			t.Errorf("dvfs name mismatch at %d: expand %q vs lazy %q", i, c.Name, lazy.Name)
		}
	}
	if _, err := (SpaceSpec{Kind: "parametric"}).Lazy(); err == nil {
		t.Error("axis-less parametric Lazy did not error")
	}
	if _, err := (SpaceSpec{Kind: "design", Stride: 3}).Lazy(); err == nil {
		t.Error("strided lazy design space did not error")
	}
	if _, err := (SpaceSpec{Kind: "design", Space: small}).Lazy(); err == nil {
		t.Error("design kind with parametric axes did not error")
	}
	if _, err := (SpaceSpec{Kind: "dvfs", Stride: 3}).Lazy(); err == nil {
		t.Error("strided lazy dvfs space did not error")
	}
}

func TestStrategySpecValidate(t *testing.T) {
	good := []StrategySpec{
		{Kind: "exhaustive"},
		{Kind: "random", Seed: 9, Samples: 100},
		{Kind: "hill", Restarts: 4},
		{Kind: "genetic", Population: 32, Generations: 10, MutationRate: 0.2, Elite: 2},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v: %v", s, err)
		}
	}
	bad := []StrategySpec{
		{},
		{Kind: "annealing"},
		{Kind: "random", Samples: -1},
		{Kind: "genetic", MutationRate: 1.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v validated, want error", s)
		}
	}
}

func TestSearchRequestValidate(t *testing.T) {
	ok := SearchRequest{
		SchemaVersion: SchemaVersion,
		Workload:      "mcf",
		Space:         SpaceSpec{Kind: "design"},
		Strategy:      StrategySpec{Kind: "random"},
		Objective:     "ed2p",
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	neg := -1.0
	bad := []SearchRequest{
		{SchemaVersion: 9, Workload: "m", Space: SpaceSpec{Kind: "design"}, Strategy: StrategySpec{Kind: "random"}},
		{SchemaVersion: SchemaVersion, Space: SpaceSpec{Kind: "design"}, Strategy: StrategySpec{Kind: "random"}},
		{SchemaVersion: SchemaVersion, Workload: "m", Strategy: StrategySpec{Kind: "random"}},
		{SchemaVersion: SchemaVersion, Workload: "m", Space: SpaceSpec{Kind: "design"}, Strategy: StrategySpec{Kind: "nope"}},
		{SchemaVersion: SchemaVersion, Workload: "m", Space: SpaceSpec{Kind: "design"}, Strategy: StrategySpec{Kind: "random"}, Objective: "speed"},
		{SchemaVersion: SchemaVersion, Workload: "m", Space: SpaceSpec{Kind: "design"}, Strategy: StrategySpec{Kind: "random"}, Budget: -2},
		{SchemaVersion: SchemaVersion, Workload: "m", Space: SpaceSpec{Kind: "design"}, Strategy: StrategySpec{Kind: "random"}, CapWatts: &neg},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad request %d validated", i)
		}
	}
}
