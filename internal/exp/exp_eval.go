package exp

import (
	"fmt"
	"io"

	"mipp"
	"mipp/internal/config"
	"mipp/internal/perf"
	"mipp/internal/power"
	"mipp/internal/stats"
)

func init() {
	register("tab6.1", "Reference architecture (Table 6.1)", tab6x1)
	register("fig6.1", "CPI stacks: model vs simulator (Figure 6.1)", fig6x1)
	register("fig6.3", "Prediction error vs instructions profiled (Figure 6.3)", fig6x3)
	register("tab6.2", "Error per micro-architecture independent input (Table 6.2)", tab6x2)
	register("tab6.3", "Design space (Table 6.3)", tab6x3)
	register("fig6.4", "Separate vs combined micro-trace evaluation (Figure 6.4)", fig6x4)
	register("fig6.5", "Performance error across the design space (Figure 6.5)", fig6x5)
	register("fig6.6", "Model CPI vs simulated CPI scatter (Figure 6.6)", fig6x6)
	register("fig6.7", "Power stacks: model vs simulator (Figure 6.7)", fig6x7)
	register("fig6.8", "Power error CDF (Figure 6.8)", fig6x8)
	register("fig6.9", "Power error across the design space (Figure 6.9)", fig6x9)
	register("fig6.10", "Model power vs simulated power scatter (Figure 6.10)", fig6x10)
	register("fig6.11", "Base component over time: gamess & gromacs (Figure 6.11)", fig6x11)
	register("fig6.12", "DRAM component over time: milc & mcf (Figure 6.12)", fig6x12)
	register("fig6.13", "gromacs: reference vs low-power core (Figure 6.13)", fig6x13)
	register("fig6.14", "Phase analysis: astar, bzip2, cactusADM (Figure 6.14)", fig6x14)
}

func tab6x1(s *Suite, w io.Writer) {
	header(w, "reference architecture")
	fmt.Fprintln(w, config.Reference().String())
}

func fig6x1(s *Suite, w io.Writer) {
	header(w, "CPI stacks (per instruction): simulator | model")
	cfg := config.Reference()
	var errs []float64
	for _, name := range s.Workloads {
		sim := s.Sim(name, cfg, s.N)
		res := s.Predict(name, cfg, s.N)
		ss := sim.Stack.PerInstruction(sim.Instructions)
		ms := res.Stack.PerInstruction(int64(res.Instructions))
		e := stats.AbsErr(res.Cycles, float64(sim.Cycles))
		errs = append(errs, e)
		fmt.Fprintf(w, "%-12s sim[%s] model[%s] err=%.1f%%\n", name, stackRow(&ss), stackRow(&ms), e*100)
	}
	fmt.Fprintf(w, "average CPI error %.1f%%\n", stats.Mean(errs)*100)
}

func stackRow(s *perf.CPIStack) string {
	return fmt.Sprintf("base=%.2f br=%.2f ic=%.2f llc=%.2f dram=%.2f tot=%.2f",
		s.Cycles[perf.Base], s.Cycles[perf.BranchComp], s.Cycles[perf.ICache],
		s.Cycles[perf.LLCHit], s.Cycles[perf.DRAM], s.Total())
}

func fig6x3(s *Suite, w io.Writer) {
	header(w, "CPI error vs fraction of instructions profiled")
	cfg := config.Reference()
	rates := []struct {
		micro, window int
	}{
		{500, 20000}, {1000, 10000}, {1000, 5000}, {2000, 4000}, {2000, 2000},
	}
	for _, r := range rates {
		var errs []float64
		for _, name := range s.Workloads {
			sim := s.Sim(name, cfg, s.N)
			st := s.Stream(name, s.N)
			p := mipp.NewProfiler(mipp.WithMicroTrace(r.micro, r.window)).ProfileStream(st)
			pd, err := mipp.NewPredictor(p)
			if err != nil {
				panic(err)
			}
			res, err := pd.Predict(cfg)
			if err != nil {
				panic(err)
			}
			errs = append(errs, stats.AbsErr(res.Cycles, float64(sim.Cycles)))
		}
		fmt.Fprintf(w, "sample %4d/%5d (%.1f%% profiled): avg err %.1f%%\n",
			r.micro, r.window, float64(r.micro)/float64(r.window)*100, stats.Mean(errs)*100)
	}
}

func tab6x2(s *Suite, w io.Writer) {
	header(w, "error when replacing simulated inputs with micro-architecture independent ones")
	cfg := config.Reference()
	variants := []struct {
		name string
		opts func(simRate float64) []mipp.PredictorOption
	}{
		{"simulated branch missrate + stride MLP", func(simRate float64) []mipp.PredictorOption {
			return []mipp.PredictorOption{mipp.WithBranchMissRate(simRate)}
		}},
		{"entropy branch model + stride MLP", func(float64) []mipp.PredictorOption { return nil }},
		{"entropy branch model + cold-miss MLP", func(float64) []mipp.PredictorOption {
			return []mipp.PredictorOption{mipp.WithMLPMode(mipp.MLPColdMiss)}
		}},
		{"entropy branch model + no MLP", func(float64) []mipp.PredictorOption {
			return []mipp.PredictorOption{mipp.WithMLPMode(mipp.MLPNone)}
		}},
	}
	for _, v := range variants {
		var errs []float64
		for _, name := range s.Workloads {
			sim := s.Sim(name, cfg, s.N)
			simRate := 0.0
			if sim.Branches > 0 {
				simRate = float64(sim.BranchMispredicts) / float64(sim.Branches)
			}
			res, err := s.PredictorWith(name, s.N, v.opts(simRate)...).Predict(cfg)
			if err != nil {
				panic(err)
			}
			errs = append(errs, stats.AbsErr(res.Cycles, float64(sim.Cycles)))
		}
		fmt.Fprintf(w, "%-42s avg=%5.1f%% max=%5.1f%%\n", v.name, stats.Mean(errs)*100, stats.Max(errs)*100)
	}
}

func tab6x3(s *Suite, w io.Writer) {
	header(w, "design space: 3^5 = 243 configurations")
	space := config.DesignSpace()
	fmt.Fprintf(w, "width {2,4,6} x ROB {64,128,256} x L2 {128,256,512KB} x L3 {2,4,8MB} x freq {2.0,2.66,3.33GHz}\n")
	fmt.Fprintf(w, "total configurations: %d\n", len(space))
	fmt.Fprintf(w, "first: %s\n", space[0].Name)
	fmt.Fprintf(w, "last:  %s\n", space[len(space)-1].Name)
}

func fig6x4(s *Suite, w io.Writer) {
	header(w, "CPI error CDF: per-micro-trace evaluation vs combined average profile")
	cfg := config.Reference()
	var sep, comb []float64
	for _, name := range s.Workloads {
		sim := s.Sim(name, cfg, s.N)
		rs := s.Predict(name, cfg, s.N)
		rc, err := s.PredictorWith(name, s.N, mipp.WithCombinedEvaluation()).Predict(cfg)
		if err != nil {
			panic(err)
		}
		sep = append(sep, stats.AbsErr(rs.Cycles, float64(sim.Cycles)))
		comb = append(comb, stats.AbsErr(rc.Cycles, float64(sim.Cycles)))
	}
	for _, lim := range []float64{0.05, 0.10, 0.20, 0.30, 0.50} {
		fmt.Fprintf(w, "<=%3.0f%%: separate %.0f%%  combined %.0f%% of benchmarks\n",
			lim*100, stats.FractionBelow(sep, lim)*100, stats.FractionBelow(comb, lim)*100)
	}
	fmt.Fprintf(w, "averages: separate %.1f%%, combined %.1f%%\n", stats.Mean(sep)*100, stats.Mean(comb)*100)
}

// designSpaceRuns evaluates a stratified design-space sample with both the
// simulator and the model (through the public Sweep path), shared by
// Figures 6.5-6.10.
func (s *Suite) designSpaceRuns(k, n int) (configs []*config.Config, simCPI, modCPI, simW, modW map[string][]float64) {
	configs = SpaceSample(k)
	simCPI = map[string][]float64{}
	modCPI = map[string][]float64{}
	simW = map[string][]float64{}
	modW = map[string][]float64{}
	for _, name := range s.Workloads {
		results := s.Sweep(name, configs, n)
		for i, cfg := range configs {
			sim := s.Sim(name, cfg, n)
			simCPI[name] = append(simCPI[name], sim.CPI())
			modCPI[name] = append(modCPI[name], results[i].CPI())
			simW[name] = append(simW[name], power.Estimate(cfg, &sim.Activity).Total())
			modW[name] = append(modW[name], results[i].Watts())
		}
	}
	return
}

const spaceStride = 13 // 243/13 ≈ 19 configs: every parameter value appears

func fig6x5(s *Suite, w io.Writer) {
	header(w, "performance error per benchmark across the design-space sample")
	_, simCPI, modCPI, _, _ := s.designSpaceRuns(spaceStride, s.N/3)
	var all []float64
	for _, name := range s.Workloads {
		var errs []float64
		for i := range simCPI[name] {
			errs = append(errs, stats.AbsErr(modCPI[name][i], simCPI[name][i]))
		}
		all = append(all, errs...)
		b := stats.Box(errs)
		fmt.Fprintf(w, "%-12s mean=%5.1f%% med=%5.1f%% q1=%5.1f%% q3=%5.1f%% max=%5.1f%%\n",
			name, b.Mean*100, b.Median*100, b.Q1*100, b.Q3*100, b.Hi*100)
	}
	fmt.Fprintf(w, "overall average %.1f%%\n", stats.Mean(all)*100)
}

func fig6x6(s *Suite, w io.Writer) {
	header(w, "scatter: simulated CPI vs model CPI (design-space sample)")
	configs, simCPI, modCPI, _, _ := s.designSpaceRuns(spaceStride, s.N/3)
	for _, name := range s.Workloads {
		for i := range configs {
			fmt.Fprintf(w, "%s,%s,%.4f,%.4f\n", name, configs[i].Name, simCPI[name][i], modCPI[name][i])
		}
	}
}

func fig6x7(s *Suite, w io.Writer) {
	header(w, "power stacks: simulator-activity vs model-activity (reference arch)")
	cfg := config.Reference()
	var errs []float64
	for _, name := range s.Workloads {
		sim := s.Sim(name, cfg, s.N)
		res := s.Predict(name, cfg, s.N)
		ps := power.Estimate(cfg, &sim.Activity)
		pm := res.Power
		e := stats.AbsErr(pm.Total(), ps.Total())
		errs = append(errs, e)
		fmt.Fprintf(w, "%-12s sim=%s\n             mod=%s err=%.1f%%\n", name, ps.String(), pm.String(), e*100)
	}
	fmt.Fprintf(w, "average power error %.1f%%\n", stats.Mean(errs)*100)
}

func fig6x8(s *Suite, w io.Writer) {
	header(w, "power error CDF across the design-space sample")
	_, _, _, simW, modW := s.designSpaceRuns(spaceStride, s.N/3)
	var errs []float64
	for _, name := range s.Workloads {
		for i := range simW[name] {
			errs = append(errs, stats.AbsErr(modW[name][i], simW[name][i]))
		}
	}
	for _, lim := range []float64{0.02, 0.05, 0.10, 0.20} {
		fmt.Fprintf(w, "<=%3.0f%%: %.0f%% of predictions\n", lim*100, stats.FractionBelow(errs, lim)*100)
	}
	fmt.Fprintf(w, "average %.1f%%\n", stats.Mean(errs)*100)
}

func fig6x9(s *Suite, w io.Writer) {
	header(w, "power error per benchmark across the design-space sample")
	_, _, _, simW, modW := s.designSpaceRuns(spaceStride, s.N/3)
	var all []float64
	for _, name := range s.Workloads {
		var errs []float64
		for i := range simW[name] {
			errs = append(errs, stats.AbsErr(modW[name][i], simW[name][i]))
		}
		all = append(all, errs...)
		b := stats.Box(errs)
		fmt.Fprintf(w, "%-12s mean=%5.1f%% med=%5.1f%% max=%5.1f%%\n", name, b.Mean*100, b.Median*100, b.Hi*100)
	}
	fmt.Fprintf(w, "overall average %.1f%%\n", stats.Mean(all)*100)
}

func fig6x10(s *Suite, w io.Writer) {
	header(w, "scatter: simulated power vs model power (design-space sample)")
	configs, _, _, simW, modW := s.designSpaceRuns(spaceStride, s.N/3)
	for _, name := range s.Workloads {
		for i := range configs {
			fmt.Fprintf(w, "%s,%s,%.3f,%.3f\n", name, configs[i].Name, simW[name][i], modW[name][i])
		}
	}
}

// phaseCompare prints per-window CPI for simulator and model.
func phaseCompare(s *Suite, w io.Writer, name string, cfg *config.Config) {
	st := s.Stream(name, s.N)
	win := s.N / 25
	sim, err := simWithWindows(cfg, st, win)
	if err != nil {
		panic(err)
	}
	res := s.Predict(name, cfg, s.N)
	simCPI := sim.WindowCPI(win)
	upi := res.Uops / res.Instructions
	var modSeries []float64
	for i := range simCPI {
		k := i * len(res.MicroCPI) / len(simCPI)
		if k < len(res.MicroCPI) {
			modSeries = append(modSeries, res.MicroCPI[k]*upi)
		}
	}
	pac := stats.Pearson(simCPI[:len(modSeries)], modSeries)
	fmt.Fprintf(w, "%s on %s: phase-accuracy coefficient (Pearson) = %.3f\n", name, cfg.Name, pac)
	for i := range modSeries {
		fmt.Fprintf(w, "  window %2d sim=%.3f model=%.3f\n", i, simCPI[i], modSeries[i])
	}
}

func fig6x11(s *Suite, w io.Writer) {
	header(w, "base-component phase view: gamess, gromacs")
	cfg := config.Reference()
	phaseCompare(s, w, "gamess", cfg)
	phaseCompare(s, w, "gromacs", cfg)
}

func fig6x12(s *Suite, w io.Writer) {
	header(w, "DRAM-component phase view: milc, mcf")
	cfg := config.Reference()
	phaseCompare(s, w, "milc", cfg)
	phaseCompare(s, w, "mcf", cfg)
}

func fig6x13(s *Suite, w io.Writer) {
	header(w, "gromacs: reference vs low-power core")
	phaseCompare(s, w, "gromacs", config.Reference())
	phaseCompare(s, w, "gromacs", config.LowPower())
}

func fig6x14(s *Suite, w io.Writer) {
	header(w, "phase graphs: astar, bzip2, cactusADM")
	cfg := config.Reference()
	for _, name := range []string{"astar", "bzip2", "cactusADM"} {
		phaseCompare(s, w, name, cfg)
	}
}
