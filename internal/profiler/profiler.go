// Package profiler is the Architecture Independent Profiler (AIP): a single
// pass over a workload's dynamic micro-op stream collects every
// micro-architecture independent statistic the analytical model needs —
// instruction mix, dependence chains (AP/ABP/CP per ROB size), linear branch
// entropy, reuse-distance distributions, cold-miss distributions and
// per-static-load spacing/stride/dependence distributions.
//
// Profiling uses micro-trace sampling (§5.1): a micro-trace of MicroUops is
// profiled in detail at the start of every window of WindowUops; in between,
// only the cheap global statistics (reuse distances, cold-miss tracking,
// branch entropy) are maintained. A profile is collected once per workload
// and reused across the entire design space (§2.6).
package profiler

import (
	"mipp/internal/branch"
	"mipp/internal/stats"
	"mipp/internal/trace"
)

// Options configures a profiling run.
type Options struct {
	// MicroUops is the length of one detailed micro-trace (default 1000).
	MicroUops int
	// WindowUops is the sampling period: one micro-trace is collected per
	// window (default max(10×MicroUops, stream length / 100)).
	WindowUops int
	// ROBs is the set of profiled ROB sizes (default StandardROBs()).
	ROBs []int
	// LineBytes is the cache-line granularity for memory statistics.
	LineBytes uint64
	// EntropyHistory is the local-history length of the linear branch
	// entropy metric (default 12 bits).
	EntropyHistory uint
	// Bursts is the number of reuse-distance bursts the stream is split
	// into (§5.4.1); per-burst conversion keeps StatStack accurate for
	// phase-heterogeneous streams (default 12).
	Bursts int
}

// ROBIndexFor returns the index into o.ROBs of the profiled ROB size nearest
// rob (the first wins on ties, matching the strict-< scans it replaces), or
// -1 when no ROB sizes were profiled. Every consumer that quantizes an
// arbitrary ROB to a profiled one — dependence histograms, cold-miss
// windows, the stride-MLP depth assignment — goes through this, so memo
// tables keyed by the index agree exactly with the lookups they cache.
func (o Options) ROBIndexFor(rob int) int {
	best, bestDiff := -1, 1<<30
	for i, r := range o.ROBs {
		d := r - rob
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

func (o Options) withDefaults(streamLen int) Options {
	if o.MicroUops <= 0 {
		o.MicroUops = 1000
	}
	if o.WindowUops <= 0 {
		o.WindowUops = streamLen / 100
		if min := o.MicroUops * 10; o.WindowUops < min {
			o.WindowUops = min
		}
	}
	if o.WindowUops < o.MicroUops {
		o.WindowUops = o.MicroUops
	}
	if len(o.ROBs) == 0 {
		o.ROBs = StandardROBs()
	}
	if o.LineBytes == 0 {
		o.LineBytes = 64
	}
	if o.EntropyHistory == 0 {
		o.EntropyHistory = 12
	}
	if o.Bursts <= 0 {
		o.Bursts = 12
	}
	return o
}

// ReuseBurst holds the reuse-distance histograms of one burst of the memory
// access stream (§5.4.1). Converting each burst separately and aggregating
// miss ratios keeps the StatStack conversion accurate when locality changes
// across program phases.
type ReuseBurst struct {
	All       *stats.Histogram `json:"all"`
	Load      *stats.Histogram `json:"load"`
	Store     *stats.Histogram `json:"store"`
	ColdAll   int64            `json:"cold_all"`
	ColdLoad  int64            `json:"cold_load"`
	ColdStore int64            `json:"cold_store"`
	Loads     int64            `json:"loads"`
	Stores    int64            `json:"stores"`
}

// StaticLoad summarizes one static load's behaviour within one micro-trace:
// its load-spacing and stride distributions (§4.5).
type StaticLoad struct {
	Static   uint32 `json:"static"`
	PC       uint64 `json:"pc"`
	FirstPos int    `json:"first_pos"` // position in the micro-trace
	Count    int    `json:"count"`
	// SpacingSum is the total uop distance between successive recurrences;
	// SpacingSum/(Count-1) is the average spacing.
	SpacingSum int              `json:"spacing_sum"`
	Strides    *stats.Histogram `json:"strides"` // byte deltas between recurrences

	lastPos  int
	lastAddr uint64
	seen     bool
}

// AvgSpacing returns the mean uop distance between recurrences (0 for a
// unique load).
func (s *StaticLoad) AvgSpacing() float64 {
	if s.Count < 2 {
		return 0
	}
	return float64(s.SpacingSum) / float64(s.Count-1)
}

// Micro is the detailed profile of one micro-trace.
type Micro struct {
	Start     int                     `json:"start"` // uop index of the first profiled uop
	Len       int                     `json:"len"`
	Instrs    int64                   `json:"instrs"`
	MixCounts [trace.NumClasses]int64 `json:"mix"`
	Branches  int64                   `json:"branches"`
	// Chains holds AP/ABP/CP for the standard ROB sizes.
	Chains *ChainSet `json:"chains"`
	// LoadDeps[i] is the inter-load dependence distribution f(ℓ) for
	// Options.ROBs[i].
	LoadDeps []*stats.Histogram `json:"load_deps"`
	// ColdLoads counts loads touching a line never touched before in the
	// full stream.
	ColdLoads int64 `json:"cold_loads"`
	// LoadCount and StoreCount are the memory accesses in this trace.
	LoadCount  int64 `json:"loads"`
	StoreCount int64 `json:"stores"`
	// Reuse and ReuseLoads are reuse-distance histograms of this trace's
	// accesses, measured against the full-stream history.
	Reuse      *stats.Histogram `json:"reuse"`
	ReuseLoads *stats.Histogram `json:"reuse_loads"`
	// ColdReuse counts this trace's first-touch accesses (infinite reuse).
	ColdReuse     int64 `json:"cold_reuse"`
	ColdLoadReuse int64 `json:"cold_load_reuse"`
	// Loads lists the per-static-load spacing/stride records.
	Loads []*StaticLoad `json:"static_loads"`
}

// Mix returns this micro-trace's uop-class fractions.
func (m *Micro) Mix() [trace.NumClasses]float64 {
	var out [trace.NumClasses]float64
	if m.Len == 0 {
		return out
	}
	for c, n := range m.MixCounts {
		out[c] = float64(n) / float64(m.Len)
	}
	return out
}

// Profile is the complete micro-architecture independent application profile.
type Profile struct {
	Workload    string  `json:"workload"`
	TotalUops   int64   `json:"total_uops"`
	TotalInstrs int64   `json:"total_instrs"`
	Opts        Options `json:"options"`

	// Micros are the sampled micro-trace profiles.
	Micros []*Micro `json:"micros"`

	// Entropy is the linear branch entropy over the full stream.
	Entropy  float64 `json:"entropy"`
	Branches int64   `json:"branches"`

	// Global reuse-distance histograms at line granularity: all accesses
	// combined, split by the type of the reusing access, and the
	// instruction-fetch side.
	ReuseAll   *stats.Histogram `json:"reuse_all"`
	ReuseLoad  *stats.Histogram `json:"reuse_load"`
	ReuseStore *stats.Histogram `json:"reuse_store"`
	ReuseInstr *stats.Histogram `json:"reuse_instr"`
	// Cold (first-touch) access counts: infinite reuse distance.
	ColdAll    int64 `json:"cold_all"`
	ColdLoads  int64 `json:"cold_loads"`
	ColdStores int64 `json:"cold_stores"`
	ColdInstr  int64 `json:"cold_instr"`
	// Access totals over the full stream.
	MemAccesses int64 `json:"mem_accesses"`
	LoadCount   int64 `json:"loads"`
	StoreCount  int64 `json:"stores"`
	InstrFetch  int64 `json:"ifetches"`

	// ColdPerROB[i] is the distribution of the number of cold-miss loads
	// per window of Opts.ROBs[i] uops, over the full stream (§4.4).
	ColdPerROB []*stats.Histogram `json:"cold_per_rob"`

	// Bursts are the per-burst reuse-distance histograms (§5.4.1).
	Bursts []*ReuseBurst `json:"bursts"`

	// PerStaticReuse maps a static load to the reuse-distance histogram of
	// its accesses (sampled over the full stream), used by the stride-MLP
	// model to estimate per-static-load miss rates.
	PerStaticReuse map[uint32]*stats.Histogram `json:"per_static_reuse"`
	// PerStaticCold counts first-touch accesses per static load.
	PerStaticCold map[uint32]int64 `json:"per_static_cold"`

	// Chains is the micro-trace-averaged dependence-chain profile.
	Chains *ChainSet `json:"chains"`
	// MixCounts is the sampled aggregate instruction mix.
	MixCounts  [trace.NumClasses]int64 `json:"mix"`
	MicroUops  int64                   `json:"micro_uops"`  // total uops profiled in micro-traces
	MicroInstr int64                   `json:"micro_instr"` // total instrs in micro-traces
}

// Mix returns the sampled aggregate uop-class fractions.
func (p *Profile) Mix() [trace.NumClasses]float64 {
	var out [trace.NumClasses]float64
	if p.MicroUops == 0 {
		return out
	}
	for c, n := range p.MixCounts {
		out[c] = float64(n) / float64(p.MicroUops)
	}
	return out
}

// UopsPerInstruction returns the sampled CISC expansion ratio.
func (p *Profile) UopsPerInstruction() float64 {
	if p.MicroInstr == 0 {
		return 1
	}
	return float64(p.MicroUops) / float64(p.MicroInstr)
}

// LoadFrac returns the fraction of uops that are loads (sampled).
func (p *Profile) LoadFrac() float64 { return p.Mix()[trace.Load] }

// StoreFrac returns the fraction of uops that are stores (sampled).
func (p *Profile) StoreFrac() float64 { return p.Mix()[trace.Store] }

// BranchFrac returns the fraction of uops that are branches (sampled).
func (p *Profile) BranchFrac() float64 { return p.Mix()[trace.Branch] }

// ColdMissAvgPerROB returns m_cold(ROB): the average number of cold-miss
// loads per ROB-sized window, over windows containing at least one (§4.4).
func (p *Profile) ColdMissAvgPerROB(rob int) float64 {
	h := p.coldHistFor(rob)
	if h == nil {
		return 0
	}
	var sum, nonEmpty float64
	for _, k := range h.Keys() {
		if k > 0 {
			sum += float64(k) * h.Count(k)
			nonEmpty += h.Count(k)
		}
	}
	if nonEmpty == 0 {
		return 0
	}
	return sum / nonEmpty
}

// coldHistFor returns the cold-per-window histogram for the profiled ROB
// size closest to rob.
func (p *Profile) coldHistFor(rob int) *stats.Histogram {
	if len(p.ColdPerROB) == 0 {
		return nil
	}
	best := p.Opts.ROBIndexFor(rob)
	if best < 0 {
		best = 0
	}
	return p.ColdPerROB[best]
}

// LoadDepHistFor returns the aggregate inter-load dependence distribution
// f(ℓ) for the profiled ROB size closest to rob, merged across micro-traces.
func (p *Profile) LoadDepHistFor(rob int) *stats.Histogram {
	best := p.Opts.ROBIndexFor(rob)
	if best < 0 {
		best = 0
	}
	out := stats.NewHistogram()
	for _, m := range p.Micros {
		if best < len(m.LoadDeps) && m.LoadDeps[best] != nil {
			out.Merge(m.LoadDeps[best])
		}
	}
	return out
}

// Run profiles a stream with the given options.
func Run(s *trace.Stream, opts Options) *Profile {
	o := opts.withDefaults(s.Len())
	p := &Profile{
		Workload:       s.Name,
		TotalUops:      int64(s.Len()),
		Opts:           o,
		ReuseAll:       stats.NewHistogram(),
		ReuseLoad:      stats.NewHistogram(),
		ReuseStore:     stats.NewHistogram(),
		ReuseInstr:     stats.NewHistogram(),
		PerStaticReuse: make(map[uint32]*stats.Histogram),
		PerStaticCold:  make(map[uint32]int64),
		Chains:         newChainSet(o.ROBs),
	}
	p.ColdPerROB = make([]*stats.Histogram, len(o.ROBs))
	for i := range p.ColdPerROB {
		p.ColdPerROB[i] = stats.NewHistogram()
	}

	lineShift := uint(0)
	for l := o.LineBytes; l > 1; l >>= 1 {
		lineShift++
	}

	// Full-stream memory state: last access index per line (for exact
	// reuse distances; presence doubles as the cold-miss tracker).
	lastAccess := make(map[uint64]int64)
	lastIFetch := make(map[uint64]int64)
	var memIdx, ifIdx int64

	// Cold-per-ROB window counters.
	coldInWindow := make([]int64, len(o.ROBs))

	// Reuse bursts, bounded by uop index.
	burstUops := (s.Len() + o.Bursts - 1) / o.Bursts
	if burstUops < 1 {
		burstUops = 1
	}
	newBurst := func() *ReuseBurst {
		return &ReuseBurst{
			All:   stats.NewHistogram(),
			Load:  stats.NewHistogram(),
			Store: stats.NewHistogram(),
		}
	}
	burst := newBurst()

	var cur *Micro
	var curStatics map[uint32]*StaticLoad

	flushMicro := func(end int) {
		if cur == nil {
			return
		}
		window := s.Uops[cur.Start:end]
		cur.Len = len(window)
		cur.Chains = chainBuffers(window, o.ROBs)
		cur.LoadDeps = make([]*stats.Histogram, len(o.ROBs))
		for i, rob := range o.ROBs {
			cur.LoadDeps[i] = loadDependenceHistogram(window, rob)
		}
		for _, sl := range curStatics {
			cur.Loads = append(cur.Loads, sl)
		}
		p.Micros = append(p.Micros, cur)
		p.MicroUops += int64(cur.Len)
		p.MicroInstr += cur.Instrs
		cur = nil
		curStatics = nil
	}

	for i := range s.Uops {
		u := &s.Uops[i]
		if i > 0 && i%burstUops == 0 {
			p.Bursts = append(p.Bursts, burst)
			burst = newBurst()
		}
		inMicro := i%o.WindowUops < o.MicroUops
		if inMicro && cur == nil {
			cur = &Micro{
				Start:      i,
				Reuse:      stats.NewHistogram(),
				ReuseLoads: stats.NewHistogram(),
			}
			curStatics = make(map[uint32]*StaticLoad)
		}
		if !inMicro && cur != nil {
			flushMicro(i)
		}

		if u.First {
			p.TotalInstrs++
			// Instruction-side reuse at line granularity.
			pcLine := u.PC >> 6
			if last, ok := lastIFetch[pcLine]; ok {
				p.ReuseInstr.Add(ifIdx - last - 1)
			} else {
				p.ColdInstr++
			}
			lastIFetch[pcLine] = ifIdx
			ifIdx++
			p.InstrFetch++
		}

		if u.Class == trace.Branch {
			p.Branches++
		}

		if u.Class.IsMem() {
			line := u.Addr >> lineShift
			isLoad := u.Class == trace.Load
			var reuse int64 = -1
			if last, ok := lastAccess[line]; ok {
				reuse = memIdx - last - 1
			}
			cold := reuse < 0
			lastAccess[line] = memIdx
			memIdx++
			p.MemAccesses++
			if isLoad {
				p.LoadCount++
			} else {
				p.StoreCount++
			}
			if isLoad {
				burst.Loads++
			} else {
				burst.Stores++
			}
			if cold {
				p.ColdAll++
				burst.ColdAll++
				if isLoad {
					p.ColdLoads++
					burst.ColdLoad++
					for r := range coldInWindow {
						coldInWindow[r]++
					}
					p.PerStaticCold[u.Static]++
				} else {
					p.ColdStores++
					burst.ColdStore++
				}
			} else {
				p.ReuseAll.Add(reuse)
				burst.All.Add(reuse)
				if isLoad {
					p.ReuseLoad.Add(reuse)
					burst.Load.Add(reuse)
				} else {
					p.ReuseStore.Add(reuse)
					burst.Store.Add(reuse)
				}
			}
			if isLoad {
				h := p.PerStaticReuse[u.Static]
				if h == nil {
					h = stats.NewHistogram()
					p.PerStaticReuse[u.Static] = h
				}
				if !cold {
					h.Add(reuse)
				}
			}
			if cur != nil {
				pos := i - cur.Start
				if isLoad {
					cur.LoadCount++
					if cold {
						cur.ColdLoads++
						cur.ColdLoadReuse++
					} else {
						cur.ReuseLoads.Add(reuse)
					}
					sl := curStatics[u.Static]
					if sl == nil {
						sl = &StaticLoad{
							Static:   u.Static,
							PC:       u.PC,
							FirstPos: pos,
							Strides:  stats.NewHistogram(),
						}
						curStatics[u.Static] = sl
					}
					if sl.seen {
						sl.SpacingSum += pos - sl.lastPos
						sl.Strides.Add(int64(u.Addr) - int64(sl.lastAddr))
					}
					sl.seen = true
					sl.Count++
					sl.lastPos = pos
					sl.lastAddr = u.Addr
				} else {
					cur.StoreCount++
				}
				if cold {
					cur.ColdReuse++
				} else {
					cur.Reuse.Add(reuse)
				}
			}
		}

		if cur != nil {
			cur.MixCounts[u.Class]++
			if u.First {
				cur.Instrs++
			}
			if u.Class == trace.Branch {
				cur.Branches++
			}
		}

		// Close cold-per-ROB windows.
		for r, rob := range o.ROBs {
			if (i+1)%rob == 0 {
				p.ColdPerROB[r].Add(coldInWindow[r])
				coldInWindow[r] = 0
			}
		}
	}
	flushMicro(s.Len())
	if burst.Loads+burst.Stores > 0 {
		p.Bursts = append(p.Bursts, burst)
	}

	// Aggregate micro-trace statistics.
	var w float64
	for _, m := range p.Micros {
		for c, n := range m.MixCounts {
			p.MixCounts[c] += n
		}
		p.Chains.addWeighted(m.Chains, float64(m.Len))
		w += float64(m.Len)
	}
	p.Chains.scale(w)

	// Linear branch entropy over the full stream (Eq 3.15).
	p.Entropy = branch.Entropy(s, o.EntropyHistory)
	return p
}
