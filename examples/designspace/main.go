// Design-space exploration: the paper's headline application. One profile
// per workload is evaluated against dozens of processor configurations in
// milliseconds, and the performance/power Pareto frontier is extracted
// (§7.4) — the step that replaces weeks of simulation.
package main

import (
	"fmt"

	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/dse"
	"mipp/internal/power"
	"mipp/internal/profiler"
	"mipp/internal/workload"
)

func main() {
	for _, name := range []string{"bzip2", "gromacs"} {
		stream := workload.MustGenerate(name, 200_000, 0)
		profile := profiler.Run(stream, profiler.Options{})
		model := core.New(profile, nil)

		var points []dse.Point
		for _, cfg := range config.DesignSpace() {
			res := model.Evaluate(cfg, core.DefaultOptions())
			pw := power.Estimate(cfg, &res.Activity)
			points = append(points, dse.Point{
				Config: cfg.Name,
				Time:   res.TimeSeconds(cfg.FrequencyGHz),
				Power:  pw.Total(),
			})
		}
		front := dse.ParetoFront(points)
		fmt.Printf("%s: evaluated %d configurations, %d Pareto-optimal:\n",
			name, len(points), len(front))
		for _, p := range front {
			fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", p.Config, p.Time, p.Power)
		}
		fmt.Println()
	}
}
