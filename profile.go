package mipp

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"mipp/internal/profiler"
)

// ProfileSchemaVersion is the JSON schema version written by Profile.Save
// and MarshalJSON. Loading rejects any other version so stale profiles fail
// loudly instead of silently mispredicting.
const ProfileSchemaVersion = 1

// Profile decoding errors. LoadProfile and the profile store wrap them with
// the offending file path, so test with errors.Is.
var (
	// ErrProfileCorrupt reports profile JSON that cannot be decoded:
	// malformed or truncated bytes, or an envelope with no profile body.
	ErrProfileCorrupt = errors.New("mipp: corrupt profile")
	// ErrProfileVersion reports a well-formed envelope whose
	// schema_version this build does not read.
	ErrProfileVersion = errors.New("mipp: unsupported profile schema version")
)

// Profile is a serializable micro-architecture independent application
// profile: everything the analytical model needs to predict performance and
// power for any processor configuration, collected once per workload.
//
// Profiles round-trip through JSON with a versioned envelope
// ({"schema_version": 1, "profile": {...}}), so they can be collected by one
// process (or cmd/aip) and evaluated by another.
type Profile struct {
	raw *profiler.Profile
}

// WrapProfile adapts an already-collected internal profile to the public
// façade. Its parameter type lives under internal/, so it is only callable
// from within this module (the experiment harness); external callers obtain
// profiles from Profiler or LoadProfile.
func WrapProfile(p *profiler.Profile) *Profile { return &Profile{raw: p} }

// emptyProfile backs the accessors of a nil or never-filled Profile (e.g.
// after an ignored Unmarshal error), so they return zero values instead of
// panicking.
var emptyProfile profiler.Profile

func (p *Profile) body() *profiler.Profile {
	if p == nil || p.raw == nil {
		return &emptyProfile
	}
	return p.raw
}

// Workload returns the profiled workload's name.
func (p *Profile) Workload() string { return p.body().Workload }

// TotalUops returns the length of the profiled micro-op stream.
func (p *Profile) TotalUops() int64 { return p.body().TotalUops }

// TotalInstructions returns the macro-instruction count of the profiled
// stream.
func (p *Profile) TotalInstructions() int64 { return p.body().TotalInstrs }

// UopsPerInstruction returns the sampled CISC expansion ratio.
func (p *Profile) UopsPerInstruction() float64 { return p.body().UopsPerInstruction() }

// Entropy returns the linear branch entropy over the full stream (§3.5).
func (p *Profile) Entropy() float64 { return p.body().Entropy }

// MicroTraces returns the number of sampled micro-traces.
func (p *Profile) MicroTraces() int { return len(p.body().Micros) }

// LoadFrac returns the sampled fraction of uops that are loads.
func (p *Profile) LoadFrac() float64 { return p.body().LoadFrac() }

// StoreFrac returns the sampled fraction of uops that are stores.
func (p *Profile) StoreFrac() float64 { return p.body().StoreFrac() }

// BranchFrac returns the sampled fraction of uops that are branches.
func (p *Profile) BranchFrac() float64 { return p.body().BranchFrac() }

// profileEnvelope is the versioned JSON wire format.
type profileEnvelope struct {
	SchemaVersion int               `json:"schema_version"`
	Profile       *profiler.Profile `json:"profile"`
}

// MarshalJSON encodes the profile inside the versioned envelope.
func (p *Profile) MarshalJSON() ([]byte, error) {
	if p.raw == nil {
		return nil, fmt.Errorf("mipp: marshal of empty profile")
	}
	return json.Marshal(profileEnvelope{SchemaVersion: ProfileSchemaVersion, Profile: p.raw})
}

// UnmarshalJSON decodes a versioned profile envelope, rejecting unknown or
// missing schema versions.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var env profileEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("%w: decode envelope: %v", ErrProfileCorrupt, err)
	}
	if env.SchemaVersion != ProfileSchemaVersion {
		return fmt.Errorf("%w %d (this build reads version %d)",
			ErrProfileVersion, env.SchemaVersion, ProfileSchemaVersion)
	}
	if env.Profile == nil {
		return fmt.Errorf("%w: envelope has no profile body", ErrProfileCorrupt)
	}
	p.raw = env.Profile
	return nil
}

// Save writes the profile to path as versioned JSON.
func (p *Profile) Save(path string) error {
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// DecodeProfile decodes a versioned profile envelope. Every failure wraps
// ErrProfileCorrupt or ErrProfileVersion — including syntax errors raised
// by encoding/json before the envelope decoder runs — so callers can
// distinguish "bad bytes" from "wrong schema generation" with errors.Is.
func DecodeProfile(data []byte) (*Profile, error) {
	p := &Profile{}
	if err := json.Unmarshal(data, p); err != nil {
		if !errors.Is(err, ErrProfileCorrupt) && !errors.Is(err, ErrProfileVersion) {
			err = fmt.Errorf("%w: %v", ErrProfileCorrupt, err)
		}
		return nil, err
	}
	return p, nil
}

// LoadProfile reads a versioned profile JSON file written by Save (or
// cmd/aip). Decoding failures wrap ErrProfileCorrupt or ErrProfileVersion
// and name the offending file.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := DecodeProfile(data)
	if err != nil {
		return nil, fmt.Errorf("mipp: load profile %s: %w", path, err)
	}
	return p, nil
}
