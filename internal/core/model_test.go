package core

import (
	"testing"

	"mipp/internal/config"
	"mipp/internal/mlp"
	"mipp/internal/profiler"
	"mipp/internal/trace"
	"mipp/internal/workload"
)

func modelFor(t *testing.T, name string, n int) *Model {
	t.Helper()
	s := workload.MustGenerate(name, n, 0)
	return New(profiler.Run(s, profiler.Options{}), nil)
}

func TestEvaluateBasicInvariants(t *testing.T) {
	cfg := config.Reference()
	for _, name := range []string{"gamess", "mcf", "gcc"} {
		res := modelFor(t, name, 60_000).Evaluate(cfg, DefaultOptions())
		if res.Cycles <= 0 {
			t.Fatalf("%s: non-positive cycles", name)
		}
		for c, v := range res.Stack.Cycles {
			if v < 0 {
				t.Errorf("%s: negative stack component %d: %v", name, c, v)
			}
		}
		if res.Deff <= 0 || res.Deff > float64(cfg.DispatchWidth)+1e-9 {
			t.Errorf("%s: Deff %.3f out of (0, D]", name, res.Deff)
		}
		if res.MLP < 1 {
			t.Errorf("%s: MLP %.3f < 1", name, res.MLP)
		}
		if res.BranchMissRate < 0 || res.BranchMissRate > 1 {
			t.Errorf("%s: branch missrate %v", name, res.BranchMissRate)
		}
	}
}

func TestBiggerROBNeverSlowsMemoryBound(t *testing.T) {
	m := modelFor(t, "libquantum", 60_000)
	small := config.Reference()
	small.ROB = 64
	small.IQ = 18
	small.Name = "rob64"
	big := config.Reference()
	big.ROB = 256
	big.IQ = 72
	big.Name = "rob256"
	rs := m.Evaluate(small, DefaultOptions())
	rb := m.Evaluate(big, DefaultOptions())
	if rb.Cycles > rs.Cycles {
		t.Errorf("bigger ROB predicted slower: %0.f vs %0.f", rb.Cycles, rs.Cycles)
	}
}

func TestWiderCoreRaisesDispatchBound(t *testing.T) {
	// With contention modeling disabled (pure N/D base), the width must
	// set the base component directly. The suite's workloads are mostly
	// backend-bound, where width is correctly predicted to matter little.
	m := modelFor(t, "hmmer", 60_000)
	narrow := config.Reference()
	narrow.DispatchWidth = 2
	narrow.Name = "w2"
	wide := config.Reference()
	o := DefaultOptions()
	o.DispatchModel = DispatchUops
	rn := m.Evaluate(narrow, o)
	rw := m.Evaluate(wide, o)
	if rn.Stack.Cycles[0] < rw.Stack.Cycles[0]*1.9 {
		t.Errorf("2-wide base %.0f should be ~2x the 4-wide base %.0f", rn.Stack.Cycles[0], rw.Stack.Cycles[0])
	}
}

func TestBiggerLLCReducesMemoryTime(t *testing.T) {
	m := modelFor(t, "omnetpp", 60_000)
	small := config.Reference()
	small.L3.SizeBytes = 2 << 20
	small.Name = "llc2m"
	big := config.Reference()
	big.L3.SizeBytes = 8 << 20
	big.Name = "llc8m"
	rs := m.Evaluate(small, DefaultOptions())
	rb := m.Evaluate(big, DefaultOptions())
	if rb.LLCLoadMisses > rs.LLCLoadMisses {
		t.Errorf("bigger LLC predicted more misses: %.0f vs %.0f", rb.LLCLoadMisses, rs.LLCLoadMisses)
	}
}

func TestDispatchModelRefinementMonotone(t *testing.T) {
	// Adding contention terms can only lower the dispatch rate, i.e.,
	// raise the predicted base cycles.
	m := modelFor(t, "povray", 60_000)
	cfg := config.Reference()
	prev := -1.0
	for _, dm := range []DispatchModel{DispatchUops, DispatchCritical, DispatchFull} {
		o := DefaultOptions()
		o.DispatchModel = dm
		base := m.Evaluate(cfg, o).Stack.Cycles[0]
		if base < prev-1e-6 {
			t.Errorf("dispatch model %d lowered base cycles: %v -> %v", dm, prev, base)
		}
		prev = base
	}
}

func TestCombinedModeRuns(t *testing.T) {
	m := modelFor(t, "gcc", 60_000)
	cfg := config.Reference()
	o := DefaultOptions()
	o.Combined = true
	res := m.Evaluate(cfg, o)
	if res.Cycles <= 0 {
		t.Fatal("combined mode produced no cycles")
	}
	if len(res.MicroCPI) != 1 {
		t.Errorf("combined mode should evaluate one pseudo-trace, got %d", len(res.MicroCPI))
	}
}

func TestBranchMissRateOverride(t *testing.T) {
	m := modelFor(t, "gobmk", 60_000)
	cfg := config.Reference()
	o := DefaultOptions()
	o.BranchMissRate = 0
	zero := m.Evaluate(cfg, o)
	o.BranchMissRate = 0.5
	half := m.Evaluate(cfg, o)
	if half.Cycles <= zero.Cycles {
		t.Errorf("50%% misprediction should cost cycles: %.0f vs %.0f", half.Cycles, zero.Cycles)
	}
	if zero.Stack.Cycles[1] != 0 { // perf.BranchComp
		t.Errorf("zero missrate still shows branch cycles: %v", zero.Stack.Cycles[1])
	}
}

func TestMLPModesOrdering(t *testing.T) {
	m := modelFor(t, "libquantum", 60_000)
	cfg := config.Reference()
	on := DefaultOptions()
	off := DefaultOptions()
	off.MLPMode = mlp.None
	if m.Evaluate(cfg, off).Cycles <= m.Evaluate(cfg, on).Cycles {
		t.Error("disabling MLP should not speed up a streaming workload")
	}
}

func TestEffectiveDispatchPortLimit(t *testing.T) {
	// A pure-load mix on the reference core is limited by the single
	// load port: Deff = 1/loadfrac.
	var mix [trace.NumClasses]float64
	mix[trace.Load] = 0.4
	mix[trace.IntALU] = 0.6
	cfg := config.Reference()
	deff, limiter := effectiveDispatch(mix, cfg, 1.0, 1.0, DispatchFull)
	if deff > 2.51 || deff < 2.0 {
		t.Errorf("Deff = %.2f, want 2.5 (load-port bound, §3.4 example)", deff)
	}
	if limiter != 2 && limiter != 3 {
		t.Errorf("limiter = %d, want port/unit", limiter)
	}
}

func TestEffectiveDispatchNonPipelinedDivider(t *testing.T) {
	// §3.4's second example: 10% divides on a 20-cycle non-pipelined
	// divider limit Deff to U/(f*lat) = 1/(0.1*20) = 0.5.
	var mix [trace.NumClasses]float64
	mix[trace.IntDiv] = 0.1
	mix[trace.IntALU] = 0.9
	cfg := config.Reference()
	deff, limiter := effectiveDispatch(mix, cfg, 1.0, 1.0, DispatchFull)
	if deff > 0.51 || deff < 0.49 {
		t.Errorf("Deff = %.3f, want 0.5 (non-pipelined divider bound)", deff)
	}
	if limiter != 3 {
		t.Errorf("limiter = %d, want unit (3)", limiter)
	}
}
