package mipp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mipp/api"
	"mipp/fidelity"
	"mipp/obs"
)

// FidelityOptions configures the engine's background fidelity sampler: a
// deterministic sample of the (workload, config) pairs the engine serves is
// re-evaluated against the cycle-level reference simulator, and the signed
// residuals land in a fidelity.Recorder.
type FidelityOptions struct {
	// Seed drives the sampling decision and (for the default ground truth)
	// the regenerated workload streams. The same seed over the same served
	// set selects the same configs, whatever the concurrency.
	Seed int64
	// SampleEvery selects roughly one served (workload, config) pair in
	// every SampleEvery by deterministic hash (<= 1 samples everything;
	// 0 defaults to 16).
	SampleEvery int
	// Budget caps ground-truth simulations over the engine's lifetime
	// (0 defaults to 256; negative = unlimited). Reference runs cost
	// ~10^5 times an analytical evaluation — the cap is what makes
	// sampling safe to leave on.
	Budget int
	// SimUops is the regenerated stream length per workload for the
	// default simulator ground truth (0 = default).
	SimUops int
	// MaxPerSecond rate-limits ground-truth runs (0 = unlimited): the
	// worker sleeps between simulations so sampling never competes with
	// serving for more than its share.
	MaxPerSecond float64
	// WorstN is how many worst samples a report keeps (0 defaults to 5).
	WorstN int
	// TopK is how many of a finished search's recommended configurations
	// are escalated past the sampling predicate (0 defaults to 3;
	// negative disables escalation).
	TopK int
	// Queue bounds the sampler's backlog (0 defaults to 64); offers
	// beyond it are counted as dropped, never blocked on.
	Queue int
	// GroundTruth overrides the reference evaluator (nil = the built-in
	// cycle-level simulator over the engine's own profiles).
	GroundTruth fidelity.GroundTruth
}

func (o *FidelityOptions) withDefaults() FidelityOptions {
	d := *o
	if d.SampleEvery == 0 {
		d.SampleEvery = 16
	}
	if d.Budget == 0 {
		d.Budget = 256
	}
	if d.SimUops <= 0 {
		d.SimUops = defaultSimUops
	}
	if d.WorstN == 0 {
		d.WorstN = 5
	}
	if d.TopK == 0 {
		d.TopK = 3
	}
	if d.Queue <= 0 {
		d.Queue = 64
	}
	return d
}

// WithFidelitySampling enables the fidelity observatory on the engine:
// served configurations are sampled, re-run on the ground truth, and their
// residuals aggregated into FidelityReport and the mipp_fidelity_* metrics.
// The engine owns a background worker; call Close to stop it.
func WithFidelitySampling(opts FidelityOptions) EngineOption {
	return func(e *Engine) { e.fidOpts = &opts }
}

// fidelityJob is one queued ground-truth comparison.
type fidelityJob struct {
	workload string
	spec     api.PredictorSpec
	cfg      *Config
	digest   string
}

// fidelitySampler owns the fidelity recorder, the deterministic sampling
// decision, and the single background worker that runs ground-truth
// simulations. Offers are cheap and non-blocking — the serving paths call
// offer after every successful prediction; everything expensive happens on
// the worker.
type fidelitySampler struct {
	e    *Engine
	opts FidelityOptions
	rec  *fidelity.Recorder
	gt   fidelity.GroundTruth

	ctx      context.Context
	cancel   context.CancelFunc
	queue    chan fidelityJob
	done     chan struct{}
	stopOnce sync.Once

	// budget counts remaining ground-truth runs; claimed at enqueue so
	// the queue never holds more work than the budget allows.
	budget atomic.Int64
	// pending counts enqueued-but-unrecorded jobs, for flush.
	pending atomic.Int64

	// seen dedupes offers by digest: a config served a million times costs
	// one simulation. Its size is bounded by the budget.
	mu   sync.Mutex
	seen map[string]bool

	offered obs.Counter // selected by the sampling predicate
	dropped obs.Counter // selected but lost to a full queue

	simSeconds *obs.Histogram // ground-truth run duration
}

// newFidelitySampler wires the sampler and starts its worker.
func newFidelitySampler(e *Engine, opts FidelityOptions) *fidelitySampler {
	opts = opts.withDefaults()
	s := &fidelitySampler{
		e:          e,
		opts:       opts,
		rec:        fidelity.NewRecorder(),
		gt:         opts.GroundTruth,
		queue:      make(chan fidelityJob, opts.Queue),
		done:       make(chan struct{}),
		seen:       make(map[string]bool),
		simSeconds: obs.NewHistogram(obs.DefBuckets...),
	}
	if s.gt == nil {
		s.gt = NewSimGroundTruth(e, opts.SimUops, opts.Seed)
	}
	if opts.Budget > 0 {
		s.budget.Store(int64(opts.Budget))
	} else {
		s.budget.Store(1 << 60) // negative Budget: effectively unlimited
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	go s.run()
	return s
}

// offer proposes one successfully served (workload, config) pair. The
// not-sampled path is allocation-free: one hash over two short strings.
func (s *fidelitySampler) offer(workload string, spec api.PredictorSpec, cfg *Config) {
	if cfg == nil || s.budget.Load() <= 0 {
		return
	}
	if !fidelity.Sampled(s.opts.Seed, workload, cfg.Name, s.opts.SampleEvery) {
		return
	}
	s.force(workload, spec, cfg)
}

// force enqueues regardless of the sampling predicate — the search
// escalation path uses it for top-K report configs. Digest-level dedupe
// and the budget still apply.
func (s *fidelitySampler) force(workload string, spec api.PredictorSpec, cfg *Config) {
	if cfg == nil {
		return
	}
	digest := fidelity.Digest(workload, spec.Key(), cfg)
	s.mu.Lock()
	if s.seen[digest] {
		s.mu.Unlock()
		return
	}
	s.seen[digest] = true
	s.mu.Unlock()
	if s.budget.Add(-1) < 0 {
		return
	}
	s.offered.Inc()
	job := fidelityJob{workload: workload, spec: spec, cfg: cfg, digest: digest}
	s.pending.Add(1)
	select {
	case s.queue <- job:
	default:
		// Never block a serving path on the sampler. Drops are visible
		// (mipp_fidelity_dropped_total) so an operator can tell a quiet
		// report from a starved one.
		s.pending.Add(-1)
		s.dropped.Inc()
	}
}

// run is the background worker: one ground-truth simulation at a time,
// rate-limited, until Close.
func (s *fidelitySampler) run() {
	defer close(s.done)
	var interval time.Duration
	if s.opts.MaxPerSecond > 0 {
		interval = time.Duration(float64(time.Second) / s.opts.MaxPerSecond)
	}
	for {
		select {
		case <-s.ctx.Done():
			// Drain pending counts so flush never hangs on shutdown.
			for {
				select {
				case <-s.queue:
					s.pending.Add(-1)
				default:
					return
				}
			}
		case job := <-s.queue:
			s.sample(job)
			s.pending.Add(-1)
			if interval > 0 {
				select {
				case <-s.ctx.Done():
				case <-time.After(interval):
				}
			}
		}
	}
}

// sample runs one comparison: re-predict through the cached predictor,
// simulate on the ground truth, record the pair.
func (s *fidelitySampler) sample(job fidelityJob) {
	pd, err := s.e.predictor(s.ctx, job.workload, job.spec)
	if err != nil {
		s.rec.RecordFailure()
		s.e.logf("fidelity: predictor %q: %v", job.workload, err)
		return
	}
	res, err := pd.Predict(job.cfg)
	if err != nil {
		s.rec.RecordFailure()
		s.e.logf("fidelity: predict %q/%q: %v", job.workload, job.cfg.Name, err)
		return
	}
	t := obs.StartTimer()
	sim, err := s.gt.GroundTruth(s.ctx, job.workload, job.cfg)
	t.ObserveInto(s.simSeconds)
	if err != nil {
		s.rec.RecordFailure()
		s.e.logf("fidelity: ground truth %q/%q: %v", job.workload, job.cfg.Name, err)
		return
	}
	s.rec.Record(fidelity.Pair{
		Workload: job.workload,
		Config:   job.cfg.Name,
		Digest:   job.digest,
		Model:    ModelMeasurement(res),
		Sim:      sim,
	})
}

// flush waits until every enqueued job has been recorded (or ctx expires).
func (s *fidelitySampler) flush(ctx context.Context) error {
	for s.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.ctx.Done():
			return nil
		case <-time.After(5 * time.Millisecond):
		}
	}
	return nil
}

// stop cancels the worker and waits for it to exit.
func (s *fidelitySampler) stop() {
	s.cancel()
	<-s.done
}

// offerFidelity is the engine-side hook the serving paths call after a
// successful prediction; a nil sampler (the default) costs one branch.
func (e *Engine) offerFidelity(workload string, spec api.PredictorSpec, cfg *Config) {
	if e.fid != nil {
		e.fid.offer(workload, spec, cfg)
	}
}

// forceFidelity escalates one config past the sampling predicate (search
// top-K escalation).
func (e *Engine) forceFidelity(workload string, spec api.PredictorSpec, cfg *Config) {
	if e.fid != nil {
		e.fid.force(workload, spec, cfg)
	}
}

// FidelityEnabled reports whether the engine runs a fidelity sampler.
func (e *Engine) FidelityEnabled() bool { return e.fid != nil }

// FidelityStats returns the cheap aggregate fidelity view for health
// endpoints; nil when sampling is disabled.
func (e *Engine) FidelityStats() *fidelity.Stats {
	if e.fid == nil {
		return nil
	}
	st := e.fid.rec.Stats()
	return &st
}

// FidelityReport assembles the deterministic fidelity report. wait flushes
// the sampler's queue first, so a caller that just served a batch reads a
// report covering it. Returns (nil, nil) when sampling is disabled.
func (e *Engine) FidelityReport(ctx context.Context, wait bool) (*fidelity.Report, error) {
	if e.fid == nil {
		return nil, nil
	}
	if wait {
		if err := e.fid.flush(ctx); err != nil {
			return nil, fmt.Errorf("mipp: fidelity flush: %w", err)
		}
	}
	rep := e.fid.rec.Report(e.fid.opts.WorstN)
	return &rep, nil
}

// Close stops the engine's background workers (today: the fidelity
// sampler). It is safe to call on an engine without one, and safe to call
// more than once.
func (e *Engine) Close() {
	if e.fid != nil {
		e.fid.stopOnce.Do(e.fid.stop)
	}
}
