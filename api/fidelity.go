package api

import "mipp/fidelity"

// The fidelity wire vocabulary: GET /v1/fidelity reads the engine's
// model-vs-simulator error report. The report DTO aliases mipp/fidelity's
// type directly — like SearchReport aliases search.Report — so an
// in-process report and the same report read over the wire marshal to
// byte-identical JSON.

// FidelityReport is the wire form of the fidelity observatory's report:
// overall CPI and power MAPE/bias, per-component error breakdowns, a
// per-workload summary, and the worst sampled configurations with their
// digests.
type FidelityReport = fidelity.Report

// FidelitySample is one recorded model-vs-simulator comparison on the wire.
type FidelitySample = fidelity.Sample

// FidelityStats is the compact fidelity aggregate embedded in /healthz.
type FidelityStats = fidelity.Stats

// FidelityResponse answers GET /v1/fidelity.
type FidelityResponse struct {
	SchemaVersion int `json:"schema_version"`
	// Enabled reports whether the serving engine runs a fidelity sampler;
	// when false, Report is absent.
	Enabled bool            `json:"enabled"`
	Report  *FidelityReport `json:"report,omitempty"`
}
