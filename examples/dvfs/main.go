// DVFS exploration (§7.3): sweep the Nehalem-based voltage/frequency
// operating points of Table 7.2 and pick the ED²P-optimal setting per
// workload, using only the analytical model.
package main

import (
	"fmt"

	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/power"
	"mipp/internal/profiler"
	"mipp/internal/workload"
)

func main() {
	base := config.Reference()
	for _, name := range []string{"gamess", "mcf", "libquantum"} {
		stream := workload.MustGenerate(name, 200_000, 0)
		profile := profiler.Run(stream, profiler.Options{})
		model := core.New(profile, nil)

		fmt.Printf("%s:\n", name)
		bestED2P, bestF := 0.0, 0.0
		for _, pt := range config.DVFSPoints() {
			cfg := config.WithDVFS(base, pt)
			res := model.Evaluate(cfg, core.DefaultOptions())
			t := res.TimeSeconds(cfg.FrequencyGHz)
			pw := power.Estimate(cfg, &res.Activity)
			ed2p := power.ED2P(pw, t)
			fmt.Printf("  %.2f GHz @ %.2fV: time=%.5fs power=%5.1fW ED2P=%.3e\n",
				pt.FrequencyGHz, pt.VoltageV, t, pw.Total(), ed2p)
			if bestF == 0 || ed2p < bestED2P {
				bestED2P, bestF = ed2p, pt.FrequencyGHz
			}
		}
		fmt.Printf("  ED2P optimum: %.2f GHz\n\n", bestF)
	}
}
