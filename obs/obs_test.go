package obs

import (
	"bytes"
	"context"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(1.5)
	if got := g.Add(2); got != 3.5 {
		t.Fatalf("gauge Add returned %v, want 3.5", got)
	}
	if got := g.Add(-3.5); got != 0 {
		t.Fatalf("gauge Add returned %v, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	// Bucket occupancy: (-inf,1]=2, (1,2]=2, (2,5]=1, (5,+inf)=1.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	if got, w := h.Sum(), 108.0; math.Abs(got-w) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, w)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race it proves Observe is safe lock-free, and the final count and
// sum prove no observation was lost to a CAS race.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefBuckets...)
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	if got, want := h.Sum(), float64(goroutines*per)*0.001; math.Abs(got-want) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

// TestRenderGolden pins the exact text exposition bytes: family ordering,
// HELP/TYPE lines, label sorting and escaping, cumulative histogram
// buckets, and the chained base registry.
func TestRenderGolden(t *testing.T) {
	base := NewRegistry()
	base.Counter("mipp_kernel_batches_total", "Batched kernel invocations.").Add(3)

	r := NewRegistry(WithBase(base))
	r.Counter("mipp_demo_requests_total", "Demo requests.",
		Label{"route", "predict"}, Label{"code", "2xx"}).Add(7)
	r.Counter("mipp_demo_requests_total", "Demo requests.",
		Label{"route", "predict"}, Label{"code", "5xx"}).Add(1)
	r.Gauge("mipp_demo_inflight", "In-flight demo requests.").Set(2)
	r.GaugeFunc("mipp_demo_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	h := r.Histogram("mipp_demo_seconds", `Latency with "quotes" and back\slash.`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mipp_demo_inflight In-flight demo requests.
# TYPE mipp_demo_inflight gauge
mipp_demo_inflight 2
# HELP mipp_demo_requests_total Demo requests.
# TYPE mipp_demo_requests_total counter
mipp_demo_requests_total{code="2xx",route="predict"} 7
mipp_demo_requests_total{code="5xx",route="predict"} 1
# HELP mipp_demo_seconds Latency with "quotes" and back\\slash.
# TYPE mipp_demo_seconds histogram
mipp_demo_seconds_bucket{le="0.1"} 1
mipp_demo_seconds_bucket{le="1"} 2
mipp_demo_seconds_bucket{le="+Inf"} 3
mipp_demo_seconds_sum 2.55
mipp_demo_seconds_count 3
# HELP mipp_demo_uptime_seconds Uptime.
# TYPE mipp_demo_uptime_seconds gauge
mipp_demo_uptime_seconds 12.5
# HELP mipp_kernel_batches_total Batched kernel invocations.
# TYPE mipp_kernel_batches_total counter
mipp_kernel_batches_total 3
`
	if got := buf.String(); got != want {
		t.Errorf("Render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("mipp_x_total", "x")
	mustPanic("duplicate series", func() { r.Counter("mipp_x_total", "x") })
	mustPanic("kind conflict", func() { r.Gauge("mipp_x_total", "x", Label{"a", "b"}) })
	mustPanic("bad name", func() { r.Counter("1bad-name", "x") })
}

func TestHTTPStatsWrap(t *testing.T) {
	r := NewRegistry()
	hs := NewHTTPStats(r, "predict")
	var sawInflight float64
	handler := hs.Wrap(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		sawInflight = hs.inflight.Value()
		if req.URL.Query().Get("fail") != "" {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok")) // implicit 200 must still count as 2xx
	}))
	for _, url := range []string{"/v1/predict", "/v1/predict", "/v1/predict?fail=1"} {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, nil))
	}
	if sawInflight != 1 {
		t.Errorf("inflight during request = %v, want 1", sawInflight)
	}
	if got := hs.inflight.Value(); got != 0 {
		t.Errorf("inflight after requests = %v, want 0", got)
	}
	if got := hs.requests[2].Value(); got != 2 {
		t.Errorf("2xx count = %d, want 2", got)
	}
	if got := hs.requests[5].Value(); got != 1 {
		t.Errorf("5xx count = %d, want 1", got)
	}
	if got := hs.seconds.Count(); got != 3 {
		t.Errorf("latency observations = %d, want 3", got)
	}
}

func TestSpanLineage(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)

	ctx := context.Background()
	ctx, root := StartSpan(ctx, logger, "rid123", "http POST /v1/search")
	ctx, child := StartSpan(ctx, logger, "", "engine.compile")
	if child.Parent != root.ID {
		t.Errorf("child parent = %q, want %q", child.Parent, root.ID)
	}
	if child.Trace != "rid123" {
		t.Errorf("child trace = %q, want rid123 (inherited)", child.Trace)
	}
	child.Finish()
	root.Finish()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d span lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "span "+child.ID) ||
		!strings.Contains(lines[0], "parent="+root.ID) ||
		!strings.Contains(lines[0], "trace=rid123") ||
		!strings.Contains(lines[0], "name=engine.compile") {
		t.Errorf("child span line missing fields: %s", lines[0])
	}
	if !strings.Contains(lines[1], "parent=-") {
		t.Errorf("root span line should have parent=-: %s", lines[1])
	}
}

func TestSpanRemoteParentAndNilLogger(t *testing.T) {
	// Nil logger: no span, unchanged context, nil-safe Finish.
	ctx, s := StartSpan(context.Background(), nil, "rid", "x")
	if s != nil || SpanFromContext(ctx) != nil {
		t.Fatal("nil logger must not create a span")
	}
	s.Finish() // must not panic

	// A remote parent (from the X-Span-Id header) becomes the root's parent.
	var buf bytes.Buffer
	ctx = ContextWithRemoteParent(context.Background(), "cafecafecafecafe")
	_, root := StartSpan(ctx, log.New(&buf, "", 0), "rid", "http")
	if root.Parent != "cafecafecafecafe" {
		t.Fatalf("root parent = %q, want adopted remote parent", root.Parent)
	}
}

func TestTimer(t *testing.T) {
	h := NewHistogram(DefBuckets...)
	tm := StartTimer()
	time.Sleep(time.Millisecond)
	if s := tm.ObserveInto(h); s <= 0 {
		t.Fatalf("elapsed = %v, want > 0", s)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	Timer{}.ObserveInto(nil) // nil-safe
}

func TestDebugHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("mipp_x_total", "x").Inc()
	srv := httptest.NewServer(DebugHandler(r))
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":            "mipp_x_total 1",
		"/debug/pprof/":       "profiles",
		"/debug/pprof/symbol": "",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var body bytes.Buffer
		_, _ = body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(body.String(), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}
}
