// Package memory models main memory timing for the cycle-level simulator:
// a fixed DRAM access latency plus a shared memory bus whose per-line
// transfer time serializes concurrent misses, producing the queuing delays
// the analytical model captures with Equation 4.5.
package memory

// Config describes the main-memory timing.
type Config struct {
	// LatencyCycles is the DRAM access latency in core cycles (device
	// latency, excluding bus queuing).
	LatencyCycles int
	// BusCyclesPerLine is the bus occupancy of one cache-line transfer in
	// core cycles; the inverse of the memory bandwidth.
	BusCyclesPerLine int
	// Channels is the number of independent memory channels (the paper's
	// reference machine has one; Eq 4.5 assumes one).
	Channels int
}

// DefaultConfig matches the reference architecture: ~200-cycle DRAM latency
// and a bus that transfers one 64-byte line every 8 core cycles.
func DefaultConfig() Config {
	return Config{LatencyCycles: 200, BusCyclesPerLine: 8, Channels: 1}
}

// DRAM tracks bus occupancy and serves access requests.
type DRAM struct {
	cfg Config
	// busFree[i] is the first cycle channel i's bus is idle.
	busFree []int64
	// Accesses counts line transfers (reads + writes), the DRAM activity
	// factor for the power model.
	Accesses int64
	// TotalWait accumulates queuing delay cycles, for diagnostics.
	TotalWait int64
}

// New builds a DRAM model.
func New(cfg Config) *DRAM {
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	return &DRAM{cfg: cfg, busFree: make([]int64, cfg.Channels)}
}

// Config returns the memory configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Access requests one cache-line transfer starting no earlier than cycle
// now; it returns the cycle at which the data is available to the core.
// The line occupies the least-loaded channel's bus for BusCyclesPerLine.
func (d *DRAM) Access(now int64) (ready int64) {
	d.Accesses++
	// Pick the channel that frees up first.
	ch := 0
	for i := 1; i < len(d.busFree); i++ {
		if d.busFree[i] < d.busFree[ch] {
			ch = i
		}
	}
	start := now
	if d.busFree[ch] > start {
		d.TotalWait += d.busFree[ch] - start
		start = d.busFree[ch]
	}
	d.busFree[ch] = start + int64(d.cfg.BusCyclesPerLine)
	return start + int64(d.cfg.LatencyCycles) + int64(d.cfg.BusCyclesPerLine)
}

// Reset clears occupancy and counters.
func (d *DRAM) Reset() {
	for i := range d.busFree {
		d.busFree[i] = 0
	}
	d.Accesses = 0
	d.TotalWait = 0
}
