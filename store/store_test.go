package store_test

// Store tests: durable round-trips across reopen, digest validation on
// read, LRU eviction with transparent reload and pinning, cross-instance
// index staleness (two stores over one directory), object garbage
// collection, and a concurrent Put/Get/Delete mix for the race detector.

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mipp"
	"mipp/store"
)

const testUops = 20_000

var profileCache sync.Map

// testProfile memoizes one small profile per workload across tests.
func testProfile(t *testing.T, workload string) *mipp.Profile {
	t.Helper()
	if p, ok := profileCache.Load(workload); ok {
		return p.(*mipp.Profile)
	}
	p, err := mipp.NewProfiler().Profile(workload, testUops)
	if err != nil {
		t.Fatalf("profile %s: %v", workload, err)
	}
	profileCache.Store(workload, p)
	return p
}

func mustOpen(t *testing.T, dir string, opts ...store.Option) *store.Store {
	t.Helper()
	s, err := store.Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func canonical(t *testing.T, p *mipp.Profile) string {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestStorePutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := testProfile(t, "mcf")

	info, err := s.Put("mcf", p)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !strings.HasPrefix(info.Digest, store.DigestPrefix) || info.SizeBytes <= 0 {
		t.Fatalf("Put info = %+v", info)
	}
	if info.Workload != "mcf" || info.Uops != p.TotalUops() || info.MicroTraces != p.MicroTraces() || !info.Resident {
		t.Errorf("Put info = %+v, want profile summary + resident", info)
	}

	// Resident hit: the exact decoded object comes back.
	got, ok, err := s.Get("mcf")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v, %v", got, ok, err)
	}
	if got != p {
		t.Error("resident Get did not return the stored profile pointer")
	}
	if st := s.Stats(); st.Hits != 1 || st.Objects != 1 || st.ResidentBytes != info.SizeBytes {
		t.Errorf("Stats after resident hit = %+v", st)
	}

	// Unknown name: found=false, no error.
	if _, ok, err := s.Get("nope"); ok || err != nil {
		t.Errorf("Get(nope) = %v, %v, want miss without error", ok, err)
	}
	if _, ok := s.Info("nope"); ok {
		t.Error("Info(nope) found")
	}

	// A fresh store over the same directory serves the same bytes.
	s2 := mustOpen(t, dir)
	got2, ok, err := s2.Get("mcf")
	if err != nil || !ok {
		t.Fatalf("reopened Get = %v, %v", ok, err)
	}
	if canonical(t, got2) != canonical(t, p) {
		t.Error("reopened store returned different canonical profile JSON")
	}
	info2, ok := s2.Info("mcf")
	if !ok || info2.Digest != info.Digest || info2.SizeBytes != info.SizeBytes {
		t.Errorf("reopened Info = %+v, want digest %s", info2, info.Digest)
	}
	if names := s2.Names(); len(names) != 1 || names[0] != "mcf" {
		t.Errorf("Names = %v", names)
	}
	if st := s2.Stats(); st.Loads != 1 || st.Misses != 1 {
		t.Errorf("reopened Stats = %+v, want one miss + one load", st)
	}
}

func TestStoreDigestValidation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	info, err := s.Put("mcf", testProfile(t, "mcf"))
	if err != nil {
		t.Fatal(err)
	}

	// Flip the stored object's bytes behind the store's back.
	objects, err := filepath.Glob(filepath.Join(dir, "objects", "*.json"))
	if err != nil || len(objects) != 1 {
		t.Fatalf("objects = %v (%v)", objects, err)
	}
	if err := os.WriteFile(objects[0], []byte(`{"schema_version":1,"profile":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh instance (no resident copy) must refuse the corrupt object,
	// matching ErrCorrupt and naming the file.
	s2 := mustOpen(t, dir)
	_, ok, err := s2.Get("mcf")
	if !ok {
		t.Fatal("corrupted entry vanished from index")
	}
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("Get corrupt = %v, want ErrCorrupt", err)
	}
	//mipp:allow wraperr the diagnostic text itself is under test here, alongside the errors.Is contract
	if !strings.Contains(err.Error(), objects[0]) {
		t.Errorf("error %q does not name the object path", err)
	}
	//mipp:allow wraperr the diagnostic text itself is under test here, alongside the errors.Is contract
	if !strings.Contains(err.Error(), info.Digest) {
		t.Errorf("error %q does not name the expected digest", err)
	}
}

func TestStoreEvictionAndPin(t *testing.T) {
	dir := t.TempDir()
	mcf, gcc := testProfile(t, "mcf"), testProfile(t, "gcc")
	size := int64(len(canonical(t, mcf)))
	// Bound fits roughly one profile, so the second Put evicts the first.
	s := mustOpen(t, dir, store.WithMaxResidentBytes(size+16))

	if _, err := s.Put("mcf", mcf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("gcc", gcc); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions == 0 || st.EvictedBytes == 0 {
		t.Fatalf("Stats after over-bound Put = %+v, want evictions", st)
	}
	if st.ResidentBytes > st.MaxResidentBytes {
		t.Errorf("ResidentBytes %d exceeds bound %d", st.ResidentBytes, st.MaxResidentBytes)
	}
	if info, _ := s.Info("mcf"); info.Resident {
		t.Error("mcf still resident after eviction")
	}

	// Evicted entries reload transparently — same canonical bytes, new
	// decode.
	got, ok, err := s.Get("mcf")
	if err != nil || !ok {
		t.Fatalf("Get evicted = %v, %v", ok, err)
	}
	if got == mcf {
		t.Error("evicted Get returned the original pointer, want a reload")
	}
	if canonical(t, got) != canonical(t, mcf) {
		t.Error("reloaded profile differs from stored profile")
	}
	if st := s.Stats(); st.Loads != 1 {
		t.Errorf("Stats after reload = %+v, want one load", st)
	}

	// Pinned entries survive capacity pressure.
	if !s.Pin("mcf") {
		t.Fatal("Pin(mcf) = false")
	}
	if _, _, err := s.Get("mcf"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("gcc"); err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Info("mcf"); !info.Resident {
		t.Error("pinned mcf was evicted")
	}
	s.Unpin("mcf")
	if st := s.Stats(); st.ResidentBytes > st.MaxResidentBytes {
		t.Errorf("after Unpin, ResidentBytes %d exceeds bound %d", st.ResidentBytes, st.MaxResidentBytes)
	}
	if s.Pin("nope") {
		t.Error("Pin(nope) = true")
	}
}

// Two Store instances over one directory: writes through one become
// visible to the other via the index mtime check, with no notification
// machinery.
func TestStoreCrossInstanceStaleness(t *testing.T) {
	dir := t.TempDir()
	writer := mustOpen(t, dir)
	reader := mustOpen(t, dir)

	if names := reader.Names(); len(names) != 0 {
		t.Fatalf("fresh store Names = %v", names)
	}
	time.Sleep(10 * time.Millisecond) // ensure a distinguishable index mtime
	if _, err := writer.Put("mcf", testProfile(t, "mcf")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := reader.Get("mcf"); !ok || err != nil {
		t.Fatalf("reader.Get after writer.Put = %v, %v, want visible", ok, err)
	}

	time.Sleep(10 * time.Millisecond)
	if ok, err := writer.Delete("mcf"); !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, ok, _ := reader.Get("mcf"); ok {
		t.Error("reader still serves a profile deleted through the writer")
	}
}

func TestStoreDeleteAndObjectGC(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := testProfile(t, "mcf")

	// Two names sharing one object (same canonical bytes → same digest).
	if _, err := s.Put("a", p); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", p); err != nil {
		t.Fatal(err)
	}
	objects := func() int {
		m, err := filepath.Glob(filepath.Join(dir, "objects", "*.json"))
		if err != nil {
			t.Fatal(err)
		}
		return len(m)
	}
	if n := objects(); n != 1 {
		t.Fatalf("content-addressed Put wrote %d objects, want 1", n)
	}

	// Deleting one referencing name keeps the shared object.
	if ok, err := s.Delete("a"); !ok || err != nil {
		t.Fatalf("Delete(a) = %v, %v", ok, err)
	}
	if n := objects(); n != 1 {
		t.Errorf("object GC'd while still referenced by %q", "b")
	}
	// Deleting the last reference removes it.
	if ok, err := s.Delete("b"); !ok || err != nil {
		t.Fatalf("Delete(b) = %v, %v", ok, err)
	}
	if n := objects(); n != 0 {
		t.Errorf("%d orphan object(s) after last delete", n)
	}
	if ok, err := s.Delete("b"); ok || err != nil {
		t.Errorf("second Delete = %v, %v, want false, nil", ok, err)
	}
}

// TestStoreConcurrent hammers one store from many goroutines — puts, gets
// (with reload under a tiny resident bound), deletes, listings — for the
// race detector.
func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	mcf, gcc := testProfile(t, "mcf"), testProfile(t, "gcc")
	s := mustOpen(t, dir, store.WithMaxResidentBytes(int64(len(canonical(t, mcf)))))
	if _, err := s.Put("mcf", mcf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("gcc", gcc); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch g % 4 {
				case 0:
					if _, ok, err := s.Get("mcf"); !ok || err != nil {
						t.Errorf("Get(mcf) = %v, %v", ok, err)
						return
					}
				case 1:
					if _, _, err := s.Get("gcc"); err != nil {
						t.Errorf("Get(gcc): %v", err)
						return
					}
				case 2:
					if _, err := s.Put("scratch", gcc); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
					if _, err := s.Delete("scratch"); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				default:
					s.Names()
					s.Info("mcf")
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if st.ResidentBytes > st.MaxResidentBytes {
		t.Errorf("ResidentBytes %d exceeds bound %d", st.ResidentBytes, st.MaxResidentBytes)
	}
	for _, name := range []string{"mcf", "gcc"} {
		got, ok, err := s.Get(name)
		if !ok || err != nil {
			t.Fatalf("final Get(%s) = %v, %v", name, ok, err)
		}
		want := mcf
		if name == "gcc" {
			want = gcc
		}
		if canonical(t, got) != canonical(t, want) {
			t.Errorf("%s corrupted by concurrent traffic", name)
		}
	}
}

// Two Store instances (standing in for two daemons) registering different
// names concurrently must not lose each other's writes: the index
// read-modify-write runs under the cross-instance file lock.
func TestStoreCrossInstanceConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	a, b := mustOpen(t, dir), mustOpen(t, dir)
	mcf, gcc := testProfile(t, "mcf"), testProfile(t, "gcc")

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			if _, err := a.Put("mcf", mcf); err != nil {
				t.Errorf("a.Put: %v", err)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Put("gcc", gcc); err != nil {
				t.Errorf("b.Put: %v", err)
			}
		}(i)
	}
	wg.Wait()

	fresh := mustOpen(t, dir)
	if names := fresh.Names(); len(names) != 2 || names[0] != "gcc" || names[1] != "mcf" {
		t.Fatalf("Names after interleaved cross-instance Puts = %v, want [gcc mcf]", names)
	}
}

// Re-uploading a profile repairs an object that was corrupted on disk:
// Put verifies existing object bytes instead of blindly skipping the
// write for an already-present digest.
func TestStorePutRepairsCorruptObject(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := testProfile(t, "mcf")
	if _, err := s.Put("mcf", p); err != nil {
		t.Fatal(err)
	}
	objects, err := filepath.Glob(filepath.Join(dir, "objects", "*.json"))
	if err != nil || len(objects) != 1 {
		t.Fatalf("objects = %v (%v)", objects, err)
	}
	if err := os.WriteFile(objects[0], []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Put("mcf", p); err != nil {
		t.Fatalf("repairing Put: %v", err)
	}
	s2 := mustOpen(t, dir)
	got, ok, err := s2.Get("mcf")
	if err != nil || !ok {
		t.Fatalf("Get after repair = %v, %v", ok, err)
	}
	if canonical(t, got) != canonical(t, p) {
		t.Error("repaired object decodes differently")
	}
}
