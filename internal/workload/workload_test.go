package workload

import (
	"testing"

	"mipp/internal/trace"
)

func TestGenerateAllBenchmarks(t *testing.T) {
	for _, name := range Names() {
		s, err := Generate(name, 20_000, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Len() < 20_000 {
			t.Errorf("%s: only %d uops", name, s.Len())
		}
		upi := s.UopsPerInstruction()
		if upi < 1 || upi > 1.6 {
			t.Errorf("%s: uops/instr %.3f out of range", name, upi)
		}
		mix := s.Mix()
		sum := 0.0
		for _, f := range mix {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: mix sums to %v", name, sum)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("gcc", 10_000, 0)
	b := MustGenerate("gcc", 10_000, 0)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Uops {
		if a.Uops[i] != b.Uops[i] {
			t.Fatalf("uop %d differs", i)
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("not-a-benchmark", 1000, 0); err == nil {
		t.Error("expected error")
	}
}

func TestDependenceDistancesValid(t *testing.T) {
	s := MustGenerate("omnetpp", 20_000, 0)
	for i := range s.Uops {
		u := &s.Uops[i]
		for _, d := range []uint32{u.SrcDist1, u.SrcDist2} {
			if d == 0 {
				continue
			}
			p := i - int(d)
			if p >= 0 {
				// Producers must be value-producing classes.
				switch s.Uops[p].Class {
				case trace.Store, trace.Branch:
					t.Fatalf("uop %d depends on non-producing uop %d (%v)", i, p, s.Uops[p].Class)
				}
			}
		}
	}
}

func TestChaseIsDependenceBound(t *testing.T) {
	s := MustGenerate("mcf", 20_000, 0)
	// Every mcf load (pointer hop) must depend on an earlier load.
	deps := 0
	loads := 0
	for i := range s.Uops {
		u := &s.Uops[i]
		if u.Class != trace.Load {
			continue
		}
		loads++
		if d := int(u.SrcDist1); d > 0 && i-d >= 0 && s.Uops[i-d].Class == trace.Load {
			deps++
		}
	}
	if loads == 0 || float64(deps)/float64(loads) < 0.9 {
		t.Errorf("mcf load-to-load dependences %d/%d", deps, loads)
	}
}

func TestStreamingTouchesManyLines(t *testing.T) {
	s := MustGenerate("libquantum", 50_000, 0)
	lines := map[uint64]struct{}{}
	for i := range s.Uops {
		if s.Uops[i].Class == trace.Load {
			lines[s.Uops[i].Addr>>6] = struct{}{}
		}
	}
	if len(lines) < 1000 {
		t.Errorf("libquantum touched only %d lines", len(lines))
	}
}

func TestBranchGenEntropyControl(t *testing.T) {
	s1 := MustGenerate("namd", 30_000, 0)  // predictable branches
	s2 := MustGenerate("sjeng", 30_000, 0) // noisy branches
	c1, t1 := branchStats(s1)
	c2, t2 := branchStats(s2)
	if c1 == 0 || c2 == 0 {
		t.Fatalf("no branches: %d %d", c1, c2)
	}
	_ = t1
	_ = t2
}

func branchStats(s *trace.Stream) (count int, taken int) {
	for i := range s.Uops {
		if s.Uops[i].Class == trace.Branch {
			count++
			if s.Uops[i].Taken {
				taken++
			}
		}
	}
	return
}

func TestSliceSemantics(t *testing.T) {
	s := MustGenerate("gcc", 5_000, 0)
	sub := s.Slice(1000, 2000)
	if sub.Len() != 1000 {
		t.Errorf("slice len %d", sub.Len())
	}
	if s.Slice(-5, 10).Len() != 10 {
		t.Error("negative lo not clamped")
	}
	if got := s.Slice(4000, s.Len()+5000).Len(); got != s.Len()-4000 {
		t.Errorf("hi not clamped: got %d", got)
	}
}
