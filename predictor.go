package mipp

import (
	"context"
	"fmt"

	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/mlp"
	"mipp/internal/perf"
	"mipp/internal/power"
)

// CPIStack attributes predicted (or simulated) cycles to CPI components:
// base, branch misprediction, instruction cache, chained LLC hits and DRAM.
type CPIStack = perf.CPIStack

// CPIComponent indexes CPIStack components.
type CPIComponent = perf.Component

// CPI stack components.
const (
	CPIBase   = perf.Base
	CPIBranch = perf.BranchComp
	CPIICache = perf.ICache
	CPILLCHit = perf.LLCHit
	CPIDRAM   = perf.DRAM
)

// Activity holds the activity factors the power model consumes: how often
// each processor structure is exercised (§3.6).
type Activity = perf.Activity

// PowerStack is a power breakdown in watts (static, core, functional units,
// caches, DRAM, branch predictor).
type PowerStack = power.Stack

// MLPMode selects the memory-level-parallelism model.
type MLPMode = mlp.Mode

// MLP models (§4.4-4.5).
const (
	// MLPStride is the per-static-load stride model (the default).
	MLPStride = mlp.StrideMLP
	// MLPColdMiss is the cold-miss-only model.
	MLPColdMiss = mlp.ColdMiss
	// MLPNone disables memory-level parallelism (every miss serialized).
	MLPNone = mlp.None
)

// DispatchModel restricts the effective-dispatch-rate terms for the ablation
// of Figure 3.7.
type DispatchModel = core.DispatchModel

// Dispatch model levels.
const (
	DispatchFull         = core.DispatchFull
	DispatchInstructions = core.DispatchInstructions
	DispatchUops         = core.DispatchUops
	DispatchCritical     = core.DispatchCritical
)

// EntropyFit maps a workload's linear branch entropy to a predicted
// misprediction rate for one predictor (the per-predictor linear fits of
// Figure 3.9).
type EntropyFit func(entropy float64) float64

// Predictor evaluates one workload profile against processor
// configurations. NewPredictor compiles the profile once (phase 1: the
// StatStack curves, per-micro-trace mixes and MLP models, and the memo
// tables every config-invariant quantity lands in); Predict and
// PredictBatch are then cheap analytical queries (phase 2) — the property
// that makes design-space exploration fast. A Predictor is safe for
// concurrent use.
type Predictor struct {
	model      *core.Model
	opts       core.Options
	prefetcher *bool
	compiled   *core.Compiled
}

// PredictorOption customizes a Predictor.
type PredictorOption func(*Predictor)

// WithEntropyFits installs per-predictor entropy → misprediction-rate fits
// (Figure 3.9). Predictor names not present fall back to the asymptotic
// missrate ≈ entropy/2 relation.
func WithEntropyFits(fits map[string]EntropyFit) PredictorOption {
	return func(p *Predictor) {
		m := make(map[string]func(float64) float64, len(fits))
		for k, f := range fits {
			m[k] = f
		}
		p.model.EntropyFits = m
	}
}

// WithMLPMode selects the memory-level-parallelism model (default
// MLPStride).
func WithMLPMode(m MLPMode) PredictorOption {
	return func(p *Predictor) { p.opts.MLPMode = m }
}

// WithCombinedEvaluation evaluates one averaged profile instead of
// evaluating each micro-trace separately and combining predictions (the
// ISPASS-2015 baseline the TC'16 extension improves on, Figure 6.4).
func WithCombinedEvaluation() PredictorOption {
	return func(p *Predictor) { p.opts.Combined = true }
}

// WithBranchMissRate overrides the entropy-model misprediction rate with a
// fixed per-branch rate (used to isolate input errors, Table 6.2).
func WithBranchMissRate(rate float64) PredictorOption {
	return func(p *Predictor) { p.opts.BranchMissRate = rate }
}

// WithoutLLCChain disables the chained-LLC-hit penalty (§4.8 ablation).
func WithoutLLCChain() PredictorOption {
	return func(p *Predictor) { p.opts.NoLLCChain = true }
}

// WithoutBusQueue disables the memory-bus queuing delay (§4.7 ablation).
func WithoutBusQueue() PredictorOption {
	return func(p *Predictor) { p.opts.NoBusQueue = true }
}

// WithDispatchModel restricts the effective-dispatch-rate model (Figure 3.7
// ablation; default DispatchFull).
func WithDispatchModel(m DispatchModel) PredictorOption {
	return func(p *Predictor) { p.opts.DispatchModel = m }
}

// WithPrefetcher forces the stride prefetcher on (or off) for every
// evaluated configuration, overriding the configuration's own setting.
func WithPrefetcher(enabled bool) PredictorOption {
	return func(p *Predictor) { p.prefetcher = &enabled }
}

// NewPredictor builds a Predictor from a profile.
func NewPredictor(p *Profile, opts ...PredictorOption) (*Predictor, error) {
	if p == nil || p.raw == nil {
		return nil, fmt.Errorf("mipp: NewPredictor: nil or empty profile")
	}
	pd := &Predictor{
		model: core.New(p.raw, nil),
		opts:  core.DefaultOptions(),
	}
	for _, o := range opts {
		o(pd)
	}
	pd.compiled = pd.model.Compile(pd.opts)
	return pd, nil
}

// Workload returns the name of the profiled workload this Predictor
// evaluates.
func (pd *Predictor) Workload() string { return pd.model.Profile.Workload }

// Result is a complete prediction for one (workload, configuration) pair:
// cycles, the CPI stack, the activity factors and the power stack they
// imply.
type Result struct {
	// Config and Workload name the evaluated pair.
	Config   string
	Workload string
	// FrequencyGHz is the configuration's clock, kept so time and energy
	// derivations need no second look-up.
	FrequencyGHz float64
	// Cycles is the predicted execution time in core cycles.
	Cycles float64
	// Uops and Instructions are the stream totals the cycles cover.
	Uops         float64
	Instructions float64
	// Stack attributes the predicted cycles to CPI components.
	Stack CPIStack
	// Activity holds the predicted activity factors.
	Activity Activity
	// Power is the predicted power breakdown in watts.
	Power PowerStack
	// Deff is the uop-weighted average effective dispatch rate.
	Deff float64
	// MLP is the miss-weighted average predicted memory parallelism.
	MLP float64
	// BranchMissRate is the predicted per-branch misprediction rate.
	BranchMissRate float64
	// MicroCPI is the per-micro-trace predicted CPI (per uop), for phase
	// analysis (§6.5).
	MicroCPI []float64
}

// CPI returns predicted cycles per macro-instruction.
func (r *Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.Cycles / r.Instructions
}

// TimeSeconds returns predicted execution time at the configuration's clock.
func (r *Result) TimeSeconds() float64 { return r.Cycles / (r.FrequencyGHz * 1e9) }

// Watts returns total predicted power.
func (r *Result) Watts() float64 { return r.Power.Total() }

// EnergyJoules returns predicted energy for the run.
func (r *Result) EnergyJoules() float64 { return power.Energy(r.Power, r.TimeSeconds()) }

// EDP returns the energy-delay product (J·s).
func (r *Result) EDP() float64 { return power.EDP(r.Power, r.TimeSeconds()) }

// ED2P returns the energy-delay-squared product (J·s²), the DVFS-invariant
// metric of §7.3.
func (r *Result) ED2P() float64 { return power.ED2P(r.Power, r.TimeSeconds()) }

// Point projects the result onto the (time, power) plane used by the
// design-space exploration helpers.
func (r *Result) Point() Point {
	return Point{Config: r.Config, Time: r.TimeSeconds(), Power: r.Watts()}
}

// resolve validates cfg and applies the predictor's prefetcher override,
// copying the configuration when the override changes it.
func (pd *Predictor) resolve(cfg *Config) (*Config, error) {
	if cfg == nil {
		return nil, fmt.Errorf("mipp: Predict: nil config")
	}
	c := cfg
	if pd.prefetcher != nil && c.Prefetcher.Enabled != *pd.prefetcher {
		cc := *cfg
		cc.Prefetcher.Enabled = *pd.prefetcher
		c = &cc
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("mipp: Predict: %w", err)
	}
	return c, nil
}

// toResult lifts a core prediction into the public Result, attaching the
// power estimate.
func toResult(c *Config, res *core.Result) *Result {
	return &Result{
		Config:         res.Config,
		Workload:       res.Workload,
		FrequencyGHz:   c.FrequencyGHz,
		Cycles:         res.Cycles,
		Uops:           res.Uops,
		Instructions:   res.Instructions,
		Stack:          res.Stack,
		Activity:       res.Activity,
		Power:          power.Estimate(c, &res.Activity),
		Deff:           res.Deff,
		MLP:            res.MLP,
		BranchMissRate: res.BranchMissRate,
		MicroCPI:       res.MicroCPI,
	}
}

// Predict evaluates one configuration. The configuration is validated first
// and never mutated; Predict is safe to call concurrently.
func (pd *Predictor) Predict(cfg *Config) (*Result, error) {
	c, err := pd.resolve(cfg)
	if err != nil {
		return nil, err
	}
	return toResult(c, pd.compiled.Evaluate(c)), nil
}

// PredictBatch evaluates every configuration in input order on one reused
// evaluation kernel — the batched phase-2 path Sweep and the service layer
// run on. results[i] always corresponds to configs[i] and is byte-identical
// to what Predict(configs[i]) returns; errs[i] is non-nil exactly where the
// configuration failed validation (a bad configuration skips its slot, it
// does not abort the batch).
//
// Every configuration is validated up front; the context is then polled
// every few configurations (core.CtxCheckStride), so cancellation inside a
// large batch is observed promptly. On cancellation the configurations
// evaluated before the poll that saw it keep their results, the rest are
// nil, and ctx.Err() is returned. Safe for concurrent use.
//
// PredictBatch is a thin adapter over PredictBatchInto on a pooled
// BatchResult; batched callers that care about allocation should hold a
// BatchResult themselves.
func (pd *Predictor) PredictBatch(ctx context.Context, configs []*Config) (Results, []error, error) {
	br := getBatchResult()
	err := pd.PredictBatchInto(ctx, configs, br)
	results := make(Results, len(configs))
	errs := make([]error, len(configs))
	for i := range configs {
		errs[i] = br.Err(i)
		if br.Ok(i) {
			results[i] = br.Result(i)
		}
	}
	putBatchResult(br)
	return results, errs, err
}

// Config is a complete processor description; see mipp/arch for
// constructors (arch.Reference, arch.DesignSpace, ...).
type Config = config.Config

// EstimatePower runs the activity-factor power model directly, e.g. on the
// measured activity of a Simulate run.
func EstimatePower(cfg *Config, a *Activity) PowerStack { return power.Estimate(cfg, a) }
