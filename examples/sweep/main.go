// Concurrent batch evaluation with mipp.Sweep: fan one workload profile out
// over a stratified design-space sample on a worker pool, then answer the
// Table 7.1 question — what is the fastest configuration under a power cap?
//
// The sweep is deterministic: results arrive in config order whatever the
// worker count, and a context cancels it mid-flight. This replaces the
// manual evaluate-in-a-loop pattern cmd/explore used before the façade.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"mipp"
	"mipp/arch"
)

func main() {
	// A stratified 19-point sample of the 243-config space (every 13th
	// config touches every parameter value).
	configs := arch.DesignSpaceSample(13)

	profile, err := mipp.NewProfiler().Profile("mcf", 200_000)
	if err != nil {
		log.Fatal(err)
	}
	predictor, err := mipp.NewPredictor(profile)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep with a 2-second guard; Sweep returns promptly on cancellation.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	t0 := time.Now()
	results, err := mipp.Sweep(ctx, predictor, configs, mipp.WithWorkers(runtime.GOMAXPROCS(0)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept %d configs on %d workers in %v\n",
		len(configs), runtime.GOMAXPROCS(0), time.Since(t0).Round(time.Microsecond))

	fmt.Println("Pareto frontier (time vs power):")
	for _, p := range results.ParetoFront() {
		fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", p.Config, p.Time, p.Power)
	}

	for _, capW := range []float64{12, 18, 25} {
		if best, ok := results.BestUnderPowerCap(capW); ok {
			fmt.Printf("fastest under %4.0f W: %-36s time=%.6fs power=%5.1fW\n",
				capW, best.Config, best.Time, best.Power)
		} else {
			fmt.Printf("fastest under %4.0f W: no configuration fits\n", capW)
		}
	}
}
