package branch

import (
	"math/rand"
	"testing"

	"mipp/internal/trace"
	"mipp/internal/workload"
)

// patternStream builds a branch-only stream whose outcomes follow a periodic
// pattern with flip probability eps.
func patternStream(name string, n, period int, eps float64, seed int64) *trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	uops := make([]trace.Uop, n)
	for i := range uops {
		taken := i%period < period/2
		if rng.Float64() < eps {
			taken = !taken
		}
		uops[i] = trace.Uop{PC: 0x400, Static: 0, Class: trace.Branch, First: true, Taken: taken}
	}
	return &trace.Stream{Name: name, Uops: uops, Statics: 1}
}

func TestPredictorsLearnPeriodicPattern(t *testing.T) {
	for _, name := range StandardNames() {
		p, err := NewByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := patternStream("periodic", 20000, 8, 0, 1)
		rate, branches := MissRate(p, s)
		if branches != 20000 {
			t.Fatalf("%s: branch count %d", name, branches)
		}
		if rate > 0.05 {
			t.Errorf("%s: miss rate %.3f on a perfectly periodic branch", name, rate)
		}
	}
}

func TestPredictorsCannotLearnNoise(t *testing.T) {
	p := NewGshare(14)
	s := patternStream("noisy", 20000, 8, 0.4, 2)
	rate, _ := MissRate(p, s)
	if rate < 0.3 {
		t.Errorf("gshare miss rate %.3f on 40%% noise; should approach 0.4", rate)
	}
}

func TestEntropyTracksNoise(t *testing.T) {
	prev := -1.0
	for _, eps := range []float64{0, 0.1, 0.25, 0.5} {
		s := patternStream("e", 30000, 8, eps, 3)
		e := Entropy(s, 12)
		if e < prev-0.02 {
			t.Errorf("entropy not increasing with noise: eps=%v e=%v prev=%v", eps, e, prev)
		}
		prev = e
		// Linear entropy of flip-noise eps approaches 2*eps.
		want := 2 * eps
		if eps > 0 && (e < want*0.6 || e > want*1.4+0.05) {
			t.Errorf("eps=%v: entropy %.3f, want ≈ %.3f", eps, e, want)
		}
	}
}

func TestTrainProducesPositiveSlope(t *testing.T) {
	var streams []*trace.Stream
	for i, eps := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.45} {
		streams = append(streams, patternStream("t", 20000, 8, eps, int64(10+i)))
	}
	model, pts := Train("gshare", func() Predictor { return NewGshare(14) }, streams, 12)
	if len(pts) != len(streams) {
		t.Fatalf("training points = %d", len(pts))
	}
	if model.Fit.B <= 0 {
		t.Errorf("entropy fit slope %.3f not positive", model.Fit.B)
	}
	if model.Fit.R2 < 0.8 {
		t.Errorf("entropy fit R2 %.3f too low", model.Fit.R2)
	}
	// Predicted missrate for a held-out noise level should track eps.
	held := patternStream("held", 20000, 8, 0.15, 99)
	pred := model.Predict(Entropy(held, 12))
	actual, _ := MissRate(NewGshare(14), held)
	if diff := pred - actual; diff > 0.1 || diff < -0.1 {
		t.Errorf("held-out prediction %.3f vs actual %.3f", pred, actual)
	}
}

func TestMPKIOnWorkload(t *testing.T) {
	s := workload.MustGenerate("gobmk", 60_000, 0)
	for _, name := range StandardNames() {
		p, err := NewByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mpki := MPKI(p, s)
		if mpki <= 0 || mpki > 200 {
			t.Errorf("%s MPKI = %.1f out of plausible range", name, mpki)
		}
	}
}

func TestNewByNameUnknown(t *testing.T) {
	if _, err := NewByName("nope"); err == nil {
		t.Error("expected error for unknown predictor")
	}
}
