// Command explore runs the headline application of the framework: full
// design-space exploration (Chapter 7). It profiles each workload once,
// registers it with an evaluation Engine — the same registry + predictor
// cache mippd serves from — sweeps the analytical model over the 243-point
// design space on all cores, prints the predicted Pareto frontier and —
// optionally — validates the pruning against the cycle-level simulator.
//
// Usage:
//
//	explore -workload bzip2                  # model-only, full 243 points
//	explore -workload bzip2 -csv out.csv     # + per-config CSV export
//	explore -workload bzip2 -validate -k 13  # + simulator on a 19-point sample
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mipp"
	"mipp/api"
	"mipp/arch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explore: ")
	var (
		name     = flag.String("workload", "bzip2", "benchmark name")
		n        = flag.Int("n", 200_000, "trace length in micro-ops")
		k        = flag.Int("k", 1, "design-space stride (1 = all 243 configs)")
		workers  = flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS)")
		batch    = flag.Bool("batch", true, "sweep through the batched evaluation kernel (false = one Predict call per config)")
		csvPath  = flag.String("csv", "", "write per-config results as CSV to this file (- for stdout)")
		validate = flag.Bool("validate", false, "simulate the sampled space and score the pruning")
	)
	flag.Parse()

	stream, err := mipp.GenerateWorkload(*name, *n, 0)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	profile := mipp.NewProfiler().ProfileStream(stream)
	profTime := time.Since(t0)

	// The engine holds the profile and compiles the predictor on first
	// use; a long-lived process (or mippd) reuses both across queries.
	engine := mipp.NewEngine()
	if err := engine.Register(*name, profile); err != nil {
		log.Fatal(err)
	}
	// Phase 1 (compile): curves, per-micro MLP models, memo tables — paid
	// once per (workload, option set).
	t0 = time.Now()
	pred, err := engine.Predictor(*name, api.PredictorSpec{})
	if err != nil {
		log.Fatal(err)
	}
	compileTime := time.Since(t0)

	configs := arch.DesignSpaceSample(*k)
	var sweepOpts []mipp.SweepOption
	if *workers > 0 {
		sweepOpts = append(sweepOpts, mipp.WithWorkers(*workers))
	}
	// Phase 2 (evaluate): the batched kernel, or — for comparison — one
	// Predict call per configuration with no batch scratch reuse.
	t0 = time.Now()
	var results mipp.Results
	if *batch {
		results, err = mipp.Sweep(context.Background(), pred, configs, sweepOpts...)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		results = make(mipp.Results, len(configs))
		for i, cfg := range configs {
			if results[i], err = pred.Predict(cfg); err != nil {
				log.Fatal(err)
			}
		}
	}
	modelTime := time.Since(t0)

	mode := "batched"
	if !*batch {
		mode = "per-config"
	}
	fmt.Printf("%s: profiled %d uops in %v; compiled predictor in %v; swept %d configs in %v (%s, %.1f configs/s)\n",
		*name, profile.TotalUops(), profTime.Round(time.Millisecond),
		compileTime.Round(10*time.Microsecond), len(configs),
		modelTime.Round(time.Millisecond), mode, float64(len(configs))/modelTime.Seconds())
	fmt.Println("predicted Pareto frontier (time vs power):")
	for _, pt := range results.ParetoFront() {
		fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", pt.Config, pt.Time, pt.Power)
	}

	if *csvPath != "" {
		out := os.Stdout
		if *csvPath != "-" {
			f, err := os.Create(*csvPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := results.WriteCSV(out); err != nil {
			log.Fatal(err)
		}
		if *csvPath != "-" {
			fmt.Printf("wrote %d rows to %s\n", len(results), *csvPath)
		}
	}

	if !*validate {
		return
	}
	t0 = time.Now()
	var actual []mipp.Point
	for _, cfg := range configs {
		sim, err := mipp.Simulate(cfg, stream, mipp.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		pw := mipp.EstimatePower(cfg, &sim.Activity)
		actual = append(actual, mipp.Point{
			Config: cfg.Name,
			Time:   sim.TimeSeconds(cfg.FrequencyGHz),
			Power:  pw.Total(),
		})
	}
	simTime := time.Since(t0)
	met := mipp.CompareFronts(results.Points(), actual)
	fmt.Printf("validation: simulated %d configs in %v (model speedup %.0fx)\n",
		len(configs), simTime.Round(time.Millisecond),
		simTime.Seconds()/modelTime.Seconds())
	fmt.Printf("pruning quality: sensitivity=%.2f specificity=%.2f accuracy=%.2f HVR=%.3f\n",
		met.Sensitivity, met.Specificity, met.Accuracy, met.HVR)
	fmt.Println("actual Pareto frontier:")
	for _, pt := range mipp.ParetoFront(actual) {
		fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", pt.Config, pt.Time, pt.Power)
	}
}
