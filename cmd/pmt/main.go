// Command pmt is the Processor Modeling Tool: it evaluates the
// micro-architecture independent interval model for a profile (from aip) or
// a workload name against a processor configuration, and prints predicted
// CPI and power stacks (the analysis step of §2.6).
//
// Usage:
//
//	pmt -workload gcc -n 1000000
//	pmt -profile gcc.profile.json -config lowpower
//	pmt -workload mcf -mlp cold -combined
package main

import (
	"flag"
	"fmt"
	"log"

	"mipp"
	"mipp/arch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pmt: ")
	var (
		profPath = flag.String("profile", "", "profile JSON produced by aip")
		name     = flag.String("workload", "", "workload to profile on the fly")
		n        = flag.Int("n", 1_000_000, "trace length when profiling on the fly")
		cfgName  = flag.String("config", "reference", "reference | reference+pf | lowpower")
		mlpMode  = flag.String("mlp", "stride", "stride | cold | none")
		combined = flag.Bool("combined", false, "evaluate one combined profile instead of per micro-trace")
	)
	flag.Parse()

	var p *mipp.Profile
	var err error
	switch {
	case *profPath != "":
		p, err = mipp.LoadProfile(*profPath)
	case *name != "":
		p, err = mipp.NewProfiler().Profile(*name, *n)
	default:
		log.Fatal("need -profile or -workload")
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg, ok := arch.ByName(*cfgName)
	if !ok {
		log.Fatalf("unknown config %q", *cfgName)
	}

	var opts []mipp.PredictorOption
	if *combined {
		opts = append(opts, mipp.WithCombinedEvaluation())
	}
	switch *mlpMode {
	case "stride":
		opts = append(opts, mipp.WithMLPMode(mipp.MLPStride))
	case "cold":
		opts = append(opts, mipp.WithMLPMode(mipp.MLPColdMiss))
	case "none":
		opts = append(opts, mipp.WithMLPMode(mipp.MLPNone))
	default:
		log.Fatalf("unknown mlp mode %q", *mlpMode)
	}

	pred, err := mipp.NewPredictor(p, opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pred.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stack := res.Stack.PerInstruction(int64(res.Instructions))
	fmt.Printf("workload:  %s on %s\n", res.Workload, cfg.Name)
	fmt.Printf("cycles:    %.0f (CPI %.3f, Deff %.2f, MLP %.2f)\n", res.Cycles, res.CPI(), res.Deff, res.MLP)
	fmt.Printf("time:      %.6f s at %.2f GHz\n", res.TimeSeconds(), cfg.FrequencyGHz)
	fmt.Printf("CPI stack: %s\n", stack.String())
	fmt.Printf("power:     %s\n", res.Power.String())
	fmt.Printf("branch missrate: %.4f (entropy %.4f)\n", res.BranchMissRate, p.Entropy())
}
