// Package arch exposes the processor-description vocabulary of the public
// mipp API: complete core + memory-hierarchy configurations, the reference
// machines of the paper's evaluation (Table 6.1), the 3^5 = 243-point design
// space of Table 6.3 and the DVFS operating points of Table 7.2.
//
// The types are aliases of the engine's internal representation, so a
// *arch.Config built or mutated here feeds directly into mipp.Predictor,
// mipp.Sweep and mipp.Simulate with no conversion.
package arch

import (
	"mipp/internal/cache"
	"mipp/internal/config"
	"mipp/internal/memory"
	"mipp/internal/prefetch"
)

// Config is a complete core + memory-hierarchy description. Lower-level
// fields (ports, functional-unit latencies, cache geometry) are exported and
// freely mutable; call Validate before handing a hand-built Config to the
// model.
type Config = config.Config

// FUSpec describes the functional unit executing one uop class.
type FUSpec = config.FUSpec

// Port is the set of uop classes one issue port can forward per cycle.
type Port = config.Port

// CacheConfig describes one cache level (size, associativity, line size,
// access latency).
type CacheConfig = cache.Config

// MemoryConfig is the main-memory timing in core cycles, as derived by
// Config.MemConfig from the nanosecond parameters.
type MemoryConfig = memory.Config

// PrefetcherConfig configures the stride prefetcher model (§4.9).
type PrefetcherConfig = prefetch.Config

// DVFSPoint is one voltage/frequency operating point (Table 7.2).
type DVFSPoint = config.DVFSPoint

// Reference returns the Nehalem-based reference architecture of Table 6.1:
// a 4-wide core at 2.66 GHz with a 128-entry ROB and a 32 KB / 256 KB / 8 MB
// cache hierarchy.
func Reference() *Config { return config.Reference() }

// ReferenceWithPrefetcher is the reference architecture with the stride
// prefetcher enabled (§4.9, Figure 6.18).
func ReferenceWithPrefetcher() *Config { return config.ReferenceWithPrefetcher() }

// LowPower returns the low-power core used in Figure 6.13: a narrow 2-wide
// pipeline, small windows and caches, and a low DVFS point.
func LowPower() *Config { return config.LowPower() }

// ByName resolves the named stock configurations accepted by the command-line
// tools: "reference", "reference+pf" and "lowpower". ok is false for an
// unknown name.
func ByName(name string) (*Config, bool) {
	switch name {
	case "reference", "nehalem-ref":
		return Reference(), true
	case "reference+pf", "nehalem-ref+pf":
		return ReferenceWithPrefetcher(), true
	case "lowpower", "low-power":
		return LowPower(), true
	}
	return nil, false
}

// DesignSpace enumerates the 3^5 = 243-configuration space of Table 6.3:
// pipeline width {2,4,6} × ROB {64,128,256} × L2 {128,256,512 KB} ×
// L3 {2,4,8 MB} × frequency {2.0, 2.66, 3.33 GHz} (with voltage scaled).
func DesignSpace() []*Config { return config.DesignSpace() }

// DesignSpaceSample returns a sample of the 243-point design space: every
// k-th configuration of the lexicographic enumeration. Strides coprime to 3
// (such as the 13 the paper's harness uses) cycle through every value of
// every parameter; a k that is a multiple of 3 pins the innermost
// frequency/voltage dimension, so avoid it for DVFS-sensitive studies.
// k <= 1 returns the full space.
func DesignSpaceSample(k int) []*Config {
	all := config.DesignSpace()
	if k <= 1 {
		return all
	}
	var out []*Config
	for i := 0; i < len(all); i += k {
		out = append(out, all[i])
	}
	return out
}

// DVFSPoints returns the Nehalem-based DVFS settings of Table 7.2.
func DVFSPoints() []DVFSPoint { return config.DVFSPoints() }

// WithDVFS returns a copy of c at the given operating point.
func WithDVFS(c *Config, p DVFSPoint) *Config { return config.WithDVFS(c, p) }
