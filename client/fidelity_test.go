package client_test

// Client.Fidelity round-trip: the typed accessor returns the same report
// the engine holds, for enabled and disabled servers alike.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"mipp"
	"mipp/api"
	"mipp/arch"
	"mipp/client"
	"mipp/fidelity"
	"mipp/server"
)

type flatGroundTruth struct{}

func (flatGroundTruth) GroundTruth(ctx context.Context, workload string, cfg *arch.Config) (fidelity.Measurement, error) {
	return fidelity.Measurement{
		CPI:      1,
		CPIStack: fidelity.CPIStack{Base: 0.6, Branch: 0.1, ICache: 0.05, LLCHit: 0.1, DRAM: 0.15},
		Watts:    12,
		Power:    fidelity.PowerStack{Static: 4, Core: 4, FU: 1, Cache: 1.5, DRAM: 1, BPred: 0.5},
	}, nil
}

func TestFidelityRoundTrip(t *testing.T) {
	engine := mipp.NewEngine(mipp.WithFidelitySampling(mipp.FidelityOptions{
		SampleEvery: 1,
		Budget:      32,
		GroundTruth: flatGroundTruth{},
	}))
	defer engine.Close()
	p, err := mipp.NewProfiler().Profile("mcf", testUops)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Register("mcf", p); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(engine))
	defer srv.Close()
	c := client.New(srv.URL)
	ctx := context.Background()

	if _, err := c.Predict(ctx, &api.PredictRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Config:        api.ConfigSpec{Name: "reference"},
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Fidelity(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || resp.Report == nil || resp.Report.Samples < 1 {
		t.Fatalf("Fidelity = %+v", resp)
	}

	// The wire report matches the engine's own, byte for byte.
	local, err := engine.FidelityReport(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(local)
	got, _ := json.Marshal(resp.Report)
	if string(got) != string(want) {
		t.Fatalf("wire report differs from engine report:\n%s\nvs\n%s", got, want)
	}
}

func TestFidelityDisabledRoundTrip(t *testing.T) {
	h := newHarness(t)
	resp, err := h.remote.Fidelity(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || resp.Report != nil {
		t.Fatalf("disabled server answered %+v", resp)
	}
}
