// Command benchjson converts `go test -bench` output on stdin into a JSON
// perf record and enforces metric budgets, so CI can both archive the perf
// trajectory (BENCH_pr8.json) and fail when a hot path regresses.
//
// Usage:
//
//	go test -run=NONE -bench=... -benchmem . ./search | \
//	    go run ./internal/tools/benchjson -out BENCH_pr8.json \
//	        -limit 'PredictBatchInto:allocs/op:0' \
//	        -min 'PredictBatchDVFS:configs/s:1000000' \
//	        -ratio 'SearchRandom:evals/s:SearchEvaluatorKernel:evals/s:0.833'
//
// Every benchmark line becomes an entry keyed by its name (the -<procs>
// suffix stripped), holding iterations plus each reported metric verbatim
// ("ns/op", "configs/s", "allocs/config", ...). Budgets are repeatable and
// fail the run when the named benchmark or metric is missing:
//
//   - -limit NAME:METRIC:MAX   fails if the metric exceeds MAX
//   - -min   NAME:METRIC:MIN   fails if the metric is below MIN
//   - -ratio A:MA:B:MB:MIN     fails if A's MA divided by B's MB is below
//     MIN — e.g. the search driver's evals/s must stay within 1.2× of the
//     raw kernel's (ratio ≥ 1/1.2 ≈ 0.833)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches "BenchmarkName[-procs]  iterations  v unit  v unit ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+(.*)$`)

type entry struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type record struct {
	SchemaVersion int    `json:"schema_version"`
	PR            int    `json:"pr"`
	Note          string `json:"note,omitempty"`
	// Seed records the prior PR's achieved numbers (BENCH_pr4.json: the
	// []*Result batch adapter, the 1-worker engine batch, and the random
	// search driver) so the trajectory is readable from this file alone.
	Seed     map[string]float64 `json:"seed_baseline"`
	Benches  map[string]entry   `json:"benchmarks"`
	Failures []string           `json:"budget_failures,omitempty"`
}

type budgets []string

func (l *budgets) String() string     { return strings.Join(*l, ",") }
func (l *budgets) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	var (
		out                = flag.String("out", "BENCH_pr8.json", "output JSON path (- for stdout)")
		pr                 = flag.Int("pr", 8, "PR number stamped into the record")
		note               = flag.String("note", "zero-alloc struct-of-arrays batch kernel: EvaluateBatchInto + batch-local memo caches; DVFS fast path >1M configs/s", "note stamped into the record")
		lims, mins, ratios budgets
	)
	flag.Var(&lims, "limit", "budget NAME:METRIC:MAX (repeatable); fail if exceeded or missing")
	flag.Var(&mins, "min", "floor NAME:METRIC:MIN (repeatable); fail if below or missing")
	flag.Var(&ratios, "ratio", "floor A:METRICA:B:METRICB:MIN (repeatable); fail if A/B below MIN or missing")
	flag.Parse()

	rec := record{
		SchemaVersion: 1,
		PR:            *pr,
		Note:          *note,
		Seed: map[string]float64{
			"pr4_predict_batch_configs_per_s":     214629,
			"pr4_predict_batch_allocs_per_config": 3.148,
			"pr4_engine_evaluate_configs_per_s":   132684,
			"pr4_search_random_evals_per_s":       156971,
		},
		Benches: make(map[string]entry),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Iterations: iters, Metrics: make(map[string]float64)}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			e.Metrics[fields[i+1]] = v
		}
		rec.Benches[strings.TrimPrefix(m[1], "Benchmark")] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// metric resolves NAME:METRIC against the parsed benchmarks, recording a
	// failure (and returning ok=false) when either is absent.
	metric := func(name, met string) (float64, bool) {
		e, ok := rec.Benches[name]
		if !ok {
			rec.Failures = append(rec.Failures, fmt.Sprintf("benchmark %q missing", name))
			return 0, false
		}
		v, ok := e.Metrics[met]
		if !ok {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: metric %q missing", name, met))
			return 0, false
		}
		return v, true
	}

	for _, lim := range lims {
		parts := strings.Split(lim, ":")
		if len(parts) != 3 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -limit %q (want NAME:METRIC:MAX)\n", lim)
			os.Exit(2)
		}
		maxV, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -limit max %q: %v\n", parts[2], err)
			os.Exit(2)
		}
		if v, ok := metric(parts[0], parts[1]); ok && v > maxV {
			rec.Failures = append(rec.Failures,
				fmt.Sprintf("%s: %s = %g exceeds budget %g", parts[0], parts[1], v, maxV))
		}
	}

	for _, min := range mins {
		parts := strings.Split(min, ":")
		if len(parts) != 3 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -min %q (want NAME:METRIC:MIN)\n", min)
			os.Exit(2)
		}
		minV, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -min floor %q: %v\n", parts[2], err)
			os.Exit(2)
		}
		if v, ok := metric(parts[0], parts[1]); ok && v < minV {
			rec.Failures = append(rec.Failures,
				fmt.Sprintf("%s: %s = %g below floor %g", parts[0], parts[1], v, minV))
		}
	}

	for _, rat := range ratios {
		parts := strings.Split(rat, ":")
		if len(parts) != 5 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -ratio %q (want A:METRICA:B:METRICB:MIN)\n", rat)
			os.Exit(2)
		}
		minV, err := strconv.ParseFloat(parts[4], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -ratio floor %q: %v\n", parts[4], err)
			os.Exit(2)
		}
		num, okA := metric(parts[0], parts[1])
		den, okB := metric(parts[2], parts[3])
		if !okA || !okB {
			continue
		}
		if den == 0 {
			rec.Failures = append(rec.Failures,
				fmt.Sprintf("%s: %s is zero, ratio undefined", parts[2], parts[3]))
			continue
		}
		if r := num / den; r < minV {
			rec.Failures = append(rec.Failures,
				fmt.Sprintf("%s:%s / %s:%s = %.3f below floor %g",
					parts[0], parts[1], parts[2], parts[3], r, minV))
		}
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	for _, f := range rec.Failures {
		fmt.Fprintf(os.Stderr, "benchjson: BUDGET FAILURE: %s\n", f)
	}
	if len(rec.Failures) > 0 {
		os.Exit(1)
	}
}
