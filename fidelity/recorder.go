package fidelity

import (
	"math"
	"sort"
	"sync"

	"mipp/obs"
)

// Recorder accumulates fidelity samples into obs instruments and a
// deterministic Report. It has set semantics: samples are keyed by digest,
// so re-recording an already-seen (workload, options, config) triple is a
// no-op — the sampler may race with the search escalation hook over the
// same config and the report stays stable.
//
// Record takes a mutex and allocates; it runs on the sampler worker and
// the escalation path, never inside a kernel hot path (the hotpath
// analyzer enforces this).
type Recorder struct {
	mu       sync.Mutex
	samples  map[string]Sample
	failures uint64

	// per-workload running aggregates, for the healthz section and the
	// workload-labeled gauges without re-folding the sample set.
	byWorkload map[string]*workloadAgg

	// Instruments are created with the recorder so recording works before
	// (or without) MetricsInto; MetricsInto attaches them to a registry.
	recorded    obs.Counter
	failed      obs.Counter
	cpiResid    [5]*obs.SignedHistogram
	powerResid  [6]*obs.SignedHistogram
	cpiErrPct   *obs.SignedHistogram
	wattsErrPct *obs.SignedHistogram

	// vecs exist only after MetricsInto; guarded by mu.
	workloadSamples *obs.CounterVec
	cpiErrGauge     *obs.GaugeVec
	wattsErrGauge   *obs.GaugeVec
}

type workloadAgg struct {
	n           int
	sumAbsCPI   float64 // sum |CPIErrorPct|
	sumAbsWatts float64 // sum |WattsErrorPct|
}

// NewRecorder returns an empty recorder with its instruments constructed
// but not yet registered; call MetricsInto to expose them.
func NewRecorder() *Recorder {
	r := &Recorder{
		samples:    make(map[string]Sample),
		byWorkload: make(map[string]*workloadAgg),
	}
	for i := range r.cpiResid {
		//mipp:allow obshygiene one histogram per fixed CPI component, built once at construction
		r.cpiResid[i] = obs.NewSignedHistogram(obs.ResidualBuckets...)
	}
	for i := range r.powerResid {
		//mipp:allow obshygiene one histogram per fixed power component, built once at construction
		r.powerResid[i] = obs.NewSignedHistogram(obs.ResidualBuckets...)
	}
	// Total-error histograms are in percent — scale the magnitudes up.
	pct := make([]float64, len(obs.ResidualBuckets))
	for i, b := range obs.ResidualBuckets {
		pct[i] = b * 100
	}
	r.cpiErrPct = obs.NewSignedHistogram(pct...)
	r.wattsErrPct = obs.NewSignedHistogram(pct...)
	return r
}

// MetricsInto registers the recorder's instruments on reg under the
// mipp_fidelity_* namespace. Call once at startup; samples recorded before
// registration are already reflected (counters and histograms are shared),
// and per-workload series recorded before registration are replayed.
func (r *Recorder) MetricsInto(reg *obs.Registry) {
	reg.RegisterCounter("mipp_fidelity_samples_total",
		"Fidelity samples recorded (model vs simulator comparisons).", &r.recorded)
	reg.RegisterCounter("mipp_fidelity_failures_total",
		"Ground-truth evaluations that failed (simulator error or cancellation).", &r.failed)
	for i, name := range CPIComponents {
		//mipp:allow obshygiene pre-registering one series per fixed CPI component at startup
		reg.RegisterSignedHistogram("mipp_fidelity_cpi_residual",
			"Signed model-minus-simulator CPI residual per component (cycles/instruction).",
			r.cpiResid[i], obs.Label{Key: "component", Value: name})
	}
	for i, name := range PowerComponents {
		//mipp:allow obshygiene pre-registering one series per fixed power component at startup
		reg.RegisterSignedHistogram("mipp_fidelity_power_residual",
			"Signed model-minus-simulator power residual per component (watts).",
			r.powerResid[i], obs.Label{Key: "component", Value: name})
	}
	reg.RegisterSignedHistogram("mipp_fidelity_cpi_error_pct_hist",
		"Signed relative CPI error of the totals, percent.", r.cpiErrPct)
	reg.RegisterSignedHistogram("mipp_fidelity_watts_error_pct_hist",
		"Signed relative power error of the totals, percent.", r.wattsErrPct)

	r.mu.Lock()
	defer r.mu.Unlock()
	r.workloadSamples = reg.CounterVec("mipp_fidelity_workload_samples_total",
		"Fidelity samples recorded per workload.", "workload")
	r.cpiErrGauge = reg.GaugeVec("mipp_fidelity_cpi_error_pct",
		"Mean absolute relative CPI error per workload, percent.", "workload")
	r.wattsErrGauge = reg.GaugeVec("mipp_fidelity_watts_error_pct",
		"Mean absolute relative power error per workload, percent.", "workload")
	for w, agg := range r.byWorkload {
		r.workloadSamples.With(w).Add(uint64(agg.n))
		r.publishWorkloadLocked(w, agg)
	}
}

// publishWorkloadLocked refreshes the per-workload error gauges. Caller
// holds r.mu and has checked the vecs exist.
func (r *Recorder) publishWorkloadLocked(w string, agg *workloadAgg) {
	if r.cpiErrGauge == nil || agg.n == 0 {
		return
	}
	r.cpiErrGauge.With(w).Set(agg.sumAbsCPI / float64(agg.n))
	r.wattsErrGauge.With(w).Set(agg.sumAbsWatts / float64(agg.n))
}

// Record folds one (model, simulator) pair in. Duplicate digests are
// dropped; the first recording wins. Reports whether the sample was new.
func (r *Recorder) Record(p Pair) bool {
	s := p.Sample()
	r.mu.Lock()
	if _, dup := r.samples[s.Digest]; dup {
		r.mu.Unlock()
		return false
	}
	r.samples[s.Digest] = s
	agg := r.byWorkload[s.Workload]
	if agg == nil {
		agg = &workloadAgg{}
		r.byWorkload[s.Workload] = agg
	}
	agg.n++
	agg.sumAbsCPI += math.Abs(s.CPIErrorPct)
	agg.sumAbsWatts += math.Abs(s.WattsErrorPct)
	if r.workloadSamples != nil {
		r.workloadSamples.With(s.Workload).Add(1)
		r.publishWorkloadLocked(s.Workload, agg)
	}
	r.mu.Unlock()

	// Instrument updates are lock-free; outside the mutex on purpose.
	r.recorded.Add(1)
	cr := s.CPIResidual.Components()
	for i := range cr {
		r.cpiResid[i].Observe(cr[i])
	}
	pr := s.PowerResidual.Components()
	for i := range pr {
		r.powerResid[i].Observe(pr[i])
	}
	r.cpiErrPct.Observe(s.CPIErrorPct)
	r.wattsErrPct.Observe(s.WattsErrorPct)
	return true
}

// RecordFailure counts a ground-truth evaluation that did not produce a
// sample (simulator error, cancellation at shutdown).
func (r *Recorder) RecordFailure() {
	r.mu.Lock()
	r.failures++
	r.mu.Unlock()
	r.failed.Add(1)
}

// Stats is the cheap aggregate view for health endpoints.
type Stats struct {
	Samples     int     `json:"samples"`
	Failures    uint64  `json:"failures"`
	CPIMAPEPct  float64 `json:"cpi_mape_pct"`
	WattsMAPE   float64 `json:"watts_mape_pct"`
	MaxAbsCPI   float64 `json:"max_abs_cpi_error_pct"`
	MaxAbsWatts float64 `json:"max_abs_watts_error_pct"`
}

// Stats returns the overall aggregates without building a full report.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{Samples: len(r.samples), Failures: r.failures}
	if st.Samples == 0 {
		return st
	}
	var sumCPI, sumWatts float64
	for _, s := range r.samples {
		a, b := math.Abs(s.CPIErrorPct), math.Abs(s.WattsErrorPct)
		sumCPI += a
		sumWatts += b
		if a > st.MaxAbsCPI {
			st.MaxAbsCPI = a
		}
		if b > st.MaxAbsWatts {
			st.MaxAbsWatts = b
		}
	}
	st.CPIMAPEPct = sumCPI / float64(st.Samples)
	st.WattsMAPE = sumWatts / float64(st.Samples)
	return st
}

// Summary aggregates the relative error of one total (CPI or watts) over
// every sample.
type Summary struct {
	// MAPEPct is the mean absolute relative error, percent; BiasPct the
	// signed mean (positive: the model over-predicts on average).
	MAPEPct   float64 `json:"mape_pct"`
	BiasPct   float64 `json:"bias_pct"`
	MaxAbsPct float64 `json:"max_abs_pct"`
	// MaxWorkload/MaxConfig locate the worst sample.
	MaxWorkload string `json:"max_workload,omitempty"`
	MaxConfig   string `json:"max_config,omitempty"`
}

// ComponentError aggregates one stack component's signed residual in its
// absolute unit (CPI or watts) — relative error is meaningless for
// components the simulator measures near zero.
type ComponentError struct {
	Component   string  `json:"component"`
	MeanAbs     float64 `json:"mean_abs"`
	Mean        float64 `json:"mean"`
	MaxAbs      float64 `json:"max_abs"`
	MaxWorkload string  `json:"max_workload,omitempty"`
	MaxConfig   string  `json:"max_config,omitempty"`
}

// Report is the JSON-stable fidelity report: overall summaries,
// per-component breakdowns, per-workload MAPE, and the worst samples. Two
// recorders holding the same sample set produce byte-identical reports.
type Report struct {
	Samples  int    `json:"samples"`
	Failures uint64 `json:"failures"`

	CPI   Summary `json:"cpi"`
	Watts Summary `json:"watts"`

	CPIComponents   []ComponentError `json:"cpi_components"`
	PowerComponents []ComponentError `json:"power_components"`

	// Workloads maps workload name -> per-workload CPI summary; rendered
	// sorted by encoding/json's map-key ordering.
	Workloads map[string]Summary `json:"workloads,omitempty"`

	// Worst lists the N samples with the largest |CPI error|, worst first.
	Worst []Sample `json:"worst,omitempty"`
}

// Report folds the recorded sample set into a Report, keeping the worstN
// largest-|CPI-error| samples (worstN <= 0 keeps none). The fold order is
// canonical — samples sorted by (workload, config, digest) — so the result
// is independent of arrival order.
func (r *Recorder) Report(worstN int) Report {
	r.mu.Lock()
	samples := make([]Sample, 0, len(r.samples))
	for _, s := range r.samples {
		samples = append(samples, s)
	}
	failures := r.failures
	r.mu.Unlock()

	sort.Slice(samples, func(i, j int) bool {
		a, b := samples[i], samples[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		return a.Digest < b.Digest
	})

	rep := Report{Samples: len(samples), Failures: failures}
	if len(samples) == 0 {
		return rep
	}

	var cpiAgg, wattsAgg summaryAgg
	workloadAggs := make(map[string]*summaryAgg)
	var cpiComp [5]componentAgg
	var powerComp [6]componentAgg
	for _, s := range samples {
		cpiAgg.add(s.CPIErrorPct, s)
		wattsAgg.add(s.WattsErrorPct, s)
		wa := workloadAggs[s.Workload]
		if wa == nil {
			wa = &summaryAgg{}
			workloadAggs[s.Workload] = wa
		}
		wa.add(s.CPIErrorPct, s)
		cr := s.CPIResidual.Components()
		for i := range cr {
			cpiComp[i].add(cr[i], s)
		}
		pr := s.PowerResidual.Components()
		for i := range pr {
			powerComp[i].add(pr[i], s)
		}
	}
	rep.CPI = cpiAgg.summary()
	rep.Watts = wattsAgg.summary()
	rep.Workloads = make(map[string]Summary, len(workloadAggs))
	for w, a := range workloadAggs {
		rep.Workloads[w] = a.summary()
	}
	rep.CPIComponents = make([]ComponentError, len(cpiComp))
	for i := range cpiComp {
		rep.CPIComponents[i] = cpiComp[i].result(CPIComponents[i])
	}
	rep.PowerComponents = make([]ComponentError, len(powerComp))
	for i := range powerComp {
		rep.PowerComponents[i] = powerComp[i].result(PowerComponents[i])
	}

	if worstN > 0 {
		worst := append([]Sample(nil), samples...)
		// Stable tie-break: the canonical order above survives equal errors.
		sort.SliceStable(worst, func(i, j int) bool {
			return math.Abs(worst[i].CPIErrorPct) > math.Abs(worst[j].CPIErrorPct)
		})
		if worstN > len(worst) {
			worstN = len(worst)
		}
		rep.Worst = worst[:worstN]
	}
	return rep
}

// summaryAgg folds signed percent errors into a Summary.
type summaryAgg struct {
	n           int
	sum, sumAbs float64
	maxAbs      float64
	maxWorkload string
	maxConfig   string
}

func (a *summaryAgg) add(pct float64, s Sample) {
	a.n++
	a.sum += pct
	abs := math.Abs(pct)
	a.sumAbs += abs
	if abs > a.maxAbs {
		a.maxAbs = abs
		a.maxWorkload = s.Workload
		a.maxConfig = s.Config
	}
}

func (a *summaryAgg) summary() Summary {
	if a.n == 0 {
		return Summary{}
	}
	return Summary{
		MAPEPct:     a.sumAbs / float64(a.n),
		BiasPct:     a.sum / float64(a.n),
		MaxAbsPct:   a.maxAbs,
		MaxWorkload: a.maxWorkload,
		MaxConfig:   a.maxConfig,
	}
}

// componentAgg folds one component's signed absolute-unit residuals.
type componentAgg struct {
	n           int
	sum, sumAbs float64
	maxAbs      float64
	maxWorkload string
	maxConfig   string
}

func (a *componentAgg) add(v float64, s Sample) {
	a.n++
	a.sum += v
	abs := math.Abs(v)
	a.sumAbs += abs
	if abs > a.maxAbs {
		a.maxAbs = abs
		a.maxWorkload = s.Workload
		a.maxConfig = s.Config
	}
}

func (a *componentAgg) result(name string) ComponentError {
	ce := ComponentError{Component: name}
	if a.n == 0 {
		return ce
	}
	ce.MeanAbs = a.sumAbs / float64(a.n)
	ce.Mean = a.sum / float64(a.n)
	ce.MaxAbs = a.maxAbs
	ce.MaxWorkload = a.maxWorkload
	ce.MaxConfig = a.maxConfig
	return ce
}
