package exp

import (
	"fmt"
	"io"

	"mipp/internal/branch"
	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/ooo"
	"mipp/internal/profiler"
	"mipp/internal/stats"
	"mipp/internal/trace"
	"mipp/internal/workload"
)

func init() {
	register("fig3.1", "Micro-operations per instruction (Figure 3.1)", fig3x1)
	register("fig3.4", "AP vs ABP vs CP dependence chains, ROB=128 (Figure 3.4)", fig3x4)
	register("fig3.6", "Effective dispatch rate limiters (Figure 3.6)", fig3x6)
	register("fig3.7", "Base-component error vs model refinements (Figure 3.7)", fig3x7)
	register("fig3.9", "Branch entropy vs misprediction rate, linear fit (Figure 3.9)", fig3x9)
	register("fig3.10", "Entropy-model MPKI error per predictor (Figure 3.10)", fig3x10)
	register("fig5.2", "Sampled vs full instruction mix (Figure 5.2)", fig5x2)
	register("fig5.4", "Dependence-chain interpolation error (Figures 5.3-5.4)", fig5x4)
	register("fig5.5", "Dependence-chain sampling error (Figure 5.5)", fig5x5)
	register("fig5.6", "Branch component share of execution time (Figure 5.6)", fig5x6)
}

func fig3x1(s *Suite, w io.Writer) {
	header(w, "uops / instruction per benchmark")
	for _, name := range s.Workloads {
		st := s.Stream(name, s.N)
		fmt.Fprintf(w, "%-12s %.3f\n", name, st.UopsPerInstruction())
	}
}

func fig3x4(s *Suite, w io.Writer) {
	header(w, "dependence chains at ROB 128: AP / ABP / CP")
	for _, name := range s.Workloads {
		p := s.Profile(name, s.N)
		ap, abp, cp := p.Chains.At(128)
		fmt.Fprintf(w, "%-12s AP=%6.2f ABP=%6.2f CP=%6.2f\n", name, ap, abp, cp)
	}
}

func fig3x6(s *Suite, w io.Writer) {
	header(w, "dispatch-rate limiter (fraction of micro-traces): width / dependences / port / unit")
	cfg := config.Reference()
	for _, name := range s.Workloads {
		res := s.Model(name, s.N).Evaluate(cfg, core.DefaultOptions())
		total := 0.0
		for _, c := range res.Limiter {
			total += c
		}
		if total == 0 {
			total = 1
		}
		fmt.Fprintf(w, "%-12s width=%.2f dep=%.2f port=%.2f unit=%.2f (Deff=%.2f)\n",
			name, res.Limiter[0]/total, res.Limiter[1]/total, res.Limiter[2]/total, res.Limiter[3]/total, res.Deff)
	}
}

// fig3x7 reproduces the progressive refinement of the base component: the
// model under four dispatch models versus a miss-event-free simulation.
func fig3x7(s *Suite, w io.Writer) {
	header(w, "base-component |error| vs perfect-OoO simulation")
	cfg := config.Reference()
	models := []struct {
		name string
		dm   core.DispatchModel
	}{
		{"Instructions", core.DispatchInstructions},
		{"Micro-operations", core.DispatchUops},
		{"Critical", core.DispatchCritical},
		{"Functional", core.DispatchFull},
	}
	perfOpts := ooo.Options{PerfectBP: true, PerfectICache: true, PerfectDCache: true}
	errs := make([][]float64, len(models))
	for _, name := range s.Workloads {
		st := s.Stream(name, s.N)
		sim, err := ooo.Simulate(cfg, st, perfOpts)
		if err != nil {
			panic(err)
		}
		m := s.Model(name, s.N)
		for i, dm := range models {
			opts := core.DefaultOptions()
			opts.DispatchModel = dm.dm
			// Base component only: compare against the perfect core.
			res := m.Evaluate(cfg, opts)
			base := res.Stack.Cycles[0] // perf.Base
			errs[i] = append(errs[i], stats.AbsErr(base, float64(sim.Cycles)))
		}
	}
	for i, dm := range models {
		b := stats.Box(errs[i])
		fmt.Fprintf(w, "%-16s mean=%5.1f%% median=%5.1f%% q1=%5.1f%% q3=%5.1f%% p99=%5.1f%%\n",
			dm.name, b.Mean*100, b.Median*100, b.Q1*100, b.Q3*100, b.P99*100)
	}
}

// entropyTrainingStreams builds the 400+-experiment style training set: the
// suite's workloads plus synthetic branchy kernels sweeping the noise level.
func entropyTrainingStreams(s *Suite) []*trace.Stream {
	var streams []*trace.Stream
	for _, name := range s.Workloads {
		streams = append(streams, s.Stream(name, s.N/3))
	}
	for i, eps := range []float64{0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.28, 0.35, 0.42, 0.5} {
		b := workload.NewBuilder(fmt.Sprintf("entropy-%.2f", eps), int64(1000+i), 60_000)
		k := workload.Branchy{BranchFrac: 0.18, Eps: []float64{eps, eps / 2, eps * 1.2}, Footprint: 64 << 10, LoadFrac: 0.2}
		k.Emit(b, 50_000)
		streams = append(streams, b.Stream())
	}
	return streams
}

func fig3x9(s *Suite, w io.Writer) {
	header(w, "linear fit: branch entropy -> misprediction rate (GAg 4KB)")
	streams := entropyTrainingStreams(s)
	model, pts := branch.Train("GAg", func() branch.Predictor { return branch.NewGAg(14) }, streams, 12)
	for _, pt := range pts {
		fmt.Fprintf(w, "%-14s entropy=%.4f missrate=%.4f fit=%.4f\n",
			pt.Workload, pt.Entropy, pt.MissRate, model.Fit.Eval(pt.Entropy))
	}
	fmt.Fprintf(w, "fit: missrate = %.4f + %.4f*entropy (R2=%.3f)\n", model.Fit.A, model.Fit.B, model.Fit.R2)
}

func fig3x10(s *Suite, w io.Writer) {
	header(w, "entropy-model MPKI error per predictor (signed, model - simulated)")
	streams := entropyTrainingStreams(s)
	for _, pname := range branch.StandardNames() {
		model, _ := branch.Train(pname, func() branch.Predictor {
			p, err := branch.NewByName(pname)
			if err != nil {
				panic(err)
			}
			return p
		}, streams, 12)
		var deltas []float64
		for _, name := range s.Workloads {
			st := s.Stream(name, s.N/3)
			pred, err := branch.NewByName(pname)
			if err != nil {
				panic(err)
			}
			simMPKI := branch.MPKI(pred, st)
			e := branch.Entropy(st, 12)
			instr := float64(st.Instructions())
			var branches float64
			for i := range st.Uops {
				if st.Uops[i].Class == trace.Branch {
					branches++
				}
			}
			modMPKI := model.Predict(e) * branches / instr * 1000
			deltas = append(deltas, modMPKI-simMPKI)
		}
		b := stats.Box(deltas)
		fmt.Fprintf(w, "%-12s mean=%+6.2f median=%+6.2f q1=%+6.2f q3=%+6.2f min=%+6.2f max=%+6.2f MPKI\n",
			pname, b.Mean, b.Median, b.Q1, b.Q3, b.Lo, b.Hi)
	}
}

func fig5x2(s *Suite, w io.Writer) {
	header(w, "instruction-mix sampling error (1/10 micro-trace rate, Eq 5.1)")
	var worst, sum float64
	var count int
	for _, name := range s.Workloads {
		st := s.Stream(name, s.N)
		p := s.Profile(name, s.N)
		full := st.Mix()
		sampled := p.Mix()
		maxErr := 0.0
		for c := range full {
			d := sampled[c] - full[c]
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
			sum += d
			count++
		}
		if maxErr > worst {
			worst = maxErr
		}
		fmt.Fprintf(w, "%-12s max per-class error %.3f%%\n", name, maxErr*100)
	}
	fmt.Fprintf(w, "average error %.4f%%, worst %.3f%%\n", sum/float64(count)*100, worst*100)
}

func fig5x4(s *Suite, w io.Writer) {
	header(w, "chain-length log-fit interpolation error (profiled every 32, predicted at 16-offsets)")
	for _, name := range s.Workloads {
		p := s.Profile(name, s.N)
		full := p.Chains
		// Rebuild a coarse set from every second point and interpolate
		// back to the skipped ROB sizes.
		coarse := &profiler.ChainSet{}
		for i := 0; i < len(full.ROBs); i += 2 {
			coarse.ROBs = append(coarse.ROBs, full.ROBs[i])
			coarse.AP = append(coarse.AP, full.AP[i])
			coarse.ABP = append(coarse.ABP, full.ABP[i])
			coarse.CP = append(coarse.CP, full.CP[i])
		}
		var apErr, abpErr, cpErr []float64
		for i := 1; i < len(full.ROBs); i += 2 {
			ap, abp, cp := coarse.At(full.ROBs[i])
			apErr = append(apErr, stats.AbsErr(ap, full.AP[i]))
			abpErr = append(abpErr, stats.AbsErr(abp, full.ABP[i]))
			cpErr = append(cpErr, stats.AbsErr(cp, full.CP[i]))
		}
		fmt.Fprintf(w, "%-12s AP=%.2f%% ABP=%.2f%% CP=%.2f%%\n",
			name, stats.Mean(apErr)*100, stats.Mean(abpErr)*100, stats.Mean(cpErr)*100)
	}
}

func fig5x5(s *Suite, w io.Writer) {
	header(w, "chain-length sampling error (sampled micro-traces vs dense profiling)")
	n := s.N / 3
	for _, name := range s.Workloads {
		st := s.Stream(name, n)
		sampled := profiler.Run(st, profiler.Options{})
		dense := profiler.Run(st, profiler.Options{MicroUops: 2000, WindowUops: 2000})
		apS, abpS, cpS := sampled.Chains.At(128)
		apD, abpD, cpD := dense.Chains.At(128)
		fmt.Fprintf(w, "%-12s AP=%.2f%% ABP=%.2f%% CP=%.2f%%\n", name,
			stats.AbsErr(apS, apD)*100, stats.AbsErr(abpS, abpD)*100, stats.AbsErr(cpS, cpD)*100)
	}
}

func fig5x6(s *Suite, w io.Writer) {
	header(w, "branch component share of simulated execution time")
	cfg := config.Reference()
	for _, name := range s.Workloads {
		sim := s.Sim(name, cfg, s.N)
		fmt.Fprintf(w, "%-12s branch share %.2f%% (CPI %.3f)\n",
			name, sim.Stack.Fraction(1)*100, sim.CPI())
	}
}
