// Package workload synthesizes deterministic dynamic micro-op streams that
// stand in for the SPEC CPU 2006 traces the paper profiles with Pin.
//
// The analytical model consumes only distributional properties of the dynamic
// instruction stream — micro-op mix, dependence-chain structure, memory reuse
// and stride behaviour, and branch (un)predictability. The suite in this
// package therefore generates streams from parameterized kernels that span
// the same behaviour space the paper's workload-characterization figures
// document (Figures 3.1, 3.4, 4.2, 4.4 and 4.7), one named workload per SPEC
// CPU 2006 benchmark. Generation is fully deterministic: the same name,
// length and seed always produce the identical stream, so the profiler and
// the cycle-level simulator observe exactly the same execution.
package workload

import (
	"math/rand"

	"mipp/internal/trace"
)

// NumRegs is the size of the virtual architectural register file the
// generators allocate from. Dependences are positional in the emitted
// stream, so the register ids never leave this package.
const NumRegs = 64

// Builder incrementally constructs a trace.Stream, tracking the last writer
// of every virtual register so that uops carry backwards dependence
// distances, and interning static PCs into dense static-instruction ids.
type Builder struct {
	name      string
	uops      []trace.Uop
	lastWrite [NumRegs]int // 1-based index of last writer; 0 = never written
	statics   map[uint64]uint32
	rng       *rand.Rand
	pcBase    uint64
	addrBase  uint64
	regCursor int
}

// NewBuilder returns a Builder for a workload called name, seeded
// deterministically.
func NewBuilder(name string, seed int64, capacity int) *Builder {
	return &Builder{
		name:    name,
		uops:    make([]trace.Uop, 0, capacity),
		statics: make(map[uint64]uint32),
		rng:     rand.New(rand.NewSource(seed)),
		pcBase:  0x400000,
	}
}

// Rand exposes the builder's deterministic random source to kernels.
func (b *Builder) Rand() *rand.Rand { return b.rng }

// Len returns the number of uops emitted so far.
func (b *Builder) Len() int { return len(b.uops) }

// AllocPC reserves a block of static instruction addresses for a kernel
// instance, keeping static ids of distinct kernels disjoint.
func (b *Builder) AllocPC(slots int) uint64 {
	base := b.pcBase
	b.pcBase += uint64(slots+16) * 4
	return base
}

// AllocAddr reserves a disjoint region of the synthetic address space for a
// kernel's data structures and returns its cache-line aligned base address.
func (b *Builder) AllocAddr(size uint64) uint64 {
	if b.addrBase == 0 {
		b.addrBase = 0x10000000
	}
	base := b.addrBase
	b.addrBase += (size + 4095) &^ 4095
	return base
}

// AllocRegs hands out n virtual registers to a kernel instance. Distinct
// kernels receive distinct registers while the total stays below NumRegs;
// once exhausted, allocation wraps (a spurious cross-kernel dependence is
// harmless because phases execute sequentially).
func (b *Builder) AllocRegs(n int) []int {
	regs := make([]int, n)
	for i := range regs {
		regs[i] = b.regCursor % NumRegs
		b.regCursor++
	}
	return regs
}

// Stream finalizes the builder into an immutable trace.Stream.
func (b *Builder) Stream() *trace.Stream {
	return &trace.Stream{Name: b.name, Uops: b.uops, Statics: len(b.statics)}
}

func (b *Builder) staticID(pc uint64) uint32 {
	if id, ok := b.statics[pc]; ok {
		return id
	}
	id := uint32(len(b.statics))
	b.statics[pc] = id
	return id
}

// dist converts a source register into a backwards dependence distance for
// the uop about to be appended at index len(b.uops).
func (b *Builder) dist(reg int) uint32 {
	if reg < 0 {
		return 0
	}
	w := b.lastWrite[reg]
	if w == 0 {
		return 0
	}
	d := len(b.uops) + 1 - w
	if d <= 0 {
		return 0
	}
	return uint32(d)
}

func (b *Builder) append(u trace.Uop, dst int) {
	b.uops = append(b.uops, u)
	if dst >= 0 {
		b.lastWrite[dst] = len(b.uops)
	}
}

// Op emits a register-to-register uop starting a new macro-instruction.
// dst, src1 and src2 are virtual register ids; pass -1 for unused operands.
func (b *Builder) Op(class trace.Class, pc uint64, dst, src1, src2 int) {
	u := trace.Uop{
		PC:       pc,
		Static:   b.staticID(pc),
		Class:    class,
		First:    true,
		SrcDist1: b.dist(src1),
		SrcDist2: b.dist(src2),
	}
	b.append(u, dst)
}

// FusedOp emits a uop that belongs to the same macro-instruction as the
// immediately preceding uop — the CISC micro-op expansion of §3.2. The uops
// per instruction ratio of a stream is controlled by the fraction of FusedOp
// emissions.
func (b *Builder) FusedOp(class trace.Class, pc uint64, dst, src1, src2 int) {
	u := trace.Uop{
		PC:       pc,
		Static:   b.staticID(pc),
		Class:    class,
		First:    false,
		SrcDist1: b.dist(src1),
		SrcDist2: b.dist(src2),
	}
	b.append(u, dst)
}

// Load emits a load macro-instruction reading addr into dst. addrSrc is the
// register holding the address (-1 for addressing off a constant base), which
// creates the load-to-load dependences pointer-chasing kernels rely on.
func (b *Builder) Load(pc uint64, dst, addrSrc int, addr uint64) {
	u := trace.Uop{
		PC:       pc,
		Static:   b.staticID(pc),
		Class:    trace.Load,
		First:    true,
		SrcDist1: b.dist(addrSrc),
		Addr:     addr,
	}
	b.append(u, dst)
}

// FusedLoad emits a load uop inside the current macro-instruction (the
// load half of an x86 reg-mem instruction).
func (b *Builder) FusedLoad(pc uint64, dst, addrSrc int, addr uint64) {
	u := trace.Uop{
		PC:       pc,
		Static:   b.staticID(pc),
		Class:    trace.Load,
		First:    false,
		SrcDist1: b.dist(addrSrc),
		Addr:     addr,
	}
	b.append(u, dst)
}

// Store emits a store macro-instruction writing the value produced by
// dataSrc to addr.
func (b *Builder) Store(pc uint64, addrSrc, dataSrc int, addr uint64) {
	u := trace.Uop{
		PC:       pc,
		Static:   b.staticID(pc),
		Class:    trace.Store,
		First:    true,
		SrcDist1: b.dist(addrSrc),
		SrcDist2: b.dist(dataSrc),
		Addr:     addr,
	}
	b.append(u, -1)
}

// Branch emits a conditional branch macro-instruction whose outcome is taken.
// src is the register the branch condition depends on; its dependence
// distance determines the branch-resolution time the model captures with the
// average branch path.
func (b *Builder) Branch(pc uint64, src int, taken bool) {
	u := trace.Uop{
		PC:       pc,
		Static:   b.staticID(pc),
		Class:    trace.Branch,
		First:    true,
		SrcDist1: b.dist(src),
		Taken:    taken,
	}
	b.append(u, -1)
}

// branchGen produces branch outcomes with a controllable linear branch
// entropy. The base outcome follows a deterministic periodic pattern (which
// a history-based predictor learns perfectly); each outcome is flipped with
// probability eps. Under a long history the per-(branch,history) taken
// probability is eps or 1-eps, so the linear branch entropy (Eq 3.14)
// approaches 2·eps and any history-based predictor's asymptotic miss rate
// approaches eps — the linear relation Figure 3.9 measures.
type branchGen struct {
	period int
	taken  int // number of taken slots per period
	eps    float64
	iter   int
}

func newBranchGen(period, taken int, eps float64) *branchGen {
	if period < 1 {
		period = 1
	}
	if taken > period {
		taken = period
	}
	return &branchGen{period: period, taken: taken, eps: eps}
}

// next returns the next outcome using r for the noise flips.
func (g *branchGen) next(r *rand.Rand) bool {
	base := g.iter%g.period < g.taken
	g.iter++
	if g.eps > 0 && r.Float64() < g.eps {
		return !base
	}
	return base
}
