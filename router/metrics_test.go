package router_test

// Distributed observability tests: /metrics on the router and on a
// replica expose the tier's key series after traffic, and one traced
// request's span log lines assemble into a client → router → replica →
// engine tree.

import (
	"context"
	"fmt"
	"log"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mipp/api"
	"mipp/client"
	"mipp/obs"
)

// seriesValue returns the sample value of the first series line whose
// name{labels} prefix matches, or -1 when absent.
func seriesValue(exposition, prefix string) float64 {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			rest = strings.TrimSpace(rest)
			if i := strings.IndexByte(rest, ' '); i >= 0 {
				rest = rest[i+1:]
			}
			if v, err := strconv.ParseFloat(rest, 64); err == nil {
				return v
			}
		}
	}
	return -1
}

func TestClusterMetrics(t *testing.T) {
	c := newCluster(t)
	predict := `{"schema_version":1,"workload":"mcf","config":{"name":"reference"}}`
	if status, body := post(t, c.routerTS.URL, "/v1/predict", predict); status != 200 {
		t.Fatalf("predict via router: %d: %s", status, body)
	}
	if status, _ := post(t, c.routerTS.URL, "/v1/evaluate",
		`{"schema_version":1,"workloads":["mcf","gcc"],"configs":[{"name":"reference"}],"options":{}}`); status != 200 {
		t.Fatalf("evaluate via router: %d", status)
	}

	status, routerMetrics := get(t, c.routerTS.URL, "/metrics")
	if status != 200 {
		t.Fatalf("router /metrics: %d", status)
	}
	// Exactly one replica answered the predict; the evaluate fan-out hit
	// one per workload. Sum across members instead of pinning placement.
	var forwards float64
	for _, ts := range c.replicas {
		member := fmt.Sprintf(`mipp_router_forwards_total{member=%q}`, ts.URL)
		if v := seriesValue(routerMetrics, member); v >= 0 {
			forwards += v
		} else {
			t.Errorf("router /metrics missing %s", member)
		}
		healthy := fmt.Sprintf(`mipp_router_member_healthy{member=%q}`, ts.URL)
		if v := seriesValue(routerMetrics, healthy); v != 1 {
			t.Errorf("%s = %v, want 1", healthy, v)
		}
	}
	if forwards < 3 {
		t.Errorf("sum of mipp_router_forwards_total = %v, want >= 3 (predict + 2-workload evaluate)", forwards)
	}
	if v := seriesValue(routerMetrics, "mipp_router_ring_spread"); v < 1 || v > 2 {
		t.Errorf("mipp_router_ring_spread = %v, want within [1, 2] for 3×%d vnodes", v, 128)
	}
	if v := seriesValue(routerMetrics, "mipp_router_fanout_seconds_count"); v < 1 {
		t.Errorf("mipp_router_fanout_seconds_count = %v, want >= 1 after an evaluate fan-out", v)
	}
	if v := seriesValue(routerMetrics, `mipp_http_requests_total{code="2xx",route="POST /v1/predict"}`); v != 1 {
		t.Errorf(`router requests_total{2xx, predict} = %v, want 1`, v)
	}

	// The replica that served the predict exposes the serving-tier series,
	// including the store read-backs (these engines are store-backed).
	served := false
	for _, ts := range c.replicas {
		status, m := get(t, ts.URL, "/metrics")
		if status != 200 {
			t.Fatalf("replica /metrics: %d", status)
		}
		for _, series := range []string{
			"mipp_store_objects",
			`mipp_store_revalidations_total{result="full"}`,
			`mipp_store_revalidations_total{result="not_modified"}`,
			"mipp_kernel_batches_total",
			"mipp_engine_predictor_cache_misses_total",
		} {
			if seriesValue(m, series) < 0 {
				t.Errorf("replica /metrics missing %s", series)
			}
		}
		if seriesValue(m, `mipp_http_requests_total{code="2xx",route="POST /v1/predict"}`) >= 1 {
			served = true
		}
	}
	if !served {
		t.Error("no replica's /metrics shows the forwarded predict")
	}
}

// spanLine matches the obs span log format:
// span <id> parent=<id|-> trace=<rid> name=<stage> dur=<d>
var spanLine = regexp.MustCompile(`span (\S+) parent=(\S+) trace=(\S+) name=(.+) dur=\S+`)

type spanRec struct{ id, parent, trace, name string }

func parseSpans(logText, trace string) []spanRec {
	var out []spanRec
	for _, m := range spanLine.FindAllStringSubmatch(logText, -1) {
		if m[3] == trace {
			out = append(out, spanRec{id: m[1], parent: m[2], trace: m[3], name: m[4]})
		}
	}
	return out
}

func findSpan(spans []spanRec, name string) (spanRec, bool) {
	for _, s := range spans {
		if s.name == name {
			return s, true
		}
	}
	return spanRec{}, false
}

// TestTracePropagation drives one prediction through client → router →
// replica with tracing on at every hop and asserts the three processes'
// span lines link into a single tree under one trace ID.
func TestTracePropagation(t *testing.T) {
	c := newCluster(t)
	clientLog := &lockedBuf{}
	rid := "trace-test-rid"
	ctx := api.ContextWithRequestID(context.Background(), rid)
	ctx, clientSpan := obs.StartSpan(ctx, log.New(clientLog, "", 0), rid, "client.predict")

	cl := client.New(c.routerTS.URL)
	if _, err := cl.Predict(ctx, &api.PredictRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Config:        api.ConfigSpec{Name: "reference"},
	}); err != nil {
		t.Fatal(err)
	}
	clientSpan.Finish()

	routerSpans := parseSpans(c.routerLog.String(), rid)
	routerSpan, ok := findSpan(routerSpans, "http POST /v1/predict")
	if !ok {
		t.Fatalf("router log has no http span for trace %s:\n%s", rid, c.routerLog.String())
	}
	if routerSpan.parent != clientSpan.ID {
		t.Errorf("router span parent = %s, want the client span %s", routerSpan.parent, clientSpan.ID)
	}

	var replicaSpans []spanRec
	for _, buf := range c.replogs {
		if spans := parseSpans(buf.String(), rid); len(spans) > 0 {
			replicaSpans = spans
			break
		}
	}
	replicaSpan, ok := findSpan(replicaSpans, "http POST /v1/predict")
	if !ok {
		t.Fatalf("no replica logged an http span for trace %s", rid)
	}
	if replicaSpan.parent != routerSpan.id {
		t.Errorf("replica span parent = %s, want the router span %s", replicaSpan.parent, routerSpan.id)
	}

	// The engine's spans hang off the replica's request span: compile under
	// the request, store.load under compile (a cold predict resolves the
	// profile inside the predictor compile).
	compileSpan, ok := findSpan(replicaSpans, "engine.compile")
	if !ok {
		t.Fatalf("replica log has no engine.compile span; spans: %v", replicaSpans)
	}
	if compileSpan.parent != replicaSpan.id {
		t.Errorf("engine.compile parent = %s, want the replica http span %s", compileSpan.parent, replicaSpan.id)
	}
	loadSpan, ok := findSpan(replicaSpans, "store.load")
	if !ok {
		t.Fatalf("replica log has no store.load span; spans: %v", replicaSpans)
	}
	if loadSpan.parent != compileSpan.id {
		t.Errorf("store.load parent = %s, want the compile span %s", loadSpan.parent, compileSpan.id)
	}
	for _, s := range append(routerSpans, replicaSpans...) {
		if s.trace != rid {
			t.Errorf("span %s carries trace %s, want %s", s.id, s.trace, rid)
		}
	}
}
