package memory

import "testing"

func TestSingleAccessLatency(t *testing.T) {
	d := New(Config{LatencyCycles: 200, BusCyclesPerLine: 8, Channels: 1})
	if ready := d.Access(100); ready != 100+200+8 {
		t.Errorf("ready = %d, want 308", ready)
	}
	if d.Accesses != 1 {
		t.Errorf("accesses = %d", d.Accesses)
	}
}

func TestBusQueuingSerializes(t *testing.T) {
	d := New(Config{LatencyCycles: 200, BusCyclesPerLine: 8, Channels: 1})
	r1 := d.Access(0)
	r2 := d.Access(0)
	r3 := d.Access(0)
	if r2 != r1+8 || r3 != r2+8 {
		t.Errorf("bus should add 8 cycles per queued line: %d %d %d", r1, r2, r3)
	}
	if d.TotalWait != 8+16 {
		t.Errorf("total wait = %d, want 24", d.TotalWait)
	}
}

func TestMultipleChannels(t *testing.T) {
	d := New(Config{LatencyCycles: 200, BusCyclesPerLine: 8, Channels: 2})
	r1 := d.Access(0)
	r2 := d.Access(0)
	if r1 != r2 {
		t.Errorf("two channels should serve two accesses in parallel: %d vs %d", r1, r2)
	}
	r3 := d.Access(0)
	if r3 != r1+8 {
		t.Errorf("third access queues: %d, want %d", r3, r1+8)
	}
}

func TestReset(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0)
	d.Reset()
	if d.Accesses != 0 || d.TotalWait != 0 {
		t.Error("reset did not clear counters")
	}
}
