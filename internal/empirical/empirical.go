// Package empirical implements the black-box empirical model the thesis
// compares the mechanistic model against (§7.5): ridge-regularized linear
// regression over micro-architectural design parameters (with quadratic
// terms), trained on simulation results for a sampled subset of the design
// space, then used to predict performance and power for the rest.
//
// The section's finding — empirical models interpolate averages well but
// miss the trends that decide Pareto membership — is reproduced by feeding
// both models into the dse metrics.
package empirical

import (
	"fmt"
	"math"

	"mipp/internal/config"
)

// Features extracts the design parameters of a configuration as a feature
// vector (the knobs of Table 6.3), log-scaled where sizes span decades.
func Features(c *config.Config) []float64 {
	return []float64{
		float64(c.DispatchWidth),
		math.Log2(float64(c.ROB)),
		math.Log2(float64(c.L2.SizeBytes) / 1024),
		math.Log2(float64(c.L3.SizeBytes) / (1 << 20)),
		c.FrequencyGHz,
	}
}

// expand adds quadratic and pairwise interaction terms plus a bias.
func expand(x []float64) []float64 {
	out := make([]float64, 0, 1+len(x)+len(x)*(len(x)+1)/2)
	out = append(out, 1)
	out = append(out, x...)
	for i := range x {
		for j := i; j < len(x); j++ {
			out = append(out, x[i]*x[j])
		}
	}
	return out
}

// Model is a trained ridge regression.
type Model struct {
	weights []float64
	// means/scales standardize features before fitting.
	means, scales []float64
}

// Train fits y ≈ f(features) with ridge regularization strength lambda.
// Rows of xs are raw feature vectors (use Features).
func Train(xs [][]float64, ys []float64, lambda float64) (*Model, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("empirical: need matching non-empty training data, got %d/%d", len(xs), len(ys))
	}
	ex := make([][]float64, len(xs))
	for i, x := range xs {
		ex[i] = expand(x)
	}
	d := len(ex[0])
	// Standardize columns (except bias).
	means := make([]float64, d)
	scales := make([]float64, d)
	for j := 1; j < d; j++ {
		for i := range ex {
			means[j] += ex[i][j]
		}
		means[j] /= float64(len(ex))
		for i := range ex {
			dv := ex[i][j] - means[j]
			scales[j] += dv * dv
		}
		scales[j] = math.Sqrt(scales[j] / float64(len(ex)))
		if scales[j] == 0 {
			scales[j] = 1
		}
		for i := range ex {
			ex[i][j] = (ex[i][j] - means[j]) / scales[j]
		}
	}
	// Normal equations with ridge: (XᵀX + λI) w = Xᵀy.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	b := make([]float64, d)
	for i := range ex {
		for r := 0; r < d; r++ {
			b[r] += ex[i][r] * ys[i]
			for c := r; c < d; c++ {
				a[r][c] += ex[i][r] * ex[i][c]
			}
		}
	}
	for r := 0; r < d; r++ {
		for c := 0; c < r; c++ {
			a[r][c] = a[c][r]
		}
		if r > 0 {
			a[r][r] += lambda
		}
	}
	w, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	return &Model{weights: w, means: means, scales: scales}, nil
}

// Predict evaluates the model on a raw feature vector.
func (m *Model) Predict(x []float64) float64 {
	ex := expand(x)
	y := 0.0
	for j, w := range m.weights {
		v := ex[j]
		if j > 0 {
			v = (v - m.means[j]) / m.scales[j]
		}
		y += w * v
	}
	return y
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Augment.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("empirical: singular system at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		x[r] = m[r][n]
		for c := r + 1; c < n; c++ {
			x[r] -= m[r][c] * x[c]
		}
		x[r] /= m[r][r]
	}
	return x, nil
}
