module mipp

go 1.24
