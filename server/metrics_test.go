package server

// /metrics endpoint tests: key series exist with the right labels after
// traffic, counters are monotone across scrapes, error responses land in
// their sentinel class, and instrumentation leaves response bytes alone.

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// metricValue extracts the sample value of the series line starting with
// prefix (exact name{labels} match followed by a space), or -1.
func metricValue(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q: %v", prefix, rest, err)
			}
			return v
		}
	}
	return -1
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New(testEngine(t))
	do := func(method, path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}
	predict := `{"schema_version":1,"workload":"mcf","config":{"name":"reference"}}`

	// Traffic: two good predictions (byte-identical — instrumentation must
	// not perturb the response), one sweep (moves the batched-kernel
	// counters; single predicts use the scalar kernel), one unknown
	// workload, one healthz.
	first := do("POST", "/v1/predict", predict)
	second := do("POST", "/v1/predict", predict)
	if first.Code != http.StatusOK {
		t.Fatalf("predict: %d: %s", first.Code, first.Body.String())
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("identical predicts returned different bytes through the instrumented stack")
	}
	if rec := do("POST", "/v1/sweep", `{"schema_version":1,"workload":"mcf","space":{"kind":"design","stride":9}}`); rec.Code != http.StatusOK {
		t.Fatalf("sweep: %d: %s", rec.Code, rec.Body.String())
	}
	if rec := do("POST", "/v1/predict", `{"schema_version":1,"workload":"nope","config":{"name":"reference"}}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown workload: got %d", rec.Code)
	}
	if rec := do("GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz: got %d", rec.Code)
	}

	rec := do("GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: got %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body := rec.Body.String()

	// Key series, with exact label sets (labels render sorted by key).
	for series, want := range map[string]float64{
		`mipp_http_requests_total{code="2xx",route="POST /v1/predict"}`: 2,
		`mipp_http_requests_total{code="4xx",route="POST /v1/predict"}`: 1,
		`mipp_http_requests_total{code="5xx",route="POST /v1/predict"}`: 0, // pre-registered at boot
		`mipp_http_request_seconds_count{route="POST /v1/predict"}`:     3,
		`mipp_http_inflight{route="POST /v1/predict"}`:                  0,
		`mipp_http_errors_total{sentinel="unknown_workload"}`:           1,
		`mipp_http_errors_total{sentinel="busy"}`:                       0,
		`mipp_search_jobs_inflight`:                                     0,
	} {
		if got := metricValue(t, body, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	// Present with traffic-dependent values (the engine is shared across
	// the package's tests, so only existence and positivity are stable).
	for _, series := range []string{
		"mipp_engine_predictor_cache_misses_total",
		"mipp_engine_compile_seconds_count",
		"mipp_engine_store_load_seconds_count",
		"mipp_kernel_batches_total",
		"mipp_kernel_configs_total",
		"mipp_engine_profiles",
	} {
		if got := metricValue(t, body, series); got < 0 {
			t.Errorf("series %s missing from /metrics", series)
		}
	}
	if got := metricValue(t, body, "mipp_kernel_configs_total"); got < 1 {
		t.Errorf("mipp_kernel_configs_total = %v after a sweep, want >= 1", got)
	}

	// Monotone across scrapes: more traffic strictly advances the counter,
	// and scraping itself must not move any series it reads.
	before := metricValue(t, body, `mipp_http_requests_total{code="2xx",route="POST /v1/predict"}`)
	if rescrape := do("GET", "/metrics", "").Body.String(); metricValue(t, rescrape, `mipp_http_requests_total{code="2xx",route="POST /v1/predict"}`) != before {
		t.Error("scraping /metrics moved mipp_http_requests_total")
	}
	do("POST", "/v1/predict", predict)
	after := metricValue(t, do("GET", "/metrics", "").Body.String(),
		`mipp_http_requests_total{code="2xx",route="POST /v1/predict"}`)
	if after != before+1 {
		t.Errorf("requests_total went %v -> %v across one more predict, want +1", before, after)
	}
}
