package mipp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"

	"mipp/api"
	"mipp/internal/dse"
	"mipp/internal/power"
	"mipp/obs"
)

// Engine is the in-process Evaluator: a concurrency-safe registry of named
// workload profiles that lazily compiles and caches one Predictor per
// (workload, option set) and fans batched evaluation requests out over the
// same worker pool Sweep uses.
//
// Profiling is the expensive step; an Engine amortizes it across millions
// of queries. Register each workload once (directly, or through
// RegisterProfile requests), then issue Predict/Sweep/Evaluate/Pareto
// requests from any number of goroutines. Re-registering a name replaces
// its profile and invalidates every predictor cached for it.
type Engine struct {
	workers int

	// store, when set, is the durable backing registry: Register writes
	// through, and lookups of names absent from the in-memory map
	// lazy-load from it — so a store-backed engine serves its whole
	// on-disk catalog after a restart without re-profiling. The store
	// owns profile residency (LRU-bounded); the profiles map holds only
	// storeless registrations.
	store ProfileStore

	mu         sync.RWMutex
	profiles   map[string]*Profile
	predictors map[predictorKey]*predictorEntry

	// hits and misses are obs instruments (read back by Stats for /healthz
	// and registered on /metrics by MetricsInto) rather than raw atomics,
	// so the two surfaces share one source of truth.
	hits   obs.Counter
	misses obs.Counter

	// logger, when set, receives search-job lifecycle lines and trace-span
	// lines (obs.StartSpan is logger-gated); nil keeps library use silent.
	logger *log.Logger

	// metrics holds the engine-owned latency histograms and search gauges
	// (metrics.go); always non-nil for engines built with NewEngine.
	metrics *engineMetrics

	// search holds the asynchronous design-space search jobs (jobs.go).
	search searchJobs

	// fidOpts is set by WithFidelitySampling; fid is the running sampler
	// (fidelity_engine.go), nil when the observatory is disabled.
	fidOpts *FidelityOptions
	fid     *fidelitySampler
}

type predictorKey struct {
	workload string
	options  string // api.PredictorSpec.Key()
}

// predictorEntry compiles lazily: the registry holds the entry under a
// short-lived lock while the (possibly slow) compile runs inside the
// entry's own once, so concurrent requests for the same key share one
// compile and requests for other keys never wait on it. Every path —
// creator and cache hits alike — runs once.Do(compile): whichever caller
// arrives first does the work, the rest block until it is done.
type predictorEntry struct {
	once    sync.Once
	compile func()
	pd      *Predictor
	err     error
}

// EngineOption customizes an Engine.
type EngineOption func(*Engine)

// WithEngineWorkers sets the default worker-pool size for batched requests
// that do not specify their own (default GOMAXPROCS).
func WithEngineWorkers(n int) EngineOption {
	return func(e *Engine) { e.workers = n }
}

// WithEngineStore backs the engine with a durable profile store (see
// mipp/store): Register and RegisterProfile write through to it, and
// Predict/Sweep/Evaluate/search resolve workload names the engine does not
// hold in memory by lazy-loading from the store — a miss in both still
// yields ErrUnknownWorkload.
func WithEngineStore(st ProfileStore) EngineOption {
	return func(e *Engine) { e.store = st }
}

// WithEngineLogger sets the logger for search-job lifecycle lines and trace
// spans: with one, every request carrying an X-Request-Id decomposes in the
// logs into store-load, compile, and per-generation evaluate spans. The
// default (nil) disables both.
func WithEngineLogger(l *log.Logger) EngineOption {
	return func(e *Engine) { e.logger = l }
}

// NewEngine returns an empty engine ready for Register.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{
		workers:    runtime.GOMAXPROCS(0),
		profiles:   make(map[string]*Profile),
		predictors: make(map[predictorKey]*predictorEntry),
		metrics:    newEngineMetrics(),
	}
	for _, o := range opts {
		o(e)
	}
	if e.fidOpts != nil {
		// The sampler needs the finished engine (profile resolution, the
		// predictor cache), so it starts after every option has applied.
		e.fid = newFidelitySampler(e, *e.fidOpts)
	}
	return e
}

// ProfileStore returns the engine's backing store (nil when the engine
// runs without one). It is the seam the server's /v1/store endpoints
// publish: when the store also implements ObjectStore, peers can replicate
// this engine's catalog.
func (e *Engine) ProfileStore() ProfileStore { return e.store }

// Register installs profile p under name (empty name defaults to the
// profile's workload name). Re-registering a name replaces the profile and
// drops every predictor cached for it.
func (e *Engine) Register(name string, p *Profile) error {
	if p == nil || p.raw == nil {
		return fmt.Errorf("%w: Register(%q): nil or empty profile", ErrBadRequest, name)
	}
	if name == "" {
		name = p.Workload()
	}
	if name == "" {
		return fmt.Errorf("%w: Register: profile has no workload name and none was given", ErrBadRequest)
	}
	if e.store != nil {
		// Write-through: the store owns residency (and may evict the
		// body later; lookups reload it transparently), so the profile
		// is not duplicated into the in-memory map.
		if _, err := e.store.Put(name, p); err != nil {
			return fmt.Errorf("mipp: Register(%q): %w", name, err)
		}
		e.mu.Lock()
		delete(e.profiles, name)
		e.invalidateLocked(name)
		e.mu.Unlock()
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.profiles[name] = p
	e.invalidateLocked(name)
	return nil
}

// Remove drops a registered profile — from memory and from the backing
// store, when one is configured — and its cached predictors, reporting
// whether the name was registered. A store deletion failure is reported as
// false; callers that need the distinction (the profile may then survive
// in the store and reappear on the next lookup) should use DeleteProfile,
// which surfaces the error.
func (e *Engine) Remove(name string) bool {
	ok, err := e.remove(name)
	return ok && err == nil
}

// remove is the shared removal path of Remove and DeleteProfile.
func (e *Engine) remove(name string) (bool, error) {
	e.mu.Lock()
	_, ok := e.profiles[name]
	delete(e.profiles, name)
	e.invalidateLocked(name)
	e.mu.Unlock()
	if e.store != nil {
		deleted, err := e.store.Delete(name)
		if err != nil {
			return ok, fmt.Errorf("mipp: remove %q: %w", name, err)
		}
		ok = ok || deleted
		// Invalidate again: a Predict racing this removal may have
		// resolved the profile from the store after the first
		// invalidation but before the store delete, caching a fresh
		// predictor for the now-deleted workload.
		e.mu.Lock()
		e.invalidateLocked(name)
		e.mu.Unlock()
	}
	return ok, nil
}

// profileExists checks that name resolves without loading a store-backed
// body (admission checks must not pay a disk read, and a corrupt stored
// object is an existing workload whose load fails — not an unknown name).
func (e *Engine) profileExists(name string) error {
	e.mu.RLock()
	_, ok := e.profiles[name]
	e.mu.RUnlock()
	if ok {
		return nil
	}
	if e.store != nil {
		if _, ok := e.store.Info(name); ok {
			return nil
		}
	}
	return fmt.Errorf("%w: %q (registered: %v)", ErrUnknownWorkload, name, e.WorkloadNames())
}

// resolveProfile returns the profile registered under name, lazy-loading it
// from the backing store when it is not held in memory.
func (e *Engine) resolveProfile(name string) (*Profile, error) {
	return e.resolveProfileCtx(context.Background(), name)
}

// resolveProfileCtx is resolveProfile with request context: a resolution
// that goes to the backing store is timed into the store-load histogram and
// wrapped in a "store.load" span parented on ctx's current span, so a slow
// request's store time is visible in the logs.
func (e *Engine) resolveProfileCtx(ctx context.Context, name string) (*Profile, error) {
	e.mu.RLock()
	p := e.profiles[name]
	e.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	if e.store != nil {
		_, span := obs.StartSpan(ctx, e.logger, api.RequestIDFromContext(ctx), "store.load")
		t := obs.StartTimer()
		sp, ok, err := e.store.Get(name)
		t.ObserveInto(e.metrics.storeLoadSeconds)
		span.Finish()
		if err != nil {
			return nil, fmt.Errorf("mipp: workload %q: %w", name, err)
		}
		if ok {
			return sp, nil
		}
	}
	return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownWorkload, name, e.WorkloadNames())
}

func (e *Engine) invalidateLocked(name string) {
	for k := range e.predictors {
		if k.workload == name {
			delete(e.predictors, k)
		}
	}
}

// Profile returns the profile registered under name, loading it from the
// backing store when necessary.
func (e *Engine) Profile(name string) (*Profile, bool) {
	p, err := e.resolveProfile(name)
	return p, err == nil
}

// WorkloadNames returns the registered profile names — in-memory and
// store-backed — sorted.
func (e *Engine) WorkloadNames() []string {
	e.mu.RLock()
	names := make([]string, 0, len(e.profiles))
	for n := range e.profiles {
		names = append(names, n)
	}
	e.mu.RUnlock()
	if e.store != nil {
		seen := make(map[string]bool, len(names))
		for _, n := range names {
			seen[n] = true
		}
		for _, n := range e.store.Names() {
			if !seen[n] {
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// EngineStats snapshots the registry and predictor cache.
type EngineStats struct {
	// Profiles is the number of registered workload profiles.
	Profiles int
	// CachedPredictors is the number of compiled (workload, option set)
	// predictors currently cached.
	CachedPredictors int
	// CacheHits and CacheMisses count predictor-cache lookups since the
	// engine was created; invalidated entries count as new misses when
	// recompiled.
	CacheHits, CacheMisses uint64
	// SearchJobsInFlight and SearchJobsCompleted count asynchronous
	// search jobs currently running and finished (done, failed or
	// cancelled) since the engine was created.
	SearchJobsInFlight  int
	SearchJobsCompleted uint64
	// Store snapshots the backing profile store's counters; nil when the
	// engine has no store.
	Store *StoreStats
}

// Stats returns current registry and cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.RLock()
	st := EngineStats{
		Profiles:            len(e.profiles),
		CachedPredictors:    len(e.predictors),
		CacheHits:           e.hits.Value(),
		CacheMisses:         e.misses.Value(),
		SearchJobsInFlight:  int(e.search.inFlight.Value()),
		SearchJobsCompleted: e.search.completed.Value(),
	}
	e.mu.RUnlock()
	if e.store != nil {
		ss := e.store.Stats()
		st.Store = &ss
		st.Profiles += ss.Objects
	}
	return st
}

// predictorOptions lowers a wire spec to the façade's functional options.
// Unknown names were rejected by spec.Validate; this switch only needs the
// accepted vocabulary.
func predictorOptions(spec api.PredictorSpec) ([]PredictorOption, error) {
	var opts []PredictorOption
	switch spec.MLPMode {
	case "", "stride":
		// Default.
	case "cold-miss":
		opts = append(opts, WithMLPMode(MLPColdMiss))
	case "none":
		opts = append(opts, WithMLPMode(MLPNone))
	default:
		return nil, fmt.Errorf("%w: unknown mlp_mode %q", ErrBadRequest, spec.MLPMode)
	}
	switch spec.DispatchModel {
	case "", "full":
	case "instructions":
		opts = append(opts, WithDispatchModel(DispatchInstructions))
	case "uops":
		opts = append(opts, WithDispatchModel(DispatchUops))
	case "critical":
		opts = append(opts, WithDispatchModel(DispatchCritical))
	default:
		return nil, fmt.Errorf("%w: unknown dispatch_model %q", ErrBadRequest, spec.DispatchModel)
	}
	if spec.Combined {
		opts = append(opts, WithCombinedEvaluation())
	}
	if spec.BranchMissRate != nil {
		opts = append(opts, WithBranchMissRate(*spec.BranchMissRate))
	}
	if spec.NoLLCChain {
		opts = append(opts, WithoutLLCChain())
	}
	if spec.NoBusQueue {
		opts = append(opts, WithoutBusQueue())
	}
	if spec.Prefetcher != nil {
		opts = append(opts, WithPrefetcher(*spec.Prefetcher))
	}
	return opts, nil
}

// Predictor returns the cached predictor for (workload, spec), compiling it
// on first use. Concurrent callers with the same key share one compile. The
// profile is resolved inside the compile — after the entry is published but
// outside every engine lock — so a store-backed engine's disk loads never
// stall unrelated requests, and a Register racing the compile still
// invalidates the entry it observes.
func (e *Engine) Predictor(workload string, spec api.PredictorSpec) (*Predictor, error) {
	return e.predictor(context.Background(), workload, spec)
}

// predictor is Predictor with request context: a compile triggered by this
// lookup is timed into the compile histogram and wrapped in an
// "engine.compile" span parented on ctx's current span (the creating
// caller's — concurrent callers sharing the compile attach their wait to
// whichever request first published the entry).
func (e *Engine) predictor(ctx context.Context, workload string, spec api.PredictorSpec) (*Predictor, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	key := predictorKey{workload: workload, options: spec.Key()}

	e.mu.RLock()
	entry, ok := e.predictors[key]
	e.mu.RUnlock()
	if !ok {
		e.mu.Lock()
		// Re-check under the write lock: another goroutine may have
		// inserted the entry.
		if entry, ok = e.predictors[key]; !ok {
			entry = &predictorEntry{}
			entry.compile = func() {
				cctx, span := obs.StartSpan(ctx, e.logger, api.RequestIDFromContext(ctx), "engine.compile")
				t := obs.StartTimer()
				defer func() {
					t.ObserveInto(e.metrics.compileSeconds)
					span.Finish()
				}()
				profile, err := e.resolveProfileCtx(cctx, workload)
				if err != nil {
					entry.err = err
					return
				}
				opts, err := predictorOptions(spec)
				if err != nil {
					entry.err = err
					return
				}
				entry.pd, entry.err = NewPredictor(profile, opts...)
			}
			e.predictors[key] = entry
		}
		e.mu.Unlock()
	}
	if ok {
		e.hits.Inc()
	} else {
		e.misses.Inc()
	}
	entry.once.Do(entry.compile)
	if entry.err != nil {
		// Do not cache failures: unregistered names must not grow the
		// predictor map (and a later Register must compile fresh even if
		// its invalidation raced this insert), and a transient store
		// load error must not poison this (workload, spec) key forever.
		e.mu.Lock()
		if e.predictors[key] == entry {
			delete(e.predictors, key)
		}
		e.mu.Unlock()
	}
	return entry.pd, entry.err
}

// apiResult lowers a native prediction to the wire DTO, computing every
// derived metric so clients stay model-free.
func apiResult(r *Result, withMicroCPI bool) *api.Result {
	ar := &api.Result{
		Workload:     r.Workload,
		Config:       r.Config,
		FrequencyGHz: r.FrequencyGHz,
		Cycles:       r.Cycles,
		Uops:         r.Uops,
		Instructions: r.Instructions,
		CPI:          r.CPI(),
		TimeSeconds:  r.TimeSeconds(),
		CPIStack: api.CPIStack{
			Base:   r.Stack.Cycles[CPIBase],
			Branch: r.Stack.Cycles[CPIBranch],
			ICache: r.Stack.Cycles[CPIICache],
			LLCHit: r.Stack.Cycles[CPILLCHit],
			DRAM:   r.Stack.Cycles[CPIDRAM],
		},
		Power: api.PowerStack{
			Static: r.Power.Watts[power.Static],
			Core:   r.Power.Watts[power.CoreDyn],
			FU:     r.Power.Watts[power.FUDyn],
			Cache:  r.Power.Watts[power.CacheDyn],
			DRAM:   r.Power.Watts[power.DRAMDyn],
			BPred:  r.Power.Watts[power.BPredDyn],
		},
		Watts:          r.Watts(),
		EnergyJoules:   r.EnergyJoules(),
		EDP:            r.EDP(),
		ED2P:           r.ED2P(),
		Deff:           r.Deff,
		MLP:            r.MLP,
		BranchMissRate: r.BranchMissRate,
	}
	if withMicroCPI {
		ar.MicroCPI = append([]float64(nil), r.MicroCPI...)
	}
	return ar
}

// RegisterProfile implements Evaluator: install an inline profile envelope,
// or synthesize and profile a built-in workload.
func (e *Engine) RegisterProfile(ctx context.Context, req *api.RegisterProfileRequest) (*api.RegisterProfileResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var p *Profile
	if len(req.Profile) > 0 {
		p = &Profile{}
		if err := json.Unmarshal(req.Profile, p); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	} else {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		p, err = NewProfiler(WithSeed(req.Seed)).Profile(req.Workload, req.Uops)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	name := req.Name
	if name == "" {
		name = p.Workload()
	}
	// Register wraps its own argument errors with ErrBadRequest; a store
	// write-through failure passes through unwrapped, so server-side I/O
	// trouble surfaces as 500, not as the caller's fault.
	if err := e.Register(name, p); err != nil {
		return nil, err
	}
	return &api.RegisterProfileResponse{
		SchemaVersion: api.SchemaVersion,
		Name:          name,
		Workload:      p.Workload(),
		Uops:          p.TotalUops(),
	}, nil
}

// Workloads implements Evaluator. Store-backed names are listed from the
// store's index metadata, so a catalog of hundreds of evicted profiles is
// enumerated without loading a single body.
func (e *Engine) Workloads(ctx context.Context) (*api.WorkloadsResponse, error) {
	e.mu.RLock()
	infos := make([]api.WorkloadInfo, 0, len(e.profiles))
	seen := make(map[string]bool, len(e.profiles))
	for name, p := range e.profiles {
		seen[name] = true
		infos = append(infos, api.WorkloadInfo{
			Name:         name,
			Workload:     p.Workload(),
			Uops:         p.TotalUops(),
			Instructions: p.TotalInstructions(),
			Entropy:      p.Entropy(),
			MicroTraces:  p.MicroTraces(),
		})
	}
	e.mu.RUnlock()
	if e.store != nil {
		for _, name := range e.store.Names() {
			if seen[name] {
				continue
			}
			si, ok := e.store.Info(name)
			if !ok {
				continue
			}
			infos = append(infos, api.WorkloadInfo{
				Name:         name,
				Workload:     si.Workload,
				Uops:         si.Uops,
				Instructions: si.Instructions,
				Entropy:      si.Entropy,
				MicroTraces:  si.MicroTraces,
			})
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return &api.WorkloadsResponse{SchemaVersion: api.SchemaVersion, Workloads: infos}, nil
}

// ProfileInfo implements Evaluator: the metadata of one registered profile,
// digest and size included. Store-backed names are answered from the index
// without loading the body; in-memory profiles compute the same canonical
// digest on the fly, so local and store-backed engines answer identically.
func (e *Engine) ProfileInfo(ctx context.Context, name string) (*api.ProfileInfoResponse, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: profile request has no name", ErrBadRequest)
	}
	e.mu.RLock()
	p := e.profiles[name]
	e.mu.RUnlock()
	if p != nil {
		data, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("mipp: profile %q: %w", name, err)
		}
		sum := sha256.Sum256(data)
		return &api.ProfileInfoResponse{
			SchemaVersion: api.SchemaVersion,
			Profile: api.ProfileInfo{
				Name:         name,
				Workload:     p.Workload(),
				Digest:       "sha256:" + hex.EncodeToString(sum[:]),
				SizeBytes:    int64(len(data)),
				Uops:         p.TotalUops(),
				Instructions: p.TotalInstructions(),
				Entropy:      p.Entropy(),
				MicroTraces:  p.MicroTraces(),
				Resident:     true,
			},
		}, nil
	}
	if e.store != nil {
		if si, ok := e.store.Info(name); ok {
			return &api.ProfileInfoResponse{
				SchemaVersion: api.SchemaVersion,
				Profile: api.ProfileInfo{
					Name:         name,
					Workload:     si.Workload,
					Digest:       si.Digest,
					SizeBytes:    si.SizeBytes,
					Uops:         si.Uops,
					Instructions: si.Instructions,
					Entropy:      si.Entropy,
					MicroTraces:  si.MicroTraces,
					Resident:     si.Resident,
				},
			}, nil
		}
	}
	return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownWorkload, name, e.WorkloadNames())
}

// DeleteProfile implements Evaluator: drop a registered profile (and, when
// store-backed, its durable object) along with its cached predictors.
func (e *Engine) DeleteProfile(ctx context.Context, name string) (*api.DeleteProfileResponse, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: delete request has no name", ErrBadRequest)
	}
	ok, err := e.remove(name)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownWorkload, name, e.WorkloadNames())
	}
	return &api.DeleteProfileResponse{SchemaVersion: api.SchemaVersion, Name: name, Deleted: true}, nil
}

// Predict implements Evaluator.
func (e *Engine) Predict(ctx context.Context, req *api.PredictRequest) (*api.PredictResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	cfg, err := req.Config.Resolve()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	pd, err := e.predictor(ctx, req.Workload, req.Options)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := pd.Predict(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	e.offerFidelity(req.Workload, req.Options, cfg)
	return &api.PredictResponse{
		SchemaVersion: api.SchemaVersion,
		Result:        apiResult(res, req.MicroCPI),
	}, nil
}

// sweepOne fans one workload out over configs on the shared pool in
// contiguous batches — each pool task runs the compiled batch kernel over
// its chunk — reporting per-config failures instead of aborting the batch.
func (e *Engine) sweepOne(ctx context.Context, workload string, configs []*Config, spec api.PredictorSpec, workers int) ([]*api.Result, []api.ItemError, error) {
	pd, err := e.predictor(ctx, workload, spec)
	if err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = e.workers
	}
	br := getBatchResult()
	defer putBatchResult(br)
	t := obs.StartTimer()
	sweepInto(ctx, pd, configs, workers, br)
	t.ObserveInto(e.metrics.evaluateSeconds)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	results := make([]*api.Result, len(configs))
	for i := range configs {
		if br.Ok(i) {
			results[i] = br.apiResult(i, false)
			e.offerFidelity(workload, spec, configs[i])
		}
	}
	var itemErrs []api.ItemError
	for i := range configs {
		if err := br.Err(i); err != nil {
			name := ""
			if configs[i] != nil {
				name = configs[i].Name
			}
			itemErrs = append(itemErrs, api.ItemError{Index: i, Config: name, Error: err.Error()})
		}
	}
	return results, itemErrs, nil
}

// Sweep implements Evaluator.
func (e *Engine) Sweep(ctx context.Context, req *api.SweepRequest) (*api.SweepResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	configs, err := api.ExpandConfigs(req.Configs, req.Space)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	results, itemErrs, err := e.sweepOne(ctx, req.Workload, configs, req.Options, req.Workers)
	if err != nil {
		return nil, err
	}
	return &api.SweepResponse{
		SchemaVersion: api.SchemaVersion,
		Workload:      req.Workload,
		Results:       results,
		Errors:        itemErrs,
	}, nil
}

// Evaluate implements Evaluator: the full workloads × configs cross product
// on one worker pool, items in row-major order (all configs of the first
// workload, then the second, ...). Each pool task runs one workload's
// compiled batch kernel over a contiguous chunk of configurations, so the
// per-config hot path reuses scratch buffers and memo tables instead of
// re-deriving config-invariant state. Per-item failures — including unknown
// workloads — land in the item's Error field; only request-level problems
// (bad version, no configs, cancellation) fail the whole batch.
func (e *Engine) Evaluate(ctx context.Context, req *api.BatchRequest) (*api.BatchResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	configs, err := api.ExpandConfigs(req.Configs, req.Space)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	workers := req.Workers
	if workers <= 0 {
		workers = e.workers
	}

	// Compile (or fetch) every workload's predictor up front — on the
	// pool, so a cold multi-workload batch doesn't serialize its
	// compiles; duplicate workloads share one compile via the cache.
	pds := make([]*Predictor, len(req.Workloads))
	pdErrs := make([]error, len(req.Workloads))
	runPool(ctx, len(req.Workloads), workers, func(i int) {
		pds[i], pdErrs[i] = e.predictor(ctx, req.Workloads[i], req.Options)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// One span per (workload, config-chunk): the cross product in
	// row-major order, chunked so every span amortizes one batch kernel.
	chunk := batchChunk(len(req.Workloads)*len(configs), workers)
	type span struct{ wi, lo, hi int }
	var spans []span
	for wi := range req.Workloads {
		for lo := 0; lo < len(configs); lo += chunk {
			spans = append(spans, span{wi, lo, min(lo+chunk, len(configs))})
		}
	}
	items := make([]api.BatchItem, len(req.Workloads)*len(configs))
	runPool(ctx, len(spans), workers, func(si int) {
		sp := spans[si]
		var br *BatchResult
		if pdErrs[sp.wi] == nil {
			br = getBatchResult()
			defer putBatchResult(br)
			t := obs.StartTimer()
			_ = pds[sp.wi].PredictBatchInto(ctx, configs[sp.lo:sp.hi], br)
			t.ObserveInto(e.metrics.evaluateSeconds)
		}
		for ci := sp.lo; ci < sp.hi; ci++ {
			item := &items[sp.wi*len(configs)+ci]
			item.Workload = req.Workloads[sp.wi]
			if configs[ci] != nil {
				item.Config = configs[ci].Name
			}
			switch {
			case pdErrs[sp.wi] != nil:
				item.Error = pdErrs[sp.wi].Error()
			case br.Err(ci-sp.lo) != nil:
				item.Error = br.Err(ci - sp.lo).Error()
			case br.Ok(ci - sp.lo):
				item.Result = br.apiResult(ci-sp.lo, false)
				e.offerFidelity(req.Workloads[sp.wi], req.Options, configs[ci])
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &api.BatchResponse{SchemaVersion: api.SchemaVersion, Items: items}, nil
}

// Pareto implements Evaluator.
func (e *Engine) Pareto(ctx context.Context, req *api.ParetoRequest) (*api.ParetoResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	configs, err := api.ExpandConfigs(req.Configs, req.Space)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	results, itemErrs, err := e.sweepOne(ctx, req.Workload, configs, req.Options, req.Workers)
	if err != nil {
		return nil, err
	}

	points := make([]dse.Point, 0, len(results))
	resp := &api.ParetoResponse{
		SchemaVersion: api.SchemaVersion,
		Workload:      req.Workload,
		Errors:        itemErrs,
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		p := dse.Point{Config: r.Config, Time: r.TimeSeconds, Power: r.Watts}
		points = append(points, p)
		resp.Points = append(resp.Points, apiPoint(p))
	}
	for _, p := range dse.ParetoFront(points) {
		resp.Front = append(resp.Front, apiPoint(p))
	}
	if req.CapWatts != nil {
		if best, ok := dse.BestUnderPowerCap(points, *req.CapWatts); ok {
			bp := apiPoint(best)
			resp.BestUnderCap = &bp
		}
	}
	if best, ok := dse.BestByED2P(points); ok {
		bp := apiPoint(best)
		resp.BestByED2P = &bp
	}
	return resp, nil
}

func apiPoint(p dse.Point) api.Point {
	return api.Point{Config: p.Config, TimeSeconds: p.Time, Watts: p.Power}
}

// Compile-time check: the in-process engine and the remote client stay
// interchangeable.
var _ Evaluator = (*Engine)(nil)
