// Design-space exploration: the paper's headline application. One profile
// per workload is swept over hundreds of processor configurations in
// milliseconds, and the performance/power Pareto frontier is extracted
// (§7.4) — the step that replaces weeks of simulation.
package main

import (
	"context"
	"fmt"
	"log"

	"mipp"
	"mipp/arch"
)

func main() {
	profiler := mipp.NewProfiler()
	for _, name := range []string{"bzip2", "gromacs"} {
		profile, err := profiler.Profile(name, 200_000)
		if err != nil {
			log.Fatal(err)
		}
		predictor, err := mipp.NewPredictor(profile)
		if err != nil {
			log.Fatal(err)
		}

		results, err := mipp.Sweep(context.Background(), predictor, arch.DesignSpace())
		if err != nil {
			log.Fatal(err)
		}
		points := mipp.Points(results)
		front := mipp.ParetoFront(points)
		fmt.Printf("%s: evaluated %d configurations, %d Pareto-optimal:\n",
			name, len(points), len(front))
		for _, p := range front {
			fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", p.Config, p.Time, p.Power)
		}
		fmt.Println()
	}
}
