// DVFS exploration (§7.3): sweep the Nehalem-based voltage/frequency
// operating points of Table 7.2 and pick the ED²P-optimal setting per
// workload, using only the analytical model.
package main

import (
	"context"
	"fmt"
	"log"

	"mipp"
	"mipp/arch"
)

func main() {
	base := arch.Reference()
	points := arch.DVFSPoints()
	var configs []*arch.Config
	for _, pt := range points {
		configs = append(configs, arch.WithDVFS(base, pt))
	}
	for _, name := range []string{"gamess", "mcf", "libquantum"} {
		profile, err := mipp.NewProfiler().Profile(name, 200_000)
		if err != nil {
			log.Fatal(err)
		}
		predictor, err := mipp.NewPredictor(profile)
		if err != nil {
			log.Fatal(err)
		}
		results, err := mipp.Sweep(context.Background(), predictor, configs)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s:\n", name)
		for i, res := range results {
			pt := points[i]
			fmt.Printf("  %.2f GHz @ %.2fV: time=%.5fs power=%5.1fW ED2P=%.3e\n",
				pt.FrequencyGHz, pt.VoltageV, res.TimeSeconds(), res.Watts(), res.ED2P())
		}
		if best, ok := mipp.BestByED2P(mipp.Points(results)); ok {
			fmt.Printf("  ED2P optimum: %s\n\n", best.Config)
		}
	}
}
