package power

import (
	"testing"

	"mipp/internal/config"
	"mipp/internal/ooo"
	"mipp/internal/workload"
)

func activityFor(t *testing.T, name string, cfg *config.Config) *ooo.Result {
	t.Helper()
	s := workload.MustGenerate(name, 60_000, 0)
	r, err := ooo.Simulate(cfg, s, ooo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEstimatePlausibleRange(t *testing.T) {
	cfg := config.Reference()
	r := activityFor(t, "gamess", cfg)
	st := Estimate(cfg, &r.Activity)
	if st.Total() < 5 || st.Total() > 60 {
		t.Errorf("reference-core power %.1fW outside plausible 5-60W", st.Total())
	}
	frac := st.Watts[Static] / st.Total()
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("static share %.2f outside 0.2-0.8", frac)
	}
}

func TestComputeBoundDrawsMoreDynamicPower(t *testing.T) {
	cfg := config.Reference()
	cpu := activityFor(t, "gamess", cfg)
	mem := activityFor(t, "mcf", cfg)
	pc := Estimate(cfg, &cpu.Activity)
	pm := Estimate(cfg, &mem.Activity)
	dynC := pc.Total() - pc.Watts[Static]
	dynM := pm.Total() - pm.Watts[Static]
	if dynC <= dynM {
		t.Errorf("compute-bound dynamic %.2fW should exceed memory-bound %.2fW", dynC, dynM)
	}
}

func TestVoltageFrequencyScaling(t *testing.T) {
	base := config.Reference()
	r := activityFor(t, "gcc", base)
	p0 := Estimate(base, &r.Activity)
	hi := config.WithDVFS(base, config.DVFSPoint{FrequencyGHz: 3.2, VoltageV: 1.2})
	p1 := Estimate(hi, &r.Activity)
	if p1.Total() <= p0.Total() {
		t.Errorf("higher V/f should draw more power: %.2f vs %.2f", p1.Total(), p0.Total())
	}
	lo := config.WithDVFS(base, config.DVFSPoint{FrequencyGHz: 1.6, VoltageV: 0.95})
	p2 := Estimate(lo, &r.Activity)
	if p2.Total() >= p0.Total() {
		t.Errorf("lower V/f should draw less power: %.2f vs %.2f", p2.Total(), p0.Total())
	}
}

func TestBiggerCachesLeakMore(t *testing.T) {
	small := config.Reference()
	big := config.Reference()
	big.L3.SizeBytes = 16 << 20
	r := activityFor(t, "gcc", small)
	if Estimate(big, &r.Activity).Watts[Static] <= Estimate(small, &r.Activity).Watts[Static] {
		t.Error("doubling the L3 should increase leakage")
	}
}

func TestEnergyMetrics(t *testing.T) {
	var s Stack
	s.Watts[Static] = 10
	if Energy(s, 2) != 20 {
		t.Error("energy")
	}
	if EDP(s, 2) != 40 {
		t.Error("EDP")
	}
	if ED2P(s, 2) != 80 {
		t.Error("ED2P")
	}
}
