// Package trace defines the dynamic micro-operation stream representation
// shared by the workload generators, the micro-architecture independent
// profiler and the cycle-level reference simulator.
//
// Contemporary x86 processors split each macro-instruction into one or more
// micro-operations (uops) in the decode stage; the interval model operates on
// the uop stream at the dispatch stage (thesis §3.2). We therefore represent
// the dynamic instruction stream directly as a sequence of uops, each tagged
// with the boundary of the macro-instruction it belongs to.
package trace

import "fmt"

// Class enumerates micro-operation types. The set mirrors the instruction-mix
// categories the paper profiles (Table 2.1, §3.4): integer and floating-point
// arithmetic units, non-pipelined dividers, memory accesses, control flow and
// generic data movement.
type Class uint8

// Micro-operation classes.
const (
	IntALU     Class = iota // integer add/sub/logic
	IntMul                  // integer multiply
	IntDiv                  // integer divide (non-pipelined)
	FPAdd                   // floating-point add/compare ("FP ALU")
	FPMul                   // floating-point multiply
	FPDiv                   // floating-point divide (non-pipelined)
	Load                    // memory read
	Store                   // memory write
	Branch                  // conditional or unconditional control flow
	Move                    // register-to-register or immediate moves
	NumClasses              // number of distinct classes; keep last
)

var classNames = [NumClasses]string{
	"IntALU", "IntMul", "IntDiv", "FPAdd", "FPMul", "FPDiv",
	"Load", "Store", "Branch", "Move",
}

// String returns the human-readable class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsMem reports whether the class accesses the data memory hierarchy.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class executes on the floating-point units.
func (c Class) IsFP() bool { return c == FPAdd || c == FPMul || c == FPDiv }

// Uop is one dynamic micro-operation.
//
// Register dependences are expressed positionally: SrcDist1/SrcDist2 give the
// distance, in uops, backwards in the dynamic stream to the producing uop
// (0 means no dependence through that operand). This positional encoding is
// what both the dependence-chain profiler (§3.3) and the simulator's renamed
// register file consume; it already reflects renaming, i.e. only true
// read-after-write dependences are encoded (§2.1).
type Uop struct {
	// PC is the static instruction address. Uops of the same macro
	// instruction share a PC.
	PC uint64
	// Static is a dense static-instruction identifier, used to key
	// per-static-load statistics (stride profiles, prefetch tables).
	Static uint32
	// SrcDist1 and SrcDist2 are backwards dependence distances in uops;
	// 0 means the operand is ready (no in-flight producer).
	SrcDist1 uint32
	SrcDist2 uint32
	// Addr is the byte address accessed when Class is Load or Store.
	Addr uint64
	// Class is the micro-operation type.
	Class Class
	// First marks the first uop of a macro-instruction. The number of
	// macro-instructions in a stream is the count of uops with First set.
	First bool
	// Taken is the branch outcome when Class is Branch.
	Taken bool
}

// Stream is a materialized dynamic uop trace plus its static-instruction
// count. Streams are deterministic: a workload generator with the same
// parameters and seed always yields an identical stream, so the profiler and
// the simulator observe exactly the same execution.
type Stream struct {
	// Name identifies the workload that generated the stream.
	Name string
	// Uops is the dynamic micro-operation sequence, in program order.
	Uops []Uop
	// Statics is the number of distinct static instructions.
	Statics int
}

// Len returns the number of dynamic uops.
func (s *Stream) Len() int { return len(s.Uops) }

// Instructions returns the number of dynamic macro-instructions.
func (s *Stream) Instructions() int {
	n := 0
	for i := range s.Uops {
		if s.Uops[i].First {
			n++
		}
	}
	return n
}

// UopsPerInstruction returns the CISC expansion ratio of the stream
// (Figure 3.1 in the paper ranges from ~1.07 for lbm to ~1.38 for GemsFDTD).
func (s *Stream) UopsPerInstruction() float64 {
	instr := s.Instructions()
	if instr == 0 {
		return 0
	}
	return float64(len(s.Uops)) / float64(instr)
}

// Mix returns the fraction of uops in each class. The slice is indexed by
// Class and sums to 1 for non-empty streams.
func (s *Stream) Mix() []float64 {
	counts := make([]float64, NumClasses)
	for i := range s.Uops {
		counts[s.Uops[i].Class]++
	}
	if n := float64(len(s.Uops)); n > 0 {
		for c := range counts {
			counts[c] /= n
		}
	}
	return counts
}

// Counts returns the absolute number of uops per class.
func (s *Stream) Counts() []int64 {
	counts := make([]int64, NumClasses)
	for i := range s.Uops {
		counts[s.Uops[i].Class]++
	}
	return counts
}

// Slice returns a sub-stream covering uops [lo, hi). The sub-stream shares
// the backing array; dependence distances that reach before lo simply point
// outside the window and are treated as ready by consumers, matching the
// micro-trace semantics of §5.1.
func (s *Stream) Slice(lo, hi int) *Stream {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Uops) {
		hi = len(s.Uops)
	}
	if lo > hi {
		lo = hi
	}
	return &Stream{Name: s.Name, Uops: s.Uops[lo:hi], Statics: s.Statics}
}
