package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath enforces the //mipp:hotpath annotation: a function so marked sits
// on the per-configuration evaluation path (Compiled.EvaluateBatch and its
// callees, Space.At, strategy step functions, memo-table lookups) where the
// benchmark suite budgets allocations per evaluation. The analyzer flags
// the constructs that allocate or otherwise wreck that budget.
//
// Diagnostic kinds:
//
//   - fmt-call: fmt.Sprintf / fmt.Sprint / fmt.Errorf etc. — every call
//     allocates the result string and boxes each argument.
//   - string-concat: s += ... or s = s + ... on strings inside a loop —
//     quadratic garbage.
//   - append-no-cap: append to a local slice declared without capacity in
//     the same function. Slices handed in by the caller (resize-once
//     buffers), reslices of existing backing arrays (x[:0]), and fields
//     (persistent memo/trace buffers) are exempt.
//   - interface-box: a scalar (numeric/bool) argument passed in an
//     interface{} parameter slot — the conversion heap-allocates.
//   - closure-in-loop: a function literal created inside a loop — one
//     allocation per iteration; hoist it above the loop.
//   - defer-in-loop: defer inside a loop runs at function exit, not loop
//     exit, and each one allocates a deferred frame.
//   - make-in-loop: make() inside a loop — one slice/map/channel allocation
//     per iteration; hoist the buffer above the loop and reuse it.
//   - map-in-loop: a map composite literal inside a loop — allocates the
//     map (and its buckets) per iteration.
//   - fidelity-in-hotpath: any call into mipp/fidelity — digesting, sampling
//     bookkeeping, and residual recording belong on the cold sampler
//     goroutine, never on the per-configuration evaluation path. The kernel
//     hands configs to Engine.offerFidelity after the batch completes; a
//     fidelity call inside the kernel itself reintroduces hashing and
//     locking per evaluation.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "enforces //mipp:hotpath: no fmt calls, string concatenation, " +
		"capacity-less appends, scalar interface boxing, per-iteration closures, " +
		"defers in loops, per-iteration make/map allocations, or mipp/fidelity " +
		"calls inside functions annotated as allocation-budgeted",
	Run: runHotpath,
}

// fidelityPkgPath is the residual-tracking package barred from hot paths.
const fidelityPkgPath = "mipp/fidelity"

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fd := range hotpathFuncs(f) {
			checkHotpath(pass, fd)
		}
	}
	return nil
}

func checkHotpath(pass *Pass, fd *ast.FuncDecl) {
	prealloc := preallocatedLocals(pass, fd)
	params := paramNames(fd)
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(node ast.Node) bool {
			if node == nil || node == n {
				return true
			}
			switch node := node.(type) {
			case *ast.ForStmt:
				if node.Init != nil {
					walk(node.Init, inLoop)
				}
				if node.Cond != nil {
					walk(node.Cond, inLoop)
				}
				if node.Post != nil {
					walk(node.Post, inLoop)
				}
				walk(node.Body, true)
				return false
			case *ast.RangeStmt:
				walk(node.X, inLoop)
				walk(node.Body, true)
				return false
			case *ast.DeferStmt:
				if inLoop {
					pass.Reportf(node.Pos(), "defer-in-loop",
						"defer inside a loop in hot path %s: runs at function exit and allocates per iteration; restructure or use an explicit call",
						fd.Name.Name)
				}
				walk(node.Call, inLoop)
				return false
			case *ast.FuncLit:
				if inLoop {
					pass.Reportf(node.Pos(), "closure-in-loop",
						"function literal created inside a loop in hot path %s: allocates a closure per iteration; hoist it above the loop",
						fd.Name.Name)
				}
				// The literal's body executes in its own context; the hot
				// path pays only for its creation.
				return false
			case *ast.AssignStmt:
				checkStringConcat(pass, fd, node, inLoop)
			case *ast.CompositeLit:
				if inLoop {
					if t := pass.TypeOf(node); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(node.Pos(), "map-in-loop",
								"map literal inside a loop in hot path %s: allocates the map and its buckets per iteration; hoist it above the loop and reuse it",
								fd.Name.Name)
						}
					}
				}
			case *ast.CallExpr:
				checkHotCall(pass, fd, node, prealloc, params, inLoop)
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// checkStringConcat flags s += x and s = s + x on string operands in loops.
func checkStringConcat(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt, inLoop bool) {
	if !inLoop || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs := as.Lhs[0]
	if t := pass.TypeOf(lhs); t == nil || !isStringType(t) {
		return
	}
	switch as.Tok {
	case token.ADD_ASSIGN:
		pass.Reportf(as.Pos(), "string-concat",
			"string += inside a loop in hot path %s: quadratic allocation; use a preallocated []byte or strings.Builder outside the hot path",
			fd.Name.Name)
	case token.ASSIGN:
		if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && bin.Op == token.ADD {
			if render(pass.Fset, bin.X) == render(pass.Fset, lhs) {
				pass.Reportf(as.Pos(), "string-concat",
					"string concatenation onto itself inside a loop in hot path %s: quadratic allocation; use a preallocated []byte",
					fd.Name.Name)
			}
		}
	}
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc, params map[string]bool, inLoop bool) {
	if pkg, name := pkgFuncCall(pass, call); pkg == "fmt" {
		pass.Reportf(call.Pos(), "fmt-call",
			"fmt.%s in hot path %s: allocates the formatted string and boxes every argument; move formatting off the evaluation path",
			name, fd.Name.Name)
		return
	} else if pkg == fidelityPkgPath {
		pass.Reportf(call.Pos(), "fidelity-in-hotpath",
			"fidelity.%s in hot path %s: residual tracking hashes and locks; record fidelity on the cold sampler goroutine, not the evaluation path",
			name, fd.Name.Name)
		return
	}
	if name, ok := fidelityMethodCall(pass, call); ok {
		pass.Reportf(call.Pos(), "fidelity-in-hotpath",
			"%s call in hot path %s: residual tracking hashes and locks; record fidelity on the cold sampler goroutine, not the evaluation path",
			name, fd.Name.Name)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "append":
			checkAppend(pass, fd, call, prealloc, params)
			return
		case "make":
			if inLoop {
				pass.Reportf(call.Pos(), "make-in-loop",
					"make inside a loop in hot path %s: allocates per iteration; hoist the buffer above the loop and reuse it",
					fd.Name.Name)
			}
			return
		}
	}
	checkInterfaceBoxing(pass, fd, call)
}

// fidelityMethodCall reports whether call is a method call on a type
// defined in mipp/fidelity (Recorder.Record, Pair.Sample, ...), returning a
// human-readable "Type.Method" description.
func fidelityMethodCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	recv, method := methodCallRecv(call)
	if recv == nil {
		return "", false
	}
	t := pass.TypeOf(recv)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != fidelityPkgPath {
		return "", false
	}
	return "fidelity." + obj.Name() + "." + method, true
}

// checkAppend flags append whose destination is a local slice declared
// without capacity. Exempt: parameters (caller-owned buffers), struct
// fields / anything not a plain local, reslices (x = append(x[:0], ...)
// style code declares x elsewhere), and locals made with an explicit
// capacity.
func checkAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc, params map[string]bool) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	if params[id.Name] || prealloc[id.Name] {
		return
	}
	obj := pass.ObjectOf(id)
	if obj == nil || obj.Parent() == nil || obj.Parent() == types.Universe {
		return
	}
	// Only locals declared inside this function are candidates; package-level
	// slices and fields are persistent buffers by design.
	if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
		return
	}
	pass.Reportf(call.Pos(), "append-no-cap",
		"append to %s in hot path %s grows a local slice declared without capacity; size it with make(T, 0, n) up front",
		id.Name, fd.Name.Name)
}

// preallocatedLocals collects local names assigned from a 3-argument make,
// from x[:0]-style reslices, or from a call (whose result may carry
// capacity the analyzer cannot see).
func preallocatedLocals(pass *Pass, fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CallExpr:
				if mid, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && (mid.Name == "make" || mid.Name == "append") {
					// x = append(x, ...) must not launder x into the
					// preallocated set; only a 3-arg make does.
					if mid.Name == "make" && len(rhs.Args) == 3 {
						out[id.Name] = true
					}
					continue
				}
				// Result of some other call: capacity unknown, give the
				// benefit of the doubt rather than false-positive.
				out[id.Name] = true
			case *ast.SliceExpr:
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

func paramNames(fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				out[name.Name] = true
			}
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				out[name.Name] = true
			}
		}
	}
	return out
}

// checkInterfaceBoxing flags scalar-typed arguments landing in interface
// parameter slots — each conversion allocates.
func checkInterfaceBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	tv := pass.TypeOf(call.Fun)
	sig, ok := tv.(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < np-1 || (i < np && !sig.Variadic()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && np > 0:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&(types.IsNumeric|types.IsBoolean) != 0 && b.Info()&types.IsUntyped == 0 {
			pass.Reportf(arg.Pos(), "interface-box",
				"%s argument boxed into interface parameter in hot path %s: each conversion heap-allocates; keep the call monomorphic",
				at.String(), fd.Name.Name)
		}
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
