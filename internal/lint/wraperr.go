package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Wraperr enforces the module's error-contract invariant: sentinel errors
// (ErrUnknownWorkload, ErrBadRequest, ErrProfileCorrupt, ErrProfileVersion,
// ErrUnknownJob, store.ErrNotFound, ...) travel across layers — engine →
// server → HTTP status → client → caller — by wrapping with %w and testing
// with errors.Is. Anything else (==, string matching) breaks the moment a
// layer adds context to the error, which is exactly what the layers are
// for.
//
// Diagnostic kinds:
//
//   - sentinel-compare: err == Sentinel / err != Sentinel where a side is
//     a package-level error variable. Identity comparison fails on wrapped
//     errors; use errors.Is.
//   - no-wrap: fmt.Errorf given an error argument with no %w verb in the
//     format string — the sentinel is flattened to text and errors.Is
//     stops working downstream.
//   - string-match: branching on err.Error() text (== / != or
//     strings.Contains and friends) — the least stable contract of all.
var Wraperr = &Analyzer{
	Name: "wraperr",
	Doc: "enforces %w wrapping and errors.Is for sentinel errors; flags ==/!= " +
		"against error sentinels, fmt.Errorf that swallows an error without %w, " +
		"and err.Error() string matching",
	Run: runWraperr,
}

// stringMatchFuncs are the strings functions that, fed err.Error(), mean
// someone is branching on error text.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true,
}

func runWraperr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
				checkStringsMatch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrCompare flags ==/!= where one operand is a package-level error
// variable (a sentinel) — wrapped errors never compare identical.
func checkErrCompare(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	// err.Error() == "..." — string-typed, so test before the error-type
	// guard below.
	if directErrorCall(pass, bin.X) != nil || directErrorCall(pass, bin.Y) != nil {
		pass.Reportf(bin.Pos(), "string-match",
			"comparing err.Error() text: error messages are not a contract; use errors.Is against the sentinel")
		return
	}
	if isNilExpr(pass, bin.X) || isNilExpr(pass, bin.Y) {
		return
	}
	if !isErrorType(pass.TypeOf(bin.X)) || !isErrorType(pass.TypeOf(bin.Y)) {
		return
	}
	sentinel := sentinelVar(pass, bin.X)
	if sentinel == nil {
		sentinel = sentinelVar(pass, bin.Y)
	}
	if sentinel == nil {
		return
	}
	hint := "errors.Is(err, " + sentinel.Name() + ")"
	if bin.Op == token.NEQ {
		hint = "!" + hint
	}
	pass.Reportf(bin.Pos(), "sentinel-compare",
		"%s compared with %s: identity comparison fails once a layer wraps the error; use %s",
		sentinel.Name(), bin.Op, hint)
}

// sentinelVar resolves e to a package-level variable of type error, or nil.
func sentinelVar(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error value but whose
// (literal) format string carries no %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if pkg, name := pkgFuncCall(pass, call); pkg != "fmt" || name != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	if strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypeOf(arg)
		if t == nil || !types.Implements(t, errorInterface()) {
			continue
		}
		// err.Error() in the args is string-typed and handled elsewhere;
		// here the error value itself is being flattened.
		pass.Reportf(call.Pos(), "no-wrap",
			"fmt.Errorf formats an error without %%w: the sentinel chain is cut and errors.Is stops working downstream; use %%w (or errors.Join)")
		return
	}
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// checkStringsMatch flags strings.Contains/HasPrefix/... where an argument
// is built from err.Error().
func checkStringsMatch(pass *Pass, call *ast.CallExpr) {
	pkg, name := pkgFuncCall(pass, call)
	if pkg != "strings" || !stringMatchFuncs[name] {
		return
	}
	for _, arg := range call.Args {
		if bad := errDotError(pass, arg); bad != nil {
			pass.Reportf(bad.Pos(), "string-match",
				"strings.%s over err.Error(): error messages are not a contract; use errors.Is (or errors.As) against the sentinel",
				name)
			return
		}
	}
}

// directErrorCall reports whether e itself (modulo parens) is a call to
// .Error() on an error-typed receiver.
func directErrorCall(pass *Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return nil
	}
	if !isErrorType(pass.TypeOf(sel.X)) {
		return nil
	}
	return call
}

// errDotError finds a call to .Error() on an error-typed receiver anywhere
// inside e, returning it (nil when absent).
func errDotError(pass *Pass, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
			return true
		}
		if isErrorType(pass.TypeOf(sel.X)) {
			found = call
			return false
		}
		return true
	})
	return found
}
