// Package statstack implements the StatStack statistical cache model (§4.2):
// it converts sampled reuse-distance distributions into expected stack
// distances and LRU miss ratios for caches of arbitrary size, without any
// cache simulation.
//
// For a reuse with reuse distance R (R intermediate accesses), the expected
// stack distance is the expected number of *unique* lines among those
// intermediate accesses. Each intermediate access at backward distance k
// from the window end contributes its probability of not being re-touched
// inside the window, which is P(rd > k); hence
//
//	SD(R) = Σ_{k=0}^{R-1} P(rd > k)
//
// where P is taken from the combined (loads+stores) reuse-distance
// distribution. An access misses in a fully-associative LRU cache of C
// lines iff SD(R) ≥ C; cold (first-touch) accesses always miss. Per-type
// (load/store) miss ratios use the per-type reuse histograms with the
// combined distribution for P (§4.2).
package statstack

import (
	"sort"

	"mipp/internal/cache"
	"mipp/internal/profiler"
	"mipp/internal/stats"
)

// Curve is the precomputed expected-stack-distance function S(R) of one
// combined reuse-distance distribution.
type Curve struct {
	// segStart[i] is the first reuse distance of segment i; within a
	// segment, P(rd > k) is constant at segP[i].
	segStart []int64
	segP     []float64
	// segS[i] is S(segStart[i]).
	segS []float64
}

// New builds the stack-distance curve from the combined reuse-distance
// histogram. Cold accesses are excluded from the distribution (they have no
// reuse); they are accounted for separately in MissRatio.
func New(combined *stats.Histogram) *Curve {
	keys, ccdf := combined.CCDF()
	c := &Curve{}
	// Segment 0: k in [0, keys[0]] has P = 1 up to (but excluding) the
	// first key, then steps down at each key.
	c.segStart = append(c.segStart, 0)
	c.segP = append(c.segP, 1)
	c.segS = append(c.segS, 0)
	for i, k := range keys {
		// P(rd > j) = ccdf[i] for j in [k, nextKey).
		prev := len(c.segStart) - 1
		s := c.segS[prev] + c.segP[prev]*float64(k-c.segStart[prev])
		c.segStart = append(c.segStart, k)
		c.segP = append(c.segP, ccdf[i])
		c.segS = append(c.segS, s)
	}
	return c
}

// ExpectedSD returns the expected stack distance for reuse distance r.
func (c *Curve) ExpectedSD(r int64) float64 {
	if r <= 0 {
		return 0
	}
	// Find the segment containing r-1 (the last summed index); summing to
	// r means S(segStart) + P*(r - segStart) for the segment with
	// segStart <= r < nextStart... S is piecewise linear with slope segP.
	i := sort.Search(len(c.segStart), func(i int) bool { return c.segStart[i] > r }) - 1
	if i < 0 {
		i = 0
	}
	return c.segS[i] + c.segP[i]*float64(r-c.segStart[i])
}

// ThresholdReuse returns the smallest reuse distance whose expected stack
// distance reaches lines; accesses with reuse distance ≥ the threshold miss
// in a cache of that many lines. Returns a very large value when even the
// longest observed reuse fits.
func (c *Curve) ThresholdReuse(lines float64) int64 {
	last := len(c.segS) - 1
	if lines <= 0 {
		return 0
	}
	// Find first segment whose end S exceeds lines.
	i := sort.Search(len(c.segS), func(i int) bool { return c.segS[i] >= lines }) - 1
	if i < 0 {
		return 0
	}
	for i <= last {
		var segEndS float64
		if i < last {
			segEndS = c.segS[i+1]
		} else {
			segEndS = c.segS[i] + c.segP[i]*1e18
		}
		if segEndS >= lines {
			if c.segP[i] == 0 {
				i++
				continue
			}
			r := c.segStart[i] + int64((lines-c.segS[i])/c.segP[i]+0.9999999)
			return r
		}
		i++
	}
	return int64(1) << 62
}

// MissRatio returns the miss ratio for accesses described by the reuse
// histogram h plus cold first-touch accesses, in a fully-associative LRU
// cache of the given line count. The curve supplies the reuse→stack
// conversion.
func (c *Curve) MissRatio(h *stats.Histogram, cold float64, lines float64) float64 {
	total := h.Total() + cold
	if total == 0 {
		return 0
	}
	thr := c.ThresholdReuse(lines)
	missMass := cold
	for _, k := range h.Keys() {
		if k >= thr {
			missMass += h.Count(k)
		}
	}
	return missMass / total
}

// LevelStats is the predicted behaviour of one cache level.
type LevelStats struct {
	Config cache.Config
	// Miss ratios relative to all accesses of that type (each level
	// modeled independently, as if it were the only cache, §4.2).
	LoadMissRatio  float64
	StoreMissRatio float64
	MissRatio      float64 // combined
	// Absolute predicted counts for the profiled stream.
	LoadMisses  float64
	StoreMisses float64
	Misses      float64
	MPKI        float64 // misses per kilo macro-instruction
}

// Prediction is the full memory-hierarchy prediction for one profile.
type Prediction struct {
	Levels []LevelStats
	// ICacheMissRatio[i] is the instruction-side miss ratio of level i
	// (only level 0 = L1I is modeled against the instruction stream).
	ICacheMPKI float64
	// ColdFraction is the fraction of LLC load misses that are cold.
	ColdFraction float64
	// Curve is the combined reuse→stack curve, reused by the MLP models.
	Curve *Curve
}

// Predict estimates miss ratios for every level of a data-cache hierarchy
// plus the L1I, from a micro-architecture independent profile. It compiles
// the profile's curves and throws them away; callers predicting more than
// one geometry should Compile once and call CurveSet.Predict per geometry.
func Predict(p *profiler.Profile, levels []cache.Config, l1i cache.Config) *Prediction {
	return Compile(p).Predict(levels, l1i)
}

// MissRatioForMicro estimates the load miss ratio of one micro-trace at a
// given cache size, using the global curve for the reuse→stack conversion
// but the micro-trace's own reuse samples (the per-window evaluation of the
// sampled model, §5.4).
func MissRatioForMicro(curve *Curve, m *profiler.Micro, lines float64) float64 {
	return curve.MissRatio(m.ReuseLoads, float64(m.ColdLoadReuse), lines)
}

// StaticLoadMissRatio estimates the per-static-load miss ratio at a cache
// size from the profile's per-static reuse samples (§4.5: "the reuse
// distance distribution is measured per static load, hence it enables
// estimating the miss rate per static load for any cache size").
func StaticLoadMissRatio(p *profiler.Profile, curve *Curve, static uint32, lines float64) float64 {
	h := p.PerStaticReuse[static]
	cold := float64(p.PerStaticCold[static])
	if h == nil {
		if cold > 0 {
			return 1
		}
		return 0
	}
	return curve.MissRatio(h, cold, lines)
}
