// The service layer end to end, in one process: profile a workload into an
// Engine, serve it over HTTP exactly as cmd/mippd does, and run the same
// design-space query twice — once in-process and once through the remote
// client — against the shared mipp.Evaluator interface. The two answers
// marshal to byte-identical JSON, which is the whole point: callers pick
// local or remote evaluation by swapping one value.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"mipp"
	"mipp/api"
	"mipp/client"
	"mipp/server"
)

func main() {
	ctx := context.Background()

	// Profile once, register with an engine.
	profile, err := mipp.NewProfiler().Profile("libquantum", 100_000)
	if err != nil {
		log.Fatal(err)
	}
	engine := mipp.NewEngine()
	if err := engine.Register("libquantum", profile); err != nil {
		log.Fatal(err)
	}

	// Serve the engine on a loopback port, as mippd would.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(engine)}
	go srv.Serve(ln)
	defer srv.Close()
	remote := client.New("http://" + ln.Addr().String())

	// One query, two evaluators.
	req := &api.ParetoRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "libquantum",
		Space:         &api.SpaceSpec{Kind: "design", Stride: 13},
		CapWatts:      ptr(18.0),
	}
	local, err := run(ctx, engine, req)
	if err != nil {
		log.Fatal(err)
	}
	overWire, err := run(ctx, remote, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local == remote: %v\n", bytes.Equal(local, overWire))

	var resp api.ParetoResponse
	if err := json.Unmarshal(local, &resp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept %d designs; Pareto frontier:\n", len(resp.Points))
	for _, p := range resp.Front {
		fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", p.Config, p.TimeSeconds, p.Watts)
	}
	if resp.BestUnderCap != nil {
		fmt.Printf("fastest under 18 W: %s\n", resp.BestUnderCap.Config)
	}
}

// run issues the query through any evaluator — in-process engine or remote
// client — and returns the response JSON.
func run(ctx context.Context, ev mipp.Evaluator, req *api.ParetoRequest) ([]byte, error) {
	resp, err := ev.Pareto(ctx, req)
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

func ptr(v float64) *float64 { return &v }
