package api

// The router vocabulary: cmd/mipp-router fronts N mippd replicas behind the
// same /v1 surface, consistent-hashing workload names so each replica's
// predictor cache stays hot. Its /healthz answers with a RouterHealth-
// Response instead of the replica health body — the members list is what an
// operator (or a test) reads to see the ring.

// RouterMember is one replica as the router sees it.
type RouterMember struct {
	URL string `json:"url"`
	// Healthy reflects the last health check (or a connect failure that
	// marked the member down between checks).
	Healthy bool `json:"healthy"`
	// Inflight is the number of requests the router currently has open
	// against this member — the load the bounded-load ring balances.
	Inflight int64 `json:"inflight"`
}

// RouterHealthResponse is the mipp-router /healthz body.
type RouterHealthResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Status        string `json:"status"` // "ok" while ≥1 member is healthy, else "degraded"
	UptimeSeconds int64  `json:"uptime_seconds"`
	// Members lists every configured replica, sorted by URL.
	Members []RouterMember `json:"members"`
	// JobsRouted counts search-job → replica routes currently remembered.
	JobsRouted int `json:"jobs_routed"`
}
