package mlp

import (
	"sync"
	"sync/atomic"

	"mipp/internal/profiler"
	"mipp/internal/statstack"
)

// Compiled memoizes the config-invariant pieces of the MLP models for one
// (profile, micro-trace) pair. The expensive step of the stride-MLP model —
// rebuilding and sorting the virtual instruction stream and assigning
// dependence depths — depends only on the LLC geometry and on which
// profiled ROB size the window quantizes to, so a design-space or DVFS
// sweep reuses a handful of streams across hundreds of configurations.
// Full model evaluations are additionally memoized on the subset of Params
// the models actually read; that key includes the memory latency in cycles
// (mshrCap reads it), which scales with frequency, so the points of a DVFS
// sweep share streams but still pay the (cheap) prefetcher/abstract-ROB
// walks — only exact geometry/window/latency repeats are outright free.
//
// A Compiled is safe for concurrent use; results are byte-identical to the
// package-level Evaluate for the same inputs. Both memo tables are bounded
// (maxStreamEntries, maxEvalEntries): past the cap new keys are recomputed
// per call instead of cached, so a long-lived service holds bounded state.
type Compiled struct {
	p     *profiler.Profile
	m     *profiler.Micro
	curve *statstack.Curve

	mu      sync.RWMutex
	evals   map[Params]MicroMem
	streams map[streamKey][]virtualLoad

	builds   atomic.Uint64 // virtual-stream builds (distinct stream keys)
	computes atomic.Uint64 // full evaluations (memo misses)
}

// streamKey identifies one virtual instruction stream: the LLC line count
// drives the miss marking, and the profiled-ROB index drives the depth
// assignment (any two ROB sizes quantizing to the same profiled size get
// identical depths).
type streamKey struct {
	llcLines float64
	robIdx   int
}

// Memo bounds per micro-trace: streams are the heavy entries (one record
// per profiled load), evals are scalar. Real sweeps stay far below both;
// the caps keep a daemon serving arbitrary client geometries bounded.
const (
	maxStreamEntries = 64
	maxEvalEntries   = 1 << 14
)

// Compile prepares the MLP models of one micro-trace for repeated
// evaluation against many configurations.
func Compile(p *profiler.Profile, m *profiler.Micro, curve *statstack.Curve) *Compiled {
	return &Compiled{
		p:       p,
		m:       m,
		curve:   curve,
		evals:   make(map[Params]MicroMem),
		streams: make(map[streamKey][]virtualLoad),
	}
}

// Stats reports how much work the memo tables absorbed: StreamBuilds is the
// number of virtual streams constructed, Computes the number of full model
// evaluations that missed the memo.
func (c *Compiled) Stats() (streamBuilds, computes uint64) {
	return c.builds.Load(), c.computes.Load()
}

// Evaluate predicts the memory behaviour of the micro-trace, memoized on
// the Params fields the models read.
func (c *Compiled) Evaluate(prm Params) MicroMem {
	key := prm
	// Fields no MLP model reads must not fragment the memo; zeroing them
	// here is what makes a frequency or width sweep hit the cache. If a
	// model starts reading one of these, remove it from this list.
	key.DispatchRate = 0
	key.BusPerLine = 0
	key.L1Lines = 0
	key.L2Lines = 0
	c.mu.RLock()
	out, ok := c.evals[key]
	c.mu.RUnlock()
	if ok {
		return out
	}
	out = c.evaluate(prm)
	c.mu.Lock()
	if len(c.evals) < maxEvalEntries {
		c.evals[key] = out
	}
	c.mu.Unlock()
	return out
}

// evaluate mirrors the package-level Evaluate, with the stride path served
// from the stream cache.
func (c *Compiled) evaluate(prm Params) MicroMem {
	c.computes.Add(1)
	out := MicroMem{Loads: float64(c.m.LoadCount)}
	out.MissPerLoad = statstack.MissRatioForMicro(c.curve, c.m, prm.LLCLines)
	switch prm.Mode {
	case None:
		out.MLP, out.RawMLP = 1, 1
	case ColdMiss:
		out.RawMLP = coldMissMLP(c.p, c.m, c.curve, prm)
		out.MLP = mshrCap(out.RawMLP, prm)
	default:
		raw, pf := c.strideMLP(prm)
		out.RawMLP = raw
		out.MLP = mshrCap(raw, prm)
		out.PrefetchTimely = pf.timely
		out.PrefetchPartial = pf.partial
		out.PartialSpacing = pf.spacing
	}
	if out.MLP < 1 {
		out.MLP = 1
	}
	return out
}

// strideMLP runs the prefetcher and abstract-ROB steps on the cached
// virtual stream; only those two (cheap, config-dependent) walks run per
// distinct configuration.
func (c *Compiled) strideMLP(prm Params) (float64, pfStats) {
	stream := c.stream(prm)
	if len(stream) == 0 {
		return 1, pfStats{}
	}
	pf := modelPrefetcher(stream, c.m, prm)
	return stepROB(stream, c.m.Len, prm.window()), pf
}

// stream returns the depth-assigned virtual instruction stream for the
// configuration's LLC geometry and ROB quantization, building it on first
// use. The cached stream is never mutated after construction.
func (c *Compiled) stream(prm Params) []virtualLoad {
	key := streamKey{llcLines: prm.LLCLines, robIdx: c.p.Opts.ROBIndexFor(prm.ROB)}
	c.mu.RLock()
	s, ok := c.streams[key]
	c.mu.RUnlock()
	if ok {
		return s
	}
	c.builds.Add(1)
	target := statstack.MissRatioForMicro(c.curve, c.m, prm.LLCLines) * float64(c.m.LoadCount)
	s = buildVirtualStream(c.p, c.m, c.curve, prm, target)
	assignDepths(s, c.p, c.m, prm.ROB)
	c.mu.Lock()
	if len(c.streams) < maxStreamEntries {
		c.streams[key] = s
	}
	c.mu.Unlock()
	return s
}
