package statstack

import (
	"testing"

	"mipp/internal/config"
)

func TestPredictLevelsMonotone(t *testing.T) {
	cfg := config.Reference()
	for _, name := range []string{"gcc", "soplex"} {
		p := profileOf(t, name, 100_000)
		pred := Predict(p, cfg.CacheLevels(), cfg.L1I)
		if len(pred.Levels) != 3 {
			t.Fatalf("levels = %d", len(pred.Levels))
		}
		for i := 1; i < 3; i++ {
			if pred.Levels[i].Misses > pred.Levels[i-1].Misses+1e-6 {
				t.Errorf("%s: L%d misses %.0f exceed L%d misses %.0f",
					name, i+1, pred.Levels[i].Misses, i, pred.Levels[i-1].Misses)
			}
		}
		if pred.ColdFraction < 0 || pred.ColdFraction > 1 {
			t.Errorf("%s: cold fraction %v", name, pred.ColdFraction)
		}
	}
}

func TestMissRatioForMicroBounded(t *testing.T) {
	p := profileOf(t, "milc", 60_000)
	curve := New(p.ReuseAll)
	for _, m := range p.Micros {
		for _, lines := range []float64{512, 4096, 131072} {
			mr := MissRatioForMicro(curve, m, lines)
			if mr < 0 || mr > 1 {
				t.Fatalf("micro miss ratio %v", mr)
			}
		}
	}
}

func TestThresholdReuseInvertsSD(t *testing.T) {
	p := profileOf(t, "bzip2", 60_000)
	c := New(p.ReuseAll)
	for _, lines := range []float64{100, 1000, 10000} {
		thr := c.ThresholdReuse(lines)
		if thr >= 1<<61 {
			// Sentinel: the curve saturates below this size — nothing
			// but cold accesses can miss. Legitimate for small traces.
			continue
		}
		if thr > 0 && c.ExpectedSD(thr) < lines-1 {
			t.Errorf("SD(threshold %d) = %.1f < %v lines", thr, c.ExpectedSD(thr), lines)
		}
		if thr > 1 && c.ExpectedSD(thr-1) >= lines {
			t.Errorf("threshold %d not minimal for %v lines", thr, lines)
		}
	}
}
