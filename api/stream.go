package api

// The streaming vocabulary. Two endpoints stream instead of answering with
// one envelope:
//
//   - GET /v1/search/{id}/events serves Server-Sent Events: each SSE
//     message's data line is one SearchEvent, its id line is the event's
//     Seq (so Last-Event-ID resumes a dropped stream without loss), and
//     its event line is the Type. The stream ends after the terminal
//     event; subscribing to a finished job replays the retained events
//     and terminates immediately.
//   - POST /v1/sweep?stream=1 serves newline-delimited JSON: one
//     SweepStreamHeader frame, then one SweepItem frame per configuration
//     in input order as results become available, then one
//     SweepStreamTrailer frame. Item frames are flushed as they are
//     written, so a consumer sees results while later chunks still
//     evaluate.

// Search event types. Progress and front events are incremental; the
// terminal event reuses the job-state vocabulary (JobDone, JobFailed,
// JobCancelled) as its type and carries the report on success.
const (
	// SearchEventProgress is one generation's convergence-trace step.
	SearchEventProgress = "progress"
	// SearchEventFront reports that the Pareto front changed, carrying
	// the full front so far.
	SearchEventFront = "front"
)

// SearchEvent is one message on a search job's event stream.
type SearchEvent struct {
	SchemaVersion int    `json:"schema_version"`
	JobID         string `json:"job_id"`
	// Seq numbers events from 1 per job; it is the SSE message id, and
	// the token a resuming subscriber passes as Last-Event-ID.
	Seq int `json:"seq"`
	// Type is "progress", "front", or a terminal job state ("done",
	// "failed", "cancelled").
	Type string `json:"type"`
	// Generation and Evaluations are cumulative progress counters,
	// set on progress and front events.
	Generation  int `json:"generation,omitempty"`
	Evaluations int `json:"evaluations,omitempty"`
	// Best is the incumbent at this point of the run (progress events;
	// omitted until a feasible point exists).
	Best *SearchEval `json:"best,omitempty"`
	// Front is the Pareto front over everything evaluated so far (front
	// events only).
	Front []SearchEval `json:"front,omitempty"`
	// Error is set on a terminal "failed" event.
	Error string `json:"error,omitempty"`
	// Report is set on a terminal "done" event — the same report
	// GET /v1/search/{id} serves, byte-identical.
	Report *SearchReport `json:"report,omitempty"`
}

// Terminal reports whether this event ends the stream.
func (e *SearchEvent) Terminal() bool {
	return e.Type == JobDone || e.Type == JobFailed || e.Type == JobCancelled
}

// SweepStreamHeader opens a streamed sweep: the workload and how many item
// frames will follow.
type SweepStreamHeader struct {
	SchemaVersion int    `json:"schema_version"`
	Workload      string `json:"workload"`
	Count         int    `json:"count"`
}

// SweepItem is one configuration's frame of a streamed sweep, in input
// order. Exactly one of Result and Error is set.
type SweepItem struct {
	// Index is the configuration's position in the expanded request.
	Index  int     `json:"index"`
	Config string  `json:"config,omitempty"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// SweepStreamTrailer closes a streamed sweep with result/error counts; a
// non-empty Error reports a run-level failure (e.g. cancellation) that
// truncated the stream.
type SweepStreamTrailer struct {
	Done    bool   `json:"done"`
	Results int    `json:"results"`
	Errors  int    `json:"errors,omitempty"`
	Error   string `json:"error,omitempty"`
}
