// Package config describes processor micro-architectures: the reference
// Nehalem-based core of Table 6.1, the 3^5 = 243-point design space of
// Table 6.3, the DVFS operating points of Table 7.2, and the derived
// quantities (port maps, functional-unit latencies, memory timing) the
// simulator, analytical model and power model all consume.
package config

import (
	"fmt"
	"strings"

	"mipp/internal/cache"
	"mipp/internal/memory"
	"mipp/internal/prefetch"
	"mipp/internal/trace"
)

// FUSpec describes the functional unit executing one uop class.
type FUSpec struct {
	// Latency is the execution latency in cycles. For Load it is the
	// address-generation part only; the cache-hit latency is added by the
	// memory hierarchy.
	Latency int
	// Pipelined units accept a new uop every cycle; non-pipelined units
	// (the dividers, §3.4) block for Latency cycles.
	Pipelined bool
}

// Port is the set of uop classes one issue port can forward per cycle.
type Port []trace.Class

// Serves reports whether the port can issue class c.
func (p Port) Serves(c trace.Class) bool {
	for _, pc := range p {
		if pc == c {
			return true
		}
	}
	return false
}

// Config is a complete core + memory-hierarchy description.
type Config struct {
	Name string

	// Clocking: frequency in GHz and supply voltage in volts. DVFS
	// changes these jointly (Table 7.2).
	FrequencyGHz float64
	VoltageV     float64

	// Core structures.
	DispatchWidth int // D: uops dispatched (and committed) per cycle
	ROB           int
	IQ            int // instruction (issue) queue entries
	LSQ           int
	FrontEndDepth int // c_fe: front-end refill time in cycles
	MSHRs         int // L1D miss status handling registers

	// Issue stage: ports and per-class functional units (Figure 3.5).
	Ports []Port
	FU    [trace.NumClasses]FUSpec

	// Memory hierarchy.
	L1I cache.Config
	L1D cache.Config
	L2  cache.Config
	L3  cache.Config

	// Main memory timing in nanoseconds (converted to cycles at the
	// configured frequency so DVFS changes the relative memory latency).
	MemLatencyNS float64
	BusNSPerLine float64
	MemChannels  int

	// Branch predictor name (see branch.NewByName).
	Predictor string

	// Hardware prefetcher.
	Prefetcher prefetch.Config
}

// MemConfig converts the nanosecond memory timing into core cycles at the
// configured frequency.
func (c *Config) MemConfig() memory.Config {
	lat := int(c.MemLatencyNS*c.FrequencyGHz + 0.5)
	bus := int(c.BusNSPerLine*c.FrequencyGHz + 0.5)
	if bus < 1 {
		bus = 1
	}
	ch := c.MemChannels
	if ch <= 0 {
		ch = 1
	}
	return memory.Config{LatencyCycles: lat, BusCyclesPerLine: bus, Channels: ch}
}

// CacheLevels returns the data-side hierarchy configs ordered L1 first.
func (c *Config) CacheLevels() []cache.Config {
	return []cache.Config{c.L1D, c.L2, c.L3}
}

// UnitCount returns how many ports can issue class cl — the number of
// functional units of that type in the issue-contention model (Eq 3.10).
func (c *Config) UnitCount(cl trace.Class) int {
	n := 0
	for _, p := range c.Ports {
		if p.Serves(cl) {
			n++
		}
	}
	return n
}

// Validate reports structural problems (a class with no port, non-power-of-2
// caches, etc.).
func (c *Config) Validate() error {
	if c.DispatchWidth <= 0 || c.ROB <= 0 || c.IQ <= 0 {
		return fmt.Errorf("config %s: non-positive core structure", c.Name)
	}
	// One pass over the port map (not UnitCount per class, which rescans
	// it): a class is issueable iff any port lists it.
	var served uint64
	for _, p := range c.Ports {
		for _, cl := range p {
			served |= 1 << cl
		}
	}
	for cl := trace.Class(0); cl < trace.NumClasses; cl++ {
		if served&(1<<cl) == 0 {
			return fmt.Errorf("config %s: no port serves %v", c.Name, cl)
		}
		if c.FU[cl].Latency <= 0 {
			return fmt.Errorf("config %s: class %v has latency %d", c.Name, cl, c.FU[cl].Latency)
		}
	}
	for _, cc := range []cache.Config{c.L1I, c.L1D, c.L2, c.L3} {
		n := cc.Sets()
		if n <= 0 || n&(n-1) != 0 {
			return fmt.Errorf("config %s: cache %s set count %d not a power of two", c.Name, cc.Name, n)
		}
	}
	return nil
}

// String summarizes the configuration as a Table 6.1-style listing.
func (c *Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.2fGHz %.2fV, dispatch %d, ROB %d, IQ %d, LSQ %d, MSHR %d, fe %d\n",
		c.Name, c.FrequencyGHz, c.VoltageV, c.DispatchWidth, c.ROB, c.IQ, c.LSQ, c.MSHRs, c.FrontEndDepth)
	fmt.Fprintf(&b, "  %v\n  %v\n  %v\n  %v\n", c.L1I, c.L1D, c.L2, c.L3)
	fmt.Fprintf(&b, "  mem %.0fns bus %.2fns/line, predictor %s, prefetcher %v (table %d, degree %d)",
		c.MemLatencyNS, c.BusNSPerLine, c.Predictor, c.Prefetcher.Enabled, c.Prefetcher.TableSize, c.Prefetcher.Degree)
	return b.String()
}

// defaultFU is the reference functional-unit timing (Nehalem-like): single
// cycle integer ALUs, 3-cycle pipelined multiplies and FP adds, 5-cycle
// pipelined FP multiplies, ~20-cycle non-pipelined dividers.
func defaultFU() [trace.NumClasses]FUSpec {
	var fu [trace.NumClasses]FUSpec
	fu[trace.IntALU] = FUSpec{Latency: 1, Pipelined: true}
	fu[trace.IntMul] = FUSpec{Latency: 3, Pipelined: true}
	fu[trace.IntDiv] = FUSpec{Latency: 20, Pipelined: false}
	fu[trace.FPAdd] = FUSpec{Latency: 3, Pipelined: true}
	fu[trace.FPMul] = FUSpec{Latency: 5, Pipelined: true}
	fu[trace.FPDiv] = FUSpec{Latency: 24, Pipelined: false}
	fu[trace.Load] = FUSpec{Latency: 1, Pipelined: true} // + cache latency
	fu[trace.Store] = FUSpec{Latency: 1, Pipelined: true}
	fu[trace.Branch] = FUSpec{Latency: 1, Pipelined: true}
	fu[trace.Move] = FUSpec{Latency: 1, Pipelined: true}
	return fu
}

// portsForWidth returns an issue-port map scaled with the pipeline width:
// width 4 reproduces the Nehalem layout of Figure 3.5 (6 ports, loads on one
// dedicated port, stores on two, dividers sharing port 0).
func portsForWidth(width int) []Port {
	switch {
	case width <= 2:
		return []Port{
			{trace.IntALU, trace.IntMul, trace.FPMul, trace.FPDiv, trace.IntDiv, trace.Move},
			{trace.IntALU, trace.FPAdd, trace.Branch, trace.Move},
			{trace.Load},
			{trace.Store},
		}
	case width <= 4:
		return []Port{
			{trace.IntALU, trace.FPMul, trace.FPDiv, trace.IntDiv, trace.Move},
			{trace.IntALU, trace.IntMul, trace.FPAdd, trace.Move},
			{trace.Load},
			{trace.Store},
			{trace.Store},
			{trace.IntALU, trace.Branch, trace.Move},
		}
	default:
		return []Port{
			{trace.IntALU, trace.FPMul, trace.FPDiv, trace.IntDiv, trace.Move},
			{trace.IntALU, trace.IntMul, trace.FPAdd, trace.Move},
			{trace.Load},
			{trace.Load},
			{trace.Store},
			{trace.Store},
			{trace.IntALU, trace.Branch, trace.Move},
			{trace.IntALU, trace.FPAdd, trace.Move},
		}
	}
}

// Reference returns the Nehalem-based reference architecture of Table 6.1:
// a 4-wide core at 2.66 GHz with a 128-entry ROB and a 32 KB / 256 KB / 8 MB
// cache hierarchy.
func Reference() *Config {
	c := &Config{
		Name:          "nehalem-ref",
		FrequencyGHz:  2.66,
		VoltageV:      1.1,
		DispatchWidth: 4,
		ROB:           128,
		IQ:            36,
		LSQ:           64,
		FrontEndDepth: 5,
		MSHRs:         10,
		Ports:         portsForWidth(4),
		FU:            defaultFU(),
		L1I:           cache.Config{Name: "L1I", SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, LatencyCycles: 1},
		L1D:           cache.Config{Name: "L1D", SizeBytes: 32 << 10, Assoc: 8, LineBytes: 64, LatencyCycles: 4},
		L2:            cache.Config{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, LineBytes: 64, LatencyCycles: 10},
		L3:            cache.Config{Name: "L3", SizeBytes: 8 << 20, Assoc: 16, LineBytes: 64, LatencyCycles: 30},
		MemLatencyNS:  75,
		BusNSPerLine:  3,
		MemChannels:   1,
		Predictor:     "tournament",
		Prefetcher:    prefetch.Config{Enabled: false, TableSize: 64, Degree: 2, PageBytes: 4096, MinConfidence: 2},
	}
	return c
}

// ReferenceWithPrefetcher is the reference architecture with the stride
// prefetcher enabled (§4.9, Figure 6.18).
func ReferenceWithPrefetcher() *Config {
	c := Reference()
	c.Name = "nehalem-ref+pf"
	c.Prefetcher.Enabled = true
	return c
}

// LowPower returns the low-power core used in Figure 6.13: a narrow 2-wide
// pipeline, small windows and caches, and a low DVFS point.
func LowPower() *Config {
	c := Reference()
	c.Name = "low-power"
	c.FrequencyGHz = 1.6
	c.VoltageV = 0.9
	c.DispatchWidth = 2
	c.ROB = 48
	c.IQ = 16
	c.LSQ = 24
	c.MSHRs = 4
	c.Ports = portsForWidth(2)
	c.L1D.SizeBytes = 16 << 10
	c.L1D.Assoc = 4
	c.L2.SizeBytes = 128 << 10
	c.L3.SizeBytes = 2 << 20
	return c
}

// scaleWindow derives the dependent structure sizes from the ROB, keeping
// the reference proportions (IQ ≈ 0.28·ROB, LSQ = ROB/2).
func scaleWindow(c *Config, rob int) {
	c.ROB = rob
	c.IQ = rob * 9 / 32
	if c.IQ < 8 {
		c.IQ = 8
	}
	c.LSQ = rob / 2
	switch {
	case rob <= 64:
		c.MSHRs = 6
	case rob <= 128:
		c.MSHRs = 10
	default:
		c.MSHRs = 16
	}
}

// DesignSpace enumerates the 3^5 = 243-configuration space of Table 6.3:
// pipeline width {2,4,6} × ROB {64,128,256} × L2 {128,256,512 KB} ×
// L3 {2,4,8 MB} × frequency {2.0, 2.66, 3.33 GHz} (with voltage scaled).
func DesignSpace() []*Config {
	widths := []int{2, 4, 6}
	robs := []int{64, 128, 256}
	l2s := []int64{128 << 10, 256 << 10, 512 << 10}
	l3s := []int64{2 << 20, 4 << 20, 8 << 20}
	freqs := []float64{2.0, 2.66, 3.33}
	volts := []float64{1.0, 1.1, 1.25}

	var out []*Config
	for _, w := range widths {
		for _, rob := range robs {
			for _, l2 := range l2s {
				for _, l3 := range l3s {
					for fi, f := range freqs {
						c := Reference()
						c.Name = fmt.Sprintf("w%d-rob%d-l2_%dk-l3_%dm-f%.2f",
							w, rob, l2>>10, l3>>20, f)
						c.DispatchWidth = w
						c.Ports = portsForWidth(w)
						scaleWindow(c, rob)
						c.L2.SizeBytes = l2
						c.L3.SizeBytes = l3
						c.FrequencyGHz = f
						c.VoltageV = volts[fi]
						out = append(out, c)
					}
				}
			}
		}
	}
	return out
}

// DVFSPoint is one voltage/frequency operating point (Table 7.2). The JSON
// form is the wire spelling used by parametric-space clock axes.
type DVFSPoint struct {
	FrequencyGHz float64 `json:"frequency_ghz"`
	VoltageV     float64 `json:"voltage_v"`
}

// DVFSPoints returns the Nehalem-based DVFS settings of Table 7.2.
func DVFSPoints() []DVFSPoint {
	return []DVFSPoint{
		{1.60, 0.95},
		{2.00, 1.00},
		{2.40, 1.05},
		{2.66, 1.10},
		{3.20, 1.20},
	}
}

// WithDVFS returns a copy of c at the given operating point.
func WithDVFS(c *Config, p DVFSPoint) *Config {
	cc := *c
	cc.Name = fmt.Sprintf("%s@%.2fGHz", c.Name, p.FrequencyGHz)
	cc.FrequencyGHz = p.FrequencyGHz
	cc.VoltageV = p.VoltageV
	return &cc
}
