// Command aip is the Architecture Independent Profiler: it synthesizes a
// workload's dynamic micro-op stream and writes its micro-architecture
// independent profile as versioned JSON (the one-time profiling step of
// §2.6). The output is consumed by cmd/pmt or by mipp.LoadProfile.
//
// Usage:
//
//	aip -workload mcf -n 1000000 -o mcf.profile.json
//	aip -workload mcf -n 1000000 -store ./profile-store   # straight into a mippd store
//	aip -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"

	"mipp"
	"mipp/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aip: ")
	var (
		name     = flag.String("workload", "", "benchmark name (see -list)")
		n        = flag.Int("n", 1_000_000, "trace length in micro-ops")
		seed     = flag.Int64("seed", 0, "generator seed (0 = per-benchmark default)")
		out      = flag.String("o", "", "output JSON file (default stdout)")
		storeDir = flag.String("store", "", "write the profile into this content-addressed store (see mippd -store)")
		regName  = flag.String("name", "", "store registry name (default: the workload name)")
		micro    = flag.Int("micro", 1000, "micro-trace length in uops")
		win      = flag.Int("window", 0, "sampling window in uops (0 = auto)")
		list     = flag.Bool("list", false, "list available workloads")
	)
	flag.Parse()
	if *list {
		for _, d := range mipp.DescribeWorkloads() {
			fmt.Println(d)
		}
		return
	}
	if *name == "" {
		log.Fatal("missing -workload (try -list)")
	}
	profiler := mipp.NewProfiler(mipp.WithSeed(*seed), mipp.WithMicroTrace(*micro, *win))
	p, err := profiler.Profile(*name, *n)
	if err != nil {
		log.Fatal(err)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		info, err := st.Put(*regName, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stored %s in %s: %s (%d bytes), %d uops, %d micro-traces, entropy %.3f\n",
			info.Name, *storeDir, info.Digest, info.SizeBytes, info.Uops, info.MicroTraces, info.Entropy)
		if *out == "" {
			return
		}
	}
	if *out == "" {
		enc, err := json.Marshal(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(enc))
		return
	}
	if err := p.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (schema v%d): %d uops, %d micro-traces, entropy %.3f\n",
		*out, mipp.ProfileSchemaVersion, p.TotalUops(), p.MicroTraces(), p.Entropy())
}
