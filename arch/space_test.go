package arch_test

// Parametric-space tests: TableSpace must reproduce DesignSpace point for
// point (the reference subspace searches are validated against), indices
// must round-trip through coordinates, neighbors must be exactly the ±1
// axis moves, and the iterator must stay lazy.

import (
	"reflect"
	"testing"

	"mipp/arch"
)

func TestTableSpaceMatchesDesignSpace(t *testing.T) {
	sp := arch.TableSpace()
	want := arch.DesignSpace()
	if sp.Size() != len(want) {
		t.Fatalf("TableSpace.Size() = %d, want %d", sp.Size(), len(want))
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		got := sp.At(i)
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("TableSpace.At(%d) = %+v\nwant %+v", i, got, w)
		}
	}
}

func TestSpaceCoordsIndexRoundTrip(t *testing.T) {
	sp := &arch.Space{
		Widths:     []int{2, 4, 6},
		ROBs:       []int{64, 128},
		L3Bytes:    []int64{2 << 20, 8 << 20},
		Clocks:     []arch.DVFSPoint{{FrequencyGHz: 2.0, VoltageV: 1.0}, {FrequencyGHz: 3.2, VoltageV: 1.2}},
		Prefetcher: []bool{false, true},
	}
	n := sp.Size()
	if n != 3*2*2*2*2 {
		t.Fatalf("Size() = %d, want 48", n)
	}
	var coords []int
	for i := 0; i < n; i++ {
		coords = sp.Coords(i, coords)
		if got := sp.Index(coords); got != i {
			t.Fatalf("Index(Coords(%d)) = %d", i, got)
		}
	}
	// Prefetcher is the innermost axis: consecutive indices toggle it.
	if a, b := sp.At(0), sp.At(1); a.Prefetcher.Enabled || !b.Prefetcher.Enabled {
		t.Errorf("innermost axis: At(0).pf=%v At(1).pf=%v", a.Prefetcher.Enabled, b.Prefetcher.Enabled)
	}
	// The "+pf" suffix keeps names unique across the prefetcher axis.
	if a, b := sp.At(0).Name, sp.At(1).Name; a == b || b != a+"+pf" {
		t.Errorf("names not distinguished: %q vs %q", a, b)
	}
}

func TestSpaceNeighbors(t *testing.T) {
	sp := arch.TableSpace()
	// Index 0 is the all-minimum corner: exactly one +1 neighbor per
	// non-pinned axis (5 of them).
	n0 := sp.Neighbors(0, nil)
	if len(n0) != 5 {
		t.Fatalf("Neighbors(0) = %v, want 5 entries", n0)
	}
	var coords []int
	for _, ni := range n0 {
		coords = sp.Coords(ni, coords)
		sum := 0
		for _, c := range coords {
			sum += c
		}
		if sum != 1 {
			t.Errorf("neighbor %d has coords %v, not one step from origin", ni, coords)
		}
	}
	// An interior point has two neighbors per non-pinned axis.
	mid := sp.Index([]int{1, 1, 1, 1, 1, 0})
	if got := sp.Neighbors(mid, nil); len(got) != 10 {
		t.Errorf("interior Neighbors = %v, want 10 entries", got)
	}
}

func TestSpaceIteratorLazy(t *testing.T) {
	sp := arch.TableSpace()
	seen := 0
	for i, cfg := range sp.All() {
		if cfg == nil || cfg.Name == "" {
			t.Fatalf("All() yielded empty config at %d", i)
		}
		if seen++; seen == 7 {
			break
		}
	}
	if seen != 7 {
		t.Fatalf("iterated %d points, want 7", seen)
	}
}

func TestSpaceValidateRejectsBadAxes(t *testing.T) {
	bad := []*arch.Space{
		{L2Bytes: []int64{100 << 10}},                 // non-power-of-two sets
		{Widths: []int{0}},                            // dispatch width 0
		{Clocks: []arch.DVFSPoint{{FrequencyGHz: 0}}}, // zero clock
		{ROBs: []int{-4}},                             // negative ROB
		{Clocks: []arch.DVFSPoint{ // name-colliding frequencies
			{FrequencyGHz: 2.0, VoltageV: 1.0},
			{FrequencyGHz: 2.0, VoltageV: 1.2},
		}},
		{Clocks: []arch.DVFSPoint{ // collide after %.2f rounding
			{FrequencyGHz: 2.66, VoltageV: 1.1},
			{FrequencyGHz: 2.6649, VoltageV: 1.1},
		}},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("space %d validated; want error", i)
		}
	}
}
