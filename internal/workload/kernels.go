package workload

import "mipp/internal/trace"

// Kernel emits approximately n micro-ops of a particular behaviour into a
// Builder. Kernel instances keep state across calls so that a benchmark can
// alternate phases of the same kernel (phase analysis, §6.5) without
// duplicating static instructions.
type Kernel interface {
	// Emit appends roughly n uops to b.
	Emit(b *Builder, n int)
}

// CacheLine is the cache-line size assumed by all address-generating kernels.
const CacheLine = 64

// ---------------------------------------------------------------------------
// Streaming: sequential (unit- or fixed-stride) loads with accumulation.
// libquantum/lbm/leslie3d-style behaviour: independent long-latency misses
// (high MLP), prefetch-friendly single-stride access patterns.
// ---------------------------------------------------------------------------

// Streaming generates strided load streams over a large footprint.
type Streaming struct {
	Footprint   uint64  // bytes per lane
	Stride      uint64  // bytes between successive accesses of a lane
	Lanes       int     // independent interleaved streams (exposes MLP)
	FP          bool    // accumulate with FP instead of integer ops
	StoreEvery  int     // emit a store every k iterations (0 = never)
	Fused       float64 // fraction of loads fused with their consumer op
	Unroll      int     // iterations between loop-back branches
	WorkPerLoad int     // extra ALU uops per load

	base  []uint64
	pos   []uint64
	pc    uint64
	regs  []int
	bg    *branchGen
	iter  int
	store uint64
}

func (k *Streaming) init(b *Builder) {
	if k.pc != 0 {
		return
	}
	if k.Lanes <= 0 {
		k.Lanes = 1
	}
	if k.Stride == 0 {
		k.Stride = 8
	}
	if k.Unroll <= 0 {
		k.Unroll = 8
	}
	k.pc = b.AllocPC(8 * k.Lanes)
	k.base = make([]uint64, k.Lanes)
	k.pos = make([]uint64, k.Lanes)
	for l := 0; l < k.Lanes; l++ {
		k.base[l] = b.AllocAddr(k.Footprint)
	}
	k.store = b.AllocAddr(k.Footprint)
	// 2 regs per lane (value, accumulator) + index + scratch pair.
	k.regs = b.AllocRegs(2*k.Lanes + 3)
	k.bg = newBranchGen(64, 63, 0.01)
}

// Emit implements Kernel.
func (k *Streaming) Emit(b *Builder, n int) {
	k.init(b)
	opClass := trace.IntALU
	if k.FP {
		opClass = trace.FPAdd
	}
	idx := k.regs[2*k.Lanes]
	s1 := k.regs[2*k.Lanes+1]
	s2 := k.regs[2*k.Lanes+2]
	start := b.Len()
	for b.Len() < start+n {
		for l := 0; l < k.Lanes && b.Len() < start+n; l++ {
			val, acc := k.regs[2*l], k.regs[2*l+1]
			addr := k.base[l] + k.pos[l]
			pc := k.pc + uint64(l*32)
			if b.Rand().Float64() < k.Fused {
				// reg-mem instruction: load uop + dependent op uop.
				b.Load(pc, val, idx, addr)
				b.FusedOp(opClass, pc, acc, acc, val)
			} else {
				b.Load(pc, val, idx, addr)
				b.Op(opClass, pc+4, acc, acc, val)
			}
			for w := 0; w < k.WorkPerLoad; w++ {
				// Alternate scratch registers to keep the extra work
				// off the accumulation chain (high ILP).
				if w%2 == 0 {
					b.Op(opClass, pc+8, s1, s1, val)
				} else {
					b.Op(opClass, pc+12, s2, s2, val)
				}
			}
			k.pos[l] += k.Stride
			if k.pos[l]+8 > k.Footprint {
				k.pos[l] = 0
			}
		}
		k.iter++
		if k.StoreEvery > 0 && k.iter%k.StoreEvery == 0 {
			st := k.store + (k.pos[0] % k.Footprint)
			b.Store(k.pc+uint64(8*k.Lanes*4), idx, k.regs[1], st)
		}
		if k.iter%k.Unroll == 0 {
			b.Op(trace.IntALU, k.pc+uint64(8*k.Lanes*4)+8, idx, idx, -1)
			b.Branch(k.pc+uint64(8*k.Lanes*4)+12, idx, k.bg.next(b.Rand()))
		}
	}
}

// ---------------------------------------------------------------------------
// Chase: pointer chasing. mcf/omnetpp-style behaviour: serialized dependent
// loads (MLP limited to the number of chains), random non-prefetchable
// addresses, data-dependent branches with long resolution times.
// ---------------------------------------------------------------------------

// Chase generates dependent pseudo-random load chains over a footprint.
// HotFrac models the locality real pointer codes exhibit: that fraction of
// hops lands in a small cache-resident hot region (recently visited nodes),
// the rest walk the full footprint.
type Chase struct {
	Footprint   uint64  // bytes
	Chains      int     // parallel pointer chains (bounds achievable MLP)
	WorkPerHop  int     // ALU uops per hop
	BranchEvery int     // data-dependent branch every k hops (0 = never)
	BranchEps   float64 // entropy noise of the data-dependent branch
	Fused       float64 // fraction of hops whose work op is fused
	HotFrac     float64 // fraction of hops within the hot region
	HotBytes    uint64  // hot-region size (default 256 KB)

	pc       uint64
	regs     []int
	idxs     []uint64
	hotIdxs  []uint64
	bg       *branchGen
	lines    uint64
	hotLines uint64
	hop      int
	baseAddr uint64
	hotBase  uint64
}

func (k *Chase) init(b *Builder) {
	if k.pc != 0 {
		return
	}
	if k.Chains <= 0 {
		k.Chains = 1
	}
	if k.HotBytes == 0 {
		k.HotBytes = 256 * KB
	}
	k.pc = b.AllocPC(8 * k.Chains)
	// Footprint in lines, rounded down to a power of two so the LCG walk
	// below has full period.
	k.lines = 1
	for k.lines*2*CacheLine <= k.Footprint {
		k.lines *= 2
	}
	k.hotLines = 1
	for k.hotLines*2*CacheLine <= k.HotBytes {
		k.hotLines *= 2
	}
	k.baseAddr = b.AllocAddr(k.lines * CacheLine)
	k.hotBase = b.AllocAddr(k.hotLines * CacheLine)
	k.regs = b.AllocRegs(k.Chains + 2)
	k.idxs = make([]uint64, k.Chains)
	k.hotIdxs = make([]uint64, k.Chains)
	for c := range k.idxs {
		k.idxs[c] = uint64(c) * (k.lines / uint64(k.Chains+1))
		k.hotIdxs[c] = uint64(c) * 17
	}
	k.bg = newBranchGen(2, 1, k.BranchEps)
}

func (k *Chase) next(b *Builder, c int) uint64 {
	// Full-period LCG over the power-of-two line count: a ≡ 1 (mod 4),
	// odd increment. Consecutive addresses look random to the stride
	// classifier while visiting every line before repeating.
	if k.HotFrac > 0 && b.Rand().Float64() < k.HotFrac {
		k.hotIdxs[c] = (k.hotIdxs[c]*5 + 12345) & (k.hotLines - 1)
		return k.hotBase + k.hotIdxs[c]*CacheLine
	}
	k.idxs[c] = (k.idxs[c]*5 + 12345) & (k.lines - 1)
	return k.baseAddr + k.idxs[c]*CacheLine
}

// Emit implements Kernel.
func (k *Chase) Emit(b *Builder, n int) {
	k.init(b)
	scr := k.regs[k.Chains]
	scr2 := k.regs[k.Chains+1]
	start := b.Len()
	for b.Len() < start+n {
		for c := 0; c < k.Chains && b.Len() < start+n; c++ {
			ptr := k.regs[c]
			pc := k.pc + uint64(c*32)
			// The next pointer is loaded through the current one:
			// a true load-to-load dependence.
			b.Load(pc, ptr, ptr, k.next(b, c))
			for w := 0; w < k.WorkPerHop; w++ {
				if w == 0 && b.Rand().Float64() < k.Fused {
					b.FusedOp(trace.IntALU, pc, scr, ptr, scr)
				} else if w%2 == 0 {
					b.Op(trace.IntALU, pc+4, scr, ptr, scr)
				} else {
					b.Op(trace.IntALU, pc+8, scr2, scr2, -1)
				}
			}
			k.hop++
			if k.BranchEvery > 0 && k.hop%k.BranchEvery == 0 {
				// Condition depends on the freshly loaded pointer:
				// the branch resolves only after the load returns.
				b.Branch(pc+12, ptr, k.bg.next(b.Rand()))
			}
		}
	}
}

// ---------------------------------------------------------------------------
// RandomAccess: independent loads at pseudo-random addresses.
// GUPS/milc-style behaviour: high MLP, non-prefetchable.
// ---------------------------------------------------------------------------

// RandomAccess generates independent loads at random lines of a footprint.
// HotFrac of the accesses land in a small cache-resident hot region.
type RandomAccess struct {
	Footprint   uint64
	WorkPerLoad int
	StoreEvery  int
	FP          bool
	HotFrac     float64
	HotBytes    uint64 // default 256 KB

	pc       uint64
	regs     []int
	lines    uint64
	hotLines uint64
	state    uint64
	iter     int
	bg       *branchGen
	base     uint64
	hotBase  uint64
}

func (k *RandomAccess) init(b *Builder) {
	if k.pc != 0 {
		return
	}
	if k.HotBytes == 0 {
		k.HotBytes = 256 * KB
	}
	k.pc = b.AllocPC(16)
	k.lines = 1
	for k.lines*2*CacheLine <= k.Footprint {
		k.lines *= 2
	}
	k.hotLines = 1
	for k.hotLines*2*CacheLine <= k.HotBytes {
		k.hotLines *= 2
	}
	k.base = b.AllocAddr(k.lines * CacheLine)
	k.hotBase = b.AllocAddr(k.hotLines * CacheLine)
	k.regs = b.AllocRegs(4)
	k.state = 0x9E3779B97F4A7C15
	k.bg = newBranchGen(32, 31, 0.02)
}

func (k *RandomAccess) nextAddr(b *Builder) uint64 {
	// xorshift-style mix; independent of loaded data, so consecutive
	// loads carry no dependences and can overlap freely.
	k.state ^= k.state << 13
	k.state ^= k.state >> 7
	k.state ^= k.state << 17
	if k.HotFrac > 0 && b.Rand().Float64() < k.HotFrac {
		return k.hotBase + (k.state%k.hotLines)*CacheLine
	}
	return k.base + (k.state%k.lines)*CacheLine
}

// Emit implements Kernel.
func (k *RandomAccess) Emit(b *Builder, n int) {
	k.init(b)
	val, acc, idx, scr := k.regs[0], k.regs[1], k.regs[2], k.regs[3]
	opClass := trace.IntALU
	if k.FP {
		opClass = trace.FPAdd
	}
	start := b.Len()
	for b.Len() < start+n {
		// Address computation (cheap, off the critical path).
		b.Op(trace.IntALU, k.pc, idx, idx, -1)
		b.Load(k.pc+4, val, idx, k.nextAddr(b))
		b.Op(opClass, k.pc+8, acc, acc, val)
		for w := 0; w < k.WorkPerLoad; w++ {
			// Alternate targets so the filler work stays parallel.
			if w%2 == 0 {
				b.Op(opClass, k.pc+12, scr, scr, val)
			} else {
				b.Op(opClass, k.pc+16, idx, idx, -1)
			}
		}
		k.iter++
		if k.StoreEvery > 0 && k.iter%k.StoreEvery == 0 {
			b.Store(k.pc+16, idx, acc, k.nextAddr(b))
		}
		if k.iter%16 == 0 {
			b.Branch(k.pc+20, idx, k.bg.next(b.Rand()))
		}
	}
}

// ---------------------------------------------------------------------------
// Compute: arithmetic chains. gamess/namd/povray-style behaviour: low miss
// rates (L1-resident working set), ILP bounded by chain structure, optional
// non-pipelined divide pressure.
// ---------------------------------------------------------------------------

// Compute generates register-dominated arithmetic with parallel dependence
// chains of a configurable depth.
type Compute struct {
	Width     int     // parallel chains (ILP)
	FP        bool    // FP vs integer arithmetic
	MulRatio  float64 // fraction of chain ops that are multiplies
	DivEvery  int     // emit a divide every k ops (0 = never)
	LoadEvery int     // emit an L1-resident load every k ops (0 = never)
	Fused     float64 // fraction of ops that are fused uop pairs
	Footprint uint64  // small footprint for the resident loads
	BranchEps float64 // loop-branch noise

	pc   uint64
	regs []int
	base uint64
	pos  uint64
	op   int
	bg   *branchGen
}

func (k *Compute) init(b *Builder) {
	if k.pc != 0 {
		return
	}
	if k.Width <= 0 {
		k.Width = 4
	}
	if k.Footprint == 0 {
		k.Footprint = 16 << 10
	}
	k.pc = b.AllocPC(8 * k.Width)
	k.base = b.AllocAddr(k.Footprint)
	k.regs = b.AllocRegs(k.Width + 2)
	k.bg = newBranchGen(16, 15, k.BranchEps)
}

// Emit implements Kernel.
func (k *Compute) Emit(b *Builder, n int) {
	k.init(b)
	add, mul, div := trace.IntALU, trace.IntMul, trace.IntDiv
	if k.FP {
		add, mul, div = trace.FPAdd, trace.FPMul, trace.FPDiv
	}
	ld := k.regs[k.Width]
	idx := k.regs[k.Width+1]
	start := b.Len()
	for b.Len() < start+n {
		for c := 0; c < k.Width && b.Len() < start+n; c++ {
			r := k.regs[c]
			pc := k.pc + uint64(c*32)
			k.op++
			class := add
			if b.Rand().Float64() < k.MulRatio {
				class = mul
			}
			if k.DivEvery > 0 && k.op%k.DivEvery == 0 {
				class = div
			}
			if b.Rand().Float64() < k.Fused {
				b.Op(class, pc, r, r, ld)
				b.FusedOp(add, pc, r, r, -1)
			} else {
				b.Op(class, pc+4, r, r, ld)
			}
			if k.LoadEvery > 0 && k.op%k.LoadEvery == 0 {
				k.pos = (k.pos + 24) % k.Footprint
				b.Load(pc+8, ld, idx, k.base+k.pos)
			}
		}
		if k.op%(k.Width*8) < k.Width {
			b.Op(trace.IntALU, k.pc+1024, idx, idx, -1)
			b.Branch(k.pc+1028, idx, k.bg.next(b.Rand()))
		}
	}
}

// ---------------------------------------------------------------------------
// Branchy: control-dominated integer code. gobmk/sjeng-style behaviour: high
// branch density, several static branches with distinct predictabilities.
// ---------------------------------------------------------------------------

// Branchy generates integer code with a configurable density of
// hard-to-predict branches.
type Branchy struct {
	BranchFrac float64   // target fraction of branch uops
	Eps        []float64 // per-static-branch entropy noise levels
	Footprint  uint64    // resident data footprint
	LoadFrac   float64   // fraction of loads

	pc   uint64
	regs []int
	base uint64
	pos  uint64
	gens []*branchGen
	iter int
}

func (k *Branchy) init(b *Builder) {
	if k.pc != 0 {
		return
	}
	if len(k.Eps) == 0 {
		k.Eps = []float64{0.05, 0.15, 0.30}
	}
	if k.Footprint == 0 {
		k.Footprint = 64 << 10
	}
	k.pc = b.AllocPC(8 + 4*len(k.Eps))
	k.base = b.AllocAddr(k.Footprint)
	k.regs = b.AllocRegs(4)
	for i, e := range k.Eps {
		k.gens = append(k.gens, newBranchGen(3+i, 2, e))
	}
}

// Emit implements Kernel.
func (k *Branchy) Emit(b *Builder, n int) {
	k.init(b)
	cond, acc, idx, val := k.regs[0], k.regs[1], k.regs[2], k.regs[3]
	start := b.Len()
	for b.Len() < start+n {
		k.iter++
		// Work between branches: sized so branches hit BranchFrac.
		work := 1
		if k.BranchFrac > 0 {
			work = int(1/k.BranchFrac) - 1
		}
		if work < 1 {
			work = 1
		}
		for w := 0; w < work && b.Len() < start+n; w++ {
			if k.LoadFrac > 0 && b.Rand().Float64() < k.LoadFrac*float64(work+1)/float64(work) {
				k.pos = (k.pos + 72) % k.Footprint
				b.Load(k.pc, val, idx, k.base+k.pos)
				b.Op(trace.IntALU, k.pc+4, cond, cond, val)
			} else if w%3 == 2 {
				b.Op(trace.Move, k.pc+8, acc, cond, -1)
			} else {
				b.Op(trace.IntALU, k.pc+12, cond, cond, acc)
			}
		}
		g := k.gens[k.iter%len(k.gens)]
		bpc := k.pc + 32 + uint64((k.iter%len(k.gens))*4)
		b.Branch(bpc, cond, g.next(b.Rand()))
	}
}

// ---------------------------------------------------------------------------
// Stencil: multiple constant-stride FP streams with stores. bwaves/zeusmp/
// GemsFDTD-style behaviour: several distinct strides (prefetchable), fused
// FP uops (high uops/instruction), longer dependence chains.
// ---------------------------------------------------------------------------

// Stencil generates a multi-stream strided FP kernel, C[i] = f(A[i±1], B[i]).
type Stencil struct {
	Footprint uint64
	Streams   int      // distinct input arrays, each its own stride
	ChainLen  int      // FP ops chained per element (dependence depth)
	Fused     float64  // fraction of fused uop pairs
	StridesB  []uint64 // per-stream strides in bytes (default 8,16,24,…)

	pc    uint64
	regs  []int
	bases []uint64
	out   uint64
	pos   uint64
	iter  int
	bg    *branchGen
}

func (k *Stencil) init(b *Builder) {
	if k.pc != 0 {
		return
	}
	if k.Streams <= 0 {
		k.Streams = 3
	}
	if k.ChainLen <= 0 {
		k.ChainLen = 3
	}
	if len(k.StridesB) == 0 {
		for s := 0; s < k.Streams; s++ {
			k.StridesB = append(k.StridesB, uint64(8*(s+1)))
		}
	}
	k.pc = b.AllocPC(8*k.Streams + 8)
	for s := 0; s < k.Streams; s++ {
		k.bases = append(k.bases, b.AllocAddr(k.Footprint))
	}
	k.out = b.AllocAddr(k.Footprint)
	k.regs = b.AllocRegs(k.Streams + 3)
	k.bg = newBranchGen(128, 127, 0.005)
}

// Emit implements Kernel.
func (k *Stencil) Emit(b *Builder, n int) {
	k.init(b)
	accum := k.regs[k.Streams]
	idx := k.regs[k.Streams+1]
	start := b.Len()
	for b.Len() < start+n {
		k.iter++
		// Load one element from each input stream.
		for s := 0; s < k.Streams && b.Len() < start+n; s++ {
			addr := k.bases[s] + (k.pos*k.StridesB[s])%k.Footprint
			pc := k.pc + uint64(s*32)
			if b.Rand().Float64() < k.Fused {
				b.Load(pc, k.regs[s], idx, addr)
				b.FusedOp(trace.FPMul, pc, accum, accum, k.regs[s])
			} else {
				b.Load(pc+4, k.regs[s], idx, addr)
				b.Op(trace.FPMul, pc+8, accum, accum, k.regs[s])
			}
		}
		// Chained FP combine: the dependence depth of the kernel.
		for cc := 0; cc < k.ChainLen && b.Len() < start+n; cc++ {
			b.Op(trace.FPAdd, k.pc+uint64(k.Streams*32)+uint64(cc*4), accum, accum, k.regs[cc%k.Streams])
		}
		b.Store(k.pc+2048, idx, accum, k.out+(k.pos*8)%k.Footprint)
		k.pos++
		if k.iter%16 == 0 {
			b.Op(trace.IntALU, k.pc+2052, idx, idx, -1)
			b.Branch(k.pc+2056, idx, k.bg.next(b.Rand()))
		}
	}
}

// ---------------------------------------------------------------------------
// Gather: indexed sparse access, load idx = I[i]; load v = A[idx].
// soplex/sphinx3-style behaviour: a streaming index array plus dependent
// random data accesses — MLP between iterations but a two-load dependence
// inside each.
// ---------------------------------------------------------------------------

// Gather generates indexed (sparse-matrix style) accesses. HotFrac of the
// data accesses land in a small hot region.
type Gather struct {
	IndexFootprint uint64 // streaming index array size
	DataFootprint  uint64 // randomly indexed data array size
	FP             bool
	WorkPerElem    int
	StoreEvery     int
	HotFrac        float64
	HotBytes       uint64 // default 256 KB

	pc       uint64
	regs     []int
	ibase    uint64
	dbase    uint64
	hotBase  uint64
	dpos     uint64
	pos      uint64
	lines    uint64
	hotLines uint64
	iter     int
	bg       *branchGen
}

func (k *Gather) init(b *Builder) {
	if k.pc != 0 {
		return
	}
	if k.HotBytes == 0 {
		k.HotBytes = 256 * KB
	}
	k.pc = b.AllocPC(16)
	k.ibase = b.AllocAddr(k.IndexFootprint)
	k.lines = 1
	for k.lines*2*CacheLine <= k.DataFootprint {
		k.lines *= 2
	}
	k.hotLines = 1
	for k.hotLines*2*CacheLine <= k.HotBytes {
		k.hotLines *= 2
	}
	k.dbase = b.AllocAddr(k.lines * CacheLine)
	k.hotBase = b.AllocAddr(k.hotLines * CacheLine)
	k.regs = b.AllocRegs(7)
	k.dpos = 0x1234567
	k.bg = newBranchGen(64, 63, 0.01)
}

// Emit implements Kernel.
func (k *Gather) Emit(b *Builder, n int) {
	k.init(b)
	idxv, val, acc, base := k.regs[0], k.regs[1], k.regs[2], k.regs[3]
	scrs := k.regs[4:7]
	opClass := trace.IntALU
	if k.FP {
		opClass = trace.FPAdd
	}
	start := b.Len()
	for b.Len() < start+n {
		k.iter++
		// Streaming index load (prefetchable, unit stride).
		b.Load(k.pc, idxv, base, k.ibase+(k.pos*8)%k.IndexFootprint)
		k.pos++
		// Dependent random data load.
		k.dpos ^= k.dpos << 13
		k.dpos ^= k.dpos >> 7
		k.dpos ^= k.dpos << 17
		daddr := k.dbase + (k.dpos%k.lines)*CacheLine
		if k.HotFrac > 0 && b.Rand().Float64() < k.HotFrac {
			daddr = k.hotBase + (k.dpos%k.hotLines)*CacheLine
		}
		b.Load(k.pc+4, val, idxv, daddr)
		b.Op(opClass, k.pc+8, acc, acc, val)
		for w := 0; w < k.WorkPerElem; w++ {
			// Rotate scratch registers: the filler work carries ILP.
			s := scrs[w%len(scrs)]
			b.Op(opClass, k.pc+12+uint64(4*(w%len(scrs))), s, s, val)
		}
		if k.StoreEvery > 0 && k.iter%k.StoreEvery == 0 {
			b.Store(k.pc+16, base, acc, k.ibase+(k.pos*8)%k.IndexFootprint)
		}
		if k.iter%32 == 0 {
			b.Op(trace.IntALU, k.pc+20, base, base, -1)
			b.Branch(k.pc+24, base, k.bg.next(b.Rand()))
		}
	}
}
