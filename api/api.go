// Package api defines the versioned wire protocol of the mipp evaluation
// service: the JSON request/response DTOs spoken by the in-process
// mipp.Engine, the mippd HTTP daemon and the mipp/client remote client.
//
// Every request and response carries a schema_version field. Peers reject
// versions they do not understand rather than mispredict silently — the same
// contract mipp.Profile uses for its serialized form. The DTOs are plain
// data: all model evaluation happens behind the mipp.Evaluator interface,
// whose local and remote implementations both speak these types, which is
// what makes in-process and over-the-wire evaluation byte-identical.
package api

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"mipp/arch"
)

// SchemaVersion is the wire-protocol version spoken by this build. It covers
// every request/response DTO in this package; any field addition that
// changes the meaning of existing fields must bump it.
const SchemaVersion = 1

// CheckVersion validates a peer's schema_version field.
func CheckVersion(got int) error {
	if got != SchemaVersion {
		return fmt.Errorf("api: unsupported schema version %d (this build speaks %d)", got, SchemaVersion)
	}
	return nil
}

// ConfigSpec names one processor configuration to evaluate: either a stock
// configuration by name ("reference", "reference+pf", "lowpower") or a
// complete inline description. Exactly one of the two must be set.
type ConfigSpec struct {
	// Name selects a stock configuration (see arch.ByName).
	Name string `json:"name,omitempty"`
	// Config is a complete inline processor description.
	Config *arch.Config `json:"config,omitempty"`
}

// Resolve returns the processor configuration the spec denotes.
func (cs ConfigSpec) Resolve() (*arch.Config, error) {
	switch {
	case cs.Config != nil && cs.Name != "":
		return nil, fmt.Errorf("api: config spec sets both name %q and an inline config", cs.Name)
	case cs.Config != nil:
		return cs.Config, nil
	case cs.Name != "":
		if c, ok := arch.ByName(cs.Name); ok {
			return c, nil
		}
		return nil, fmt.Errorf("api: unknown stock config %q", cs.Name)
	}
	return nil, fmt.Errorf("api: empty config spec (need name or config)")
}

// SpaceSpec expands to a family of configurations server-side, so sweeping
// the paper's design space does not require shipping 243 inline configs —
// and, in its "parametric" form, names combinatorially large spaces that
// are never shipped at all.
type SpaceSpec struct {
	// Kind selects the family: "design" (the 3^5 space of Table 6.3),
	// "dvfs" (the reference core at each Table 7.2 operating point) or
	// "parametric" (an explicit lazy arch.Space in the Space field).
	Kind string `json:"kind"`
	// Stride samples every stride-th configuration of the "design" or
	// "parametric" enumeration (<= 1 keeps all).
	Stride int `json:"stride,omitempty"`
	// Space is the axes of a "parametric" space. Search requests walk it
	// lazily; sweep/batch/pareto requests materialize it and are bounded
	// by MaxMaterializedSpace.
	Space *arch.Space `json:"space,omitempty"`
}

// MaxMaterializedSpace bounds how many configurations a parametric space
// may expand to on the synchronous sweep/batch/pareto paths. Larger spaces
// must go through /v1/search, which never materializes them.
const MaxMaterializedSpace = 1 << 16

// Expand enumerates the configuration family.
func (s SpaceSpec) Expand() ([]*arch.Config, error) {
	if s.Stride < 0 {
		return nil, fmt.Errorf("api: negative space stride %d", s.Stride)
	}
	switch s.Kind {
	case "design":
		if s.Space != nil {
			return nil, fmt.Errorf("api: space axes are only valid for the parametric kind, not %q", s.Kind)
		}
		return arch.DesignSpaceSample(s.Stride), nil
	case "dvfs":
		if s.Stride != 0 || s.Space != nil {
			return nil, fmt.Errorf("api: stride and space axes are not valid for kind %q", s.Kind)
		}
		// Materialize through the same parametric enumeration the lazy
		// (search) path walks, so the two paths agree on configuration
		// names and results join across endpoints.
		sp := arch.DVFSSpace()
		out := make([]*arch.Config, 0, sp.Size())
		for _, c := range sp.All() {
			out = append(out, c)
		}
		return out, nil
	case "parametric":
		lazy := s
		lazy.Stride = 0
		sp, err := lazy.Lazy()
		if err != nil {
			return nil, err
		}
		stride := s.Stride
		if stride < 1 {
			stride = 1
		}
		n := sp.Size()
		if (n+stride-1)/stride > MaxMaterializedSpace {
			return nil, fmt.Errorf("api: parametric space has %d points (max %d materialized); submit it to /v1/search instead", n, MaxMaterializedSpace)
		}
		out := make([]*arch.Config, 0, (n+stride-1)/stride)
		for i := 0; i < n; i += stride {
			out = append(out, sp.At(i))
		}
		return out, nil
	}
	return nil, fmt.Errorf("api: unknown config space %q (want design, dvfs or parametric)", s.Kind)
}

// Lazy returns the spec as a parametric space without materializing it —
// the form the search subsystem walks. Stride is rejected for every kind:
// a search strategy owns its own sampling.
func (s SpaceSpec) Lazy() (*arch.Space, error) {
	if s.Stride != 0 {
		return nil, fmt.Errorf("api: stride is not valid for a lazy space (a search strategy owns its sampling)")
	}
	if s.Space != nil && s.Kind != "parametric" {
		return nil, fmt.Errorf("api: space axes are only valid for the parametric kind, not %q", s.Kind)
	}
	switch s.Kind {
	case "design":
		return arch.TableSpace(), nil
	case "dvfs":
		return arch.DVFSSpace(), nil
	case "parametric":
		if s.Space == nil {
			return nil, fmt.Errorf("api: parametric space spec has no axes")
		}
		if err := s.Space.Validate(); err != nil {
			return nil, err
		}
		return s.Space, nil
	}
	return nil, fmt.Errorf("api: unknown config space %q (want design, dvfs or parametric)", s.Kind)
}

// ExpandConfigs resolves explicit specs and appends the optional space
// expansion — the shared config vocabulary of sweep, batch and Pareto
// requests.
func ExpandConfigs(specs []ConfigSpec, space *SpaceSpec) ([]*arch.Config, error) {
	out := make([]*arch.Config, 0, len(specs))
	for i, cs := range specs {
		c, err := cs.Resolve()
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		out = append(out, c)
	}
	if space != nil {
		family, err := space.Expand()
		if err != nil {
			return nil, err
		}
		out = append(out, family...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("api: no configurations (need configs or space)")
	}
	return out, nil
}

// PredictorSpec is the serializable form of the mipp.Predictor options: it
// selects model variants and ablations per request. The zero value is the
// paper's default model. Engines key their predictor caches on Key(), so
// requests with equal specs share one compiled predictor.
type PredictorSpec struct {
	// MLPMode selects the memory-level-parallelism model: "" or "stride"
	// (default), "cold-miss", "none".
	MLPMode string `json:"mlp_mode,omitempty"`
	// Combined evaluates one averaged profile instead of per-micro-trace
	// evaluation (the ISPASS-2015 baseline, Figure 6.4).
	Combined bool `json:"combined,omitempty"`
	// BranchMissRate overrides the entropy model with a fixed per-branch
	// misprediction rate.
	BranchMissRate *float64 `json:"branch_miss_rate,omitempty"`
	// NoLLCChain disables the chained-LLC-hit penalty (§4.8 ablation).
	NoLLCChain bool `json:"no_llc_chain,omitempty"`
	// NoBusQueue disables the memory-bus queuing delay (§4.7 ablation).
	NoBusQueue bool `json:"no_bus_queue,omitempty"`
	// DispatchModel restricts the effective-dispatch-rate terms: "" or
	// "full" (default), "instructions", "uops", "critical".
	DispatchModel string `json:"dispatch_model,omitempty"`
	// Prefetcher forces the stride prefetcher on or off for every
	// evaluated configuration, overriding the configuration's setting.
	Prefetcher *bool `json:"prefetcher,omitempty"`
}

// MLP mode and dispatch model wire names.
var (
	mlpModes       = map[string]bool{"": true, "stride": true, "cold-miss": true, "none": true}
	dispatchModels = map[string]bool{"": true, "full": true, "instructions": true, "uops": true, "critical": true}
)

// Validate rejects unknown mode names early, with the full accepted set in
// the message.
func (s PredictorSpec) Validate() error {
	if !mlpModes[s.MLPMode] {
		return fmt.Errorf("api: unknown mlp_mode %q (want %s)", s.MLPMode, nameList(mlpModes))
	}
	if !dispatchModels[s.DispatchModel] {
		return fmt.Errorf("api: unknown dispatch_model %q (want %s)", s.DispatchModel, nameList(dispatchModels))
	}
	return nil
}

func nameList(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		if n != "" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Key returns a canonical cache key: two specs denoting the same predictor
// always produce the same key, regardless of how their JSON was spelled.
// The key is the JSON encoding of the normalized spec (defaults filled in),
// so fields added to PredictorSpec participate automatically instead of
// silently colliding distinct option sets in the predictor cache.
func (s PredictorSpec) Key() string {
	if s.MLPMode == "" {
		s.MLPMode = "stride"
	}
	if s.DispatchModel == "" {
		s.DispatchModel = "full"
	}
	key, err := json.Marshal(s)
	if err != nil {
		// PredictorSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("api: marshal predictor spec: %v", err))
	}
	return string(key)
}

// CPIStack attributes predicted cycles to the CPI components of Figure 6.1.
type CPIStack struct {
	Base   float64 `json:"base"`
	Branch float64 `json:"branch"`
	ICache float64 `json:"icache"`
	LLCHit float64 `json:"llc"`
	DRAM   float64 `json:"dram"`
}

// PowerStack is the predicted power breakdown in watts (Figure 6.7).
type PowerStack struct {
	Static float64 `json:"static"`
	Core   float64 `json:"core"`
	FU     float64 `json:"fu"`
	Cache  float64 `json:"cache"`
	DRAM   float64 `json:"dram"`
	BPred  float64 `json:"bpred"`
}

// Result is one complete prediction on the wire: the model outputs plus
// every derived metric, so clients need no model knowledge to consume it.
type Result struct {
	Workload     string  `json:"workload"`
	Config       string  `json:"config"`
	FrequencyGHz float64 `json:"frequency_ghz"`

	Cycles       float64 `json:"cycles"`
	Uops         float64 `json:"uops"`
	Instructions float64 `json:"instructions"`
	CPI          float64 `json:"cpi"`
	TimeSeconds  float64 `json:"time_seconds"`

	CPIStack CPIStack   `json:"cpi_stack"`
	Power    PowerStack `json:"power"`

	Watts        float64 `json:"watts"`
	EnergyJoules float64 `json:"energy_joules"`
	EDP          float64 `json:"edp"`
	ED2P         float64 `json:"ed2p"`

	Deff           float64 `json:"deff"`
	MLP            float64 `json:"mlp"`
	BranchMissRate float64 `json:"branch_miss_rate"`

	// MicroCPI is the per-micro-trace CPI for phase analysis; populated
	// only when the request asks for it.
	MicroCPI []float64 `json:"micro_cpi,omitempty"`
}

// Point is one design on the (time, power) plane; lower is better in both.
type Point struct {
	Config      string  `json:"config"`
	TimeSeconds float64 `json:"time_seconds"`
	Watts       float64 `json:"watts"`
}

// ItemError reports one failed configuration inside an otherwise successful
// batch.
type ItemError struct {
	// Index is the position in the expanded configuration list.
	Index int `json:"index"`
	// Config is the configuration's name, when it has one.
	Config string `json:"config,omitempty"`
	Error  string `json:"error"`
}

// PredictRequest evaluates one (workload, configuration) pair.
type PredictRequest struct {
	SchemaVersion int           `json:"schema_version"`
	Workload      string        `json:"workload"`
	Config        ConfigSpec    `json:"config"`
	Options       PredictorSpec `json:"options"`
	// MicroCPI asks for the per-micro-trace CPI series.
	MicroCPI bool `json:"micro_cpi,omitempty"`
}

// Validate checks version and shape; config resolution happens server-side.
func (r *PredictRequest) Validate() error {
	if err := CheckVersion(r.SchemaVersion); err != nil {
		return err
	}
	if r.Workload == "" {
		return fmt.Errorf("api: predict request has no workload")
	}
	return r.Options.Validate()
}

// PredictResponse carries one prediction.
type PredictResponse struct {
	SchemaVersion int     `json:"schema_version"`
	Result        *Result `json:"result"`
}

// SweepRequest evaluates one workload over many configurations.
type SweepRequest struct {
	SchemaVersion int           `json:"schema_version"`
	Workload      string        `json:"workload"`
	Configs       []ConfigSpec  `json:"configs,omitempty"`
	Space         *SpaceSpec    `json:"space,omitempty"`
	Options       PredictorSpec `json:"options"`
	// Workers caps the evaluation worker pool (0 = engine default).
	Workers int `json:"workers,omitempty"`
}

// Validate checks version and shape.
func (r *SweepRequest) Validate() error {
	if err := CheckVersion(r.SchemaVersion); err != nil {
		return err
	}
	if r.Workload == "" {
		return fmt.Errorf("api: sweep request has no workload")
	}
	if len(r.Configs) == 0 && r.Space == nil {
		return fmt.Errorf("api: sweep request has no configurations")
	}
	return r.Options.Validate()
}

// SweepResponse carries per-config results aligned with the expanded
// configuration list: results[i] is nil exactly when errors mentions index
// i, so partial failures do not discard the rest of the sweep.
type SweepResponse struct {
	SchemaVersion int         `json:"schema_version"`
	Workload      string      `json:"workload"`
	Results       []*Result   `json:"results"`
	Errors        []ItemError `json:"errors,omitempty"`
}

// BatchRequest is the engine's native unit of work: the cross product of
// workloads × configurations under one option set, evaluated by one worker
// pool with per-item error reporting.
type BatchRequest struct {
	SchemaVersion int           `json:"schema_version"`
	Workloads     []string      `json:"workloads"`
	Configs       []ConfigSpec  `json:"configs,omitempty"`
	Space         *SpaceSpec    `json:"space,omitempty"`
	Options       PredictorSpec `json:"options"`
	Workers       int           `json:"workers,omitempty"`
}

// Validate checks version and shape.
func (r *BatchRequest) Validate() error {
	if err := CheckVersion(r.SchemaVersion); err != nil {
		return err
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("api: batch request has no workloads")
	}
	for i, w := range r.Workloads {
		if w == "" {
			return fmt.Errorf("api: batch request workload %d is empty", i)
		}
	}
	if len(r.Configs) == 0 && r.Space == nil {
		return fmt.Errorf("api: batch request has no configurations")
	}
	return r.Options.Validate()
}

// BatchItem is one (workload, configuration) outcome; exactly one of Result
// and Error is set.
type BatchItem struct {
	Workload string  `json:"workload"`
	Config   string  `json:"config,omitempty"`
	Result   *Result `json:"result,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// BatchResponse lists items in row-major order: all configurations of
// workloads[0] first, then workloads[1], and so on — len(Items) is always
// len(workloads) × len(expanded configs).
type BatchResponse struct {
	SchemaVersion int         `json:"schema_version"`
	Items         []BatchItem `json:"items"`
}

// ParetoRequest sweeps one workload and extracts design-space decisions:
// the Pareto frontier, and optionally the fastest design under a power cap
// (Table 7.1) and the ED²P-optimal design (§7.3).
type ParetoRequest struct {
	SchemaVersion int           `json:"schema_version"`
	Workload      string        `json:"workload"`
	Configs       []ConfigSpec  `json:"configs,omitempty"`
	Space         *SpaceSpec    `json:"space,omitempty"`
	Options       PredictorSpec `json:"options"`
	// CapWatts, when set, also reports the fastest design within the cap.
	CapWatts *float64 `json:"cap_watts,omitempty"`
	Workers  int      `json:"workers,omitempty"`
}

// Validate checks version and shape.
func (r *ParetoRequest) Validate() error {
	if err := CheckVersion(r.SchemaVersion); err != nil {
		return err
	}
	if r.Workload == "" {
		return fmt.Errorf("api: pareto request has no workload")
	}
	if len(r.Configs) == 0 && r.Space == nil {
		return fmt.Errorf("api: pareto request has no configurations")
	}
	return r.Options.Validate()
}

// ParetoResponse carries the swept points and the extracted decisions.
type ParetoResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Workload      string `json:"workload"`
	// Points holds every successfully evaluated design.
	Points []Point `json:"points"`
	// Front is the non-dominated subset, sorted by time.
	Front []Point `json:"front"`
	// BestUnderCap is the fastest design within cap_watts (nil when no
	// cap was given or nothing fits).
	BestUnderCap *Point `json:"best_under_cap,omitempty"`
	// BestByED2P minimizes energy-delay-squared.
	BestByED2P *Point      `json:"best_by_ed2p,omitempty"`
	Errors     []ItemError `json:"errors,omitempty"`
}

// WorkloadInfo summarizes one registered profile.
type WorkloadInfo struct {
	Name         string  `json:"name"`
	Workload     string  `json:"workload"`
	Uops         int64   `json:"uops"`
	Instructions int64   `json:"instructions"`
	Entropy      float64 `json:"entropy"`
	MicroTraces  int     `json:"micro_traces"`
}

// WorkloadsResponse lists registered profiles sorted by name.
type WorkloadsResponse struct {
	SchemaVersion int            `json:"schema_version"`
	Workloads     []WorkloadInfo `json:"workloads"`
}

// RegisterProfileRequest registers a workload profile with an engine:
// either an inline pre-collected profile (the versioned envelope written by
// mipp.Profile.Save / cmd/aip) or a built-in workload the server profiles
// itself. Exactly one of Profile and Workload must be set.
type RegisterProfileRequest struct {
	SchemaVersion int `json:"schema_version"`
	// Name registers the profile under this name; empty defaults to the
	// profile's workload name.
	Name string `json:"name,omitempty"`
	// Profile is an inline versioned profile envelope.
	Profile json.RawMessage `json:"profile,omitempty"`
	// Workload names a built-in workload for server-side profiling.
	Workload string `json:"workload,omitempty"`
	// Uops is the trace length for server-side profiling.
	Uops int `json:"uops,omitempty"`
	// Seed is the workload-generator seed (0 = the workload's default).
	Seed int64 `json:"seed,omitempty"`
}

// Validate checks version and that exactly one source is given.
func (r *RegisterProfileRequest) Validate() error {
	if err := CheckVersion(r.SchemaVersion); err != nil {
		return err
	}
	switch {
	case len(r.Profile) > 0 && r.Workload != "":
		return fmt.Errorf("api: register request sets both an inline profile and workload %q", r.Workload)
	case len(r.Profile) > 0:
		return nil
	case r.Workload != "":
		if r.Uops <= 0 {
			return fmt.Errorf("api: register request for %q needs a positive uops count", r.Workload)
		}
		return nil
	}
	return fmt.Errorf("api: register request has neither profile nor workload")
}

// RegisterProfileResponse acknowledges a registration.
type RegisterProfileResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	Workload      string `json:"workload"`
	Uops          int64  `json:"uops"`
}

// ProfileInfo is one registered profile's metadata, served by
// GET /v1/profiles/{name}. Digest is the content address of the profile's
// canonical schema-v1 JSON envelope ("sha256:" + hex), identical whether
// the profile lives in memory or in a store — so replicas sharing a store
// (or a client re-uploading) can compare catalogs by digest alone.
type ProfileInfo struct {
	Name         string  `json:"name"`
	Workload     string  `json:"workload"`
	Digest       string  `json:"digest"`
	SizeBytes    int64   `json:"size_bytes"`
	Uops         int64   `json:"uops"`
	Instructions int64   `json:"instructions"`
	Entropy      float64 `json:"entropy"`
	MicroTraces  int     `json:"micro_traces"`
	// Resident reports whether the decoded profile is currently held in
	// memory (always true without a store; false after LRU eviction —
	// the next evaluation reloads it transparently).
	Resident bool `json:"resident"`
}

// ProfileInfoResponse carries one profile's metadata.
type ProfileInfoResponse struct {
	SchemaVersion int         `json:"schema_version"`
	Profile       ProfileInfo `json:"profile"`
}

// DeleteProfileResponse acknowledges DELETE /v1/profiles/{name}; a missing
// name is a 404 error envelope instead.
type DeleteProfileResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	Deleted       bool   `json:"deleted"`
}

// ErrorResponse is the uniform error envelope of the HTTP service.
type ErrorResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
}
