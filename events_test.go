package mipp_test

// Search event-stream tests at the engine layer: a job's retained events
// replay to late subscribers, sequence numbers resume without loss or
// duplication, the terminal event carries the same report the job API
// serves, and unknown jobs fail with the sentinel.

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"mipp"
	"mipp/api"
)

// drainEvents collects a subscription until the engine closes it.
func drainEvents(t *testing.T, ch <-chan api.SearchEvent) []api.SearchEvent {
	t.Helper()
	var events []api.SearchEvent
	timeout := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return events
			}
			events = append(events, ev)
		case <-timeout:
			t.Fatalf("event stream did not close; %d events so far", len(events))
		}
	}
}

func TestSearchEventsLifecycle(t *testing.T) {
	e := searchEngine(t)
	ctx := context.Background()
	sub, err := e.SubmitSearch(ctx, searchRequest(api.StrategySpec{Kind: "genetic", Seed: 11, Population: 16, Generations: 6}))
	if err != nil {
		t.Fatal(err)
	}
	id := sub.Job.ID

	// Subscribe immediately: replay-from-zero plus live events.
	ch, cancel, err := e.SearchEvents(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	events := drainEvents(t, ch)

	if len(events) < 3 {
		t.Fatalf("only %d events for a multi-generation run", len(events))
	}
	progress, fronts := 0, 0
	for i, ev := range events {
		if ev.JobID != id || ev.SchemaVersion != api.SchemaVersion {
			t.Fatalf("event %d = %+v: wrong job or version", i, ev)
		}
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d, want %d (gapless from 1)", i, ev.Seq, i+1)
		}
		switch ev.Type {
		case api.SearchEventProgress:
			progress++
		case api.SearchEventFront:
			fronts++
		}
		if ev.Terminal() != (i == len(events)-1) {
			t.Fatalf("event %d (%s) terminal at the wrong position", i, ev.Type)
		}
	}
	if progress < 2 {
		t.Errorf("%d progress events, want >= 2 (one per generation)", progress)
	}
	if fronts < 1 {
		t.Errorf("%d front events, want >= 1", fronts)
	}

	terminal := events[len(events)-1]
	if terminal.Type != api.JobDone || terminal.Report == nil {
		t.Fatalf("terminal event = %+v, want done with a report", terminal)
	}
	// The terminal report is the job API's report, byte for byte.
	final, err := e.SearchJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(terminal.Report)
	want, _ := json.Marshal(final.Job.Report)
	if string(got) != string(want) {
		t.Errorf("terminal report differs from the polled report:\n%.300s\n%.300s", got, want)
	}

	// A subscriber arriving after completion replays everything and the
	// stream closes immediately.
	ch2, cancel2, err := e.SearchEvents(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	replay := drainEvents(t, ch2)
	a, _ := json.Marshal(events)
	b, _ := json.Marshal(replay)
	if string(a) != string(b) {
		t.Error("late subscriber's replay differs from the live stream")
	}

	// Resuming after a seq delivers exactly the rest.
	after := events[1].Seq
	ch3, cancel3, err := e.SearchEvents(id, after)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel3()
	rest := drainEvents(t, ch3)
	if len(rest) != len(events)-2 {
		t.Fatalf("resume after seq %d delivered %d events, want %d", after, len(rest), len(events)-2)
	}
	if len(rest) > 0 && rest[0].Seq != after+1 {
		t.Errorf("resume starts at seq %d, want %d", rest[0].Seq, after+1)
	}
}

func TestSearchEventsUnknownJob(t *testing.T) {
	e := searchEngine(t)
	if _, _, err := e.SearchEvents("job-nope-1", 0); !errors.Is(err, mipp.ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

func TestSearchJobIDsUnique(t *testing.T) {
	e := searchEngine(t)
	ctx := context.Background()
	seen := make(map[string]bool)
	for i := 0; i < 3; i++ {
		sub, err := e.SubmitSearch(ctx, searchRequest(api.StrategySpec{Kind: "random", Seed: int64(i + 1), Samples: 10}))
		if err != nil {
			t.Fatal(err)
		}
		if seen[sub.Job.ID] {
			t.Fatalf("duplicate job id %s", sub.Job.ID)
		}
		seen[sub.Job.ID] = true
		if _, err := mipp.WaitSearch(ctx, e, sub.Job.ID, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// Two engines must not collide either: ids embed a per-engine token.
	other := searchEngine(t)
	sub, err := other.SubmitSearch(ctx, searchRequest(api.StrategySpec{Kind: "random", Seed: 9, Samples: 10}))
	if err != nil {
		t.Fatal(err)
	}
	if seen[sub.Job.ID] {
		t.Errorf("job id %s collides across engines", sub.Job.ID)
	}
	if _, err := mipp.WaitSearch(ctx, other, sub.Job.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
