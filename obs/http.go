package obs

import (
	"net/http"
)

// Shared HTTP instrument names: the server and the router register the same
// families (per-route labels keep them apart), so dashboards and the CI
// smoke assertions use one vocabulary for both tiers.
const (
	httpRequestsName = "mipp_http_requests_total"
	httpRequestsHelp = "HTTP requests served, by route and status-code class."
	httpSecondsName  = "mipp_http_request_seconds"
	httpSecondsHelp  = "HTTP request latency in seconds, by route."
	httpInflightName = "mipp_http_inflight"
	httpInflightHelp = "HTTP requests currently being served, by route."
)

// codeClasses are the status-code class label values, indexed by status/100.
var codeClasses = [...]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// HTTPStats instruments one route: request counts by status-code class, a
// latency histogram, and an in-flight gauge. Build one per route at mux
// construction time (the pattern is not recoverable from an outer
// middleware) and wrap the route's handler with Wrap.
type HTTPStats struct {
	requests [len(codeClasses)]*Counter
	seconds  *Histogram
	inflight *Gauge
}

// NewHTTPStats registers the per-route series on r. All five code classes
// are pre-registered so scrapes expose zero-valued series from boot —
// monotonicity checks never race the first error.
func NewHTTPStats(r *Registry, route string) *HTTPStats {
	h := &HTTPStats{}
	for i := 1; i < len(codeClasses); i++ {
		h.requests[i] = r.Counter(httpRequestsName, httpRequestsHelp,
			Label{"route", route}, Label{"code", codeClasses[i]})
	}
	h.seconds = r.Histogram(httpSecondsName, httpSecondsHelp, nil, Label{"route", route})
	h.inflight = r.Gauge(httpInflightName, httpInflightHelp, Label{"route", route})
	return h
}

// codeRecorder captures the response status for the class counter. Flush is
// forwarded so the streaming handlers (SSE, NDJSON) pass through unbuffered.
type codeRecorder struct {
	http.ResponseWriter
	status int
}

func (w *codeRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *codeRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Wrap instruments next: in-flight gauge around the call, latency
// observation and code-class count after it.
func (h *HTTPStats) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.inflight.Add(1)
		t := StartTimer()
		cr := &codeRecorder{ResponseWriter: w}
		next.ServeHTTP(cr, r)
		t.ObserveInto(h.seconds)
		h.inflight.Add(-1)
		if cr.status == 0 {
			cr.status = http.StatusOK
		}
		if class := cr.status / 100; class >= 1 && class < len(codeClasses) {
			h.requests[class].Inc()
		}
	})
}

// WrapFunc is Wrap for http.HandlerFunc.
func (h *HTTPStats) WrapFunc(next http.HandlerFunc) http.Handler { return h.Wrap(next) }
