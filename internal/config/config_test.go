package config

import (
	"testing"

	"mipp/internal/trace"
)

func TestReferenceValidates(t *testing.T) {
	for _, c := range []*Config{Reference(), ReferenceWithPrefetcher(), LowPower()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestDesignSpaceSizeAndValidity(t *testing.T) {
	space := DesignSpace()
	if len(space) != 243 {
		t.Fatalf("design space has %d points, want 3^5 = 243", len(space))
	}
	names := map[string]bool{}
	for _, c := range space {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if names[c.Name] {
			t.Errorf("duplicate config name %s", c.Name)
		}
		names[c.Name] = true
	}
}

func TestMemConfigScalesWithFrequency(t *testing.T) {
	c := Reference()
	base := c.MemConfig().LatencyCycles
	c.FrequencyGHz = 2 * c.FrequencyGHz
	if got := c.MemConfig().LatencyCycles; got < base*2-2 || got > base*2+2 {
		t.Errorf("doubling frequency should double memory cycles: %d -> %d", base, got)
	}
}

func TestPortsCoverAllClasses(t *testing.T) {
	for _, w := range []int{2, 4, 6} {
		c := Reference()
		c.DispatchWidth = w
		c.Ports = portsForWidth(w)
		for cl := trace.Class(0); cl < trace.NumClasses; cl++ {
			if c.UnitCount(cl) == 0 {
				t.Errorf("width %d: class %v has no port", w, cl)
			}
		}
	}
}

func TestDVFS(t *testing.T) {
	pts := DVFSPoints()
	if len(pts) != 5 {
		t.Fatalf("DVFS points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FrequencyGHz <= pts[i-1].FrequencyGHz || pts[i].VoltageV < pts[i-1].VoltageV {
			t.Error("DVFS points must have increasing f and non-decreasing V")
		}
	}
	c := WithDVFS(Reference(), pts[0])
	if c.FrequencyGHz != pts[0].FrequencyGHz || c.VoltageV != pts[0].VoltageV {
		t.Error("WithDVFS did not apply the point")
	}
	if Reference().FrequencyGHz == c.FrequencyGHz {
		t.Error("WithDVFS mutated the base config")
	}
}
