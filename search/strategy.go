package search

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"mipp/arch"
)

// defaultChunk is the generation size exhaustive and random enumeration use:
// large enough that the batched kernel's scratch reuse pays off, small
// enough for responsive progress and cancellation.
const defaultChunk = 1024

// Exhaustive evaluates every point of the space in enumeration order — the
// right strategy for small (reference) spaces and the ground truth the
// samplers are scored against.
type Exhaustive struct {
	// Chunk is the generation size (default 1024).
	Chunk int
}

// Name implements Strategy.
func (Exhaustive) Name() string { return "exhaustive" }

// Search implements Strategy.
//
//mipp:hotpath
func (x Exhaustive) Search(ctx context.Context, r *Runner) error {
	n := r.SpaceSize()
	if rem := r.Remaining(); n > rem {
		//mipp:allow hotpath cold admission error, before any evaluation runs
		return fmt.Errorf("search: exhaustive needs %d evaluations but budget leaves %d (use a sampling strategy)", n, rem)
	}
	chunk := x.Chunk
	if chunk <= 0 {
		chunk = defaultChunk
	}
	indices := make([]int, 0, chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		indices = indices[:0]
		for i := lo; i < hi; i++ {
			indices = append(indices, i)
		}
		if _, err := r.Evaluate(ctx, indices); err != nil {
			return err
		}
	}
	return nil
}

// Random draws distinct points uniformly at random — the unbiased sampler,
// and the throughput baseline the allocation budget in CI is enforced on.
type Random struct {
	// Samples is the number of distinct points to draw (0 = the run's
	// budget; the whole space if that is unbounded too).
	Samples int
	// Chunk is the generation size (default 1024).
	Chunk int
}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Search implements Strategy.
//
//mipp:hotpath
func (s Random) Search(ctx context.Context, r *Runner) error {
	n := r.SpaceSize()
	want := s.Samples
	if want <= 0 || want > r.Remaining() {
		want = r.Remaining()
	}
	if want > n {
		want = n
	}
	if want <= 0 {
		//mipp:allow hotpath cold admission error, before any evaluation runs
		return fmt.Errorf("search: random sampling with no samples and no budget")
	}
	chunk := s.Chunk
	if chunk <= 0 {
		chunk = defaultChunk
	}
	// Distinct draws by rejection: against a bitset (Size()/8 bytes) for
	// spaces where that is cheap, against a want-sized set for the huge
	// ones — the memory must scale with the sample, never with the space.
	const bitsetMax = 1 << 26 // 8 MiB of bitset
	var taken func(i int) bool
	if n <= bitsetMax {
		drawn := make([]uint64, (n+63)/64)
		taken = func(i int) bool {
			if drawn[i/64]&(1<<(i%64)) != 0 {
				return true
			}
			drawn[i/64] |= 1 << (i % 64)
			return false
		}
	} else {
		drawn := make(map[int]struct{}, want)
		taken = func(i int) bool {
			if _, ok := drawn[i]; ok {
				return true
			}
			drawn[i] = struct{}{}
			return false
		}
	}
	rng := r.RNG()
	indices := make([]int, 0, chunk)
	for done := 0; done < want; {
		indices = indices[:0]
		for len(indices) < chunk && done+len(indices) < want {
			if i := rng.Intn(n); !taken(i) {
				indices = append(indices, i)
			}
		}
		if _, err := r.Evaluate(ctx, indices); err != nil {
			return err
		}
		done += len(indices)
	}
	return nil
}

// HillClimb is seeded multi-restart steepest-descent over the space's axis
// neighborhood: from a random start, evaluate all one-step neighbors as one
// generation and move to the best strict improvement, restarting when stuck.
// On the monotone-ish response surfaces of micro-architecture spaces it
// converges in a handful of generations per restart.
type HillClimb struct {
	// Restarts is the number of random starting points (default 8).
	Restarts int
}

// Name implements Strategy.
func (HillClimb) Name() string { return "hill" }

// Search implements Strategy.
//
//mipp:hotpath
func (h HillClimb) Search(ctx context.Context, r *Runner) error {
	restarts := h.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	n := r.SpaceSize()
	rng := r.RNG()
	var neigh []int
	for rs := 0; rs < restarts; rs++ {
		if r.Remaining() < 1 {
			return nil
		}
		// Prefer an unvisited start so restarts explore instead of
		// re-climbing a known hill (bounded retries keep it O(1)).
		start := rng.Intn(n)
		for try := 0; try < 16 && r.Seen(start); try++ {
			start = rng.Intn(n)
		}
		evs, err := r.Evaluate(ctx, []int{start})
		if err != nil {
			return err
		}
		cur := evs[0]
		for {
			neigh = r.Space().Neighbors(cur.Index, neigh[:0])
			if len(neigh) == 0 || r.Remaining() < len(neigh) {
				break
			}
			evs, err := r.Evaluate(ctx, neigh)
			if err != nil {
				return err
			}
			best := evs[0]
			for _, e := range evs[1:] {
				if Better(e, best) {
					best = e
				}
			}
			if !Better(best, cur) {
				break
			}
			cur = best
		}
	}
	return nil
}

// Genetic is a seeded generational genetic algorithm over axis-coordinate
// genomes: tournament selection, uniform crossover, per-axis mutation and
// elitism. Each generation's population is evaluated as one batch, which is
// exactly the shape Predictor.PredictBatch is fastest at.
type Genetic struct {
	// Population is the genome count per generation (default 48).
	Population int
	// Generations caps the generation count (default 32).
	Generations int
	// MutationRate is the per-axis mutation probability (default 0.15).
	MutationRate float64
	// Elite is how many best genomes survive unchanged (default 2).
	Elite int
	// TournamentK is the selection tournament size (default 3).
	TournamentK int
}

// Name implements Strategy.
func (Genetic) Name() string { return "genetic" }

// Search implements Strategy.
//
//mipp:hotpath
func (g Genetic) Search(ctx context.Context, r *Runner) error {
	space := r.Space()
	n := space.Size()
	pop := g.Population
	if pop <= 0 {
		pop = 48
	}
	if pop > n {
		pop = n
	}
	gens := g.Generations
	if gens <= 0 {
		gens = 32
	}
	mut := g.MutationRate
	if mut <= 0 {
		mut = 0.15
	}
	// Clamp elitism against the final population size — pop may have just
	// shrunk to a small space's cardinality.
	elite := g.Elite
	if elite <= 0 {
		elite = 2
	}
	if elite > pop/2 {
		elite = pop / 2
	}
	tourK := g.TournamentK
	if tourK <= 0 {
		tourK = 3
	}
	dims := space.Dims()
	rng := r.RNG()

	genomes := make([][]int, pop)
	next := make([][]int, pop)
	for i := range genomes {
		//mipp:allow hotpath one-time population setup, not per-generation
		genomes[i] = make([]int, arch.NumSpaceAxes)
		//mipp:allow hotpath one-time population setup, not per-generation
		next[i] = make([]int, arch.NumSpaceAxes)
		for ax, d := range dims {
			genomes[i][ax] = rng.Intn(d)
		}
	}
	indices := make([]int, pop)
	order := make([]int, pop)
	// One ranking closure for the whole run: it reads evs through the
	// captured variable, which each generation reassigns, so sorting
	// allocates nothing per generation.
	var evs []Eval
	rank := func(a, b int) bool { return Better(evs[order[a]], evs[order[b]]) }

	for gen := 0; gen < gens; gen++ {
		if r.Remaining() < pop {
			return nil
		}
		for i, g := range genomes {
			indices[i] = space.Index(g)
		}
		var err error
		evs, err = r.Evaluate(ctx, indices)
		if err != nil {
			return err
		}

		// Rank the population; order is deterministic because Better is a
		// total order and ties fall back to the population slot.
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, rank)

		if gen == gens-1 {
			return nil
		}

		// Elites carry over; the rest are bred by tournament selection,
		// uniform crossover and per-axis mutation.
		for i := 0; i < elite; i++ {
			copy(next[i], genomes[order[i]])
		}
		for i := elite; i < pop; i++ {
			pa := genomes[tournament(rng, evs, tourK)]
			pb := genomes[tournament(rng, evs, tourK)]
			child := next[i]
			for ax, d := range dims {
				if rng.Intn(2) == 0 {
					child[ax] = pa[ax]
				} else {
					child[ax] = pb[ax]
				}
				if d > 1 && rng.Float64() < mut {
					child[ax] = rng.Intn(d)
				}
			}
		}
		genomes, next = next, genomes
	}
	return nil
}

// tournament picks the best of k uniformly drawn population members and
// returns its population slot.
//
//mipp:hotpath
func tournament(rng *rand.Rand, evs []Eval, k int) int {
	best := rng.Intn(len(evs))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(evs))
		if Better(evs[c], evs[best]) {
			best = c
		}
	}
	return best
}
