// Package perf defines the performance-accounting types shared by the
// cycle-level reference simulator and the analytical model: CPI stacks
// (where the cycles go, §6.4) and activity factors (what the power model
// consumes, §3.6 and §4.10).
package perf

import (
	"fmt"
	"strings"

	"mipp/internal/trace"
)

// Component enumerates CPI-stack components. The set matches the stacks of
// Figure 6.1: the base component (useful dispatch plus core contention),
// branch misprediction recovery, instruction-cache stalls, chained LLC-hit
// stalls and DRAM stalls (including memory-bus queuing).
type Component int

// CPI stack components.
const (
	Base Component = iota
	BranchComp
	ICache
	LLCHit
	DRAM
	NumComponents
)

var componentNames = [NumComponents]string{"base", "branch", "icache", "llc", "dram"}

// String names the component.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// CPIStack attributes execution cycles to components.
type CPIStack struct {
	// Cycles per component.
	Cycles [NumComponents]float64
}

// Total returns the total cycle count.
func (s *CPIStack) Total() float64 {
	t := 0.0
	for _, c := range s.Cycles {
		t += c
	}
	return t
}

// Add accumulates other into s.
func (s *CPIStack) Add(other *CPIStack) {
	for i := range s.Cycles {
		s.Cycles[i] += other.Cycles[i]
	}
}

// Scale multiplies every component by f.
func (s *CPIStack) Scale(f float64) {
	for i := range s.Cycles {
		s.Cycles[i] *= f
	}
}

// PerInstruction returns the stack normalized to CPI components for a given
// number of macro-instructions.
func (s *CPIStack) PerInstruction(instructions int64) CPIStack {
	out := *s
	if instructions > 0 {
		out.Scale(1 / float64(instructions))
	}
	return out
}

// Fraction returns component c's share of the total.
func (s *CPIStack) Fraction(c Component) float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return s.Cycles[c] / t
}

// String formats the stack as "total (base=…, branch=…, …)".
func (s *CPIStack) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.3f (", s.Total())
	for i := Component(0); i < NumComponents; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%.3f", i, s.Cycles[i])
	}
	b.WriteString(")")
	return b.String()
}

// Activity holds the activity factors the McPAT-style power model consumes:
// how often each processor structure is exercised (§3.6, Eq 3.16).
type Activity struct {
	Cycles         float64
	UopsDispatched float64
	UopsCommitted  float64
	// PerClass counts issued uops per class (functional-unit activity).
	PerClass [trace.NumClasses]float64
	// Cache accesses and misses per level (data side), plus L1I.
	L1IAccesses float64
	L1IMisses   float64
	L1DAccesses float64
	L1DMisses   float64
	L2Accesses  float64
	L2Misses    float64
	L3Accesses  float64
	L3Misses    float64
	// DRAMAccesses counts line transfers to/from main memory.
	DRAMAccesses float64
	// BranchLookups counts branch-predictor reads.
	BranchLookups float64
	// PrefetchIssued counts prefetch requests.
	PrefetchIssued float64
}

// Add accumulates other into a.
func (a *Activity) Add(other *Activity) {
	a.Cycles += other.Cycles
	a.UopsDispatched += other.UopsDispatched
	a.UopsCommitted += other.UopsCommitted
	for i := range a.PerClass {
		a.PerClass[i] += other.PerClass[i]
	}
	a.L1IAccesses += other.L1IAccesses
	a.L1IMisses += other.L1IMisses
	a.L1DAccesses += other.L1DAccesses
	a.L1DMisses += other.L1DMisses
	a.L2Accesses += other.L2Accesses
	a.L2Misses += other.L2Misses
	a.L3Accesses += other.L3Accesses
	a.L3Misses += other.L3Misses
	a.DRAMAccesses += other.DRAMAccesses
	a.BranchLookups += other.BranchLookups
	a.PrefetchIssued += other.PrefetchIssued
}
