package perf

import "testing"

func TestCPIStack(t *testing.T) {
	var s CPIStack
	s.Cycles[Base] = 100
	s.Cycles[DRAM] = 50
	if s.Total() != 150 {
		t.Error("total")
	}
	if f := s.Fraction(DRAM); f != 50.0/150 {
		t.Errorf("fraction = %v", f)
	}
	per := s.PerInstruction(50)
	if per.Cycles[Base] != 2 {
		t.Errorf("per-instr base = %v", per.Cycles[Base])
	}
	var o CPIStack
	o.Cycles[Base] = 1
	s.Add(&o)
	if s.Cycles[Base] != 101 {
		t.Error("add")
	}
	s.Scale(2)
	if s.Cycles[Base] != 202 {
		t.Error("scale")
	}
}

func TestActivityAdd(t *testing.T) {
	var a, b Activity
	a.Cycles = 10
	b.Cycles = 5
	b.L1DAccesses = 7
	a.Add(&b)
	if a.Cycles != 15 || a.L1DAccesses != 7 {
		t.Error("activity add")
	}
}
