// Package prefetch implements the per-PC stride prefetcher of §4.9: a
// limited-size table tracks the last address and stride of recent static
// loads; once a load's stride is confirmed, the next lines along the stride
// are prefetched, but never across a DRAM page boundary.
package prefetch

// Config parameterizes the stride prefetcher.
type Config struct {
	Enabled bool
	// TableSize is the number of static loads tracked concurrently; loads
	// whose recurrence distance exceeds the table are untrackable (§4.9).
	TableSize int
	// Degree is how many strides ahead a confirmed entry prefetches.
	Degree int
	// PageBytes bounds prefetches to a DRAM page.
	PageBytes uint64
	// MinConfidence is the number of consecutive identical strides needed
	// before prefetching starts (2 in the paper's example).
	MinConfidence int
}

// DefaultConfig is the reference stride prefetcher (64-entry table,
// degree-2, 4 KB pages).
func DefaultConfig() Config {
	return Config{Enabled: true, TableSize: 64, Degree: 2, PageBytes: 4096, MinConfidence: 2}
}

type entry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int
	lruTick  uint64
}

// Stride is a per-PC stride prefetcher with an LRU-managed table.
type Stride struct {
	cfg   Config
	table map[uint64]*entry
	tick  uint64
	// Issued counts prefetch requests, an activity factor for power.
	Issued int64
}

// NewStride builds a stride prefetcher; a nil-equivalent disabled prefetcher
// is returned when cfg.Enabled is false.
func NewStride(cfg Config) *Stride {
	if cfg.TableSize <= 0 {
		cfg.TableSize = 64
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 4096
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 2
	}
	return &Stride{cfg: cfg, table: make(map[uint64]*entry, cfg.TableSize)}
}

// Config returns the prefetcher configuration.
func (p *Stride) Config() Config { return p.cfg }

// Train observes a demand load by static pc to addr and returns the
// addresses to prefetch (possibly none). Addresses crossing the DRAM page of
// the trigger access are suppressed.
func (p *Stride) Train(pc uint64, addr uint64) []uint64 {
	if !p.cfg.Enabled {
		return nil
	}
	p.tick++
	e, ok := p.table[pc]
	if !ok {
		// Evict the LRU entry if the table is full: loads that recur
		// further apart than the table capacity are not trackable.
		if len(p.table) >= p.cfg.TableSize {
			var victim *entry
			for _, cand := range p.table {
				if victim == nil || cand.lruTick < victim.lruTick {
					victim = cand
				}
			}
			delete(p.table, victim.pc)
		}
		p.table[pc] = &entry{pc: pc, lastAddr: addr, lruTick: p.tick}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < p.cfg.MinConfidence {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
	}
	e.lastAddr = addr
	e.lruTick = p.tick
	if e.conf < p.cfg.MinConfidence || e.stride == 0 {
		return nil
	}
	// Issue up to Degree prefetches along the stride, within the page.
	page := addr / p.cfg.PageBytes
	var out []uint64
	for d := 1; d <= p.cfg.Degree; d++ {
		next := uint64(int64(addr) + int64(d)*e.stride)
		if next/p.cfg.PageBytes != page {
			break
		}
		out = append(out, next)
		p.Issued++
	}
	return out
}

// Reset clears the table and counters.
func (p *Stride) Reset() {
	p.table = make(map[uint64]*entry, p.cfg.TableSize)
	p.tick = 0
	p.Issued = 0
}
