// Package mipp reproduces "Micro-architecture independent analytical
// processor performance and power modeling" (Van den Steen et al.,
// ISPASS 2015) and its thesis extensions, behind a small public façade:
//
//   - Profiler collects a workload's micro-architecture independent Profile
//     in one pass (instruction mix, dependence chains, linear branch
//     entropy, reuse-distance and stride distributions). Profiling happens
//     once per workload; the Profile serializes to versioned JSON.
//   - Predictor, built from a Profile via functional options
//     (WithEntropyFits, WithMLPMode, WithPrefetcher, ...), compiles the
//     profile once — StatStack curves, per-micro-trace MLP models, memo
//     tables — and then evaluates the extended interval model for any
//     processor configuration in microseconds, returning a Result that
//     bundles cycles, the CPI stack, activity factors and the power stack.
//     PredictBatch runs many configurations through one reused evaluation
//     kernel, byte-identical to N single Predict calls.
//   - Sweep fans a Predictor out over many configurations on a worker pool
//     — contiguous batches through the PredictBatch kernel — with
//     deterministic ordering and context cancellation between configs,
//     returning Results (Points/Best*/WriteCSV); ParetoFront,
//     BestUnderPowerCap, BestByED2P and CompareFronts turn the results
//     into design-space decisions (Chapter 7).
//   - Engine turns the library into a servable system: a concurrency-safe
//     registry of named Profiles that lazily compiles and caches one
//     Predictor per (workload, option set) and answers batched
//     workloads × configs requests (Evaluate) expressed in the versioned
//     wire DTOs of mipp/api. Engine implements Evaluator; mipp/client
//     implements the same interface against a remote mippd daemon
//     (mipp/server + cmd/mippd), so in-process and over-the-wire
//     evaluation are interchangeable and byte-identical. An Engine backed
//     by a ProfileStore (WithEngineStore; implemented by the
//     content-addressed on-disk store in mipp/store, mippd -store) writes
//     registrations through durably and lazy-loads unknown names, so a
//     restarted daemon serves its whole catalog — LRU-bounded residency,
//     transparent reload — without re-profiling.
//   - The search subsystem (mipp/search) spends that evaluation speed on
//     purpose: lazy parametric spaces (arch.Space) that are never
//     materialized, seeded pluggable strategies (exhaustive, random,
//     hill-climbing, genetic) with multi-objective fitness and power/area
//     constraints, driven through NewSearchEvaluator onto the batched
//     kernel. Engine runs searches as asynchronous jobs (SubmitSearch /
//     SearchJob / CancelSearch — the Searcher interface, served at
//     /v1/search), and the same seed yields a byte-identical Report
//     locally, remotely and at any worker count.
//
// Processor descriptions live in mipp/arch (the Table 6.1 reference core,
// the 243-point design space of Table 6.3, DVFS operating points, and
// parametric Spaces), and Simulate exposes the cycle-level out-of-order
// reference simulator used as ground truth.
//
// Everything below the façade is implementation detail under internal/: the
// one-pass profiler (internal/profiler), the interval model and MLP models
// (internal/core, internal/mlp), the StatStack cache and branch-entropy
// models (internal/statstack, internal/branch), the power backend
// (internal/power), the reference simulator (internal/ooo) and the
// design-space machinery (internal/dse, internal/empirical). The experiment
// harness (internal/exp) regenerates every table and figure of the paper's
// evaluation through the same Sweep code path users call; the top-level
// benchmark suite (bench_test.go) and cmd/experiments drive it.
//
// See README.md for a quickstart, DESIGN.md for the model architecture and
// EXPERIMENTS.md for reproducing the paper's evaluation.
package mipp
