package api

import "fmt"

// The store-replication vocabulary: a mippd backed by an object-capable
// profile store (mipp/store) exposes its catalog for peers under
// /v1/store — an index listing plus content-addressed object GET/PUT/
// DELETE by digest. mipp/store/remote is the consumer: it implements
// mipp.ProfileStore against these endpoints, so a second daemon can run
// diskless against the first one's catalog.
//
// Change notification is by generation: every index rewrite bumps a
// monotonic counter, the index response carries it (and an ETag derived
// from it), and a conditional GET with If-None-Match answers 304 while
// nothing changed — the remote analogue of the local store's
// stat-and-reload staleness check.

// StoreIndexResponse is the catalog listing served by GET /v1/store/index.
type StoreIndexResponse struct {
	SchemaVersion int `json:"schema_version"`
	// Generation is the index's monotonic change token; it bumps on every
	// registration and deletion.
	Generation uint64 `json:"generation"`
	// Profiles lists every stored profile's metadata, sorted by name.
	Profiles []ProfileInfo `json:"profiles"`
}

// StorePutObjectResponse acknowledges PUT /v1/store/objects/{digest}: the
// authoritative stored metadata (the server re-derives the canonical
// envelope, so its digest wins) and the index generation after the write.
type StorePutObjectResponse struct {
	SchemaVersion int         `json:"schema_version"`
	Generation    uint64      `json:"generation"`
	Profile       ProfileInfo `json:"profile"`
}

// StoreDeleteObjectResponse acknowledges DELETE /v1/store/objects/{digest},
// listing every name that referenced the object.
type StoreDeleteObjectResponse struct {
	SchemaVersion int      `json:"schema_version"`
	Generation    uint64   `json:"generation"`
	Deleted       []string `json:"deleted"`
}

// StoreETag renders an index generation as the strong ETag the store
// endpoints use for conditional requests.
func StoreETag(generation uint64) string {
	return fmt.Sprintf("\"g%d\"", generation)
}
