package mipp

import (
	"context"

	"mipp/internal/ooo"
	"mipp/internal/power"
)

// SimOptions configures a reference-simulator run.
type SimOptions = ooo.Options

// SimResult is the outcome of a cycle-level reference simulation: measured
// cycles, CPI stack and activity factors, directly comparable with a
// Predictor's Result.
type SimResult = ooo.Result

// Simulate runs the cycle-level out-of-order reference simulator — the
// ground truth the analytical model is validated against — on a synthesized
// stream.
func Simulate(cfg *Config, stream *Stream, opts SimOptions) (*SimResult, error) {
	return ooo.Simulate(cfg, stream, opts)
}

// SimulateContext is Simulate with cancellation: a canceled context
// abandons the run promptly with the context's error wrapped. The fidelity
// sampler and any server-triggered ground-truth run use this entry point.
func SimulateContext(ctx context.Context, cfg *Config, stream *Stream, opts SimOptions) (*SimResult, error) {
	return ooo.SimulateContext(ctx, cfg, stream, opts)
}

// Energy returns the energy in joules for a run of the given duration at
// the stack's power.
func Energy(s PowerStack, seconds float64) float64 { return power.Energy(s, seconds) }

// EDP returns the energy-delay product (J·s).
func EDP(s PowerStack, seconds float64) float64 { return power.EDP(s, seconds) }

// ED2P returns the energy-delay-squared product (J·s²).
func ED2P(s PowerStack, seconds float64) float64 { return power.ED2P(s, seconds) }
