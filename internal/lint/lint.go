// Package lint is mipplint: a suite of static analyzers that mechanically
// enforce the repository's cross-cutting invariants — deterministic
// (byte-identical) output, allocation-free hot paths, Engine-level lock
// ordering, and errors.Is-compatible sentinel errors — at the AST level,
// before any golden test runs.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) so the analyzers could be lifted onto the
// upstream framework unchanged; it is self-contained on the standard
// library because this module carries no third-party dependencies. Loading
// (go list -export + the gc export-data importer) lives in load.go, the
// //mipp:hotpath and //mipp:allow annotation grammar in annotations.go, and
// each analyzer in its own file.
//
// Every diagnostic can be suppressed at the line it fires on (or the line
// above) with an escape hatch that must name the analyzer and a reason:
//
//	//mipp:allow <analyzer> <reason...>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check, API-compatible with the x/tools analysis
// vocabulary: Run inspects a Pass and reports diagnostics through it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //mipp:allow
	// comments.
	Name string
	// Doc is the one-paragraph description printed by `mipplint help`.
	Doc string
	// Run inspects one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package: the syntax, the type
// information, and the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path ("" when analyzing loose files in
	// tests); scoped analyzers consult it.
	Path string

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos token.Pos
	// Category is the diagnostic kind within the analyzer (e.g.
	// "map-range", "fmt-call"), stable enough to grep CI logs by.
	Category string
	Message  string
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// Finding is a diagnostic located in a file, the unit main and the tests
// print and compare.
type Finding struct {
	Analyzer string
	Position token.Position
	Category string
	Message  string
}

// String renders the canonical single-line form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s/%s] %s", f.Position, f.Analyzer, f.Category, f.Message)
}

// RunAnalyzers applies analyzers to one loaded package, returning the
// findings that survive //mipp:allow suppression, sorted by position. A
// malformed allow comment (missing analyzer name or reason) is itself
// reported, so the escape hatch cannot silently rot.
func RunAnalyzers(pkg *Package, analyzers ...*Analyzer) ([]Finding, error) {
	allows, bad := collectAllows(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
		}
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if allows.suppressed(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Position: pos,
				Category: d.Category,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	findings = append(findings, bad...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
