package lint_test

import (
	"testing"

	"mipp/internal/lint"
	"mipp/internal/lint/linttest"
)

// TestDeterminism runs the determinism analyzer over its golden fixture
// with an open scope (the fixture package is not one of the repo's
// deterministic packages).
func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/determinism", lint.NewDeterminism(nil))
}

// TestDeterminismScope checks that the default-scoped analyzer ignores
// packages outside the deterministic set entirely.
func TestDeterminismScope(t *testing.T) {
	files := []string{"testdata/determinism/fixture.go"}
	pkg, err := lint.LoadFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	pkg.Path = "mipp/cmd/mippd" // not a deterministic package
	findings, err := lint.RunAnalyzers(pkg, lint.Determinism)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "determinism" {
			t.Errorf("determinism fired outside its scope: %s", f)
		}
	}
}
