// Package remote implements mipp.ProfileStore over HTTP against a peer
// mippd's /v1/store endpoints: the distributed tier's storage leg. A
// daemon built with WithEngineStore(remote.New(peerURL)) runs diskless,
// serving the peer's whole catalog — profiles are immutable sha256-
// addressed blobs, so replication is fetch-by-digest plus an index.
//
// Change notification is by generation, not polling mtimes: the peer's
// index carries a monotonic counter (and an ETag derived from it), and the
// cached catalog is revalidated with a conditional GET at most once per
// revalidation window — an unchanged catalog costs one 304 with no body.
// Fetched objects are digest-verified, decoded once, and held in a local
// LRU keyed by digest (immutable content never revalidates), so hot
// profiles cross the network exactly once.
package remote

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"mipp"
	"mipp/api"
	"mipp/obs"
)

// DefaultRevalidateEvery is how long a synced index is trusted before the
// next operation revalidates it with a conditional GET.
const DefaultRevalidateEvery = time.Second

// cacheEntry is one decoded profile resident in the local LRU.
type cacheEntry struct {
	digest string
	p      *mipp.Profile
	size   int64
	elem   *list.Element
}

// Store is a remote profile store speaking to one peer daemon. It is safe
// for concurrent use.
type Store struct {
	base       string
	hc         *http.Client
	revalidate time.Duration
	maxCache   int64

	// syncMu serializes index revalidation round-trips, so a thundering
	// herd of cold operations costs one network call, not one each.
	syncMu sync.Mutex

	mu       sync.Mutex
	synced   bool      // an index has been fetched at least once
	dirty    bool      // local writes since the last full fetch: next sync is unconditional
	lastSync time.Time // of the last (re)validation
	etag     string
	gen      uint64
	index    map[string]mipp.ProfileStoreInfo
	cache    map[string]*cacheEntry // digest → decoded profile
	lru      *list.List             // front = most recently used; values are *cacheEntry
	cached   int64
	inflight map[string]chan struct{} // digest → in-progress fetch

	// Counters are obs instruments so Stats (the /healthz read-back) and
	// /metrics share the same cells. reval304 and revalFull split index
	// revalidations into conditional GETs answered 304 Not Modified vs.
	// full index fetches — the cheap/expensive split that tells an
	// operator whether the revalidation window is doing its job.
	hits, misses, loads     obs.Counter
	evictions, evictedBytes obs.Counter
	reval304, revalFull     obs.Counter
}

// Option customizes a Store.
type Option func(*Store)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport tuning, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(s *Store) { s.hc = hc }
}

// WithMaxCachedBytes bounds the decoded profiles held in the local cache
// (by canonical envelope size, matching the on-disk store's accounting);
// least-recently-used entries are evicted past the bound and re-fetched
// transparently. n <= 0 leaves the cache unbounded.
func WithMaxCachedBytes(n int64) Option {
	return func(s *Store) { s.maxCache = n }
}

// WithRevalidateEvery sets how long a synced index is trusted before the
// next operation revalidates it against the peer (default
// DefaultRevalidateEvery). d <= 0 revalidates on every operation — each
// costs a conditional GET (one 304 round-trip while unchanged), which is
// what tests use to make change propagation synchronous.
func WithRevalidateEvery(d time.Duration) Option {
	return func(s *Store) { s.revalidate = d }
}

// New returns a store reading from (and writing through to) the daemon at
// baseURL (e.g. "http://stored-host:8091"). No I/O happens until the first
// operation; a peer that is down surfaces as that operation's error.
func New(baseURL string, opts ...Option) *Store {
	s := &Store{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         http.DefaultClient,
		revalidate: DefaultRevalidateEvery,
		index:      make(map[string]mipp.ProfileStoreInfo),
		cache:      make(map[string]*cacheEntry),
		lru:        list.New(),
		inflight:   make(map[string]chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// remoteErr decodes a non-2xx response into an error.
func remoteErr(op string, resp *http.Response) error {
	var env api.ErrorResponse
	msg := resp.Status
	if err := json.NewDecoder(resp.Body).Decode(&env); err == nil && env.Error != "" {
		msg = env.Error
	}
	return fmt.Errorf("store/remote: %s: %s (HTTP %d)", op, msg, resp.StatusCode)
}

// drainClose releases a response body for connection reuse.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// fresh reports whether the synced index is still inside its revalidation
// window.
func (s *Store) fresh() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.synced && !s.dirty && s.revalidate > 0 && time.Since(s.lastSync) < s.revalidate
}

// sync (re)validates the cached index against the peer: a no-op inside the
// revalidation window, a conditional GET answered 304 while the peer's
// generation is unchanged, a full index fetch otherwise.
func (s *Store) sync() error {
	if s.fresh() {
		return nil
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.fresh() {
		return nil // another caller revalidated while we waited
	}
	s.mu.Lock()
	etag, dirty := s.etag, s.dirty
	s.mu.Unlock()

	req, err := http.NewRequest(http.MethodGet, s.base+"/v1/store/index", nil)
	if err != nil {
		return fmt.Errorf("store/remote: index: %w", err)
	}
	if etag != "" && !dirty {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return fmt.Errorf("store/remote: index: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode == http.StatusNotModified {
		s.reval304.Inc()
		s.mu.Lock()
		s.lastSync = time.Now()
		s.mu.Unlock()
		return nil
	}
	if resp.StatusCode/100 != 2 {
		return remoteErr("GET /v1/store/index", resp)
	}
	var body api.StoreIndexResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("store/remote: decode index: %w", err)
	}
	if err := api.CheckVersion(body.SchemaVersion); err != nil {
		return fmt.Errorf("store/remote: index: %w", err)
	}
	etag = resp.Header.Get("ETag")
	if etag == "" {
		etag = api.StoreETag(body.Generation)
	}
	index := make(map[string]mipp.ProfileStoreInfo, len(body.Profiles))
	for _, pi := range body.Profiles {
		index[pi.Name] = storeInfo(pi)
	}
	s.revalFull.Inc()
	s.mu.Lock()
	s.index = index
	s.gen = body.Generation
	s.etag = etag
	s.synced = true
	s.dirty = false
	s.lastSync = time.Now()
	s.mu.Unlock()
	return nil
}

// storeInfo lifts the wire DTO to store metadata. Resident is overridden
// per lookup: for this store it means "decoded in this process's cache",
// not the peer's residency.
func storeInfo(pi api.ProfileInfo) mipp.ProfileStoreInfo {
	return mipp.ProfileStoreInfo{
		Name:         pi.Name,
		Digest:       pi.Digest,
		SizeBytes:    pi.SizeBytes,
		Workload:     pi.Workload,
		Uops:         pi.Uops,
		Instructions: pi.Instructions,
		Entropy:      pi.Entropy,
		MicroTraces:  pi.MicroTraces,
	}
}

// installLocked makes a fetched profile resident and enforces the cache
// bound.
func (s *Store) installLocked(digest string, p *mipp.Profile, size int64) {
	if s.cache[digest] != nil {
		return
	}
	ce := &cacheEntry{digest: digest, p: p, size: size}
	ce.elem = s.lru.PushFront(ce)
	s.cache[digest] = ce
	s.cached += size
	if s.maxCache <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.cached > s.maxCache; {
		old := el.Value.(*cacheEntry)
		prev := el.Prev()
		if old != ce { // never evict the entry being installed
			s.lru.Remove(el)
			delete(s.cache, old.digest)
			s.cached -= old.size
			s.evictions.Inc()
			s.evictedBytes.Add(uint64(old.size))
		}
		el = prev
	}
}

// fetchObject GETs one immutable object and verifies its digest.
func (s *Store) fetchObject(digest string) ([]byte, error) {
	resp, err := s.hc.Get(s.base + "/v1/store/objects/" + url.PathEscape(digest))
	if err != nil {
		return nil, fmt.Errorf("store/remote: object %s: %w", digest, err)
	}
	defer drainClose(resp)
	if resp.StatusCode/100 != 2 {
		return nil, remoteErr("GET /v1/store/objects/"+digest, resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("store/remote: object %s: %w", digest, err)
	}
	sum := sha256.Sum256(data)
	if got := "sha256:" + hex.EncodeToString(sum[:]); got != digest {
		return nil, fmt.Errorf("store/remote: object %s arrived with digest %s (corrupt transfer)", digest, got)
	}
	return data, nil
}

// loadShared fetches and decodes one object, collapsing concurrent loads
// of the same digest into a single round-trip.
func (s *Store) loadShared(digest string) (*mipp.Profile, error) {
	for {
		s.mu.Lock()
		if ce := s.cache[digest]; ce != nil {
			s.lru.MoveToFront(ce.elem)
			p := ce.p
			s.mu.Unlock()
			return p, nil
		}
		ch, busy := s.inflight[digest]
		if !busy {
			ch = make(chan struct{})
			s.inflight[digest] = ch
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		// Wait for the in-progress fetch, then re-check: on its success
		// the cache answers, on its failure we take over and retry.
		<-ch
	}
	data, err := s.fetchObject(digest)
	var p *mipp.Profile
	if err == nil {
		p, err = mipp.DecodeProfile(data)
		if err != nil {
			err = fmt.Errorf("store/remote: object %s: %w", digest, err)
		}
	}
	s.mu.Lock()
	ch := s.inflight[digest]
	delete(s.inflight, digest)
	if err == nil {
		s.loads.Inc()
		s.installLocked(digest, p, int64(len(data)))
	}
	s.mu.Unlock()
	close(ch)
	return p, err
}

// Get implements mipp.ProfileStore. A sync failure with a previously
// synced catalog degrades to the stale index — cached objects keep
// serving through a peer outage; a store that never reached its peer
// reports the connection error.
func (s *Store) Get(name string) (*mipp.Profile, bool, error) {
	syncErr := s.sync()
	s.mu.Lock()
	if !s.synced {
		s.mu.Unlock()
		return nil, false, syncErr
	}
	info, ok := s.index[name]
	if !ok {
		s.mu.Unlock()
		return nil, false, nil
	}
	digest := info.Digest
	if ce := s.cache[digest]; ce != nil {
		s.hits.Inc()
		s.lru.MoveToFront(ce.elem)
		p := ce.p
		s.mu.Unlock()
		return p, true, nil
	}
	s.misses.Inc()
	s.mu.Unlock()
	p, err := s.loadShared(digest)
	if err != nil {
		return nil, true, err
	}
	return p, true, nil
}

// Put implements mipp.ProfileStore: upload the canonical envelope to the
// peer and adopt the authoritative metadata it answers with. The local
// index entry is patched immediately, and the catalog is marked dirty so
// the next revalidation fetches the peer's full index (other names may
// have moved under the returned generation).
func (s *Store) Put(name string, p *mipp.Profile) (mipp.ProfileStoreInfo, error) {
	if name == "" {
		name = p.Workload()
	}
	if name == "" {
		return mipp.ProfileStoreInfo{}, fmt.Errorf("store/remote: Put: profile has no workload name and none was given")
	}
	data, err := json.Marshal(p)
	if err != nil {
		return mipp.ProfileStoreInfo{}, fmt.Errorf("store/remote: Put(%q): %w", name, err)
	}
	sum := sha256.Sum256(data)
	digest := "sha256:" + hex.EncodeToString(sum[:])
	req, err := http.NewRequest(http.MethodPut,
		s.base+"/v1/store/objects/"+url.PathEscape(digest)+"?name="+url.QueryEscape(name),
		bytes.NewReader(data))
	if err != nil {
		return mipp.ProfileStoreInfo{}, fmt.Errorf("store/remote: Put(%q): %w", name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.hc.Do(req)
	if err != nil {
		return mipp.ProfileStoreInfo{}, fmt.Errorf("store/remote: Put(%q): %w", name, err)
	}
	defer drainClose(resp)
	if resp.StatusCode/100 != 2 {
		return mipp.ProfileStoreInfo{}, remoteErr("PUT /v1/store/objects/"+digest, resp)
	}
	var out api.StorePutObjectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return mipp.ProfileStoreInfo{}, fmt.Errorf("store/remote: Put(%q): decode response: %w", name, err)
	}
	if err := api.CheckVersion(out.SchemaVersion); err != nil {
		return mipp.ProfileStoreInfo{}, fmt.Errorf("store/remote: Put(%q): %w", name, err)
	}
	info := storeInfo(out.Profile)
	s.mu.Lock()
	s.index[name] = info
	s.gen = out.Generation
	s.dirty = true
	s.installLocked(out.Profile.Digest, p, out.Profile.SizeBytes)
	s.mu.Unlock()
	info.Resident = true
	return info, nil
}

// Delete implements mipp.ProfileStore, through the peer's ordinary
// DELETE /v1/profiles/{name} (which also drops the peer's cached
// predictors for the name).
func (s *Store) Delete(name string) (bool, error) {
	req, err := http.NewRequest(http.MethodDelete, s.base+"/v1/profiles/"+url.PathEscape(name), nil)
	if err != nil {
		return false, fmt.Errorf("store/remote: Delete(%q): %w", name, err)
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("store/remote: Delete(%q): %w", name, err)
	}
	defer drainClose(resp)
	if resp.StatusCode == http.StatusNotFound {
		return false, nil
	}
	if resp.StatusCode/100 != 2 {
		return false, remoteErr("DELETE /v1/profiles/"+name, resp)
	}
	s.mu.Lock()
	delete(s.index, name)
	s.dirty = true
	s.mu.Unlock()
	return true, nil
}

// Info implements mipp.ProfileStore. Resident reports this process's
// cache, not the peer's.
func (s *Store) Info(name string) (mipp.ProfileStoreInfo, bool) {
	_ = s.sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.index[name]
	if !ok {
		return mipp.ProfileStoreInfo{}, false
	}
	info.Resident = s.cache[info.Digest] != nil
	return info, true
}

// Names implements mipp.ProfileStore.
func (s *Store) Names() []string {
	_ = s.sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.index))
	for n := range s.index {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats implements mipp.ProfileStore: the local cache's counters (loads
// count network fetches).
func (s *Store) Stats() mipp.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return mipp.StoreStats{
		Objects:           len(s.index),
		ResidentEntries:   s.lru.Len(),
		ResidentBytes:     s.cached,
		MaxResidentBytes:  s.maxCache,
		Hits:              s.hits.Value(),
		Misses:            s.misses.Value(),
		Loads:             s.loads.Value(),
		Evictions:         s.evictions.Value(),
		EvictedBytes:      s.evictedBytes.Value(),
		Revalidations304:  s.reval304.Value(),
		RevalidationsFull: s.revalFull.Value(),
	}
}

// Generation implements mipp.ObjectStore: the peer catalog's change token
// as of the last sync.
func (s *Store) Generation() uint64 {
	_ = s.sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// GetObject implements mipp.ObjectStore by proxying to the peer, so a
// remote-backed daemon can itself serve /v1/store to further peers.
func (s *Store) GetObject(digest string) ([]byte, bool, error) {
	syncErr := s.sync()
	s.mu.Lock()
	synced := s.synced
	referenced := false
	for _, info := range s.index {
		if info.Digest == digest {
			referenced = true
			break
		}
	}
	s.mu.Unlock()
	if !synced {
		return nil, false, syncErr
	}
	if !referenced {
		return nil, false, nil
	}
	data, err := s.fetchObject(digest)
	if err != nil {
		return nil, true, err
	}
	return data, true, nil
}

// Compile-time checks: a remote store backs an Engine exactly like the
// on-disk one, replication surface included.
var (
	_ mipp.ProfileStore = (*Store)(nil)
	_ mipp.ObjectStore  = (*Store)(nil)
)
