// Command explore runs the headline application of the framework: full
// design-space exploration (Chapter 7). It profiles each workload once,
// registers it with an evaluation Engine — the same registry + predictor
// cache mippd serves from — sweeps the analytical model over the 243-point
// design space on all cores, prints the predicted Pareto frontier and —
// optionally — validates the pruning against the cycle-level simulator.
//
// Usage:
//
//	explore -workload bzip2                  # model-only, full 243 points
//	explore -workload bzip2 -csv out.csv     # + per-config CSV export
//	explore -workload bzip2 -validate -k 13  # + simulator on a 19-point sample
//	explore -workload bzip2 -strategy genetic -seed 7 -cap 25 -compare
//	                                         # guided search + quality vs exhaustive
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mipp"
	"mipp/api"
	"mipp/arch"
	"mipp/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explore: ")
	var (
		name     = flag.String("workload", "bzip2", "benchmark name")
		n        = flag.Int("n", 200_000, "trace length in micro-ops")
		k        = flag.Int("k", 1, "design-space stride (1 = all 243 configs)")
		workers  = flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS)")
		batch    = flag.Bool("batch", true, "sweep through the batched evaluation kernel (false = one Predict call per config)")
		csvPath  = flag.String("csv", "", "write per-config results as CSV to this file (- for stdout)")
		validate = flag.Bool("validate", false, "simulate the sampled space and score the pruning")
		strategy = flag.String("strategy", "", "search instead of sweeping: random, hill or genetic (empty = exhaustive sweep)")
		seed     = flag.Int64("seed", 1, "search strategy seed")
		budget   = flag.Int("budget", 0, "search evaluation budget (0 = strategy default)")
		capW     = flag.Float64("cap", 0, "power cap in watts for the search (0 = unconstrained)")
		obj      = flag.String("objective", "time", "search objective: time, energy, edp or ed2p")
		compare  = flag.Bool("compare", false, "score the search front against the exhaustive sweep (HVR, sensitivity, specificity)")
	)
	flag.Parse()

	stream, err := mipp.GenerateWorkload(*name, *n, 0)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	profile := mipp.NewProfiler().ProfileStream(stream)
	profTime := time.Since(t0)

	// The engine holds the profile and compiles the predictor on first
	// use; a long-lived process (or mippd) reuses both across queries.
	engine := mipp.NewEngine()
	if err := engine.Register(*name, profile); err != nil {
		log.Fatal(err)
	}
	// Phase 1 (compile): curves, per-micro MLP models, memo tables — paid
	// once per (workload, option set).
	t0 = time.Now()
	pred, err := engine.Predictor(*name, api.PredictorSpec{})
	if err != nil {
		log.Fatal(err)
	}
	compileTime := time.Since(t0)

	if *strategy != "" {
		// The sweep-path flags do not apply to a guided search; reject
		// them explicitly rather than silently ignoring requested output.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "csv", "validate", "k", "batch":
				log.Fatalf("-%s is not supported with -strategy (search reports its own front; use -compare for quality metrics)", f.Name)
			}
		})
		runSearch(pred, *strategy, *seed, *budget, *capW, *obj, *workers, *compare)
		return
	}

	configs := arch.DesignSpaceSample(*k)
	var sweepOpts []mipp.SweepOption
	if *workers > 0 {
		sweepOpts = append(sweepOpts, mipp.WithWorkers(*workers))
	}
	// Phase 2 (evaluate): the batched kernel, or — for comparison — one
	// Predict call per configuration with no batch scratch reuse.
	t0 = time.Now()
	var results mipp.Results
	if *batch {
		results, err = mipp.Sweep(context.Background(), pred, configs, sweepOpts...)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		results = make(mipp.Results, len(configs))
		for i, cfg := range configs {
			if results[i], err = pred.Predict(cfg); err != nil {
				log.Fatal(err)
			}
		}
	}
	modelTime := time.Since(t0)

	mode := "batched"
	if !*batch {
		mode = "per-config"
	}
	fmt.Printf("%s: profiled %d uops in %v; compiled predictor in %v; swept %d configs in %v (%s, %.1f configs/s)\n",
		*name, profile.TotalUops(), profTime.Round(time.Millisecond),
		compileTime.Round(10*time.Microsecond), len(configs),
		modelTime.Round(time.Millisecond), mode, float64(len(configs))/modelTime.Seconds())
	fmt.Println("predicted Pareto frontier (time vs power):")
	for _, pt := range results.ParetoFront() {
		fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", pt.Config, pt.Time, pt.Power)
	}

	if *csvPath != "" {
		out := os.Stdout
		if *csvPath != "-" {
			f, err := os.Create(*csvPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := results.WriteCSV(out); err != nil {
			log.Fatal(err)
		}
		if *csvPath != "-" {
			fmt.Printf("wrote %d rows to %s\n", len(results), *csvPath)
		}
	}

	if !*validate {
		return
	}
	t0 = time.Now()
	var actual []mipp.Point
	for _, cfg := range configs {
		sim, err := mipp.Simulate(cfg, stream, mipp.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		pw := mipp.EstimatePower(cfg, &sim.Activity)
		actual = append(actual, mipp.Point{
			Config: cfg.Name,
			Time:   sim.TimeSeconds(cfg.FrequencyGHz),
			Power:  pw.Total(),
		})
	}
	simTime := time.Since(t0)
	met := mipp.CompareFronts(results.Points(), actual)
	fmt.Printf("validation: simulated %d configs in %v (model speedup %.0fx)\n",
		len(configs), simTime.Round(time.Millisecond),
		simTime.Seconds()/modelTime.Seconds())
	fmt.Printf("pruning quality: sensitivity=%.2f specificity=%.2f accuracy=%.2f HVR=%.3f\n",
		met.Sensitivity, met.Specificity, met.Accuracy, met.HVR)
	fmt.Println("actual Pareto frontier:")
	for _, pt := range mipp.ParetoFront(actual) {
		fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", pt.Config, pt.Time, pt.Power)
	}
}

// runSearch drives a guided strategy over the Table 6.3 space in parametric
// form and — with -compare — scores its front against the exhaustive sweep
// with the Chapter 7 pruning metrics (sensitivity, specificity, HVR;
// Figure 7.8).
func runSearch(pred *mipp.Predictor, kind string, seed int64, budget int, capW float64, objective string, workers int, compare bool) {
	st, err := mipp.StrategyFor(api.StrategySpec{Kind: kind, Seed: seed})
	if err != nil {
		log.Fatalf("-strategy %s: %v", kind, err)
	}
	if budget <= 0 && kind == "random" {
		budget = 64
	}
	space := arch.TableSpace()
	opts := search.Options{
		Objective:   search.Objective(objective),
		Constraints: search.Constraints{MaxWatts: capW},
		Seed:        seed,
		Budget:      budget,
	}
	t0 := time.Now()
	rep, err := search.Run(context.Background(), mipp.NewSearchEvaluator(pred, workers), space, st, opts)
	if err != nil {
		log.Fatal(err)
	}
	searchTime := time.Since(t0)
	fmt.Printf("%s search (seed %d, objective %s): %d/%d points in %d generations, %v (%.0f evals/s)\n",
		rep.Strategy, rep.Seed, rep.Objective, rep.Evaluations, rep.SpaceSize,
		rep.Generations, searchTime.Round(time.Millisecond),
		float64(rep.Evaluations)/searchTime.Seconds())
	if rep.Best == nil {
		fmt.Println("no feasible point found")
	} else {
		b := rep.Best
		fmt.Printf("best: %-36s %s=%.6g time=%.6fs power=%5.1fW area=%.2f\n",
			b.Config, rep.Objective, b.Fitness, b.TimeSeconds, b.Watts, b.Area)
	}
	fmt.Println("search Pareto frontier (time vs power):")
	for _, e := range rep.Front {
		fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", e.Config, e.TimeSeconds, e.Watts)
	}

	if !compare {
		return
	}
	// Exhaustive reference over the same space: the search's front becomes
	// a classifier over the full space, scored with the Chapter 7 pruning
	// metrics exactly as the thesis scores model-based pruning against
	// simulation. The classification needs every point, so this is a full
	// sweep, not another search.
	var sweepOpts []mipp.SweepOption
	if workers > 0 {
		sweepOpts = append(sweepOpts, mipp.WithWorkers(workers))
	}
	t0 = time.Now()
	results, err := mipp.Sweep(context.Background(), pred, arch.DesignSpace(), sweepOpts...)
	if err != nil {
		log.Fatal(err)
	}
	exhTime := time.Since(t0)
	predicted := make([]mipp.Point, 0, len(rep.Front))
	for _, e := range rep.Front {
		predicted = append(predicted, mipp.Point{Config: e.Config, Time: e.TimeSeconds, Power: e.Watts})
	}
	actual := results.Points()
	met := mipp.CompareFronts(predicted, actual)
	fmt.Printf("search-vs-exhaustive: %d evals vs %d (exhaustive sweep in %v)\n",
		rep.Evaluations, len(actual), exhTime.Round(time.Millisecond))
	fmt.Printf("pruning quality: sensitivity=%.2f specificity=%.2f accuracy=%.2f HVR=%.3f\n",
		met.Sensitivity, met.Specificity, met.Accuracy, met.HVR)
}
