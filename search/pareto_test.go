package search

// Differential test for the staircase paretoFront against a straightforward
// sort-and-sweep reference, over adversarial randomized inputs (duplicated
// times, duplicated points, infeasible mixes, quantized values so exact
// float ties actually occur).

import (
	"math/rand"
	"testing"
)

// referenceFront is the pre-staircase implementation: sort the feasible
// subset by (time, power, index) and sweep keeping strict power improvers.
func referenceFront(evals []Eval) []Eval {
	feasible := make([]Eval, 0, len(evals))
	for _, e := range evals {
		if e.Feasible {
			feasible = append(feasible, e)
		}
	}
	for i := 1; i < len(feasible); i++ {
		for j := i; j > 0; j-- {
			a, b := feasible[j-1], feasible[j]
			if a.TimeSeconds < b.TimeSeconds ||
				(a.TimeSeconds == b.TimeSeconds && a.Watts < b.Watts) ||
				(a.TimeSeconds == b.TimeSeconds && a.Watts == b.Watts && a.Index < b.Index) {
				break
			}
			feasible[j-1], feasible[j] = feasible[j], feasible[j-1]
		}
	}
	front := make([]Eval, 0, 16)
	bestPower := 0.0
	for i, e := range feasible {
		if i == 0 || e.Watts < bestPower {
			front = append(front, e)
			bestPower = e.Watts
		}
	}
	return front
}

func TestParetoFrontMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(120)
		evals := make([]Eval, n)
		for i := range evals {
			evals[i] = Eval{
				// Quantized so ties in one or both objectives are common.
				Index:       i,
				TimeSeconds: float64(rng.Intn(8)) * 0.25,
				Watts:       float64(rng.Intn(8)) * 0.5,
				Feasible:    rng.Intn(4) != 0,
			}
		}
		got := paretoFront(evals)
		want := referenceFront(evals)
		if len(got) != len(want) {
			t.Fatalf("trial %d: front size %d, want %d\ngot  %+v\nwant %+v",
				trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: front[%d] = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
