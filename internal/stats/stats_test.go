package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice mean/stddev should be 0")
	}
}

func TestAbsErr(t *testing.T) {
	if e := AbsErr(110, 100); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("AbsErr = %v", e)
	}
	if e := AbsErr(90, 100); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("AbsErr = %v", e)
	}
	if !math.IsInf(AbsErr(1, 0), 1) {
		t.Error("AbsErr with zero actual should be +Inf")
	}
	if AbsErr(0, 0) != 0 {
		t.Error("AbsErr(0,0) should be 0")
	}
}

func TestPercentileAndBox(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("median = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	b := Box(xs)
	if b.Lo != 1 || b.Hi != 5 || b.Median != 3 || b.N != 5 {
		t.Errorf("box = %+v", b)
	}
	if b.Q1 > b.Median || b.Median > b.Q3 {
		t.Error("quartiles out of order")
	}
}

func TestBoxQuickProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		b := Box(xs)
		return b.Lo <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 &&
			b.Q3 <= b.Hi && b.Lo <= b.Mean && b.Mean <= b.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitLinearRecoversLine(t *testing.T) {
	var xs, ys []float64
	for i := 0; i < 50; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 3+2*x)
	}
	f := FitLinear(xs, ys)
	if math.Abs(f.A-3) > 1e-9 || math.Abs(f.B-2) > 1e-9 {
		t.Errorf("fit = %+v, want A=3 B=2", f)
	}
	if f.R2 < 0.999 {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestFitLogRecoversCurve(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{16, 32, 64, 128, 256} {
		xs = append(xs, x)
		ys = append(ys, 5*math.Log(x)+1)
	}
	f := FitLog(xs, ys)
	if math.Abs(f.A-5) > 1e-9 || math.Abs(f.B-1) > 1e-9 {
		t.Errorf("log fit = %+v", f)
	}
	if v := f.Eval(100); math.Abs(v-(5*math.Log(100)+1)) > 1e-9 {
		t.Errorf("Eval(100) = %v", v)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if p := Pearson(xs, ys); math.Abs(p-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", p)
	}
	neg := []float64{8, 6, 4, 2}
	if p := Pearson(xs, neg); math.Abs(p+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", p)
	}
	if Pearson(xs, []float64{1, 1, 1, 1}) != 0 {
		t.Error("constant series should give 0")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	h.Add(5)
	h.Add(10)
	if h.Total() != 3 || h.Count(5) != 2 || h.Fraction(10) != 1.0/3 {
		t.Errorf("histogram state wrong: total=%v", h.Total())
	}
	if m := h.Mean(); math.Abs(m-20.0/3) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
	keys := h.Keys()
	if len(keys) != 2 || keys[0] != 5 || keys[1] != 10 {
		t.Errorf("keys = %v", keys)
	}
	top := h.TopK(1)
	if len(top) != 1 || top[0] != 5 {
		t.Errorf("topk = %v", top)
	}
}

func TestHistogramCCDF(t *testing.T) {
	h := NewHistogram()
	for _, k := range []int64{1, 2, 2, 4} {
		h.Add(k)
	}
	keys, frac := h.CCDF()
	// P(x > 1) = 3/4, P(x > 2) = 1/4, P(x > 4) = 0.
	want := []float64{0.75, 0.25, 0}
	for i := range keys {
		if math.Abs(frac[i]-want[i]) > 1e-12 {
			t.Errorf("ccdf[%d] = %v, want %v", keys[i], frac[i], want[i])
		}
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	h.AddWeighted(-3, 2.5)
	h.Add(7)
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHistogram()
	if err := h2.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if h2.Total() != h.Total() || h2.Count(-3) != 2.5 || h2.Count(7) != 1 {
		t.Errorf("round trip lost data: %v", h2)
	}
}

func TestCDFAndFractionBelow(t *testing.T) {
	xs := []float64{0.3, 0.1, 0.2}
	pts, probs := CDF(xs)
	if pts[0] != 0.1 || probs[2] != 1 {
		t.Errorf("cdf = %v %v", pts, probs)
	}
	if f := FractionBelow(xs, 0.2); math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("FractionBelow = %v", f)
	}
}
