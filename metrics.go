package mipp

import (
	"mipp/obs"
)

// Package-level kernel counters. They live on obs.Default() — not on a
// per-engine registry — because the batched kernel is package-level code
// shared by every Engine in the process, and because the hot path can
// afford exactly two atomic adds per batch, not a registry lookup. The
// per-daemon registries chain to Default() with obs.WithBase, so /metrics
// always includes them.
var (
	kernelBatches obs.Counter
	kernelConfigs obs.Counter
)

func init() {
	d := obs.Default()
	d.RegisterCounter("mipp_kernel_batches_total",
		"Batched kernel invocations (PredictBatchInto calls).", &kernelBatches)
	d.RegisterCounter("mipp_kernel_configs_total",
		"Configurations evaluated by the batched kernel.", &kernelConfigs)
}

// engineMetrics holds the Engine-owned instruments that are observed on
// request paths. They are constructed once in NewEngine (never on a hot
// path — obshygiene enforces this) and exist whether or not the engine is
// ever attached to a registry: Observe/Set are atomic ops either way, and
// MetricsInto only decides whether a scrape can see them.
type engineMetrics struct {
	compileSeconds   *obs.Histogram // predictor compile (profile resolve + NewPredictor)
	evaluateSeconds  *obs.Histogram // one batch-kernel run over a config chunk
	storeLoadSeconds *obs.Histogram // profile resolution that had to hit the store

	searchGenSeconds  *obs.Histogram // one search-strategy generation
	searchEvalsPerSec obs.Gauge      // configs/s of the most recent generation
	searchFrontSize   obs.Gauge      // Pareto-front size of the most recent front event

	streamSubscribers obs.Gauge   // live search-event subscribers across all jobs
	streamDropped     obs.Counter // events dropped on slow subscriber channels
}

func newEngineMetrics() *engineMetrics {
	return &engineMetrics{
		compileSeconds:   obs.NewHistogram(obs.DefBuckets...),
		evaluateSeconds:  obs.NewHistogram(obs.DefBuckets...),
		storeLoadSeconds: obs.NewHistogram(obs.DefBuckets...),
		searchGenSeconds: obs.NewHistogram(obs.DefBuckets...),
	}
}

// MetricsInto registers the engine's instruments — and scrape-time
// read-backs of its registry, predictor-cache, and store counters — on reg.
// Call it once per engine per registry at startup; /healthz keeps reading
// the same instruments through Stats(), so the two surfaces can never
// disagree.
func (e *Engine) MetricsInto(reg *obs.Registry) {
	reg.RegisterCounter("mipp_engine_predictor_cache_hits_total",
		"Predictor-cache lookups answered by a cached entry.", &e.hits)
	reg.RegisterCounter("mipp_engine_predictor_cache_misses_total",
		"Predictor-cache lookups that had to compile.", &e.misses)
	reg.GaugeFunc("mipp_engine_cached_predictors",
		"Compiled (workload, option set) predictors currently cached.", func() float64 {
			e.mu.RLock()
			n := len(e.predictors)
			e.mu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("mipp_engine_profiles",
		"Registered workload profiles (in-memory and store-backed).", func() float64 {
			return float64(e.Stats().Profiles)
		})
	reg.RegisterHistogram("mipp_engine_compile_seconds",
		"Predictor compile duration (profile resolve + model build).", e.metrics.compileSeconds)
	reg.RegisterHistogram("mipp_engine_evaluate_seconds",
		"Batch-kernel run duration over one configuration chunk.", e.metrics.evaluateSeconds)
	reg.RegisterHistogram("mipp_engine_store_load_seconds",
		"Profile resolutions that went to the backing store.", e.metrics.storeLoadSeconds)

	reg.RegisterGauge("mipp_search_jobs_inflight",
		"Search jobs currently running.", &e.search.inFlight)
	reg.RegisterCounter("mipp_search_jobs_completed_total",
		"Search jobs finished (done, failed or cancelled).", &e.search.completed)
	reg.RegisterHistogram("mipp_search_generation_seconds",
		"Duration of one search-strategy generation.", e.metrics.searchGenSeconds)
	reg.RegisterGauge("mipp_search_evals_per_second",
		"Configurations per second of the most recent search generation.", &e.metrics.searchEvalsPerSec)
	reg.RegisterGauge("mipp_search_front_size",
		"Pareto-front size of the most recent front event.", &e.metrics.searchFrontSize)

	reg.RegisterGauge("mipp_stream_subscribers",
		"Live search-event stream subscribers.", &e.metrics.streamSubscribers)
	reg.RegisterCounter("mipp_stream_dropped_events_total",
		"Search events dropped on slow subscriber channels.", &e.metrics.streamDropped)

	if e.fid != nil {
		e.fid.rec.MetricsInto(reg)
		reg.RegisterCounter("mipp_fidelity_offered_total",
			"Served configurations selected by the fidelity sampling predicate.", &e.fid.offered)
		reg.RegisterCounter("mipp_fidelity_dropped_total",
			"Selected configurations lost to a full sampler queue.", &e.fid.dropped)
		reg.RegisterHistogram("mipp_fidelity_sim_seconds",
			"Ground-truth reference simulation duration.", e.fid.simSeconds)
		reg.GaugeFunc("mipp_fidelity_budget_remaining",
			"Ground-truth simulations left in the sampler budget.", func() float64 {
				if b := e.fid.budget.Load(); b > 0 && b < 1<<59 {
					return float64(b)
				} else if b <= 0 {
					return 0
				}
				return -1 // unlimited
			})
	}

	if e.store == nil {
		return
	}
	stats := func(read func(s StoreStats) uint64) func() uint64 {
		return func() uint64 { return read(e.store.Stats()) }
	}
	reg.GaugeFunc("mipp_store_objects",
		"Stored profiles (index entries).", func() float64 {
			return float64(e.store.Stats().Objects)
		})
	reg.GaugeFunc("mipp_store_resident_entries",
		"Decoded profiles currently held in memory.", func() float64 {
			return float64(e.store.Stats().ResidentEntries)
		})
	reg.GaugeFunc("mipp_store_resident_bytes",
		"Bytes of decoded profiles currently held in memory.", func() float64 {
			return float64(e.store.Stats().ResidentBytes)
		})
	reg.GaugeFunc("mipp_store_max_resident_bytes",
		"Configured LRU residency bound (0 = unbounded).", func() float64 {
			return float64(e.store.Stats().MaxResidentBytes)
		})
	reg.CounterFunc("mipp_store_hits_total",
		"Store lookups answered from resident memory.",
		stats(func(s StoreStats) uint64 { return s.Hits }))
	reg.CounterFunc("mipp_store_misses_total",
		"Store lookups that had to load from durable storage.",
		stats(func(s StoreStats) uint64 { return s.Misses }))
	reg.CounterFunc("mipp_store_loads_total",
		"Completed store loads (disk reads or network fetches).",
		stats(func(s StoreStats) uint64 { return s.Loads }))
	reg.CounterFunc("mipp_store_evictions_total",
		"Entries evicted from resident memory by the LRU bound.",
		stats(func(s StoreStats) uint64 { return s.Evictions }))
	reg.CounterFunc("mipp_store_evicted_bytes_total",
		"Bytes evicted from resident memory by the LRU bound.",
		stats(func(s StoreStats) uint64 { return s.EvictedBytes }))
	reg.CounterFunc("mipp_store_revalidations_total",
		"Remote-store index revalidations, by result.",
		stats(func(s StoreStats) uint64 { return s.Revalidations304 }),
		obs.Label{Key: "result", Value: "not_modified"})
	reg.CounterFunc("mipp_store_revalidations_total",
		"Remote-store index revalidations, by result.",
		stats(func(s StoreStats) uint64 { return s.RevalidationsFull }),
		obs.Label{Key: "result", Value: "full"})
}

// logf logs through the engine's logger; a nil logger (the default)
// discards, keeping embedded-library use silent.
func (e *Engine) logf(format string, args ...any) {
	if e.logger != nil {
		e.logger.Printf(format, args...)
	}
}
