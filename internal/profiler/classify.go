package profiler

// StrideCategory classifies a static load's access pattern (§4.5 and
// Figure 4.7): exactly one stride, one-to-four strides found by the
// cumulative-cutoff filter, a random pattern, or a unique (single-occurrence)
// load.
type StrideCategory int

// Stride categories in Figure 4.7's legend order.
const (
	CatStride  StrideCategory = iota // exactly one stride, no filtering needed
	CatFilter1                       // one stride after filtering (≥60%)
	CatFilter2                       // two strides (cumulative ≥70%)
	CatFilter3                       // three strides (cumulative ≥80%)
	CatFilter4                       // four strides (cumulative ≥90%)
	CatRandom                        // no stride pattern found
	CatUnique                        // load occurs only once in the micro-trace
	NumCategories
)

var categoryNames = [NumCategories]string{
	"STRIDE", "FILTER-1", "FILTER-2", "FILTER-3", "FILTER-4", "RANDOM", "UNIQUE",
}

// String names the category.
func (c StrideCategory) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "?"
}

// cutoffs[k] is the cumulative occurrence fraction the k+1 most frequent
// strides must reach for a load to be classified as (k+1)-strided (§4.5).
var cutoffs = [4]float64{0.60, 0.70, 0.80, 0.90}

// Classification is the result of classifying one static load.
type Classification struct {
	Category StrideCategory
	// Strides holds the selected stride values (byte deltas), most
	// frequent first; empty for RANDOM and UNIQUE loads.
	Strides []int64
	// Weights holds each selected stride's occurrence fraction.
	Weights []float64
}

// Classify categorizes a static load from its per-micro-trace record,
// searching for up to four distinct strides with the paper's cumulative
// cutoff percentages and always choosing the simplest qualifying pattern.
func Classify(sl *StaticLoad) Classification {
	if sl.Count < 2 {
		return Classification{Category: CatUnique}
	}
	total := sl.Strides.Total()
	if total == 0 {
		return Classification{Category: CatUnique}
	}
	if sl.Strides.Len() == 1 {
		k := sl.Strides.Keys()[0]
		return Classification{Category: CatStride, Strides: []int64{k}, Weights: []float64{1}}
	}
	top := sl.Strides.TopK(4)
	cum := 0.0
	for k, stride := range top {
		frac := sl.Strides.Fraction(stride)
		cum += frac
		if cum >= cutoffs[k] {
			strides := make([]int64, k+1)
			weights := make([]float64, k+1)
			for j := 0; j <= k; j++ {
				strides[j] = top[j]
				weights[j] = sl.Strides.Fraction(top[j])
			}
			return Classification{Category: CatFilter1 + StrideCategory(k), Strides: strides, Weights: weights}
		}
	}
	return Classification{Category: CatRandom}
}

// CategoryRatios returns, per stride category, the fraction of dynamic loads
// in the profile's micro-traces whose static load falls in that category
// (the bars of Figure 4.7).
func (p *Profile) CategoryRatios() [NumCategories]float64 {
	var counts [NumCategories]float64
	var total float64
	for _, m := range p.Micros {
		for _, sl := range m.Loads {
			c := Classify(sl)
			counts[c.Category] += float64(sl.Count)
			total += float64(sl.Count)
		}
	}
	if total > 0 {
		for i := range counts {
			counts[i] /= total
		}
	}
	return counts
}
