// Package core implements the micro-architecture independent interval model
// — the paper's primary contribution. From a one-time application profile
// and a processor description it predicts cycles, CPI stacks and the
// activity factors the power model consumes, with no simulation in the loop:
//
//	C = N/Deff + m_bpred·(c_res + c_fe) + Σ m_ILi·c_Li+1
//	    + m_LLC·(c_mem + c_bus)/MLP + P_hLLC            (Equation 3.1)
//
// The effective dispatch rate Deff (§3.3-3.4) captures dependence and
// issue-stage contention; branch mispredictions come from linear branch
// entropy (§3.5); cache misses from StatStack (§4.2); MLP from the cold-miss
// or stride model (§4.4-4.5) with MSHR and bus corrections (§4.6-4.7); and
// chained LLC hits add the penalty of §4.8.
//
// The model is evaluated per micro-trace and the predictions combined
// (the sampled-model-evaluation contribution of the TC'16 paper), which
// captures bursty contention that an averaged profile would smear out.
//
// Evaluation is split into two phases. Compile (phase 1) precomputes and
// memoizes everything that does not depend on the full configuration — the
// StatStack curves, per-micro mixes and MLP models, per-cache-geometry miss
// ratios. Evaluate / EvaluateBatch (phase 2) is then a cheap analytical
// query per configuration; see Compiled.
package core

import (
	"math"
	"sync"

	"mipp/internal/config"
	"mipp/internal/mlp"
	"mipp/internal/perf"
	"mipp/internal/profiler"
	"mipp/internal/trace"
)

// Options modify a model evaluation.
type Options struct {
	// MLPMode selects the MLP model (default StrideMLP).
	MLPMode mlp.Mode
	// Combined evaluates one averaged profile instead of evaluating each
	// micro-trace separately and combining predictions (the ISPASS-2015
	// baseline the TC'16 paper improves on, Figure 6.4).
	Combined bool
	// NoLLCChain disables the chained-LLC-hit penalty (§4.8 ablation).
	NoLLCChain bool
	// NoBusQueue disables the memory-bus queuing delay (§4.7 ablation).
	NoBusQueue bool
	// BranchMissRate overrides the entropy-model misprediction rate when
	// >= 0 (used to isolate input errors, Table 6.2). Set to -1 to use
	// the entropy model.
	BranchMissRate float64
	// DispatchModel restricts the effective-dispatch-rate terms for the
	// ablation of Figure 3.7 (default DispatchFull).
	DispatchModel DispatchModel
}

// DispatchModel enumerates the progressive base-component refinements of
// Figure 3.7.
type DispatchModel int

// Dispatch model levels.
const (
	// DispatchFull applies all terms of Equation 3.10.
	DispatchFull DispatchModel = iota
	// DispatchInstructions divides macro-instructions by the width.
	DispatchInstructions
	// DispatchUops divides uops by the physical width.
	DispatchUops
	// DispatchCritical adds the critical-path limit.
	DispatchCritical
)

// DefaultOptions returns the standard configuration (stride MLP, separate
// micro-trace evaluation, every component enabled).
func DefaultOptions() Options {
	return Options{MLPMode: mlp.StrideMLP, BranchMissRate: -1}
}

// Result is a complete model prediction.
type Result struct {
	Config       string
	Workload     string
	Cycles       float64
	Uops         float64
	Instructions float64
	// Stack attributes predicted cycles to CPI components.
	Stack perf.CPIStack
	// Activity holds the predicted activity factors for the power model.
	Activity perf.Activity
	// Deff is the (uop-weighted) average effective dispatch rate.
	Deff float64
	// MLP is the (miss-weighted) average predicted memory parallelism.
	MLP float64
	// BranchMissRate is the predicted per-branch misprediction rate.
	BranchMissRate float64
	// LLCLoadMisses is the predicted number of long-latency load misses.
	LLCLoadMisses float64
	// DRAMStallPerMiss is the predicted average DRAM stall per miss.
	DRAMStallPerMiss float64
	// MicroCPI is the per-micro-trace predicted CPI (per uop), for phase
	// analysis.
	MicroCPI []float64
	// Limiter counts micro-traces by their dispatch-rate limiter
	// (Figure 3.6): [width, dependences, port, unit].
	Limiter [4]float64
}

// CPI returns predicted cycles per macro-instruction.
func (r *Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.Cycles / r.Instructions
}

// TimeSeconds returns predicted execution time at freqGHz.
func (r *Result) TimeSeconds(freqGHz float64) float64 {
	return r.Cycles / (freqGHz * 1e9)
}

// Model carries everything needed to evaluate one profile against many
// configurations: the profile, the branch entropy model, and a cache of
// compiled evaluation kernels per option set. Evaluate is nearly
// instantaneous per configuration — the property that makes design-space
// exploration fast. A Model must not be copied after first use.
type Model struct {
	Profile *profiler.Profile
	// EntropyFit maps linear branch entropy to a misprediction rate for
	// the configured predictor (Figure 3.9); slope/intercept per
	// predictor name.
	EntropyFits map[string]func(entropy float64) float64

	mu       sync.Mutex
	compiled map[Options]*Compiled
}

// New builds a Model for a profile. entropyFits may be nil, in which case a
// default linear fit (missrate ≈ entropy/2, the asymptotic relation of the
// linear branch entropy metric) is used for every predictor.
func New(p *profiler.Profile, entropyFits map[string]func(float64) float64) *Model {
	return &Model{Profile: p, EntropyFits: entropyFits}
}

// Compile returns the compiled evaluation kernel for one option set,
// building it on first use (phase 1 of the compile → evaluate split). The
// kernel is cached: repeated Evaluate calls with the same options share one
// set of StatStack curves, MLP streams and memo tables.
func (m *Model) Compile(opts Options) *Compiled {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.compiled == nil {
		m.compiled = make(map[Options]*Compiled)
	}
	if c, ok := m.compiled[opts]; ok {
		return c
	}
	c := newCompiled(m, opts)
	m.compiled[opts] = c
	return c
}

// Evaluate predicts performance for one configuration, compiling (or
// reusing) the kernel for opts first. Callers evaluating many
// configurations should Compile once and use Compiled.EvaluateBatch.
func (m *Model) Evaluate(cfg *config.Config, opts Options) *Result {
	return m.Compile(opts).Evaluate(cfg)
}

// missRateFor returns the predicted branch misprediction rate for a
// predictor from the profile's linear branch entropy.
func (m *Model) missRateFor(predictor string) float64 {
	if m.EntropyFits != nil {
		if f, ok := m.EntropyFits[predictor]; ok {
			return clamp01(f(m.Profile.Entropy))
		}
	}
	// Asymptotic fallback: E(p)=2·min(p,1-p) ⇒ missrate ≈ E/2 for a
	// predictor that has learned the pattern.
	return clamp01(m.Profile.Entropy / 2)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

type microEval struct {
	stack   perf.CPIStack
	deff    float64
	mlp     float64
	misses  float64 // LLC load misses in the micro-trace
	limiter int
}

// averageLatency returns the mix-weighted uop execution latency, counting
// loads at their L1/L2-hit cost (long misses are separate penalty terms).
func averageLatency(mix [trace.NumClasses]float64, cfg *config.Config, mrL1 float64) float64 {
	lat := 0.0
	for c := trace.Class(0); c < trace.NumClasses; c++ {
		f := mix[c]
		if f == 0 {
			continue
		}
		switch c {
		case trace.Load:
			l := float64(cfg.L1D.LatencyCycles)*(1-mrL1) + float64(cfg.L2.LatencyCycles)*mrL1
			lat += f * l
		default:
			lat += f * float64(cfg.FU[c].Latency)
		}
	}
	if lat < 1 {
		lat = 1
	}
	return lat
}

// effectiveDispatch computes Deff (Equation 3.10) and reports which factor
// limits it: 0 = dispatch width, 1 = dependences, 2 = functional port,
// 3 = functional unit.
func effectiveDispatch(mix [trace.NumClasses]float64, cfg *config.Config, lat, cp float64, dm DispatchModel) (float64, int) {
	var scr scratch
	return effectiveDispatchScratch(mix, cfg, lat, cp, dm, &scr)
}

// effectiveDispatchScratch is effectiveDispatch on caller-owned scratch, so
// the batched hot path schedules ports without allocating.
func effectiveDispatchScratch(mix [trace.NumClasses]float64, cfg *config.Config, lat, cp float64, dm DispatchModel, scr *scratch) (float64, int) {
	var portD, unitD float64
	if dm == DispatchFull {
		portD, unitD = effectiveDispatchLimits(mix, cfg, scr)
	}
	return effectiveDispatchFrom(cfg, lat, cp, dm, portD, unitD)
}

// effectiveDispatchLimits computes the port- and unit-contention dispatch
// bounds — functions of the uop mix and the port/FU tables only, never of
// latency, window or clock, so batch kernels cache them per micro across
// whole grid sweeps.
//
//mipp:hotpath
func effectiveDispatchLimits(mix [trace.NumClasses]float64, cfg *config.Config, scr *scratch) (portD, unitD float64) {
	// Port contention: schedule the mix onto ports (§3.4's greedy
	// algorithm) and bound by the busiest port's activity.
	// Functional-unit contention: pipelined units bound by unit count,
	// non-pipelined by count/latency.
	return portLimit(mix, cfg, scr), unitLimit(mix, cfg)
}

// effectiveDispatchFrom combines the dispatch bounds into Deff (Eq 3.10).
// portD and unitD are read only under DispatchFull, the one model that
// prices contention.
//
//mipp:hotpath
func effectiveDispatchFrom(cfg *config.Config, lat, cp float64, dm DispatchModel, portD, unitD float64) (float64, int) {
	deff := float64(cfg.DispatchWidth)
	limiter := 0
	if dm == DispatchUops || dm == DispatchInstructions {
		return deff, limiter
	}
	// Dependence limit: ROB / (lat · CP).
	if cp > 0 {
		if dep := float64(cfg.ROB) / (lat * cp); dep < deff {
			deff = dep
			limiter = 1
		}
	}
	if dm == DispatchCritical {
		return deff, limiter
	}
	if portD < deff {
		deff = portD
		limiter = 2
	}
	if unitD < deff {
		deff = unitD
		limiter = 3
	}
	if deff < 0.05 {
		deff = 0.05
	}
	return deff, limiter
}

// portLimit builds the greedy issue schedule of §3.4: classes served by a
// single port are pinned first; classes with a choice are balanced over
// their ports given the already-scheduled activity. The dispatch bound is
// 1 / (busiest port's activity per uop).
func portLimit(mix [trace.NumClasses]float64, cfg *config.Config, scr *scratch) float64 {
	if cap(scr.activity) < len(cfg.Ports) {
		scr.activity = make([]float64, len(cfg.Ports))
	}
	activity := scr.activity[:len(cfg.Ports)]
	for i := range activity {
		activity[i] = 0
	}
	multi := scr.multi[:0]
	for c := trace.Class(0); c < trace.NumClasses; c++ {
		if mix[c] == 0 {
			continue
		}
		first, count := -1, 0
		for pi, port := range cfg.Ports {
			if port.Serves(c) {
				if count == 0 {
					first = pi
				}
				count++
			}
		}
		if count == 1 {
			activity[first] += mix[c]
		} else if count > 1 {
			multi = append(multi, c)
		}
	}
	scr.multi = multi
	for _, c := range multi {
		// Spread this class over its ports as evenly as possible,
		// water-filling against existing activity.
		serving := scr.serving[:0]
		for pi, port := range cfg.Ports {
			if port.Serves(c) {
				serving = append(serving, pi)
			}
		}
		scr.serving = serving
		remaining := mix[c]
		// Water-fill: repeatedly raise the least-loaded serving ports
		// (all ports tied at the minimum level) towards the next level.
		for iter := 0; iter < 16 && remaining > 1e-12; iter++ {
			minVal := activity[serving[0]]
			for _, pi := range serving[1:] {
				if activity[pi] < minVal {
					minVal = activity[pi]
				}
			}
			tied := scr.tied[:0]
			next := math.Inf(1)
			for _, pi := range serving {
				if activity[pi] == minVal {
					tied = append(tied, pi)
				} else if activity[pi] < next {
					next = activity[pi]
				}
			}
			scr.tied = tied
			give := remaining / float64(len(tied))
			if !math.IsInf(next, 1) && next-minVal < give {
				give = next - minVal
			}
			for _, pi := range tied {
				activity[pi] += give
				remaining -= give
			}
		}
	}
	busiest := 0.0
	for _, a := range activity {
		if a > busiest {
			busiest = a
		}
	}
	if busiest <= 0 {
		return math.Inf(1)
	}
	return 1 / busiest
}

// unitLimit bounds dispatch by functional-unit counts: N·U_i/N_i for
// pipelined units and N·U_j/(N_j·lat_j) for non-pipelined ones (Eq 3.10).
func unitLimit(mix [trace.NumClasses]float64, cfg *config.Config) float64 {
	limit := math.Inf(1)
	for c := trace.Class(0); c < trace.NumClasses; c++ {
		if mix[c] == 0 {
			continue
		}
		units := float64(cfg.UnitCount(c))
		if units == 0 {
			continue
		}
		var d float64
		if cfg.FU[c].Pipelined {
			d = units / mix[c]
		} else {
			d = units / (mix[c] * float64(cfg.FU[c].Latency))
		}
		if d < limit {
			limit = d
		}
	}
	return limit
}

// combineMicros collapses all micro-traces into one averaged pseudo-trace
// (the pre-TC'16 "combined" evaluation of Figure 6.4).
func combineMicros(p *profiler.Profile) *profiler.Micro {
	out := &profiler.Micro{
		Reuse:      p.ReuseAll,
		ReuseLoads: p.ReuseLoad,
		Chains:     p.Chains,
	}
	for _, m := range p.Micros {
		out.Len += m.Len
		out.Instrs += m.Instrs
		out.Branches += m.Branches
		out.ColdLoads += m.ColdLoads
		out.LoadCount += m.LoadCount
		out.StoreCount += m.StoreCount
		out.ColdLoadReuse += m.ColdLoadReuse
		out.ColdReuse += m.ColdReuse
		for c, cnt := range m.MixCounts {
			out.MixCounts[c] += cnt
		}
		out.Loads = append(out.Loads, m.Loads...)
	}
	// Merge the load-dependence histograms index-wise.
	if len(p.Micros) > 0 {
		for i := range p.Micros[0].LoadDeps {
			out.LoadDeps = append(out.LoadDeps, p.LoadDepHistFor(p.Opts.ROBs[i]))
		}
	}
	return out
}
