package store_test

// Generation tests: the index's monotonic change token must make a second
// store instance over the same directory see every mutation — including
// the case that defeated mtime+size staleness checks (a rewrite of the
// same byte length inside the filesystem's timestamp granularity) — and
// must expose the replication surface (Generation/GetObject) correctly.

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreGenerationAdvancesPerMutation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g0 := s.Generation()
	if g0 == 0 {
		t.Fatal("opened store has no generation (legacy index should be stamped on first write)")
	}
	p := testProfile(t, "mcf")
	if _, err := s.Put("a", p); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation()
	if g1 <= g0 {
		t.Fatalf("generation %d after Put, want > %d", g1, g0)
	}
	if _, err := s.Put("b", p); err != nil {
		t.Fatal(err)
	}
	g2 := s.Generation()
	if g2 <= g1 {
		t.Fatalf("generation %d after second Put, want > %d", g2, g1)
	}
	if _, err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if g3 := s.Generation(); g3 <= g2 {
		t.Fatalf("generation %d after Delete, want > %d", g3, g2)
	}
}

// TestStoreGenerationBeatsMtimeSize reconstructs the staleness case a
// mtime+size check cannot see: between two reads of a second instance, the
// index is rewritten to the same byte length ("aa" deleted, "ab" added —
// same name length, same digest) and its mtime is forced back to the
// original. Only the embedded generation distinguishes the two files.
func TestStoreGenerationBeatsMtimeSize(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir)
	p := testProfile(t, "mcf")
	if _, err := s1.Put("aa", p); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	if _, ok := s2.Info("aa"); !ok {
		t.Fatal("second instance does not see aa")
	}
	indexPath := filepath.Join(dir, "index.json")
	st, err := os.Stat(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	mtime := st.ModTime()

	// Mutate through s1: the new index differs from the old only in the
	// profile name (same length) and the generation.
	if _, err := s1.Delete("aa"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put("ab", p); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(indexPath, mtime, mtime); err != nil {
		t.Fatal(err)
	}

	if _, ok := s2.Info("aa"); ok {
		t.Error("second instance still serves deleted aa (stale index)")
	}
	if _, ok := s2.Info("ab"); !ok {
		t.Error("second instance does not see ab after rename")
	}
	if g1, g2 := s1.Generation(), s2.Generation(); g1 != g2 {
		t.Errorf("instances disagree on generation: %d vs %d", g1, g2)
	}
}

func TestStoreGetObject(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := testProfile(t, "mcf")
	info, err := s.Put("mcf", p)
	if err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.GetObject(info.Digest)
	if err != nil || !ok {
		t.Fatalf("GetObject(%s) = ok=%v err=%v", info.Digest, ok, err)
	}
	if string(data) != canonical(t, p) {
		t.Error("GetObject bytes differ from the canonical envelope")
	}
	sum := sha256.Sum256(data)
	if got := "sha256:" + hex.EncodeToString(sum[:]); got != info.Digest {
		t.Errorf("object bytes hash to %s, want %s", got, info.Digest)
	}
	if _, ok, err := s.GetObject("sha256:" + string(make([]byte, 0)) + "deadbeef"); ok || err != nil {
		t.Errorf("unknown digest: ok=%v err=%v, want false,nil", ok, err)
	}
	// After deleting the only reference the object is unreachable even if
	// the file lingers until garbage collection.
	if _, err := s.Delete("mcf"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.GetObject(info.Digest); ok {
		t.Error("GetObject serves an unreferenced object")
	}
}
