package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// EngineLockScope is the default scope of the lockorder analyzer: the root
// package, where Engine's mu guards the in-memory profile and predictor
// maps. The invariant (established when the persistent store landed) is
// that profile resolution — store reads, file I/O, anything that can block
// on the disk or network — never runs while an Engine lock is held; the
// lock covers map bookkeeping only. The store package itself is *not* in
// scope: it intentionally serializes index file I/O under its own mutex.
var EngineLockScope = []string{"mipp"}

// storePackages are the packages whose calls count as "profile resolution"
// for the store-under-lock diagnostic.
var storePackages = []string{"mipp/store"}

// ioPackages are the packages whose calls count as blocking I/O for the
// io-under-lock diagnostic.
var ioPackages = []string{"os", "io", "io/ioutil", "net", "net/http", "os/exec", "syscall"}

// LockOrder is the analyzer with the repository's default scope.
var LockOrder = NewLockOrder(EngineLockScope)

// NewLockOrder builds the lockorder analyzer over a package scope (nil
// scope = every package, used by the golden tests).
//
// Diagnostic kinds:
//
//   - store-under-lock: a mipp/store call while a sync.Mutex/RWMutex is
//     held. Store methods take the store's own lock and hit the
//     filesystem; calling them under Engine's mu both inverts the intended
//     lock order and stalls every reader behind disk latency.
//   - io-under-lock: an os/io/net/os-exec/syscall call while a mutex is
//     held — same stall, without even a second lock to invert.
//
// The analysis is per-function and syntactic: it tracks Lock/RLock and
// Unlock/RUnlock calls in statement order (a deferred Unlock keeps the
// lock held through the rest of the function, which is what defer means),
// and does not descend into function literals — a closure built under a
// lock runs at some other time, under whatever locks its caller holds
// (the lazy-compile pattern in Engine.Predictor depends on exactly that).
func NewLockOrder(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc: "flags store access and blocking I/O performed while a mutex is held " +
			"in packages where locks must cover only map bookkeeping",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(scope, pass.Path) {
			return nil
		}
		funcDecls(pass, func(fd *ast.FuncDecl) {
			held := make(map[string]bool)
			checkLockOrder(pass, fd.Body.List, held)
		})
		return nil
	}
	return a
}

// checkLockOrder walks statements in order, maintaining the set of held
// locks (keyed by the rendered receiver expression). Nested blocks share
// the set: an unlock on any path releases, which errs toward missing a
// violation on the other path rather than inventing one — the right bias
// for a gate that fails CI.
func checkLockOrder(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, op := mutexOp(pass, call); op != "" {
					key := render(pass.Fset, recv)
					if op == "lock" {
						held[key] = true
					} else {
						delete(held, key)
					}
					continue
				}
			}
			checkStmtUnderLocks(pass, s, held)
		case *ast.DeferStmt:
			if _, op := mutexOp(pass, s.Call); op == "unlock" {
				// Deferred unlock: held until function exit, by design.
				continue
			}
			checkStmtUnderLocks(pass, s, held)
		case *ast.BlockStmt:
			checkLockOrder(pass, s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				checkStmtUnderLocks(pass, s.Init, held)
			}
			checkStmtUnderLocks(pass, &ast.ExprStmt{X: s.Cond}, held)
			checkLockOrder(pass, s.Body.List, held)
			if s.Else != nil {
				checkLockOrder(pass, []ast.Stmt{s.Else}, held)
			}
		case *ast.ForStmt:
			checkLockOrder(pass, s.Body.List, held)
		case *ast.RangeStmt:
			checkLockOrder(pass, s.Body.List, held)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockOrder(pass, cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockOrder(pass, cc.Body, held)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					checkLockOrder(pass, cc.Body, held)
				}
			}
		case *ast.LabeledStmt:
			checkLockOrder(pass, []ast.Stmt{s.Stmt}, held)
		default:
			checkStmtUnderLocks(pass, stmt, held)
		}
	}
}

// checkStmtUnderLocks reports forbidden calls inside stmt when any lock is
// held, without descending into function literals.
func checkStmtUnderLocks(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	locks := heldList(held)
	inspectSkippingFuncLits(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg := calleePackage(pass, call)
		switch {
		case inScope(storePackages, pkg):
			pass.Reportf(call.Pos(), "store-under-lock",
				"store call while holding %s: profile resolution must run outside Engine locks (release, resolve, re-lock to publish)",
				locks)
		case inScope(ioPackages, pkg):
			pass.Reportf(call.Pos(), "io-under-lock",
				"%s call while holding %s: blocking I/O under a lock stalls every other holder; move it outside the critical section",
				pkg, locks)
		}
		return true
	})
}

func heldList(held map[string]bool) string {
	if len(held) == 1 {
		for k := range held {
			return k
		}
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	// Tiny set; insertion sort keeps the message stable without importing
	// sort in a diagnostic helper.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return strings.Join(keys, ", ")
}

// mutexOp classifies call as a lock ("lock"), release ("unlock"), or
// neither ("") on a sync.Mutex / sync.RWMutex receiver, returning the
// receiver expression.
func mutexOp(pass *Pass, call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	var op string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return nil, ""
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return nil, ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, ""
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return nil, ""
	}
	return sel.X, op
}

// calleePackage resolves the defining package path of a call's target —
// package-level function or method alike ("" when unresolvable).
func calleePackage(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok && fn.Pkg() != nil {
			return fn.Pkg().Path()
		}
	case *ast.Ident:
		if fn, ok := pass.ObjectOf(fun).(*types.Func); ok && fn.Pkg() != nil {
			return fn.Pkg().Path()
		}
	}
	return ""
}
