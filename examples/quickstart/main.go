// Quickstart: profile a workload once, then predict performance and power
// for a processor configuration with the micro-architecture independent
// interval model — and check the prediction against the cycle-level
// simulator.
package main

import (
	"fmt"
	"log"

	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/ooo"
	"mipp/internal/power"
	"mipp/internal/profiler"
	"mipp/internal/workload"
)

func main() {
	// 1. Synthesize the workload's dynamic micro-op stream.
	stream := workload.MustGenerate("gcc", 300_000, 0)
	fmt.Printf("workload gcc: %d uops, %d instructions (%.2f uops/instr)\n",
		stream.Len(), stream.Instructions(), stream.UopsPerInstruction())

	// 2. Profile it once — this is the only expensive step, and the
	//    profile is micro-architecture independent.
	profile := profiler.Run(stream, profiler.Options{})
	fmt.Printf("profile: %d micro-traces, branch entropy %.3f\n",
		len(profile.Micros), profile.Entropy)

	// 3. Predict performance and power for the reference architecture.
	cfg := config.Reference()
	model := core.New(profile, nil)
	res := model.Evaluate(cfg, core.DefaultOptions())
	stack := res.Stack.PerInstruction(int64(res.Instructions))
	fmt.Printf("model:   CPI %.3f  stack %s\n", res.CPI(), stack.String())
	fmt.Printf("model:   power %s\n", power.Estimate(cfg, &res.Activity).String())

	// 4. Validate against the cycle-level simulator.
	sim, err := ooo.Simulate(cfg, stream, ooo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	simStack := sim.Stack.PerInstruction(sim.Instructions)
	fmt.Printf("sim:     CPI %.3f  stack %s\n", sim.CPI(), simStack.String())
	fmt.Printf("sim:     power %s\n", power.Estimate(cfg, &sim.Activity).String())
	fmt.Printf("CPI error: %.1f%%\n", 100*abs(res.CPI()-sim.CPI())/sim.CPI())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
