package lint_test

import (
	"testing"

	"mipp/internal/lint"
	"mipp/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/lockorder", lint.NewLockOrder(nil))
}
