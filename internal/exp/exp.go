// Package exp is the experiment harness: one function per table and figure
// of the paper's evaluation (Chapters 3-7), each regenerating the same rows
// or series the paper reports. The functions are shared by cmd/experiments
// and the top-level benchmark suite (bench_test.go).
package exp

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/ooo"
	"mipp/internal/profiler"
	"mipp/internal/trace"
	"mipp/internal/workload"
)

// Suite memoizes workload streams, profiles and simulation results so the
// individual experiments can share them.
type Suite struct {
	// N is the trace length in uops for reference-architecture
	// experiments; design-space sweeps use N/3.
	N int
	// Workloads is the benchmark subset to run (default: all 29).
	Workloads []string

	mu       sync.Mutex
	streams  map[string]*trace.Stream
	profiles map[string]*profiler.Profile
	sims     map[string]*ooo.Result
	models   map[string]*core.Model
}

// NewSuite returns a Suite with the given trace length (0 = 300000).
func NewSuite(n int) *Suite {
	if n <= 0 {
		n = 300_000
	}
	return &Suite{
		N:         n,
		Workloads: workload.Names(),
		streams:   make(map[string]*trace.Stream),
		profiles:  make(map[string]*profiler.Profile),
		sims:      make(map[string]*ooo.Result),
		models:    make(map[string]*core.Model),
	}
}

// Stream returns the memoized trace of a workload at length n.
func (s *Suite) Stream(name string, n int) *trace.Stream {
	key := fmt.Sprintf("%s/%d", name, n)
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[key]; ok {
		return st
	}
	st := workload.MustGenerate(name, n, 0)
	s.streams[key] = st
	return st
}

// Profile returns the memoized profile of a workload at length n.
func (s *Suite) Profile(name string, n int) *profiler.Profile {
	key := fmt.Sprintf("%s/%d", name, n)
	s.mu.Lock()
	if p, ok := s.profiles[key]; ok {
		s.mu.Unlock()
		return p
	}
	s.mu.Unlock()
	st := s.Stream(name, n)
	p := profiler.Run(st, profiler.Options{})
	s.mu.Lock()
	s.profiles[key] = p
	s.mu.Unlock()
	return p
}

// Model returns a memoized analytical model for a workload at length n.
func (s *Suite) Model(name string, n int) *core.Model {
	key := fmt.Sprintf("%s/%d", name, n)
	s.mu.Lock()
	if m, ok := s.models[key]; ok {
		s.mu.Unlock()
		return m
	}
	s.mu.Unlock()
	m := core.New(s.Profile(name, n), nil)
	s.mu.Lock()
	s.models[key] = m
	s.mu.Unlock()
	return m
}

// Sim returns the memoized simulation of workload name on cfg at length n.
func (s *Suite) Sim(name string, cfg *config.Config, n int) *ooo.Result {
	key := fmt.Sprintf("%s/%s/%d", name, cfg.Name, n)
	s.mu.Lock()
	if r, ok := s.sims[key]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()
	st := s.Stream(name, n)
	r, err := ooo.Simulate(cfg, st, ooo.Options{})
	if err != nil {
		panic(fmt.Sprintf("exp: simulate %s on %s: %v", name, cfg.Name, err))
	}
	s.mu.Lock()
	s.sims[key] = r
	s.mu.Unlock()
	return r
}

// Experiment is a registered table/figure generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Suite, w io.Writer)
}

var registry []Experiment

func register(id, title string, run func(*Suite, io.Writer)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// SpaceSample returns a stratified sample of the 243-point design space:
// every k-th configuration, which cycles through all parameter values
// because the enumeration is lexicographic.
func SpaceSample(k int) []*config.Config {
	all := config.DesignSpace()
	if k <= 1 {
		return all
	}
	var out []*config.Config
	for i := 0; i < len(all); i += k {
		out = append(out, all[i])
	}
	return out
}

// header prints a section header for experiment output.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "== %s ==\n", title)
}
