package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler is the -debug-addr surface of mippd and mipp-router: the
// net/http/pprof profile endpoints plus the registry's /metrics, on a mux
// of their own so profiling and scraping never share a listener with
// production traffic (and can be firewalled separately).
//
//	/metrics                 Prometheus text exposition of reg
//	/debug/pprof/            pprof index (heap, goroutine, block, ...)
//	/debug/pprof/profile     30s CPU profile
//	/debug/pprof/trace       execution trace
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
