package mipp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mipp/internal/dse"
)

// SweepOption customizes a Sweep run.
type SweepOption func(*sweepConfig)

type sweepConfig struct {
	workers int
}

// WithWorkers sets the number of concurrent evaluation goroutines (default
// GOMAXPROCS). Results are deterministic and identical for any worker count.
func WithWorkers(n int) SweepOption {
	return func(c *sweepConfig) { c.workers = n }
}

// runPool executes fn(0..n-1) on a bounded worker pool, stopping early on
// context cancellation. It is the shared fan-out machinery under Sweep and
// Engine.Evaluate: work-stealing by atomic index, so results land at their
// input index and the output is deterministic for any worker count.
func runPool(ctx context.Context, n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// batchChunk sizes the contiguous batches a sweep is split into: enough
// chunks for the pool to load-balance (about four per worker), big enough
// that the batch kernel's scratch and memo reuse pay off.
func batchChunk(n, workers int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := (n + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// sweepInto fans the predictor's batch kernel over contiguous chunks of
// configs on the pool, landing rows at their input index in the
// caller-owned (typically pooled, reused) BatchResult. It is the one
// fan-out used by Sweep, the Engine and the search evaluator; chunks are
// disjoint row ranges, so the workers share br race-free, and cancellation
// is observed between configs inside each chunk (a context error surfaces
// through the caller's ctx.Err() check).
func sweepInto(ctx context.Context, pd *Predictor, configs []*Config, workers int, br *BatchResult) {
	// The other batched-kernel entry point (PredictBatchInto counts its own
	// calls); two atomic adds, nothing else.
	kernelBatches.Inc()
	kernelConfigs.Add(uint64(len(configs)))
	pd.prepareBatch(br, len(configs))
	chunk := batchChunk(len(configs), workers)
	nchunks := (len(configs) + chunk - 1) / chunk
	runPool(ctx, nchunks, workers, func(ci int) {
		lo := ci * chunk
		hi := min(lo+chunk, len(configs))
		pd.resolveRange(configs[lo:hi], br, lo)
		_ = pd.compiled.EvaluateRangeInto(ctx, br.resolved[lo:hi], &br.core, lo)
		pd.finishRange(br, lo, hi)
	})
}

// Sweep evaluates the predictor over every configuration, fanning
// contiguous batches out over a worker pool; each worker runs the compiled
// batch kernel (PredictBatch) over its chunk. results[i] always corresponds
// to configs[i], and the output is byte-for-byte identical regardless of
// worker count — evaluation order is the only thing concurrency changes.
//
// On context cancellation Sweep stops promptly — the batch kernel checks
// the context between configurations, not just at chunk boundaries — drains
// its workers and returns ctx.Err(). Configuration failures are aggregated:
// the returned error joins every per-config failure (with its index and
// name) rather than reporting only the first, so one diagnostic pass
// surfaces all bad configs in a generated space.
func Sweep(ctx context.Context, pd *Predictor, configs []*Config, opts ...SweepOption) (Results, error) {
	if pd == nil {
		return nil, fmt.Errorf("mipp: Sweep: nil predictor")
	}
	sc := sweepConfig{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&sc)
	}
	if len(configs) == 0 {
		return nil, nil
	}

	br := getBatchResult()
	defer putBatchResult(br)
	sweepInto(ctx, pd, configs, sc.workers, br)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var failures []error
	for i := range configs {
		if err := br.Err(i); err != nil {
			name := "<nil>"
			if configs[i] != nil {
				name = configs[i].Name
			}
			failures = append(failures, fmt.Errorf("config %d (%s): %w", i, name, err))
		}
	}
	if len(failures) > 0 {
		return nil, errors.Join(failures...)
	}
	results := make(Results, len(configs))
	for i := range configs {
		if br.Ok(i) {
			results[i] = br.Result(i)
		}
	}
	return results, nil
}

// Design-space exploration vocabulary (Chapter 7), re-exported so consumers
// never reach into internal packages.

// Point is one design evaluated for one workload on the (time, power)
// plane: lower is better in both dimensions.
type Point = dse.Point

// FrontMetrics scores a predicted Pareto front against the true one (§7.4):
// sensitivity, specificity, accuracy and the hypervolume ratio.
type FrontMetrics = dse.Metrics

// Points projects sweep results onto the (time, power) plane.
func Points(results []*Result) []Point {
	out := make([]Point, 0, len(results))
	for _, r := range results {
		if r != nil {
			out = append(out, r.Point())
		}
	}
	return out
}

// ParetoFront returns the non-dominated subset of points, sorted by time.
func ParetoFront(points []Point) []Point { return dse.ParetoFront(points) }

// BestUnderPowerCap returns the fastest point whose power does not exceed
// capWatts (Table 7.1's optimization); ok is false when nothing fits.
func BestUnderPowerCap(points []Point, capWatts float64) (Point, bool) {
	return dse.BestUnderPowerCap(points, capWatts)
}

// BestByED2P returns the point minimizing energy-delay-squared, the DVFS
// selection metric of §7.3.
func BestByED2P(points []Point) (Point, bool) { return dse.BestByED2P(points) }

// CompareFronts scores predicted (time, power) points against actual ones,
// matched by config name, exactly as the thesis evaluates Pareto pruning.
func CompareFronts(predicted, actual []Point) FrontMetrics { return dse.Evaluate(predicted, actual) }

// Hypervolume computes the 2D dominated hypervolume of a front with respect
// to a reference (worst) point.
func Hypervolume(front []Point, ref Point) float64 { return dse.Hypervolume(front, ref) }
