package trace

import "testing"

func TestClassPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || IntALU.IsMem() {
		t.Error("IsMem wrong")
	}
	if !FPAdd.IsFP() || !FPDiv.IsFP() || IntMul.IsFP() {
		t.Error("IsFP wrong")
	}
	if Load.String() != "Load" || Class(200).String() == "" {
		t.Error("String wrong")
	}
}

func TestStreamCounting(t *testing.T) {
	s := &Stream{Uops: []Uop{
		{First: true, Class: IntALU},
		{First: false, Class: Load},
		{First: true, Class: Store},
	}}
	if s.Instructions() != 2 || s.Len() != 3 {
		t.Error("counts wrong")
	}
	if upi := s.UopsPerInstruction(); upi != 1.5 {
		t.Errorf("upi = %v", upi)
	}
	counts := s.Counts()
	if counts[IntALU] != 1 || counts[Load] != 1 || counts[Store] != 1 {
		t.Errorf("counts = %v", counts)
	}
}
