// Fixture for the determinism analyzer. Every line that should fire
// carries a want expectation; every line without one doubles as a
// negative test.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func emitMap(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `\[determinism/map-range\] fmt\.Printf`
	}
}

func collectUnsorted(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `\[determinism/map-range\] append to out`
	}
	return out
}

// collectSorted is the blessed idiom: accumulate in map order, then sort.
func collectSorted(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fanOut(m map[string]func()) {
	for _, fn := range m {
		go fn() // want `\[determinism/map-range\] goroutine`
	}
}

func sendAll(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `\[determinism/map-range\] channel send`
	}
}

func stamp() time.Time {
	return time.Now() // want `\[determinism/time-now\] time\.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `\[determinism/time-now\] time\.Since`
}

func jitter() int {
	return rand.Intn(8) // want `\[determinism/global-rand\] math/rand\.Intn`
}

// seeded is the blessed idiom: an explicit source threaded from a seed.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// allowedStamp demonstrates the escape hatch: the directive names the
// analyzer and gives a reason, and the diagnostic on the next line is
// suppressed.
func allowedStamp() int64 {
	//mipp:allow determinism fixture demonstrates the escape hatch
	return time.Now().UnixNano()
}

// badAllow is missing its reason, which is itself a finding.
func badAllow() int {
	/* want `\[mipplint/bad-allow\]` */ //mipp:allow determinism
	return len("x")
}
