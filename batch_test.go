package mipp_test

// Tests for the batched phase-2 evaluation path: PredictBatch must be
// byte-identical to N single Predict calls over the stock design space,
// preserve per-item errors, and observe cancellation between configs inside
// a batch (not just at work-item boundaries).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mipp"
	"mipp/arch"
)

// TestPredictBatchEquivalence is the acceptance guarantee of the compile →
// evaluate split: across the 81-config stock design-space sample, the
// batched kernel's results marshal to exactly the bytes of N sequential
// Predict calls — while concurrent Predicts race the same memo tables (run
// under -race in CI).
func TestPredictBatchEquivalence(t *testing.T) {
	pd, err := mipp.NewPredictor(testProfile(t, "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	configs := arch.DesignSpaceSample(3)
	if len(configs) != 81 {
		t.Fatalf("stock sample has %d configs, want 81", len(configs))
	}

	// Race the memo tables from a second goroutine while the batch runs.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, cfg := range configs[:20] {
			if _, err := pd.Predict(cfg); err != nil {
				t.Errorf("concurrent Predict: %v", err)
				return
			}
		}
	}()
	batch, errs, err := pd.PredictBatch(context.Background(), configs)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("errs[%d] (%s): %v", i, configs[i].Name, e)
		}
	}

	for i, cfg := range configs {
		single, err := pd.Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(single)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(batch[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("config %d (%s): PredictBatch JSON differs from Predict:\nbatch:  %s\nsingle: %s",
				i, cfg.Name, got, want)
		}
	}
}

// TestPredictBatchPerItemErrors asserts a bad configuration skips its slot
// without aborting the batch.
func TestPredictBatchPerItemErrors(t *testing.T) {
	pd, err := mipp.NewPredictor(testProfile(t, "bzip2"))
	if err != nil {
		t.Fatal(err)
	}
	bad := arch.Reference()
	bad.Name = "bad-rob"
	bad.ROB = 0
	configs := []*arch.Config{arch.Reference(), bad, nil, arch.LowPower()}
	results, errs, err := pd.PredictBatch(context.Background(), configs)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 3} {
		if errs[i] != nil || results[i] == nil {
			t.Errorf("item %d: result=%v err=%v, want success", i, results[i], errs[i])
		}
	}
	for _, i := range []int{1, 2} {
		if errs[i] == nil || results[i] != nil {
			t.Errorf("item %d: result=%v err=%v, want per-item error", i, results[i], errs[i])
		}
	}
}

// pollCountCtx is a context whose Err flips to Canceled after a fixed
// number of polls, making "cancelled mid-batch" deterministic: the batch
// kernel polls once per configuration.
type pollCountCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *pollCountCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestPredictBatchCancelledMidBatch asserts the batch kernel checks the
// context between configurations: cancellation arriving after the k-th
// check stops the batch there, with exactly the first k slots filled.
func TestPredictBatchCancelledMidBatch(t *testing.T) {
	pd, err := mipp.NewPredictor(testProfile(t, "soplex"))
	if err != nil {
		t.Fatal(err)
	}
	configs := arch.DesignSpaceSample(3)
	const after = 7
	ctx := &pollCountCtx{Context: context.Background(), after: after}
	results, _, err := pd.PredictBatch(ctx, configs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if (i < after) != (r != nil) {
			t.Fatalf("results[%d] = %v: cancellation after %d polls should fill exactly the first %d slots",
				i, r, after, after)
		}
	}
}
