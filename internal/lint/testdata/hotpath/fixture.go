// Fixture for the hotpath analyzer. Only functions annotated
// //mipp:hotpath are checked; coldFormat at the bottom proves it.
package fixture

import "fmt"

//mipp:hotpath
func hotFormat(x float64) string {
	return fmt.Sprintf("%g", x) // want `\[hotpath/fmt-call\] fmt\.Sprintf`
}

//mipp:hotpath
func hotConcat(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want `\[hotpath/string-concat\]`
	}
	return s
}

//mipp:hotpath
func hotAppend(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `\[hotpath/append-no-cap\] append to out`
	}
	return out
}

// hotAppendSized preallocates: the same append is silent.
//
//mipp:hotpath
func hotAppendSized(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// hotAppendParam appends into a caller-owned buffer (the Neighbors(dst)
// resize-once idiom): silent.
//
//mipp:hotpath
func hotAppendParam(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

//mipp:hotpath
func hotClosure(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		f := func() float64 { return x * x } // want `\[hotpath/closure-in-loop\]`
		total += f()
	}
	return total
}

// hoistedClosure builds the closure once, outside the loop: silent.
//
//mipp:hotpath
func hoistedClosure(xs []float64) float64 {
	total := 0.0
	square := func(v float64) float64 { return v * v }
	for _, x := range xs {
		total += square(x)
	}
	return total
}

//mipp:hotpath
func hotDefer(fns []func()) {
	for _, fn := range fns {
		defer fn() // want `\[hotpath/defer-in-loop\]`
	}
}

func sink(v interface{}) { _ = v }

//mipp:hotpath
func hotBox(x float64) {
	sink(x) // want `\[hotpath/interface-box\] float64`
}

//mipp:hotpath
func hotMake(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, 8) // want `\[hotpath/make-in-loop\]`
		buf[0] = i
		total += buf[0]
	}
	return total
}

//mipp:hotpath
func hotMakeMap(keys []string) int {
	total := 0
	for range keys {
		m := make(map[string]int, 4) // want `\[hotpath/make-in-loop\]`
		total += len(m)
	}
	return total
}

// hoistedMake allocates the buffer once, above the loop: silent.
//
//mipp:hotpath
func hoistedMake(n int) int {
	buf := make([]int, 8)
	total := 0
	for i := 0; i < n; i++ {
		buf[0] = i
		total += buf[0]
	}
	return total
}

//mipp:hotpath
func hotMapLit(keys []string) int {
	total := 0
	for _, k := range keys {
		m := map[string]int{k: 1} // want `\[hotpath/map-in-loop\]`
		total += m[k]
	}
	return total
}

// hotPanic demonstrates the escape hatch on a cold panic path.
//
//mipp:hotpath
func hotPanic(i, n int) {
	if i >= n {
		//mipp:allow hotpath cold out-of-range panic path, never taken per evaluation
		panic(fmt.Sprintf("index %d out of range [0,%d)", i, n))
	}
}

// coldFormat carries no annotation, so nothing here is checked.
func coldFormat(x float64) string {
	return fmt.Sprintf("%g", x)
}
