// Fixture for the hotpath analyzer's fidelity-in-hotpath diagnostic:
// residual tracking (digesting, sampling predicates, recorder updates) is
// barred from //mipp:hotpath kernel functions — it belongs on the cold
// sampler goroutine. coldSample at the bottom proves unannotated functions
// stay silent.
package fixture

import (
	"mipp/arch"
	"mipp/fidelity"
)

//mipp:hotpath
func hotDigest(workload string, cfg *arch.Config) string {
	return fidelity.Digest(workload, "", cfg) // want `\[hotpath/fidelity-in-hotpath\] fidelity\.Digest`
}

//mipp:hotpath
func hotSampled(seed int64, workload, config string) bool {
	return fidelity.Sampled(seed, workload, config, 16) // want `\[hotpath/fidelity-in-hotpath\] fidelity\.Sampled`
}

//mipp:hotpath
func hotRecord(rec *fidelity.Recorder, p fidelity.Pair) {
	rec.Record(p) // want `\[hotpath/fidelity-in-hotpath\] fidelity\.Recorder\.Record`
}

//mipp:hotpath
func hotSample(p fidelity.Pair) fidelity.Sample {
	return p.Sample() // want `\[hotpath/fidelity-in-hotpath\] fidelity\.Pair\.Sample`
}

// coldSample is the sanctioned shape: the sampler goroutine, off the
// evaluation path, may use the whole fidelity API.
func coldSample(rec *fidelity.Recorder, p fidelity.Pair) bool {
	if fidelity.Sampled(7, p.Workload, p.Config, 16) {
		return rec.Record(p)
	}
	return false
}
