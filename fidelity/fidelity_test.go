package fidelity

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mipp/arch"
	"mipp/obs"
)

func testPair(i int) Pair {
	// Synthetic but structured: the model over-predicts DRAM and
	// under-predicts branch, scaled by the index, across two workloads.
	w := "mcf"
	if i%2 == 1 {
		w = "gcc"
	}
	f := float64(i)
	model := Measurement{
		CPI:      1.0 + 0.01*f,
		CPIStack: CPIStack{Base: 0.5, Branch: 0.1, ICache: 0.05, LLCHit: 0.1, DRAM: 0.25 + 0.01*f},
		Watts:    10 + 0.1*f,
		Power:    PowerStack{Static: 3, Core: 4, FU: 1, Cache: 1, DRAM: 0.5 + 0.1*f, BPred: 0.5},
	}
	sim := Measurement{
		CPI:      1.0,
		CPIStack: CPIStack{Base: 0.5, Branch: 0.12, ICache: 0.05, LLCHit: 0.1, DRAM: 0.23},
		Watts:    10,
		Power:    PowerStack{Static: 3, Core: 4, FU: 1, Cache: 1, DRAM: 0.5, BPred: 0.5},
	}
	return Pair{
		Workload: w,
		Config:   "cfg-" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
		Digest:   Digest(w, "", &arch.Config{Name: "cfg", ROB: i + 1}),
		Model:    model,
		Sim:      sim,
	}
}

func TestSampleResiduals(t *testing.T) {
	p := testPair(10)
	s := p.Sample()
	if got, want := s.CPIResidual.DRAM, 0.25+0.10-0.23; math.Abs(got-want) > 1e-12 {
		t.Fatalf("DRAM residual = %v, want %v", got, want)
	}
	if got, want := s.CPIResidual.Branch, 0.1-0.12; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Branch residual = %v, want %v", got, want)
	}
	if got, want := s.CPIErrorPct, 100*(1.1-1.0)/1.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("CPIErrorPct = %v, want %v", got, want)
	}
	if got, want := s.WattsErrorPct, 100*(11.0-10.0)/10.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("WattsErrorPct = %v, want %v", got, want)
	}
	// Zero sim side must not divide by zero.
	z := Pair{Model: Measurement{CPI: 1}}.Sample()
	if z.CPIErrorPct != 0 || z.WattsErrorPct != 0 {
		t.Fatalf("zero-sim errors = %v/%v, want 0/0", z.CPIErrorPct, z.WattsErrorPct)
	}
}

// TestReportDeterministic is the determinism contract: any arrival order,
// any concurrency, duplicates included — same sample set, byte-identical
// report JSON.
func TestReportDeterministic(t *testing.T) {
	const n = 40
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = testPair(i)
	}

	build := func(order []int, workers int) []byte {
		rec := NewRecorder()
		var wg sync.WaitGroup
		ch := make(chan Pair)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range ch {
					rec.Record(p)
					rec.Record(p) // duplicates must be no-ops
				}
			}()
		}
		for _, i := range order {
			ch <- pairs[i]
		}
		close(ch)
		wg.Wait()
		rep := rec.Report(5)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	base := build(rand.New(rand.NewSource(1)).Perm(n), 1)
	for seed := int64(2); seed < 6; seed++ {
		got := build(rand.New(rand.NewSource(seed)).Perm(n), int(seed))
		if string(got) != string(base) {
			t.Fatalf("report differs across orders/workers:\n%s\nvs\n%s", base, got)
		}
	}

	var rep Report
	if err := json.Unmarshal(base, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Samples != n {
		t.Fatalf("Samples = %d, want %d (duplicates must not count)", rep.Samples, n)
	}
	if len(rep.Worst) != 5 {
		t.Fatalf("Worst = %d entries, want 5", len(rep.Worst))
	}
	// Worst list is sorted by |CPI error| descending; index n-1 has the
	// largest error.
	if rep.Worst[0].CPIErrorPct < rep.Worst[4].CPIErrorPct {
		t.Fatalf("Worst not sorted: %v", rep.Worst)
	}
	if len(rep.CPIComponents) != 5 || len(rep.PowerComponents) != 6 {
		t.Fatalf("component breakdowns = %d/%d, want 5/6",
			len(rep.CPIComponents), len(rep.PowerComponents))
	}
	if rep.CPI.BiasPct <= 0 {
		t.Fatalf("BiasPct = %v, want > 0 (the synthetic model over-predicts)", rep.CPI.BiasPct)
	}
	if rep.CPI.MaxConfig == "" || rep.CPI.MaxWorkload == "" {
		t.Fatal("max locators empty")
	}
}

func TestRecorderStatsAndMetrics(t *testing.T) {
	rec := NewRecorder()
	reg := obs.NewRegistry()
	rec.MetricsInto(reg)
	for i := 0; i < 10; i++ {
		if !rec.Record(testPair(i)) {
			t.Fatalf("Record(%d) reported duplicate", i)
		}
	}
	if rec.Record(testPair(3)) {
		t.Fatal("duplicate Record reported new")
	}
	rec.RecordFailure()

	st := rec.Stats()
	if st.Samples != 10 || st.Failures != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.CPIMAPEPct <= 0 || st.MaxAbsCPI < st.CPIMAPEPct {
		t.Fatalf("Stats aggregates inconsistent: %+v", st)
	}

	var buf bytes.Buffer
	if err := reg.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, series := range []string{
		"mipp_fidelity_samples_total 10",
		"mipp_fidelity_failures_total 1",
		`mipp_fidelity_cpi_residual_count{component="dram"} 10`,
		`mipp_fidelity_power_residual_count{component="bpred"} 10`,
		`mipp_fidelity_workload_samples_total{workload="mcf"} 5`,
		`mipp_fidelity_workload_samples_total{workload="gcc"} 5`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("missing series %q in:\n%s", series, out)
		}
	}
}

// TestMetricsIntoReplays checks that samples recorded before MetricsInto
// appear in the per-workload vec series registered later.
func TestMetricsIntoReplays(t *testing.T) {
	rec := NewRecorder()
	for i := 0; i < 6; i++ {
		rec.Record(testPair(i))
	}
	reg := obs.NewRegistry()
	rec.MetricsInto(reg)
	var buf bytes.Buffer
	if err := reg.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `mipp_fidelity_workload_samples_total{workload="mcf"} 3`) {
		t.Errorf("pre-registration samples not replayed:\n%s", buf.String())
	}
}

func TestSampled(t *testing.T) {
	// Deterministic: same inputs, same answer.
	for i := 0; i < 100; i++ {
		if Sampled(7, "mcf", "cfg-1", 4) != Sampled(7, "mcf", "cfg-1", 4) {
			t.Fatal("Sampled not deterministic")
		}
	}
	if !Sampled(1, "w", "c", 0) || !Sampled(1, "w", "c", 1) {
		t.Fatal("every <= 1 must select everything")
	}
	// Roughly 1-in-every selectivity over many names.
	hits := 0
	const trials, every = 4000, 8
	for i := 0; i < trials; i++ {
		if Sampled(42, "mcf", "cfg-"+string(rune('0'+i%10))+"-"+strconv.Itoa(i), every) {
			hits++
		}
	}
	if hits < trials/every/2 || hits > trials/every*2 {
		t.Fatalf("selectivity %d/%d far from 1/%d", hits, trials, every)
	}
	// Different seeds select different sets (with overwhelming likelihood).
	diff := 0
	for i := 0; i < trials; i++ {
		name := "cfg-" + strconv.Itoa(i)
		if Sampled(1, "mcf", name, every) != Sampled(2, "mcf", name, every) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed does not influence selection")
	}
}

func TestSampledAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(1000, func() {
		Sampled(7, "mcf", "config-name-xyz", 16)
	}); n != 0 {
		t.Fatalf("Sampled allocates %v/op, want 0", n)
	}
}

func TestDigest(t *testing.T) {
	a := &arch.Config{Name: "x", ROB: 128}
	b := &arch.Config{Name: "x", ROB: 192}
	if Digest("w", "", a) == Digest("w", "", b) {
		t.Fatal("digest ignores config contents")
	}
	if Digest("w", "", a) != Digest("w", "", a) {
		t.Fatal("digest not deterministic")
	}
	if Digest("w", "", a) == Digest("v", "", a) {
		t.Fatal("digest ignores workload")
	}
	if Digest("w", "k1", a) == Digest("w", "k2", a) {
		t.Fatal("digest ignores options key")
	}
}
