// Package router implements the mipp distributed tier's front door: an
// HTTP reverse proxy exposing the same /v1 surface as one mippd, fanned
// over N replica daemons. Workload names are consistent-hashed onto a
// bounded-load ring (ring.go), so repeated requests for a workload hit the
// replica whose predictor cache already holds it; search jobs are pinned
// to the replica that accepted them; catalog reads merge every replica's
// answer. Responses are relayed frame-by-frame with a flush per chunk, so
// SSE search events and NDJSON sweep streams pass through live.
//
// The router holds no model state: replicas sharing one profile store
// (mippd -store on a shared path, or -remote-store at a common peer)
// answer byte-identically for any placement, which is what makes replica
// loss a rehash instead of an outage.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"mipp/api"
	"mipp/obs"
)

// Options configures a Router.
type Options struct {
	// Replicas are the base URLs of the mippd replicas (required).
	Replicas []string
	// Vnodes is the virtual nodes per replica (default DefaultVnodes).
	Vnodes int
	// LoadFactor is the bounded-load c (default DefaultLoadFactor).
	LoadFactor float64
	// FailThreshold is the consecutive failed health checks that take a
	// replica out of rotation (default 2). Connect errors on live traffic
	// mark it down immediately regardless.
	FailThreshold int
	// Client performs proxied requests. It must not set a global timeout:
	// sweeps and event streams run as long as the work does. Defaults to a
	// pooled transport.
	Client *http.Client
	// HealthClient performs health probes (default: 2s timeout).
	HealthClient *http.Client
	// Logger receives request and membership lines; nil disables logging.
	Logger *log.Logger
	// Metrics substitutes the registry /metrics serves (the default is a
	// fresh registry chained to obs.Default()).
	Metrics *obs.Registry
}

// Router fronts the replica set. It implements http.Handler.
type Router struct {
	ring      *ring
	hc        *http.Client
	healthHC  *http.Client
	logger    *log.Logger
	failLimit int32
	start     time.Time

	// jobs remembers which replica owns each search job the router has
	// seen, so polls, cancels and event streams follow the submit. A
	// forgotten job (router restart) is re-found by probing replicas.
	jobs sync.Map // job ID → *member

	// metrics is the registry /metrics serves; fanout times the
	// scatter-gather handlers' full fan-out (evaluate, workloads).
	metrics *obs.Registry
	fanout  *obs.Histogram

	handler http.Handler
}

// New builds a router over the given replicas. Replicas start in rotation;
// run CheckHealth (or HealthLoop) to converge on reality.
func New(opts Options) (*Router, error) {
	if len(opts.Replicas) == 0 {
		return nil, errors.New("router: no replicas configured")
	}
	seen := make(map[string]bool)
	urls := make([]string, 0, len(opts.Replicas))
	for _, raw := range opts.Replicas {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			continue
		}
		parsed, err := url.Parse(u)
		if err != nil || parsed.Scheme == "" || parsed.Host == "" {
			return nil, fmt.Errorf("router: replica %q is not an absolute URL", raw)
		}
		if !seen[u] {
			seen[u] = true
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return nil, errors.New("router: no replicas configured")
	}
	rt := &Router{
		ring:      newRing(urls, opts.Vnodes, opts.LoadFactor),
		hc:        opts.Client,
		healthHC:  opts.HealthClient,
		logger:    opts.Logger,
		failLimit: int32(opts.FailThreshold),
		start:     time.Now(),
	}
	if rt.hc == nil {
		rt.hc = &http.Client{}
	}
	if rt.healthHC == nil {
		rt.healthHC = &http.Client{Timeout: 2 * time.Second}
	}
	if rt.failLimit <= 0 {
		rt.failLimit = 2
	}
	rt.metrics = opts.Metrics
	if rt.metrics == nil {
		rt.metrics = obs.NewRegistry(obs.WithBase(obs.Default()))
	}
	rt.fanout = rt.metrics.Histogram("mipp_router_fanout_seconds",
		"Scatter-gather fan-out duration (evaluate, workloads): submit to last replica answer.", nil)
	rt.metrics.GaugeFunc("mipp_router_ring_spread",
		"Largest member's share of the hash circle over the ideal 1/N share (1.0 = perfectly even).",
		rt.ring.spread)
	for _, m := range rt.ring.members {
		m := m
		label := obs.Label{Key: "member", Value: m.url}
		//mipp:allow obshygiene pre-registering one series per ring member at startup
		rt.metrics.RegisterCounter("mipp_router_forwards_total",
			"Requests proxied to this member.", &m.forwards, label)
		//mipp:allow obshygiene pre-registering one series per ring member at startup
		rt.metrics.RegisterCounter("mipp_router_health_transitions_total",
			"Healthy/down flips of this member.", &m.transitions, label)
		//mipp:allow obshygiene pre-registering one series per ring member at startup
		rt.metrics.GaugeFunc("mipp_router_member_healthy",
			"1 while the member is in rotation, 0 while marked down.",
			func() float64 {
				if m.healthy.Load() {
					return 1
				}
				return 0
			}, label)
		//mipp:allow obshygiene pre-registering one series per ring member at startup
		rt.metrics.GaugeFunc("mipp_router_member_inflight",
			"Requests currently proxied to this member.",
			func() float64 { return float64(m.inflight.Load()) }, label)
	}

	mux := http.NewServeMux()
	// route registers a handler wrapped in its per-route HTTP instruments,
	// mirroring the replica server's mux (the pattern is the route label).
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, obs.NewHTTPStats(rt.metrics, pattern).Wrap(h))
	}
	route("POST /v1/predict", rt.byWorkload)
	route("POST /v1/sweep", rt.byWorkload)
	route("POST /v1/pareto", rt.byWorkload)
	route("POST /v1/evaluate", rt.handleEvaluate)
	route("POST /v1/search", rt.handleSearchSubmit)
	route("GET /v1/search/{id}", rt.byJob)
	route("GET /v1/search/{id}/events", rt.byJob)
	route("DELETE /v1/search/{id}", rt.byJob)
	route("POST /v1/profiles", rt.handleRegister)
	route("GET /v1/profiles/{name}", rt.byName)
	route("DELETE /v1/profiles/{name}", rt.byName)
	route("GET /v1/workloads", rt.handleWorkloads)
	route("GET /healthz", rt.handleHealthz)
	// The scrape endpoint is not instrumented: scrapes should not move the
	// series they read.
	mux.Handle("GET /metrics", rt.metrics.Handler())
	rt.handler = rt.instrumented(mux)
	return rt, nil
}

// MetricsRegistry returns the registry /metrics serves, so the daemon can
// expose the same instruments on a separate debug listener
// (obs.DebugHandler) next to pprof.
func (rt *Router) MetricsRegistry() *obs.Registry { return rt.metrics }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.handler.ServeHTTP(w, r)
}

func (rt *Router) logf(format string, args ...any) {
	if rt.logger != nil {
		rt.logger.Printf(format, args...)
	}
}

// statusWriter mirrors the server's: records the status for the log line
// and forwards Flush so streamed responses pass through unbuffered.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrumented assigns or adopts the X-Request-Id, echoes it, and logs one
// line per request. The same id is forwarded to the replica, so a request
// can be traced router → replica by grepping both logs for rid=. With a
// logger it also opens the router's root span for the request, adopting the
// caller's X-Span-Id as the remote parent; send stamps the router's span on
// the hop to the replica, so the replica's spans nest under it.
func (rt *Router) instrumented(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(api.RequestIDHeader)
		if rid == "" {
			rid = api.NewRequestID()
			r.Header.Set(api.RequestIDHeader, rid)
		}
		w.Header().Set(api.RequestIDHeader, rid)
		ctx := api.ContextWithRequestID(r.Context(), rid)
		if remote := r.Header.Get(api.SpanIDHeader); remote != "" {
			ctx = obs.ContextWithRemoteParent(ctx, remote)
		}
		ctx, span := obs.StartSpan(ctx, rt.logger, rid, "http "+r.Method+" "+r.URL.Path)
		r = r.WithContext(ctx)
		if rt.logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		span.Finish()
		rt.logf("%s %s %d %s rid=%s", r.Method, r.URL.Path, sw.status, time.Since(begin).Round(time.Microsecond), rid)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, api.ErrorResponse{SchemaVersion: api.SchemaVersion, Error: err.Error()})
}

// errNoReplicas is the 502 every route answers when the whole set is down.
var errNoReplicas = errors.New("router: no healthy replicas")

// readBody buffers the request body so it can be replayed across retries.
func readBody(r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	defer r.Body.Close()
	return io.ReadAll(r.Body)
}

// proxyHeaders are the request headers worth carrying to the replica.
var proxyHeaders = []string{"Content-Type", "Accept", api.RequestIDHeader, "Last-Event-ID", "If-None-Match"}

// send issues the proxied request to m. The caller holds m's inflight
// count; a returned error is a transport failure (the replica never
// answered) and is safe grounds to mark m down and retry elsewhere.
func (rt *Router) send(r *http.Request, m *member, body []byte) (*http.Response, error) {
	target := m.url + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range proxyHeaders {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	// The hop carries the router's OWN span as the replica's remote parent
	// (X-Span-Id is deliberately not in proxyHeaders: passing the caller's
	// span through would flatten the tree, hiding the router hop).
	if sp := obs.SpanFromContext(r.Context()); sp != nil {
		req.Header.Set(api.SpanIDHeader, sp.ID)
	}
	m.forwards.Inc()
	return rt.hc.Do(req)
}

// relayHeaders are the response headers worth carrying back. X-Request-Id
// is deliberately absent: the middleware already set it (to the same value
// the replica echoes, since send forwards it).
var relayHeaders = []string{"Content-Type", "Cache-Control", "ETag"}

// relay streams the replica's response to the client, flushing after every
// chunk so SSE events and NDJSON frames are delivered as they are produced,
// not when the response ends.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range relayHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// forward routes one buffered-body request by key: pick, proxy, and on a
// transport failure mark the replica down and rehash onto the survivors.
// Retrying is safe for this API — reads are pure and writes are
// content-addressed (re-registering a profile is idempotent).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	rid := api.RequestIDFromContext(r.Context())
	for attempt := 0; attempt < len(rt.ring.members); attempt++ {
		m := rt.ring.pick(key)
		if m == nil {
			break
		}
		m.inflight.Add(1)
		resp, err := rt.send(r, m, body)
		if err != nil {
			m.inflight.Add(-1)
			m.markDown()
			rt.logf("replica %s: marked down (%v) rid=%s", m.url, err, rid)
			continue
		}
		rt.logf("route %s %s key=%q -> %s rid=%s", r.Method, r.URL.Path, key, m.url, rid)
		rt.relay(w, resp)
		m.inflight.Add(-1)
		return
	}
	writeError(w, http.StatusBadGateway, errNoReplicas)
}

// sendBuffered is forward for handlers that need the replica's response
// body in hand (to record a job route, or to merge). It returns the
// response with its body fully read and replaced, or nil after exhausting
// the set (the 502 is already written when w is non-nil).
func (rt *Router) sendBuffered(w http.ResponseWriter, r *http.Request, key string, body []byte) (*http.Response, []byte, *member) {
	rid := api.RequestIDFromContext(r.Context())
	for attempt := 0; attempt < len(rt.ring.members); attempt++ {
		m := rt.ring.pick(key)
		if m == nil {
			break
		}
		m.inflight.Add(1)
		resp, err := rt.send(r, m, body)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			m.inflight.Add(-1)
			if rerr != nil {
				m.markDown()
				rt.logf("replica %s: marked down (%v) rid=%s", m.url, rerr, rid)
				continue
			}
			return resp, data, m
		}
		m.inflight.Add(-1)
		m.markDown()
		rt.logf("replica %s: marked down (%v) rid=%s", m.url, err, rid)
		continue
	}
	if w != nil {
		writeError(w, http.StatusBadGateway, errNoReplicas)
	}
	return nil, nil, nil
}

// writeBuffered relays a buffered response verbatim.
func writeBuffered(w http.ResponseWriter, resp *http.Response, data []byte) {
	for _, h := range relayHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(data)
}

// byWorkload routes predict, sweep and pareto: the request body's workload
// field is the placement key, so every request about one workload lands on
// the replica whose caches hold it.
func (rt *Router) byWorkload(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request body: %w", err))
		return
	}
	var peek struct {
		Workload string `json:"workload"`
	}
	// A malformed body still forwards (key ""), so the replica's decoder
	// owns the error message.
	_ = json.Unmarshal(body, &peek)
	rt.forward(w, r, peek.Workload, body)
}

// byName routes the per-profile endpoints by path name.
func (rt *Router) byName(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, r.PathValue("name"), nil)
}

// handleRegister routes POST /v1/profiles by the name the profile will be
// served under: the explicit name, else the inline envelope's workload,
// else the built-in workload being profiled.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request body: %w", err))
		return
	}
	var peek struct {
		Name     string `json:"name"`
		Workload string `json:"workload"`
		Profile  struct {
			Profile struct {
				Workload string `json:"workload"`
			} `json:"profile"`
		} `json:"profile"`
	}
	_ = json.Unmarshal(body, &peek)
	key := peek.Name
	if key == "" {
		key = peek.Profile.Profile.Workload
	}
	if key == "" {
		key = peek.Workload
	}
	rt.forward(w, r, key, body)
}

// handleSearchSubmit forwards the submit and records which replica
// accepted the job, so every later poll, cancel and event subscription
// for its id goes to the daemon actually running it.
func (rt *Router) handleSearchSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request body: %w", err))
		return
	}
	var peek struct {
		Workload string `json:"workload"`
	}
	_ = json.Unmarshal(body, &peek)
	resp, data, m := rt.sendBuffered(w, r, peek.Workload, body)
	if resp == nil {
		return
	}
	if resp.StatusCode/100 == 2 {
		var out api.SearchJobResponse
		if err := json.Unmarshal(data, &out); err == nil && out.Job.ID != "" {
			rt.jobs.Store(out.Job.ID, m)
			rt.logf("search job %s: routed to %s rid=%s", out.Job.ID, m.url, api.RequestIDFromContext(r.Context()))
		}
	}
	writeBuffered(w, resp, data)
}

// findJob resolves a job id to its owning replica: the remembered route
// if that replica is still up, else a probe of every healthy replica (a
// router restart forgets its routes; the jobs themselves survive on the
// replicas).
func (rt *Router) findJob(ctx context.Context, id string) *member {
	if v, ok := rt.jobs.Load(id); ok {
		m := v.(*member)
		if m.healthy.Load() {
			return m
		}
		rt.jobs.Delete(id)
	}
	for _, m := range rt.ring.healthyMembers() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/search/"+url.PathEscape(id), nil)
		if err != nil {
			continue
		}
		resp, err := rt.healthHC.Do(req)
		if err != nil {
			m.markDown()
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			rt.jobs.Store(id, m)
			return m
		}
	}
	return nil
}

// byJob routes the per-job endpoints (poll, cancel, event stream) to the
// replica that owns the job.
func (rt *Router) byJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m := rt.findJob(r.Context(), id)
	if m == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown search job %q", id))
		return
	}
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	resp, err := rt.send(r, m, nil)
	if err != nil {
		m.markDown()
		writeError(w, http.StatusBadGateway, fmt.Errorf("replica %s: %w", m.url, err))
		return
	}
	if r.Method == http.MethodDelete {
		rt.jobs.Delete(id)
	}
	rt.relay(w, resp)
}

// handleEvaluate scatter-gathers a cross-workload batch: one sub-request
// per workload, placed like any single-workload request, merged back in
// the request's workload order — exactly the row-major item order one
// replica would produce, so the merged response is byte-identical to a
// single-node answer.
func (rt *Router) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request body: %w", err))
		return
	}
	var req api.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Workloads) <= 1 {
		// Malformed or single-workload: one replica can answer it whole
		// (and owns the error message when it is malformed).
		var peek struct {
			Workload string
		}
		if len(req.Workloads) == 1 {
			peek.Workload = req.Workloads[0]
		}
		rt.forward(w, r, peek.Workload, body)
		return
	}

	type part struct {
		resp *http.Response
		data []byte
	}
	parts := make([]part, len(req.Workloads))
	t := obs.StartTimer()
	var wg sync.WaitGroup
	for i, workload := range req.Workloads {
		sub := req
		sub.Workloads = []string{workload}
		subBody, err := json.Marshal(&sub)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		wg.Add(1)
		go func(i int, key string, subBody []byte) {
			defer wg.Done()
			resp, data, _ := rt.sendBuffered(nil, r, key, subBody)
			parts[i] = part{resp: resp, data: data}
		}(i, workload, subBody)
	}
	wg.Wait()
	t.ObserveInto(rt.fanout)

	merged := api.BatchResponse{SchemaVersion: api.SchemaVersion}
	for i, p := range parts {
		if p.resp == nil {
			writeError(w, http.StatusBadGateway, errNoReplicas)
			return
		}
		if p.resp.StatusCode/100 != 2 {
			// Relay the first failing workload's verdict verbatim (first by
			// request order, so the merged failure is deterministic).
			writeBuffered(w, p.resp, p.data)
			return
		}
		var sub api.BatchResponse
		if err := json.Unmarshal(p.data, &sub); err != nil {
			writeError(w, http.StatusBadGateway,
				fmt.Errorf("replica answer for workload %q: %w", req.Workloads[i], err))
			return
		}
		merged.Items = append(merged.Items, sub.Items...)
	}
	writeJSON(w, http.StatusOK, merged)
}

// handleWorkloads merges every healthy replica's catalog: replicas share a
// store, so entries agree; first replica (by URL) wins on a name, and the
// merged list is re-sorted by name like a single daemon's answer.
func (rt *Router) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	members := rt.ring.healthyMembers()
	type part struct {
		resp *http.Response
		data []byte
		m    *member
	}
	parts := make([]part, len(members))
	t := obs.StartTimer()
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			m.inflight.Add(1)
			defer m.inflight.Add(-1)
			resp, err := rt.send(r, m, nil)
			if err != nil {
				m.markDown()
				rt.logf("replica %s: marked down (%v) rid=%s", m.url, err, api.RequestIDFromContext(r.Context()))
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return
			}
			parts[i] = part{resp: resp, data: data, m: m}
		}(i, m)
	}
	wg.Wait()
	t.ObserveInto(rt.fanout)

	seen := make(map[string]bool)
	var workloads []api.WorkloadInfo
	answered := false
	for _, p := range parts {
		if p.resp == nil || p.resp.StatusCode/100 != 2 {
			continue
		}
		var sub api.WorkloadsResponse
		if err := json.Unmarshal(p.data, &sub); err != nil {
			continue
		}
		answered = true
		for _, wl := range sub.Workloads {
			if !seen[wl.Name] {
				seen[wl.Name] = true
				workloads = append(workloads, wl)
			}
		}
	}
	if !answered {
		writeError(w, http.StatusBadGateway, errNoReplicas)
		return
	}
	sort.Slice(workloads, func(i, j int) bool { return workloads[i].Name < workloads[j].Name })
	writeJSON(w, http.StatusOK, api.WorkloadsResponse{SchemaVersion: api.SchemaVersion, Workloads: workloads})
}

// handleHealthz reports the router's view of the ring.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := api.RouterHealthResponse{
		SchemaVersion: api.SchemaVersion,
		Status:        "degraded",
		UptimeSeconds: int64(time.Since(rt.start).Seconds()),
	}
	for _, m := range rt.ring.members {
		out.Members = append(out.Members, api.RouterMember{
			URL:      m.url,
			Healthy:  m.healthy.Load(),
			Inflight: m.inflight.Load(),
		})
		if m.healthy.Load() {
			out.Status = "ok"
		}
	}
	rt.jobs.Range(func(any, any) bool { out.JobsRouted++; return true })
	writeJSON(w, http.StatusOK, out)
}

// CheckHealth probes every replica's /healthz once, concurrently. A
// replica re-enters rotation on the first success; it leaves after
// FailThreshold consecutive failures (or instantly, when live traffic
// hits a connect error).
func (rt *Router) CheckHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range rt.ring.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/healthz", nil)
			if err != nil {
				return
			}
			resp, err := rt.healthHC.Do(req)
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if err == nil && resp.StatusCode/100 == 2 {
				m.fails.Store(0)
				if m.markUp() {
					rt.logf("replica %s: healthy", m.url)
				}
				return
			}
			if fails := m.fails.Add(1); fails >= rt.failLimit && m.markDown() {
				rt.logf("replica %s: marked down after %d failed health checks", m.url, fails)
			}
		}(m)
	}
	wg.Wait()
}

// HealthLoop runs CheckHealth every interval until ctx is done.
func (rt *Router) HealthLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckHealth(ctx)
		}
	}
}
