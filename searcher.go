package mipp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mipp/api"
	"mipp/search"
)

// NewSearchEvaluator bridges a compiled Predictor into the search
// subsystem: each strategy generation arrives as one configuration batch
// and is answered by the batched phase-2 kernel (PredictBatchInto) fanned
// out in contiguous chunks over the shared worker pool — the same machinery
// Sweep and the Engine run on. workers caps the pool (0 = GOMAXPROCS).
//
// The evaluator owns one BatchResult and one metrics slice reused across
// generations, so steady-state search evaluation allocates nothing per
// generation; per the search.Evaluator contract the returned slice is valid
// only until the next call, and the evaluator must not be called
// concurrently (the Runner drives it serially).
func NewSearchEvaluator(pd *Predictor, workers int) search.Evaluator {
	br := &BatchResult{}
	var out []search.Metrics
	return func(ctx context.Context, configs []*Config) ([]search.Metrics, error) {
		if pd == nil {
			return nil, fmt.Errorf("mipp: search evaluator: nil predictor")
		}
		sweepInto(ctx, pd, configs, workers, br)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var failures []error
		for i := range configs {
			if err := br.Err(i); err != nil {
				name := "<nil>"
				if configs[i] != nil {
					name = configs[i].Name
				}
				failures = append(failures, fmt.Errorf("config %d (%s): %w", i, name, err))
			}
		}
		if len(failures) > 0 {
			return nil, errors.Join(failures...)
		}
		out = growSlice(out, len(configs))
		for i := range configs {
			if !br.Ok(i) {
				return nil, fmt.Errorf("mipp: search evaluator: missing result for config %d", i)
			}
			r := br.fill(i)
			out[i] = search.Metrics{
				TimeSeconds:  r.TimeSeconds(),
				Watts:        r.Watts(),
				EnergyJoules: r.EnergyJoules(),
				EDP:          r.EDP(),
				ED2P:         r.ED2P(),
			}
		}
		return out, nil
	}
}

// Searcher is the asynchronous search surface of the service: submit a
// design-space search job, poll it, cancel it. Like Evaluator it has two
// symmetric implementations — *Engine runs jobs in-process against its
// predictor cache, and mipp/client.Client forwards to a mippd daemon — and
// because a job's report depends only on the request (seed included), the
// two produce byte-identical reports.
type Searcher interface {
	// SubmitSearch admits a search job and returns its handle immediately.
	SubmitSearch(ctx context.Context, req *api.SearchRequest) (*api.SearchJobResponse, error)
	// SearchJob returns a job snapshot (progress counters while running,
	// the report once done).
	SearchJob(ctx context.Context, id string) (*api.SearchJobResponse, error)
	// CancelSearch stops a running job and returns its final snapshot.
	CancelSearch(ctx context.Context, id string) (*api.SearchJobResponse, error)
}

// ErrUnknownJob reports a poll or cancel against a job ID that was never
// issued (HTTP 404).
var ErrUnknownJob = errors.New("mipp: unknown search job")

// WaitSearch polls a Searcher until the job reaches a terminal state,
// sleeping poll between snapshots (a non-positive poll defaults to 50ms).
// It works identically against a local Engine and a remote client.
func WaitSearch(ctx context.Context, s Searcher, id string, poll time.Duration) (*api.SearchJobResponse, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		resp, err := s.SearchJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if resp.Job.Terminal() {
			return resp, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}
