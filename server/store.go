package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"

	"mipp"
	"mipp/api"
)

// The replication endpoints: a peer daemon (or mipp/store/remote) reads
// this daemon's catalog through GET /v1/store/index, revalidates it with
// conditional requests against the generation-derived ETag, and moves the
// immutable canonical envelopes by digest. They exist only when the
// engine's backing store implements mipp.ObjectStore (mippd -store does);
// a storeless daemon answers 404 so a misconfigured peer fails loudly.

// errNoObjectStore is the 404 body of every /v1/store request against a
// daemon without a replicable store.
var errNoObjectStore = errors.New("this daemon has no replicable profile store (run mippd with -store)")

// storeProfileInfo lowers store metadata to the wire DTO.
func storeProfileInfo(si mipp.ProfileStoreInfo) api.ProfileInfo {
	return api.ProfileInfo{
		Name:         si.Name,
		Workload:     si.Workload,
		Digest:       si.Digest,
		SizeBytes:    si.SizeBytes,
		Uops:         si.Uops,
		Instructions: si.Instructions,
		Entropy:      si.Entropy,
		MicroTraces:  si.MicroTraces,
		Resident:     si.Resident,
	}
}

// handleStoreIndex serves the catalog with its generation. The generation
// is read before the listing: a registration racing the listing may then
// appear under an older token, which only makes the next conditional GET
// refresh once more — reading it after could stamp a too-new token on a
// too-old listing and hide the change forever.
func (s *Server) handleStoreIndex(w http.ResponseWriter, r *http.Request) {
	if s.objects == nil {
		s.writeError(w, http.StatusNotFound, errNoObjectStore)
		return
	}
	gen := s.objects.Generation()
	etag := api.StoreETag(gen)
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	names := s.objects.Names()
	profiles := make([]api.ProfileInfo, 0, len(names))
	for _, name := range names {
		if si, ok := s.objects.Info(name); ok {
			profiles = append(profiles, storeProfileInfo(si))
		}
	}
	writeJSON(w, http.StatusOK, api.StoreIndexResponse{
		SchemaVersion: api.SchemaVersion,
		Generation:    gen,
		Profiles:      profiles,
	})
}

// handleStoreObjectGet serves one canonical envelope by digest. Objects are
// immutable — the digest is the content — so the ETag is the digest itself
// and peers cache fetched objects forever.
func (s *Server) handleStoreObjectGet(w http.ResponseWriter, r *http.Request) {
	if s.objects == nil {
		s.writeError(w, http.StatusNotFound, errNoObjectStore)
		return
	}
	digest := r.PathValue("digest")
	data, ok, err := s.objects.GetObject(digest)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown object %q", digest))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", "\""+digest+"\"")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleStoreObjectPut registers an uploaded canonical envelope under
// ?name=. The body's SHA-256 must match the path digest (transport
// corruption fails loudly); the store then re-derives the canonical form,
// so the response's Profile carries the authoritative digest.
func (s *Server) handleStoreObjectPut(w http.ResponseWriter, r *http.Request) {
	if s.objects == nil {
		s.writeError(w, http.StatusNotFound, errNoObjectStore)
		return
	}
	digest := r.PathValue("digest")
	name := r.URL.Query().Get("name")
	if name == "" {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("object PUT needs a ?name= to register under"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		s.writeError(w, decodeStatus(err), fmt.Errorf("read object body: %w", err))
		return
	}
	sum := sha256.Sum256(data)
	if got := "sha256:" + hex.EncodeToString(sum[:]); got != digest {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("object body digest %s does not match requested %s", got, digest))
		return
	}
	p, err := mipp.DecodeProfile(data)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.engine.Register(name, p); err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	si, ok := s.objects.Info(name)
	if !ok {
		s.writeError(w, http.StatusInternalServerError,
			fmt.Errorf("profile %q vanished after registration", name))
		return
	}
	s.logf("store object %s: put as %q rid=%s", digest, name, api.RequestIDFromContext(r.Context()))
	writeJSON(w, http.StatusOK, api.StorePutObjectResponse{
		SchemaVersion: api.SchemaVersion,
		Generation:    s.objects.Generation(),
		Profile:       storeProfileInfo(si),
	})
}

// handleStoreObjectDelete drops every name referencing the digest, through
// the engine so cached predictors are invalidated too.
func (s *Server) handleStoreObjectDelete(w http.ResponseWriter, r *http.Request) {
	if s.objects == nil {
		s.writeError(w, http.StatusNotFound, errNoObjectStore)
		return
	}
	digest := r.PathValue("digest")
	var deleted []string
	for _, name := range s.objects.Names() {
		si, ok := s.objects.Info(name)
		if !ok || si.Digest != digest {
			continue
		}
		if _, err := s.engine.DeleteProfile(r.Context(), name); err != nil {
			// A racing delete already removed the name; anything else is
			// a real store failure.
			if errors.Is(err, mipp.ErrUnknownWorkload) {
				continue
			}
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		deleted = append(deleted, name)
	}
	if len(deleted) == 0 {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown object %q", digest))
		return
	}
	s.logf("store object %s: deleted (%v) rid=%s", digest, deleted, api.RequestIDFromContext(r.Context()))
	writeJSON(w, http.StatusOK, api.StoreDeleteObjectResponse{
		SchemaVersion: api.SchemaVersion,
		Generation:    s.objects.Generation(),
		Deleted:       deleted,
	})
}
