package mlp

import (
	"sort"

	"mipp/internal/profiler"
	"mipp/internal/statstack"
)

// virtualLoad is one entry of the virtual instruction stream the stride-MLP
// model reconstructs from the profiled distributions (§4.5).
type virtualLoad struct {
	pos     int // uop position within the micro-trace
	static  uint32
	line    int64 // virtual cache-line id
	newLine bool  // first access to this line along the stride pattern
	miss    bool  // predicted LLC miss
	depth   int   // ℓ: loads on the dependence path (from f(ℓ))
	prev    int   // position of the previous access of the same static (-1)
}

type pfStats struct {
	timely  float64 // fraction of misses fully hidden by prefetching
	partial float64 // fraction of misses partially hidden
	spacing float64 // average trigger distance (uops) for partial misses
}

// The stride-MLP model rebuilds a virtual instruction stream from the
// load-spacing, stride, reuse-distance and inter-load dependence
// distributions, marks hits and misses, and steps an abstract ROB over the
// stream counting independent misses. The entry point is
// Compiled.strideMLP (compile.go), which caches the stream construction
// per (LLC geometry, profiled-ROB index); branch mispredictions drain the
// window (§2.5.2), so the abstract ROB steps with the truncated window
// size.

// buildVirtualStream positions each static load's recurrences with the
// load-spacing distribution, assigns addresses along its classified stride
// pattern, and marks predicted LLC misses with a per-static error-diffusion
// of its StatStack miss ratio (so discrete marks match the predicted rate).
func buildVirtualStream(p *profiler.Profile, m *profiler.Micro, curve *statstack.Curve, prm Params, targetMisses float64) []virtualLoad {
	type staticStream struct {
		accesses []virtualLoad
		newLines int
		ratio    float64
	}
	var perStatic []staticStream
	var lineSeq int64
	var expected float64
	var totalAccesses int
	for _, sl := range m.Loads {
		cls := profiler.Classify(sl)
		spacing := sl.AvgSpacing()
		if spacing < 1 {
			spacing = 1
		}
		missRatio := statstack.StaticLoadMissRatio(p, curve, sl.Static, prm.LLCLines)
		base := int64(sl.Static) << 24
		var addr int64
		var strideAcc []float64
		if len(cls.Strides) > 0 {
			strideAcc = make([]float64, len(cls.Strides))
		}
		prevLine := int64(-1)
		prevPos := -1
		var accesses []virtualLoad
		for k := 0; k < sl.Count; k++ {
			pos := sl.FirstPos + int(float64(k)*spacing+0.5)
			if pos >= m.Len {
				pos = m.Len - 1
			}
			var line int64
			switch cls.Category {
			case profiler.CatRandom, profiler.CatUnique:
				// Every access touches a fresh line.
				lineSeq++
				line = (1 << 40) + lineSeq
			default:
				line = base + addr>>6
				// Advance along the stride pattern, weighted
				// round-robin over the classified strides.
				if len(cls.Strides) > 0 {
					best := 0
					for i := range strideAcc {
						strideAcc[i] += cls.Weights[i]
						if strideAcc[i] > strideAcc[best] {
							best = i
						}
					}
					strideAcc[best]--
					addr += cls.Strides[best]
				}
			}
			v := virtualLoad{pos: pos, static: sl.Static, line: line, prev: prevPos}
			v.newLine = line != prevLine
			prevLine = line
			prevPos = pos
			accesses = append(accesses, v)
		}
		newLines := 0
		for i := range accesses {
			if accesses[i].newLine {
				newLines++
			}
		}
		perStatic = append(perStatic, staticStream{accesses, newLines, missRatio})
		expected += missRatio * float64(len(accesses))
		totalAccesses += len(accesses)
	}
	// Rescale the per-static ratios so the marked misses match the
	// micro-trace's own StatStack miss count: the global per-static reuse
	// spreads cold misses over time, while the per-window count keeps the
	// temporal clustering (cold bursts) that MLP depends on (§4.4).
	scale := 1.0
	if expected > 0 && targetMisses > 0 {
		scale = targetMisses / expected
	} else if targetMisses > 0 && totalAccesses > 0 {
		// No per-static signal at all: spread the misses uniformly.
		for i := range perStatic {
			perStatic[i].ratio = targetMisses / float64(totalAccesses)
		}
	}
	var stream []virtualLoad
	for _, ss := range perStatic {
		ratio := ss.ratio * scale
		if ratio > 1 {
			ratio = 1
		}
		if ss.newLines > 0 && ratio > 0 {
			perNew := ratio * float64(len(ss.accesses)) / float64(ss.newLines)
			if perNew > 1 {
				perNew = 1
			}
			acc := 0.0
			for i := range ss.accesses {
				if !ss.accesses[i].newLine {
					continue
				}
				acc += perNew
				if acc >= 0.9999 {
					ss.accesses[i].miss = true
					acc--
				}
			}
		}
		stream = append(stream, ss.accesses...)
	}
	sort.Slice(stream, func(i, j int) bool { return stream[i].pos < stream[j].pos })
	return stream
}

// assignDepths deterministically assigns each virtual load a dependence
// depth ℓ so the depth distribution matches the profiled f(ℓ).
func assignDepths(stream []virtualLoad, p *profiler.Profile, m *profiler.Micro, rob int) {
	f := microLoadDeps(p, m, rob)
	keys := f.Keys()
	if len(keys) == 0 {
		for i := range stream {
			stream[i].depth = 1
		}
		return
	}
	acc := make([]float64, len(keys))
	for i := range stream {
		best := 0
		for k := range keys {
			acc[k] += f.Fraction(keys[k])
			if acc[k] > acc[best] {
				best = k
			}
		}
		acc[best]--
		stream[i].depth = int(keys[best])
	}
}

// modelPrefetcher walks the virtual stream with a model of the limited-size
// per-PC stride table (§4.9): a miss is prefetchable when its static load is
// still tracked, follows a stride pattern that stays within a DRAM page, and
// has recurred at least MinConfidence times. Timeliness follows
// Equation 4.13: a trigger more than ROB uops ahead hides the full latency.
func modelPrefetcher(stream []virtualLoad, m *profiler.Micro, prm Params) pfStats {
	var out pfStats
	if !prm.Prefetch.Enabled {
		return out
	}
	classes := make(map[uint32]profiler.Classification, len(m.Loads))
	occurrence := make(map[uint32]int, len(m.Loads))
	for _, sl := range m.Loads {
		classes[sl.Static] = profiler.Classify(sl)
	}
	// LRU table of tracked statics.
	type lruEnt struct {
		static uint32
		tick   int
	}
	table := make(map[uint32]*lruEnt, prm.Prefetch.TableSize)
	tick := 0
	var misses, timely, partial, spacingSum float64
	for i := range stream {
		v := &stream[i]
		tick++
		occ := occurrence[v.static]
		occurrence[v.static] = occ + 1
		tracked := false
		if e, ok := table[v.static]; ok {
			e.tick = tick
			tracked = true
		} else {
			if len(table) >= prm.Prefetch.TableSize && prm.Prefetch.TableSize > 0 {
				// Evict LRU: its recurrence distance exceeded
				// the table reach.
				var victim *lruEnt
				for _, e := range table {
					if victim == nil || e.tick < victim.tick {
						victim = e
					}
				}
				delete(table, victim.static)
			}
			table[v.static] = &lruEnt{static: v.static, tick: tick}
		}
		if !v.miss {
			continue
		}
		misses++
		cls := classes[v.static]
		if !tracked || occ < prm.Prefetch.MinConfidence {
			continue
		}
		strided := cls.Category >= profiler.CatStride && cls.Category <= profiler.CatFilter4
		if !strided {
			continue
		}
		inPage := true
		for _, s := range cls.Strides {
			if s < 0 {
				s = -s
			}
			if uint64(s) >= prm.Prefetch.PageBytes {
				inPage = false
				break
			}
		}
		if !inPage {
			continue
		}
		// Timeliness (Eq 4.13): the prefetch triggers at the previous
		// recurrence; a gap of at least ROB uops hides everything.
		gap := prm.ROB
		if v.prev >= 0 {
			gap = v.pos - v.prev
		}
		if gap >= prm.ROB {
			timely++
		} else {
			partial++
			spacingSum += float64(gap)
		}
	}
	if misses > 0 {
		out.timely = timely / misses
		out.partial = partial / misses
	}
	if partial > 0 {
		out.spacing = spacingSum / partial
	}
	return out
}

// stepROB steps non-overlapping ROB-sized windows over the virtual stream
// and computes the average number of independent misses per window with at
// least one miss — the abstract MLP model of §4.5.
func stepROB(stream []virtualLoad, microLen, rob int) float64 {
	if rob <= 0 {
		return 1
	}
	var mlpSum float64
	var windows float64
	i := 0
	for start := 0; start < microLen; start += rob {
		end := start + rob
		var loads, misses float64
		var windowStream []virtualLoad
		for i < len(stream) && stream[i].pos < end {
			windowStream = append(windowStream, stream[i])
			loads++
			if stream[i].miss {
				misses++
			}
			i++
		}
		if misses == 0 || loads == 0 {
			continue
		}
		mw := misses / loads
		mlp := 0.0
		for _, v := range windowStream {
			if !v.miss {
				continue
			}
			mlp += pow1m(mw, v.depth-1)
		}
		if mlp < 1 {
			mlp = 1
		}
		mlpSum += mlp
		windows++
	}
	if windows == 0 {
		return 1
	}
	return mlpSum / windows
}

// pow1m computes (1-m)^k without importing math for the hot path.
func pow1m(m float64, k int) float64 {
	r := 1.0
	b := 1 - m
	if b < 0 {
		b = 0
	}
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			r *= b
		}
		b *= b
	}
	return r
}
