// Package store persists workload profiles on disk, content-addressed by
// the SHA-256 of their canonical schema-v1 JSON. It implements
// mipp.ProfileStore, turning the profile — the paper's expensive once-per-
// workload artifact — into a durable unit of reuse: a mippd restarted over
// the same directory serves every previously registered workload without
// re-profiling, and several daemons can share one directory.
//
// Layout:
//
//	DIR/objects/<sha256-hex>.json   immutable profile envelopes, one per digest
//	DIR/index.json                  name → {digest, size, summary} map
//
// Every write is atomic (temp file + rename in the same directory), so
// readers never observe a torn object or index. The index file carries a
// monotonic generation counter, bumped under the cross-process file lock on
// every rewrite; read operations compare it against the last generation
// loaded and reload on mismatch, without any file-watching machinery. (A
// stat-based mtime+size comparison can miss a same-size rewrite landing
// within one mtime granule; the generation cannot, and it doubles as the
// change token the remote store's conditional GETs revalidate against.)
// Object bytes are digest-verified on every load, so on-disk corruption
// surfaces as ErrCorrupt instead of silent mispredictions.
//
// Decoded profiles stay resident in memory under a configurable LRU byte
// bound (WithMaxResidentBytes); unpinned entries are evicted least-recently-
// used first and reload transparently on their next Get. A per-entry lock
// serializes loads of the same name while leaving other names — and every
// resident hit — uncontended.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mipp"
	"mipp/obs"
)

const (
	objectsDir = "objects"
	indexName  = "index.json"
	lockName   = "index.lock"

	// IndexSchemaVersion versions the index file; unknown versions are
	// rejected at Open so stale stores fail loudly.
	IndexSchemaVersion = 1

	// DigestPrefix prefixes every object digest, naming the hash so the
	// scheme can evolve without ambiguity.
	DigestPrefix = "sha256:"
)

// Store errors, wrapped with the offending path; test with errors.Is.
var (
	// ErrNotFound reports a name with no stored profile.
	ErrNotFound = errors.New("store: profile not found")
	// ErrCorrupt reports an object whose bytes no longer match the
	// digest recorded in the index.
	ErrCorrupt = errors.New("store: corrupt object")
)

// indexEntry is the persisted metadata of one stored profile.
type indexEntry struct {
	Digest       string  `json:"digest"`
	SizeBytes    int64   `json:"size_bytes"`
	Workload     string  `json:"workload"`
	Uops         int64   `json:"uops"`
	Instructions int64   `json:"instructions"`
	Entropy      float64 `json:"entropy"`
	MicroTraces  int     `json:"micro_traces"`
}

// indexBody is the versioned index file format. Generation is the
// monotonic rewrite counter (absent — zero — in pre-generation indexes,
// which are reloaded unconditionally until their first write stamps one).
type indexBody struct {
	SchemaVersion int                   `json:"schema_version"`
	Generation    uint64                `json:"generation"`
	Entries       map[string]indexEntry `json:"entries"`
}

// entry is the in-memory residency state of one name. loadMu serializes
// disk loads of this entry; every other field is guarded by Store.mu.
type entry struct {
	loadMu sync.Mutex

	name     string
	digest   string        // digest of the resident body
	resident *mipp.Profile // nil when evicted / never loaded
	size     int64
	pinned   bool
	elem     *list.Element // position in the LRU list while resident
}

// Store is a content-addressed on-disk profile store. It is safe for
// concurrent use, including by several Store instances (in the same or
// different processes) over one directory.
type Store struct {
	dir         string
	maxResident int64

	mu            sync.Mutex
	index         map[string]indexEntry
	entries       map[string]*entry
	lru           *list.List // front = most recently used; values are *entry
	residentBytes int64
	generation    uint64 // of the last index loaded or written

	// Counters are obs instruments: still only mutated under mu, but
	// readable lock-free, so Stats (the /healthz read-back) and /metrics
	// share the same cells instead of duplicating them.
	hits, misses, loads     obs.Counter
	evictions, evictedBytes obs.Counter
}

// Option customizes a Store.
type Option func(*Store)

// WithMaxResidentBytes bounds the decoded profiles held in memory: when the
// sum of resident canonical sizes exceeds n, unpinned entries are evicted
// least-recently-used first and reload transparently on their next Get.
// n <= 0 leaves residency unbounded.
func WithMaxResidentBytes(n int64) Option {
	return func(s *Store) { s.maxResident = n }
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:     dir,
		index:   make(map[string]indexEntry),
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
	for _, o := range opts {
		o(s)
	}
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	unlock, err := lockFile(s.lockPath())
	if err != nil {
		return nil, err
	}
	defer unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(s.indexPath()); errors.Is(err, os.ErrNotExist) {
		if err := s.writeIndexLocked(); err != nil {
			return nil, err
		}
		return s, nil
	}
	if err := s.readIndexLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) indexPath() string { return filepath.Join(s.dir, indexName) }

func (s *Store) lockPath() string { return filepath.Join(s.dir, lockName) }

func (s *Store) objectPath(digest string) string {
	return filepath.Join(s.dir, objectsDir, strings.TrimPrefix(digest, DigestPrefix)+".json")
}

// digestOf content-addresses one canonical envelope.
func digestOf(data []byte) string {
	sum := sha256.Sum256(data)
	return DigestPrefix + hex.EncodeToString(sum[:])
}

// readIndexLocked (re)loads the index file.
func (s *Store) readIndexLocked() error {
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return fmt.Errorf("store: read index %s: %w", s.indexPath(), err)
	}
	return s.decodeIndexLocked(data)
}

// decodeIndexLocked installs one index file's content, recording its
// generation as the staleness baseline.
func (s *Store) decodeIndexLocked(data []byte) error {
	var body indexBody
	if err := json.Unmarshal(data, &body); err != nil {
		return fmt.Errorf("store: decode index %s: %w", s.indexPath(), err)
	}
	if body.SchemaVersion != IndexSchemaVersion {
		return fmt.Errorf("store: index %s has schema version %d (this build reads version %d)",
			s.indexPath(), body.SchemaVersion, IndexSchemaVersion)
	}
	s.index = body.Entries
	if s.index == nil {
		s.index = make(map[string]indexEntry)
	}
	s.generation = body.Generation
	s.dropStaleLocked()
	return nil
}

// maybeReloadLocked re-reads the index when another writer has replaced it
// since our last read — the fsnotify-free staleness check. The comparison
// is by the index's generation counter, which every writer bumps under the
// cross-process file lock: unlike a stat-based mtime+size check it cannot
// miss a same-size rewrite within one mtime granule. A zero generation is
// a pre-generation index; those reload unconditionally (conservative, and
// gone after their first write). Decode failures keep the last good index
// (the writer may be mid-rename); the next operation retries.
func (s *Store) maybeReloadLocked() {
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return
	}
	var peek struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(data, &peek); err != nil {
		return
	}
	if peek.Generation == s.generation && peek.Generation > 0 {
		return
	}
	_ = s.decodeIndexLocked(data)
}

// dropStaleLocked discards resident bodies whose index entry vanished or
// changed digest (e.g. another process re-registered or deleted the name).
func (s *Store) dropStaleLocked() {
	for name, e := range s.entries {
		ie, ok := s.index[name]
		if ok && (e.resident == nil || e.digest == ie.Digest) {
			continue
		}
		s.unmapLocked(e)
		if !ok {
			delete(s.entries, name)
		}
	}
}

// unmapLocked removes an entry's resident body without counting it as an
// LRU eviction (used for deletes and staleness, not capacity pressure).
func (s *Store) unmapLocked(e *entry) {
	if e.resident == nil {
		return
	}
	e.resident = nil
	s.residentBytes -= e.size
	if e.elem != nil {
		s.lru.Remove(e.elem)
		e.elem = nil
	}
}

// touchLocked installs or refreshes an entry at the LRU front.
func (s *Store) touchLocked(e *entry) {
	if e.elem != nil {
		s.lru.MoveToFront(e.elem)
		return
	}
	e.elem = s.lru.PushFront(e)
}

// evictLocked enforces the resident-byte bound, skipping pinned entries.
func (s *Store) evictLocked() {
	if s.maxResident <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.residentBytes > s.maxResident; {
		e := el.Value.(*entry)
		prev := el.Prev()
		if !e.pinned {
			size := e.size
			s.unmapLocked(e)
			s.evictions.Inc()
			s.evictedBytes.Add(uint64(size))
		}
		el = prev
	}
}

// writeIndexLocked atomically persists the index under the next generation,
// committing the counter only once the rename landed. Callers hold both the
// store mutex and the cross-process file lock (and re-read the index first),
// so generations are strictly increasing across every process sharing the
// directory.
func (s *Store) writeIndexLocked() error {
	gen := s.generation + 1
	data, err := json.Marshal(indexBody{SchemaVersion: IndexSchemaVersion, Generation: gen, Entries: s.index})
	if err != nil {
		return fmt.Errorf("store: encode index: %w", err)
	}
	if err := atomicWrite(s.indexPath(), data); err != nil {
		return err
	}
	s.generation = gen
	return nil
}

// atomicWrite writes data to path via a temp file + rename in the same
// directory, so concurrent readers see either the old or the new content.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	return nil
}

// infoLocked builds the public metadata view of one index entry.
func (s *Store) infoLocked(name string, ie indexEntry) mipp.ProfileStoreInfo {
	resident := false
	if e, ok := s.entries[name]; ok {
		resident = e.resident != nil && e.digest == ie.Digest
	}
	return mipp.ProfileStoreInfo{
		Name:         name,
		Digest:       ie.Digest,
		SizeBytes:    ie.SizeBytes,
		Workload:     ie.Workload,
		Uops:         ie.Uops,
		Instructions: ie.Instructions,
		Entropy:      ie.Entropy,
		MicroTraces:  ie.MicroTraces,
		Resident:     resident,
	}
}

// Put implements mipp.ProfileStore: marshal p to its canonical envelope,
// write the content-addressed object (skipped when the digest already
// exists — re-registering identical bytes is free), update the index
// atomically, and make the profile resident.
func (s *Store) Put(name string, p *mipp.Profile) (mipp.ProfileStoreInfo, error) {
	if name == "" {
		name = p.Workload()
	}
	if name == "" {
		return mipp.ProfileStoreInfo{}, fmt.Errorf("store: Put: profile has no workload name and none was given")
	}
	data, err := json.Marshal(p)
	if err != nil {
		return mipp.ProfileStoreInfo{}, fmt.Errorf("store: Put(%q): %w", name, err)
	}
	digest := digestOf(data)
	objPath := s.objectPath(digest)
	// Write the object unless an intact copy is already on disk: the
	// verify-before-skip means re-uploading a profile repairs an object
	// that rotted (or was truncated) behind the store's back.
	if existing, err := os.ReadFile(objPath); err == nil && digestOf(existing) == digest {
		// Content-addressed and verified: nothing to write.
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return mipp.ProfileStoreInfo{}, fmt.Errorf("store: Put(%q): %w", name, err)
	} else if err := atomicWrite(objPath, data); err != nil {
		return mipp.ProfileStoreInfo{}, err
	}

	// Exclusive cross-instance lock around the index read-modify-write:
	// two daemons sharing the directory cannot lose each other's
	// registrations to interleaved rewrites.
	unlock, err := lockFile(s.lockPath())
	if err != nil {
		return mipp.ProfileStoreInfo{}, err
	}
	defer unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readIndexLocked(); err != nil {
		return mipp.ProfileStoreInfo{}, err
	}
	old, hadOld := s.index[name]
	ie := indexEntry{
		Digest:       digest,
		SizeBytes:    int64(len(data)),
		Workload:     p.Workload(),
		Uops:         p.TotalUops(),
		Instructions: p.TotalInstructions(),
		Entropy:      p.Entropy(),
		MicroTraces:  p.MicroTraces(),
	}
	s.index[name] = ie
	if err := s.writeIndexLocked(); err != nil {
		if hadOld {
			s.index[name] = old
		} else {
			delete(s.index, name)
		}
		return mipp.ProfileStoreInfo{}, err
	}
	if hadOld && old.Digest != digest && !s.referencedLocked(old.Digest) {
		_ = os.Remove(s.objectPath(old.Digest))
	}

	e := s.entries[name]
	if e == nil {
		e = &entry{name: name}
		s.entries[name] = e
	}
	s.unmapLocked(e)
	e.resident, e.digest, e.size = p, digest, int64(len(data))
	s.residentBytes += e.size
	s.touchLocked(e)
	s.evictLocked()
	return s.infoLocked(name, ie), nil
}

// referencedLocked reports whether any index entry still names digest.
func (s *Store) referencedLocked(digest string) bool {
	for _, ie := range s.index {
		if ie.Digest == digest {
			return true
		}
	}
	return false
}

// Get implements mipp.ProfileStore. Resident entries are returned without
// touching the disk; evicted ones are loaded (digest-verified) under the
// entry's own lock, so concurrent Gets of one cold name share a single
// load while other names proceed.
func (s *Store) Get(name string) (*mipp.Profile, bool, error) {
	s.mu.Lock()
	s.maybeReloadLocked()
	ie, ok := s.index[name]
	if !ok {
		s.mu.Unlock()
		return nil, false, nil
	}
	e := s.entries[name]
	if e == nil {
		e = &entry{name: name}
		s.entries[name] = e
	}
	if e.resident != nil && e.digest == ie.Digest {
		s.hits.Inc()
		s.touchLocked(e)
		p := e.resident
		s.mu.Unlock()
		return p, true, nil
	}
	s.misses.Inc()
	s.mu.Unlock()

	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	// A concurrent caller may have completed the load while we waited.
	s.mu.Lock()
	if e.resident != nil && e.digest == ie.Digest {
		s.touchLocked(e)
		p := e.resident
		s.mu.Unlock()
		return p, true, nil
	}
	s.mu.Unlock()

	p, err := s.loadObject(ie)
	for attempt := 0; err != nil; attempt++ {
		// The load may have raced a re-Put that replaced the digest and
		// GC'd the object we were reading. Re-check the index: a changed
		// digest means our snapshot was stale, not the store corrupt —
		// retry against the current one.
		s.mu.Lock()
		s.maybeReloadLocked()
		cur, ok := s.index[name]
		s.mu.Unlock()
		if !ok {
			return nil, false, nil // deleted while we were loading
		}
		if cur.Digest == ie.Digest || attempt >= 2 {
			return nil, true, err
		}
		ie = cur
		p, err = s.loadObject(ie)
	}

	s.mu.Lock()
	s.loads.Inc()
	// Install only if the index still names the digest we loaded AND our
	// entry is still the registered one; a racing Put/Delete owns the
	// entry's residency otherwise (a Delete+re-Put replaces the entry
	// struct — installing into the orphan would double-count resident
	// bytes). The loaded profile is still correct for this caller's
	// snapshot of the index.
	if cur, ok := s.index[name]; ok && cur.Digest == ie.Digest && s.entries[name] == e {
		s.unmapLocked(e)
		e.resident, e.digest, e.size = p, ie.Digest, ie.SizeBytes
		s.residentBytes += e.size
		s.touchLocked(e)
		s.evictLocked()
	}
	s.mu.Unlock()
	return p, true, nil
}

// loadObject reads and verifies one object file.
func (s *Store) loadObject(ie indexEntry) (*mipp.Profile, error) {
	path := s.objectPath(ie.Digest)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: load %s: %w", path, err)
	}
	if got := digestOf(data); got != ie.Digest {
		return nil, fmt.Errorf("%w: %s: content digest %s does not match index digest %s",
			ErrCorrupt, path, got, ie.Digest)
	}
	p, err := mipp.DecodeProfile(data)
	if err != nil {
		return nil, fmt.Errorf("store: load %s: %w", path, err)
	}
	return p, nil
}

// Delete implements mipp.ProfileStore.
func (s *Store) Delete(name string) (bool, error) {
	unlock, err := lockFile(s.lockPath())
	if err != nil {
		return false, err
	}
	defer unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.readIndexLocked(); err != nil {
		return false, err
	}
	ie, ok := s.index[name]
	if !ok {
		return false, nil
	}
	delete(s.index, name)
	if err := s.writeIndexLocked(); err != nil {
		s.index[name] = ie
		return false, err
	}
	if e, ok := s.entries[name]; ok {
		s.unmapLocked(e)
		delete(s.entries, name)
	}
	if !s.referencedLocked(ie.Digest) {
		_ = os.Remove(s.objectPath(ie.Digest))
	}
	return true, nil
}

// Pin keeps name's decoded profile exempt from LRU eviction (it still
// must be loaded by a Get or Put to be resident), reporting whether the
// name is stored. Unpin undoes it.
func (s *Store) Pin(name string) bool {
	return s.setPinned(name, true)
}

// Unpin makes name's resident profile evictable again.
func (s *Store) Unpin(name string) bool {
	return s.setPinned(name, false)
}

func (s *Store) setPinned(name string, pinned bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeReloadLocked()
	if _, ok := s.index[name]; !ok {
		return false
	}
	e := s.entries[name]
	if e == nil {
		e = &entry{name: name}
		s.entries[name] = e
	}
	e.pinned = pinned
	if !pinned {
		s.evictLocked()
	}
	return true
}

// Info implements mipp.ProfileStore.
func (s *Store) Info(name string) (mipp.ProfileStoreInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeReloadLocked()
	ie, ok := s.index[name]
	if !ok {
		return mipp.ProfileStoreInfo{}, false
	}
	return s.infoLocked(name, ie), true
}

// Names implements mipp.ProfileStore.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeReloadLocked()
	names := make([]string, 0, len(s.index))
	for n := range s.index {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generation implements mipp.ObjectStore: the index's monotonic change
// token. It re-checks disk first, so the value reflects every writer
// sharing the directory — two calls returning the same generation bracket
// an interval in which the catalog did not change.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeReloadLocked()
	return s.generation
}

// GetObject implements mipp.ObjectStore: the canonical envelope bytes of
// one stored object, digest-verified. The bool reports whether any index
// entry references the digest; the error reports read failures and
// corruption for referenced objects.
func (s *Store) GetObject(digest string) ([]byte, bool, error) {
	s.mu.Lock()
	s.maybeReloadLocked()
	referenced := s.referencedLocked(digest)
	s.mu.Unlock()
	if !referenced {
		return nil, false, nil
	}
	path := s.objectPath(digest)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Raced a delete that GC'd the object after our index check.
			return nil, false, nil
		}
		return nil, true, fmt.Errorf("store: load %s: %w", path, err)
	}
	if got := digestOf(data); got != digest {
		return nil, true, fmt.Errorf("%w: %s: content digest %s does not match requested %s",
			ErrCorrupt, path, got, digest)
	}
	return data, true, nil
}

// Stats implements mipp.ProfileStore.
func (s *Store) Stats() mipp.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return mipp.StoreStats{
		Objects:          len(s.index),
		ResidentEntries:  s.lru.Len(),
		ResidentBytes:    s.residentBytes,
		MaxResidentBytes: s.maxResident,
		Hits:             s.hits.Value(),
		Misses:           s.misses.Value(),
		Loads:            s.loads.Value(),
		Evictions:        s.evictions.Value(),
		EvictedBytes:     s.evictedBytes.Value(),
	}
}

// Compile-time checks: the on-disk store is an Engine's backing store, and
// an object store a peer can replicate from.
var (
	_ mipp.ProfileStore = (*Store)(nil)
	_ mipp.ObjectStore  = (*Store)(nil)
)
