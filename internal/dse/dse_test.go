package dse

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestParetoFrontBasics(t *testing.T) {
	pts := []Point{
		{"a", 1, 10},
		{"b", 2, 5},
		{"c", 3, 1},
		{"d", 2.5, 6}, // dominated by b
		{"e", 1, 12},  // dominated by a
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front size %d, want 3: %v", len(front), front)
	}
	for _, p := range front {
		for _, q := range pts {
			if q.Dominates(p) {
				t.Errorf("front point %s dominated by %s", p.Config, q.Config)
			}
		}
	}
}

func TestParetoFrontQuickProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var pts []Point
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{
				Config: fmt.Sprintf("c%d", i),
				Time:   float64(raw[i]%100) + 1,
				Power:  float64(raw[i+1]%100) + 1,
			})
		}
		front := ParetoFront(pts)
		// No front point is dominated by any point.
		for _, p := range front {
			for _, q := range pts {
				if q.Dominates(p) {
					return false
				}
			}
		}
		return len(front) <= len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatePerfectPrediction(t *testing.T) {
	var pts []Point
	for i := 0; i < 20; i++ {
		pts = append(pts, Point{
			Config: fmt.Sprintf("c%d", i),
			Time:   1 + float64(i%7),
			Power:  1 + float64((i*3)%11),
		})
	}
	m := Evaluate(pts, pts)
	if m.Sensitivity != 1 || m.Specificity != 1 || m.Accuracy != 1 {
		t.Errorf("perfect prediction metrics = %+v", m)
	}
	if math.Abs(m.HVR-1) > 1e-9 {
		t.Errorf("perfect HVR = %v", m.HVR)
	}
}

func TestEvaluateNoisyPredictionDegrades(t *testing.T) {
	var act, pred []Point
	for i := 0; i < 30; i++ {
		p := Point{Config: fmt.Sprintf("c%d", i), Time: 1 + float64(i%6), Power: 1 + float64((i*7)%13)}
		act = append(act, p)
		// Noise that reorders some points.
		q := p
		q.Time *= 1 + 0.4*float64((i*5)%3-1)
		pred = append(pred, q)
	}
	m := Evaluate(pred, act)
	if m.HVR < 0 || m.HVR > 1.0001 {
		t.Errorf("HVR %v out of [0,1]", m.HVR)
	}
	if m.Accuracy < 0.3 {
		t.Errorf("accuracy %v implausibly low", m.Accuracy)
	}
}

func TestHypervolume(t *testing.T) {
	ref := Point{Time: 10, Power: 10}
	hv := Hypervolume([]Point{{"a", 5, 5}}, ref)
	if hv != 25 {
		t.Errorf("hv = %v, want 25", hv)
	}
	hv2 := Hypervolume([]Point{{"a", 5, 5}, {"b", 2, 8}}, ref)
	if hv2 <= hv {
		t.Error("adding a non-dominated point must grow the hypervolume")
	}
}

func TestBestUnderPowerCap(t *testing.T) {
	pts := []Point{{"slow-low", 10, 5}, {"fast-high", 1, 50}, {"mid", 5, 20}}
	if best, ok := BestUnderPowerCap(pts, 25); !ok || best.Config != "mid" {
		t.Errorf("cap 25 -> %v", best)
	}
	if best, ok := BestUnderPowerCap(pts, 100); !ok || best.Config != "fast-high" {
		t.Errorf("cap 100 -> %v", best)
	}
	if _, ok := BestUnderPowerCap(pts, 1); ok {
		t.Error("cap 1 should fit nothing")
	}
}

func TestBestByED2P(t *testing.T) {
	pts := []Point{{"a", 2, 10}, {"b", 1, 50}}
	// ED2P: a = 10*8 = 80, b = 50*1 = 50 -> b.
	if best, ok := BestByED2P(pts); !ok || best.Config != "b" {
		t.Errorf("ED2P best = %v", best)
	}
}
