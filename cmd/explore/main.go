// Command explore runs the headline application of the framework: full
// design-space exploration (Chapter 7). It profiles each workload once,
// evaluates the analytical model over the 243-point design space, prints the
// predicted Pareto frontier and — optionally — validates the pruning against
// the cycle-level simulator.
//
// Usage:
//
//	explore -workload bzip2                  # model-only, full 243 points
//	explore -workload bzip2 -validate -k 13  # + simulator on a 19-point sample
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/dse"
	"mipp/internal/ooo"
	"mipp/internal/power"
	"mipp/internal/profiler"
	"mipp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("explore: ")
	var (
		name     = flag.String("workload", "bzip2", "benchmark name")
		n        = flag.Int("n", 200_000, "trace length in micro-ops")
		k        = flag.Int("k", 1, "design-space stride (1 = all 243 configs)")
		validate = flag.Bool("validate", false, "simulate the sampled space and score the pruning")
	)
	flag.Parse()

	stream, err := workload.Generate(*name, *n, 0)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	p := profiler.Run(stream, profiler.Options{})
	profTime := time.Since(t0)
	m := core.New(p, nil)

	space := config.DesignSpace()
	var configs []*config.Config
	for i := 0; i < len(space); i += *k {
		configs = append(configs, space[i])
	}

	t0 = time.Now()
	var pred []dse.Point
	for _, cfg := range configs {
		res := m.Evaluate(cfg, core.DefaultOptions())
		pw := power.Estimate(cfg, &res.Activity)
		pred = append(pred, dse.Point{
			Config: cfg.Name,
			Time:   res.TimeSeconds(cfg.FrequencyGHz),
			Power:  pw.Total(),
		})
	}
	modelTime := time.Since(t0)

	fmt.Printf("%s: profiled %d uops in %v; evaluated %d configs in %v (%.1f configs/s)\n",
		*name, p.TotalUops, profTime.Round(time.Millisecond), len(configs),
		modelTime.Round(time.Millisecond), float64(len(configs))/modelTime.Seconds())
	fmt.Println("predicted Pareto frontier (time vs power):")
	for _, pt := range dse.ParetoFront(pred) {
		fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", pt.Config, pt.Time, pt.Power)
	}

	if !*validate {
		return
	}
	t0 = time.Now()
	var act []dse.Point
	for _, cfg := range configs {
		sim, err := ooo.Simulate(cfg, stream, ooo.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pw := power.Estimate(cfg, &sim.Activity)
		act = append(act, dse.Point{
			Config: cfg.Name,
			Time:   sim.TimeSeconds(cfg.FrequencyGHz),
			Power:  pw.Total(),
		})
	}
	simTime := time.Since(t0)
	met := dse.Evaluate(pred, act)
	fmt.Printf("validation: simulated %d configs in %v (model speedup %.0fx)\n",
		len(configs), simTime.Round(time.Millisecond),
		simTime.Seconds()/modelTime.Seconds())
	fmt.Printf("pruning quality: sensitivity=%.2f specificity=%.2f accuracy=%.2f HVR=%.3f\n",
		met.Sensitivity, met.Specificity, met.Accuracy, met.HVR)
	fmt.Println("actual Pareto frontier:")
	for _, pt := range dse.ParetoFront(act) {
		fmt.Printf("  %-36s time=%.6fs power=%5.1fW\n", pt.Config, pt.Time, pt.Power)
	}
}
