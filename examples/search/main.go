// Example search walks the design-space search subsystem end to end: a
// ~123k-point parametric space that is never materialized, a power-capped
// genetic search submitted as an asynchronous job against an Engine (the
// exact flow POST /v1/search runs server-side), progress polling, and a
// direct hill-climbing run through the library API for comparison.
//
// Run with: go run ./examples/search
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mipp"
	"mipp/api"
	"mipp/arch"
	"mipp/search"
)

func main() {
	log.SetFlags(0)

	// Profile once; the profile answers every question below.
	stream, err := mipp.GenerateWorkload("mcf", 120_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	profile := mipp.NewProfiler().ProfileStream(stream)
	engine := mipp.NewEngine()
	if err := engine.Register("mcf", profile); err != nil {
		log.Fatal(err)
	}

	// A lazy parametric space: 6·16·8·8·10·2 = 122880 points. Size() and
	// At(i) are all it costs — no slice of 123k configs ever exists.
	space := &arch.Space{
		Name:   "wide-123k",
		Widths: []int{1, 2, 3, 4, 5, 6},
		ROBs:   []int{16, 24, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 512},
		L2Bytes: []int64{64 << 10, 128 << 10, 256 << 10, 512 << 10,
			1 << 20, 2 << 20, 4 << 20, 8 << 20},
		L3Bytes: []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20,
			16 << 20, 32 << 20, 64 << 20, 128 << 20},
		Clocks: []arch.DVFSPoint{
			{FrequencyGHz: 1.2, VoltageV: 0.85}, {FrequencyGHz: 1.6, VoltageV: 0.95},
			{FrequencyGHz: 2.0, VoltageV: 1.0}, {FrequencyGHz: 2.2, VoltageV: 1.03},
			{FrequencyGHz: 2.4, VoltageV: 1.05}, {FrequencyGHz: 2.66, VoltageV: 1.1},
			{FrequencyGHz: 2.8, VoltageV: 1.13}, {FrequencyGHz: 3.0, VoltageV: 1.16},
			{FrequencyGHz: 3.2, VoltageV: 1.2}, {FrequencyGHz: 3.33, VoltageV: 1.25},
		},
		Prefetcher: []bool{false, true},
	}
	fmt.Printf("space %q: %d points, never materialized\n", space.Name, space.Size())

	// Submit a power-capped genetic search as an async job — the same
	// call POST /v1/search makes. The job runs on the engine's cached
	// predictor; we poll it like a remote client would.
	ctx := context.Background()
	cap := 20.0
	sub, err := engine.SubmitSearch(ctx, &api.SearchRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Space:         api.SpaceSpec{Kind: "parametric", Space: space},
		Strategy:      api.StrategySpec{Kind: "genetic", Seed: 7, Population: 64, Generations: 40},
		Objective:     "time",
		CapWatts:      &cap,
		Budget:        space.Size() / 20, // look at no more than 5%
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (strategy %s over %d points)\n", sub.Job.ID, sub.Job.Strategy, sub.Job.SpaceSize)

	for {
		snap, err := engine.SearchJob(ctx, sub.Job.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: generation %d, %d evaluations\n", snap.Job.State, snap.Job.Generations, snap.Job.Evaluations)
		if snap.Job.Terminal() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	final, err := mipp.WaitSearch(ctx, engine, sub.Job.ID, time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	rep := final.Job.Report
	if rep == nil || rep.Best == nil {
		log.Fatalf("search found no feasible point under %gW (job %+v)", cap, final.Job)
	}
	fmt.Printf("genetic: best %s time=%.6fs power=%.1fW after %d/%d evaluations (%.2f%% of the space)\n",
		rep.Best.Config, rep.Best.TimeSeconds, rep.Best.Watts,
		rep.Evaluations, rep.SpaceSize, 100*float64(rep.Evaluations)/float64(rep.SpaceSize))

	// The same question through the library API with a different
	// optimizer: multi-restart hill climbing over the axis neighborhood.
	pred, err := engine.Predictor("mcf", api.PredictorSpec{})
	if err != nil {
		log.Fatal(err)
	}
	hill, err := search.Run(ctx, mipp.NewSearchEvaluator(pred, 0), space, search.HillClimb{Restarts: 12}, search.Options{
		Objective:   search.ObjectiveTime,
		Constraints: search.Constraints{MaxWatts: cap},
		Seed:        7,
		Budget:      space.Size() / 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	if hill.Best == nil {
		log.Fatalf("hill climb found no feasible point under %gW", cap)
	}
	fmt.Printf("hill:    best %s time=%.6fs power=%.1fW after %d evaluations\n",
		hill.Best.Config, hill.Best.TimeSeconds, hill.Best.Watts, hill.Evaluations)

	fmt.Println("power-capped Pareto front (genetic, evaluated subset):")
	for i, e := range rep.Front {
		if i == 8 {
			fmt.Printf("  ... %d more\n", len(rep.Front)-8)
			break
		}
		fmt.Printf("  %-40s time=%.6fs power=%5.1fW area=%.2f\n", e.Config, e.TimeSeconds, e.Watts, e.Area)
	}
}
