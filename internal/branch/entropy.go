package branch

import (
	"sort"

	"mipp/internal/stats"
	"mipp/internal/trace"
)

// Entropy computes the linear branch entropy of a dynamic branch stream
// (Equations 3.13-3.15). For every (static branch, local history pattern)
// pair it tracks taken/not-taken counts; the per-pair entropy
// E(p) = 2*min(p, 1-p) is averaged over all dynamically executed branches.
//
// histBits is the local-history length; the paper's model uses a fixed
// history length and maps the resulting entropy to misprediction rates of
// concrete predictors with a per-predictor linear fit.
func Entropy(s *trace.Stream, histBits uint) float64 {
	type rec struct{ taken, notTaken uint32 }
	// Key: static branch id combined with its local history pattern.
	counts := make(map[uint64]*rec)
	hists := make(map[uint32]uint64)
	mask := maskBits(histBits)
	var total float64
	for i := range s.Uops {
		u := &s.Uops[i]
		if u.Class != trace.Branch {
			continue
		}
		h := hists[u.Static] & mask
		key := uint64(u.Static)<<uint64(histBits) | h
		r := counts[key]
		if r == nil {
			r = &rec{}
			counts[key] = r
		}
		if u.Taken {
			r.taken++
		} else {
			r.notTaken++
		}
		hists[u.Static] = hists[u.Static]<<1 | bit(u.Taken)
		total++
	}
	if total == 0 {
		return 0
	}
	// E = (1/Nb) Σ_b Σ_H n(b,H) · E(p(b,H))
	e := 0.0
	for _, r := range counts {
		n := float64(r.taken + r.notTaken)
		p := float64(r.taken) / n
		q := p
		if 1-p < q {
			q = 1 - p
		}
		e += n * 2 * q
	}
	return e / total
}

// MissRate simulates predictor p over the branches of s and returns the
// misprediction ratio (mispredicted branches / dynamic branches) and the
// number of dynamic branches.
func MissRate(p Predictor, s *trace.Stream) (rate float64, branches int64) {
	var miss int64
	for i := range s.Uops {
		u := &s.Uops[i]
		if u.Class != trace.Branch {
			continue
		}
		branches++
		if p.Lookup(u.PC) != u.Taken {
			miss++
		}
		p.Update(u.PC, u.Taken)
	}
	if branches == 0 {
		return 0, 0
	}
	return float64(miss) / float64(branches), branches
}

// MPKI simulates predictor p over s and returns mispredictions per kilo
// macro-instruction, the metric of Figure 3.10.
func MPKI(p Predictor, s *trace.Stream) float64 {
	rate, branches := MissRate(p, s)
	instr := s.Instructions()
	if instr == 0 {
		return 0
	}
	return rate * float64(branches) / float64(instr) * 1000
}

// EntropyModel maps linear branch entropy to the misprediction rate of one
// specific predictor through the linear fit of Figure 3.9. Training the
// model is a one-time cost per predictor; afterwards misprediction rates for
// any application follow from its (micro-architecture independent) entropy.
type EntropyModel struct {
	PredictorName string
	Fit           stats.LinearFit
	HistBits      uint
}

// Predict returns the estimated misprediction rate for a workload with the
// given linear branch entropy, clamped to [0, 1].
func (m *EntropyModel) Predict(entropy float64) float64 {
	r := m.Fit.Eval(entropy)
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// TrainingPoint is one (entropy, missrate) observation used to fit an
// EntropyModel.
type TrainingPoint struct {
	Workload string
	Entropy  float64
	MissRate float64
}

// Train builds the entropy→missrate model for a predictor following the flow
// of Figure 3.8: for every training stream, profile the linear branch
// entropy and simulate the predictor, then least-squares fit a line through
// the observations. newPredictor must return a fresh predictor per stream.
func Train(name string, newPredictor func() Predictor, streams []*trace.Stream, histBits uint) (*EntropyModel, []TrainingPoint) {
	pts := make([]TrainingPoint, 0, len(streams))
	xs := make([]float64, 0, len(streams))
	ys := make([]float64, 0, len(streams))
	for _, s := range streams {
		e := Entropy(s, histBits)
		r, branches := MissRate(newPredictor(), s)
		if branches == 0 {
			continue
		}
		pts = append(pts, TrainingPoint{Workload: s.Name, Entropy: e, MissRate: r})
		xs = append(xs, e)
		ys = append(ys, r)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Entropy < pts[j].Entropy })
	return &EntropyModel{
		PredictorName: name,
		Fit:           stats.FitLinear(xs, ys),
		HistBits:      histBits,
	}, pts
}
