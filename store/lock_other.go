//go:build !unix

package store

// lockFile is a no-op off unix: single-process stores stay fully
// serialized by Store.mu; cross-process writers fall back to
// last-writer-wins on the atomically renamed index.
func lockFile(path string) (func(), error) {
	return func() {}, nil
}
