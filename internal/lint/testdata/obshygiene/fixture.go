// Fixture for the obshygiene analyzer: instrument construction belongs at
// startup, with compile-time-constant metric names. goodStartup at the
// bottom proves the sanctioned shapes stay silent.
package fixture

import "mipp/obs"

// hotRegister registers inside a hot path: both the constructor and the
// registration are flagged.
//
//mipp:hotpath
func hotRegister(reg *obs.Registry) *obs.Histogram {
	h := obs.NewHistogram(obs.DefBuckets...)                 // want `\[obshygiene/construct-in-hotpath\] obs\.NewHistogram`
	reg.RegisterHistogram("mipp_fixture_seconds", "help", h) // want `\[obshygiene/construct-in-hotpath\] Registry\.RegisterHistogram`
	return h
}

// loopRegister registers one counter per iteration — the duplicate-series
// panic waiting to happen.
func loopRegister(reg *obs.Registry, names []string) {
	for range names {
		reg.Counter("mipp_fixture_total", "help") // want `\[obshygiene/construct-in-loop\] Registry\.Counter`
	}
}

// dynamicName builds the metric name at run time: unbounded cardinality.
func dynamicName(reg *obs.Registry, suffix string) {
	reg.Gauge("mipp_fixture_"+suffix, "help") // want `\[obshygiene/non-const-name\] metric name passed to Registry\.Gauge`
}

// allowedLoop carries the escape hatch: pre-registering one series per
// known label value is the sanctioned startup pattern.
func allowedLoop(reg *obs.Registry, sentinels []string) {
	for _, s := range sentinels {
		//mipp:allow obshygiene pre-registering one series per sentinel at startup
		reg.Counter("mipp_fixture_errors_total", "help", obs.Label{Key: "sentinel", Value: s})
	}
}

const constName = "mipp_fixture_const_total"

// goodStartup is the normal shape: straight-line registration with literal
// (or named-constant) names and dynamic label values. Silent.
func goodStartup(reg *obs.Registry, member string) (*obs.Counter, *obs.Gauge) {
	c := reg.Counter(constName, "help", obs.Label{Key: "member", Value: member})
	g := reg.Gauge("mipp_fixture_gauge", "help")
	reg.GaugeFunc("mipp_fixture_func", "help", func() float64 { return 0 })
	return c, g
}

// hotMutate touches pre-built instruments inside a hot path — the whole
// point of the discipline. Silent.
//
//mipp:hotpath
func hotMutate(c *obs.Counter, h *obs.Histogram, xs []float64) {
	for _, x := range xs {
		c.Inc()
		h.Observe(x)
	}
}

// hotVecRegister registers the fidelity-era instruments (signed histograms
// and label vecs) inside a hot path: flagged like any other registration.
//
//mipp:hotpath
func hotVecRegister(reg *obs.Registry) {
	h := obs.NewSignedHistogram(obs.ResidualBuckets...)             // want `\[obshygiene/construct-in-hotpath\] obs\.NewSignedHistogram`
	reg.RegisterSignedHistogram("mipp_fixture_residual", "help", h) // want `\[obshygiene/construct-in-hotpath\] Registry\.RegisterSignedHistogram`
	reg.CounterVec("mipp_fixture_by_workload_total", "help", "w")   // want `\[obshygiene/construct-in-hotpath\] Registry\.CounterVec`
	reg.GaugeVec("mipp_fixture_err_pct", "help", "w")               // want `\[obshygiene/construct-in-hotpath\] Registry\.GaugeVec`
}

// goodVecStartup: straight-line vec registration with literal names, then
// dynamic label VALUES through With on the hot path. Silent.
//
//mipp:hotpath
func hotVecMutate(cv *obs.CounterVec, workload string) {
	cv.With(workload).Inc()
}

func goodVecStartup(reg *obs.Registry) *obs.CounterVec {
	h := obs.NewSignedHistogram(obs.ResidualBuckets...)
	reg.RegisterSignedHistogram("mipp_fixture_residual_ok", "help", h, obs.Label{Key: "component", Value: "dram"})
	return reg.CounterVec("mipp_fixture_samples_total", "help", "workload")
}
