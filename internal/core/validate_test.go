package core

import (
	"fmt"
	"testing"

	"mipp/internal/config"
	"mipp/internal/mlp"
	"mipp/internal/ooo"
	"mipp/internal/perf"
	"mipp/internal/profiler"
	"mipp/internal/stats"
	"mipp/internal/workload"
)

// TestModelVsSimulatorReference is the headline validation (§6.2.1): the
// micro-architecture independent model against the cycle-level simulator on
// the reference architecture, across the whole suite. The paper reports a
// 7.6% average CPI error against Sniper on SPEC; on our synthetic substrate
// we assert the same order of accuracy: average below 30%, no benchmark
// beyond 75% (predicted LLC miss counts match the simulator within a few
// percent — see EXPERIMENTS.md — so the residual is MLP/overlap modeling).
func TestModelVsSimulatorReference(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation")
	}
	const n = 300_000
	cfg := config.Reference()
	var errs []float64
	for _, name := range workload.Names() {
		s := workload.MustGenerate(name, n, 0)
		sim, err := ooo.Simulate(cfg, s, ooo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := profiler.Run(s, profiler.Options{})
		mod := New(p, nil).Evaluate(cfg, DefaultOptions())
		e := stats.AbsErr(mod.Cycles, float64(sim.Cycles))
		errs = append(errs, e)
		simStack := sim.Stack.PerInstruction(sim.Instructions)
		modStack := mod.Stack.PerInstruction(int64(mod.Instructions))
		fmt.Printf("%-12s simCPI=%6.3f modCPI=%6.3f err=%5.1f%%  sim[b=%.2f br=%.2f llc=%.2f dram=%.2f] mod[b=%.2f br=%.2f llc=%.2f dram=%.2f] mlp(sim=%.2f mod=%.2f)\n",
			name, sim.CPI(), mod.CPI(), e*100,
			simStack.Cycles[perf.Base], simStack.Cycles[perf.BranchComp], simStack.Cycles[perf.LLCHit], simStack.Cycles[perf.DRAM],
			modStack.Cycles[perf.Base], modStack.Cycles[perf.BranchComp], modStack.Cycles[perf.LLCHit], modStack.Cycles[perf.DRAM],
			sim.MLP, mod.MLP)
		if e > 0.75 {
			t.Errorf("%s: model error %.1f%% beyond 75%%", name, e*100)
		}
	}
	mean := stats.Mean(errs)
	fmt.Printf("average CPI error: %.1f%%\n", mean*100)
	if mean > 0.30 {
		t.Errorf("average model error %.1f%% beyond 30%%", mean*100)
	}
}

// TestNoMLPHurts reproduces Figure 4.3's takeaway: disabling MLP modeling
// inflates predicted memory time substantially for MLP-rich workloads.
func TestNoMLPHurts(t *testing.T) {
	s := workload.MustGenerate("libquantum", 150_000, 0)
	p := profiler.Run(s, profiler.Options{})
	m := New(p, nil)
	cfg := config.Reference()
	with := m.Evaluate(cfg, DefaultOptions())
	opts := DefaultOptions()
	opts.MLPMode = mlp.None
	without := m.Evaluate(cfg, opts)
	if without.Cycles <= with.Cycles*1.3 {
		t.Errorf("no-MLP prediction %.0f not much slower than with MLP %.0f", without.Cycles, with.Cycles)
	}
}
